#pragma once

/// \file trace.hpp
/// Low-overhead span tracer with a Chrome trace-event JSON exporter.
///
/// Model: each recording thread owns a lock-free single-writer ring
/// buffer of fixed-size TraceEvent records (power-of-two capacity,
/// overwrite-oldest). Recording after a thread's first event is
/// allocation-free: one enabled-flag branch, a thread-local pointer
/// check, a slot store and a release publish of the head. Ring creation
/// is the only allocation and is counted in `buffer_grow_events()` so
/// tests can assert zero steady-state growth, mirroring the PR 3
/// workspace discipline.
///
/// Two timelines are recorded side by side:
///  - wall events (kBegin/kEnd/kInstant/kCounter) timestamped with the
///    steady clock on the recording thread;
///  - sim events (kSimSlice, kAsyncBegin/kAsyncEnd) timestamped in
///    SimClock seconds, emitted by the clock itself (`advance`/`sync_to`)
///    and by PendingCollective::wait for hidden comm, so exported slice
///    sums equal the ledger sums exactly.
/// The exporter maps them to two Chrome trace "processes": pid 0 = wall
/// clock (tid = recording thread), pid 1 = sim clock (tid = rank), with
/// hidden comm as async ("b"/"e") slices under the rank track. The JSON
/// loads in Perfetto / chrome://tracing.
///
/// Concurrency contract: record-side calls are safe from any thread
/// while the tracer is enabled. `enable`/`disable`/`collect`/export must
/// run while no instrumented code is executing (tests and the CLI
/// enable before spawning workers and export after joining them).
/// Re-enabling retires — but never frees — the previous generation's
/// rings, so a straggler thread holding a stale ring pointer writes into
/// retired (unexported) memory instead of freed memory.
///
/// Span names must have static storage duration (string literals or
/// interned strings); events store the pointer, not a copy. Compile out
/// every macro with -DDLCOMP_TRACE_DISABLED.

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <string>
#include <string_view>
#include <unordered_set>
#include <vector>

#include "common/string_hash.hpp"

namespace dlcomp {

/// Global on/off switch; the only cost instrumentation pays when
/// tracing is off is one relaxed load and branch.
inline std::atomic<bool> g_trace_enabled{false};

[[nodiscard]] inline bool trace_enabled() noexcept {
  return g_trace_enabled.load(std::memory_order_relaxed);
}

struct TraceEvent {
  enum class Kind : std::uint8_t {
    kBegin,       ///< wall span open (ph "B")
    kEnd,         ///< wall span close (ph "E")
    kInstant,     ///< wall instant (ph "i")
    kCounter,     ///< wall counter sample (ph "C"), value in `a`
    kSimSlice,    ///< sim complete slice (ph "X"): begin `a`, duration `b`
    kAsyncBegin,  ///< sim async open (ph "b"): ts `a`, id `b`
    kAsyncEnd,    ///< sim async close (ph "e"): ts `a`, id `b`
  };

  Kind kind = Kind::kInstant;
  std::int16_t rank = -1;      ///< rank binding; -1 = unbound worker
  const char* name = nullptr;  ///< static-storage or interned string
  std::uint64_t wall_ns = 0;   ///< steady-clock ns (wall events)
  double a = 0.0;
  double b = 0.0;
};

// Out-of-line record helpers: call only when trace_enabled(). They tag
// wall events with the current thread's bound rank.
void trace_begin(const char* name);
void trace_end(const char* name);
void trace_instant(const char* name);
void trace_counter(const char* name, double value);

/// Sim-timeline complete slice [begin_s, begin_s + dur_s] on `rank`'s
/// track. `phase` is interned (copied once per distinct name).
void trace_sim_slice(int rank, std::string_view phase, double begin_s,
                     double dur_s);

/// Sim-timeline async slice [begin_s, end_s] on `rank`'s track — hidden
/// comm rendered above the exposed phase slices. `name` must be stable
/// storage (interned phase names qualify).
void trace_sim_async(int rank, const char* name, double begin_s,
                     double end_s);

/// Binds/unbinds the calling thread's rank: wall events it records are
/// grouped under "rank N" in the exported trace. Cluster::run binds each
/// worker for the duration of the rank function.
void trace_bind_thread_rank(int rank) noexcept;
[[nodiscard]] int trace_thread_rank() noexcept;

class Tracer {
 public:
  static constexpr std::size_t kDefaultRingCapacity = std::size_t{1} << 16;

  static Tracer& instance();

  /// Starts a new trace generation: resets drop/grow counters and
  /// retires any previous rings. `ring_capacity` is rounded up to a
  /// power of two; each recording thread allocates one ring lazily.
  void enable(std::size_t ring_capacity = kDefaultRingCapacity);
  void disable();

  /// Appends `ev` to the calling thread's ring (registering the thread
  /// on first use). Callers gate on trace_enabled().
  void record(const TraceEvent& ev);

  /// Stable pointer for a dynamic name; repeated calls with equal
  /// contents return the same pointer.
  const char* intern(std::string_view name);

  struct ThreadTrace {
    unsigned thread_index = 0;
    std::uint64_t dropped = 0;         ///< events overwritten by wrap
    std::vector<TraceEvent> events;    ///< oldest first
  };

  /// Snapshot of every current-generation ring (call while quiescent).
  [[nodiscard]] std::vector<ThreadTrace> collect() const;

  /// Rings allocated in the current generation (== threads that
  /// recorded); steady-state recording must not move this.
  [[nodiscard]] std::uint64_t buffer_grow_events() const noexcept {
    return grow_events_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t dropped_events() const;
  [[nodiscard]] std::size_t ring_capacity() const noexcept {
    return capacity_;
  }

  /// Chrome trace-event JSON (object form, `traceEvents` array).
  void write_chrome_trace(std::ostream& out) const;
  /// Writes the JSON to `path`; throws dlcomp::Error on I/O failure.
  void export_chrome_trace(const std::string& path) const;

 private:
  Tracer() = default;

  struct Ring {
    explicit Ring(std::size_t capacity, unsigned index, std::uint64_t gen)
        : events(capacity), mask(capacity - 1), thread_index(index),
          generation(gen) {}
    std::vector<TraceEvent> events;
    std::uint64_t mask;
    std::atomic<std::uint64_t> head{0};
    unsigned thread_index;
    std::uint64_t generation;
  };

  Ring* register_thread();

  mutable std::mutex mutex_;
  std::vector<std::unique_ptr<Ring>> rings_;  ///< all generations
  std::size_t capacity_ = kDefaultRingCapacity;
  std::atomic<std::uint64_t> generation_{0};
  std::atomic<std::uint64_t> grow_events_{0};
  unsigned next_thread_index_ = 0;

  mutable std::shared_mutex intern_mutex_;
  std::unordered_set<std::string, TransparentStringHash, std::equal_to<>>
      interned_;
};

/// RAII wall span; records nothing when tracing is disabled at
/// construction (and then nothing at destruction, even if tracing was
/// enabled in between — spans never emit unmatched ends).
class TraceSpan {
 public:
  explicit TraceSpan(const char* name) {
    if (trace_enabled()) {
      name_ = name;
      trace_begin(name);
    }
  }
  ~TraceSpan() {
    if (name_ != nullptr) trace_end(name_);
  }
  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

 private:
  const char* name_ = nullptr;
};

}  // namespace dlcomp

#if defined(DLCOMP_TRACE_DISABLED)

#define DLCOMP_TRACE_SPAN(name) ((void)0)
#define DLCOMP_TRACE_INSTANT(name) ((void)0)
#define DLCOMP_TRACE_COUNTER(name, value) ((void)0)

#else

#define DLCOMP_TRACE_CONCAT2(a, b) a##b
#define DLCOMP_TRACE_CONCAT(a, b) DLCOMP_TRACE_CONCAT2(a, b)

/// Opens a wall span closed at end of scope. `name` must be a string
/// literal (or other static-storage string).
#define DLCOMP_TRACE_SPAN(name) \
  ::dlcomp::TraceSpan DLCOMP_TRACE_CONCAT(dlcomp_trace_span_, __LINE__) { name }

#define DLCOMP_TRACE_INSTANT(name)                                    \
  do {                                                                \
    if (::dlcomp::trace_enabled()) ::dlcomp::trace_instant(name);     \
  } while (false)

#define DLCOMP_TRACE_COUNTER(name, value)                                  \
  do {                                                                     \
    if (::dlcomp::trace_enabled()) ::dlcomp::trace_counter(name, value);   \
  } while (false)

#endif  // DLCOMP_TRACE_DISABLED
