#include "obs/obs_server.hpp"

#include <chrono>

#include "common/json.hpp"
#include "obs/prometheus.hpp"

namespace dlcomp {

namespace {

double steady_seconds() noexcept {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace

void StatusBoard::heartbeat(std::uint64_t iteration,
                            double items_per_s) noexcept {
  iteration_.store(iteration, std::memory_order_relaxed);
  items_per_s_.store(items_per_s, std::memory_order_relaxed);
  last_heartbeat_s_.store(steady_seconds(), std::memory_order_release);
}

double StatusBoard::heartbeat_age_s() const noexcept {
  const double last = last_heartbeat_s_.load(std::memory_order_acquire);
  if (last < 0.0) return -1.0;
  return steady_seconds() - last;
}

ObservabilityServer::ObservabilityServer(
    ObservabilityConfig config, MetricsRegistry& registry, StatusBoard& board,
    std::function<MetricsSnapshot()> extra_snapshot)
    : config_(std::move(config)),
      registry_(registry),
      board_(board),
      extra_snapshot_(std::move(extra_snapshot)),
      start_s_(steady_seconds()),
      http_(config_.http) {
  http_.add_route("/metrics", [this](const HttpRequest&) {
    std::string body = render_prometheus(registry_);
    if (extra_snapshot_) {
      render_prometheus_snapshot(extra_snapshot_(), body);
    }
    HttpResponse r = HttpResponse::text(200, std::move(body));
    r.content_type = "text/plain; version=0.0.4; charset=utf-8";
    return r;
  });
  http_.add_route("/healthz", [](const HttpRequest&) {
    return HttpResponse::text(200, "ok\n");
  });
  http_.add_route("/readyz", [this](const HttpRequest&) {
    return board_.ready() ? HttpResponse::text(200, "ready\n")
                          : HttpResponse::text(503, "not ready\n");
  });
  http_.add_route("/status", [this](const HttpRequest&) {
    return HttpResponse::json(200, status_json());
  });
}

std::string ObservabilityServer::status_json() const {
  JsonValue doc = JsonValue::object();
  doc.set("state", JsonValue(board_.state()));
  doc.set("ready", JsonValue(board_.ready()));
  doc.set("iteration",
          JsonValue(static_cast<double>(board_.iteration())));
  doc.set("total_iterations",
          JsonValue(static_cast<double>(board_.total_iterations())));
  doc.set("epoch", JsonValue(static_cast<double>(board_.epoch())));
  doc.set("items_per_s", JsonValue(board_.items_per_s()));
  doc.set("heartbeat_age_s", JsonValue(board_.heartbeat_age_s()));
  doc.set("uptime_s", JsonValue(steady_seconds() - start_s_));

  const Logger& logger = Logger::global();
  doc.set("log_lines_emitted",
          JsonValue(static_cast<double>(logger.lines_emitted())));
  doc.set("log_lines_suppressed",
          JsonValue(static_cast<double>(logger.lines_suppressed())));

  JsonValue events = JsonValue::array();
  for (const LogEntry& entry : logger.recent(config_.status_log_level)) {
    JsonValue e = JsonValue::object();
    e.set("ts", JsonValue(entry.unix_ts));
    e.set("level", JsonValue(std::string(log_level_name(entry.level))));
    e.set("component", JsonValue(entry.component));
    e.set("msg", JsonValue(entry.message));
    events.push_back(std::move(e));
  }
  doc.set("recent_events", std::move(events));
  return doc.dump();
}

}  // namespace dlcomp
