#include "obs/http_server.hpp"

#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>

#include "common/error.hpp"
#include "common/net.hpp"
#include "obs/log.hpp"

namespace dlcomp {

namespace {

bool iequals(std::string_view a, std::string_view b) noexcept {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    const char ca = a[i] >= 'A' && a[i] <= 'Z' ? a[i] + 32 : a[i];
    const char cb = b[i] >= 'A' && b[i] <= 'Z' ? b[i] + 32 : b[i];
    if (ca != cb) return false;
  }
  return true;
}

std::string_view trim_ows(std::string_view s) noexcept {
  while (!s.empty() && (s.front() == ' ' || s.front() == '\t')) {
    s.remove_prefix(1);
  }
  while (!s.empty() && (s.back() == ' ' || s.back() == '\t')) {
    s.remove_suffix(1);
  }
  return s;
}

bool valid_token(std::string_view s) noexcept {
  if (s.empty()) return false;
  for (const char c : s) {
    // RFC 9110 tchar, minus the rarely used symbols nothing sends.
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '-' || c == '_' ||
                    c == '.' || c == '!' || c == '#' || c == '$' ||
                    c == '%' || c == '&' || c == '\'' || c == '*' ||
                    c == '+' || c == '^' || c == '`' || c == '|' || c == '~';
    if (!ok) return false;
  }
  return true;
}

}  // namespace

std::string_view HttpRequest::header(std::string_view name) const {
  for (const auto& [key, value] : headers) {
    if (iequals(key, name)) return value;
  }
  return {};
}

std::string_view http_status_reason(int status) noexcept {
  switch (status) {
    case 200: return "OK";
    case 400: return "Bad Request";
    case 404: return "Not Found";
    case 405: return "Method Not Allowed";
    case 411: return "Length Required";
    case 431: return "Request Header Fields Too Large";
    case 500: return "Internal Server Error";
    case 503: return "Service Unavailable";
    default: return "Unknown";
  }
}

HttpRequestParser::Status HttpRequestParser::next() {
  // The head ends at the first blank line. Accept bare-LF line endings
  // too (curl never sends them, but hand-typed `nc` requests do).
  std::size_t head_end = buffer_.find("\r\n\r\n");
  std::size_t delim = 4;
  const std::size_t lf_end = buffer_.find("\n\n");
  if (lf_end != std::string::npos &&
      (head_end == std::string::npos || lf_end < head_end)) {
    head_end = lf_end;
    delim = 2;
  }
  if (head_end == std::string::npos) {
    return buffer_.size() > max_head_bytes_ ? Status::kTooLarge
                                            : Status::kNeedMore;
  }
  if (head_end + delim > max_head_bytes_) return Status::kTooLarge;

  const std::string_view head(buffer_.data(), head_end);
  HttpRequest req;

  std::size_t pos = 0;
  bool first_line = true;
  while (pos <= head.size()) {
    std::size_t eol = head.find('\n', pos);
    if (eol == std::string_view::npos) eol = head.size();
    std::string_view line = head.substr(pos, eol - pos);
    if (!line.empty() && line.back() == '\r') line.remove_suffix(1);
    pos = eol + 1;
    if (line.empty()) {
      if (first_line) return Status::kBadRequest;  // leading blank line
      continue;
    }

    if (first_line) {
      first_line = false;
      // METHOD SP target SP HTTP/1.x
      const std::size_t sp1 = line.find(' ');
      const std::size_t sp2 =
          sp1 == std::string_view::npos ? sp1 : line.find(' ', sp1 + 1);
      if (sp2 == std::string_view::npos ||
          line.find(' ', sp2 + 1) != std::string_view::npos) {
        return Status::kBadRequest;
      }
      req.method = std::string(line.substr(0, sp1));
      std::string_view target = line.substr(sp1 + 1, sp2 - sp1 - 1);
      const std::string_view version = line.substr(sp2 + 1);
      if (!valid_token(req.method)) return Status::kBadRequest;
      if (target.empty() || target[0] != '/') return Status::kBadRequest;
      if (version == "HTTP/1.1") {
        req.version_minor = 1;
      } else if (version == "HTTP/1.0") {
        req.version_minor = 0;
      } else {
        return Status::kBadRequest;
      }
      const std::size_t qmark = target.find('?');
      if (qmark != std::string_view::npos) {
        req.query = std::string(target.substr(qmark + 1));
        target = target.substr(0, qmark);
      }
      req.target = std::string(target);
      continue;
    }

    // Header field: name ":" OWS value OWS. Obsolete line folding
    // (leading whitespace) is rejected like any bad name.
    const std::size_t colon = line.find(':');
    if (colon == std::string_view::npos) return Status::kBadRequest;
    const std::string_view name = line.substr(0, colon);
    if (!valid_token(name)) return Status::kBadRequest;
    req.headers.emplace_back(std::string(name),
                             std::string(trim_ows(line.substr(colon + 1))));
  }
  if (first_line) return Status::kBadRequest;  // empty head

  buffer_.erase(0, head_end + delim);
  request_ = std::move(req);
  return Status::kComplete;
}

std::string http_serialize_response(const HttpResponse& response,
                                    int version_minor, bool keep_alive,
                                    bool head_only) {
  std::string out;
  out.reserve(128 + (head_only ? 0 : response.body.size()));
  out += version_minor == 0 ? "HTTP/1.0 " : "HTTP/1.1 ";
  out += std::to_string(response.status);
  out.push_back(' ');
  out += http_status_reason(response.status);
  out += "\r\nContent-Type: ";
  out += response.content_type;
  out += "\r\nContent-Length: ";
  out += std::to_string(response.body.size());
  out += "\r\nConnection: ";
  out += keep_alive ? "keep-alive" : "close";
  out += "\r\n\r\n";
  if (!head_only) out += response.body;
  return out;
}

// ---------------------------------------------------------------- server

struct HttpServer::Connection {
  int fd = -1;
  HttpRequestParser parser;
  std::string outbox;
  double last_activity_s = 0.0;
  bool close_after_flush = false;

  explicit Connection(int f, std::size_t max_head)
      : fd(f), parser(max_head), last_activity_s(net::monotonic_seconds()) {}
};

HttpServer::HttpServer(HttpServerConfig config) : config_(std::move(config)) {}

HttpServer::~HttpServer() { stop(); }

void HttpServer::add_route(std::string path, Handler handler) {
  DLCOMP_CHECK_MSG(!running(), "http: add_route after start");
  routes_.emplace_back(std::move(path), std::move(handler));
}

void HttpServer::start() {
  DLCOMP_CHECK_MSG(!running(), "http: already started");

  try {
    listen_fd_ = net::tcp_listen(config_.bind_address, config_.port, 16);
    bound_port_ = net::bound_port(listen_fd_);
  } catch (const Error& e) {
    throw Error(std::string("http: ") + e.what());
  }

  if (::pipe(wake_pipe_) != 0) {
    net::close_fd(listen_fd_);
    throw Error("http: pipe() failed");
  }
  net::set_nonblocking(listen_fd_);
  net::set_nonblocking(wake_pipe_[0]);
  net::set_nonblocking(wake_pipe_[1]);

  thread_ = std::thread([this] { run_loop(); });
  DLCOMP_LOG_INFO("obs", "http server listening",
                  {"address", config_.bind_address},
                  {"port", static_cast<int>(bound_port_)});
}

void HttpServer::stop() {
  if (!thread_.joinable()) return;
  const char byte = 'q';
  [[maybe_unused]] const ssize_t n = ::write(wake_pipe_[1], &byte, 1);
  thread_.join();
  for (int& fd : wake_pipe_) {
    if (fd >= 0) ::close(fd);
    fd = -1;
  }
  if (listen_fd_ >= 0) ::close(listen_fd_);
  listen_fd_ = -1;
}

std::uint64_t HttpServer::requests_served() const noexcept {
  return requests_served_.load(std::memory_order_relaxed);
}

void HttpServer::accept_new(std::vector<Connection>& connections) {
  while (true) {
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) return;  // EAGAIN / transient -- poll() will retry
    if (connections.size() >= config_.max_connections) {
      // Shed load politely: tell the client we are full, then close.
      HttpResponse busy = HttpResponse::text(503, "server at capacity\n");
      const std::string wire =
          http_serialize_response(busy, 1, /*keep_alive=*/false,
                                  /*head_only=*/false);
      [[maybe_unused]] const ssize_t n =
          ::send(fd, wire.data(), wire.size(), MSG_NOSIGNAL);
      ::close(fd);
      continue;
    }
    net::set_nonblocking(fd);
    net::set_nodelay(fd);
    connections.emplace_back(fd, config_.max_head_bytes);
  }
}

bool HttpServer::service_input(Connection& conn) {
  while (true) {
    const HttpRequestParser::Status status = conn.parser.next();
    if (status == HttpRequestParser::Status::kNeedMore) return true;
    if (status == HttpRequestParser::Status::kBadRequest ||
        status == HttpRequestParser::Status::kTooLarge) {
      const int code =
          status == HttpRequestParser::Status::kBadRequest ? 400 : 431;
      conn.outbox += http_serialize_response(
          HttpResponse::text(code, "bad request\n"), 1,
          /*keep_alive=*/false, /*head_only=*/false);
      conn.close_after_flush = true;
      requests_served_.fetch_add(1, std::memory_order_relaxed);
      return true;  // keep alive long enough to flush the error
    }

    const HttpRequest& req = conn.parser.request();
    HttpResponse response;
    const bool head_only = req.method == "HEAD";
    if (!req.header("Content-Length").empty() ||
        !req.header("Transfer-Encoding").empty()) {
      response = HttpResponse::text(411, "request bodies not supported\n");
    } else if (req.method != "GET" && !head_only) {
      response = HttpResponse::text(405, "method not allowed\n");
    } else {
      const Handler* handler = nullptr;
      for (const auto& [path, h] : routes_) {
        if (path == req.target) {
          handler = &h;
          break;
        }
      }
      if (handler == nullptr) {
        response = HttpResponse::text(404, "not found\n");
      } else {
        try {
          response = (*handler)(req);
        } catch (const std::exception& e) {
          response = HttpResponse::text(
              500, std::string("handler error: ") + e.what() + "\n");
        }
      }
    }

    // HTTP/1.1 defaults to keep-alive; either side can opt out.
    bool keep_alive = req.version_minor >= 1;
    if (iequals(req.header("Connection"), "close")) keep_alive = false;
    if (req.version_minor == 0 &&
        iequals(req.header("Connection"), "keep-alive")) {
      keep_alive = true;
    }
    conn.outbox += http_serialize_response(response, req.version_minor,
                                           keep_alive, head_only);
    requests_served_.fetch_add(1, std::memory_order_relaxed);
    if (!keep_alive) {
      conn.close_after_flush = true;
      return true;  // drop pipelined leftovers after a close response
    }
  }
}

void HttpServer::run_loop() {
  std::vector<Connection> connections;
  std::vector<pollfd> fds;

  while (true) {
    fds.clear();
    fds.push_back({wake_pipe_[0], POLLIN, 0});
    fds.push_back({listen_fd_, POLLIN, 0});
    for (const Connection& conn : connections) {
      short events = POLLIN;
      if (!conn.outbox.empty()) events |= POLLOUT;
      fds.push_back({conn.fd, events, 0});
    }

    const int rc = ::poll(fds.data(), fds.size(), /*timeout_ms=*/1000);
    if (rc < 0 && errno != EINTR) break;

    if ((fds[0].revents & POLLIN) != 0) break;  // stop() poked the pipe

    // fds[2 + i] pairs with connections[i] only for the prefix that was
    // present when poll() ran; accept_new appends past it, and dead
    // connections are compacted only after the pass, so the pairing
    // holds for the whole loop. Fresh accepts get serviced next round.
    const std::size_t polled = connections.size();
    if ((fds[1].revents & POLLIN) != 0) accept_new(connections);

    const double now = net::monotonic_seconds();
    for (std::size_t i = 0; i < polled; ++i) {
      Connection& conn = connections[i];
      const pollfd& pfd = fds[2 + i];
      bool alive = true;

      if ((pfd.revents & (POLLERR | POLLNVAL)) != 0) alive = false;

      if (alive && (pfd.revents & (POLLIN | POLLHUP)) != 0) {
        char buf[4096];
        while (true) {
          const ssize_t n = ::read(conn.fd, buf, sizeof(buf));
          if (n > 0) {
            conn.parser.feed(std::string_view(buf, static_cast<size_t>(n)));
            conn.last_activity_s = now;
            continue;
          }
          if (n == 0) {
            // Peer finished sending. Abrupt disconnects mid-request are
            // normal (curl --max-time, dying scrapers): flush whatever
            // is owed, then close.
            conn.close_after_flush = true;
          } else if (errno != EAGAIN && errno != EWOULDBLOCK &&
                     errno != EINTR) {
            alive = false;
          }
          break;
        }
        if (alive) alive = service_input(conn);
      }

      if (alive && !conn.outbox.empty()) {
        // MSG_NOSIGNAL: a client that hung up mid-response must read as
        // EPIPE (connection dropped below), not kill the process.
        const ssize_t n = ::send(conn.fd, conn.outbox.data(),
                                 conn.outbox.size(), MSG_NOSIGNAL);
        if (n > 0) {
          conn.outbox.erase(0, static_cast<std::size_t>(n));
          conn.last_activity_s = now;
        } else if (n < 0 && errno != EAGAIN && errno != EWOULDBLOCK &&
                   errno != EINTR) {
          alive = false;
        }
      }

      if (alive && conn.close_after_flush && conn.outbox.empty()) {
        alive = false;
      }
      if (alive && now - conn.last_activity_s > config_.idle_timeout_s) {
        alive = false;
      }

      if (!alive) {
        ::close(conn.fd);
        conn.fd = -1;  // mark dead; compacted below
      }
    }

    connections.erase(
        std::remove_if(connections.begin(), connections.end(),
                       [](const Connection& c) { return c.fd < 0; }),
        connections.end());
  }

  for (Connection& conn : connections) ::close(conn.fd);
}

}  // namespace dlcomp
