#pragma once

/// \file metrics.hpp
/// Pull-style metrics: named counters, gauges and fixed-bucket histograms
/// owned by a registry, flattened on demand into a sorted key/value
/// snapshot. The registry absorbs the accounting that used to live in
/// scattered ad-hoc members (A2AStats byte totals, workspace grow events,
/// LatencyRecorder percentiles, dataset-pipeline CRC/stall counters):
/// components either update registry instruments directly or publish
/// their private counters into a snapshot at the end of a run.
///
/// Thread-safety: instrument updates (Counter::add, Gauge::set,
/// HistogramMetric::observe) are lock-free atomics and safe from any
/// thread. Instrument *lookup* takes a registry mutex — hot paths should
/// resolve instruments once and keep the reference (instruments live as
/// long as the registry and are never invalidated by later lookups).
///
/// The nearest-rank quantile rule — including the epsilon guard that
/// keeps `ceil` from over-shooting on exact bucket boundaries (PR 1) —
/// lives here in `nearest_rank()`; `stats::percentile_sorted` and
/// `HistogramMetric::quantile` both route through it so the repo has one
/// percentile definition.

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "common/string_hash.hpp"

namespace dlcomp {

/// 1-based nearest-rank index for percentile q in [0, 100] over `count`
/// sorted samples: ceil(q/100 * count), clamped to [1, count], with a
/// 1e-9 epsilon so q landing exactly on a rank boundary (e.g. p50 of 10
/// samples) selects that rank instead of the next one. Returns 0 only
/// when count == 0.
[[nodiscard]] std::size_t nearest_rank(std::size_t count, double q) noexcept;

/// Monotonic event count. Relaxed atomics: totals are read at quiescent
/// points (snapshots), not used for synchronization.
class Counter {
 public:
  void add(std::uint64_t n = 1) noexcept {
    value_.fetch_add(n, std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<std::uint64_t> value_{0};
};

/// Last-write-wins instantaneous value.
class Gauge {
 public:
  void set(double v) noexcept { value_.store(v, std::memory_order_relaxed); }
  [[nodiscard]] double value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<double> value_{0.0};
};

/// Fixed bucket layout for HistogramMetric: ascending finite upper
/// bounds; values above the last bound land in an implicit overflow
/// bucket. Layouts are fixed at registration so observe() never
/// allocates.
struct HistogramBuckets {
  std::vector<double> upper_bounds;

  /// `count` buckets with bounds first, first*growth, first*growth^2, ...
  static HistogramBuckets exponential(double first, double growth,
                                      std::size_t count);
  /// `count` equal-width buckets spanning [lo, hi].
  static HistogramBuckets linear(double lo, double hi, std::size_t count);
};

/// Lock-free fixed-bucket histogram. observe() is a binary search over
/// the (immutable) bounds plus three relaxed atomic updates; quantiles
/// are estimated from cumulative bucket counts with the shared
/// nearest-rank rule and clamped to the observed min/max so exact-sample
/// distributions that fit one bucket report exact values.
class HistogramMetric {
 public:
  explicit HistogramMetric(HistogramBuckets buckets);

  void observe(double value) noexcept;

  [[nodiscard]] std::uint64_t count() const noexcept {
    return count_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] double sum() const noexcept {
    return sum_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] double mean() const noexcept;
  [[nodiscard]] double min() const noexcept;
  [[nodiscard]] double max() const noexcept;

  /// Nearest-rank quantile estimate for q in [0, 100]: the upper bound of
  /// the bucket holding the q-th ranked sample, clamped to [min, max]
  /// observed. 0 when empty.
  [[nodiscard]] double quantile(double q) const noexcept;

  [[nodiscard]] const std::vector<double>& upper_bounds() const noexcept {
    return bounds_;
  }
  /// Per-bucket counts (bounds_.size() + 1 entries, last = overflow).
  [[nodiscard]] std::vector<std::uint64_t> bucket_counts() const;

 private:
  std::vector<double> bounds_;
  std::unique_ptr<std::atomic<std::uint64_t>[]> buckets_;
  std::atomic<std::uint64_t> count_{0};
  std::atomic<double> sum_{0.0};
  std::atomic<double> min_{0.0};
  std::atomic<double> max_{0.0};
};

/// Flattened, sorted key -> value view of a registry (histograms expand
/// to <name>/count, /mean, /min, /max, /p50, /p95, /p99, /p999).
/// Components may also `set()` extra keys directly — SimClock ledgers and
/// per-table codec totals are published this way.
struct MetricsSnapshot {
  std::map<std::string, double> values;

  void set(std::string name, double value) {
    values.insert_or_assign(std::move(name), value);
  }
  [[nodiscard]] bool has(std::string_view name) const;
  [[nodiscard]] double value(std::string_view name,
                             double fallback = 0.0) const;
  /// One "<name> <value>" line per key, sorted (the `dlcomp trace`
  /// metrics dump format).
  [[nodiscard]] std::string to_text() const;
};

/// Named instrument owner. Instruments are created on first lookup and
/// live until the registry is destroyed; references stay valid across
/// later lookups. A process-wide registry (`global()`) collects
/// cross-cutting counters (dataset pipeline); run-scoped registries are
/// plain members/locals snapshotted into results.
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  static MetricsRegistry& global();

  Counter& counter(std::string_view name);
  Gauge& gauge(std::string_view name);
  /// `buckets` applies on first registration; later lookups of the same
  /// name return the existing histogram unchanged.
  HistogramMetric& histogram(std::string_view name,
                             const HistogramBuckets& buckets);

  [[nodiscard]] MetricsSnapshot snapshot() const;

  /// Enumerates every instrument under the registry lock, sorted by name
  /// within each kind. Unlike snapshot(), this hands callers the live
  /// instruments — the Prometheus exposition needs histogram bucket
  /// counts, which the flat snapshot discards. Callbacks must not touch
  /// the registry (the lock is held).
  void visit(
      const std::function<void(const std::string&, const Counter&)>&
          on_counter,
      const std::function<void(const std::string&, const Gauge&)>& on_gauge,
      const std::function<void(const std::string&, const HistogramMetric&)>&
          on_histogram) const;

 private:
  template <typename T>
  using Map = std::unordered_map<std::string, std::unique_ptr<T>,
                                 TransparentStringHash, std::equal_to<>>;

  mutable std::mutex mutex_;
  Map<Counter> counters_;
  Map<Gauge> gauges_;
  Map<HistogramMetric> histograms_;
};

/// Expands one histogram into snapshot keys under `name` (the same
/// flattening MetricsRegistry::snapshot uses).
void snapshot_histogram(MetricsSnapshot& snap, const std::string& name,
                        const HistogramMetric& hist);

}  // namespace dlcomp
