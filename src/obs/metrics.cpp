#include "obs/metrics.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "common/error.hpp"

namespace dlcomp {

std::size_t nearest_rank(std::size_t count, double q) noexcept {
  if (count == 0) return 0;
  const double clamped_q = std::clamp(q, 0.0, 100.0);
  // The epsilon keeps ceil() from rounding q * n / 100 up past an exact
  // integer boundary that double arithmetic overshoots by an ulp
  // (p50 of 10 samples must pick rank 5, not 6).
  const auto n = static_cast<double>(count);
  auto rank =
      static_cast<std::size_t>(std::ceil(clamped_q / 100.0 * n - 1e-9));
  return std::clamp<std::size_t>(rank, 1, count);
}

HistogramBuckets HistogramBuckets::exponential(double first, double growth,
                                               std::size_t count) {
  DLCOMP_CHECK(first > 0.0 && growth > 1.0 && count > 0);
  HistogramBuckets out;
  out.upper_bounds.reserve(count);
  double bound = first;
  for (std::size_t i = 0; i < count; ++i) {
    out.upper_bounds.push_back(bound);
    bound *= growth;
  }
  return out;
}

HistogramBuckets HistogramBuckets::linear(double lo, double hi,
                                          std::size_t count) {
  DLCOMP_CHECK(hi > lo && count > 0);
  HistogramBuckets out;
  out.upper_bounds.reserve(count);
  const double width = (hi - lo) / static_cast<double>(count);
  for (std::size_t i = 1; i <= count; ++i) {
    out.upper_bounds.push_back(lo + width * static_cast<double>(i));
  }
  return out;
}

HistogramMetric::HistogramMetric(HistogramBuckets buckets)
    : bounds_(std::move(buckets.upper_bounds)) {
  DLCOMP_CHECK(!bounds_.empty());
  DLCOMP_CHECK(std::is_sorted(bounds_.begin(), bounds_.end()));
  buckets_ =
      std::make_unique<std::atomic<std::uint64_t>[]>(bounds_.size() + 1);
  for (std::size_t i = 0; i <= bounds_.size(); ++i) {
    buckets_[i].store(0, std::memory_order_relaxed);
  }
}

namespace {

void atomic_add_double(std::atomic<double>& target, double delta) noexcept {
  double cur = target.load(std::memory_order_relaxed);
  while (!target.compare_exchange_weak(cur, cur + delta,
                                       std::memory_order_relaxed)) {
  }
}

void atomic_min_double(std::atomic<double>& target, double v) noexcept {
  double cur = target.load(std::memory_order_relaxed);
  while (v < cur && !target.compare_exchange_weak(
                        cur, v, std::memory_order_relaxed)) {
  }
}

void atomic_max_double(std::atomic<double>& target, double v) noexcept {
  double cur = target.load(std::memory_order_relaxed);
  while (v > cur && !target.compare_exchange_weak(
                        cur, v, std::memory_order_relaxed)) {
  }
}

}  // namespace

void HistogramMetric::observe(double value) noexcept {
  const auto it = std::upper_bound(bounds_.begin(), bounds_.end(), value);
  const auto bucket = static_cast<std::size_t>(it - bounds_.begin());
  buckets_[bucket].fetch_add(1, std::memory_order_relaxed);
  const std::uint64_t prior = count_.fetch_add(1, std::memory_order_relaxed);
  atomic_add_double(sum_, value);
  if (prior == 0) {
    // First sample seeds min/max; racing observers fix it up below.
    min_.store(value, std::memory_order_relaxed);
    max_.store(value, std::memory_order_relaxed);
  }
  atomic_min_double(min_, value);
  atomic_max_double(max_, value);
}

double HistogramMetric::mean() const noexcept {
  const std::uint64_t n = count();
  return n == 0 ? 0.0 : sum() / static_cast<double>(n);
}

double HistogramMetric::min() const noexcept {
  return count() == 0 ? 0.0 : min_.load(std::memory_order_relaxed);
}

double HistogramMetric::max() const noexcept {
  return count() == 0 ? 0.0 : max_.load(std::memory_order_relaxed);
}

double HistogramMetric::quantile(double q) const noexcept {
  const std::uint64_t total = count();
  if (total == 0) return 0.0;
  const std::uint64_t rank = nearest_rank(total, q);
  std::uint64_t cumulative = 0;
  for (std::size_t i = 0; i <= bounds_.size(); ++i) {
    cumulative += buckets_[i].load(std::memory_order_relaxed);
    if (cumulative >= rank) {
      const double estimate =
          i < bounds_.size() ? bounds_[i]
                             : max_.load(std::memory_order_relaxed);
      return std::clamp(estimate, min(), max());
    }
  }
  return max();
}

std::vector<std::uint64_t> HistogramMetric::bucket_counts() const {
  std::vector<std::uint64_t> out(bounds_.size() + 1);
  for (std::size_t i = 0; i < out.size(); ++i) {
    out[i] = buckets_[i].load(std::memory_order_relaxed);
  }
  return out;
}

bool MetricsSnapshot::has(std::string_view name) const {
  return values.find(std::string(name)) != values.end();
}

double MetricsSnapshot::value(std::string_view name, double fallback) const {
  const auto it = values.find(std::string(name));
  return it == values.end() ? fallback : it->second;
}

std::string MetricsSnapshot::to_text() const {
  std::ostringstream out;
  for (const auto& [key, val] : values) {
    out << key << ' ' << val << '\n';
  }
  return out.str();
}

MetricsRegistry& MetricsRegistry::global() {
  static MetricsRegistry* registry = new MetricsRegistry();  // never destroyed
  return *registry;
}

Counter& MetricsRegistry::counter(std::string_view name) {
  std::lock_guard lock(mutex_);
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    it = counters_.emplace(std::string(name), std::make_unique<Counter>())
             .first;
  }
  return *it->second;
}

Gauge& MetricsRegistry::gauge(std::string_view name) {
  std::lock_guard lock(mutex_);
  auto it = gauges_.find(name);
  if (it == gauges_.end()) {
    it = gauges_.emplace(std::string(name), std::make_unique<Gauge>()).first;
  }
  return *it->second;
}

HistogramMetric& MetricsRegistry::histogram(std::string_view name,
                                            const HistogramBuckets& buckets) {
  std::lock_guard lock(mutex_);
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    it = histograms_
             .emplace(std::string(name),
                      std::make_unique<HistogramMetric>(buckets))
             .first;
  }
  return *it->second;
}

void snapshot_histogram(MetricsSnapshot& snap, const std::string& name,
                        const HistogramMetric& hist) {
  snap.set(name + "/count", static_cast<double>(hist.count()));
  snap.set(name + "/mean", hist.mean());
  snap.set(name + "/min", hist.min());
  snap.set(name + "/max", hist.max());
  snap.set(name + "/p50", hist.quantile(50.0));
  snap.set(name + "/p95", hist.quantile(95.0));
  snap.set(name + "/p99", hist.quantile(99.0));
  snap.set(name + "/p999", hist.quantile(99.9));
}

void MetricsRegistry::visit(
    const std::function<void(const std::string&, const Counter&)>& on_counter,
    const std::function<void(const std::string&, const Gauge&)>& on_gauge,
    const std::function<void(const std::string&, const HistogramMetric&)>&
        on_histogram) const {
  std::lock_guard lock(mutex_);
  // Sort names per kind so the exposition (and its golden test) is
  // deterministic despite the unordered maps.
  const auto sorted_names = [](const auto& map) {
    std::vector<const std::string*> names;
    names.reserve(map.size());
    for (const auto& [name, unused] : map) names.push_back(&name);
    std::sort(names.begin(), names.end(),
              [](const std::string* a, const std::string* b) {
                return *a < *b;
              });
    return names;
  };
  if (on_counter) {
    for (const std::string* name : sorted_names(counters_)) {
      on_counter(*name, *counters_.find(*name)->second);
    }
  }
  if (on_gauge) {
    for (const std::string* name : sorted_names(gauges_)) {
      on_gauge(*name, *gauges_.find(*name)->second);
    }
  }
  if (on_histogram) {
    for (const std::string* name : sorted_names(histograms_)) {
      on_histogram(*name, *histograms_.find(*name)->second);
    }
  }
}

MetricsSnapshot MetricsRegistry::snapshot() const {
  MetricsSnapshot snap;
  std::lock_guard lock(mutex_);
  for (const auto& [name, c] : counters_) {
    snap.set(name, static_cast<double>(c->value()));
  }
  for (const auto& [name, g] : gauges_) {
    snap.set(name, g->value());
  }
  for (const auto& [name, h] : histograms_) {
    snapshot_histogram(snap, name, *h);
  }
  return snap;
}

}  // namespace dlcomp
