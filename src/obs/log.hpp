#pragma once

/// \file log.hpp
/// Structured leveled JSONL logger with per-site rate limiting and a
/// lock-free recent-events ring.
///
/// Every line the sink receives is one JSON object:
///   {"ts":1722950000.123,"level":"warn","component":"data",
///    "msg":"malformed line skipped","line":4821,"suppressed":37}
/// String and numeric fields ride as top-level keys after the fixed
/// quartet, so `jq`/Loki-style pipelines need no nested unwrapping;
/// `suppressed` appears only when the emitting site dropped messages
/// since its last emitted line.
///
/// Rate limiting is per call site: the DLCOMP_LOG_* macros plant a static
/// LogSite whose token window admits at most `LogConfig::site_burst`
/// lines per `site_window_s`; excess calls only bump the site's
/// suppressed counter (two relaxed atomic ops -- a hot loop logging a
/// recurring warning costs nanoseconds, not I/O). kError lines are never
/// rate limited.
///
/// The recent-events ring keeps the last kRingCapacity entries (whatever
/// their level, rate-limited drops excluded) for the /status endpoint.
/// Writers claim a ticket with one fetch_add and publish the slot with a
/// seqlock whose seq derives from the ticket (2t+1 writing, 2t+2 stable),
/// so writers lapping each other onto one slot always present distinct
/// seq values and readers reliably detect torn entries; a lapped writer
/// drops its ring entry (the newer one is the more recent event anyway).
/// Readers retry torn slots, so no lock is ever held on the logging
/// path. Slots are fixed-size word arrays behind
/// relaxed atomics (the TSan-clean seqlock shape) -- component, message
/// and rendered fields are truncated to the slot budget; the sink line
/// is never truncated.

#include <atomic>
#include <cstdint>
#include <cstdio>
#include <initializer_list>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace dlcomp {

enum class LogLevel : std::uint8_t { kDebug = 0, kInfo, kWarn, kError };

[[nodiscard]] std::string_view log_level_name(LogLevel level) noexcept;

/// One "key": value attachment. Constructible from the things call sites
/// actually have -- numbers log as JSON numbers, the rest as strings.
struct LogField {
  LogField(std::string_view k, std::string_view v)
      : key(k), text(v), is_number(false) {}
  LogField(std::string_view k, const char* v)
      : key(k), text(v), is_number(false) {}
  LogField(std::string_view k, const std::string& v)
      : key(k), text(v), is_number(false) {}
  LogField(std::string_view k, double v) : key(k), number(v) {}
  LogField(std::string_view k, std::size_t v)
      : key(k), number(static_cast<double>(v)) {}
  LogField(std::string_view k, int v)
      : key(k), number(static_cast<double>(v)) {}

  std::string_view key;
  std::string_view text;
  double number = 0.0;
  bool is_number = true;
};

/// Static per-call-site state planted by the macros.
struct LogSite {
  std::atomic<std::uint64_t> window_start_ns{0};
  std::atomic<std::uint32_t> in_window{0};
  std::atomic<std::uint64_t> suppressed{0};
};

struct LogConfig {
  LogLevel min_level = LogLevel::kWarn;  ///< library default: quiet
  std::uint32_t site_burst = 10;         ///< lines per site per window
  double site_window_s = 1.0;
};

/// A recent-ring entry, already rendered (the ring stores copies; the
/// logging path allocates only while formatting, never while publishing).
struct LogEntry {
  double unix_ts = 0.0;
  LogLevel level = LogLevel::kInfo;
  std::string component;
  std::string message;
  std::string fields_json;  ///< rendered ",\"k\":v,..." tail (may be empty)
};

class Logger {
 public:
  static constexpr std::size_t kRingCapacity = 64;

  static Logger& global();

  Logger() = default;
  Logger(const Logger&) = delete;
  Logger& operator=(const Logger&) = delete;

  void configure(const LogConfig& config);
  void set_min_level(LogLevel level) noexcept {
    min_level_.store(static_cast<int>(level), std::memory_order_relaxed);
  }
  [[nodiscard]] LogLevel min_level() const noexcept {
    return static_cast<LogLevel>(
        min_level_.load(std::memory_order_relaxed));
  }

  /// Redirects JSONL output; nullptr silences the stream (the ring and
  /// counters still update -- tests and /status use this).
  void set_sink(std::FILE* sink) noexcept {
    sink_.store(sink, std::memory_order_relaxed);
  }

  /// Cheap front gate for the macros: level filter + site token window.
  /// Returns false (and counts a suppression) when the line must not be
  /// emitted. kError always passes the window.
  [[nodiscard]] bool admit(LogLevel level, LogSite& site) noexcept;

  /// Formats and emits one line, folding the site's accumulated
  /// suppressed count into the record.
  void log(LogLevel level, std::string_view component,
           std::string_view message, std::initializer_list<LogField> fields,
           LogSite* site = nullptr);

  /// Snapshot of the recent-events ring, oldest first. `min_level`
  /// filters (e.g. kWarn for the /status "recent errors" block).
  [[nodiscard]] std::vector<LogEntry> recent(
      LogLevel min_level = LogLevel::kDebug) const;

  [[nodiscard]] std::uint64_t lines_emitted() const noexcept {
    return lines_emitted_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t lines_suppressed() const noexcept {
    return lines_suppressed_.load(std::memory_order_relaxed);
  }

 private:
  /// POD slot payload (seqlock-copied word by word; strings truncate).
  struct PackedEntry {
    double unix_ts = 0.0;
    std::uint32_t level = 0;
    std::uint32_t pad = 0;
    char component[24] = {};
    char message[104] = {};
    char fields[120] = {};
  };
  static constexpr std::size_t kSlotWords = sizeof(PackedEntry) / 8;
  static_assert(sizeof(PackedEntry) % 8 == 0);

  struct RingSlot {
    std::atomic<std::uint64_t> seq{0};  ///< odd while being written
    std::atomic<std::uint64_t> words[kSlotWords] = {};
  };

  std::atomic<int> min_level_{static_cast<int>(LogLevel::kWarn)};
  std::atomic<std::FILE*> sink_{stderr};
  std::atomic<std::uint32_t> site_burst_{10};
  std::atomic<std::uint64_t> site_window_ns_{1000000000ull};

  std::atomic<std::uint64_t> ring_head_{0};
  RingSlot ring_[kRingCapacity];

  std::atomic<std::uint64_t> lines_emitted_{0};
  std::atomic<std::uint64_t> lines_suppressed_{0};
  std::mutex io_mutex_;  ///< serializes whole lines onto the sink
};

}  // namespace dlcomp

/// Leveled logging with structured fields:
///   DLCOMP_LOG_WARN("data", "malformed line skipped", {"line", lineno});
/// Fields are optional. Each expansion is its own rate-limit site.
#define DLCOMP_LOG_IMPL(level, component, message, ...)                     \
  do {                                                                      \
    static ::dlcomp::LogSite dlcomp_log_site;                               \
    if (::dlcomp::Logger::global().admit(level, dlcomp_log_site)) {         \
      ::dlcomp::Logger::global().log(level, component, message,             \
                                     {__VA_ARGS__}, &dlcomp_log_site);      \
    }                                                                       \
  } while (false)

#define DLCOMP_LOG_DEBUG(component, message, ...)              \
  DLCOMP_LOG_IMPL(::dlcomp::LogLevel::kDebug, component,       \
                  message __VA_OPT__(, ) __VA_ARGS__)
#define DLCOMP_LOG_INFO(component, message, ...)               \
  DLCOMP_LOG_IMPL(::dlcomp::LogLevel::kInfo, component,        \
                  message __VA_OPT__(, ) __VA_ARGS__)
#define DLCOMP_LOG_WARN(component, message, ...)               \
  DLCOMP_LOG_IMPL(::dlcomp::LogLevel::kWarn, component,        \
                  message __VA_OPT__(, ) __VA_ARGS__)
#define DLCOMP_LOG_ERROR(component, message, ...)              \
  DLCOMP_LOG_IMPL(::dlcomp::LogLevel::kError, component,       \
                  message __VA_OPT__(, ) __VA_ARGS__)
