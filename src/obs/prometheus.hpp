#pragma once

/// \file prometheus.hpp
/// Renders metrics in the Prometheus text exposition format (version
/// 0.0.4 -- what every scraper accepts). Two sources:
///
/// - a live MetricsRegistry, where counters/gauges keep their kind and
///   histograms expose full cumulative `_bucket{le="..."}` series plus
///   `_sum`/`_count`;
/// - a flat MetricsSnapshot (end-of-run results), whose keys become
///   untyped gauges -- the snapshot has already collapsed histograms to
///   percentile keys, so no bucket series can be reconstructed.
///
/// Internal metric names use '/' separators ("serve/latency_s"); the
/// exposition needs [a-zA-Z0-9_:], so names are sanitized by mapping
/// every other byte to '_' and prefixed "dlcomp_"
/// ("dlcomp_serve_latency_s"). The mapping is not injective; the rendered
/// families are deduplicated in order of first appearance.

#include <string>

#include "obs/metrics.hpp"

namespace dlcomp {

/// "serve/latency_s" -> "dlcomp_serve_latency_s". Leading digits get an
/// extra '_' after the prefix cannot occur (prefix starts with a letter).
[[nodiscard]] std::string prometheus_metric_name(std::string_view name);

/// Full typed exposition of a registry: `# TYPE` lines, counter/gauge
/// samples, histogram bucket series. Families sort by internal name.
[[nodiscard]] std::string render_prometheus(const MetricsRegistry& registry);

/// Untyped gauge exposition of a flat snapshot, appended to `out`.
/// Keys whose sanitized family name already appears in `out` are skipped,
/// so a run can expose a live registry and a result snapshot on one
/// /metrics page without duplicate families.
void render_prometheus_snapshot(const MetricsSnapshot& snapshot,
                                std::string& out);

}  // namespace dlcomp
