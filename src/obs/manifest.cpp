#include "obs/manifest.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <sstream>

#include "common/error.hpp"
#include "common/json.hpp"

namespace dlcomp {

namespace {

constexpr std::string_view kManifestMarker = "dlcomp_manifest";
constexpr double kManifestVersion = 1.0;

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw Error("obs: cannot open '" + path + "'");
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

bool contains_ci(const std::string& haystack, std::string_view needle) {
  const auto lower = [](char c) {
    return c >= 'A' && c <= 'Z' ? static_cast<char>(c + 32) : c;
  };
  if (needle.empty() || haystack.size() < needle.size()) return false;
  for (std::size_t i = 0; i + needle.size() <= haystack.size(); ++i) {
    bool hit = true;
    for (std::size_t j = 0; j < needle.size(); ++j) {
      if (lower(haystack[i + j]) != lower(needle[j])) {
        hit = false;
        break;
      }
    }
    if (hit) return true;
  }
  return false;
}

bool ends_with(const std::string& s, std::string_view suffix) {
  return s.size() >= suffix.size() &&
         s.compare(s.size() - suffix.size(), suffix.size(), suffix) == 0;
}

/// Chrome trace -> per-name aggregate durations. Only complete ("X")
/// events carry durations; "dur" is microseconds per the trace format.
std::map<std::string, double> aggregate_chrome_trace(const JsonValue& doc) {
  const JsonValue* events = doc.find("traceEvents");
  DLCOMP_CHECK(events != nullptr && events->is_array());
  std::map<std::string, double> out;
  for (const JsonValue& event : events->items()) {
    if (!event.is_object()) continue;
    const JsonValue* ph = event.find("ph");
    if (ph == nullptr || !ph->is_string() || ph->as_string() != "X") continue;
    const JsonValue* name = event.find("name");
    const JsonValue* dur = event.find("dur");
    if (name == nullptr || !name->is_string() || dur == nullptr ||
        !dur->is_number()) {
      continue;
    }
    out["trace/" + name->as_string() + "_s"] += dur->as_number() * 1e-6;
    out["trace/" + name->as_string() + "_n"] += 1.0;
  }
  return out;
}

const char* diff_status_name(DiffStatus status) {
  switch (status) {
    case DiffStatus::kMatch: return "match";
    case DiffStatus::kImproved: return "improved";
    case DiffStatus::kChanged: return "changed";
    case DiffStatus::kRegression: return "regression";
    case DiffStatus::kOnlyLeft: return "only_reference";
    case DiffStatus::kOnlyRight: return "only_candidate";
  }
  return "?";
}

}  // namespace

void RunManifest::save(const std::string& path) const {
  JsonValue doc = JsonValue::object();
  doc.set(std::string(kManifestMarker), JsonValue(kManifestVersion));
  doc.set("label", JsonValue(label));
  doc.set("mode", JsonValue(mode));
  doc.set("codec", JsonValue(codec));
  doc.set("error_bound", JsonValue(error_bound));
  doc.set("seed", JsonValue(static_cast<double>(seed)));
  doc.set("created", JsonValue(created));

  JsonValue cfg = JsonValue::object();
  for (const auto& [key, value] : config) cfg.set(key, JsonValue(value));
  doc.set("config", std::move(cfg));

  JsonValue mts = JsonValue::object();
  for (const auto& [key, value] : metrics) mts.set(key, JsonValue(value));
  doc.set("metrics", std::move(mts));

  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) throw Error("obs: cannot write '" + path + "'");
  out << doc.dump(2) << '\n';
  if (!out) throw Error("obs: short write to '" + path + "'");
}

std::map<std::string, double> load_comparable_metrics(
    const std::string& path, RunManifest* out_manifest) {
  const JsonValue doc = json_parse(read_file(path));

  if (doc.is_object() && doc.find(kManifestMarker) != nullptr) {
    RunManifest manifest;
    const auto str = [&doc](std::string_view key) {
      const JsonValue* v = doc.find(key);
      return v != nullptr && v->is_string() ? v->as_string() : std::string();
    };
    manifest.label = str("label");
    manifest.mode = str("mode");
    manifest.codec = str("codec");
    manifest.created = str("created");
    if (const JsonValue* v = doc.find("error_bound");
        v != nullptr && v->is_number()) {
      manifest.error_bound = v->as_number();
    }
    if (const JsonValue* v = doc.find("seed"); v != nullptr && v->is_number()) {
      manifest.seed = static_cast<std::uint64_t>(v->as_number());
    }
    if (const JsonValue* cfg = doc.find("config");
        cfg != nullptr && cfg->is_object()) {
      for (const auto& [key, value] : cfg->members()) {
        if (value.is_string()) manifest.config[key] = value.as_string();
      }
    }
    if (const JsonValue* mts = doc.find("metrics");
        mts != nullptr && mts->is_object()) {
      for (const auto& [key, value] : mts->members()) {
        if (value.is_number()) manifest.metrics[key] = value.as_number();
      }
    }
    if (out_manifest != nullptr) *out_manifest = manifest;
    return manifest.metrics;
  }

  if (doc.is_object() && doc.find("traceEvents") != nullptr) {
    return aggregate_chrome_trace(doc);
  }

  // Generic JSON report (BENCH_codec.json, bench --smoke output, ...).
  std::vector<std::pair<std::string, double>> flat;
  json_flatten_numbers(doc, "", flat);
  std::map<std::string, double> out;
  for (auto& [key, value] : flat) out.insert_or_assign(std::move(key), value);
  return out;
}

bool diff_key_is_exact(const std::string& key) {
  return contains_ci(key, "crc") || contains_ci(key, "grow");
}

bool diff_key_is_timing(const std::string& key) {
  return ends_with(key, "_s") || ends_with(key, "_us") ||
         ends_with(key, "_ms") || ends_with(key, "_ns") ||
         contains_ci(key, "seconds") || contains_ci(key, "latency") ||
         contains_ci(key, "/p50") || contains_ci(key, "/p95") ||
         contains_ci(key, "/p99") || contains_ci(key, "duration");
}

DiffReport diff_metrics(const std::map<std::string, double>& reference,
                        const std::map<std::string, double>& candidate,
                        const DiffOptions& options) {
  const auto ignored = [&options](const std::string& key) {
    return std::any_of(options.ignore.begin(), options.ignore.end(),
                       [&key](const std::string& needle) {
                         return key.find(needle) != std::string::npos;
                       });
  };

  DiffReport report;
  auto lhs = reference.begin();
  auto rhs = candidate.begin();
  while (lhs != reference.end() || rhs != candidate.end()) {
    DiffEntry entry;
    if (rhs == candidate.end() ||
        (lhs != reference.end() && lhs->first < rhs->first)) {
      entry.key = lhs->first;
      entry.reference = lhs->second;
      entry.status = DiffStatus::kOnlyLeft;
      ++lhs;
    } else if (lhs == reference.end() || rhs->first < lhs->first) {
      entry.key = rhs->first;
      entry.candidate = rhs->second;
      entry.status = DiffStatus::kOnlyRight;
      ++rhs;
    } else {
      entry.key = lhs->first;
      entry.reference = lhs->second;
      entry.candidate = rhs->second;
      ++lhs;
      ++rhs;
      const double base = std::fabs(entry.reference);
      entry.rel_delta = base > 0.0
                            ? (entry.candidate - entry.reference) / base
                            : (entry.candidate == entry.reference ? 0.0
                               : entry.candidate > entry.reference ? 1.0
                                                                   : -1.0);
      if (ignored(entry.key)) continue;
      if (diff_key_is_exact(entry.key)) {
        entry.status = entry.candidate == entry.reference
                           ? DiffStatus::kMatch
                           : DiffStatus::kRegression;
      } else if (diff_key_is_timing(entry.key)) {
        if (entry.rel_delta > options.rel_tol) {
          entry.status = DiffStatus::kRegression;
        } else if (entry.rel_delta < -options.rel_tol) {
          entry.status = DiffStatus::kImproved;
        } else {
          entry.status = DiffStatus::kMatch;
        }
      } else {
        if (std::fabs(entry.rel_delta) > options.rel_tol) {
          entry.status = options.strict_values ? DiffStatus::kRegression
                                               : DiffStatus::kChanged;
        } else {
          entry.status = DiffStatus::kMatch;
        }
      }
      switch (entry.status) {
        case DiffStatus::kMatch: ++report.matches; break;
        case DiffStatus::kImproved: ++report.improvements; break;
        case DiffStatus::kChanged: ++report.changes; break;
        case DiffStatus::kRegression: ++report.regressions; break;
        default: break;
      }
      report.entries.push_back(std::move(entry));
      continue;
    }
    if (ignored(entry.key)) continue;
    if (options.strict_keys) {
      entry.status = DiffStatus::kRegression;
      ++report.regressions;
    }
    report.entries.push_back(std::move(entry));
  }
  return report;
}

std::string DiffReport::to_json() const {
  JsonValue doc = JsonValue::object();
  doc.set("verdict", JsonValue(std::string(verdict())));
  doc.set("regressions", JsonValue(static_cast<double>(regressions)));
  doc.set("improvements", JsonValue(static_cast<double>(improvements)));
  doc.set("changes", JsonValue(static_cast<double>(changes)));
  doc.set("matches", JsonValue(static_cast<double>(matches)));
  JsonValue list = JsonValue::array();
  for (const DiffEntry& entry : entries) {
    if (entry.status == DiffStatus::kMatch) continue;  // keep output small
    JsonValue e = JsonValue::object();
    e.set("key", JsonValue(entry.key));
    e.set("status", JsonValue(std::string(diff_status_name(entry.status))));
    e.set("reference", JsonValue(entry.reference));
    e.set("candidate", JsonValue(entry.candidate));
    e.set("rel_delta", JsonValue(entry.rel_delta));
    list.push_back(std::move(e));
  }
  doc.set("entries", std::move(list));
  return doc.dump(2);
}

std::string DiffReport::to_text() const {
  std::ostringstream out;
  out << "verdict: " << verdict() << "  (" << regressions << " regressions, "
      << improvements << " improvements, " << changes << " changes, "
      << matches << " within tolerance)\n";
  for (const DiffEntry& entry : entries) {
    if (entry.status == DiffStatus::kMatch) continue;
    char line[256];
    if (entry.status == DiffStatus::kOnlyLeft ||
        entry.status == DiffStatus::kOnlyRight) {
      std::snprintf(line, sizeof(line), "  %-14s %s\n",
                    diff_status_name(entry.status), entry.key.c_str());
    } else {
      std::snprintf(line, sizeof(line),
                    "  %-14s %s  %.6g -> %.6g  (%+.1f%%)\n",
                    diff_status_name(entry.status), entry.key.c_str(),
                    entry.reference, entry.candidate,
                    entry.rel_delta * 100.0);
    }
    out << line;
  }
  return out.str();
}

}  // namespace dlcomp
