#pragma once

/// \file manifest.hpp
/// Run manifests and cross-run regression diffing.
///
/// A manifest (`<prefix>.run.json`) is the durable record of one traced
/// or benchmarked run: label, workload mode, codec choices, seed, the
/// full flag configuration, and the final numeric metric snapshot. Two
/// manifests -- or, via the loaders, any two numeric JSON reports or
/// Chrome trace files -- diff into a per-key report with tolerance
/// bands and a machine-readable verdict, which is what the
/// `dlcomp obs diff` subcommand and the CI perf gate run.
///
/// Key classification during a diff:
///   exact  -- substring "crc" or "grow": bit-for-bit reproducibility
///             counters; any difference is a regression.
///   timing -- keys that look like durations/latencies ("_s", "_us",
///             "seconds", "/p50"...): candidate > reference *
///             (1 + rel_tol) is a regression (faster is never flagged).
///   value  -- everything else: relative difference beyond rel_tol is
///             reported as a change (info), not a regression, unless
///             --strict-values promotes it.
/// Keys matching an ignore substring are skipped entirely (machine-
/// dependent throughputs in CI).

#include <cstddef>
#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace dlcomp {

struct RunManifest {
  std::string label;
  std::string mode;        ///< "trace", "serve", "bench", ...
  std::string codec;
  double error_bound = 0.0;
  std::uint64_t seed = 0;
  std::string created;     ///< ISO-8601 UTC, informational only
  std::map<std::string, std::string> config;  ///< flag name -> value
  std::map<std::string, double> metrics;

  void save(const std::string& path) const;
};

/// Loads `path` as comparable key/value metrics, accepting three shapes:
///  - a run manifest (detected by its "dlcomp_manifest" marker): the
///    metrics map, plus "manifest" metadata in `out_manifest`;
///  - a Chrome trace file (detected by "traceEvents"): complete "X"
///    events aggregate per name into "trace/<name>_s" total seconds and
///    "trace/<name>_n" counts;
///  - any other JSON document: every numeric leaf flattened to
///    "a/b/c" -> value.
/// Throws dlcomp::Error when the file is unreadable or not JSON.
std::map<std::string, double> load_comparable_metrics(
    const std::string& path, RunManifest* out_manifest = nullptr);

enum class DiffStatus {
  kMatch,       ///< within tolerance (or bit-identical for exact keys)
  kImproved,    ///< timing key got faster beyond the tolerance band
  kChanged,     ///< value key moved beyond tolerance (informational)
  kRegression,  ///< exact mismatch, or timing key slower than the band
  kOnlyLeft,    ///< key present only in the reference
  kOnlyRight,   ///< key present only in the candidate
};

struct DiffEntry {
  std::string key;
  DiffStatus status = DiffStatus::kMatch;
  double reference = 0.0;
  double candidate = 0.0;
  double rel_delta = 0.0;  ///< (candidate - reference) / |reference|
};

struct DiffOptions {
  double rel_tol = 0.25;  ///< tolerance band for timing/value keys
  /// Substrings; keys containing any are excluded from the diff.
  std::vector<std::string> ignore;
  /// Promote out-of-band value-key changes to regressions.
  bool strict_values = false;
  /// Flag keys that exist on one side only (default: informational).
  bool strict_keys = false;
};

struct DiffReport {
  std::vector<DiffEntry> entries;  ///< sorted by key; kMatch included
  std::size_t regressions = 0;
  std::size_t improvements = 0;
  std::size_t changes = 0;
  std::size_t matches = 0;

  [[nodiscard]] bool ok() const noexcept { return regressions == 0; }
  [[nodiscard]] const char* verdict() const noexcept {
    return ok() ? "ok" : "regression";
  }
  /// Machine-readable report (the `dlcomp obs diff --json` output).
  [[nodiscard]] std::string to_json() const;
  /// Human table: non-match entries, one per line.
  [[nodiscard]] std::string to_text() const;
};

/// True when the diff rules treat `key` as exact-match (crc / grow).
[[nodiscard]] bool diff_key_is_exact(const std::string& key);
/// True when the diff rules treat `key` as a timing key.
[[nodiscard]] bool diff_key_is_timing(const std::string& key);

[[nodiscard]] DiffReport diff_metrics(
    const std::map<std::string, double>& reference,
    const std::map<std::string, double>& candidate,
    const DiffOptions& options = {});

}  // namespace dlcomp
