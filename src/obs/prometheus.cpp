#include "obs/prometheus.hpp"

#include <cmath>
#include <cstdio>

namespace dlcomp {

namespace {

void append_value(std::string& out, double v) {
  char buf[40];
  if (std::isnan(v)) {
    std::snprintf(buf, sizeof(buf), "NaN");
  } else if (std::isinf(v)) {
    std::snprintf(buf, sizeof(buf), v > 0 ? "+Inf" : "-Inf");
  } else if (v == std::floor(v) && std::fabs(v) < 1e15) {
    std::snprintf(buf, sizeof(buf), "%.0f", v);
  } else {
    std::snprintf(buf, sizeof(buf), "%.10g", v);
  }
  out += buf;
}

void append_type(std::string& out, const std::string& family,
                 std::string_view type) {
  out += "# TYPE ";
  out += family;
  out.push_back(' ');
  out += type;
  out.push_back('\n');
}

void append_sample(std::string& out, const std::string& family,
                   std::string_view suffix, std::string_view labels,
                   double value) {
  out += family;
  out += suffix;
  out += labels;
  out.push_back(' ');
  append_value(out, value);
  out.push_back('\n');
}

/// True when `out` already holds a "# TYPE <family> " line -- the
/// dedup check for non-injective sanitization and snapshot overlap.
bool family_rendered(const std::string& out, const std::string& family) {
  const std::string needle = "# TYPE " + family + " ";
  return out.find(needle) != std::string::npos;
}

}  // namespace

std::string prometheus_metric_name(std::string_view name) {
  std::string out = "dlcomp_";
  out.reserve(out.size() + name.size());
  for (const char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_' || c == ':';
    out.push_back(ok ? c : '_');
  }
  return out;
}

std::string render_prometheus(const MetricsRegistry& registry) {
  std::string out;
  out.reserve(2048);
  registry.visit(
      [&out](const std::string& name, const Counter& c) {
        const std::string family = prometheus_metric_name(name) + "_total";
        if (family_rendered(out, family)) return;
        append_type(out, family, "counter");
        append_sample(out, family, "", "", static_cast<double>(c.value()));
      },
      [&out](const std::string& name, const Gauge& g) {
        const std::string family = prometheus_metric_name(name);
        if (family_rendered(out, family)) return;
        append_type(out, family, "gauge");
        append_sample(out, family, "", "", g.value());
      },
      [&out](const std::string& name, const HistogramMetric& h) {
        const std::string family = prometheus_metric_name(name);
        if (family_rendered(out, family)) return;
        append_type(out, family, "histogram");
        const std::vector<double>& bounds = h.upper_bounds();
        const std::vector<std::uint64_t> counts = h.bucket_counts();
        std::uint64_t cumulative = 0;
        for (std::size_t i = 0; i < bounds.size(); ++i) {
          cumulative += counts[i];
          std::string labels = "{le=\"";
          append_value(labels, bounds[i]);
          labels += "\"}";
          append_sample(out, family, "_bucket", labels,
                        static_cast<double>(cumulative));
        }
        cumulative += counts[bounds.size()];
        append_sample(out, family, "_bucket", "{le=\"+Inf\"}",
                      static_cast<double>(cumulative));
        append_sample(out, family, "_sum", "", h.sum());
        append_sample(out, family, "_count", "",
                      static_cast<double>(h.count()));
      });
  return out;
}

void render_prometheus_snapshot(const MetricsSnapshot& snapshot,
                                std::string& out) {
  for (const auto& [key, value] : snapshot.values) {
    const std::string family = prometheus_metric_name(key);
    if (family_rendered(out, family)) continue;
    append_type(out, family, "gauge");
    append_sample(out, family, "", "", value);
  }
}

}  // namespace dlcomp
