#include "obs/trace.hpp"

#include <algorithm>
#include <bit>
#include <chrono>
#include <fstream>
#include <iomanip>
#include <map>
#include <ostream>

#include "common/error.hpp"

namespace dlcomp {

namespace {

struct TlsRing {
  Tracer* owner = nullptr;  // opaque tag: which tracer/generation bound it
  void* ring = nullptr;
  std::uint64_t generation = 0;
};

thread_local TlsRing tls_ring;
thread_local int tls_rank = -1;

std::atomic<std::uint64_t> g_async_id{0};

[[nodiscard]] std::uint64_t wall_now_ns() noexcept {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

[[nodiscard]] TraceEvent wall_event(TraceEvent::Kind kind,
                                    const char* name) noexcept {
  TraceEvent ev;
  ev.kind = kind;
  ev.rank = static_cast<std::int16_t>(tls_rank);
  ev.name = name;
  ev.wall_ns = wall_now_ns();
  return ev;
}

void json_escape(std::ostream& out, std::string_view s) {
  for (const char c : s) {
    switch (c) {
      case '"': out << "\\\""; break;
      case '\\': out << "\\\\"; break;
      case '\n': out << "\\n"; break;
      case '\t': out << "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          out << ' ';
        } else {
          out << c;
        }
    }
  }
}

}  // namespace

void trace_begin(const char* name) {
  Tracer::instance().record(wall_event(TraceEvent::Kind::kBegin, name));
}

void trace_end(const char* name) {
  Tracer::instance().record(wall_event(TraceEvent::Kind::kEnd, name));
}

void trace_instant(const char* name) {
  Tracer::instance().record(wall_event(TraceEvent::Kind::kInstant, name));
}

void trace_counter(const char* name, double value) {
  TraceEvent ev = wall_event(TraceEvent::Kind::kCounter, name);
  ev.a = value;
  Tracer::instance().record(ev);
}

void trace_sim_slice(int rank, std::string_view phase, double begin_s,
                     double dur_s) {
  TraceEvent ev;
  ev.kind = TraceEvent::Kind::kSimSlice;
  ev.rank = static_cast<std::int16_t>(rank);
  ev.name = Tracer::instance().intern(phase);
  ev.a = begin_s;
  ev.b = dur_s;
  Tracer::instance().record(ev);
}

void trace_sim_async(int rank, const char* name, double begin_s,
                     double end_s) {
  const auto id = static_cast<double>(
      g_async_id.fetch_add(1, std::memory_order_relaxed));
  TraceEvent ev;
  ev.kind = TraceEvent::Kind::kAsyncBegin;
  ev.rank = static_cast<std::int16_t>(rank);
  ev.name = name;
  ev.a = begin_s;
  ev.b = id;
  Tracer& tracer = Tracer::instance();
  tracer.record(ev);
  ev.kind = TraceEvent::Kind::kAsyncEnd;
  ev.a = end_s;
  tracer.record(ev);
}

void trace_bind_thread_rank(int rank) noexcept { tls_rank = rank; }

int trace_thread_rank() noexcept { return tls_rank; }

Tracer& Tracer::instance() {
  static Tracer* tracer = new Tracer();  // never destroyed: rings must
                                         // outlive detached TLS caches
  return *tracer;
}

void Tracer::enable(std::size_t ring_capacity) {
  std::lock_guard lock(mutex_);
  capacity_ = std::bit_ceil(std::max<std::size_t>(ring_capacity, 2));
  grow_events_.store(0, std::memory_order_relaxed);
  // Bump the generation so every thread re-registers; old rings stay
  // owned (retired) so stale TLS pointers never dangle.
  generation_.fetch_add(1, std::memory_order_release);
  g_trace_enabled.store(true, std::memory_order_release);
}

void Tracer::disable() {
  g_trace_enabled.store(false, std::memory_order_release);
}

Tracer::Ring* Tracer::register_thread() {
  std::lock_guard lock(mutex_);
  auto ring = std::make_unique<Ring>(
      capacity_, next_thread_index_++,
      generation_.load(std::memory_order_relaxed));
  Ring* raw = ring.get();
  rings_.push_back(std::move(ring));
  grow_events_.fetch_add(1, std::memory_order_relaxed);
  return raw;
}

void Tracer::record(const TraceEvent& ev) {
  TlsRing& tls = tls_ring;
  const std::uint64_t gen = generation_.load(std::memory_order_acquire);
  if (tls.owner != this || tls.generation != gen) {
    tls.ring = register_thread();
    tls.owner = this;
    tls.generation = gen;
  }
  auto& ring = *static_cast<Ring*>(tls.ring);
  const std::uint64_t head = ring.head.load(std::memory_order_relaxed);
  ring.events[head & ring.mask] = ev;
  ring.head.store(head + 1, std::memory_order_release);
}

const char* Tracer::intern(std::string_view name) {
  {
    std::shared_lock lock(intern_mutex_);
    const auto it = interned_.find(name);
    if (it != interned_.end()) return it->c_str();
  }
  std::unique_lock lock(intern_mutex_);
  return interned_.emplace(name).first->c_str();
}

std::vector<Tracer::ThreadTrace> Tracer::collect() const {
  std::lock_guard lock(mutex_);
  const std::uint64_t gen = generation_.load(std::memory_order_relaxed);
  std::vector<ThreadTrace> out;
  for (const auto& ring : rings_) {
    if (ring->generation != gen) continue;
    ThreadTrace trace;
    trace.thread_index = ring->thread_index;
    const std::uint64_t head = ring->head.load(std::memory_order_acquire);
    const std::uint64_t cap = ring->mask + 1;
    const std::uint64_t n = std::min(head, cap);
    trace.dropped = head - n;
    trace.events.reserve(n);
    for (std::uint64_t i = head - n; i < head; ++i) {
      trace.events.push_back(ring->events[i & ring->mask]);
    }
    out.push_back(std::move(trace));
  }
  std::sort(out.begin(), out.end(),
            [](const ThreadTrace& lhs, const ThreadTrace& rhs) {
              return lhs.thread_index < rhs.thread_index;
            });
  return out;
}

std::uint64_t Tracer::dropped_events() const {
  std::uint64_t total = 0;
  for (const ThreadTrace& t : collect()) total += t.dropped;
  return total;
}

void Tracer::write_chrome_trace(std::ostream& out) const {
  const std::vector<ThreadTrace> traces = collect();
  out << std::setprecision(15);

  // Normalize wall timestamps so the trace starts near t=0.
  std::uint64_t wall_t0 = UINT64_MAX;
  for (const ThreadTrace& t : traces) {
    for (const TraceEvent& ev : t.events) {
      if (ev.wall_ns != 0) wall_t0 = std::min(wall_t0, ev.wall_ns);
    }
  }
  if (wall_t0 == UINT64_MAX) wall_t0 = 0;

  constexpr int kWallPid = 0;
  constexpr int kSimPid = 1;

  out << "{\"traceEvents\":[\n";
  bool first = true;
  const auto emit = [&](const auto& writer) {
    if (!first) out << ",\n";
    first = false;
    writer();
  };

  const auto meta_name = [&](const char* what, int pid, int tid,
                             std::string_view value, bool thread_meta) {
    emit([&] {
      out << "{\"name\":\"" << what << "\",\"ph\":\"M\",\"pid\":" << pid;
      if (thread_meta) out << ",\"tid\":" << tid;
      out << ",\"args\":{\"name\":\"";
      json_escape(out, value);
      out << "\"}}";
    });
  };

  meta_name("process_name", kWallPid, 0, "wall clock", false);
  meta_name("process_name", kSimPid, 0, "sim clock", false);

  // Name wall tracks after the rank bound to the thread (if any) and sim
  // tracks after the rank they model.
  std::map<int, int> wall_thread_rank;   // thread_index -> rank or -1
  std::map<int, bool> sim_ranks;
  for (const ThreadTrace& t : traces) {
    int rank = -1;
    for (const TraceEvent& ev : t.events) {
      switch (ev.kind) {
        case TraceEvent::Kind::kSimSlice:
        case TraceEvent::Kind::kAsyncBegin:
        case TraceEvent::Kind::kAsyncEnd:
          sim_ranks[ev.rank] = true;
          break;
        default:
          if (ev.rank >= 0) rank = ev.rank;
      }
    }
    wall_thread_rank[static_cast<int>(t.thread_index)] = rank;
  }
  for (const auto& [tid, rank] : wall_thread_rank) {
    std::string label = rank >= 0 ? "rank " + std::to_string(rank)
                                  : "thread " + std::to_string(tid);
    meta_name("thread_name", kWallPid, tid, label, true);
  }
  for (const auto& [rank, present] : sim_ranks) {
    (void)present;
    meta_name("thread_name", kSimPid, rank,
              "rank " + std::to_string(rank), true);
  }

  const auto ts_us = [&](std::uint64_t wall_ns) {
    return static_cast<double>(wall_ns - wall_t0) / 1000.0;
  };

  for (const ThreadTrace& t : traces) {
    const int tid = static_cast<int>(t.thread_index);
    for (const TraceEvent& ev : t.events) {
      const auto name_field = [&] {
        out << "{\"name\":\"";
        json_escape(out, ev.name != nullptr ? ev.name : "?");
        out << "\"";
      };
      switch (ev.kind) {
        case TraceEvent::Kind::kBegin:
        case TraceEvent::Kind::kEnd:
          emit([&] {
            name_field();
            out << ",\"ph\":\""
                << (ev.kind == TraceEvent::Kind::kBegin ? 'B' : 'E')
                << "\",\"pid\":" << kWallPid << ",\"tid\":" << tid
                << ",\"ts\":" << ts_us(ev.wall_ns) << "}";
          });
          break;
        case TraceEvent::Kind::kInstant:
          emit([&] {
            name_field();
            out << ",\"ph\":\"i\",\"s\":\"t\",\"pid\":" << kWallPid
                << ",\"tid\":" << tid << ",\"ts\":" << ts_us(ev.wall_ns)
                << "}";
          });
          break;
        case TraceEvent::Kind::kCounter:
          emit([&] {
            name_field();
            out << ",\"ph\":\"C\",\"pid\":" << kWallPid << ",\"tid\":" << tid
                << ",\"ts\":" << ts_us(ev.wall_ns)
                << ",\"args\":{\"value\":" << ev.a << "}}";
          });
          break;
        case TraceEvent::Kind::kSimSlice:
          emit([&] {
            name_field();
            out << ",\"ph\":\"X\",\"pid\":" << kSimPid
                << ",\"tid\":" << ev.rank << ",\"ts\":" << ev.a * 1e6
                << ",\"dur\":" << ev.b * 1e6 << "}";
          });
          break;
        case TraceEvent::Kind::kAsyncBegin:
        case TraceEvent::Kind::kAsyncEnd:
          emit([&] {
            name_field();
            out << ",\"cat\":\"hidden\",\"ph\":\""
                << (ev.kind == TraceEvent::Kind::kAsyncBegin ? 'b' : 'e')
                << "\",\"id\":" << static_cast<std::uint64_t>(ev.b)
                << ",\"pid\":" << kSimPid << ",\"tid\":" << ev.rank
                << ",\"ts\":" << ev.a * 1e6 << "}";
          });
          break;
      }
    }
  }
  out << "\n],\"displayTimeUnit\":\"ms\"}\n";
}

void Tracer::export_chrome_trace(const std::string& path) const {
  std::ofstream out(path, std::ios::binary);
  DLCOMP_CHECK_MSG(out.good(), "cannot open trace output: " << path);
  write_chrome_trace(out);
  out.flush();
  DLCOMP_CHECK_MSG(out.good(), "failed writing trace output: " << path);
}

}  // namespace dlcomp
