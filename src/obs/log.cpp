#include "obs/log.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstring>

#include "common/json.hpp"

namespace dlcomp {

std::string_view log_level_name(LogLevel level) noexcept {
  switch (level) {
    case LogLevel::kDebug: return "debug";
    case LogLevel::kInfo: return "info";
    case LogLevel::kWarn: return "warn";
    case LogLevel::kError: return "error";
  }
  return "?";
}

namespace {

std::uint64_t steady_ns() noexcept {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

double unix_seconds() noexcept {
  return std::chrono::duration<double>(
             std::chrono::system_clock::now().time_since_epoch())
      .count();
}

void append_log_number(std::string& out, double v) {
  char buf[32];
  if (std::isfinite(v) && v == std::floor(v) && std::fabs(v) < 1e15) {
    std::snprintf(buf, sizeof(buf), "%.0f", v);
  } else if (std::isfinite(v)) {
    std::snprintf(buf, sizeof(buf), "%.9g", v);
  } else {
    std::snprintf(buf, sizeof(buf), "null");
  }
  out += buf;
}

}  // namespace

Logger& Logger::global() {
  static Logger* logger = new Logger();  // never destroyed (exit-safe)
  return *logger;
}

void Logger::configure(const LogConfig& config) {
  set_min_level(config.min_level);
  site_burst_.store(config.site_burst, std::memory_order_relaxed);
  site_window_ns_.store(
      static_cast<std::uint64_t>(config.site_window_s * 1e9),
      std::memory_order_relaxed);
}

bool Logger::admit(LogLevel level, LogSite& site) noexcept {
  if (static_cast<int>(level) <
      min_level_.load(std::memory_order_relaxed)) {
    return false;  // filtered lines are not "suppressed" -- not counted
  }
  if (level == LogLevel::kError) return true;

  const std::uint64_t now = steady_ns();
  const std::uint64_t window = site_window_ns_.load(std::memory_order_relaxed);
  std::uint64_t start = site.window_start_ns.load(std::memory_order_relaxed);
  if (now - start >= window) {
    // Window rolled over; one racing winner resets the token count. The
    // losers observe the fresh window and take tokens from it.
    if (site.window_start_ns.compare_exchange_strong(
            start, now, std::memory_order_relaxed)) {
      site.in_window.store(0, std::memory_order_relaxed);
    }
  }
  const std::uint32_t taken =
      site.in_window.fetch_add(1, std::memory_order_relaxed);
  if (taken < site_burst_.load(std::memory_order_relaxed)) return true;
  site.suppressed.fetch_add(1, std::memory_order_relaxed);
  lines_suppressed_.fetch_add(1, std::memory_order_relaxed);
  return false;
}

void Logger::log(LogLevel level, std::string_view component,
                 std::string_view message,
                 std::initializer_list<LogField> fields, LogSite* site) {
  LogEntry entry;
  entry.unix_ts = unix_seconds();
  entry.level = level;
  entry.component.assign(component);
  entry.message.assign(message);

  std::uint64_t suppressed = 0;
  if (site != nullptr) {
    suppressed = site->suppressed.exchange(0, std::memory_order_relaxed);
  }

  // Render the structured tail once; both the sink line and the ring
  // entry reuse it.
  std::string& tail = entry.fields_json;
  for (const LogField& f : fields) {
    tail.push_back(',');
    tail += json_quote(f.key);
    tail.push_back(':');
    if (f.is_number) {
      append_log_number(tail, f.number);
    } else {
      tail += json_quote(f.text);
    }
  }
  if (suppressed > 0) {
    tail += ",\"suppressed\":";
    append_log_number(tail, static_cast<double>(suppressed));
  }

  // Publish into the ring: claim a slot, mark it odd, store the packed
  // words, mark even. Long strings truncate to the slot budget.
  PackedEntry packed;
  packed.unix_ts = entry.unix_ts;
  packed.level = static_cast<std::uint32_t>(level);
  const auto copy_truncated = [](char* dst, std::size_t cap,
                                 std::string_view src) {
    const std::size_t n = std::min(cap - 1, src.size());
    std::memcpy(dst, src.data(), n);
    dst[n] = '\0';
  };
  copy_truncated(packed.component, sizeof(packed.component), component);
  copy_truncated(packed.message, sizeof(packed.message), message);
  copy_truncated(packed.fields, sizeof(packed.fields), tail);

  std::uint64_t packed_words[kSlotWords];
  std::memcpy(packed_words, &packed, sizeof(packed));

  const std::uint64_t ticket =
      ring_head_.fetch_add(1, std::memory_order_relaxed);
  RingSlot& slot = ring_[ticket % kRingCapacity];
  // Boehm's seqlock write protocol (odd marker, fence, data, publish),
  // with the seq derived from the ring ticket (2*ticket+1 while writing,
  // 2*ticket+2 when stable) so writers that lap each other onto the same
  // slot produce distinct seq values a reader's before==after check can
  // catch. The CAS claims the slot: if a newer ticket already owns or
  // published it, our entry is the stale one and is dropped (the sink
  // line above the ring is unaffected); if an older writer is mid-write
  // (odd seq below ours), wait it out briefly -- it only has a few word
  // stores left -- and give up rather than spin unboundedly.
  const std::uint64_t writing = 2 * ticket + 1;
  std::uint64_t seq = slot.seq.load(std::memory_order_relaxed);
  bool claimed = false;
  for (int spin = 0; spin < 4096; ++spin) {
    if (seq >= writing) break;  // lapped by a newer writer; drop ours
    if ((seq & 1ull) != 0) {    // older writer mid-write
      seq = slot.seq.load(std::memory_order_relaxed);
      continue;
    }
    if (slot.seq.compare_exchange_weak(seq, writing,
                                       std::memory_order_relaxed)) {
      claimed = true;
      break;
    }
  }
  if (claimed) {
    std::atomic_thread_fence(std::memory_order_release);
    for (std::size_t w = 0; w < kSlotWords; ++w) {
      slot.words[w].store(packed_words[w], std::memory_order_relaxed);
    }
    slot.seq.store(writing + 1, std::memory_order_release);  // even: stable
  }

  lines_emitted_.fetch_add(1, std::memory_order_relaxed);

  std::FILE* sink = sink_.load(std::memory_order_relaxed);
  if (sink == nullptr) return;

  std::string line;
  line.reserve(96 + tail.size());
  line += "{\"ts\":";
  char ts_buf[32];
  std::snprintf(ts_buf, sizeof(ts_buf), "%.3f", entry.unix_ts);
  line += ts_buf;
  line += ",\"level\":";
  line += json_quote(log_level_name(level));
  line += ",\"component\":";
  line += json_quote(component);
  line += ",\"msg\":";
  line += json_quote(message);
  line += tail;
  line += "}\n";

  std::lock_guard lock(io_mutex_);
  std::fwrite(line.data(), 1, line.size(), sink);
  std::fflush(sink);
}

std::vector<LogEntry> Logger::recent(LogLevel min_level) const {
  std::vector<LogEntry> out;
  const std::uint64_t head = ring_head_.load(std::memory_order_acquire);
  const std::uint64_t count = std::min<std::uint64_t>(head, kRingCapacity);
  out.reserve(count);
  for (std::uint64_t i = head - count; i < head; ++i) {
    const RingSlot& slot = ring_[i % kRingCapacity];
    for (int attempt = 0; attempt < 4; ++attempt) {
      const std::uint64_t before = slot.seq.load(std::memory_order_acquire);
      if ((before & 1ull) != 0) continue;  // mid-write; retry
      std::uint64_t words[kSlotWords];
      for (std::size_t w = 0; w < kSlotWords; ++w) {
        words[w] = slot.words[w].load(std::memory_order_relaxed);
      }
      std::atomic_thread_fence(std::memory_order_acquire);
      const std::uint64_t after = slot.seq.load(std::memory_order_relaxed);
      if (before != after) continue;  // torn; retry

      PackedEntry packed;
      std::memcpy(&packed, words, sizeof(packed));
      if (static_cast<int>(packed.level) < static_cast<int>(min_level)) break;
      LogEntry entry;
      entry.unix_ts = packed.unix_ts;
      entry.level = static_cast<LogLevel>(packed.level);
      entry.component.assign(packed.component);
      entry.message.assign(packed.message);
      entry.fields_json.assign(packed.fields);
      out.push_back(std::move(entry));
      break;
    }
  }
  return out;
}

}  // namespace dlcomp
