#pragma once

/// \file http_server.hpp
/// Minimal embedded HTTP/1.1 server for the observability plane. The
/// socket plumbing (bind/listen, nonblocking toggles, monotonic clock)
/// lives in common/net.hpp, shared with the comm layer's TcpTransport,
/// so there is exactly one audited socket layer in the repo. No
/// dependencies: POSIX sockets and poll(2), one background thread
/// multiplexing the listener and every client connection. It serves small, cheap, read-only endpoints
/// (/metrics, /healthz, /status), so the design optimizes for robustness
/// over concurrency: non-blocking sockets, per-connection input/output
/// buffers, pipelined requests, bounded header sizes, idle timeouts.
///
/// Scope (enforced, not aspirational): GET/HEAD only (405 otherwise),
/// no request bodies (411 when Content-Length/Transfer-Encoding appear),
/// HTTP/1.1 keep-alive honored, HTTP/1.0 closes after each response.
///
/// The request parser is a standalone incremental class so the
/// edge-case tests (partial reads, pipelining, oversized headers,
/// malformed request lines) run against it directly, without sockets.

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <string>
#include <string_view>
#include <thread>
#include <utility>
#include <vector>

namespace dlcomp {

struct HttpRequest {
  std::string method;
  std::string target;  ///< path only; the query string is split off
  std::string query;   ///< bytes after '?' (no parsing -- endpoints are flag-free)
  int version_minor = 1;  ///< 0 for HTTP/1.0, 1 for HTTP/1.1
  std::vector<std::pair<std::string, std::string>> headers;

  /// Case-insensitive header lookup; empty view when absent.
  [[nodiscard]] std::string_view header(std::string_view name) const;
};

struct HttpResponse {
  int status = 200;
  std::string content_type = "text/plain; charset=utf-8";
  std::string body;

  static HttpResponse text(int status, std::string body) {
    HttpResponse r;
    r.status = status;
    r.body = std::move(body);
    return r;
  }
  static HttpResponse json(int status, std::string body) {
    HttpResponse r;
    r.status = status;
    r.content_type = "application/json";
    r.body = std::move(body);
    return r;
  }
};

[[nodiscard]] std::string_view http_status_reason(int status) noexcept;

/// Incremental HTTP/1.1 request-head parser. Feed bytes as they arrive;
/// it consumes exactly one request head per next() call, leaving
/// pipelined followers buffered.
class HttpRequestParser {
 public:
  enum class Status {
    kNeedMore,   ///< no complete request head buffered yet
    kComplete,   ///< `request()` holds a parsed request
    kBadRequest, ///< malformed request line or header (respond 400, close)
    kTooLarge,   ///< request head exceeds the limit (respond 431, close)
  };

  explicit HttpRequestParser(std::size_t max_head_bytes = 8192)
      : max_head_bytes_(max_head_bytes) {}

  /// Appends raw bytes from the socket to the internal buffer.
  void feed(std::string_view bytes) { buffer_.append(bytes); }

  /// Tries to parse the next buffered request head. On kComplete the
  /// consumed bytes are removed from the buffer (pipelined requests:
  /// call next() again). kBadRequest/kTooLarge are terminal for the
  /// connection.
  [[nodiscard]] Status next();

  [[nodiscard]] const HttpRequest& request() const noexcept {
    return request_;
  }
  [[nodiscard]] std::size_t buffered_bytes() const noexcept {
    return buffer_.size();
  }

 private:
  std::size_t max_head_bytes_;
  std::string buffer_;
  HttpRequest request_;
};

/// Serializes a response (HEAD suppresses the body but keeps the
/// Content-Length the GET would have had, per RFC 9110).
[[nodiscard]] std::string http_serialize_response(const HttpResponse& response,
                                                  int version_minor,
                                                  bool keep_alive,
                                                  bool head_only);

struct HttpServerConfig {
  /// Loopback only by default: the plane is a local scrape target, not
  /// an internet-facing service.
  std::string bind_address = "127.0.0.1";
  /// 0 binds an ephemeral port (read it back with port()).
  std::uint16_t port = 0;
  std::size_t max_connections = 64;
  std::size_t max_head_bytes = 8192;
  double idle_timeout_s = 30.0;
};

/// poll(2)-driven HTTP server. Handlers run on the server thread and
/// must therefore be fast and non-blocking -- rendering a metrics
/// snapshot, not doing work. Handler exceptions become 500 responses.
class HttpServer {
 public:
  using Handler = std::function<HttpResponse(const HttpRequest&)>;

  explicit HttpServer(HttpServerConfig config = {});
  ~HttpServer();
  HttpServer(const HttpServer&) = delete;
  HttpServer& operator=(const HttpServer&) = delete;

  /// Exact-path route. Register every route before start(); the route
  /// table is read concurrently by the server thread afterwards.
  void add_route(std::string path, Handler handler);

  /// Binds, listens and spawns the server thread. Throws dlcomp::Error
  /// when the socket cannot be bound.
  void start();
  /// Stops the server thread and closes every connection (idempotent).
  void stop();

  [[nodiscard]] bool running() const noexcept { return thread_.joinable(); }
  /// Bound port (after start(); meaningful with config.port == 0).
  [[nodiscard]] std::uint16_t port() const noexcept { return bound_port_; }

  /// Total requests answered (including error responses) -- test hook.
  [[nodiscard]] std::uint64_t requests_served() const noexcept;

 private:
  struct Connection;
  void run_loop();
  void accept_new(std::vector<Connection>& connections);
  /// Returns false when the connection must close.
  bool service_input(Connection& conn);

  HttpServerConfig config_;
  std::vector<std::pair<std::string, Handler>> routes_;
  int listen_fd_ = -1;
  int wake_pipe_[2] = {-1, -1};
  std::uint16_t bound_port_ = 0;
  std::thread thread_;
  std::atomic<std::uint64_t> requests_served_{0};
};

}  // namespace dlcomp
