#pragma once

/// \file obs_server.hpp
/// The assembled observability plane: a StatusBoard that workloads
/// heartbeat into, and an ObservabilityServer exposing it over HTTP.
///
/// Endpoints (all GET/HEAD, loopback by default):
///   /metrics  Prometheus text exposition -- live registry families
///             (typed, with histogram buckets) plus any extra snapshot
///             provider (end-of-run results as untyped gauges).
///   /healthz  200 "ok" while the server runs: liveness is "the process
///             is up and its poll loop answers", nothing else.
///   /readyz   503 until the workload flips StatusBoard::set_ready(true),
///             200 after; flips back to 503 on set_ready(false)
///             (drain/shutdown). Scrapers use it to gate traffic.
///   /status   JSON progress report: state string, iteration / total,
///             epoch, items/s throughput, uptime, seconds since the last
///             heartbeat, and the recent warning/error ring from the
///             structured logger.
///
/// The server thread only ever reads atomics and takes the short status
/// mutex; a scrape never blocks training or serving.

#include <atomic>
#include <cstdint>
#include <functional>
#include <mutex>
#include <string>

#include "obs/http_server.hpp"
#include "obs/log.hpp"
#include "obs/metrics.hpp"

namespace dlcomp {

/// Shared progress state: workloads write (cheap relaxed stores from the
/// hot loop's record points), the /readyz and /status handlers read.
class StatusBoard {
 public:
  void set_ready(bool ready) noexcept {
    ready_.store(ready, std::memory_order_release);
  }
  [[nodiscard]] bool ready() const noexcept {
    return ready_.load(std::memory_order_acquire);
  }

  void set_state(std::string state) {
    std::lock_guard lock(mutex_);
    state_ = std::move(state);
  }
  [[nodiscard]] std::string state() const {
    std::lock_guard lock(mutex_);
    return state_;
  }

  /// One call per record point: progress plus an implicit heartbeat.
  void heartbeat(std::uint64_t iteration, double items_per_s) noexcept;

  void set_total_iterations(std::uint64_t n) noexcept {
    total_iterations_.store(n, std::memory_order_relaxed);
  }
  void set_epoch(std::uint64_t epoch) noexcept {
    epoch_.store(epoch, std::memory_order_relaxed);
  }

  [[nodiscard]] std::uint64_t iteration() const noexcept {
    return iteration_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t total_iterations() const noexcept {
    return total_iterations_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t epoch() const noexcept {
    return epoch_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] double items_per_s() const noexcept {
    return items_per_s_.load(std::memory_order_relaxed);
  }
  /// Seconds since the last heartbeat(); a large value on a live /status
  /// page means the workload is stuck, not slow. Negative when no
  /// heartbeat has ever been recorded.
  [[nodiscard]] double heartbeat_age_s() const noexcept;

 private:
  std::atomic<bool> ready_{false};
  std::atomic<std::uint64_t> iteration_{0};
  std::atomic<std::uint64_t> total_iterations_{0};
  std::atomic<std::uint64_t> epoch_{0};
  std::atomic<double> items_per_s_{0.0};
  std::atomic<double> last_heartbeat_s_{-1.0};  ///< steady-clock seconds
  mutable std::mutex mutex_;
  std::string state_ = "starting";
};

struct ObservabilityConfig {
  HttpServerConfig http;
  /// Minimum level of log-ring entries surfaced in /status.
  LogLevel status_log_level = LogLevel::kWarn;
};

class ObservabilityServer {
 public:
  /// `registry` and `board` must outlive the server. `extra_snapshot`
  /// (optional) is called per /metrics scrape for untyped end-of-run
  /// style gauges appended after the registry families.
  ObservabilityServer(ObservabilityConfig config, MetricsRegistry& registry,
                      StatusBoard& board,
                      std::function<MetricsSnapshot()> extra_snapshot = {});

  void start() { http_.start(); }
  void stop() { http_.stop(); }
  [[nodiscard]] std::uint16_t port() const noexcept { return http_.port(); }
  [[nodiscard]] HttpServer& http() noexcept { return http_; }

  /// The /status response body (exposed for tests and the CLI).
  [[nodiscard]] std::string status_json() const;

 private:
  ObservabilityConfig config_;
  MetricsRegistry& registry_;
  StatusBoard& board_;
  std::function<MetricsSnapshot()> extra_snapshot_;
  double start_s_ = 0.0;
  HttpServer http_;
};

}  // namespace dlcomp
