#pragma once

/// \file query.hpp
/// Core vocabulary of the online serving subsystem. A recommendation
/// query asks the model to score `num_samples` candidate items for one
/// user (DeepRecSys's "query size"); the load generator stamps arrival
/// times, the batch scheduler coalesces queries into inference batches.

#include <cstddef>
#include <cstdint>
#include <string_view>

namespace dlcomp {

/// One inference request in the simulated query stream.
struct Query {
  std::uint64_t id = 0;
  /// Arrival time on the simulated clock, seconds since stream start.
  double arrival_s = 0.0;
  /// Candidate items to score (rows this query contributes to a batch).
  std::size_t num_samples = 1;
};

/// Query arrival process shapes (DeepRecSys-style load generator).
enum class ArrivalPattern : std::uint8_t {
  kPoisson,  ///< homogeneous Poisson: i.i.d. exponential inter-arrivals
  kBursty,   ///< two-state Markov-modulated Poisson (bursts and lulls)
  kDiurnal,  ///< sinusoidally rate-modulated Poisson (traffic over a day)
};

/// Parses "poisson" / "bursty" / "diurnal"; throws Error otherwise.
ArrivalPattern parse_arrival_pattern(std::string_view name);

/// Stable name of a pattern (inverse of parse_arrival_pattern).
std::string_view arrival_pattern_name(ArrivalPattern pattern) noexcept;

}  // namespace dlcomp
