#include "serve/shard_store.hpp"

#include <algorithm>
#include <cstring>

#include "common/error.hpp"
#include "compress/registry.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace dlcomp {

namespace {

/// Cache key: tables and rows both fit 32 bits (26 tables, u32 row ids).
std::uint64_t row_key(std::size_t table, std::uint32_t row) {
  return (static_cast<std::uint64_t>(table) << 32) | row;
}

}  // namespace

ShardedEmbeddingStore::ShardedEmbeddingStore(
    const DatasetSpec& spec, std::span<const EmbeddingTable> tables,
    const ShardStoreConfig& config, ThreadPool* pool)
    : config_(config), dim_(spec.embedding_dim) {
  DLCOMP_CHECK(config_.num_shards > 0);
  DLCOMP_CHECK(tables.size() == spec.num_tables());

  PagedStoreConfig page_config;
  page_config.rows_per_page = config_.rows_per_page;
  page_config.pool = pool;
  if (!config_.codec.empty() && config_.codec != "none") {
    page_config.codec = &get_compressor(config_.codec);
    page_config.params.error_bound = config_.error_bound;
    page_config.params.eb_mode = EbMode::kAbsolute;
    page_config.params.lz_window_vectors = config_.lz_window_vectors;
  }

  tables_.reserve(tables.size());
  for (const EmbeddingTable& table : tables) {
    DLCOMP_CHECK(table.dim() == dim_);
    tables_.push_back(
        std::make_unique<PagedRowStore>(table.weights(), page_config));
    max_abs_error_ = std::max(max_abs_error_, tables_.back()->max_abs_error());
  }

  const std::size_t per_shard_budget =
      config_.cache_budget_bytes / config_.num_shards;
  shards_.reserve(config_.num_shards);
  for (std::size_t s = 0; s < config_.num_shards; ++s) {
    auto shard = std::make_unique<Shard>();
    shard->cache = std::make_unique<HotRowCache>(per_shard_budget, dim_);
    shard->page_scratch.resize(config_.rows_per_page * dim_);
    shards_.push_back(std::move(shard));
  }
}

void ShardedEmbeddingStore::resolve(std::size_t shard, std::size_t table,
                                    std::span<const std::uint32_t> rows,
                                    std::span<const std::uint32_t> positions,
                                    Matrix& out) {
  DLCOMP_CHECK(shard < shards_.size() && table < tables_.size());
  DLCOMP_CHECK(rows.size() == positions.size());
  if (rows.empty()) return;
  DLCOMP_TRACE_SPAN("serve/shard_resolve");

  const PagedRowStore& store = *tables_[table];
  Shard& sh = *shards_[shard];
  std::lock_guard lock(sh.mutex);

  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t faults = 0;
  // The scratch page survives across consecutive misses: Zipf-skewed
  // request runs fault the same page once and read it many times.
  std::size_t scratch_page = static_cast<std::size_t>(-1);
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const std::uint32_t row = rows[i];
    DLCOMP_CHECK(shard_of(table, row) == shard);
    const std::span<float> dst = out.row(positions[i]);
    if (const float* hot = sh.cache->find(row_key(table, row))) {
      std::memcpy(dst.data(), hot, dim_ * sizeof(float));
      ++hits;
      continue;
    }
    ++misses;
    const std::size_t page = store.page_of(row);
    if (page != scratch_page) {
      const std::size_t count = store.page_rows(page) * dim_;
      store.load_page(page,
                      std::span<float>(sh.page_scratch).subspan(0, count),
                      sh.workspace);
      scratch_page = page;
      ++faults;
    }
    const std::size_t offset = (row - store.page_first_row(page)) * dim_;
    const float* src = sh.page_scratch.data() + offset;
    std::memcpy(dst.data(), src, dim_ * sizeof(float));
    sh.cache->insert(row_key(table, row), {src, dim_});
  }
  sh.pages_loaded += faults;

  if (live_hits_ != nullptr && hits > 0) live_hits_->add(hits);
  if (live_misses_ != nullptr && misses > 0) live_misses_->add(misses);
  if (live_pages_ != nullptr && faults > 0) live_pages_->add(faults);
}

ShardStoreStats ShardedEmbeddingStore::stats() const {
  ShardStoreStats stats;
  stats.max_abs_error = max_abs_error_;
  for (const auto& table : tables_) {
    stats.input_bytes += table->input_bytes();
    stats.stored_bytes += table->stored_bytes();
  }
  for (const auto& shard : shards_) {
    std::lock_guard lock(shard->mutex);
    stats.hits += shard->cache->hits();
    stats.misses += shard->cache->misses();
    stats.evictions += shard->cache->evictions();
    stats.pages_loaded += shard->pages_loaded;
    stats.resident_rows += shard->cache->size_rows();
    stats.capacity_rows += shard->cache->capacity_rows();
  }
  return stats;
}

void ShardedEmbeddingStore::bind_live_counters(Counter* hits, Counter* misses,
                                               Counter* pages_loaded) noexcept {
  live_hits_ = hits;
  live_misses_ = misses;
  live_pages_ = pages_loaded;
}

}  // namespace dlcomp
