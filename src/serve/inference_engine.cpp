#include "serve/inference_engine.hpp"

#include <algorithm>
#include <cmath>
#include <utility>

#include "ckpt/checkpoint.hpp"
#include "common/error.hpp"
#include "compress/registry.hpp"
#include "obs/trace.hpp"

namespace dlcomp {

InferenceEngine::InferenceEngine(const DatasetSpec& spec,
                                 const DlrmConfig& model_config,
                                 EngineConfig config, std::uint64_t seed)
    : config_(std::move(config)), model_(spec, model_config, seed) {
  if (!config_.checkpoint_path.empty()) {
    load_checkpoint_into(model_, config_.checkpoint_path);
  }
  if (!config_.codec.empty()) {
    codec_ = &get_compressor(config_.codec);
    params_.error_bound = config_.error_bound;
    params_.eb_mode = EbMode::kAbsolute;
    params_.vector_dim = spec.embedding_dim;
    params_.lz_window_vectors = config_.lz_window_vectors;
  }
}

void InferenceEngine::use_store(ShardedEmbeddingStore* store) {
  if (store == nullptr) {
    router_.reset();
    model_.set_lookup_provider(nullptr);
    return;
  }
  router_ = std::make_unique<ShardRouter>(*store);
  model_.set_lookup_provider(
      [this](std::size_t table, std::span<const std::uint32_t> indices,
             Matrix& out) { router_->gather(table, indices, out); });
}

DlrmModel::TableTransform InferenceEngine::lookup_transform() {
  // Sharded serving: the store's pages are already codec round-tripped,
  // so a second in-engine round-trip would double the error.
  if (router_ != nullptr) return nullptr;
  if (codec_ == nullptr) return nullptr;
  return [this](std::size_t /*table*/, Matrix& data) {
    DLCOMP_TRACE_SPAN("serve/codec_roundtrip");
    stream_.clear();
    codec_->compress(data.flat(), params_, stream_, workspace_);
    recon_.resize(data.size());
    codec_->decompress(stream_, recon_, workspace_);

    double max_err = max_lookup_error_;
    const std::span<float> flat = data.flat();
    for (std::size_t i = 0; i < flat.size(); ++i) {
      max_err = std::max(max_err,
                         static_cast<double>(std::fabs(flat[i] - recon_[i])));
      flat[i] = recon_[i];
    }
    max_lookup_error_ = max_err;
    lookup_input_bytes_ += data.size() * sizeof(float);
    lookup_compressed_bytes_ += stream_.size();
  };
}

std::vector<float> InferenceEngine::run(const SampleBatch& batch) {
  DLCOMP_TRACE_SPAN("serve/forward");
  std::vector<float> probabilities(batch.batch_size());
  model_.predict(batch, probabilities, lookup_transform());
  samples_served_ += batch.batch_size();
  return probabilities;
}

double InferenceEngine::lookup_compression_ratio() const noexcept {
  return lookup_compressed_bytes_ == 0
             ? 0.0
             : static_cast<double>(lookup_input_bytes_) /
                   static_cast<double>(lookup_compressed_bytes_);
}

}  // namespace dlcomp
