#pragma once

/// \file load_generator.hpp
/// Synthetic query-stream generator for the serving subsystem, after
/// DeepRecSys's loadGenerator: configurable arrival process (Poisson,
/// bursty MMPP, diurnal) and query-size distribution (geometric around a
/// mean, capped). Generation is deterministic in the config seed so
/// serving experiments are reproducible and schedulable offline.

#include <vector>

#include "serve/query.hpp"

namespace dlcomp {

struct LoadGenConfig {
  ArrivalPattern pattern = ArrivalPattern::kPoisson;
  /// Mean offered load, queries per second. All three patterns are
  /// calibrated so the long-run mean rate equals `qps`.
  double qps = 1000.0;
  std::size_t num_queries = 1000;

  /// Query sizes are geometric with this mean (DeepRecSys's variable
  /// "query size" / candidate-set size), clamped to [1, max_query_size].
  std::size_t mean_query_size = 32;
  std::size_t max_query_size = 256;

  /// Bursty (MMPP) knobs: inside a burst the rate is qps * burst_factor;
  /// bursts cover `burst_fraction` of time with mean length burst_mean_s.
  /// Requires burst_factor * burst_fraction < 1 so the lull rate stays
  /// positive.
  double burst_factor = 4.0;
  double burst_fraction = 0.2;
  double burst_mean_s = 0.05;

  /// Diurnal knobs: rate(t) = qps * (1 + amplitude * sin(2*pi*t/period)).
  double diurnal_period_s = 10.0;
  double diurnal_amplitude = 0.8;

  std::uint64_t seed = 2024;
};

class LoadGenerator {
 public:
  /// Validates the config (throws Error on nonsensical knobs).
  explicit LoadGenerator(LoadGenConfig config);

  [[nodiscard]] const LoadGenConfig& config() const noexcept { return config_; }

  /// Generates the full query stream, sorted by (non-decreasing) arrival
  /// time with ids 0..num_queries-1. Deterministic in the config.
  [[nodiscard]] std::vector<Query> generate() const;

  /// Instantaneous arrival rate at simulated time `t_s` for the diurnal
  /// pattern (constant qps for Poisson; the MMPP rate is state-dependent
  /// and not a function of time alone, so bursty also returns qps, the
  /// long-run mean). Exposed for tests and the serving report.
  [[nodiscard]] double rate_at(double t_s) const noexcept;

 private:
  LoadGenConfig config_;
};

}  // namespace dlcomp
