#pragma once

/// \file router.hpp
/// Scatter/gather front of the sharded embedding tier. For each table of
/// a batch the router splits the index list by owning shard (scatter),
/// has every touched shard resolve its slice — hot cache or page fault —
/// and the partial results land directly in the caller's batch matrix at
/// the original row positions (gather/merge), the host-merge step of
/// UPMEM-DLRM's partitioned lookup.
///
/// The merge is position-addressed, so it is trivially order-independent:
/// the gathered matrix is bitwise identical to a whole-table lookup of
/// the same values regardless of shard count. Requests within one shard
/// keep ascending batch-position order, which pins the cache's
/// hit/miss/eviction sequence (see shard_store.hpp).
///
/// A router is NOT thread-safe (it keeps per-shard scatter scratch, like
/// the engine keeps forward caches); each InferenceEngine owns one,
/// all routing into the fleet-shared store.

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "serve/shard_store.hpp"
#include "tensor/matrix.hpp"

namespace dlcomp {

class ShardRouter {
 public:
  explicit ShardRouter(ShardedEmbeddingStore& store);

  /// Gathers `indices` of `table` into `out` (indices.size() x dim):
  /// scatter by shard owner, per-shard resolve, position-addressed merge.
  void gather(std::size_t table, std::span<const std::uint32_t> indices,
              Matrix& out);

  [[nodiscard]] ShardedEmbeddingStore& store() noexcept { return store_; }

  /// Per-shard lookup requests issued so far (fan-out accounting: one
  /// gather touching k shards issues k partials).
  [[nodiscard]] std::uint64_t partials_issued() const noexcept {
    return partials_issued_;
  }
  [[nodiscard]] std::uint64_t gathers() const noexcept { return gathers_; }

 private:
  ShardedEmbeddingStore& store_;
  /// Scatter scratch, reused across gathers (steady state allocates
  /// nothing once every shard's vectors hit their high-water mark).
  std::vector<std::vector<std::uint32_t>> shard_rows_;
  std::vector<std::vector<std::uint32_t>> shard_positions_;

  std::uint64_t partials_issued_ = 0;
  std::uint64_t gathers_ = 0;
};

}  // namespace dlcomp
