#include "serve/batch_scheduler.hpp"

#include <algorithm>
#include <queue>
#include <utility>

#include "common/error.hpp"

namespace dlcomp {

BatchScheduler::BatchScheduler(BatchSchedulerConfig config) : config_(config) {
  DLCOMP_CHECK(config_.max_batch_samples > 0);
  DLCOMP_CHECK(config_.max_delay_s >= 0.0);
  DLCOMP_CHECK(config_.slo_s >= 0.0);
  DLCOMP_CHECK(config_.est_service_per_sample_s >= 0.0);
  DLCOMP_CHECK(config_.est_batch_overhead_s >= 0.0);
  DLCOMP_CHECK(config_.modeled_servers > 0);
}

SchedulePlan BatchScheduler::plan(std::span<const Query> queries) const {
  SchedulePlan out;
  if (config_.slo_s <= 0.0) {
    out.batches = schedule(queries);
    return out;
  }

  // Admission: walk the stream against a modeled backlog (min-heap of
  // per-server free times). A query whose estimated completion blows the
  // SLO is shed and leaves the backlog untouched.
  std::vector<Query> admitted;
  admitted.reserve(queries.size());
  std::priority_queue<double, std::vector<double>, std::greater<>> free_at(
      std::greater<>{}, std::vector<double>(config_.modeled_servers, 0.0));
  for (const Query& q : queries) {
    const double cost =
        config_.est_batch_overhead_s +
        static_cast<double>(q.num_samples) * config_.est_service_per_sample_s;
    const double start = std::max(q.arrival_s, free_at.top());
    const double done = start + cost;
    if (done - q.arrival_s > config_.slo_s) {
      out.shed.push_back(q);
      continue;
    }
    free_at.pop();
    free_at.push(done);
    admitted.push_back(q);
  }

  out.batches = schedule(admitted);
  return out;
}

std::vector<InferenceBatch> BatchScheduler::schedule(
    std::span<const Query> queries) const {
  std::vector<InferenceBatch> batches;

  InferenceBatch pending;
  std::size_t pending_samples = 0;

  const auto flush = [&](double dispatch_s) {
    pending.dispatch_s = dispatch_s;
    batches.push_back(std::move(pending));
    pending = InferenceBatch{};
    pending_samples = 0;
  };

  double prev_arrival = 0.0;
  for (const Query& q : queries) {
    DLCOMP_CHECK_MSG(q.arrival_s >= prev_arrival,
                     "queries must be sorted by arrival_s");
    // Fail fast here, on the caller's thread: an empty query would later
    // produce a zero-sample batch that throws inside a pool worker.
    DLCOMP_CHECK_MSG(q.num_samples > 0, "query " << q.id << " has 0 samples");
    prev_arrival = q.arrival_s;

    // Deadline flush: the oldest pending query cannot wait until this
    // arrival, so the batch went out when its delay budget expired.
    if (!pending.queries.empty()) {
      const double deadline =
          pending.queries.front().arrival_s + config_.max_delay_s;
      if (q.arrival_s > deadline) flush(deadline);
    }

    // Capacity flush: adding q would blow the sample budget, so the
    // pending batch goes out now (at q's arrival, which is still within
    // the oldest query's deadline because the check above passed).
    if (!pending.queries.empty() &&
        pending_samples + q.num_samples > config_.max_batch_samples) {
      flush(q.arrival_s);
    }

    pending.queries.push_back(q);
    pending_samples += q.num_samples;

    // A single query at or above the budget ships immediately.
    if (pending_samples >= config_.max_batch_samples) {
      flush(q.arrival_s);
    }
  }

  if (!pending.queries.empty()) {
    flush(pending.queries.front().arrival_s + config_.max_delay_s);
  }
  return batches;
}

}  // namespace dlcomp
