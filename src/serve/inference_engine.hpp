#pragma once

/// \file inference_engine.hpp
/// Forward-only DLRM scoring engine for the serving path. Optionally
/// round-trips every embedding lookup through an error-bounded codec from
/// the registry (the same TableTransform hook the training accuracy
/// experiments use), which models serving where embedding shards travel
/// compressed between parameter servers and inference nodes: reconstructed
/// vectors differ from exact by at most the configured error bound per
/// element, and the engine tracks the observed error and the bytes moved
/// so compressed and exact serving can be compared on both axes.
///
/// An engine is NOT thread-safe (the model keeps forward caches); the
/// ServingSimulator runs one engine replica per worker.

#include <cstddef>
#include <memory>
#include <string>
#include <vector>

#include "compress/compressor.hpp"
#include "compress/workspace.hpp"
#include "data/synthetic.hpp"
#include "dlrm/model.hpp"
#include "serve/router.hpp"

namespace dlcomp {

struct EngineConfig {
  /// Registry codec name for the embedding payload round-trip; empty
  /// means exact (uncompressed) serving.
  std::string codec;
  /// Absolute per-element error bound for the codec.
  double error_bound = 0.01;
  /// Vector-LZ window, forwarded to CompressParams.
  std::size_t lz_window_vectors = 128;
  /// Checkpoint file (`.dlck`, chain tail allowed) to load trained model
  /// weights from; empty serves the seed-initialized model. Shapes must
  /// match the engine's DatasetSpec/DlrmConfig.
  std::string checkpoint_path;
};

class InferenceEngine {
 public:
  /// Builds the model (weights deterministic in `seed`, so every replica
  /// constructed with the same arguments scores identically). When
  /// `config.checkpoint_path` is set the initial weights are replaced by
  /// the checkpoint's (delta chains are replayed), so a fleet serves the
  /// trained model a HybridParallelTrainer persisted.
  InferenceEngine(const DatasetSpec& spec, const DlrmConfig& model_config,
                  EngineConfig config, std::uint64_t seed);

  /// Scores a batch: per-sample click probabilities, through the codec
  /// round-trip when one is configured.
  std::vector<float> run(const SampleBatch& batch);

  /// Serves embeddings from a sharded store instead of the model's own
  /// tables: installs a private ShardRouter over `store` as the model's
  /// LookupProvider. The store already holds codec-reconstructed rows, so
  /// the engine's own per-lookup codec round-trip is disabled (it would
  /// double-compress); byte/error accounting moves to the store. Pass
  /// null to restore table-local serving. The store must outlive the
  /// engine and may be shared by many engines (it locks per shard).
  void use_store(ShardedEmbeddingStore* store);

  [[nodiscard]] bool sharded() const noexcept { return router_ != nullptr; }

  [[nodiscard]] const EngineConfig& config() const noexcept { return config_; }
  [[nodiscard]] bool compressed() const noexcept { return codec_ != nullptr; }
  [[nodiscard]] DlrmModel& model() noexcept { return model_; }

  /// The per-table lookup transform run() applies, bound to this engine's
  /// error/byte accounting; null when serving exact. Exposed so tests can
  /// apply it to a raw lookup matrix.
  [[nodiscard]] DlrmModel::TableTransform lookup_transform();

  /// Largest |exact - reconstructed| seen across all embedding elements
  /// served so far (0 when exact).
  [[nodiscard]] double max_lookup_error() const noexcept {
    return max_lookup_error_;
  }

  /// Compression ratio of the embedding payloads served so far
  /// (input bytes / compressed bytes; 0 when exact or nothing served).
  [[nodiscard]] double lookup_compression_ratio() const noexcept;

  [[nodiscard]] std::size_t samples_served() const noexcept {
    return samples_served_;
  }

  /// Raw embedding payload byte counters (for fleet-level aggregation).
  [[nodiscard]] std::size_t lookup_input_bytes() const noexcept {
    return lookup_input_bytes_;
  }
  [[nodiscard]] std::size_t lookup_compressed_bytes() const noexcept {
    return lookup_compressed_bytes_;
  }

 private:
  EngineConfig config_;
  DlrmModel model_;
  const Compressor* codec_ = nullptr;  ///< registry singleton or null
  CompressParams params_;
  std::unique_ptr<ShardRouter> router_;  ///< set by use_store(); engine-private

  double max_lookup_error_ = 0.0;
  std::size_t lookup_input_bytes_ = 0;
  std::size_t lookup_compressed_bytes_ = 0;
  std::size_t samples_served_ = 0;

  // Scratch reused across run() calls to keep the hot path allocation-free
  // once warm: the codec workspace plus the stream/reconstruction buffers
  // (an engine is single-threaded, so one workspace suffices).
  CompressionWorkspace workspace_;
  std::vector<std::byte> stream_;
  std::vector<float> recon_;
};

}  // namespace dlcomp
