#pragma once

/// \file simulator.hpp
/// End-to-end serving harness tying the subsystem together: a
/// LoadGenerator produces the query stream, a BatchScheduler turns it
/// into an arrival-faithful dispatch plan, and a fleet of InferenceEngine
/// replicas executes the plan on the ThreadPool while worker-local
/// LatencyRecorders capture per-query latency.
///
/// Time model: queueing delay (arrival -> dispatch) lives on the
/// simulated clock driven by the generated arrival process; service time
/// is the measured wall time of the real forward pass on this machine.
/// A query's reported latency is the sum of the two. Replicas are assumed
/// plentiful enough that a dispatched batch starts immediately (no
/// replica queueing term); achieved QPS reports the fleet's measured
/// scoring throughput against the offered load.

#include <cstdint>
#include <span>
#include <string>
#include <utility>

#include "common/latency_recorder.hpp"
#include "data/dataset_spec.hpp"
#include "serve/batch_scheduler.hpp"
#include "serve/inference_engine.hpp"
#include "serve/load_generator.hpp"
#include "serve/shard_store.hpp"

namespace dlcomp {

class MetricsRegistry;
class StatusBoard;

struct ServingConfig {
  LoadGenConfig load;
  BatchSchedulerConfig scheduler;
  EngineConfig engine;
  /// Sharded serving tier: when store.num_shards > 0 one
  /// ShardedEmbeddingStore is built from replica 0's (checkpoint-loaded)
  /// tables and shared by the whole fleet — every engine routes lookups
  /// through it (hot cache over compressed pages) instead of its own
  /// weights, and the engine-level codec round-trip is disabled. The
  /// scheduler's SLO admission (scheduler.slo_s) composes independently.
  ShardStoreConfig store;
  /// Workload shapes (tables, dims) the engines serve.
  DatasetSpec spec;
  DlrmConfig model;
  /// Engine replicas (and pool workers); 0 = hardware concurrency.
  unsigned replicas = 0;
  std::uint64_t seed = 2024;

  /// Optional live-observability wiring (both may stay null; when set
  /// they must outlive run()). `live_metrics` receives per-query latency
  /// observations and progress counters while the fleet is scoring --
  /// this is what a /metrics scrape sees mid-run, as opposed to the
  /// end-of-run ServingReport snapshot. `status` gets a ready=true flip
  /// once the replica fleet is built, plus per-batch heartbeats.
  MetricsRegistry* live_metrics = nullptr;
  StatusBoard* status = nullptr;
};

struct ServingReport {
  LatencySummary latency;        ///< queueing + service, per query
  double offered_qps = 0.0;      ///< configured mean arrival rate
  /// Scoring throughput: queries / busiest replica's forward-pass time
  /// (synthetic batch generation, a simulator artifact, is excluded).
  double achieved_qps = 0.0;
  std::size_t queries = 0;
  std::size_t samples = 0;       ///< candidate items scored
  std::size_t batches = 0;
  double mean_batch_samples = 0.0;
  /// Wall time of the whole parallel run, batch generation included.
  double serve_wall_s = 0.0;
  double sim_span_s = 0.0;       ///< simulated arrival span of the stream
  double mean_service_s = 0.0;   ///< mean per-batch forward wall time
  /// Compression telemetry (0 when serving exact). When the sharded store
  /// is on these report the *store's* at-rest ratio and reconstruction
  /// error (the engine-level round-trip is disabled then).
  double max_lookup_error = 0.0;
  double lookup_compression_ratio = 0.0;

  /// SLO admission (0 unless scheduler.slo_s > 0).
  std::size_t shed_queries = 0;
  double shed_rate = 0.0;  ///< shed / offered

  /// Sharded-store telemetry (all 0 when store.num_shards == 0).
  ShardStoreStats store_stats;

  /// Machine-readable telemetry under "serve/": the merged latency
  /// recorder as a histogram metric (quantiles via the shared
  /// nearest-rank estimator), per-batch queue depth, byte/query/batch
  /// counters and the throughput gauges.
  MetricsSnapshot metrics;
};

class ServingSimulator {
 public:
  /// Validates the config and builds the replica fleet (identical model
  /// weights in every replica, deterministic in config.seed).
  explicit ServingSimulator(ServingConfig config);

  /// Runs the full pipeline once and reports. Deterministic stream and
  /// batching; wall-time figures vary with the machine.
  [[nodiscard]] ServingReport run();

  [[nodiscard]] const ServingConfig& config() const noexcept {
    return config_;
  }

 private:
  ServingConfig config_;
};

/// Renders a two-row (exact vs compressed) comparison the CLI and bench
/// print: latency percentiles, achieved QPS, compression ratio, max error.
std::string format_serving_table(const ServingReport& exact,
                                 const ServingReport& compressed);

/// Same table with caller-chosen row labels (e.g. "exact" vs "sharded").
std::string format_serving_table(
    std::span<const std::pair<std::string, const ServingReport*>> rows);

}  // namespace dlcomp
