#pragma once

/// \file simulator.hpp
/// End-to-end serving harness tying the subsystem together: a
/// LoadGenerator produces the query stream, a BatchScheduler turns it
/// into an arrival-faithful dispatch plan, and a fleet of InferenceEngine
/// replicas executes the plan on the ThreadPool while worker-local
/// LatencyRecorders capture per-query latency.
///
/// Time model: queueing delay (arrival -> dispatch) lives on the
/// simulated clock driven by the generated arrival process; service time
/// is the measured wall time of the real forward pass on this machine.
/// A query's reported latency is the sum of the two. Replicas are assumed
/// plentiful enough that a dispatched batch starts immediately (no
/// replica queueing term); achieved QPS reports the fleet's measured
/// scoring throughput against the offered load.

#include <cstdint>
#include <string>

#include "common/latency_recorder.hpp"
#include "data/dataset_spec.hpp"
#include "serve/batch_scheduler.hpp"
#include "serve/inference_engine.hpp"
#include "serve/load_generator.hpp"

namespace dlcomp {

class MetricsRegistry;
class StatusBoard;

struct ServingConfig {
  LoadGenConfig load;
  BatchSchedulerConfig scheduler;
  EngineConfig engine;
  /// Workload shapes (tables, dims) the engines serve.
  DatasetSpec spec;
  DlrmConfig model;
  /// Engine replicas (and pool workers); 0 = hardware concurrency.
  unsigned replicas = 0;
  std::uint64_t seed = 2024;

  /// Optional live-observability wiring (both may stay null; when set
  /// they must outlive run()). `live_metrics` receives per-query latency
  /// observations and progress counters while the fleet is scoring --
  /// this is what a /metrics scrape sees mid-run, as opposed to the
  /// end-of-run ServingReport snapshot. `status` gets a ready=true flip
  /// once the replica fleet is built, plus per-batch heartbeats.
  MetricsRegistry* live_metrics = nullptr;
  StatusBoard* status = nullptr;
};

struct ServingReport {
  LatencySummary latency;        ///< queueing + service, per query
  double offered_qps = 0.0;      ///< configured mean arrival rate
  /// Scoring throughput: queries / busiest replica's forward-pass time
  /// (synthetic batch generation, a simulator artifact, is excluded).
  double achieved_qps = 0.0;
  std::size_t queries = 0;
  std::size_t samples = 0;       ///< candidate items scored
  std::size_t batches = 0;
  double mean_batch_samples = 0.0;
  /// Wall time of the whole parallel run, batch generation included.
  double serve_wall_s = 0.0;
  double sim_span_s = 0.0;       ///< simulated arrival span of the stream
  double mean_service_s = 0.0;   ///< mean per-batch forward wall time
  /// Compression telemetry (0 when serving exact).
  double max_lookup_error = 0.0;
  double lookup_compression_ratio = 0.0;

  /// Machine-readable telemetry under "serve/": the merged latency
  /// recorder as a histogram metric (quantiles via the shared
  /// nearest-rank estimator), per-batch queue depth, byte/query/batch
  /// counters and the throughput gauges.
  MetricsSnapshot metrics;
};

class ServingSimulator {
 public:
  /// Validates the config and builds the replica fleet (identical model
  /// weights in every replica, deterministic in config.seed).
  explicit ServingSimulator(ServingConfig config);

  /// Runs the full pipeline once and reports. Deterministic stream and
  /// batching; wall-time figures vary with the machine.
  [[nodiscard]] ServingReport run();

  [[nodiscard]] const ServingConfig& config() const noexcept {
    return config_;
  }

 private:
  ServingConfig config_;
};

/// Renders a two-row (exact vs compressed) comparison the CLI and bench
/// print: latency percentiles, achieved QPS, compression ratio, max error.
std::string format_serving_table(const ServingReport& exact,
                                 const ServingReport& compressed);

}  // namespace dlcomp
