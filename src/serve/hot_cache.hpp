#pragma once

/// \file hot_cache.hpp
/// Bounded hot-row cache for the serving tier: uncompressed embedding
/// rows under a byte budget, evicted with the CLOCK (second-chance)
/// policy. CLOCK gives LRU-like hit rates without per-hit list surgery —
/// a hit sets one reference bit, eviction sweeps a hand — which keeps the
/// probe path cheap enough to sit in front of every row lookup.
///
/// The budget is exact and accounted up front: capacity is
/// budget_bytes / slot_bytes(row_floats) slots, where slot_bytes charges
/// the row payload plus the per-slot bookkeeping (key, ref bit, index
/// entry). Inserting into a full cache evicts exactly one victim; a
/// budget too small for a single slot disables the cache (every probe
/// misses, inserts are dropped) rather than over-committing.
///
/// Determinism: probes and inserts are ordinary data structure operations
/// with no clocks or randomness, so a fixed (probe, insert) sequence
/// yields a fixed hit/miss/eviction sequence — the serving-scale tests
/// pin exact traces. Not thread-safe; each shard owns one cache and
/// serializes access under its shard lock.

#include <cstddef>
#include <cstdint>
#include <span>
#include <unordered_map>
#include <vector>

namespace dlcomp {

class HotRowCache {
 public:
  /// Accounted overhead per cached row on top of the payload: the 8-byte
  /// key, the clock state, and the index entry (hash node + bucket
  /// share, estimated — the point is that the budget charges bookkeeping
  /// at all, not byte-perfect malloc accounting).
  static constexpr std::size_t kSlotOverheadBytes = 48;

  /// `row_floats` is the cached row width (embedding dim); all rows in
  /// one cache share it.
  HotRowCache(std::size_t budget_bytes, std::size_t row_floats);

  /// Bytes one cached row costs against the budget.
  [[nodiscard]] static std::size_t slot_bytes(std::size_t row_floats) {
    return row_floats * sizeof(float) + kSlotOverheadBytes;
  }

  /// Probe: returns the cached row (valid until the next insert) and sets
  /// its reference bit, or nullptr on miss. Counts the hit/miss.
  [[nodiscard]] const float* find(std::uint64_t key);

  /// Admits a row, evicting one CLOCK victim when at capacity. Inserting
  /// a key that is already cached refreshes its payload and reference bit
  /// instead of duplicating it. No-op (dropped) when capacity is 0.
  void insert(std::uint64_t key, std::span<const float> row);

  [[nodiscard]] std::size_t capacity_rows() const noexcept {
    return capacity_rows_;
  }
  [[nodiscard]] std::size_t size_rows() const noexcept { return index_.size(); }
  [[nodiscard]] bool enabled() const noexcept { return capacity_rows_ > 0; }

  [[nodiscard]] std::uint64_t hits() const noexcept { return hits_; }
  [[nodiscard]] std::uint64_t misses() const noexcept { return misses_; }
  [[nodiscard]] std::uint64_t evictions() const noexcept { return evictions_; }

 private:
  std::size_t row_floats_ = 0;
  std::size_t capacity_rows_ = 0;

  struct Slot {
    std::uint64_t key = 0;
    bool referenced = false;
  };
  std::vector<Slot> slots_;
  std::vector<float> payload_;  ///< capacity_rows x row_floats, slot-indexed
  std::unordered_map<std::uint64_t, std::size_t> index_;  ///< key -> slot
  std::size_t hand_ = 0;

  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
  std::uint64_t evictions_ = 0;
};

}  // namespace dlcomp
