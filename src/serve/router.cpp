#include "serve/router.hpp"

#include "common/error.hpp"
#include "obs/trace.hpp"

namespace dlcomp {

ShardRouter::ShardRouter(ShardedEmbeddingStore& store)
    : store_(store),
      shard_rows_(store.num_shards()),
      shard_positions_(store.num_shards()) {}

void ShardRouter::gather(std::size_t table,
                         std::span<const std::uint32_t> indices, Matrix& out) {
  DLCOMP_CHECK(out.rows() == indices.size() && out.cols() == store_.dim());
  DLCOMP_TRACE_SPAN("serve/scatter_gather");

  for (auto& rows : shard_rows_) rows.clear();
  for (auto& positions : shard_positions_) positions.clear();

  // Scatter: batch position order within each shard (deterministic cache
  // admission order, see router.hpp).
  for (std::size_t i = 0; i < indices.size(); ++i) {
    const std::size_t shard = store_.shard_of(table, indices[i]);
    shard_rows_[shard].push_back(indices[i]);
    shard_positions_[shard].push_back(static_cast<std::uint32_t>(i));
  }

  // Resolve + merge: each shard writes its partial rows straight into the
  // output matrix at the scattered positions.
  for (std::size_t shard = 0; shard < shard_rows_.size(); ++shard) {
    if (shard_rows_[shard].empty()) continue;
    store_.resolve(shard, table, shard_rows_[shard], shard_positions_[shard],
                   out);
    ++partials_issued_;
  }
  ++gathers_;
}

}  // namespace dlcomp
