#include "serve/simulator.hpp"

#include <algorithm>
#include <atomic>
#include <memory>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "ckpt/checkpoint.hpp"
#include "common/error.hpp"
#include "common/table_printer.hpp"
#include "common/timer.hpp"
#include "data/synthetic.hpp"
#include "obs/obs_server.hpp"
#include "obs/trace.hpp"
#include "parallel/thread_pool.hpp"

namespace dlcomp {

ServingSimulator::ServingSimulator(ServingConfig config)
    : config_(std::move(config)) {
  // Fail fast on bad knobs; run() reconstructs these cheaply.
  (void)LoadGenerator(config_.load);
  (void)BatchScheduler(config_.scheduler);
  DLCOMP_CHECK(config_.spec.num_tables() > 0);
}

ServingReport ServingSimulator::run() {
  const LoadGenerator generator(config_.load);
  const BatchScheduler scheduler(config_.scheduler);
  const std::vector<Query> queries = generator.generate();
  const SchedulePlan sched_plan = scheduler.plan(queries);
  const std::vector<InferenceBatch>& batches = sched_plan.batches;

  unsigned replicas = config_.replicas;
  if (replicas == 0) {
    replicas = std::max(1u, std::thread::hardware_concurrency());
  }
  replicas = std::min<unsigned>(
      replicas, static_cast<unsigned>(std::max<std::size_t>(1, batches.size())));

  const SyntheticClickDataset dataset(config_.spec, config_.seed);

  // One engine replica per worker; identical weights (same seed), private
  // forward caches, so the fleet scores concurrently without locking.
  // A checkpoint is read and chain-replayed once here, then applied to
  // every replica, instead of once per engine constructor.
  EngineConfig engine_config = config_.engine;
  engine_config.checkpoint_path.clear();
  std::vector<InferenceEngine> engines;
  engines.reserve(replicas);
  for (unsigned r = 0; r < replicas; ++r) {
    engines.emplace_back(config_.spec, config_.model, engine_config,
                         config_.seed);
  }
  if (!config_.engine.checkpoint_path.empty()) {
    ThreadPool decode_pool;
    const LoadedCheckpoint loaded =
        CheckpointReader(&decode_pool).load(config_.engine.checkpoint_path);
    for (InferenceEngine& engine : engines) {
      apply_model_state(loaded, make_model_state(engine.model()));
    }
  }

  // Sharded tier: one store built from replica 0's (now checkpoint-loaded)
  // tables, shared by every engine. Built after weight loading so the
  // fleet serves the trained embeddings, and with a temporary pool so the
  // page compression runs parallel (stored bytes are pool-invariant).
  std::unique_ptr<ShardedEmbeddingStore> store;
  if (config_.store.num_shards > 0) {
    ThreadPool build_pool;
    store = std::make_unique<ShardedEmbeddingStore>(
        config_.spec, engines.front().model().tables(), config_.store,
        &build_pool);
    for (InferenceEngine& engine : engines) engine.use_store(store.get());
  }

  std::vector<LatencyRecorder> recorders(replicas);
  std::vector<double> service_seconds(replicas, 0.0);

  // Live-scrape instruments, resolved once before the hot loop (lookup
  // takes the registry mutex; updates are lock-free).
  Counter* live_queries = nullptr;
  Counter* live_batches = nullptr;
  HistogramMetric* live_latency = nullptr;
  if (config_.live_metrics != nullptr) {
    live_queries = &config_.live_metrics->counter("serve/queries_done");
    live_batches = &config_.live_metrics->counter("serve/batches_done");
    live_latency = &config_.live_metrics->histogram(
        "serve/latency_s", LatencyRecorder::default_buckets());
    if (store != nullptr) {
      store->bind_live_counters(
          &config_.live_metrics->counter("serve/cache_hits"),
          &config_.live_metrics->counter("serve/cache_misses"),
          &config_.live_metrics->counter("serve/pages_decompressed"));
    }
  }
  if (config_.status != nullptr) {
    config_.status->set_total_iterations(batches.size());
    config_.status->set_ready(true);  // fleet built: safe to scrape
  }

  // Per-run progress for the status board (the registry counters are
  // monotonic across runs; /status wants this run's position).
  std::atomic<std::uint64_t> run_batches{0};
  std::atomic<std::uint64_t> run_queries{0};

  ThreadPool pool(replicas);
  WallTimer wall;
  for (unsigned r = 0; r < replicas; ++r) {
    pool.submit([&, r] {
      InferenceEngine& engine = engines[r];
      LatencyRecorder& recorder = recorders[r];
      // Round-robin assignment keeps the plan deterministic and the
      // per-replica load balanced.
      for (std::size_t b = r; b < batches.size(); b += replicas) {
        DLCOMP_TRACE_SPAN("serve/batch");
        const InferenceBatch& batch = batches[b];
        const SampleBatch samples =
            dataset.make_batch(batch.total_samples(), b);
        WallTimer t;
        (void)engine.run(samples);
        const double service_s = t.seconds();
        service_seconds[r] += service_s;
        for (const Query& q : batch.queries) {
          const double latency_s =
              batch.dispatch_s - q.arrival_s + service_s;
          recorder.record(latency_s);
          if (live_latency != nullptr) live_latency->observe(latency_s);
        }
        if (live_queries != nullptr) {
          live_queries->add(batch.queries.size());
        }
        if (live_batches != nullptr) live_batches->add(1);
        if (config_.status != nullptr) {
          const std::uint64_t done =
              run_batches.fetch_add(1, std::memory_order_relaxed) + 1;
          const std::uint64_t queries_done =
              run_queries.fetch_add(batch.queries.size(),
                                    std::memory_order_relaxed) +
              batch.queries.size();
          const double elapsed = wall.seconds();
          const double qps =
              elapsed > 0.0 ? static_cast<double>(queries_done) / elapsed
                            : 0.0;
          config_.status->heartbeat(done, qps);
        }
      }
    });
  }
  pool.wait_idle();
  const double serve_wall_s = wall.seconds();
  // Throughput counts only forward-pass time: the slowest replica's busy
  // time bounds the fleet, and synthetic batch generation is a simulator
  // artifact a real server would not pay.
  const double busiest_replica_s =
      *std::max_element(service_seconds.begin(), service_seconds.end());

  LatencyRecorder merged;
  for (const LatencyRecorder& r : recorders) merged.merge(r);

  const std::size_t served_queries = queries.size() - sched_plan.shed.size();

  ServingReport report;
  report.latency = merged.summary();
  report.offered_qps = config_.load.qps;
  report.achieved_qps =
      busiest_replica_s > 0.0
          ? static_cast<double>(served_queries) / busiest_replica_s
          : 0.0;
  report.queries = queries.size();
  report.shed_queries = sched_plan.shed.size();
  report.shed_rate = queries.empty()
                         ? 0.0
                         : static_cast<double>(report.shed_queries) /
                               static_cast<double>(queries.size());
  report.batches = batches.size();
  report.serve_wall_s = serve_wall_s;
  report.sim_span_s = queries.empty() ? 0.0 : queries.back().arrival_s;

  std::size_t samples = 0;
  for (const InferenceBatch& b : batches) samples += b.total_samples();
  report.samples = samples;
  report.mean_batch_samples =
      batches.empty() ? 0.0
                      : static_cast<double>(samples) /
                            static_cast<double>(batches.size());

  double service_total = 0.0;
  for (const double s : service_seconds) service_total += s;
  report.mean_service_s =
      batches.empty() ? 0.0
                      : service_total / static_cast<double>(batches.size());

  std::size_t in_bytes = 0;
  std::size_t comp_bytes = 0;
  for (const InferenceEngine& e : engines) {
    report.max_lookup_error =
        std::max(report.max_lookup_error, e.max_lookup_error());
    in_bytes += e.lookup_input_bytes();
    comp_bytes += e.lookup_compressed_bytes();
  }
  report.lookup_compression_ratio =
      comp_bytes == 0 ? 0.0
                      : static_cast<double>(in_bytes) /
                            static_cast<double>(comp_bytes);
  if (store != nullptr) {
    report.store_stats = store->stats();
    report.lookup_compression_ratio = report.store_stats.ratio();
    report.max_lookup_error = report.store_stats.max_abs_error;
  }

  // ---- Metrics snapshot: latency recorder -> histogram metric, plus
  // queue depth and the fleet counters.
  MetricsSnapshot& snap = report.metrics;
  HistogramMetric latency_hist(LatencyRecorder::default_buckets());
  merged.fill_histogram(latency_hist);
  snapshot_histogram(snap, "serve/latency_s", latency_hist);
  HistogramMetric depth_hist(HistogramBuckets::exponential(1.0, 2.0, 16));
  for (const InferenceBatch& b : batches) {
    depth_hist.observe(static_cast<double>(b.queries.size()));
  }
  snapshot_histogram(snap, "serve/queue_depth", depth_hist);
  snap.set("serve/queries", static_cast<double>(report.queries));
  snap.set("serve/batches", static_cast<double>(report.batches));
  snap.set("serve/samples", static_cast<double>(report.samples));
  snap.set("serve/replicas", static_cast<double>(replicas));
  snap.set("serve/offered_qps", report.offered_qps);
  snap.set("serve/achieved_qps", report.achieved_qps);
  snap.set("serve/serve_wall_s", report.serve_wall_s);
  snap.set("serve/mean_service_s", report.mean_service_s);
  snap.set("serve/max_lookup_error", report.max_lookup_error);
  snap.set("serve/lookup_cr", report.lookup_compression_ratio);
  snap.set("serve/lookup_input_bytes", static_cast<double>(in_bytes));
  snap.set("serve/lookup_compressed_bytes",
           static_cast<double>(comp_bytes));
  snap.set("serve/shed_queries", static_cast<double>(report.shed_queries));
  snap.set("serve/shed_rate", report.shed_rate);
  if (store != nullptr) {
    const ShardStoreStats& s = report.store_stats;
    snap.set("serve/shards", static_cast<double>(config_.store.num_shards));
    snap.set("serve/cache_hits", static_cast<double>(s.hits));
    snap.set("serve/cache_misses", static_cast<double>(s.misses));
    snap.set("serve/cache_hit_rate", s.hit_rate());
    snap.set("serve/cache_evictions", static_cast<double>(s.evictions));
    snap.set("serve/cache_resident_rows",
             static_cast<double>(s.resident_rows));
    snap.set("serve/cache_capacity_rows",
             static_cast<double>(s.capacity_rows));
    snap.set("serve/cache_budget_bytes",
             static_cast<double>(config_.store.cache_budget_bytes));
    snap.set("serve/pages_decompressed",
             static_cast<double>(s.pages_loaded));
    snap.set("serve/store_input_bytes", static_cast<double>(s.input_bytes));
    snap.set("serve/store_stored_bytes",
             static_cast<double>(s.stored_bytes));
    snap.set("serve/store_cr", s.ratio());
  }
  return report;
}

std::string format_serving_table(const ServingReport& exact,
                                 const ServingReport& compressed) {
  const std::pair<std::string, const ServingReport*> rows[] = {
      {"exact", &exact}, {"compressed", &compressed}};
  return format_serving_table(rows);
}

std::string format_serving_table(
    std::span<const std::pair<std::string, const ServingReport*>> rows) {
  TablePrinter table({"path", "p50 ms", "p95 ms", "p99 ms", "p99.9 ms",
                      "mean ms", "achieved qps", "batch", "ratio",
                      "max err"});
  const auto row = [&](const std::string& name, const ServingReport& r) {
    table.add_row({name, TablePrinter::num(r.latency.p50_s * 1e3, 3),
                   TablePrinter::num(r.latency.p95_s * 1e3, 3),
                   TablePrinter::num(r.latency.p99_s * 1e3, 3),
                   TablePrinter::num(r.latency.p999_s * 1e3, 3),
                   TablePrinter::num(r.latency.mean_s * 1e3, 3),
                   TablePrinter::num(r.achieved_qps, 0),
                   TablePrinter::num(r.mean_batch_samples, 1),
                   r.lookup_compression_ratio > 0.0
                       ? TablePrinter::num(r.lookup_compression_ratio, 2)
                       : std::string("-"),
                   r.lookup_compression_ratio > 0.0
                       ? TablePrinter::num(r.max_lookup_error, 5)
                       : std::string("-")});
  };
  for (const auto& [name, report] : rows) row(name, *report);
  return table.to_string();
}

}  // namespace dlcomp
