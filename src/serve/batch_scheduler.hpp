#pragma once

/// \file batch_scheduler.hpp
/// Deadline-bounded dynamic batching: coalesces an arrival-ordered query
/// stream into inference batches, flushing when a batch reaches the
/// sample budget or when holding it longer would push the oldest query
/// past its batching deadline. This is the serving analogue of the
/// training-side chunking policy: bigger batches amortize fixed per-call
/// cost, the deadline caps the queueing term of tail latency.
///
/// Scheduling is a pure function of the query stream (simulated clock),
/// so the policy is unit-testable; the ServingSimulator executes the
/// resulting plan on the ThreadPool.

#include <span>
#include <vector>

#include "serve/query.hpp"

namespace dlcomp {

struct BatchSchedulerConfig {
  /// Flush once a batch holds this many samples (single queries larger
  /// than the budget become their own oversized batch).
  std::size_t max_batch_samples = 256;
  /// Max time a query may wait in the pending batch before dispatch.
  double max_delay_s = 0.002;
};

/// A dispatchable unit: one or more whole queries scored together.
struct InferenceBatch {
  std::vector<Query> queries;
  /// Dispatch time on the simulated clock; >= every member's arrival_s
  /// and <= every member's arrival_s + max_delay_s.
  double dispatch_s = 0.0;

  [[nodiscard]] std::size_t total_samples() const noexcept {
    std::size_t n = 0;
    for (const Query& q : queries) n += q.num_samples;
    return n;
  }
};

class BatchScheduler {
 public:
  /// Validates the config (throws Error on zero budgets).
  explicit BatchScheduler(BatchSchedulerConfig config);

  [[nodiscard]] const BatchSchedulerConfig& config() const noexcept {
    return config_;
  }

  /// Coalesces `queries` (must be sorted by arrival_s) into batches in
  /// dispatch order. Every query lands in exactly one batch.
  [[nodiscard]] std::vector<InferenceBatch> schedule(
      std::span<const Query> queries) const;

 private:
  BatchSchedulerConfig config_;
};

}  // namespace dlcomp
