#pragma once

/// \file batch_scheduler.hpp
/// Deadline-bounded dynamic batching: coalesces an arrival-ordered query
/// stream into inference batches, flushing when a batch reaches the
/// sample budget or when holding it longer would push the oldest query
/// past its batching deadline. This is the serving analogue of the
/// training-side chunking policy: bigger batches amortize fixed per-call
/// cost, the deadline caps the queueing term of tail latency.
///
/// Scheduling is a pure function of the query stream (simulated clock),
/// so the policy is unit-testable; the ServingSimulator executes the
/// resulting plan on the ThreadPool.

#include <span>
#include <vector>

#include "serve/query.hpp"

namespace dlcomp {

struct BatchSchedulerConfig {
  /// Flush once a batch holds this many samples (single queries larger
  /// than the budget become their own oversized batch).
  std::size_t max_batch_samples = 256;
  /// Max time a query may wait in the pending batch before dispatch.
  double max_delay_s = 0.002;

  // --- SLO admission control (plan() only; 0 slo_s disables) ---

  /// End-to-end latency objective. A query whose *estimated* completion
  /// (under the cost model below, against the modeled backlog) exceeds
  /// arrival + slo_s is shed at admission instead of joining a batch —
  /// rejecting early is cheaper than serving an answer nobody waits for.
  double slo_s = 0.0;
  /// Cost model: estimated service time = overhead + samples * per-sample.
  /// Deliberately coarse (admission is per query, ignoring the batching
  /// amortization) so shedding stays a pure function of the query stream.
  double est_service_per_sample_s = 2e-6;
  double est_batch_overhead_s = 100e-6;
  /// Modeled parallel servers for the backlog estimate (match the
  /// replica count to make the estimate track the real fleet).
  std::size_t modeled_servers = 1;
};

/// A dispatchable unit: one or more whole queries scored together.
struct InferenceBatch {
  std::vector<Query> queries;
  /// Dispatch time on the simulated clock; >= every member's arrival_s
  /// and <= every member's arrival_s + max_delay_s.
  double dispatch_s = 0.0;

  [[nodiscard]] std::size_t total_samples() const noexcept {
    std::size_t n = 0;
    for (const Query& q : queries) n += q.num_samples;
    return n;
  }
};

/// plan() output: the dispatchable batches plus the queries shed by SLO
/// admission (disjoint; together they cover the input stream exactly).
struct SchedulePlan {
  std::vector<InferenceBatch> batches;
  std::vector<Query> shed;
};

class BatchScheduler {
 public:
  /// Validates the config (throws Error on zero budgets).
  explicit BatchScheduler(BatchSchedulerConfig config);

  [[nodiscard]] const BatchSchedulerConfig& config() const noexcept {
    return config_;
  }

  /// Coalesces `queries` (must be sorted by arrival_s) into batches in
  /// dispatch order. Every query lands in exactly one batch (admission
  /// control off — equivalent to plan() with slo_s = 0).
  [[nodiscard]] std::vector<InferenceBatch> schedule(
      std::span<const Query> queries) const;

  /// Full policy: SLO admission (when slo_s > 0) followed by the same
  /// deadline/size-aware coalescing as schedule(). Deterministic — both
  /// phases are pure functions of the query stream and the config's cost
  /// model, so shed counts are bit-stable across machines.
  [[nodiscard]] SchedulePlan plan(std::span<const Query> queries) const;

 private:
  BatchSchedulerConfig config_;
};

}  // namespace dlcomp
