#include "serve/load_generator.hpp"

#include <algorithm>
#include <cmath>
#include <numbers>
#include <string>

#include "common/error.hpp"
#include "common/rng.hpp"

namespace dlcomp {

ArrivalPattern parse_arrival_pattern(std::string_view name) {
  if (name == "poisson") return ArrivalPattern::kPoisson;
  if (name == "bursty") return ArrivalPattern::kBursty;
  if (name == "diurnal") return ArrivalPattern::kDiurnal;
  throw Error("unknown arrival pattern: " + std::string(name) +
              " (expected poisson|bursty|diurnal)");
}

std::string_view arrival_pattern_name(ArrivalPattern pattern) noexcept {
  switch (pattern) {
    case ArrivalPattern::kPoisson: return "poisson";
    case ArrivalPattern::kBursty: return "bursty";
    case ArrivalPattern::kDiurnal: return "diurnal";
  }
  return "?";
}

namespace {

/// Exponential draw with the given rate; rejects the measure-zero u == 0.
double exp_draw(Rng& rng, double rate) {
  double u = rng.next_double();
  while (u <= 0.0) u = rng.next_double();
  return -std::log(u) / rate;
}

/// Geometric query size with mean `mean`, clamped to [1, max].
std::size_t size_draw(Rng& rng, std::size_t mean, std::size_t max) {
  if (mean <= 1) return 1;
  // Geometric on {1, 2, ...} with success prob 1/mean via inversion.
  const double p = 1.0 / static_cast<double>(mean);
  double u = rng.next_double();
  while (u <= 0.0) u = rng.next_double();
  const auto k = static_cast<std::size_t>(
      std::ceil(std::log(u) / std::log1p(-p)));
  return std::clamp<std::size_t>(k, 1, max);
}

}  // namespace

LoadGenerator::LoadGenerator(LoadGenConfig config) : config_(config) {
  DLCOMP_CHECK_MSG(config_.qps > 0.0, "qps=" << config_.qps);
  DLCOMP_CHECK(config_.num_queries > 0);
  DLCOMP_CHECK(config_.mean_query_size >= 1);
  DLCOMP_CHECK(config_.max_query_size >= config_.mean_query_size);
  if (config_.pattern == ArrivalPattern::kBursty) {
    DLCOMP_CHECK_MSG(config_.burst_factor > 1.0,
                     "burst_factor=" << config_.burst_factor);
    DLCOMP_CHECK(config_.burst_fraction > 0.0 && config_.burst_fraction < 1.0);
    DLCOMP_CHECK(config_.burst_mean_s > 0.0);
    // The lull rate must stay positive for the long-run mean to be qps.
    DLCOMP_CHECK_MSG(
        config_.burst_factor * config_.burst_fraction < 1.0,
        "burst_factor * burst_fraction must be < 1 to keep mean rate = qps");
  }
  if (config_.pattern == ArrivalPattern::kDiurnal) {
    DLCOMP_CHECK(config_.diurnal_period_s > 0.0);
    DLCOMP_CHECK(config_.diurnal_amplitude >= 0.0 &&
                 config_.diurnal_amplitude < 1.0);
  }
}

double LoadGenerator::rate_at(double t_s) const noexcept {
  if (config_.pattern == ArrivalPattern::kDiurnal) {
    const double phase =
        2.0 * std::numbers::pi * t_s / config_.diurnal_period_s;
    return config_.qps * (1.0 + config_.diurnal_amplitude * std::sin(phase));
  }
  return config_.qps;
}

std::vector<Query> LoadGenerator::generate() const {
  Rng base(config_.seed);
  Rng arrivals_rng = base.fork({0xA11});
  Rng sizes_rng = base.fork({0x517E});

  std::vector<Query> queries;
  queries.reserve(config_.num_queries);

  double t = 0.0;

  // Bursty (MMPP) state: alternate exponential-length burst/lull epochs.
  // Rates are solved so burst_fraction * high + (1 - burst_fraction) * low
  // equals qps, i.e. the long-run mean load matches the other patterns.
  bool in_burst = false;
  double state_end_s = 0.0;
  const double high_rate = config_.qps * config_.burst_factor;
  const double low_rate =
      config_.qps * (1.0 - config_.burst_factor * config_.burst_fraction) /
      (1.0 - config_.burst_fraction);
  const double lull_mean_s = config_.burst_mean_s *
                             (1.0 - config_.burst_fraction) /
                             config_.burst_fraction;

  // Diurnal thinning envelope.
  const double max_rate = config_.qps * (1.0 + config_.diurnal_amplitude);

  for (std::uint64_t id = 0; id < config_.num_queries; ++id) {
    switch (config_.pattern) {
      case ArrivalPattern::kPoisson:
        t += exp_draw(arrivals_rng, config_.qps);
        break;

      case ArrivalPattern::kBursty: {
        // Draw the next arrival under the current state's rate; if it
        // would land past the state boundary, restart from the boundary
        // under the new state (valid by memorylessness of the
        // exponential).
        for (;;) {
          if (t >= state_end_s) {
            in_burst = !in_burst;
            state_end_s =
                t + exp_draw(arrivals_rng,
                             1.0 / (in_burst ? config_.burst_mean_s
                                             : lull_mean_s));
          }
          const double rate = in_burst ? high_rate : low_rate;
          const double candidate = t + exp_draw(arrivals_rng, rate);
          if (candidate <= state_end_s) {
            t = candidate;
            break;
          }
          t = state_end_s;
        }
        break;
      }

      case ArrivalPattern::kDiurnal:
        // Thinning (Lewis-Shedler): candidates at the envelope rate,
        // accepted with probability rate(t) / max_rate.
        for (;;) {
          t += exp_draw(arrivals_rng, max_rate);
          if (arrivals_rng.next_double() * max_rate <= rate_at(t)) break;
        }
        break;
    }

    Query q;
    q.id = id;
    q.arrival_s = t;
    q.num_samples =
        size_draw(sizes_rng, config_.mean_query_size, config_.max_query_size);
    queries.push_back(q);
  }
  return queries;
}

}  // namespace dlcomp
