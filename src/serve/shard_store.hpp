#pragma once

/// \file shard_store.hpp
/// Sharded embedding tier for the serving path, UPMEM-DLRM shaped: every
/// table's rows are grouped into fixed pages (compress/paged.hpp) and the
/// pages are distributed round-robin across shard groups, the way
/// partitioned lookup units each own a slice of every table. A query's
/// lookups fan out to the owning shards and the partial results merge
/// back into the batch matrix (serve/router.hpp does the scatter/gather).
///
/// Each shard serves its rows from two tiers:
///   - hot: uncompressed rows in a bounded CLOCK cache (hot_cache.hpp),
///     budget split evenly across shards;
///   - cold: compressed pages (the paper's hybrid codec by default),
///     decompressed on miss into a per-shard scratch page, with the
///     faulted rows admitted to the hot tier.
///
/// Bitwise contract: page streams depend only on (table, params, page
/// size) — not the shard count — and page decompression is deterministic,
/// so the values a sharded store serves are bitwise identical to a
/// 1-shard (whole-table) store at the same error bound, and a raw
/// (codec-less) store is bitwise identical to direct EmbeddingTable
/// lookups. tests/test_serving_scale.cpp pins both.
///
/// Thread-safety: shards lock independently (per-shard mutex), so a fleet
/// of engine replicas contends per shard like replicas of a real
/// embedding service would; values stay deterministic under concurrency
/// (hit/miss *counts* are only deterministic single-threaded).

#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <vector>

#include "compress/paged.hpp"
#include "data/dataset_spec.hpp"
#include "dlrm/embedding_table.hpp"
#include "serve/hot_cache.hpp"
#include "tensor/matrix.hpp"

namespace dlcomp {

class Counter;
class ThreadPool;

struct ShardStoreConfig {
  /// Shard groups the pages distribute across. 0 disables the sharded
  /// tier entirely (the engine serves whole tables from model weights).
  std::size_t num_shards = 0;
  /// Rows per compressed page (see PagedStoreConfig::rows_per_page).
  std::size_t rows_per_page = 256;
  /// Total hot-tier budget in bytes, split evenly across shards.
  std::size_t cache_budget_bytes = 4u << 20;
  /// Registry codec for the cold tier; "" or "none" stores raw pages.
  std::string codec = "hybrid";
  /// Absolute per-element error bound for the cold tier.
  double error_bound = 0.01;
  /// Vector-LZ window, forwarded to CompressParams.
  std::size_t lz_window_vectors = 128;
};

/// Aggregated serving counters across shards (see stats()).
struct ShardStoreStats {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t evictions = 0;
  std::uint64_t pages_loaded = 0;  ///< cold-tier page decompressions
  std::size_t input_bytes = 0;     ///< raw size of all tables
  std::size_t stored_bytes = 0;    ///< cold-tier at-rest size
  std::size_t resident_rows = 0;   ///< rows currently in hot caches
  std::size_t capacity_rows = 0;   ///< hot-tier capacity across shards
  double max_abs_error = 0.0;      ///< at-rest reconstruction error

  [[nodiscard]] double hit_rate() const noexcept {
    const std::uint64_t total = hits + misses;
    return total == 0 ? 0.0
                      : static_cast<double>(hits) / static_cast<double>(total);
  }
  [[nodiscard]] double ratio() const noexcept {
    return stored_bytes == 0 ? 0.0
                             : static_cast<double>(input_bytes) /
                                   static_cast<double>(stored_bytes);
  }
};

class ShardedEmbeddingStore {
 public:
  /// Builds the paged cold tier from `tables` (one PagedRowStore per
  /// table, pages compressed across `pool` when given) and one hot cache
  /// per shard. `tables` is only read during construction.
  ShardedEmbeddingStore(const DatasetSpec& spec,
                        std::span<const EmbeddingTable> tables,
                        const ShardStoreConfig& config,
                        ThreadPool* pool = nullptr);

  [[nodiscard]] const ShardStoreConfig& config() const noexcept {
    return config_;
  }
  [[nodiscard]] std::size_t num_shards() const noexcept {
    return config_.num_shards;
  }
  [[nodiscard]] std::size_t num_tables() const noexcept {
    return tables_.size();
  }
  [[nodiscard]] std::size_t dim() const noexcept { return dim_; }

  /// Owning shard of (table, row): the row's page, round-robin across
  /// shards. Round-robin spreads the Zipf-hot low-id pages instead of
  /// concentrating them on shard 0 the way contiguous ranges would.
  [[nodiscard]] std::size_t shard_of(std::size_t table,
                                     std::uint32_t row) const {
    return tables_[table]->page_of(row) % config_.num_shards;
  }

  /// Resolves one shard's slice of a gather: for each i, row `rows[i]` of
  /// `table` lands in `out.row(positions[i])`. Every requested row must
  /// be owned by `shard`. Takes the shard lock; requests are served in
  /// order (hot probe first, page fault + admit on miss), so a fixed
  /// request sequence gives a fixed hit/miss/eviction sequence.
  void resolve(std::size_t shard, std::size_t table,
               std::span<const std::uint32_t> rows,
               std::span<const std::uint32_t> positions, Matrix& out);

  /// Aggregated counters (locks each shard briefly).
  [[nodiscard]] ShardStoreStats stats() const;

  /// Optional live instruments bumped as lookups resolve (may be null;
  /// must outlive the store). The simulator wires these to the /metrics
  /// registry so a scrape sees cache traffic mid-run.
  void bind_live_counters(Counter* hits, Counter* misses,
                          Counter* pages_loaded) noexcept;

 private:
  struct Shard {
    std::mutex mutex;
    std::unique_ptr<HotRowCache> cache;
    CompressionWorkspace workspace;
    std::vector<float> page_scratch;
    std::uint64_t pages_loaded = 0;
  };

  ShardStoreConfig config_;
  std::size_t dim_ = 0;
  std::vector<std::unique_ptr<PagedRowStore>> tables_;
  std::vector<std::unique_ptr<Shard>> shards_;
  double max_abs_error_ = 0.0;

  Counter* live_hits_ = nullptr;
  Counter* live_misses_ = nullptr;
  Counter* live_pages_ = nullptr;
};

}  // namespace dlcomp
