#include "serve/hot_cache.hpp"

#include <algorithm>
#include <cstring>

#include "common/error.hpp"

namespace dlcomp {

HotRowCache::HotRowCache(std::size_t budget_bytes, std::size_t row_floats)
    : row_floats_(row_floats),
      capacity_rows_(budget_bytes / slot_bytes(row_floats)) {
  DLCOMP_CHECK(row_floats_ > 0);
  // Everything is sized up front so steady-state probes and inserts never
  // reallocate (the index rehash is pre-reserved past its load factor).
  slots_.resize(capacity_rows_);
  payload_.resize(capacity_rows_ * row_floats_);
  index_.reserve(capacity_rows_ + capacity_rows_ / 2 + 1);
}

const float* HotRowCache::find(std::uint64_t key) {
  const auto it = index_.find(key);
  if (it == index_.end()) {
    ++misses_;
    return nullptr;
  }
  ++hits_;
  slots_[it->second].referenced = true;
  return payload_.data() + it->second * row_floats_;
}

void HotRowCache::insert(std::uint64_t key, std::span<const float> row) {
  if (capacity_rows_ == 0) return;  // budget below one slot: cache disabled
  DLCOMP_CHECK(row.size() == row_floats_);

  if (const auto it = index_.find(key); it != index_.end()) {
    // Refresh in place (same row re-admitted, e.g. after a page reload).
    slots_[it->second].referenced = true;
    std::memcpy(payload_.data() + it->second * row_floats_, row.data(),
                row_floats_ * sizeof(float));
    return;
  }

  std::size_t slot;
  if (index_.size() < capacity_rows_) {
    slot = index_.size();  // fill order: slots are handed out sequentially
  } else {
    // CLOCK sweep: clear reference bits until an unreferenced victim
    // turns up. Terminates within two laps (the first lap clears bits).
    while (slots_[hand_].referenced) {
      slots_[hand_].referenced = false;
      hand_ = (hand_ + 1) % capacity_rows_;
    }
    slot = hand_;
    hand_ = (hand_ + 1) % capacity_rows_;
    index_.erase(slots_[slot].key);
    ++evictions_;
  }

  slots_[slot].key = key;
  slots_[slot].referenced = true;
  index_.emplace(key, slot);
  std::memcpy(payload_.data() + slot * row_floats_, row.data(),
              row_floats_ * sizeof(float));
}

}  // namespace dlcomp
