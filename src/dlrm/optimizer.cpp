#include "dlrm/optimizer.hpp"

#include <cmath>

#include "common/error.hpp"

namespace dlcomp {

void EmbeddingOptimizer::apply(EmbeddingTable& table,
                               std::span<const std::uint32_t> indices,
                               const Matrix& grads, float grad_scale) {
  DLCOMP_CHECK(grads.rows() == indices.size() && grads.cols() == table.dim());

  if (kind_ == EmbeddingOptimizerKind::kSgd) {
    // lr * (s * g) == (lr * s) * g: fold the scale into the step.
    table.apply_gradients(indices, grads, lr_ * grad_scale);
    return;
  }

  if (accumulator_.rows() != table.rows() ||
      accumulator_.cols() != table.dim()) {
    accumulator_.resize(table.rows(), table.dim());
  }
  const std::size_t dim = table.dim();
  for (std::size_t b = 0; b < indices.size(); ++b) {
    DLCOMP_CHECK(indices[b] < table.rows());
    float* row = table.weights().data() + indices[b] * dim;
    float* acc = accumulator_.data() + indices[b] * dim;
    const float* grad = grads.data() + b * dim;
    for (std::size_t i = 0; i < dim; ++i) {
      const float g = grad[i] * grad_scale;
      acc[i] += g * g;
      row[i] -= lr_ * g / (std::sqrt(acc[i]) + epsilon_);
    }
  }
}

}  // namespace dlcomp
