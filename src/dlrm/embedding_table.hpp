#pragma once

/// \file embedding_table.hpp
/// Embedding table with gather lookup and sparse SGD update -- the
/// model-parallel half of the DLRM substrate. Initialization follows the
/// TableSpec value distribution so synthetic tables exhibit the
/// Gaussian/uniform value spreads the paper analyzes (Sec. III-B (3)).

#include <cstdint>
#include <span>
#include <vector>

#include "common/rng.hpp"
#include "data/dataset_spec.hpp"
#include "tensor/matrix.hpp"

namespace dlcomp {

class EmbeddingTable {
 public:
  EmbeddingTable(std::size_t rows, std::size_t dim)
      : weights_(rows, dim) {}

  /// Builds a table initialized per the spec's value distribution.
  static EmbeddingTable init_from_spec(const TableSpec& spec, std::size_t dim,
                                       Rng& rng);

  [[nodiscard]] std::size_t rows() const noexcept { return weights_.rows(); }
  [[nodiscard]] std::size_t dim() const noexcept { return weights_.cols(); }

  [[nodiscard]] Matrix& weights() noexcept { return weights_; }
  [[nodiscard]] const Matrix& weights() const noexcept { return weights_; }

  /// Gathers rows for `indices` into `out` (batch x dim).
  void lookup(std::span<const std::uint32_t> indices, Matrix& out) const;

  /// Sparse SGD: weights[idx] -= lr * grad_row, accumulating duplicate
  /// indices (scatter-add semantics, like a dense gradient would).
  void apply_gradients(std::span<const std::uint32_t> indices,
                       const Matrix& grads, float lr);

 private:
  Matrix weights_;
};

/// Builds the full table set for a dataset spec with deterministic
/// per-table initialization (the same seed the DlrmModel constructor
/// uses, so analyses over a standalone set match the model's tables).
std::vector<EmbeddingTable> make_embedding_set(const DatasetSpec& spec,
                                               std::uint64_t seed);

}  // namespace dlcomp
