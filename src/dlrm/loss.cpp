#include "dlrm/loss.hpp"

#include <cmath>

#include "common/error.hpp"

namespace dlcomp {

double sigmoid(double x) noexcept {
  if (x >= 0.0) {
    return 1.0 / (1.0 + std::exp(-x));
  }
  const double e = std::exp(x);
  return e / (1.0 + e);
}

LossResult bce_with_logits(std::span<const float> logits,
                           std::span<const float> labels,
                           std::span<float> dlogits) {
  DLCOMP_CHECK(logits.size() == labels.size());
  DLCOMP_CHECK(dlogits.empty() || dlogits.size() == logits.size());
  LossResult result;
  if (logits.empty()) return result;

  const double inv_batch = 1.0 / static_cast<double>(logits.size());
  std::size_t correct = 0;
  double total = 0.0;
  for (std::size_t i = 0; i < logits.size(); ++i) {
    const double z = logits[i];
    const double y = labels[i];
    // log(1 + e^z) - z*y, computed stably.
    const double log1pe = z > 0.0 ? z + std::log1p(std::exp(-z))
                                  : std::log1p(std::exp(z));
    total += log1pe - z * y;

    const double p = sigmoid(z);
    if ((p >= 0.5) == (y >= 0.5f)) ++correct;
    if (!dlogits.empty()) {
      dlogits[i] = static_cast<float>((p - y) * inv_batch);
    }
  }
  result.loss = total * inv_batch;
  result.accuracy = static_cast<double>(correct) * inv_batch;
  return result;
}

}  // namespace dlcomp
