#include "dlrm/embedding_table.hpp"

#include <cstring>

#include "common/error.hpp"

namespace dlcomp {

EmbeddingTable EmbeddingTable::init_from_spec(const TableSpec& spec,
                                              std::size_t dim, Rng& rng) {
  EmbeddingTable table(spec.cardinality, dim);

  auto draw = [&](Rng& source) {
    return spec.value_dist == ValueDist::kGaussian
               ? static_cast<float>(source.normal(0.0, spec.value_scale))
               : source.uniform_float(-spec.value_scale, spec.value_scale);
  };

  if (spec.value_clusters == 0) {
    for (auto& v : table.weights_.flat()) v = draw(rng);
    return table;
  }

  // Clustered initialization: rows orbit one of `value_clusters`
  // centroids with tiny jitter, modelling the near-duplicate vectors of
  // trained tables (the Vector Homogenization source).
  Matrix centroids(spec.value_clusters, dim);
  for (auto& v : centroids.flat()) v = draw(rng);

  for (std::size_t r = 0; r < spec.cardinality; ++r) {
    const std::size_t c =
        static_cast<std::size_t>(rng.next_below(spec.value_clusters));
    const auto centroid = centroids.row(c);
    auto row = table.weights_.row(r);
    for (std::size_t d = 0; d < dim; ++d) {
      row[d] = centroid[d] +
               static_cast<float>(rng.normal(0.0, spec.cluster_jitter));
    }
  }
  return table;
}

void EmbeddingTable::lookup(std::span<const std::uint32_t> indices,
                            Matrix& out) const {
  DLCOMP_CHECK(out.rows() == indices.size() && out.cols() == dim());
  for (std::size_t b = 0; b < indices.size(); ++b) {
    DLCOMP_CHECK_MSG(indices[b] < rows(),
                     "lookup index " << indices[b] << " out of range "
                                     << rows());
    std::memcpy(out.data() + b * dim(), weights_.data() + indices[b] * dim(),
                dim() * sizeof(float));
  }
}

std::vector<EmbeddingTable> make_embedding_set(const DatasetSpec& spec,
                                               std::uint64_t seed) {
  Rng rng(seed);
  std::vector<EmbeddingTable> tables;
  tables.reserve(spec.num_tables());
  for (std::size_t t = 0; t < spec.num_tables(); ++t) {
    auto rng_t = rng.fork({0xE0, t});
    tables.push_back(
        EmbeddingTable::init_from_spec(spec.tables[t], spec.embedding_dim, rng_t));
  }
  return tables;
}

void EmbeddingTable::apply_gradients(std::span<const std::uint32_t> indices,
                                     const Matrix& grads, float lr) {
  DLCOMP_CHECK(grads.rows() == indices.size() && grads.cols() == dim());
  for (std::size_t b = 0; b < indices.size(); ++b) {
    DLCOMP_CHECK(indices[b] < rows());
    float* row = weights_.data() + indices[b] * dim();
    const float* grad = grads.data() + b * dim();
    for (std::size_t i = 0; i < dim(); ++i) row[i] -= lr * grad[i];
  }
}

}  // namespace dlcomp
