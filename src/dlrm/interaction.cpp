#include "dlrm/interaction.hpp"

#include <algorithm>
#include <vector>

#include "common/error.hpp"

namespace dlcomp {

namespace {

/// Gathers the F+1 input row pointers (z0 first, then embeddings) for one
/// batch element.
void collect_rows(const Matrix& z0, std::span<const Matrix> emb,
                  std::size_t b, std::vector<const float*>& rows) {
  rows.clear();
  rows.push_back(z0.data() + b * z0.cols());
  for (const auto& e : emb) {
    rows.push_back(e.data() + b * e.cols());
  }
}

}  // namespace

void DotInteraction::forward(const Matrix& z0, std::span<const Matrix> emb,
                             Matrix& out) {
  const std::size_t batch = z0.rows();
  const std::size_t dim = z0.cols();
  for (const auto& e : emb) {
    DLCOMP_CHECK(e.rows() == batch && e.cols() == dim);
  }
  const std::size_t width = output_dim(emb.size(), dim);
  DLCOMP_CHECK(out.rows() == batch && out.cols() == width);

  std::vector<const float*> rows;
  rows.reserve(emb.size() + 1);
  for (std::size_t b = 0; b < batch; ++b) {
    collect_rows(z0, emb, b, rows);
    float* dst = out.data() + b * width;
    // Dense passthrough.
    for (std::size_t i = 0; i < dim; ++i) dst[i] = rows[0][i];
    // Upper-triangle pairwise dots.
    std::size_t k = dim;
    for (std::size_t i = 0; i < rows.size(); ++i) {
      for (std::size_t j = i + 1; j < rows.size(); ++j) {
        float acc = 0.0f;
        for (std::size_t d = 0; d < dim; ++d) acc += rows[i][d] * rows[j][d];
        dst[k++] = acc;
      }
    }
  }
}

void DotInteraction::backward(const Matrix& z0, std::span<const Matrix> emb,
                              const Matrix& dout, Matrix& dz0,
                              std::span<Matrix> demb) {
  const std::size_t batch = z0.rows();
  const std::size_t dim = z0.cols();
  const std::size_t width = output_dim(emb.size(), dim);
  DLCOMP_CHECK(dout.rows() == batch && dout.cols() == width);
  DLCOMP_CHECK(dz0.rows() == batch && dz0.cols() == dim);
  DLCOMP_CHECK(demb.size() == emb.size());
  for (auto& d : demb) {
    DLCOMP_CHECK(d.rows() == batch && d.cols() == dim);
    d.zero();
  }
  dz0.zero();

  std::vector<const float*> rows;
  std::vector<float*> grad_rows;
  rows.reserve(emb.size() + 1);
  grad_rows.reserve(emb.size() + 1);
  for (std::size_t b = 0; b < batch; ++b) {
    collect_rows(z0, emb, b, rows);
    grad_rows.clear();
    grad_rows.push_back(dz0.data() + b * dim);
    for (auto& d : demb) grad_rows.push_back(d.data() + b * dim);

    const float* g = dout.data() + b * width;
    // Dense passthrough gradient.
    for (std::size_t i = 0; i < dim; ++i) grad_rows[0][i] += g[i];
    // d<v_i, v_j>/dv_i = v_j and vice versa.
    std::size_t k = dim;
    for (std::size_t i = 0; i < rows.size(); ++i) {
      for (std::size_t j = i + 1; j < rows.size(); ++j) {
        const float gk = g[k++];
        if (gk == 0.0f) continue;
        for (std::size_t d = 0; d < dim; ++d) {
          grad_rows[i][d] += gk * rows[j][d];
          grad_rows[j][d] += gk * rows[i][d];
        }
      }
    }
  }
}

void ConcatInteraction::forward(const Matrix& z0, std::span<const Matrix> emb,
                                Matrix& out) {
  const std::size_t batch = z0.rows();
  const std::size_t dim = z0.cols();
  for (const auto& e : emb) {
    DLCOMP_CHECK(e.rows() == batch && e.cols() == dim);
  }
  const std::size_t width = output_dim(emb.size(), dim);
  DLCOMP_CHECK(out.rows() == batch && out.cols() == width);

  for (std::size_t b = 0; b < batch; ++b) {
    float* dst = out.data() + b * width;
    const float* z = z0.data() + b * dim;
    for (std::size_t i = 0; i < dim; ++i) dst[i] = z[i];
    std::size_t k = dim;
    for (const auto& e : emb) {
      const float* v = e.data() + b * dim;
      for (std::size_t i = 0; i < dim; ++i) dst[k++] = v[i];
    }
  }
}

void ConcatInteraction::backward(const Matrix& z0, std::span<const Matrix> emb,
                                 const Matrix& dout, Matrix& dz0,
                                 std::span<Matrix> demb) {
  const std::size_t batch = z0.rows();
  const std::size_t dim = z0.cols();
  const std::size_t width = output_dim(emb.size(), dim);
  DLCOMP_CHECK(dout.rows() == batch && dout.cols() == width);
  DLCOMP_CHECK(dz0.rows() == batch && dz0.cols() == dim);
  DLCOMP_CHECK(demb.size() == emb.size());

  // Concat backward is pure slicing: each input's gradient is its column
  // range of dOut.
  for (std::size_t b = 0; b < batch; ++b) {
    const float* g = dout.data() + b * width;
    float* gz = dz0.data() + b * dim;
    for (std::size_t i = 0; i < dim; ++i) gz[i] = g[i];
    std::size_t k = dim;
    for (auto& d : demb) {
      DLCOMP_CHECK(d.rows() == batch && d.cols() == dim);
      float* gv = d.data() + b * dim;
      for (std::size_t i = 0; i < dim; ++i) gv[i] = g[k++];
    }
  }
}

void NcfInteraction::forward(const Matrix& z0, std::span<const Matrix> emb,
                             Matrix& out) {
  const std::size_t batch = z0.rows();
  const std::size_t dim = z0.cols();
  DLCOMP_CHECK_MSG(emb.size() >= 2,
                   "NCF interaction needs >= 2 embedding tables, got "
                       << emb.size());
  for (const auto& e : emb) {
    DLCOMP_CHECK(e.rows() == batch && e.cols() == dim);
  }
  const std::size_t width = output_dim(emb.size(), dim);
  DLCOMP_CHECK(out.rows() == batch && out.cols() == width);
  const std::size_t split = field_split(emb.size());

  std::vector<float> u(dim);
  std::vector<float> v(dim);
  for (std::size_t b = 0; b < batch; ++b) {
    std::fill(u.begin(), u.end(), 0.0f);
    std::fill(v.begin(), v.end(), 0.0f);
    for (std::size_t t = 0; t < emb.size(); ++t) {
      const float* row = emb[t].data() + b * dim;
      float* field = t < split ? u.data() : v.data();
      for (std::size_t i = 0; i < dim; ++i) field[i] += row[i];
    }
    float* dst = out.data() + b * width;
    const float* z = z0.data() + b * dim;
    for (std::size_t i = 0; i < dim; ++i) dst[i] = z[i];
    for (std::size_t i = 0; i < dim; ++i) dst[dim + i] = u[i] * v[i];
  }
}

void NcfInteraction::backward(const Matrix& z0, std::span<const Matrix> emb,
                              const Matrix& dout, Matrix& dz0,
                              std::span<Matrix> demb) {
  const std::size_t batch = z0.rows();
  const std::size_t dim = z0.cols();
  const std::size_t width = output_dim(emb.size(), dim);
  DLCOMP_CHECK(dout.rows() == batch && dout.cols() == width);
  DLCOMP_CHECK(dz0.rows() == batch && dz0.cols() == dim);
  DLCOMP_CHECK(demb.size() == emb.size());
  const std::size_t split = field_split(emb.size());

  // d(u ⊙ v)/du = v (and vice versa); the sum pooling broadcasts each
  // field gradient to every table in the field.
  std::vector<float> u(dim);
  std::vector<float> v(dim);
  for (std::size_t b = 0; b < batch; ++b) {
    std::fill(u.begin(), u.end(), 0.0f);
    std::fill(v.begin(), v.end(), 0.0f);
    for (std::size_t t = 0; t < emb.size(); ++t) {
      const float* row = emb[t].data() + b * dim;
      float* field = t < split ? u.data() : v.data();
      for (std::size_t i = 0; i < dim; ++i) field[i] += row[i];
    }
    const float* g = dout.data() + b * width;
    float* gz = dz0.data() + b * dim;
    for (std::size_t i = 0; i < dim; ++i) gz[i] = g[i];
    for (std::size_t t = 0; t < emb.size(); ++t) {
      DLCOMP_CHECK(demb[t].rows() == batch && demb[t].cols() == dim);
      float* gv = demb[t].data() + b * dim;
      const float* other = t < split ? v.data() : u.data();
      for (std::size_t i = 0; i < dim; ++i) gv[i] = g[dim + i] * other[i];
    }
  }
}

}  // namespace dlcomp
