#pragma once

/// \file interaction.hpp
/// DLRM dot-product feature interaction. Takes the bottom-MLP output z0
/// and the F embedding lookups (all batch x dim), computes every pairwise
/// dot product among the F+1 vectors, and concatenates z0 with the
/// flattened upper triangle:
///   out = [ z0 | <v_i, v_j> for 0 <= i < j <= F ]
/// so out has dim + (F+1)F/2 columns. This is the communication-adjacent
/// layer: its inputs are exactly what the all-to-all delivers.

#include <span>

#include "tensor/matrix.hpp"

namespace dlcomp {

class DotInteraction {
 public:
  /// Output width for `num_features` embedding inputs of width `dim`.
  static std::size_t output_dim(std::size_t num_features, std::size_t dim) {
    const std::size_t n = num_features + 1;  // embeddings + z0
    return dim + n * (n - 1) / 2;
  }

  /// Forward: fills `out` (batch x output_dim).
  static void forward(const Matrix& z0, std::span<const Matrix> emb,
                      Matrix& out);

  /// Backward: given dOut, fills dz0 and demb[t] (all batch x dim;
  /// overwritten, not accumulated).
  static void backward(const Matrix& z0, std::span<const Matrix> emb,
                       const Matrix& dout, Matrix& dz0,
                       std::span<Matrix> demb);
};

}  // namespace dlcomp
