#pragma once

/// \file interaction.hpp
/// Feature-interaction layers of the model zoo. All take the bottom-MLP
/// output z0 and the F embedding lookups (all batch x dim) — exactly what
/// the all-to-all delivers, making this the communication-adjacent layer —
/// and differ only in how they combine them:
///
///   - DotInteraction (DLRM): every pairwise dot product among the F+1
///     vectors, z0 concatenated with the flattened upper triangle:
///       out = [ z0 | <v_i, v_j> for 0 <= i < j <= F ],
///     width dim + (F+1)F/2.
///   - ConcatInteraction (Wide&Deep-shaped): plain concatenation
///       out = [ z0 | v_1 | ... | v_F ],
///     width dim * (F+1) — the "deep" tower of Wide&Deep, all
///     crossing left to the top MLP.
///   - NcfInteraction (NCF/GMF-shaped): tables split into two fields
///     (user-side = first half, item-side = rest), each sum-pooled, and
///     the fields combined element-wise:
///       out = [ z0 | u ⊙ v ],  u = Σ first-half v_t, v = Σ rest,
///     width 2 * dim — neural collaborative filtering's GMF branch with
///     z0 standing in for the MLP branch.

#include <span>

#include "tensor/matrix.hpp"

namespace dlcomp {

class DotInteraction {
 public:
  /// Output width for `num_features` embedding inputs of width `dim`.
  static std::size_t output_dim(std::size_t num_features, std::size_t dim) {
    const std::size_t n = num_features + 1;  // embeddings + z0
    return dim + n * (n - 1) / 2;
  }

  /// Forward: fills `out` (batch x output_dim).
  static void forward(const Matrix& z0, std::span<const Matrix> emb,
                      Matrix& out);

  /// Backward: given dOut, fills dz0 and demb[t] (all batch x dim;
  /// overwritten, not accumulated).
  static void backward(const Matrix& z0, std::span<const Matrix> emb,
                       const Matrix& dout, Matrix& dz0,
                       std::span<Matrix> demb);
};

/// Wide&Deep-shaped concatenation (see file comment). Same forward /
/// backward contract as DotInteraction.
class ConcatInteraction {
 public:
  static std::size_t output_dim(std::size_t num_features, std::size_t dim) {
    return dim * (num_features + 1);
  }

  static void forward(const Matrix& z0, std::span<const Matrix> emb,
                      Matrix& out);

  static void backward(const Matrix& z0, std::span<const Matrix> emb,
                       const Matrix& dout, Matrix& dz0,
                       std::span<Matrix> demb);
};

/// NCF/GMF-shaped two-field element-wise interaction (see file comment).
/// Requires at least 2 embedding inputs (two non-empty fields).
class NcfInteraction {
 public:
  static std::size_t output_dim(std::size_t /*num_features*/,
                                std::size_t dim) {
    return 2 * dim;
  }

  /// First embedding index of the item-side field (user side is
  /// [0, split), item side [split, F)).
  static std::size_t field_split(std::size_t num_features) {
    return num_features / 2;
  }

  static void forward(const Matrix& z0, std::span<const Matrix> emb,
                      Matrix& out);

  static void backward(const Matrix& z0, std::span<const Matrix> emb,
                       const Matrix& dout, Matrix& dz0,
                       std::span<Matrix> demb);
};

}  // namespace dlcomp
