#include "dlrm/model.hpp"

#include "common/error.hpp"

namespace dlcomp {

namespace {

std::vector<std::size_t> bottom_dims(const DatasetSpec& spec,
                                     const DlrmConfig& config) {
  std::vector<std::size_t> dims;
  dims.push_back(spec.num_dense);
  dims.insert(dims.end(), config.bottom_hidden.begin(),
              config.bottom_hidden.end());
  dims.push_back(spec.embedding_dim);
  return dims;
}

std::vector<std::size_t> top_dims(const DatasetSpec& spec,
                                  const DlrmConfig& config) {
  std::vector<std::size_t> dims;
  dims.push_back(interaction_output_dim(config.arch, spec.num_tables(),
                                        spec.embedding_dim));
  dims.insert(dims.end(), config.top_hidden.begin(), config.top_hidden.end());
  dims.push_back(1);
  return dims;
}

}  // namespace

ModelArch parse_model_arch(std::string_view name) {
  if (name == "dlrm") return ModelArch::kDlrm;
  if (name == "widedeep" || name == "wide-deep") return ModelArch::kWideDeep;
  if (name == "ncf") return ModelArch::kNcf;
  throw Error("unknown model arch: " + std::string(name) +
              " (expected dlrm|widedeep|ncf)");
}

std::string_view model_arch_name(ModelArch arch) noexcept {
  switch (arch) {
    case ModelArch::kDlrm: return "dlrm";
    case ModelArch::kWideDeep: return "widedeep";
    case ModelArch::kNcf: return "ncf";
  }
  return "dlrm";
}

std::size_t interaction_output_dim(ModelArch arch, std::size_t num_tables,
                                   std::size_t dim) {
  switch (arch) {
    case ModelArch::kWideDeep:
      return ConcatInteraction::output_dim(num_tables, dim);
    case ModelArch::kNcf:
      return NcfInteraction::output_dim(num_tables, dim);
    case ModelArch::kDlrm: break;
  }
  return DotInteraction::output_dim(num_tables, dim);
}

DlrmModel::DlrmModel(const DatasetSpec& spec, const DlrmConfig& config,
                     std::uint64_t seed)
    : spec_(spec),
      config_(config),
      bottom_([&] {
        Rng rng(seed);
        auto rng_b = rng.fork({0xB0});
        const auto dims = bottom_dims(spec, config);
        return Mlp(dims, rng_b);
      }()),
      top_([&] {
        Rng rng(seed);
        auto rng_t = rng.fork({0x70});
        const auto dims = top_dims(spec, config);
        return Mlp(dims, rng_t);
      }()) {
  DLCOMP_CHECK_MSG(
      config_.arch != ModelArch::kNcf || spec_.num_tables() >= 2,
      "NCF arch needs >= 2 embedding tables, got " << spec_.num_tables());
  Rng rng(seed);
  tables_.reserve(spec_.num_tables());
  optimizers_.reserve(spec_.num_tables());
  for (std::size_t t = 0; t < spec_.num_tables(); ++t) {
    auto rng_t = rng.fork({0xE0, t});
    tables_.push_back(
        EmbeddingTable::init_from_spec(spec_.tables[t], spec_.embedding_dim, rng_t));
    optimizers_.emplace_back(config_.embedding_optimizer,
                             config_.learning_rate);
  }
  lookups_.resize(spec_.num_tables());
}

const Matrix& DlrmModel::forward(const SampleBatch& batch,
                                 const TableTransform& lookup_transform) {
  const std::size_t B = batch.batch_size();
  DLCOMP_CHECK(batch.indices.size() == tables_.size());

  z0_ = bottom_.forward(batch.dense);

  for (std::size_t t = 0; t < tables_.size(); ++t) {
    lookups_[t].resize(B, spec_.embedding_dim);
    if (lookup_provider_) {
      lookup_provider_(t, batch.indices[t], lookups_[t]);
    } else {
      tables_[t].lookup(batch.indices[t], lookups_[t]);
    }
    if (lookup_transform) lookup_transform(t, lookups_[t]);
  }

  interaction_out_.resize(
      B, interaction_output_dim(config_.arch, tables_.size(),
                                spec_.embedding_dim));
  switch (config_.arch) {
    case ModelArch::kWideDeep:
      ConcatInteraction::forward(z0_, lookups_, interaction_out_);
      break;
    case ModelArch::kNcf:
      NcfInteraction::forward(z0_, lookups_, interaction_out_);
      break;
    case ModelArch::kDlrm:
      DotInteraction::forward(z0_, lookups_, interaction_out_);
      break;
  }
  return top_.forward(interaction_out_);
}

LossResult DlrmModel::train_step(const SampleBatch& batch,
                                 const TableTransform& lookup_transform,
                                 const TableTransform& grad_transform) {
  DLCOMP_CHECK_MSG(!lookup_provider_,
                   "train_step is not supported while a lookup provider is "
                   "installed (updates would never reach the served store)");
  const std::size_t B = batch.batch_size();
  const Matrix& logits = forward(batch, lookup_transform);

  Matrix dlogits(B, 1);
  const LossResult result =
      bce_with_logits(logits.flat(), batch.labels, dlogits.flat());

  const Matrix dfeat = top_.backward(dlogits);

  Matrix dz0(B, spec_.embedding_dim);
  std::vector<Matrix> demb(tables_.size());
  for (auto& d : demb) d.resize(B, spec_.embedding_dim);
  switch (config_.arch) {
    case ModelArch::kWideDeep:
      ConcatInteraction::backward(z0_, lookups_, dfeat, dz0,
                                  std::span<Matrix>(demb));
      break;
    case ModelArch::kNcf:
      NcfInteraction::backward(z0_, lookups_, dfeat, dz0,
                               std::span<Matrix>(demb));
      break;
    case ModelArch::kDlrm:
      DotInteraction::backward(z0_, lookups_, dfeat, dz0,
                               std::span<Matrix>(demb));
      break;
  }

  if (grad_transform) {
    for (std::size_t t = 0; t < tables_.size(); ++t) {
      grad_transform(t, demb[t]);
    }
  }

  (void)bottom_.backward(dz0);

  for (std::size_t t = 0; t < tables_.size(); ++t) {
    optimizers_[t].apply(tables_[t], batch.indices[t], demb[t]);
  }
  bottom_.sgd_step(config_.learning_rate);
  top_.sgd_step(config_.learning_rate);
  return result;
}

LossResult DlrmModel::evaluate(const SampleBatch& batch,
                               const TableTransform& lookup_transform) {
  const Matrix& logits = forward(batch, lookup_transform);
  return bce_with_logits(logits.flat(), batch.labels);
}

void DlrmModel::predict(const SampleBatch& batch,
                        std::span<float> probabilities,
                        const TableTransform& lookup_transform) {
  DLCOMP_CHECK(probabilities.size() == batch.batch_size());
  const Matrix& logits = forward(batch, lookup_transform);
  for (std::size_t i = 0; i < probabilities.size(); ++i) {
    probabilities[i] = static_cast<float>(sigmoid(logits.flat()[i]));
  }
}

LossResult DlrmModel::evaluate_stream(const BatchSource& data,
                                      std::size_t batch_size,
                                      std::size_t batches) {
  DLCOMP_CHECK(batches > 0);
  LossResult total;
  for (std::size_t i = 0; i < batches; ++i) {
    const SampleBatch batch = data.make_eval_batch(batch_size, i);
    const LossResult r = evaluate(batch);
    total.loss += r.loss;
    total.accuracy += r.accuracy;
  }
  total.loss /= static_cast<double>(batches);
  total.accuracy /= static_cast<double>(batches);
  return total;
}

}  // namespace dlcomp
