#include "dlrm/mlp.hpp"

#include <cmath>

#include "common/error.hpp"
#include "tensor/ops.hpp"

namespace dlcomp {

Mlp::Mlp(std::span<const std::size_t> dims, Rng& rng) {
  DLCOMP_CHECK_MSG(dims.size() >= 2, "MLP needs at least input and output dims");
  input_dim_ = dims.front();
  output_dim_ = dims.back();
  layers_.reserve(dims.size() - 1);
  for (std::size_t l = 0; l + 1 < dims.size(); ++l) {
    Layer layer;
    const std::size_t in = dims[l];
    const std::size_t out = dims[l + 1];
    const float bound = std::sqrt(6.0f / static_cast<float>(in + out));
    layer.w = Matrix::rand_uniform(rng, out, in, -bound, bound);
    layer.b.assign(out, 0.0f);
    layer.dw = Matrix(out, in);
    layer.db.assign(out, 0.0f);
    layers_.push_back(std::move(layer));
  }
  inputs_.resize(layers_.size());
  outputs_.resize(layers_.size());
}

const Matrix& Mlp::forward(const Matrix& x) {
  DLCOMP_CHECK_MSG(x.cols() == input_dim_,
                   "MLP input dim " << x.cols() << " != " << input_dim_);
  const Matrix* current = &x;
  for (std::size_t l = 0; l < layers_.size(); ++l) {
    inputs_[l] = *current;  // cache a copy for the backward pass
    Layer& layer = layers_[l];
    outputs_[l].resize(current->rows(), layer.w.rows());
    matmul_nt(*current, layer.w, outputs_[l]);
    add_bias(outputs_[l], layer.b);
    if (l + 1 < layers_.size()) relu_inplace(outputs_[l]);
    current = &outputs_[l];
  }
  return outputs_.back();
}

Matrix Mlp::backward(const Matrix& dy) {
  DLCOMP_CHECK(!layers_.empty());
  DLCOMP_CHECK_MSG(dy.rows() == outputs_.back().rows() &&
                       dy.cols() == outputs_.back().cols(),
                   "backward shape mismatch");
  Matrix grad = dy;
  for (std::size_t l = layers_.size(); l-- > 0;) {
    Layer& layer = layers_[l];
    if (l + 1 < layers_.size()) {
      // Gradient through the hidden ReLU (output layer is linear).
      relu_bwd(outputs_[l], grad);
    }
    matmul_tn_accum(grad, inputs_[l], layer.dw);
    bias_grad_accum(grad, layer.db);
    Matrix dx(grad.rows(), layer.w.cols());
    matmul_nn(grad, layer.w, dx);
    grad = std::move(dx);
  }
  return grad;
}

void Mlp::sgd_step(float lr) {
  for (auto& layer : layers_) {
    axpy(-lr, layer.dw.flat(), layer.w.flat());
    axpy(-lr, std::span<const float>(layer.db), std::span<float>(layer.b));
  }
  zero_grad();
}

void Mlp::zero_grad() {
  for (auto& layer : layers_) {
    layer.dw.zero();
    for (auto& g : layer.db) g = 0.0f;
  }
}

std::vector<std::span<float>> Mlp::grad_views() {
  std::vector<std::span<float>> views;
  views.reserve(layers_.size() * 2);
  for (auto& layer : layers_) {
    views.push_back(layer.dw.flat());
    views.push_back(layer.db);
  }
  return views;
}

std::vector<std::span<float>> Mlp::param_views() {
  std::vector<std::span<float>> views;
  views.reserve(layers_.size() * 2);
  for (auto& layer : layers_) {
    views.push_back(layer.w.flat());
    views.push_back(layer.b);
  }
  return views;
}

std::size_t Mlp::parameter_count() const noexcept {
  std::size_t total = 0;
  for (const auto& layer : layers_) {
    total += layer.w.size() + layer.b.size();
  }
  return total;
}

}  // namespace dlcomp
