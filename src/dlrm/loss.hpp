#pragma once

/// \file loss.hpp
/// Binary cross-entropy with logits plus CTR-style metrics. The
/// numerically stable formulation works directly on logits; gradients are
/// mean-reduced over the batch.

#include <span>

namespace dlcomp {

struct LossResult {
  double loss = 0.0;       ///< mean BCE over the batch
  double accuracy = 0.0;   ///< fraction with thresholded prediction == label
};

/// Computes mean BCE-with-logits and accuracy; if `dlogits` is non-empty
/// it receives dLoss/dlogit = (sigmoid(z) - y) / B.
LossResult bce_with_logits(std::span<const float> logits,
                           std::span<const float> labels,
                           std::span<float> dlogits = {});

/// Stable sigmoid.
double sigmoid(double x) noexcept;

}  // namespace dlcomp
