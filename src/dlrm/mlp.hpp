#pragma once

/// \file mlp.hpp
/// Multi-layer perceptron with manual forward/backward -- the
/// data-parallel half of the DLRM substrate (bottom and top MLPs).
/// Weights are (out x in); hidden layers use ReLU; the output layer is
/// linear (the BCE-with-logits loss applies the sigmoid). Gradients
/// accumulate into dw/db so the distributed trainer can all-reduce them
/// before stepping.

#include <span>
#include <vector>

#include "common/rng.hpp"
#include "tensor/matrix.hpp"

namespace dlcomp {

class Mlp {
 public:
  /// dims = {in, hidden..., out}; e.g. {13, 64, 32, 16} for a bottom MLP
  /// projecting 13 dense features to a 16-dim embedding space. Xavier
  /// uniform initialization.
  Mlp(std::span<const std::size_t> dims, Rng& rng);

  [[nodiscard]] std::size_t input_dim() const noexcept { return input_dim_; }
  [[nodiscard]] std::size_t output_dim() const noexcept { return output_dim_; }
  [[nodiscard]] std::size_t num_layers() const noexcept { return layers_.size(); }

  /// Forward pass; caches activations for backward. Returns the output
  /// activation (valid until the next forward call).
  const Matrix& forward(const Matrix& x);

  /// Backward from dLoss/dOutput; accumulates weight gradients and
  /// returns dLoss/dInput. Must follow a forward() with matching batch.
  Matrix backward(const Matrix& dy);

  /// SGD update from accumulated gradients, then zeroes them.
  void sgd_step(float lr);

  void zero_grad();

  /// Mutable views over every gradient buffer, in a deterministic order
  /// (for all-reduce). Layout: w0, b0, w1, b1, ...
  [[nodiscard]] std::vector<std::span<float>> grad_views();

  /// Mutable views over parameters, same order as grad_views().
  [[nodiscard]] std::vector<std::span<float>> param_views();

  /// Total parameter count.
  [[nodiscard]] std::size_t parameter_count() const noexcept;

 private:
  struct Layer {
    Matrix w;   // out x in
    std::vector<float> b;
    Matrix dw;
    std::vector<float> db;
  };

  std::size_t input_dim_ = 0;
  std::size_t output_dim_ = 0;
  std::vector<Layer> layers_;

  // Forward cache: inputs_[l] is the input to layer l; outputs_[l] the
  // post-activation output.
  std::vector<Matrix> inputs_;
  std::vector<Matrix> outputs_;
};

}  // namespace dlcomp
