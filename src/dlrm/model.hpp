#pragma once

/// \file model.hpp
/// Single-process DLRM reference model: bottom MLP + embedding lookups +
/// dot interaction + top MLP + BCE loss, trained with SGD.
///
/// The lookup/gradient transform hooks are the compression injection
/// points: round-tripping lookups (and optionally gradients) through an
/// error-bounded codec here is mathematically identical to compressing
/// the all-to-all payloads in the distributed pipeline, because the
/// all-to-all itself only moves data. The accuracy experiments (Figs. 5,
/// 8, 9, 10) run through these hooks; the distributed trainer in
/// dlcomp::core reuses the same components for the timing experiments.

#include <functional>
#include <span>
#include <string_view>
#include <vector>

#include "data/batch_source.hpp"
#include "dlrm/embedding_table.hpp"
#include "dlrm/interaction.hpp"
#include "dlrm/loss.hpp"
#include "dlrm/mlp.hpp"
#include "dlrm/optimizer.hpp"

namespace dlcomp {

/// Model-zoo architecture: which interaction layer sits between the
/// embedding lookups and the top MLP (see interaction.hpp). Everything
/// else — bottom/top MLPs, tables, optimizer, the lookup/gradient
/// transform hooks — is shared, so every codec experiment and the
/// serving tier run unchanged across the zoo.
enum class ModelArch : std::uint8_t {
  kDlrm,      ///< pairwise dot interaction (the paper's model)
  kWideDeep,  ///< Wide&Deep-shaped concatenation
  kNcf,       ///< NCF/GMF-shaped two-field element-wise product
};

/// Parses "dlrm" / "widedeep" / "ncf"; throws Error otherwise.
ModelArch parse_model_arch(std::string_view name);

/// Stable name of an architecture (inverse of parse_model_arch).
std::string_view model_arch_name(ModelArch arch) noexcept;

/// Interaction output width of `arch` for F tables of width dim.
std::size_t interaction_output_dim(ModelArch arch, std::size_t num_tables,
                                   std::size_t dim);

struct DlrmConfig {
  /// Bottom MLP hidden sizes (input = num_dense, output = embedding_dim
  /// are appended automatically).
  std::vector<std::size_t> bottom_hidden = {64, 32};
  /// Top MLP hidden sizes (input = interaction width, output = 1).
  std::vector<std::size_t> top_hidden = {64, 32};
  float learning_rate = 0.1f;
  /// Embedding-table update rule (MLPs always use SGD, as in DLRM).
  EmbeddingOptimizerKind embedding_optimizer = EmbeddingOptimizerKind::kSgd;
  /// Interaction architecture (kNcf needs >= 2 tables).
  ModelArch arch = ModelArch::kDlrm;
};

class DlrmModel {
 public:
  /// Called per table to mutate the looked-up vectors (forward) or the
  /// embedding gradients (backward) in place -- e.g. a compression
  /// round-trip.
  using TableTransform = std::function<void(std::size_t table, Matrix& data)>;

  /// Replaces the lookup *source* (where TableTransform mutates the
  /// result of the model's own tables): fills `out` (indices.size() x
  /// dim) with the served rows for `table`. This is the sharded serving
  /// tier's injection point -- a ShardRouter scatter/gathers the rows
  /// from the fleet-shared store instead of the model's weights.
  using LookupProvider = std::function<void(
      std::size_t table, std::span<const std::uint32_t> indices, Matrix& out)>;

  DlrmModel(const DatasetSpec& spec, const DlrmConfig& config,
            std::uint64_t seed);

  /// One SGD step on a batch. `lookup_transform` / `grad_transform` may
  /// be null for exact (uncompressed) training.
  LossResult train_step(const SampleBatch& batch,
                        const TableTransform& lookup_transform = nullptr,
                        const TableTransform& grad_transform = nullptr);

  /// Forward-only evaluation. `lookup_transform` may round-trip the
  /// looked-up vectors through a codec, which models serving from
  /// compressed embedding payloads (exact evaluation passes null).
  LossResult evaluate(const SampleBatch& batch,
                      const TableTransform& lookup_transform = nullptr);

  /// Forward-only scoring for the serving path: fills `probabilities`
  /// (size == batch.batch_size()) with sigmoid(logit) per sample. Same
  /// transform hook as evaluate().
  void predict(const SampleBatch& batch, std::span<float> probabilities,
               const TableTransform& lookup_transform = nullptr);

  /// Mean evaluation over `batches` held-out batches.
  LossResult evaluate_stream(const BatchSource& data,
                             std::size_t batch_size, std::size_t batches);

  [[nodiscard]] std::size_t num_tables() const noexcept { return tables_.size(); }
  [[nodiscard]] EmbeddingTable& table(std::size_t t) { return tables_.at(t); }
  /// All embedding tables (e.g. to build a serving store from the
  /// checkpoint-loaded weights).
  [[nodiscard]] std::span<const EmbeddingTable> tables() const noexcept {
    return tables_;
  }
  [[nodiscard]] EmbeddingOptimizer& optimizer(std::size_t t) {
    return optimizers_.at(t);
  }
  [[nodiscard]] const DatasetSpec& spec() const noexcept { return spec_; }
  [[nodiscard]] Mlp& bottom_mlp() noexcept { return bottom_; }
  [[nodiscard]] Mlp& top_mlp() noexcept { return top_; }

  /// Installs (or clears, with null) the lookup provider forward() uses
  /// instead of the model's own embedding tables. Training through a
  /// provider is not supported (the optimizer would update weights the
  /// provider never re-reads), so train_step throws while one is set.
  void set_lookup_provider(LookupProvider provider) {
    lookup_provider_ = std::move(provider);
  }

  /// Looks up one table for a batch (helper for analysis passes that need
  /// raw lookup tensors, e.g. Homo-Index sampling).
  void lookup_table(std::size_t t, std::span<const std::uint32_t> indices,
                    Matrix& out) const {
    tables_[t].lookup(indices, out);
  }

 private:
  /// Shared forward machinery; returns logits and fills caches needed for
  /// backward when `training` is true.
  const Matrix& forward(const SampleBatch& batch,
                        const TableTransform& lookup_transform);

  DatasetSpec spec_;
  DlrmConfig config_;
  Mlp bottom_;
  Mlp top_;
  std::vector<EmbeddingTable> tables_;
  std::vector<EmbeddingOptimizer> optimizers_;  // one per table
  LookupProvider lookup_provider_;  // null = serve from tables_

  // Forward caches.
  Matrix z0_;
  std::vector<Matrix> lookups_;
  Matrix interaction_out_;
};

}  // namespace dlcomp
