#pragma once

/// \file optimizer.hpp
/// Embedding-table optimizers. Production DLRM commonly trains embedding
/// tables with (row-)sparse Adagrad while the dense MLPs use SGD; this
/// module provides both so the trainer can mirror that setup. State is
/// held outside EmbeddingTable so tables stay plain weight storage.

#include <cstdint>
#include <span>

#include "dlrm/embedding_table.hpp"
#include "tensor/matrix.hpp"

namespace dlcomp {

enum class EmbeddingOptimizerKind : std::uint8_t { kSgd, kAdagrad };

/// Per-table optimizer state + update rule.
class EmbeddingOptimizer {
 public:
  /// `table_rows`/`dim` size the Adagrad accumulator (allocated lazily on
  /// the first update, so SGD carries no memory cost).
  EmbeddingOptimizer(EmbeddingOptimizerKind kind, float learning_rate,
                     float adagrad_epsilon = 1e-8f)
      : kind_(kind), lr_(learning_rate), epsilon_(adagrad_epsilon) {}

  [[nodiscard]] EmbeddingOptimizerKind kind() const noexcept { return kind_; }
  [[nodiscard]] float learning_rate() const noexcept { return lr_; }

  /// Adagrad accumulator (rows x dim once allocated; empty for SGD or
  /// before the first update). Exposed so checkpoints can persist and
  /// restore optimizer state exactly.
  [[nodiscard]] Matrix& accumulator() noexcept { return accumulator_; }
  [[nodiscard]] const Matrix& accumulator() const noexcept {
    return accumulator_;
  }

  /// Applies `grads` (batch x dim) at `indices` to the table, with each
  /// gradient row pre-multiplied by `grad_scale` (the distributed trainer
  /// passes 1/world so updates are global-batch means regardless of the
  /// rule). SGD: w -= lr*g. Adagrad: per-element accumulator G += g^2,
  /// w -= lr * g / (sqrt(G) + eps). Duplicate indices accumulate
  /// sequentially -- the standard "sparse Adagrad" of DLRM trainers.
  void apply(EmbeddingTable& table, std::span<const std::uint32_t> indices,
             const Matrix& grads, float grad_scale = 1.0f);

 private:
  EmbeddingOptimizerKind kind_;
  float lr_;
  float epsilon_;
  Matrix accumulator_;  // lazily sized rows x dim for Adagrad
};

}  // namespace dlcomp
