#include "comm/sim_transport.hpp"

#include "common/error.hpp"

namespace dlcomp {

SimTransportGroup::SimTransportGroup(int world_size)
    : world_(world_size),
      barrier_(static_cast<std::size_t>(world_size)),
      slots_(static_cast<std::size_t>(world_size)) {
  DLCOMP_CHECK(world_size >= 1);
}

void SimTransport::exchange(
    std::span<const std::byte> control,
    std::span<const std::span<const std::byte>> send,
    std::vector<std::vector<std::byte>>& controls_out,
    std::vector<std::vector<std::byte>>& recv_out) {
  const auto world = static_cast<std::size_t>(group_.world());
  DLCOMP_CHECK(send.size() == world);
  const auto me = static_cast<std::size_t>(rank_);

  group_.slots_[me] = {control.data(), control.size(), send.data()};
  group_.barrier_.arrive_and_wait();

  // Between the barriers every rank's post is stable, so reading peers'
  // control blocks and the chunks addressed to this rank is race-free.
  controls_out.resize(world);
  recv_out.resize(world);
  for (std::size_t src = 0; src < world; ++src) {
    const SimTransportGroup::Post& post = group_.slots_[src];
    controls_out[src].assign(post.control, post.control + post.control_size);
    const std::span<const std::byte>& chunk = post.sends[me];
    recv_out[src].assign(chunk.begin(), chunk.end());
    if (src != me) {
      stats_.bytes_received += post.control_size + chunk.size();
    }
  }
  group_.barrier_.arrive_and_wait();

  ++stats_.exchanges;
  for (std::size_t d = 0; d < world; ++d) {
    if (d != me) stats_.bytes_sent += control.size() + send[d].size();
  }
}

void SimTransport::barrier() {
  group_.barrier_.arrive_and_wait();
  ++stats_.barriers;
}

}  // namespace dlcomp
