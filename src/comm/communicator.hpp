#pragma once

/// \file communicator.hpp
/// SPMD cluster and per-rank communicator. The Communicator owns the
/// *semantics* of every collective — deterministic data movement, the
/// NetworkModel charge on the rank's SimClock, per-phase attribution —
/// while the *mechanics* of moving bytes live behind the Transport
/// interface: SimTransport (ranks are threads, payload is a memcpy
/// through shared slots) or TcpTransport (ranks are processes, payload
/// is framed messages over localhost sockets). Every collective reduces
/// to one Transport::exchange carrying a control block of
/// {clock snapshot, payload sizes}; because ranks are quiescent between
/// a collective's rendezvous points, reconstructing the slowest-arrival
/// time and the bottleneck wire volume from those snapshots is bitwise
/// identical to the former shared-memory scan — which is what keeps
/// simulated clocks, loss trajectories and wire CRCs byte-identical
/// across backends. See DESIGN.md "Transport backends and calibration".
///
/// Collectives come in blocking and nonblocking flavors. A nonblocking
/// call moves the payload immediately (real data motion completes inside
/// the exchange) but defers the *clock* charge to
/// PendingCollective::wait(): compute charged between issue and wait
/// overlaps the modelled wire time, and only the exposed remainder
/// stalls the rank. See DESIGN.md "Overlap and the simulated clock".

#include <array>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "comm/network_model.hpp"
#include "comm/phase_names.hpp"
#include "comm/sim_transport.hpp"
#include "comm/transport.hpp"
#include "parallel/sim_clock.hpp"

namespace dlcomp {

class Communicator;
class MetricsRegistry;

/// Per-collective traffic accounting for one rank: how many of each
/// collective ran and how many *modelled* wire bytes each family pushed
/// (the same modelled totals wire_bytes_sent sums, so the numbers are
/// backend-independent). Published as dlcomp_comm_* metrics.
struct CommStats {
  std::uint64_t alltoall_count = 0;
  std::uint64_t alltoall_wire_bytes = 0;
  std::uint64_t allreduce_count = 0;
  std::uint64_t allreduce_wire_bytes = 0;
  std::uint64_t allgather_count = 0;
  std::uint64_t allgather_wire_bytes = 0;
  std::uint64_t broadcast_count = 0;
  std::uint64_t broadcast_wire_bytes = 0;
  std::uint64_t barrier_count = 0;

  CommStats& operator+=(const CommStats& other) noexcept;
};

/// Registers one rank's comm accounting as dlcomp_comm_* counters (plus
/// the modelled wire total) in `registry`. Counters accumulate, so
/// summing ranks is just calling this once per rank.
void publish_comm_metrics(MetricsRegistry& registry, const CommStats& stats,
                          std::uint64_t wire_bytes_sent);

namespace detail {

/// Shared state for one thread-rank cluster run.
struct CommContext {
  explicit CommContext(int world_size, NetworkModel model);

  const int world;
  const NetworkModel net;
  SimTransportGroup transport;
  std::vector<SimClock> clocks;
  std::vector<std::uint64_t> wire_bytes_sent;  // per-rank modelled traffic
  std::vector<CommStats> comm_stats;
};

}  // namespace detail

/// Handle to a collective issued with one of the *_async entry points.
/// The payload has already moved by the time the handle exists; what is
/// in flight is *simulated wire time*. wait() is purely local (no
/// barriers): it compares the rank's clock — advanced by whatever compute
/// ran since issue — against the collective's modelled interval
/// [start, start + duration], charges only the exposed remainder to the
/// clock, and records the overlapped part in the clock's hidden ledger.
/// Waiting immediately after issue reproduces the blocking collectives'
/// charges bit for bit.
class PendingCollective {
 public:
  /// Clock charge applied by wait().
  struct Charge {
    double exposed_seconds = 0.0;  ///< stall added to the rank's clock
    double hidden_seconds = 0.0;   ///< wire seconds absorbed by overlap
  };

  PendingCollective() = default;
  PendingCollective(PendingCollective&& other) noexcept { *this = std::move(other); }
  PendingCollective& operator=(PendingCollective&& other) noexcept {
    if (this != &other) {
      clock_ = other.clock_;
      names_ = other.names_;
      issue_ = other.issue_;
      start_ = other.start_;
      segments_ = other.segments_;
      segment_count_ = other.segment_count_;
      recv_ = std::move(other.recv_);
      waited_ = other.waited_;
      other.waited_ = true;  // a moved-from handle must never charge again
    }
    return *this;
  }
  PendingCollective(const PendingCollective&) = delete;
  PendingCollective& operator=(const PendingCollective&) = delete;

  /// Completes the collective on this rank's simulated clock and returns
  /// what was charged. Idempotent: later calls return a zero charge.
  Charge wait();

  /// True once wait() ran (or the handle was default-constructed/moved
  /// from). A destroyed un-waited handle simply never charges its time.
  [[nodiscard]] bool complete() const noexcept { return waited_; }

  /// Simulated time the collective starts: the slowest rank's issue time,
  /// floored by the issue-time `not_before` (link serialization).
  [[nodiscard]] double start_seconds() const noexcept { return start_; }

  /// Simulated completion time (start + every modelled segment).
  [[nodiscard]] double completion_seconds() const noexcept {
    double t = start_;
    for (std::size_t i = 0; i < segment_count_; ++i) t += segments_[i].seconds;
    return t;
  }

  /// Received per-source buffers (all_to_all_v_async only).
  [[nodiscard]] std::vector<std::vector<std::byte>>& recv() noexcept {
    return recv_;
  }

 private:
  friend class Communicator;

  /// One attributed slice of the collective's wire time, in order
  /// (e.g. metadata then payload). Phase strings are interned, so the
  /// pointers outlive every handle.
  struct Segment {
    const std::string* phase = nullptr;
    double seconds = 0.0;
  };

  SimClock* clock_ = nullptr;
  const PhaseNames* names_ = nullptr;
  double issue_ = 0.0;  ///< this rank's clock when it issued
  double start_ = 0.0;
  std::array<Segment, 2> segments_{};
  std::size_t segment_count_ = 0;
  std::vector<std::vector<std::byte>> recv_;
  bool waited_ = true;
};

/// Per-rank handle used inside SPMD rank bodies. Not copyable; each rank
/// owns exactly one for the duration of the SPMD region. The transport
/// endpoint decides *how* bytes move; everything simulated (clock,
/// NetworkModel charges, wire accounting) lives here and is therefore
/// identical across backends.
class Communicator {
 public:
  Communicator(Transport& transport, const NetworkModel& net, SimClock& clock,
               std::uint64_t& wire_bytes_sent, CommStats& stats)
      : transport_(transport),
        net_(net),
        clock_(clock),
        wire_bytes_(wire_bytes_sent),
        stats_(stats) {}

  Communicator(const Communicator&) = delete;
  Communicator& operator=(const Communicator&) = delete;

  [[nodiscard]] int rank() const noexcept { return transport_.rank(); }
  [[nodiscard]] int world() const noexcept { return transport_.world(); }
  [[nodiscard]] const NetworkModel& network() const noexcept { return net_; }

  /// The transport endpoint underneath (for backend-specific queries:
  /// shared_memory(), real traffic stats).
  [[nodiscard]] Transport& transport() noexcept { return transport_; }

  /// Per-rank simulated clock (advanced by collectives; compute phases
  /// may advance it explicitly via advance_compute).
  [[nodiscard]] SimClock& clock() noexcept { return clock_; }

  /// Total bytes this rank has pushed over the simulated wire.
  [[nodiscard]] std::uint64_t wire_bytes_sent() const noexcept {
    return wire_bytes_;
  }

  /// Per-collective accounting for this rank.
  [[nodiscard]] const CommStats& comm_stats() const noexcept { return stats_; }

  /// Attributes modelled (non-communication) time to this rank's clock.
  void advance_compute(std::string_view phase, double seconds) {
    clock_.advance(phase, seconds);
  }

  /// Barrier across all ranks (no simulated time charged).
  void barrier();

  /// Fixed-size all-to-all: `send` holds world() blocks of
  /// `count_per_rank` floats (block d goes to rank d); `recv` receives
  /// world() blocks (block s came from rank s). Sizes must match exactly.
  void all_to_all(std::span<const float> send, std::span<float> recv,
                  std::size_t count_per_rank, std::string_view phase);

  /// Variable-size all-to-all over byte chunks: send[d] goes to rank d;
  /// result[s] is the chunk rank s sent here. This models the paper's
  /// stage (2)+(3): chunk sizes are exchanged first (metadata all-to-all,
  /// charged separately to phase "<phase>/metadata"), then payloads move.
  /// Equivalent to all_to_all_v_async immediately waited.
  [[nodiscard]] std::vector<std::vector<std::byte>> all_to_all_v(
      const std::vector<std::vector<std::byte>>& send, std::string_view phase);

  /// Nonblocking all_to_all_v: payloads move now, the clock is charged at
  /// handle.wait() under the overlap model. `not_before` floors the
  /// simulated start time (every rank must pass the same value) — the
  /// pipelined exchange uses it to serialize chunk groups on one link.
  [[nodiscard]] PendingCollective all_to_all_v_async(
      const std::vector<std::vector<std::byte>>& send, std::string_view phase,
      double not_before = 0.0);

  /// In-place sum all-reduce (deterministic: every rank accumulates peer
  /// buffers in rank order, so results are bitwise identical everywhere).
  void all_reduce_sum(std::span<float> data, std::string_view phase);

  /// Nonblocking all-reduce: `data` holds the reduced result on return
  /// (real movement is immediate), but simulated completion is charged at
  /// handle.wait(). Callers must not *logically* consume the result
  /// before waiting.
  [[nodiscard]] PendingCollective all_reduce_sum_async(std::span<float> data,
                                                       std::string_view phase);

  /// Gathers one u64 from every rank (index = source rank).
  [[nodiscard]] std::vector<std::uint64_t> all_gather_u64(std::uint64_t value,
                                                          std::string_view phase);

  /// Gathers a fixed-size float block from every rank into recv
  /// (world() * count floats, ordered by source rank).
  void all_gather(std::span<const float> send, std::span<float> recv,
                  std::string_view phase);

  /// Broadcast from `root` into `data` (all ranks pass same-sized spans).
  void broadcast(std::span<float> data, int root, std::string_view phase);

 private:
  /// One Transport::exchange with the standard control block
  /// {f64 clock_now, u64 meta[meta_count]}. Returns every rank's decoded
  /// control words in `meta_out` (world rows of meta_count u64s, rank
  /// order) and the slowest rank's clock (seeded by `not_before`) —
  /// bitwise equal to the former shared-memory clock scan, because max()
  /// over the same doubles in rank order is order-stable.
  double exchange_with_clock(std::span<const std::uint64_t> meta,
                             std::span<const std::span<const std::byte>> send,
                             std::vector<std::uint64_t>& meta_out,
                             std::vector<std::vector<std::byte>>& recv_out,
                             double not_before = 0.0);

  Transport& transport_;
  const NetworkModel net_;
  SimClock& clock_;
  std::uint64_t& wire_bytes_;
  CommStats& stats_;
};

/// Owns the shared context and runs SPMD regions on one thread per rank
/// over the SimTransport backend. (Multi-process runs build a TcpRuntime
/// per rank instead; the rank body code is identical.)
class Cluster {
 public:
  explicit Cluster(int world_size, NetworkModel model = {});

  [[nodiscard]] int world() const noexcept { return world_; }

  /// Runs `fn(comm)` on world() threads. If any rank throws, the barrier
  /// aborts so peers unblock; the first exception is rethrown here.
  void run(const std::function<void(Communicator&)>& fn);

  /// Per-rank clocks from the most recent run (reset at each run()).
  [[nodiscard]] const std::vector<SimClock>& clocks() const noexcept {
    return ctx_.clocks;
  }

  /// Per-rank wire traffic from the most recent run.
  [[nodiscard]] const std::vector<std::uint64_t>& wire_bytes_sent() const noexcept {
    return ctx_.wire_bytes_sent;
  }

  /// Per-rank collective accounting from the most recent run.
  [[nodiscard]] const std::vector<CommStats>& comm_stats() const noexcept {
    return ctx_.comm_stats;
  }

  /// Maximum simulated time across ranks from the most recent run.
  [[nodiscard]] double makespan_seconds() const;

 private:
  const int world_;
  detail::CommContext ctx_;
};

}  // namespace dlcomp
