#pragma once

/// \file communicator.hpp
/// SPMD cluster and per-rank communicator. Ranks are threads; collectives
/// rendezvous through shared slots guarded by an abortable barrier.
/// Payload movement is real (memcpy through shared memory); wire time is
/// modelled by NetworkModel and accumulated on per-rank SimClocks, with
/// per-phase attribution so benches can reproduce the paper's time
/// breakdowns. See DESIGN.md "Hardware / data substitutions".
///
/// Collectives come in blocking and nonblocking flavors. A nonblocking
/// call moves the payload immediately (ranks are threads, so real data
/// motion is instantaneous relative to the simulated wire) but defers the
/// *clock* charge to PendingCollective::wait(): compute charged between
/// issue and wait overlaps the modelled wire time, and only the exposed
/// remainder stalls the rank. See DESIGN.md "Overlap and the simulated
/// clock".

#include <array>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "comm/barrier.hpp"
#include "comm/network_model.hpp"
#include "comm/phase_names.hpp"
#include "parallel/sim_clock.hpp"

namespace dlcomp {

class Communicator;

namespace detail {

/// Shared state for one cluster run. Slot discipline: a collective posts
/// into its rank's slot, barriers, reads peers' slots, barriers again
/// before anyone may reuse the slots.
struct CommContext {
  explicit CommContext(int world_size, NetworkModel model);

  const int world;
  const NetworkModel net;
  AbortableBarrier barrier;
  std::vector<const void*> slots;        // one generic post per rank
  std::vector<std::size_t> size_slots;   // per-rank byte counts for timing
  std::vector<SimClock> clocks;
  std::vector<std::uint64_t> wire_bytes_sent;  // per-rank traffic totals
};

}  // namespace detail

/// Handle to a collective issued with one of the *_async entry points.
/// The payload has already moved by the time the handle exists; what is
/// in flight is *simulated wire time*. wait() is purely local (no
/// barriers): it compares the rank's clock — advanced by whatever compute
/// ran since issue — against the collective's modelled interval
/// [start, start + duration], charges only the exposed remainder to the
/// clock, and records the overlapped part in the clock's hidden ledger.
/// Waiting immediately after issue reproduces the blocking collectives'
/// charges bit for bit.
class PendingCollective {
 public:
  /// Clock charge applied by wait().
  struct Charge {
    double exposed_seconds = 0.0;  ///< stall added to the rank's clock
    double hidden_seconds = 0.0;   ///< wire seconds absorbed by overlap
  };

  PendingCollective() = default;
  PendingCollective(PendingCollective&& other) noexcept { *this = std::move(other); }
  PendingCollective& operator=(PendingCollective&& other) noexcept {
    if (this != &other) {
      clock_ = other.clock_;
      names_ = other.names_;
      issue_ = other.issue_;
      start_ = other.start_;
      segments_ = other.segments_;
      segment_count_ = other.segment_count_;
      recv_ = std::move(other.recv_);
      waited_ = other.waited_;
      other.waited_ = true;  // a moved-from handle must never charge again
    }
    return *this;
  }
  PendingCollective(const PendingCollective&) = delete;
  PendingCollective& operator=(const PendingCollective&) = delete;

  /// Completes the collective on this rank's simulated clock and returns
  /// what was charged. Idempotent: later calls return a zero charge.
  Charge wait();

  /// True once wait() ran (or the handle was default-constructed/moved
  /// from). A destroyed un-waited handle simply never charges its time.
  [[nodiscard]] bool complete() const noexcept { return waited_; }

  /// Simulated time the collective starts: the slowest rank's issue time,
  /// floored by the issue-time `not_before` (link serialization).
  [[nodiscard]] double start_seconds() const noexcept { return start_; }

  /// Simulated completion time (start + every modelled segment).
  [[nodiscard]] double completion_seconds() const noexcept {
    double t = start_;
    for (std::size_t i = 0; i < segment_count_; ++i) t += segments_[i].seconds;
    return t;
  }

  /// Received per-source buffers (all_to_all_v_async only).
  [[nodiscard]] std::vector<std::vector<std::byte>>& recv() noexcept {
    return recv_;
  }

 private:
  friend class Communicator;

  /// One attributed slice of the collective's wire time, in order
  /// (e.g. metadata then payload). Phase strings are interned, so the
  /// pointers outlive every handle.
  struct Segment {
    const std::string* phase = nullptr;
    double seconds = 0.0;
  };

  SimClock* clock_ = nullptr;
  const PhaseNames* names_ = nullptr;
  double issue_ = 0.0;  ///< this rank's clock when it issued
  double start_ = 0.0;
  std::array<Segment, 2> segments_{};
  std::size_t segment_count_ = 0;
  std::vector<std::vector<std::byte>> recv_;
  bool waited_ = true;
};

/// Per-rank handle used inside Cluster::run callbacks. Not copyable; each
/// rank owns exactly one for the duration of the SPMD region.
class Communicator {
 public:
  Communicator(detail::CommContext& ctx, int rank) : ctx_(ctx), rank_(rank) {}

  Communicator(const Communicator&) = delete;
  Communicator& operator=(const Communicator&) = delete;

  [[nodiscard]] int rank() const noexcept { return rank_; }
  [[nodiscard]] int world() const noexcept { return ctx_.world; }
  [[nodiscard]] const NetworkModel& network() const noexcept { return ctx_.net; }

  /// Per-rank simulated clock (advanced by collectives; compute phases
  /// may advance it explicitly via advance_compute).
  [[nodiscard]] SimClock& clock() noexcept { return ctx_.clocks[static_cast<std::size_t>(rank_)]; }

  /// Total bytes this rank has pushed over the simulated wire.
  [[nodiscard]] std::uint64_t wire_bytes_sent() const noexcept {
    return ctx_.wire_bytes_sent[static_cast<std::size_t>(rank_)];
  }

  /// Attributes modelled (non-communication) time to this rank's clock.
  void advance_compute(std::string_view phase, double seconds) {
    clock().advance(phase, seconds);
  }

  /// Barrier across all ranks (no simulated time charged).
  void barrier();

  /// Fixed-size all-to-all: `send` holds world() blocks of
  /// `count_per_rank` floats (block d goes to rank d); `recv` receives
  /// world() blocks (block s came from rank s). Sizes must match exactly.
  void all_to_all(std::span<const float> send, std::span<float> recv,
                  std::size_t count_per_rank, std::string_view phase);

  /// Variable-size all-to-all over byte chunks: send[d] goes to rank d;
  /// result[s] is the chunk rank s sent here. This models the paper's
  /// stage (2)+(3): chunk sizes are exchanged first (metadata all-to-all,
  /// charged separately to phase "<phase>/metadata"), then payloads move.
  /// One barrier pair per exchange; equivalent to all_to_all_v_async
  /// immediately waited.
  [[nodiscard]] std::vector<std::vector<std::byte>> all_to_all_v(
      const std::vector<std::vector<std::byte>>& send, std::string_view phase);

  /// Nonblocking all_to_all_v: payloads move now, the clock is charged at
  /// handle.wait() under the overlap model. `not_before` floors the
  /// simulated start time (every rank must pass the same value) — the
  /// pipelined exchange uses it to serialize chunk groups on one link.
  [[nodiscard]] PendingCollective all_to_all_v_async(
      const std::vector<std::vector<std::byte>>& send, std::string_view phase,
      double not_before = 0.0);

  /// In-place sum all-reduce (deterministic: every rank accumulates peer
  /// buffers in rank order, so results are bitwise identical everywhere).
  void all_reduce_sum(std::span<float> data, std::string_view phase);

  /// Nonblocking all-reduce: `data` holds the reduced result on return
  /// (real movement is immediate), but simulated completion is charged at
  /// handle.wait(). Callers must not *logically* consume the result
  /// before waiting.
  [[nodiscard]] PendingCollective all_reduce_sum_async(std::span<float> data,
                                                       std::string_view phase);

  /// Gathers one u64 from every rank (index = source rank).
  [[nodiscard]] std::vector<std::uint64_t> all_gather_u64(std::uint64_t value,
                                                          std::string_view phase);

  /// Gathers a fixed-size float block from every rank into recv
  /// (world() * count floats, ordered by source rank).
  void all_gather(std::span<const float> send, std::span<float> recv,
                  std::string_view phase);

  /// Broadcast from `root` into `data` (all ranks pass same-sized spans).
  void broadcast(std::span<float> data, int root, std::string_view phase);

 private:
  /// Synchronizes clocks to the slowest rank (charged to "<phase>/wait")
  /// then advances all by `seconds` charged to `phase`. Must be called by
  /// every rank with the same `seconds`.
  void charge_collective(const PhaseNames& names, double seconds);

  detail::CommContext& ctx_;
  const int rank_;
};

/// Owns the shared context and runs SPMD regions on one thread per rank.
class Cluster {
 public:
  explicit Cluster(int world_size, NetworkModel model = {});

  [[nodiscard]] int world() const noexcept { return world_; }

  /// Runs `fn(comm)` on world() threads. If any rank throws, the barrier
  /// aborts so peers unblock; the first exception is rethrown here.
  void run(const std::function<void(Communicator&)>& fn);

  /// Per-rank clocks from the most recent run (reset at each run()).
  [[nodiscard]] const std::vector<SimClock>& clocks() const noexcept {
    return ctx_.clocks;
  }

  /// Per-rank wire traffic from the most recent run.
  [[nodiscard]] const std::vector<std::uint64_t>& wire_bytes_sent() const noexcept {
    return ctx_.wire_bytes_sent;
  }

  /// Maximum simulated time across ranks from the most recent run.
  [[nodiscard]] double makespan_seconds() const;

 private:
  const int world_;
  detail::CommContext ctx_;
};

}  // namespace dlcomp
