#pragma once

/// \file communicator.hpp
/// SPMD cluster and per-rank communicator. Ranks are threads; collectives
/// rendezvous through shared slots guarded by an abortable barrier.
/// Payload movement is real (memcpy through shared memory); wire time is
/// modelled by NetworkModel and accumulated on per-rank SimClocks, with
/// per-phase attribution so benches can reproduce the paper's time
/// breakdowns. See DESIGN.md "Hardware / data substitutions".

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <span>
#include <string>
#include <vector>

#include "comm/barrier.hpp"
#include "comm/network_model.hpp"
#include "parallel/sim_clock.hpp"

namespace dlcomp {

class Communicator;

namespace detail {

/// Shared state for one cluster run. Slot discipline: a collective posts
/// into its rank's slot, barriers, reads peers' slots, barriers again
/// before anyone may reuse the slots.
struct CommContext {
  explicit CommContext(int world_size, NetworkModel model);

  const int world;
  const NetworkModel net;
  AbortableBarrier barrier;
  std::vector<const void*> slots;        // one generic post per rank
  std::vector<std::size_t> size_slots;   // per-rank byte counts for timing
  std::vector<SimClock> clocks;
  std::vector<std::uint64_t> wire_bytes_sent;  // per-rank traffic totals
};

}  // namespace detail

/// Per-rank handle used inside Cluster::run callbacks. Not copyable; each
/// rank owns exactly one for the duration of the SPMD region.
class Communicator {
 public:
  Communicator(detail::CommContext& ctx, int rank) : ctx_(ctx), rank_(rank) {}

  Communicator(const Communicator&) = delete;
  Communicator& operator=(const Communicator&) = delete;

  [[nodiscard]] int rank() const noexcept { return rank_; }
  [[nodiscard]] int world() const noexcept { return ctx_.world; }
  [[nodiscard]] const NetworkModel& network() const noexcept { return ctx_.net; }

  /// Per-rank simulated clock (advanced by collectives; compute phases
  /// may advance it explicitly via advance_compute).
  [[nodiscard]] SimClock& clock() noexcept { return ctx_.clocks[static_cast<std::size_t>(rank_)]; }

  /// Total bytes this rank has pushed over the simulated wire.
  [[nodiscard]] std::uint64_t wire_bytes_sent() const noexcept {
    return ctx_.wire_bytes_sent[static_cast<std::size_t>(rank_)];
  }

  /// Attributes modelled (non-communication) time to this rank's clock.
  void advance_compute(const std::string& phase, double seconds) {
    clock().advance(phase, seconds);
  }

  /// Barrier across all ranks (no simulated time charged).
  void barrier();

  /// Fixed-size all-to-all: `send` holds world() blocks of
  /// `count_per_rank` floats (block d goes to rank d); `recv` receives
  /// world() blocks (block s came from rank s). Sizes must match exactly.
  void all_to_all(std::span<const float> send, std::span<float> recv,
                  std::size_t count_per_rank, const std::string& phase);

  /// Variable-size all-to-all over byte chunks: send[d] goes to rank d;
  /// result[s] is the chunk rank s sent here. This models the paper's
  /// stage (2)+(3): chunk sizes are exchanged first (metadata all-to-all,
  /// charged separately to phase "<phase>/metadata"), then payloads move.
  [[nodiscard]] std::vector<std::vector<std::byte>> all_to_all_v(
      const std::vector<std::vector<std::byte>>& send, const std::string& phase);

  /// In-place sum all-reduce (deterministic: every rank accumulates peer
  /// buffers in rank order, so results are bitwise identical everywhere).
  void all_reduce_sum(std::span<float> data, const std::string& phase);

  /// Gathers one u64 from every rank (index = source rank).
  [[nodiscard]] std::vector<std::uint64_t> all_gather_u64(std::uint64_t value,
                                                          const std::string& phase);

  /// Gathers a fixed-size float block from every rank into recv
  /// (world() * count floats, ordered by source rank).
  void all_gather(std::span<const float> send, std::span<float> recv,
                  const std::string& phase);

  /// Broadcast from `root` into `data` (all ranks pass same-sized spans).
  void broadcast(std::span<float> data, int root, const std::string& phase);

 private:
  /// Synchronizes clocks to the slowest rank (charged to "<phase>/wait")
  /// then advances all by `seconds` charged to `phase`. Must be called by
  /// every rank with the same `seconds`.
  void charge_collective(const std::string& phase, double seconds);

  detail::CommContext& ctx_;
  const int rank_;
};

/// Owns the shared context and runs SPMD regions on one thread per rank.
class Cluster {
 public:
  explicit Cluster(int world_size, NetworkModel model = {});

  [[nodiscard]] int world() const noexcept { return world_; }

  /// Runs `fn(comm)` on world() threads. If any rank throws, the barrier
  /// aborts so peers unblock; the first exception is rethrown here.
  void run(const std::function<void(Communicator&)>& fn);

  /// Per-rank clocks from the most recent run (reset at each run()).
  [[nodiscard]] const std::vector<SimClock>& clocks() const noexcept {
    return ctx_.clocks;
  }

  /// Per-rank wire traffic from the most recent run.
  [[nodiscard]] const std::vector<std::uint64_t>& wire_bytes_sent() const noexcept {
    return ctx_.wire_bytes_sent;
  }

  /// Maximum simulated time across ranks from the most recent run.
  [[nodiscard]] double makespan_seconds() const;

 private:
  const int world_;
  detail::CommContext ctx_;
};

}  // namespace dlcomp
