#pragma once

/// \file sim_transport.hpp
/// Thread-rank transport: the original shared-slot + abortable-barrier
/// collective mechanics, extracted from the Communicator so they sit
/// behind the Transport interface. Payload movement is a memcpy through
/// shared memory; the slot discipline is unchanged -- post, barrier,
/// read peers' posts, barrier.

#include <cstddef>
#include <vector>

#include "comm/barrier.hpp"
#include "comm/transport.hpp"

namespace dlcomp {

/// Shared state for one thread-rank cluster: one post slot per rank and
/// the barrier guarding them. Endpoints (SimTransport) are cheap views.
class SimTransportGroup {
 public:
  explicit SimTransportGroup(int world_size);

  [[nodiscard]] int world() const noexcept { return world_; }

  /// The barrier, exposed so Cluster::run can abort it when a rank
  /// throws (waking every blocked peer with AbortedError).
  [[nodiscard]] AbortableBarrier& barrier() noexcept { return barrier_; }

 private:
  friend class SimTransport;

  /// What one rank posts for one exchange: pointers into its stack.
  struct Post {
    const std::byte* control = nullptr;
    std::size_t control_size = 0;
    const std::span<const std::byte>* sends = nullptr;  // world() spans
  };

  const int world_;
  AbortableBarrier barrier_;
  std::vector<Post> slots_;
};

/// Per-rank endpoint over a SimTransportGroup.
class SimTransport final : public Transport {
 public:
  SimTransport(SimTransportGroup& group, int rank)
      : group_(group), rank_(rank) {}

  [[nodiscard]] int world() const noexcept override { return group_.world(); }
  [[nodiscard]] int rank() const noexcept override { return rank_; }
  [[nodiscard]] bool shared_memory() const noexcept override { return true; }

  void exchange(std::span<const std::byte> control,
                std::span<const std::span<const std::byte>> send,
                std::vector<std::vector<std::byte>>& controls_out,
                std::vector<std::vector<std::byte>>& recv_out) override;

  void barrier() override;

 private:
  SimTransportGroup& group_;
  const int rank_;
};

}  // namespace dlcomp
