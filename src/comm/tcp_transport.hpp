#pragma once

/// \file tcp_transport.hpp
/// Process-rank transport over nonblocking localhost TCP.
///
/// Rendezvous (blocking, once at construction):
///   1. rank 0 listens on a well-known port (or an fd pre-bound by the
///      launcher, so forked children race-free inherit it);
///   2. every rank r > 0 binds its own ephemeral listener, connects to
///      rank 0 (with retry -- process start is unordered) and sends a
///      hello frame {rank, listen_port};
///   3. rank 0 replies to everyone with the full port table;
///   4. for each pair i < j, rank j connects to rank i's listener and
///      says hello (pairs involving rank 0 reuse the rendezvous
///      connection), completing the full mesh.
///
/// Data plane (nonblocking): one length-prefixed frame per peer per
/// exchange, tagged with a per-endpoint sequence number so a
/// desynchronized SPMD program fails loudly instead of delivering the
/// wrong collective's bytes. Sends and receives interleave through one
/// poll(2) loop (the machinery proven in obs/http_server, shared via
/// common/net), so the all-to-all cannot deadlock on full socket
/// buffers. A peer disconnect mid-collective surfaces as a clean
/// dlcomp::Error naming the peer.

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "common/net.hpp"
#include "comm/transport.hpp"

namespace dlcomp {

struct TcpTransportConfig {
  int world = 1;
  int rank = 0;
  std::string address = "127.0.0.1";
  /// Rank 0's rendezvous port. Ranks > 0 connect to it; rank 0 binds it
  /// unless `inherited_listen_fd` is given. Required when world > 1.
  std::uint16_t port = 0;
  /// Pre-bound listener for rank 0 (launcher mode: the parent binds
  /// before forking so children never race on the port; ownership moves
  /// to the transport). -1 means rank 0 binds `port` itself.
  int inherited_listen_fd = -1;
  /// Rendezvous connect retry budget (covers unordered process start).
  double connect_timeout_s = 30.0;
  std::size_t max_frame_bytes = std::size_t{1} << 30;
};

class TcpTransport final : public Transport {
 public:
  explicit TcpTransport(TcpTransportConfig config);
  ~TcpTransport() override;
  TcpTransport(const TcpTransport&) = delete;
  TcpTransport& operator=(const TcpTransport&) = delete;

  [[nodiscard]] int world() const noexcept override { return config_.world; }
  [[nodiscard]] int rank() const noexcept override { return config_.rank; }
  [[nodiscard]] bool shared_memory() const noexcept override { return false; }

  void exchange(std::span<const std::byte> control,
                std::span<const std::span<const std::byte>> send,
                std::vector<std::vector<std::byte>>& controls_out,
                std::vector<std::vector<std::byte>>& recv_out) override;

  void barrier() override;

 private:
  struct Peer {
    int fd = -1;
    net::FrameDecoder decoder;
    std::vector<std::byte> outbox;
    std::size_t out_cursor = 0;  ///< bytes of outbox already written
    bool frame_done = false;     ///< this exchange's frame arrived
    net::Frame frame;
  };

  void rendezvous();
  /// Drives sends and receives until every peer's frame tagged `tag` is
  /// in and every outbox is drained. Throws on disconnect or desync.
  void pump_until_complete(std::uint32_t tag);
  /// Pulls at most one buffered frame out of `peer`'s decoder.
  void drain_peer(Peer& peer, std::size_t peer_rank, std::uint32_t tag);

  TcpTransportConfig config_;
  std::vector<Peer> peers_;  ///< index = rank; peers_[rank()] unused
  std::uint32_t seq_ = 0;
};

}  // namespace dlcomp
