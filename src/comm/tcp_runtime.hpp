#pragma once

/// \file tcp_runtime.hpp
/// One process-rank's worth of the comm stack over the TCP backend: the
/// transport endpoint plus the per-rank state Cluster::run would have
/// provided (SimClock, wire accounting, CommStats) and a Communicator
/// bound to all of it. The same rank body that runs under Cluster runs
/// against runtime.comm() unchanged -- that is the point of the
/// Transport abstraction.

#include <cstdint>

#include "comm/communicator.hpp"
#include "comm/tcp_transport.hpp"

namespace dlcomp {

class TcpRuntime {
 public:
  explicit TcpRuntime(TcpTransportConfig config, NetworkModel model = {})
      : transport_(std::move(config)),
        comm_(transport_, model, clock_, wire_bytes_, stats_) {
    clock_.set_trace_rank(transport_.rank());
  }

  [[nodiscard]] Communicator& comm() noexcept { return comm_; }
  [[nodiscard]] TcpTransport& transport() noexcept { return transport_; }
  [[nodiscard]] SimClock& clock() noexcept { return clock_; }
  [[nodiscard]] std::uint64_t wire_bytes_sent() const noexcept {
    return wire_bytes_;
  }
  [[nodiscard]] const CommStats& comm_stats() const noexcept { return stats_; }

 private:
  TcpTransport transport_;
  SimClock clock_;
  std::uint64_t wire_bytes_ = 0;
  CommStats stats_;
  Communicator comm_;
};

}  // namespace dlcomp
