#include "comm/calibration.hpp"

#include <cmath>

#include "common/error.hpp"

namespace dlcomp {

LinkCalibration fit_link_parameters(
    std::span<const CalibrationSample> samples) {
  DLCOMP_CHECK_MSG(samples.size() >= 2,
                   "link calibration needs at least two samples");

  const double n = static_cast<double>(samples.size());
  double sum_x = 0.0;
  double sum_y = 0.0;
  for (const CalibrationSample& s : samples) {
    sum_x += static_cast<double>(s.wire_bytes);
    sum_y += s.seconds;
  }
  const double mean_x = sum_x / n;
  const double mean_y = sum_y / n;

  double sxx = 0.0;
  double sxy = 0.0;
  for (const CalibrationSample& s : samples) {
    const double dx = static_cast<double>(s.wire_bytes) - mean_x;
    sxx += dx * dx;
    sxy += dx * (s.seconds - mean_y);
  }
  DLCOMP_CHECK_MSG(sxx > 0.0,
                   "link calibration needs at least two distinct sizes");

  const double slope = sxy / sxx;  // seconds per byte
  DLCOMP_CHECK_MSG(slope > 0.0,
                   "link calibration fit has non-positive bandwidth slope"
                   " -- samples are not time-vs-bytes increasing");

  LinkCalibration fit;
  // A slightly negative intercept is measurement noise on a fast
  // loopback path; clamp instead of reporting negative latency.
  fit.latency_seconds = std::max(0.0, mean_y - slope * mean_x);
  fit.bandwidth_bytes_per_second = 1.0 / slope;

  for (const CalibrationSample& s : samples) {
    const double predicted =
        fit.latency_seconds + static_cast<double>(s.wire_bytes) * slope;
    if (s.seconds > 0.0) {
      fit.max_rel_error = std::max(
          fit.max_rel_error, std::abs(predicted - s.seconds) / s.seconds);
    }
  }
  return fit;
}

}  // namespace dlcomp
