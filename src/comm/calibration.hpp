#pragma once

/// \file calibration.hpp
/// Fits SimClock's NetworkModel link parameters to *measured* transport
/// timings. The model's p2p/all-to-all cost is affine in the bottleneck
/// wire volume: seconds = latency + bytes / bandwidth. Measuring real
/// TCP exchanges at several sizes and least-squares fitting that line
/// recovers (latency, bandwidth) for the machine under test; applying
/// them to a NetworkModel makes the simulator predict the measured
/// fabric instead of the paper's 4 GB/s Slingshot default.

#include <cstdint>
#include <span>

#include "comm/network_model.hpp"

namespace dlcomp {

/// One measured collective: the bottleneck per-rank wire volume the
/// NetworkModel would be charged for, and the measured wall seconds.
struct CalibrationSample {
  std::uint64_t wire_bytes = 0;
  double seconds = 0.0;
};

/// Fitted alpha-beta link parameters.
struct LinkCalibration {
  double latency_seconds = 0.0;
  double bandwidth_bytes_per_second = 0.0;
  /// max over samples of |predicted - measured| / measured.
  double max_rel_error = 0.0;

  /// Copy of `base` with the fitted link parameters substituted (the
  /// allreduce bandwidth is left alone -- it models a different link).
  [[nodiscard]] NetworkModel apply(const NetworkModel& base) const {
    NetworkModel out = base;
    out.latency_seconds = latency_seconds;
    out.bandwidth_bytes_per_second = bandwidth_bytes_per_second;
    return out;
  }
};

/// Ordinary least squares of seconds on bytes over `samples` (needs >= 2
/// distinct sizes). The intercept clamps at >= 0 (a negative fitted
/// latency is measurement noise, not physics), and the slope must be
/// positive -- throws dlcomp::Error otherwise.
[[nodiscard]] LinkCalibration fit_link_parameters(
    std::span<const CalibrationSample> samples);

}  // namespace dlcomp
