#pragma once

/// \file transport.hpp
/// Pluggable transport backend under the Communicator's collectives.
///
/// Every collective the Communicator offers (all_to_all_v, all_reduce,
/// all_gather, broadcast, barrier) reduces to one primitive: each rank
/// contributes a small fixed-size *control block* plus one payload span
/// per destination rank, and receives every rank's control block plus
/// the payloads addressed to it. The Communicator packs its per-rank
/// clock snapshot and payload-size vector into the control block, so it
/// can reconstruct the full size matrix and the slowest-arrival time on
/// every rank identically -- which is what makes SimClock charging (and
/// therefore every simulated number) bitwise identical across backends.
///
/// Two implementations:
///   SimTransport -- ranks are threads; payloads move by memcpy through
///                   shared slots guarded by an abortable barrier (the
///                   original thread+SimClock engine, extracted).
///   TcpTransport -- ranks are processes (or threads in tests); payloads
///                   move as length-prefixed frames over a full mesh of
///                   nonblocking localhost TCP sockets.

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

namespace dlcomp {

/// Measured (wall-clock, real-byte) traffic through a transport
/// endpoint. For SimTransport the byte counters track actual memcpy
/// volume and wall_seconds stays ~0 (shared-memory copies are not what
/// the simulator models); for TcpTransport these are real socket bytes
/// and real blocking time -- the numbers the calibration step fits the
/// NetworkModel against.
struct TransportStats {
  std::uint64_t exchanges = 0;       ///< collective exchange calls
  std::uint64_t barriers = 0;        ///< barrier-only rendezvous calls
  std::uint64_t bytes_sent = 0;      ///< payload+control bytes to peers
  std::uint64_t bytes_received = 0;  ///< payload+control bytes from peers
  double wall_seconds = 0.0;         ///< real time blocked in the transport
};

/// Per-rank transport endpoint. Thread-compatible, not thread-safe: one
/// rank drives one endpoint. All ranks must call the same sequence of
/// exchange()/barrier() operations (SPMD discipline); the TCP backend
/// detects sequence desynchronization through frame tags and surfaces
/// it as an error instead of delivering wrong payloads.
class Transport {
 public:
  virtual ~Transport() = default;

  [[nodiscard]] virtual int world() const noexcept = 0;
  [[nodiscard]] virtual int rank() const noexcept = 0;

  /// True when ranks share one address space (sim backend). The trainer
  /// uses this to decide whether rank 0 can read peer-owned embedding
  /// tables directly or must sync them through collectives.
  [[nodiscard]] virtual bool shared_memory() const noexcept = 0;

  /// The collective primitive. `control` is this rank's control block
  /// (same size on every rank for a given call); `send` holds world()
  /// payload spans, one per destination (send[rank()] is the self
  /// chunk). On return `controls_out[r]` holds rank r's control block
  /// and `recv_out[r]` the payload rank r addressed to this rank; both
  /// are owned copies, valid after peers reuse their buffers.
  virtual void exchange(std::span<const std::byte> control,
                        std::span<const std::span<const std::byte>> send,
                        std::vector<std::vector<std::byte>>& controls_out,
                        std::vector<std::vector<std::byte>>& recv_out) = 0;

  /// Rendezvous with every rank (no payload, no control).
  virtual void barrier() = 0;

  [[nodiscard]] const TransportStats& stats() const noexcept { return stats_; }

 protected:
  TransportStats stats_;
};

}  // namespace dlcomp
