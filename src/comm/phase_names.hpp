#pragma once

/// \file phase_names.hpp
/// Interned per-phase name bundles for the iteration hot path. Collectives
/// and the codec pipeline attribute time to derived names ("x/wait",
/// "x/metadata", "x/compress", ...); building those with string
/// concatenation on every call allocated several std::strings per
/// iteration per rank. The interner materializes each bundle once per
/// unique base name; afterwards a lookup is a shared-lock hash probe and
/// the returned references stay valid for the life of the process.

#include <string>
#include <string_view>

namespace dlcomp {

/// One phase's base name plus every derived attribution name the comm and
/// codec layers charge against. Never destroyed once interned, so callers
/// may cache pointers freely (PendingCollective does).
struct PhaseNames {
  std::string base;
  std::string wait;        ///< "<base>/wait"
  std::string metadata;    ///< "<base>/metadata"
  std::string compress;    ///< "<base>/compress"
  std::string decompress;  ///< "<base>/decompress"
};

/// Thread-safe interner: the first call for a base name allocates the
/// bundle, every later call is allocation-free.
const PhaseNames& interned_phase(std::string_view base);

}  // namespace dlcomp
