#pragma once

/// \file barrier.hpp
/// Reusable barrier with abort support. If any SPMD rank throws, the
/// cluster aborts the barrier so peers blocked in a collective wake up
/// with an exception instead of deadlocking.

#include <condition_variable>
#include <cstddef>
#include <mutex>

#include "common/error.hpp"

namespace dlcomp {

/// Thrown at a barrier when another rank has failed.
class AbortedError : public Error {
 public:
  AbortedError() : Error("SPMD collective aborted by peer failure") {}
};

class AbortableBarrier {
 public:
  explicit AbortableBarrier(std::size_t participants)
      : participants_(participants) {
    DLCOMP_CHECK(participants > 0);
  }

  /// Blocks until all participants arrive. Throws AbortedError if abort()
  /// was or is called while waiting.
  void arrive_and_wait() {
    std::unique_lock lock(mutex_);
    if (aborted_) throw AbortedError{};
    const std::size_t my_generation = generation_;
    if (++arrived_ == participants_) {
      arrived_ = 0;
      ++generation_;
      cv_.notify_all();
      return;
    }
    cv_.wait(lock, [&] { return aborted_ || generation_ != my_generation; });
    if (aborted_) throw AbortedError{};
  }

  /// Wakes all waiters with AbortedError; subsequent arrivals also throw.
  void abort() {
    std::lock_guard lock(mutex_);
    aborted_ = true;
    cv_.notify_all();
  }

  [[nodiscard]] bool aborted() const {
    std::lock_guard lock(mutex_);
    return aborted_;
  }

 private:
  const std::size_t participants_;
  mutable std::mutex mutex_;
  std::condition_variable cv_;
  std::size_t arrived_ = 0;
  std::size_t generation_ = 0;
  bool aborted_ = false;
};

}  // namespace dlcomp
