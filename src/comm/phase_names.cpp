#include "comm/phase_names.hpp"

#include <functional>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <unordered_map>
#include <utility>

#include "common/string_hash.hpp"

namespace dlcomp {

namespace {

// unique_ptr values keep the bundles' addresses stable across rehashes.
using Table = std::unordered_map<std::string, std::unique_ptr<PhaseNames>,
                                 TransparentStringHash, std::equal_to<>>;

std::shared_mutex& table_mutex() {
  static std::shared_mutex mutex;
  return mutex;
}

Table& table() {
  static Table* instance = new Table;  // leaked: references outlive statics
  return *instance;
}

}  // namespace

const PhaseNames& interned_phase(std::string_view base) {
  {
    std::shared_lock lock(table_mutex());
    if (const auto it = table().find(base); it != table().end()) {
      return *it->second;
    }
  }
  std::unique_lock lock(table_mutex());
  if (const auto it = table().find(base); it != table().end()) {
    return *it->second;
  }
  auto names = std::make_unique<PhaseNames>();
  names->base = std::string(base);
  names->wait = names->base + "/wait";
  names->metadata = names->base + "/metadata";
  names->compress = names->base + "/compress";
  names->decompress = names->base + "/decompress";
  const PhaseNames& ref = *names;
  std::string key = names->base;
  table().emplace(std::move(key), std::move(names));
  return ref;
}

}  // namespace dlcomp
