#include "comm/communicator.hpp"

#include <algorithm>
#include <cstring>
#include <exception>
#include <mutex>
#include <thread>

#include "common/error.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace dlcomp {

CommStats& CommStats::operator+=(const CommStats& other) noexcept {
  alltoall_count += other.alltoall_count;
  alltoall_wire_bytes += other.alltoall_wire_bytes;
  allreduce_count += other.allreduce_count;
  allreduce_wire_bytes += other.allreduce_wire_bytes;
  allgather_count += other.allgather_count;
  allgather_wire_bytes += other.allgather_wire_bytes;
  broadcast_count += other.broadcast_count;
  broadcast_wire_bytes += other.broadcast_wire_bytes;
  barrier_count += other.barrier_count;
  return *this;
}

void publish_comm_metrics(MetricsRegistry& registry, const CommStats& stats,
                          std::uint64_t wire_bytes_sent) {
  registry.counter("dlcomp_comm_alltoall_total").add(stats.alltoall_count);
  registry.counter("dlcomp_comm_alltoall_wire_bytes_total")
      .add(stats.alltoall_wire_bytes);
  registry.counter("dlcomp_comm_allreduce_total").add(stats.allreduce_count);
  registry.counter("dlcomp_comm_allreduce_wire_bytes_total")
      .add(stats.allreduce_wire_bytes);
  registry.counter("dlcomp_comm_allgather_total").add(stats.allgather_count);
  registry.counter("dlcomp_comm_allgather_wire_bytes_total")
      .add(stats.allgather_wire_bytes);
  registry.counter("dlcomp_comm_broadcast_total").add(stats.broadcast_count);
  registry.counter("dlcomp_comm_broadcast_wire_bytes_total")
      .add(stats.broadcast_wire_bytes);
  registry.counter("dlcomp_comm_barrier_total").add(stats.barrier_count);
  registry.counter("dlcomp_comm_wire_bytes_sent_total").add(wire_bytes_sent);
}

namespace detail {

CommContext::CommContext(int world_size, NetworkModel model)
    : world(world_size),
      net(model),
      transport(world_size),
      clocks(static_cast<std::size_t>(world_size)),
      wire_bytes_sent(static_cast<std::size_t>(world_size), 0),
      comm_stats(static_cast<std::size_t>(world_size)) {
  DLCOMP_CHECK(world_size >= 1);
  // Bind each per-rank clock to its sim-timeline trace track once; the
  // binding survives reset() across Cluster::run calls.
  for (int r = 0; r < world_size; ++r) {
    clocks[static_cast<std::size_t>(r)].set_trace_rank(r);
  }
}

}  // namespace detail

PendingCollective::Charge PendingCollective::wait() {
  Charge charge;
  if (waited_) return charge;
  waited_ = true;

  const double local = clock_->now();

  // Compute performed since issue first covers the pre-start gap (peers
  // still arriving / link busy): that part would have been charged to
  // "<phase>/wait" by a blocking call, so it counts as hidden wait —
  // in the clock's ledger and in the returned charge, mirroring how the
  // exposed stall below enters Charge.exposed_seconds.
  const bool traced = trace_enabled() && clock_->trace_rank() >= 0;

  const double hidden_wait = std::min(local, start_) - issue_;
  if (hidden_wait > 0.0) {
    clock_->record_hidden(names_->wait, hidden_wait);
    charge.hidden_seconds += hidden_wait;
    if (traced) {
      trace_sim_async(clock_->trace_rank(), names_->wait.c_str(), issue_,
                      issue_ + hidden_wait);
    }
  }

  // If the rank ran out of compute before the collective even started, it
  // idles until the start exactly like a blocking call would; that stall
  // is exposed communication time.
  const double stall = start_ - local;
  if (stall > 0.0) {
    clock_->sync_to(names_->wait, start_);
    charge.exposed_seconds += stall;
  }

  // Walk the modelled interval [start, start + sum(segments)]. Everything
  // the local clock already covers is hidden; the remainder is exposed
  // and advances the clock. With local <= start (no overlapped compute)
  // this degenerates to the blocking charge, bit for bit.
  const double overlap_until = std::max(local, start_);
  double seg_begin = start_;
  for (std::size_t i = 0; i < segment_count_; ++i) {
    const Segment& seg = segments_[i];
    const double hidden =
        std::clamp(overlap_until - seg_begin, 0.0, seg.seconds);
    const double exposed = seg.seconds - hidden;
    if (hidden > 0.0) {
      clock_->record_hidden(*seg.phase, hidden);
      charge.hidden_seconds += hidden;
      if (traced) {
        trace_sim_async(clock_->trace_rank(), seg.phase->c_str(), seg_begin,
                        seg_begin + hidden);
      }
    }
    // Advance whenever anything is exposed, and also for zero-duration
    // segments with no hiding — the latter mirrors the blocking path,
    // which creates the phase entry even at 0.0 seconds (bitwise parity).
    // Fully hidden segments must NOT plant phantom 0.0 entries in the
    // exposed breakdown.
    if (exposed > 0.0 || hidden == 0.0) {
      clock_->advance(*seg.phase, exposed);
    }
    charge.exposed_seconds += exposed;
    seg_begin += seg.seconds;
  }
  return charge;
}

void Communicator::barrier() {
  transport_.barrier();
  ++stats_.barrier_count;
}

double Communicator::exchange_with_clock(
    std::span<const std::uint64_t> meta,
    std::span<const std::span<const std::byte>> send,
    std::vector<std::uint64_t>& meta_out,
    std::vector<std::vector<std::byte>>& recv_out, double not_before) {
  const auto world = static_cast<std::size_t>(transport_.world());

  std::vector<std::byte> control(sizeof(double) +
                                 meta.size() * sizeof(std::uint64_t));
  const double now = clock_.now();
  std::memcpy(control.data(), &now, sizeof(now));
  if (!meta.empty()) {
    std::memcpy(control.data() + sizeof(double), meta.data(),
                meta.size() * sizeof(std::uint64_t));
  }

  std::vector<std::vector<std::byte>> controls;
  transport_.exchange(control, send, controls, recv_out);

  // Every rank was quiescent between posting its control block and the
  // exchange completing, so the snapshots are exactly the values the
  // former shared-memory scan read; max() over them in rank order is the
  // same double, bit for bit.
  meta_out.resize(world * meta.size());
  double latest = not_before;
  for (std::size_t r = 0; r < world; ++r) {
    DLCOMP_CHECK_MSG(controls[r].size() == control.size(),
                     "collective control-block size mismatch across ranks"
                     " -- SPMD call sites diverged");
    double peer_now = 0.0;
    std::memcpy(&peer_now, controls[r].data(), sizeof(peer_now));
    latest = std::max(latest, peer_now);
    if (!meta.empty()) {
      std::memcpy(meta_out.data() + r * meta.size(),
                  controls[r].data() + sizeof(double),
                  meta.size() * sizeof(std::uint64_t));
    }
  }
  return latest;
}

void Communicator::all_to_all(std::span<const float> send, std::span<float> recv,
                              std::size_t count_per_rank, std::string_view phase) {
  const auto world = static_cast<std::size_t>(transport_.world());
  DLCOMP_CHECK_MSG(send.size() == world * count_per_rank,
                   "all_to_all send size " << send.size() << " != world*count "
                                           << world * count_per_rank);
  DLCOMP_CHECK(recv.size() == send.size());

  const PhaseNames& names = interned_phase(phase);
  const std::size_t block_bytes = count_per_rank * sizeof(float);

  const auto send_bytes = std::as_bytes(send);
  std::vector<std::span<const std::byte>> spans(world);
  for (std::size_t d = 0; d < world; ++d) {
    spans[d] = send_bytes.subspan(d * block_bytes, block_bytes);
  }

  std::vector<std::uint64_t> meta_out;
  std::vector<std::vector<std::byte>> recv_out;
  const double latest = exchange_with_clock({}, spans, meta_out, recv_out);
  for (std::size_t src = 0; src < world; ++src) {
    DLCOMP_CHECK_MSG(recv_out[src].size() == block_bytes,
                     "all_to_all block size mismatch across ranks");
    std::memcpy(recv.data() + src * count_per_rank, recv_out[src].data(),
                block_bytes);
  }

  const std::size_t wire_bytes = (world - 1) * block_bytes;
  wire_bytes_ += wire_bytes;
  ++stats_.alltoall_count;
  stats_.alltoall_wire_bytes += wire_bytes;

  clock_.sync_to(names.wait, latest);
  clock_.advance(names.base,
                 net_.alltoall_seconds(wire_bytes, transport_.world()));
}

std::vector<std::vector<std::byte>> Communicator::all_to_all_v(
    const std::vector<std::vector<std::byte>>& send, std::string_view phase) {
  PendingCollective pending = all_to_all_v_async(send, phase);
  pending.wait();
  return std::move(pending.recv());
}

PendingCollective Communicator::all_to_all_v_async(
    const std::vector<std::vector<std::byte>>& send, std::string_view phase,
    double not_before) {
  const auto world = static_cast<std::size_t>(transport_.world());
  DLCOMP_CHECK_MSG(send.size() == world,
                   "all_to_all_v needs one chunk per destination");

  const auto me = static_cast<std::size_t>(rank());
  const PhaseNames& names = interned_phase(phase);

  // Stage (2) of the paper's pipeline: the control block carries the
  // compressed per-destination sizes, so peers can size receive buffers
  // and every rank can reconstruct the full size matrix. world*8 bytes
  // per rank over the wire.
  std::vector<std::uint64_t> sizes(world);
  std::vector<std::span<const std::byte>> spans(world);
  std::size_t send_wire = 0;
  for (std::size_t d = 0; d < world; ++d) {
    sizes[d] = send[d].size();
    spans[d] = std::span<const std::byte>(send[d]);
    if (d != me) send_wire += send[d].size();
  }

  // Stage (3): move payloads. Every rank computes the *global* bottleneck
  // wire volume -- max over ranks of max(bytes sent, bytes received) --
  // from the size matrix, so all ranks charge identical collective time.
  std::vector<std::uint64_t> meta_out;
  std::vector<std::vector<std::byte>> recv;
  const double latest =
      exchange_with_clock(sizes, spans, meta_out, recv, not_before);

  std::size_t bottleneck = 0;
  for (std::size_t src = 0; src < world; ++src) {
    std::size_t src_wire = 0;
    for (std::size_t d = 0; d < world; ++d) {
      if (d != src) src_wire += static_cast<std::size_t>(meta_out[src * world + d]);
    }
    bottleneck = std::max(bottleneck, src_wire);
  }
  for (std::size_t dst = 0; dst < world; ++dst) {
    std::size_t recv_wire = 0;
    for (std::size_t src = 0; src < world; ++src) {
      if (src != dst) {
        recv_wire += static_cast<std::size_t>(meta_out[src * world + dst]);
      }
    }
    bottleneck = std::max(bottleneck, recv_wire);
  }

  const std::size_t wire_bytes = send_wire + (world - 1) * sizeof(std::uint64_t);
  wire_bytes_ += wire_bytes;
  ++stats_.alltoall_count;
  stats_.alltoall_wire_bytes += wire_bytes;

  PendingCollective pending;
  pending.clock_ = &clock_;
  pending.names_ = &names;
  pending.issue_ = clock_.now();
  pending.start_ = latest;
  pending.segments_[0] = {
      &names.metadata,
      net_.alltoall_seconds((world - 1) * sizeof(std::uint64_t),
                            transport_.world())};
  pending.segments_[1] = {
      &names.base, net_.alltoall_seconds(bottleneck, transport_.world())};
  pending.segment_count_ = 2;
  pending.recv_ = std::move(recv);
  pending.waited_ = false;
  return pending;
}

void Communicator::all_reduce_sum(std::span<float> data, std::string_view phase) {
  PendingCollective pending = all_reduce_sum_async(data, phase);
  pending.wait();
}

PendingCollective Communicator::all_reduce_sum_async(std::span<float> data,
                                                     std::string_view phase) {
  const auto world = static_cast<std::size_t>(transport_.world());
  const PhaseNames& names = interned_phase(phase);

  // Every rank contributes its full buffer to every peer; each rank then
  // accumulates in rank order, so results are bitwise identical on all
  // ranks and across backends (same addends, same order).
  const std::uint64_t count = data.size();
  const auto bytes_span = std::as_bytes(std::span<const float>(data));
  std::vector<std::span<const std::byte>> spans(world, bytes_span);

  std::vector<std::uint64_t> meta_out;
  std::vector<std::vector<std::byte>> recv_out;
  const double latest =
      exchange_with_clock(std::span(&count, 1), spans, meta_out, recv_out);

  for (std::size_t r = 0; r < world; ++r) {
    DLCOMP_CHECK_MSG(meta_out[r] == count,
                     "all_reduce_sum size mismatch across ranks");
  }

  std::vector<float> acc(data.size(), 0.0f);
  for (std::size_t src = 0; src < world; ++src) {
    const auto* peer = reinterpret_cast<const float*>(recv_out[src].data());
    for (std::size_t i = 0; i < data.size(); ++i) acc[i] += peer[i];
  }
  std::copy(acc.begin(), acc.end(), data.begin());

  // Ring all-reduce moves ~2*(P-1)/P of the buffer over each rank's link.
  const std::size_t bytes = data.size() * sizeof(float);
  const double ring_factor =
      world <= 1 ? 0.0
                 : 2.0 * static_cast<double>(world - 1) /
                       static_cast<double>(world);
  const auto wire_bytes =
      static_cast<std::size_t>(ring_factor * static_cast<double>(bytes));
  wire_bytes_ += wire_bytes;
  ++stats_.allreduce_count;
  stats_.allreduce_wire_bytes += wire_bytes;

  PendingCollective pending;
  pending.clock_ = &clock_;
  pending.names_ = &names;
  pending.issue_ = clock_.now();
  pending.start_ = latest;
  pending.segments_[0] = {
      &names.base, net_.allreduce_seconds(bytes, transport_.world())};
  pending.segment_count_ = 1;
  pending.waited_ = false;
  return pending;
}

std::vector<std::uint64_t> Communicator::all_gather_u64(std::uint64_t value,
                                                        std::string_view phase) {
  const auto world = static_cast<std::size_t>(transport_.world());
  const PhaseNames& names = interned_phase(phase);

  std::vector<std::span<const std::byte>> spans(world);  // no payload
  std::vector<std::uint64_t> out;
  std::vector<std::vector<std::byte>> recv_out;
  const double latest =
      exchange_with_clock(std::span(&value, 1), spans, out, recv_out);

  wire_bytes_ += sizeof(std::uint64_t) * (world - 1);
  ++stats_.allgather_count;
  stats_.allgather_wire_bytes += sizeof(std::uint64_t) * (world - 1);

  clock_.sync_to(names.wait, latest);
  clock_.advance(names.base, net_.allgather_seconds(sizeof(std::uint64_t),
                                                    transport_.world()));
  return out;
}

void Communicator::all_gather(std::span<const float> send, std::span<float> recv,
                              std::string_view phase) {
  const auto world = static_cast<std::size_t>(transport_.world());
  DLCOMP_CHECK(recv.size() == send.size() * world);
  const PhaseNames& names = interned_phase(phase);

  const std::uint64_t count = send.size();
  std::vector<std::span<const std::byte>> spans(world, std::as_bytes(send));

  std::vector<std::uint64_t> meta_out;
  std::vector<std::vector<std::byte>> recv_out;
  const double latest =
      exchange_with_clock(std::span(&count, 1), spans, meta_out, recv_out);

  const std::size_t bytes = send.size() * sizeof(float);
  for (std::size_t src = 0; src < world; ++src) {
    DLCOMP_CHECK(meta_out[src] == count);
    std::memcpy(recv.data() + src * send.size(), recv_out[src].data(), bytes);
  }

  wire_bytes_ += bytes * (world - 1);
  ++stats_.allgather_count;
  stats_.allgather_wire_bytes += bytes * (world - 1);

  clock_.sync_to(names.wait, latest);
  clock_.advance(names.base,
                 net_.allgather_seconds(bytes, transport_.world()));
}

void Communicator::broadcast(std::span<float> data, int root, std::string_view phase) {
  const auto world = static_cast<std::size_t>(transport_.world());
  DLCOMP_CHECK(root >= 0 && root < transport_.world());
  const PhaseNames& names = interned_phase(phase);

  const std::uint64_t count = data.size();
  const std::size_t bytes = data.size() * sizeof(float);
  std::vector<std::span<const std::byte>> spans(world);
  if (rank() == root) {
    const auto payload = std::as_bytes(std::span<const float>(data));
    std::fill(spans.begin(), spans.end(), payload);
  }

  std::vector<std::uint64_t> meta_out;
  std::vector<std::vector<std::byte>> recv_out;
  const double latest =
      exchange_with_clock(std::span(&count, 1), spans, meta_out, recv_out);

  for (std::size_t r = 0; r < world; ++r) {
    DLCOMP_CHECK(meta_out[r] == count);
  }
  if (rank() != root) {
    const auto& payload = recv_out[static_cast<std::size_t>(root)];
    DLCOMP_CHECK(payload.size() == bytes);
    std::memcpy(data.data(), payload.data(), bytes);
  }

  if (rank() == root) wire_bytes_ += bytes;
  ++stats_.broadcast_count;
  if (rank() == root) stats_.broadcast_wire_bytes += bytes;

  clock_.sync_to(names.wait, latest);
  clock_.advance(names.base,
                 net_.broadcast_seconds(bytes, transport_.world()));
}

Cluster::Cluster(int world_size, NetworkModel model)
    : world_(world_size), ctx_(world_size, model) {}

void Cluster::run(const std::function<void(Communicator&)>& fn) {
  DLCOMP_CHECK(fn != nullptr);
  for (auto& c : ctx_.clocks) c.reset();
  std::fill(ctx_.wire_bytes_sent.begin(), ctx_.wire_bytes_sent.end(), 0);
  std::fill(ctx_.comm_stats.begin(), ctx_.comm_stats.end(), CommStats{});

  std::exception_ptr first_error;
  std::mutex error_mutex;

  std::vector<std::thread> threads;
  threads.reserve(static_cast<std::size_t>(world_));
  for (int r = 0; r < world_; ++r) {
    threads.emplace_back([&, r] {
      // Wall spans recorded on this thread group under "rank r" in the
      // exported trace; the binding dies with the thread.
      trace_bind_thread_rank(r);
      const auto idx = static_cast<std::size_t>(r);
      SimTransport endpoint(ctx_.transport, r);
      Communicator comm(endpoint, ctx_.net, ctx_.clocks[idx],
                        ctx_.wire_bytes_sent[idx], ctx_.comm_stats[idx]);
      try {
        fn(comm);
      } catch (const AbortedError&) {
        // Secondary failure caused by another rank's abort; ignore.
      } catch (...) {
        {
          std::lock_guard lock(error_mutex);
          if (!first_error) first_error = std::current_exception();
        }
        ctx_.transport.barrier().abort();
      }
    });
  }
  for (auto& t : threads) t.join();

  if (first_error) std::rethrow_exception(first_error);
  DLCOMP_CHECK_MSG(!ctx_.transport.barrier().aborted(),
                   "cluster aborted without a recorded exception");
}

double Cluster::makespan_seconds() const {
  double latest = 0.0;
  for (const auto& c : ctx_.clocks) latest = std::max(latest, c.now());
  return latest;
}

}  // namespace dlcomp
