#include "comm/communicator.hpp"

#include <algorithm>
#include <cstring>
#include <exception>
#include <mutex>
#include <thread>

#include "common/error.hpp"
#include "obs/trace.hpp"

namespace dlcomp {

namespace detail {

CommContext::CommContext(int world_size, NetworkModel model)
    : world(world_size),
      net(model),
      barrier(static_cast<std::size_t>(world_size)),
      slots(static_cast<std::size_t>(world_size), nullptr),
      size_slots(static_cast<std::size_t>(world_size), 0),
      clocks(static_cast<std::size_t>(world_size)),
      wire_bytes_sent(static_cast<std::size_t>(world_size), 0) {
  DLCOMP_CHECK(world_size >= 1);
  // Bind each per-rank clock to its sim-timeline trace track once; the
  // binding survives reset() across Cluster::run calls.
  for (int r = 0; r < world_size; ++r) {
    clocks[static_cast<std::size_t>(r)].set_trace_rank(r);
  }
}

}  // namespace detail

PendingCollective::Charge PendingCollective::wait() {
  Charge charge;
  if (waited_) return charge;
  waited_ = true;

  const double local = clock_->now();

  // Compute performed since issue first covers the pre-start gap (peers
  // still arriving / link busy): that part would have been charged to
  // "<phase>/wait" by a blocking call, so it counts as hidden wait —
  // in the clock's ledger and in the returned charge, mirroring how the
  // exposed stall below enters Charge.exposed_seconds.
  const bool traced = trace_enabled() && clock_->trace_rank() >= 0;

  const double hidden_wait = std::min(local, start_) - issue_;
  if (hidden_wait > 0.0) {
    clock_->record_hidden(names_->wait, hidden_wait);
    charge.hidden_seconds += hidden_wait;
    if (traced) {
      trace_sim_async(clock_->trace_rank(), names_->wait.c_str(), issue_,
                      issue_ + hidden_wait);
    }
  }

  // If the rank ran out of compute before the collective even started, it
  // idles until the start exactly like a blocking call would; that stall
  // is exposed communication time.
  const double stall = start_ - local;
  if (stall > 0.0) {
    clock_->sync_to(names_->wait, start_);
    charge.exposed_seconds += stall;
  }

  // Walk the modelled interval [start, start + sum(segments)]. Everything
  // the local clock already covers is hidden; the remainder is exposed
  // and advances the clock. With local <= start (no overlapped compute)
  // this degenerates to the blocking charge, bit for bit.
  const double overlap_until = std::max(local, start_);
  double seg_begin = start_;
  for (std::size_t i = 0; i < segment_count_; ++i) {
    const Segment& seg = segments_[i];
    const double hidden =
        std::clamp(overlap_until - seg_begin, 0.0, seg.seconds);
    const double exposed = seg.seconds - hidden;
    if (hidden > 0.0) {
      clock_->record_hidden(*seg.phase, hidden);
      charge.hidden_seconds += hidden;
      if (traced) {
        trace_sim_async(clock_->trace_rank(), seg.phase->c_str(), seg_begin,
                        seg_begin + hidden);
      }
    }
    // Advance whenever anything is exposed, and also for zero-duration
    // segments with no hiding — the latter mirrors the blocking path,
    // which creates the phase entry even at 0.0 seconds (bitwise parity).
    // Fully hidden segments must NOT plant phantom 0.0 entries in the
    // exposed breakdown.
    if (exposed > 0.0 || hidden == 0.0) {
      clock_->advance(*seg.phase, exposed);
    }
    charge.exposed_seconds += exposed;
    seg_begin += seg.seconds;
  }
  return charge;
}

void Communicator::barrier() { ctx_.barrier.arrive_and_wait(); }

void Communicator::charge_collective(const PhaseNames& names, double seconds) {
  // Between the two barriers every rank's clock is quiescent (owners only
  // mutate their clock after the second barrier), so scanning all clocks
  // to find the slowest arrival is race-free.
  ctx_.barrier.arrive_and_wait();
  double latest = 0.0;
  for (const auto& c : ctx_.clocks) latest = std::max(latest, c.now());
  ctx_.barrier.arrive_and_wait();

  clock().sync_to(names.wait, latest);
  clock().advance(names.base, seconds);
}

void Communicator::all_to_all(std::span<const float> send, std::span<float> recv,
                              std::size_t count_per_rank, std::string_view phase) {
  const auto world = static_cast<std::size_t>(ctx_.world);
  DLCOMP_CHECK_MSG(send.size() == world * count_per_rank,
                   "all_to_all send size " << send.size() << " != world*count "
                                           << world * count_per_rank);
  DLCOMP_CHECK(recv.size() == send.size());

  const auto me = static_cast<std::size_t>(rank_);
  ctx_.slots[me] = send.data();
  ctx_.barrier.arrive_and_wait();

  for (std::size_t src = 0; src < world; ++src) {
    const auto* base = static_cast<const float*>(ctx_.slots[src]);
    std::memcpy(recv.data() + src * count_per_rank,
                base + me * count_per_rank, count_per_rank * sizeof(float));
  }
  ctx_.barrier.arrive_and_wait();

  const std::size_t wire_bytes = (world - 1) * count_per_rank * sizeof(float);
  ctx_.wire_bytes_sent[me] += wire_bytes;
  charge_collective(interned_phase(phase),
                    ctx_.net.alltoall_seconds(wire_bytes, ctx_.world));
}

std::vector<std::vector<std::byte>> Communicator::all_to_all_v(
    const std::vector<std::vector<std::byte>>& send, std::string_view phase) {
  PendingCollective pending = all_to_all_v_async(send, phase);
  pending.wait();
  return std::move(pending.recv());
}

PendingCollective Communicator::all_to_all_v_async(
    const std::vector<std::vector<std::byte>>& send, std::string_view phase,
    double not_before) {
  const auto world = static_cast<std::size_t>(ctx_.world);
  DLCOMP_CHECK_MSG(send.size() == world,
                   "all_to_all_v needs one chunk per destination");

  const auto me = static_cast<std::size_t>(rank_);
  const PhaseNames& names = interned_phase(phase);

  // Stage (2) of the paper's pipeline: exchange compressed sizes so peers
  // can size their receive buffers. world*8 bytes per rank over the wire.
  ctx_.slots[me] = send.data();
  std::size_t send_wire = 0;
  for (std::size_t d = 0; d < world; ++d) {
    if (d != me) send_wire += send[d].size();
  }
  ctx_.size_slots[me] = send_wire;
  ctx_.barrier.arrive_and_wait();

  // Stage (3): move payloads. Every rank also computes the *global*
  // bottleneck wire volume -- max over ranks of max(sent, received) -- so
  // all ranks charge identical collective time. This is exact because the
  // shared slots expose every rank's send vector. Clocks are quiescent in
  // this window too (owners only mutate their own clock outside
  // collectives), so the slowest-arrival scan shares the copy window's
  // barrier pair: one pair per exchange instead of the former three.
  std::vector<std::vector<std::byte>> recv(world);
  std::size_t bottleneck = 0;
  for (std::size_t src = 0; src < world; ++src) {
    const auto* peer_send =
        static_cast<const std::vector<std::byte>*>(ctx_.slots[src]);
    recv[src] = peer_send[me];  // deep copy through shared memory
    bottleneck = std::max(bottleneck, ctx_.size_slots[src]);
  }
  for (std::size_t dst = 0; dst < world; ++dst) {
    std::size_t recv_wire = 0;
    for (std::size_t src = 0; src < world; ++src) {
      if (src == dst) continue;
      const auto* peer_send =
          static_cast<const std::vector<std::byte>*>(ctx_.slots[src]);
      recv_wire += peer_send[dst].size();
    }
    bottleneck = std::max(bottleneck, recv_wire);
  }
  double latest = not_before;
  for (const auto& c : ctx_.clocks) latest = std::max(latest, c.now());
  ctx_.barrier.arrive_and_wait();

  ctx_.wire_bytes_sent[me] += send_wire + (world - 1) * sizeof(std::uint64_t);

  PendingCollective pending;
  pending.clock_ = &clock();
  pending.names_ = &names;
  pending.issue_ = clock().now();
  pending.start_ = latest;
  pending.segments_[0] = {
      &names.metadata,
      ctx_.net.alltoall_seconds((world - 1) * sizeof(std::uint64_t),
                                ctx_.world)};
  pending.segments_[1] = {&names.base,
                          ctx_.net.alltoall_seconds(bottleneck, ctx_.world)};
  pending.segment_count_ = 2;
  pending.recv_ = std::move(recv);
  pending.waited_ = false;
  return pending;
}

void Communicator::all_reduce_sum(std::span<float> data, std::string_view phase) {
  PendingCollective pending = all_reduce_sum_async(data, phase);
  pending.wait();
}

PendingCollective Communicator::all_reduce_sum_async(std::span<float> data,
                                                     std::string_view phase) {
  const auto world = static_cast<std::size_t>(ctx_.world);
  const auto me = static_cast<std::size_t>(rank_);
  const PhaseNames& names = interned_phase(phase);

  ctx_.slots[me] = data.data();
  ctx_.size_slots[me] = data.size();
  ctx_.barrier.arrive_and_wait();

  for (std::size_t r = 0; r < world; ++r) {
    DLCOMP_CHECK_MSG(ctx_.size_slots[r] == data.size(),
                     "all_reduce_sum size mismatch across ranks");
  }

  // Deterministic accumulation in rank order into a private buffer; the
  // in-place write happens only after the second barrier so peers never
  // read half-updated data. The slowest-arrival scan shares this barrier
  // pair (clocks are quiescent here, see all_to_all_v_async).
  std::vector<float> acc(data.size(), 0.0f);
  for (std::size_t src = 0; src < world; ++src) {
    const auto* peer = static_cast<const float*>(ctx_.slots[src]);
    for (std::size_t i = 0; i < data.size(); ++i) acc[i] += peer[i];
  }
  double latest = 0.0;
  for (const auto& c : ctx_.clocks) latest = std::max(latest, c.now());
  ctx_.barrier.arrive_and_wait();

  std::copy(acc.begin(), acc.end(), data.begin());

  // Ring all-reduce moves ~2*(P-1)/P of the buffer over each rank's link.
  const std::size_t bytes = data.size() * sizeof(float);
  const double ring_factor =
      ctx_.world <= 1 ? 0.0
                      : 2.0 * static_cast<double>(ctx_.world - 1) /
                            static_cast<double>(ctx_.world);
  ctx_.wire_bytes_sent[me] +=
      static_cast<std::size_t>(ring_factor * static_cast<double>(bytes));

  PendingCollective pending;
  pending.clock_ = &clock();
  pending.names_ = &names;
  pending.issue_ = clock().now();
  pending.start_ = latest;
  pending.segments_[0] = {&names.base,
                          ctx_.net.allreduce_seconds(bytes, ctx_.world)};
  pending.segment_count_ = 1;
  pending.waited_ = false;
  return pending;
}

std::vector<std::uint64_t> Communicator::all_gather_u64(std::uint64_t value,
                                                        std::string_view phase) {
  const auto world = static_cast<std::size_t>(ctx_.world);
  const auto me = static_cast<std::size_t>(rank_);

  ctx_.size_slots[me] = value;
  ctx_.barrier.arrive_and_wait();
  std::vector<std::uint64_t> out(ctx_.size_slots.begin(), ctx_.size_slots.end());
  ctx_.barrier.arrive_and_wait();

  ctx_.wire_bytes_sent[me] += sizeof(std::uint64_t) * (world - 1);
  charge_collective(interned_phase(phase),
                    ctx_.net.allgather_seconds(sizeof(std::uint64_t), ctx_.world));
  return out;
}

void Communicator::all_gather(std::span<const float> send, std::span<float> recv,
                              std::string_view phase) {
  const auto world = static_cast<std::size_t>(ctx_.world);
  DLCOMP_CHECK(recv.size() == send.size() * world);
  const auto me = static_cast<std::size_t>(rank_);

  ctx_.slots[me] = send.data();
  ctx_.size_slots[me] = send.size();
  ctx_.barrier.arrive_and_wait();
  for (std::size_t src = 0; src < world; ++src) {
    DLCOMP_CHECK(ctx_.size_slots[src] == send.size());
    const auto* peer = static_cast<const float*>(ctx_.slots[src]);
    std::memcpy(recv.data() + src * send.size(), peer,
                send.size() * sizeof(float));
  }
  ctx_.barrier.arrive_and_wait();

  const std::size_t bytes = send.size() * sizeof(float);
  ctx_.wire_bytes_sent[me] += bytes * (world - 1);
  charge_collective(interned_phase(phase),
                    ctx_.net.allgather_seconds(bytes, ctx_.world));
}

void Communicator::broadcast(std::span<float> data, int root, std::string_view phase) {
  const auto world = static_cast<std::size_t>(ctx_.world);
  DLCOMP_CHECK(root >= 0 && root < ctx_.world);
  const auto me = static_cast<std::size_t>(rank_);

  if (rank_ == root) ctx_.slots[static_cast<std::size_t>(root)] = data.data();
  ctx_.size_slots[me] = data.size();
  ctx_.barrier.arrive_and_wait();
  for (std::size_t r = 0; r < world; ++r) {
    DLCOMP_CHECK(ctx_.size_slots[r] == data.size());
  }
  if (rank_ != root) {
    const auto* src =
        static_cast<const float*>(ctx_.slots[static_cast<std::size_t>(root)]);
    std::memcpy(data.data(), src, data.size() * sizeof(float));
  }
  ctx_.barrier.arrive_and_wait();

  const std::size_t bytes = data.size() * sizeof(float);
  if (rank_ == root) ctx_.wire_bytes_sent[me] += bytes;
  charge_collective(interned_phase(phase),
                    ctx_.net.broadcast_seconds(bytes, ctx_.world));
}

Cluster::Cluster(int world_size, NetworkModel model)
    : world_(world_size), ctx_(world_size, model) {}

void Cluster::run(const std::function<void(Communicator&)>& fn) {
  DLCOMP_CHECK(fn != nullptr);
  for (auto& c : ctx_.clocks) c.reset();
  std::fill(ctx_.wire_bytes_sent.begin(), ctx_.wire_bytes_sent.end(), 0);

  std::exception_ptr first_error;
  std::mutex error_mutex;

  std::vector<std::thread> threads;
  threads.reserve(static_cast<std::size_t>(world_));
  for (int r = 0; r < world_; ++r) {
    threads.emplace_back([&, r] {
      // Wall spans recorded on this thread group under "rank r" in the
      // exported trace; the binding dies with the thread.
      trace_bind_thread_rank(r);
      Communicator comm(ctx_, r);
      try {
        fn(comm);
      } catch (const AbortedError&) {
        // Secondary failure caused by another rank's abort; ignore.
      } catch (...) {
        {
          std::lock_guard lock(error_mutex);
          if (!first_error) first_error = std::current_exception();
        }
        ctx_.barrier.abort();
      }
    });
  }
  for (auto& t : threads) t.join();

  if (first_error) std::rethrow_exception(first_error);
  DLCOMP_CHECK_MSG(!ctx_.barrier.aborted(),
                   "cluster aborted without a recorded exception");
}

double Cluster::makespan_seconds() const {
  double latest = 0.0;
  for (const auto& c : ctx_.clocks) latest = std::max(latest, c.now());
  return latest;
}

}  // namespace dlcomp
