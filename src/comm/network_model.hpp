#pragma once

/// \file network_model.hpp
/// Alpha-beta (latency-bandwidth) cost model for the simulated
/// interconnect. The paper evaluates communication speedups at an
/// all-to-all throughput of 4 GB/s (Fig. 11) on a Slingshot-10 fabric;
/// that is the default here. Collectives in dlcomp::comm perform real
/// payload exchange through shared memory and advance simulated clocks by
/// the times this model predicts.

#include <cstddef>

namespace dlcomp {

struct NetworkModel {
  /// Effective per-rank all-to-all injection bandwidth (bytes/second).
  /// The paper evaluates communication speedup at 4 GB/s (Fig. 11).
  double bandwidth_bytes_per_second = 4e9;

  /// Collective startup latency (alpha term), seconds. Charged once per
  /// collective: NCCL-style schedules overlap the pairwise exchanges, so
  /// completion is alpha + volume/bandwidth rather than one alpha per
  /// peer. The default reflects a tightly-coupled fabric where DLRM
  /// all-to-alls are bandwidth-dominated (the paper's regime: >60% of
  /// iteration time goes to moving payload bytes).
  double latency_seconds = 2e-6;

  /// Dense-gradient all-reduce bandwidth. In hybrid-parallel DLRM the MLP
  /// all-reduce runs over NVLink-class links (hierarchical rings inside
  /// the node), far faster than the cross-node all-to-all path.
  double allreduce_bandwidth_bytes_per_second = 100e9;

  /// Point-to-point message time.
  [[nodiscard]] double p2p_seconds(std::size_t bytes) const noexcept {
    return latency_seconds +
           static_cast<double>(bytes) / bandwidth_bytes_per_second;
  }

  /// All-to-all completion time given the largest per-rank wire volume
  /// (max over ranks of max(bytes sent to peers, bytes received from
  /// peers); the self-chunk never crosses the wire).
  [[nodiscard]] double alltoall_seconds(std::size_t max_wire_bytes_per_rank,
                                        int world) const noexcept {
    if (world <= 1) return 0.0;
    return latency_seconds + static_cast<double>(max_wire_bytes_per_rank) /
                                 bandwidth_bytes_per_second;
  }

  /// Ring all-reduce completion time for `bytes` per rank.
  [[nodiscard]] double allreduce_seconds(std::size_t bytes,
                                         int world) const noexcept {
    if (world <= 1) return 0.0;
    const double chunk_factor = 2.0 * static_cast<double>(world - 1) /
                                static_cast<double>(world);
    return 2.0 * latency_seconds +
           chunk_factor * static_cast<double>(bytes) /
               allreduce_bandwidth_bytes_per_second;
  }

  /// Ring all-gather completion time where each rank contributes
  /// `bytes_per_rank`.
  [[nodiscard]] double allgather_seconds(std::size_t bytes_per_rank,
                                         int world) const noexcept {
    if (world <= 1) return 0.0;
    return static_cast<double>(world - 1) *
           (latency_seconds +
            static_cast<double>(bytes_per_rank) / bandwidth_bytes_per_second);
  }

  /// Broadcast (binomial tree) completion time.
  [[nodiscard]] double broadcast_seconds(std::size_t bytes,
                                         int world) const noexcept {
    if (world <= 1) return 0.0;
    int hops = 0;
    for (int span = 1; span < world; span *= 2) ++hops;
    return static_cast<double>(hops) * p2p_seconds(bytes);
  }
};

}  // namespace dlcomp
