#include "comm/tcp_transport.hpp"

#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <utility>

#include "common/error.hpp"

namespace dlcomp {
namespace {

constexpr std::uint32_t kHelloTag = 0x4F4C4548u;  // "HELO"
constexpr std::uint32_t kPortsTag = 0x54524F50u;  // "PORT"

/// Rendezvous hello: who is connecting, and (to rank 0 only) where this
/// rank's own mesh listener lives.
struct Hello {
  std::uint32_t rank = 0;
  std::uint32_t listen_port = 0;
};

int accept_checked(int listen_fd, const char* who) {
  while (true) {
    const int fd = ::accept(listen_fd, nullptr, nullptr);
    if (fd >= 0) return fd;
    if (errno == EINTR) continue;
    throw Error(std::string("tcp transport: accept failed during ") + who +
                " rendezvous: " + std::strerror(errno));
  }
}

void send_frame_blocking(int fd, std::uint32_t tag,
                         std::span<const std::byte> payload) {
  std::vector<std::byte> out;
  net::frame_append(out, tag, payload, {});
  net::write_all(fd, out.data(), out.size());
}

std::vector<std::byte> recv_frame_blocking(int fd, std::uint32_t expected_tag,
                                           const char* what) {
  std::byte header[net::kFrameHeaderBytes];
  net::read_exact(fd, header, sizeof header);
  std::uint32_t magic = 0;
  std::uint32_t tag = 0;
  std::uint64_t length = 0;
  std::memcpy(&magic, header, sizeof(magic));
  std::memcpy(&tag, header + 4, sizeof(tag));
  std::memcpy(&length, header + 8, sizeof(length));
  if (magic != net::kFrameMagic || tag != expected_tag) {
    throw Error(std::string("tcp transport: malformed ") + what +
                " frame during rendezvous");
  }
  std::vector<std::byte> payload(static_cast<std::size_t>(length));
  if (!payload.empty()) net::read_exact(fd, payload.data(), payload.size());
  return payload;
}

Hello parse_hello(std::span<const std::byte> payload, int world) {
  Hello hello{};
  if (payload.size() != sizeof(Hello)) {
    throw Error("tcp transport: hello frame has wrong size");
  }
  std::memcpy(&hello, payload.data(), sizeof(hello));
  if (hello.rank >= static_cast<std::uint32_t>(world)) {
    throw Error("tcp transport: hello from out-of-range rank " +
                std::to_string(hello.rank));
  }
  return hello;
}

}  // namespace

TcpTransport::TcpTransport(TcpTransportConfig config)
    : config_(std::move(config)) {
  DLCOMP_CHECK(config_.world >= 1);
  DLCOMP_CHECK(config_.rank >= 0 && config_.rank < config_.world);
  peers_.resize(static_cast<std::size_t>(config_.world));
  if (config_.world > 1) {
    DLCOMP_CHECK(config_.port != 0 || config_.inherited_listen_fd >= 0);
    rendezvous();
  } else if (config_.inherited_listen_fd >= 0) {
    net::close_fd(config_.inherited_listen_fd);
  }
}

TcpTransport::~TcpTransport() {
  for (Peer& peer : peers_) net::close_fd(peer.fd);
}

void TcpTransport::rendezvous() {
  const int world = config_.world;
  const int me = config_.rank;

  if (me == 0) {
    int listen_fd = config_.inherited_listen_fd;
    config_.inherited_listen_fd = -1;
    if (listen_fd < 0) {
      listen_fd = net::tcp_listen(config_.address, config_.port, world);
    }
    std::vector<std::uint32_t> ports(static_cast<std::size_t>(world), 0);
    try {
      for (int i = 1; i < world; ++i) {
        const int fd = accept_checked(listen_fd, "root");
        const Hello hello =
            parse_hello(recv_frame_blocking(fd, kHelloTag, "hello"), world);
        Peer& peer = peers_[hello.rank];
        if (hello.rank == 0 || peer.fd >= 0) {
          ::close(fd);
          throw Error("tcp transport: duplicate hello from rank " +
                      std::to_string(hello.rank));
        }
        peer.fd = fd;
        ports[hello.rank] = hello.listen_port;
      }
    } catch (...) {
      net::close_fd(listen_fd);
      throw;
    }
    net::close_fd(listen_fd);
    const auto table = std::as_bytes(std::span<const std::uint32_t>(ports));
    for (int r = 1; r < world; ++r) {
      send_frame_blocking(peers_[r].fd, kPortsTag, table);
    }
  } else {
    // Bind the mesh listener *before* contacting rank 0, so that by the
    // time any peer learns this rank's port from the table, the SYN
    // backlog is already accepting -- higher ranks can connect before
    // this rank reaches its accept loop, making the mesh deadlock-free.
    int my_listen = net::tcp_listen(config_.address, 0, world);
    try {
      const std::uint16_t my_port = net::bound_port(my_listen);
      const int root_fd = net::tcp_connect_retry(config_.address, config_.port,
                                                 config_.connect_timeout_s);
      peers_[0].fd = root_fd;
      const Hello hello{static_cast<std::uint32_t>(me), my_port};
      send_frame_blocking(root_fd, kHelloTag,
                          std::as_bytes(std::span(&hello, 1)));

      const std::vector<std::byte> raw =
          recv_frame_blocking(root_fd, kPortsTag, "port-table");
      if (raw.size() != sizeof(std::uint32_t) * static_cast<std::size_t>(world)) {
        throw Error("tcp transport: port table has wrong size");
      }
      std::vector<std::uint32_t> ports(static_cast<std::size_t>(world));
      std::memcpy(ports.data(), raw.data(), raw.size());

      for (int r = 1; r < me; ++r) {
        const int fd =
            net::tcp_connect_retry(config_.address,
                                   static_cast<std::uint16_t>(ports[r]),
                                   config_.connect_timeout_s);
        const Hello mesh_hello{static_cast<std::uint32_t>(me), 0};
        send_frame_blocking(fd, kHelloTag,
                            std::as_bytes(std::span(&mesh_hello, 1)));
        peers_[r].fd = fd;
      }
      for (int i = me + 1; i < world; ++i) {
        const int fd = accept_checked(my_listen, "mesh");
        const Hello mesh_hello =
            parse_hello(recv_frame_blocking(fd, kHelloTag, "hello"), world);
        if (static_cast<int>(mesh_hello.rank) <= me ||
            peers_[mesh_hello.rank].fd >= 0) {
          throw Error("tcp transport: unexpected mesh hello from rank " +
                      std::to_string(mesh_hello.rank));
        }
        peers_[mesh_hello.rank].fd = fd;
      }
    } catch (...) {
      net::close_fd(my_listen);
      throw;
    }
    net::close_fd(my_listen);
  }

  for (int r = 0; r < world; ++r) {
    if (r == me) continue;
    net::set_nodelay(peers_[r].fd);
    net::set_nonblocking(peers_[r].fd);
    peers_[r].decoder = net::FrameDecoder(config_.max_frame_bytes);
  }
}

void TcpTransport::exchange(
    std::span<const std::byte> control,
    std::span<const std::span<const std::byte>> send,
    std::vector<std::vector<std::byte>>& controls_out,
    std::vector<std::vector<std::byte>>& recv_out) {
  const auto world = static_cast<std::size_t>(config_.world);
  DLCOMP_CHECK(send.size() == world);
  const auto me = static_cast<std::size_t>(config_.rank);

  controls_out.resize(world);
  recv_out.resize(world);
  controls_out[me].assign(control.begin(), control.end());
  recv_out[me].assign(send[me].begin(), send[me].end());
  const std::uint32_t tag = seq_++;
  ++stats_.exchanges;
  if (world == 1) return;

  const double t0 = net::monotonic_seconds();
  for (std::size_t d = 0; d < world; ++d) {
    if (d == me) continue;
    Peer& peer = peers_[d];
    peer.outbox.clear();
    peer.out_cursor = 0;
    peer.frame_done = false;
    net::frame_append(peer.outbox, tag, control, send[d]);
    stats_.bytes_sent += peer.outbox.size();
  }
  pump_until_complete(tag);

  // The peer's control block has the same size as ours (same SPMD call
  // site), so the received payload splits at control.size().
  for (std::size_t src = 0; src < world; ++src) {
    if (src == me) continue;
    Peer& peer = peers_[src];
    std::vector<std::byte>& payload = peer.frame.payload;
    if (payload.size() < control.size()) {
      throw Error("tcp transport: frame from rank " + std::to_string(src) +
                  " shorter than the control block -- ranks diverged");
    }
    const auto split = payload.begin() +
                       static_cast<std::ptrdiff_t>(control.size());
    controls_out[src].assign(payload.begin(), split);
    recv_out[src].assign(split, payload.end());
    payload.clear();
    peer.outbox.clear();
  }
  stats_.wall_seconds += net::monotonic_seconds() - t0;
}

void TcpTransport::barrier() {
  const auto world = static_cast<std::size_t>(config_.world);
  const auto me = static_cast<std::size_t>(config_.rank);
  const std::uint32_t tag = seq_++;
  ++stats_.barriers;
  if (world == 1) return;

  const double t0 = net::monotonic_seconds();
  for (std::size_t d = 0; d < world; ++d) {
    if (d == me) continue;
    Peer& peer = peers_[d];
    peer.outbox.clear();
    peer.out_cursor = 0;
    peer.frame_done = false;
    net::frame_append(peer.outbox, tag, {}, {});
    stats_.bytes_sent += peer.outbox.size();
  }
  pump_until_complete(tag);
  for (std::size_t src = 0; src < world; ++src) {
    if (src == me) continue;
    peers_[src].frame.payload.clear();
    peers_[src].outbox.clear();
  }
  stats_.wall_seconds += net::monotonic_seconds() - t0;
}

void TcpTransport::drain_peer(Peer& peer, std::size_t peer_rank,
                              std::uint32_t tag) {
  if (peer.frame_done) return;
  net::Frame frame;
  switch (peer.decoder.next(frame)) {
    case net::FrameDecoder::Status::kNeedMore:
      return;
    case net::FrameDecoder::Status::kFrame:
      if (frame.tag != tag) {
        throw Error("tcp transport: out-of-sequence frame from rank " +
                    std::to_string(peer_rank) + " (tag " +
                    std::to_string(frame.tag) + ", expected " +
                    std::to_string(tag) + ") -- ranks diverged");
      }
      peer.frame = std::move(frame);
      peer.frame_done = true;
      return;
    case net::FrameDecoder::Status::kBadMagic:
      throw Error("tcp transport: corrupt stream from rank " +
                  std::to_string(peer_rank));
    case net::FrameDecoder::Status::kTooLarge:
      throw Error("tcp transport: oversized frame from rank " +
                  std::to_string(peer_rank));
  }
}

void TcpTransport::pump_until_complete(std::uint32_t tag) {
  const auto world = static_cast<std::size_t>(config_.world);
  const auto me = static_cast<std::size_t>(config_.rank);

  // A peer racing ahead may have delivered this exchange's frame inside
  // the previous exchange's final read -- drain decoders first.
  for (std::size_t r = 0; r < world; ++r) {
    if (r != me) drain_peer(peers_[r], r, tag);
  }

  std::vector<pollfd> fds;
  std::vector<std::size_t> owner;
  std::byte buf[1 << 16];
  while (true) {
    fds.clear();
    owner.clear();
    for (std::size_t r = 0; r < world; ++r) {
      if (r == me) continue;
      Peer& peer = peers_[r];
      short events = 0;
      if (!peer.frame_done) events |= POLLIN;
      if (peer.out_cursor < peer.outbox.size()) events |= POLLOUT;
      if (events == 0) continue;
      fds.push_back(pollfd{peer.fd, events, 0});
      owner.push_back(r);
    }
    if (fds.empty()) return;

    const int ready = ::poll(fds.data(), static_cast<nfds_t>(fds.size()), -1);
    if (ready < 0) {
      if (errno == EINTR) continue;
      throw Error(std::string("tcp transport: poll failed: ") +
                  std::strerror(errno));
    }

    for (std::size_t i = 0; i < fds.size(); ++i) {
      const short got = fds[i].revents;
      if (got == 0) continue;
      const std::size_t r = owner[i];
      Peer& peer = peers_[r];
      if (got & POLLNVAL) {
        throw Error("tcp transport: invalid socket for rank " +
                    std::to_string(r));
      }
      if (got & (POLLIN | POLLHUP | POLLERR)) {
        const ssize_t n = ::read(peer.fd, buf, sizeof buf);
        if (n > 0) {
          peer.decoder.feed(std::span<const std::byte>(
              buf, static_cast<std::size_t>(n)));
          stats_.bytes_received += static_cast<std::uint64_t>(n);
          drain_peer(peer, r, tag);
        } else if (n == 0) {
          throw Error("tcp transport: rank " + std::to_string(r) +
                      " disconnected mid-collective");
        } else if (errno != EAGAIN && errno != EWOULDBLOCK &&
                   errno != EINTR) {
          throw Error("tcp transport: read from rank " + std::to_string(r) +
                      " failed: " + std::strerror(errno));
        }
      }
      if ((got & POLLOUT) && peer.out_cursor < peer.outbox.size()) {
        // MSG_NOSIGNAL so a vanished peer raises the Error below instead
        // of a process-wide SIGPIPE.
        const ssize_t n =
            ::send(peer.fd, peer.outbox.data() + peer.out_cursor,
                   peer.outbox.size() - peer.out_cursor, MSG_NOSIGNAL);
        if (n > 0) {
          peer.out_cursor += static_cast<std::size_t>(n);
        } else if (n < 0 && errno != EAGAIN && errno != EWOULDBLOCK &&
                   errno != EINTR) {
          throw Error("tcp transport: write to rank " + std::to_string(r) +
                      " failed: " + std::strerror(errno));
        }
      }
    }
  }
}

}  // namespace dlcomp
