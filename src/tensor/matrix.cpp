#include "tensor/matrix.hpp"

namespace dlcomp {

Matrix Matrix::randn(Rng& rng, std::size_t rows, std::size_t cols, double mean,
                     double stddev) {
  Matrix m(rows, cols);
  for (auto& v : m.data_) v = static_cast<float>(rng.normal(mean, stddev));
  return m;
}

Matrix Matrix::rand_uniform(Rng& rng, std::size_t rows, std::size_t cols,
                            float lo, float hi) {
  Matrix m(rows, cols);
  for (auto& v : m.data_) v = rng.uniform_float(lo, hi);
  return m;
}

}  // namespace dlcomp
