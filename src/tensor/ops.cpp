#include "tensor/ops.hpp"

#include <cmath>

namespace dlcomp {

void matmul_nt(const Matrix& x, const Matrix& w, Matrix& y) {
  DLCOMP_CHECK(x.cols() == w.cols());
  DLCOMP_CHECK(y.rows() == x.rows() && y.cols() == w.rows());
  const std::size_t batch = x.rows();
  const std::size_t in = x.cols();
  const std::size_t out = w.rows();
  for (std::size_t b = 0; b < batch; ++b) {
    const float* xr = x.data() + b * in;
    float* yr = y.data() + b * out;
    for (std::size_t o = 0; o < out; ++o) {
      const float* wr = w.data() + o * in;
      float acc = 0.0f;
      for (std::size_t i = 0; i < in; ++i) acc += xr[i] * wr[i];
      yr[o] = acc;
    }
  }
}

void matmul_nn(const Matrix& dy, const Matrix& w, Matrix& dx) {
  DLCOMP_CHECK(dy.cols() == w.rows());
  DLCOMP_CHECK(dx.rows() == dy.rows() && dx.cols() == w.cols());
  const std::size_t batch = dy.rows();
  const std::size_t out = dy.cols();
  const std::size_t in = w.cols();
  for (std::size_t b = 0; b < batch; ++b) {
    const float* dyr = dy.data() + b * out;
    float* dxr = dx.data() + b * in;
    for (std::size_t i = 0; i < in; ++i) dxr[i] = 0.0f;
    for (std::size_t o = 0; o < out; ++o) {
      const float g = dyr[o];
      if (g == 0.0f) continue;
      const float* wr = w.data() + o * in;
      for (std::size_t i = 0; i < in; ++i) dxr[i] += g * wr[i];
    }
  }
}

void matmul_tn_accum(const Matrix& dy, const Matrix& x, Matrix& dw) {
  DLCOMP_CHECK(dy.rows() == x.rows());
  DLCOMP_CHECK(dw.rows() == dy.cols() && dw.cols() == x.cols());
  const std::size_t batch = dy.rows();
  const std::size_t out = dy.cols();
  const std::size_t in = x.cols();
  for (std::size_t b = 0; b < batch; ++b) {
    const float* dyr = dy.data() + b * out;
    const float* xr = x.data() + b * in;
    for (std::size_t o = 0; o < out; ++o) {
      const float g = dyr[o];
      if (g == 0.0f) continue;
      float* dwr = dw.data() + o * in;
      for (std::size_t i = 0; i < in; ++i) dwr[i] += g * xr[i];
    }
  }
}

void add_bias(Matrix& y, std::span<const float> bias) {
  DLCOMP_CHECK(bias.size() == y.cols());
  for (std::size_t b = 0; b < y.rows(); ++b) {
    float* yr = y.data() + b * y.cols();
    for (std::size_t o = 0; o < y.cols(); ++o) yr[o] += bias[o];
  }
}

void bias_grad_accum(const Matrix& dy, std::span<float> db) {
  DLCOMP_CHECK(db.size() == dy.cols());
  for (std::size_t b = 0; b < dy.rows(); ++b) {
    const float* dyr = dy.data() + b * dy.cols();
    for (std::size_t o = 0; o < dy.cols(); ++o) db[o] += dyr[o];
  }
}

void relu_inplace(Matrix& x) noexcept {
  for (auto& v : x.flat()) {
    if (v < 0.0f) v = 0.0f;
  }
}

void relu_bwd(const Matrix& activated, Matrix& dy) noexcept {
  const auto act = activated.flat();
  auto grad = dy.flat();
  for (std::size_t i = 0; i < grad.size(); ++i) {
    if (act[i] <= 0.0f) grad[i] = 0.0f;
  }
}

void axpy(float alpha, std::span<const float> x, std::span<float> y) {
  DLCOMP_CHECK(x.size() == y.size());
  for (std::size_t i = 0; i < x.size(); ++i) y[i] += alpha * x[i];
}

double mean_squared_error(std::span<const float> a, std::span<const float> b) {
  DLCOMP_CHECK(a.size() == b.size());
  if (a.empty()) return 0.0;
  double acc = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    const double d = static_cast<double>(a[i]) - static_cast<double>(b[i]);
    acc += d * d;
  }
  return acc / static_cast<double>(a.size());
}

double max_abs_error(std::span<const float> a, std::span<const float> b) {
  DLCOMP_CHECK(a.size() == b.size());
  double worst = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    const double d = std::fabs(static_cast<double>(a[i]) - static_cast<double>(b[i]));
    if (d > worst) worst = d;
  }
  return worst;
}

}  // namespace dlcomp
