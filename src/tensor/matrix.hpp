#pragma once

/// \file matrix.hpp
/// Row-major owning float matrix. This is the tensor substrate for the
/// DLRM model: activations are (batch x features) matrices and embedding
/// tables are (rows x dim) matrices. Views are std::span-based; the class
/// follows the rule of zero.

#include <cstddef>
#include <span>
#include <vector>

#include "common/error.hpp"
#include "common/rng.hpp"

namespace dlcomp {

class Matrix {
 public:
  Matrix() = default;

  Matrix(std::size_t rows, std::size_t cols, float fill = 0.0f)
      : rows_(rows), cols_(cols), data_(rows * cols, fill) {}

  /// Gaussian-initialized matrix (used for weight init and synthetic
  /// embedding tables with "Gaussian" value distribution).
  static Matrix randn(Rng& rng, std::size_t rows, std::size_t cols,
                      double mean, double stddev);

  /// Uniform-initialized matrix over [lo, hi).
  static Matrix rand_uniform(Rng& rng, std::size_t rows, std::size_t cols,
                             float lo, float hi);

  [[nodiscard]] std::size_t rows() const noexcept { return rows_; }
  [[nodiscard]] std::size_t cols() const noexcept { return cols_; }
  [[nodiscard]] std::size_t size() const noexcept { return data_.size(); }
  /// Allocated element capacity; resize() within it never reallocates
  /// (the shard reader's grow-event accounting watches this).
  [[nodiscard]] std::size_t capacity() const noexcept { return data_.capacity(); }
  [[nodiscard]] bool empty() const noexcept { return data_.empty(); }

  [[nodiscard]] float* data() noexcept { return data_.data(); }
  [[nodiscard]] const float* data() const noexcept { return data_.data(); }

  [[nodiscard]] std::span<float> flat() noexcept { return {data_.data(), data_.size()}; }
  [[nodiscard]] std::span<const float> flat() const noexcept {
    return {data_.data(), data_.size()};
  }

  [[nodiscard]] std::span<float> row(std::size_t r) {
    DLCOMP_CHECK(r < rows_);
    return {data_.data() + r * cols_, cols_};
  }
  [[nodiscard]] std::span<const float> row(std::size_t r) const {
    DLCOMP_CHECK(r < rows_);
    return {data_.data() + r * cols_, cols_};
  }

  float& operator()(std::size_t r, std::size_t c) noexcept {
    return data_[r * cols_ + c];
  }
  float operator()(std::size_t r, std::size_t c) const noexcept {
    return data_[r * cols_ + c];
  }

  void fill(float value) noexcept {
    for (auto& v : data_) v = value;
  }
  void zero() noexcept { fill(0.0f); }

  /// Resizes, discarding contents (all elements zeroed).
  void resize(std::size_t rows, std::size_t cols) {
    rows_ = rows;
    cols_ = cols;
    data_.assign(rows * cols, 0.0f);
  }

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<float> data_;
};

}  // namespace dlcomp
