#pragma once

/// \file ops.hpp
/// Dense kernels used by the DLRM MLPs and interaction layer. Weight
/// matrices are stored (out_features x in_features), so the forward pass
/// is Y = X * W^T + b. The three GEMM orientations below cover forward,
/// input-gradient and weight-gradient passes without materializing
/// transposes.

#include <span>

#include "tensor/matrix.hpp"

namespace dlcomp {

/// Y = X (B x in) * W^T (in x out); Y must be (B x out).
void matmul_nt(const Matrix& x, const Matrix& w, Matrix& y);

/// dX = dY (B x out) * W (out x in); dX must be (B x in).
void matmul_nn(const Matrix& dy, const Matrix& w, Matrix& dx);

/// dW += dY^T (out x B) * X (B x in); dW must be (out x in).
/// Accumulates so gradients from multiple microbatches can be summed.
void matmul_tn_accum(const Matrix& dy, const Matrix& x, Matrix& dw);

/// Adds bias (length = y.cols()) to every row of y.
void add_bias(Matrix& y, std::span<const float> bias);

/// Accumulates column sums of dy into db (length = dy.cols()).
void bias_grad_accum(const Matrix& dy, std::span<float> db);

/// In-place ReLU; writes activation mask consumers can reuse via relu_bwd.
void relu_inplace(Matrix& x) noexcept;

/// dX = dY where the forward activation was positive, 0 elsewhere.
/// `activated` is the post-ReLU forward output.
void relu_bwd(const Matrix& activated, Matrix& dy) noexcept;

/// y += alpha * x (flat).
void axpy(float alpha, std::span<const float> x, std::span<float> y);

/// Mean squared difference between two equal-length spans.
double mean_squared_error(std::span<const float> a, std::span<const float> b);

/// Maximum absolute difference between two equal-length spans.
double max_abs_error(std::span<const float> a, std::span<const float> b);

}  // namespace dlcomp
