#include "common/rng.hpp"

#include <cmath>
#include <numbers>

namespace dlcomp {

namespace {

constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

Rng::Rng(std::uint64_t seed) noexcept {
  std::uint64_t sm = seed;
  for (auto& word : state_) word = splitmix64(sm);
}

std::uint64_t Rng::next_u64() noexcept {
  const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
  const std::uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = rotl(state_[3], 45);
  return result;
}

std::uint64_t Rng::next_below(std::uint64_t n) noexcept {
  // Lemire's nearly-divisionless bounded draw; bias is negligible for the
  // ranges used here but we still reject to keep draws exactly uniform.
  const std::uint64_t threshold = (0 - n) % n;
  for (;;) {
    const std::uint64_t r = next_u64();
    if (r >= threshold) return r % n;
  }
}

double Rng::next_double() noexcept {
  // 53 random mantissa bits -> [0, 1).
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) noexcept {
  return lo + (hi - lo) * next_double();
}

float Rng::uniform_float(float lo, float hi) noexcept {
  return static_cast<float>(uniform(lo, hi));
}

double Rng::normal() noexcept {
  if (has_cached_normal_) {
    has_cached_normal_ = false;
    return cached_normal_;
  }
  // Box-Muller; u1 in (0,1] to avoid log(0).
  double u1 = 0.0;
  do {
    u1 = next_double();
  } while (u1 <= 0.0);
  const double u2 = next_double();
  const double radius = std::sqrt(-2.0 * std::log(u1));
  const double angle = 2.0 * std::numbers::pi * u2;
  cached_normal_ = radius * std::sin(angle);
  has_cached_normal_ = true;
  return radius * std::cos(angle);
}

double Rng::normal(double mean, double stddev) noexcept {
  return mean + stddev * normal();
}

bool Rng::bernoulli(double p) noexcept { return next_double() < p; }

Rng Rng::fork(std::initializer_list<std::uint64_t> tags) const noexcept {
  std::uint64_t h = state_[0] ^ rotl(state_[2], 29);
  for (const std::uint64_t tag : tags) {
    h ^= tag + 0x9E3779B97F4A7C15ULL + (h << 6) + (h >> 2);
    (void)splitmix64(h);
  }
  return Rng{h};
}

}  // namespace dlcomp
