#include "common/arg_parser.hpp"

#include <algorithm>
#include <stdexcept>

#include "common/error.hpp"

namespace dlcomp {

ArgParser::ArgParser(int argc, char** argv, int first,
                     std::initializer_list<std::string_view> value_flags,
                     std::initializer_list<std::string_view> switches) {
  for (int i = first; i < argc; ++i) {
    const std::string_view arg = argv[i];
    if (arg.rfind("--", 0) != 0) {
      positionals_.emplace_back(arg);
      continue;
    }
    if (std::find(switches.begin(), switches.end(), arg) != switches.end()) {
      values_[std::string(arg)] = "";
      continue;
    }
    if (std::find(value_flags.begin(), value_flags.end(), arg) ==
        value_flags.end()) {
      throw Error("unknown flag: " + std::string(arg));
    }
    if (i + 1 >= argc) {
      throw Error("missing value for " + std::string(arg));
    }
    values_[std::string(arg)] = argv[++i];
  }
}

bool ArgParser::has(std::string_view flag) const {
  return values_.find(flag) != values_.end();
}

std::string ArgParser::str(std::string_view flag, std::string fallback) const {
  const auto it = values_.find(flag);
  return it == values_.end() ? std::move(fallback) : it->second;
}

double ArgParser::num(std::string_view flag, double fallback) const {
  const auto it = values_.find(flag);
  if (it == values_.end()) return fallback;
  try {
    std::size_t consumed = 0;
    const double value = std::stod(it->second, &consumed);
    if (consumed != it->second.size()) throw std::invalid_argument("trailing");
    return value;
  } catch (const std::exception&) {
    throw Error("bad number for " + std::string(flag) + ": " + it->second);
  }
}

std::size_t ArgParser::uint(std::string_view flag, std::size_t fallback) const {
  return static_cast<std::size_t>(u64(flag, fallback));
}

std::uint64_t ArgParser::u64(std::string_view flag,
                             std::uint64_t fallback) const {
  const auto it = values_.find(flag);
  if (it == values_.end()) return fallback;
  try {
    // std::stoull accepts "-5" and wraps it to 2^64-5; reject explicitly.
    if (it->second.find('-') != std::string::npos) {
      throw std::invalid_argument("negative");
    }
    std::size_t consumed = 0;
    const std::uint64_t value = std::stoull(it->second, &consumed);
    if (consumed != it->second.size()) throw std::invalid_argument("trailing");
    return value;
  } catch (const std::exception&) {
    throw Error("bad integer for " + std::string(flag) + ": " + it->second);
  }
}

}  // namespace dlcomp
