#pragma once

/// \file string_hash.hpp
/// Transparent string hasher for heterogeneous (string_view) lookup in
/// unordered containers keyed by std::string — pair it with
/// std::equal_to<> so find()/count() accept string_views without
/// materializing a temporary std::string.

#include <cstddef>
#include <functional>
#include <string_view>

namespace dlcomp {

struct TransparentStringHash {
  using is_transparent = void;
  [[nodiscard]] std::size_t operator()(std::string_view s) const noexcept {
    return std::hash<std::string_view>{}(s);
  }
};

}  // namespace dlcomp
