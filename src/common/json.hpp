#pragma once

/// \file json.hpp
/// Minimal JSON value: parse, serialize, and flatten. Just enough for the
/// observability plane -- run manifests (`obs/manifest.hpp`), the
/// `dlcomp obs diff` loader (which must also read BENCH_codec.json and
/// Chrome trace files), and the /status endpoint -- without pulling in a
/// dependency. Numbers are doubles (like JavaScript); object key order is
/// preserved on parse and emit so serialized manifests diff cleanly.

#include <cstddef>
#include <memory>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace dlcomp {

class JsonValue {
 public:
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };

  JsonValue() = default;
  explicit JsonValue(bool b) : kind_(Kind::kBool), bool_(b) {}
  explicit JsonValue(double n) : kind_(Kind::kNumber), number_(n) {}
  explicit JsonValue(std::string s)
      : kind_(Kind::kString), string_(std::move(s)) {}

  static JsonValue array() {
    JsonValue v;
    v.kind_ = Kind::kArray;
    return v;
  }
  static JsonValue object() {
    JsonValue v;
    v.kind_ = Kind::kObject;
    return v;
  }

  [[nodiscard]] Kind kind() const noexcept { return kind_; }
  [[nodiscard]] bool is_null() const noexcept { return kind_ == Kind::kNull; }
  [[nodiscard]] bool is_number() const noexcept {
    return kind_ == Kind::kNumber;
  }
  [[nodiscard]] bool is_string() const noexcept {
    return kind_ == Kind::kString;
  }
  [[nodiscard]] bool is_object() const noexcept {
    return kind_ == Kind::kObject;
  }
  [[nodiscard]] bool is_array() const noexcept { return kind_ == Kind::kArray; }

  [[nodiscard]] bool as_bool() const;
  [[nodiscard]] double as_number() const;
  [[nodiscard]] const std::string& as_string() const;
  [[nodiscard]] const std::vector<JsonValue>& items() const;
  [[nodiscard]] const std::vector<std::pair<std::string, JsonValue>>& members()
      const;

  /// Object member by key; null pointer when absent or not an object.
  [[nodiscard]] const JsonValue* find(std::string_view key) const;

  void push_back(JsonValue v);
  /// Appends (does not replace) a member; manifests never repeat keys.
  void set(std::string key, JsonValue v);

  /// Compact serialization (stable: preserves member order, "%.17g"
  /// numbers that round-trip doubles exactly, integral values without a
  /// trailing ".0"). `indent` > 0 pretty-prints.
  [[nodiscard]] std::string dump(int indent = 0) const;

 private:
  Kind kind_ = Kind::kNull;
  bool bool_ = false;
  double number_ = 0.0;
  std::string string_;
  std::vector<JsonValue> array_;
  std::vector<std::pair<std::string, JsonValue>> object_;

  void dump_to(std::string& out, int indent, int depth) const;
};

/// Parses a complete JSON document; throws dlcomp::Error with position
/// information on malformed input or trailing garbage.
[[nodiscard]] JsonValue json_parse(std::string_view text);

/// Escapes `s` into a JSON string literal (quotes included). Shared by
/// the serializer, the JSONL logger and the /status endpoint.
[[nodiscard]] std::string json_quote(std::string_view s);

/// Flattens every numeric leaf into "a/b/c" -> value pairs (array indices
/// become path components). Booleans flatten to 0/1; strings and nulls
/// are skipped. This is how `obs diff` compares arbitrary JSON reports.
void json_flatten_numbers(
    const JsonValue& value, const std::string& prefix,
    std::vector<std::pair<std::string, double>>& out);

}  // namespace dlcomp
