#pragma once

/// \file bitstream.hpp
/// Bit-granular writer/reader plus varint and zigzag codecs. These are the
/// shared primitives underneath the Huffman, vector-LZ and bitshuffle
/// codecs. Bits are packed LSB-first within each 64-bit word, words are
/// emitted little-endian, matching the layout a GPU warp-per-word encoder
/// would produce.
///
/// The hot paths (write, read, peek/advance) are header-inline: the codec
/// inner loops call them once per symbol, so a function-call boundary here
/// is measurable. The reader exposes a zero-padded peek so table-driven
/// decoders can index a LUT with the next k bits without worrying about
/// the end of the stream.

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <span>
#include <vector>

#include "common/error.hpp"

namespace dlcomp {

/// Appends bit fields to a growing byte buffer.
class BitWriter {
 public:
  /// Writes the low `bits` bits of `value` (0 <= bits <= 64).
  void write(std::uint64_t value, unsigned bits) {
    DLCOMP_CHECK(bits <= 64);
    if (bits == 0) return;
    if (bits < 64) value &= (std::uint64_t{1} << bits) - 1;

    bit_count_ += bits;
    if (used_ + bits <= 64) {
      current_ |= value << used_;
      used_ += bits;
      if (used_ == 64) flush_word();
      return;
    }
    const unsigned low = 64 - used_;
    current_ |= value << used_;
    used_ = 64;
    flush_word();
    current_ = value >> low;
    used_ = bits - low;
  }

  /// Writes a single bit.
  void write_bit(bool bit) { write(bit ? 1u : 0u, 1); }

  /// Pre-sizes the internal buffer for `bits` more bits, so the hot loops
  /// never reallocate mid-stream.
  void reserve_bits(std::size_t bits) {
    bytes_.reserve(bytes_.size() + (bits + 7) / 8 + 8);
  }

  /// Number of bits written so far.
  [[nodiscard]] std::size_t bit_count() const noexcept { return bit_count_; }

  /// Discards any buffered bits, retaining capacity (workspace reuse —
  /// also clears partial state left behind by an exception).
  void reset() noexcept {
    bytes_.clear();
    current_ = 0;
    used_ = 0;
    bit_count_ = 0;
  }

  /// Capacity of the internal byte buffer (workspace accounting).
  [[nodiscard]] std::size_t capacity_bytes() const noexcept {
    return bytes_.capacity();
  }

  /// Flushes the partial word and returns the byte buffer. The writer is
  /// left empty and reusable.
  [[nodiscard]] std::vector<std::byte> finish();

  /// Flushes into an existing buffer (appended) instead of returning one.
  void finish_into(std::vector<std::byte>& out);

 private:
  void flush_word() {
    const std::size_t at = bytes_.size();
    bytes_.resize(at + 8);
    std::memcpy(bytes_.data() + at, &current_, 8);
    current_ = 0;
    used_ = 0;
  }

  std::vector<std::byte> bytes_;
  std::uint64_t current_ = 0;
  unsigned used_ = 0;       // bits used in current_
  std::size_t bit_count_ = 0;
};

/// Reads bit fields from a byte span produced by BitWriter.
class BitReader {
 public:
  /// Largest `bits` the single-word peek fast path supports (a 64-bit
  /// load shifted by an intra-byte offset of up to 7 keeps 57 live bits).
  static constexpr unsigned kMaxPeekBits = 57;

  explicit BitReader(std::span<const std::byte> data) noexcept : data_(data) {}

  /// Reads `bits` bits (0 <= bits <= 64). Throws FormatError on overrun.
  std::uint64_t read(unsigned bits) {
    DLCOMP_CHECK(bits <= 64);
    if (bits == 0) return 0;
    if (bit_pos_ + bits > bit_size()) {
      throw FormatError("bitstream overrun");
    }
    if (bits <= kMaxPeekBits) {
      const std::uint64_t result = peek_unchecked(bits);
      bit_pos_ += bits;
      return result;
    }
    return read_slow(bits);
  }

  /// Returns the next `bits` bits (<= kMaxPeekBits) without advancing.
  /// Bits past the end of the stream read as zero, so table-driven
  /// decoders can always index with a full-width peek.
  [[nodiscard]] std::uint64_t peek(unsigned bits) const {
    DLCOMP_CHECK(bits <= kMaxPeekBits);
    if (bits == 0) return 0;
    return peek_unchecked(bits);
  }

  /// Consumes `bits` bits previously peeked. Throws FormatError if that
  /// would pass the end of the stream.
  void advance(unsigned bits) {
    if (bit_pos_ + bits > bit_size()) {
      throw FormatError("bitstream overrun");
    }
    bit_pos_ += bits;
  }

  /// Reads one bit.
  bool read_bit() { return read(1) != 0; }

  /// Bits consumed so far.
  [[nodiscard]] std::size_t bit_position() const noexcept { return bit_pos_; }

  /// Total bits available.
  [[nodiscard]] std::size_t bit_size() const noexcept { return data_.size() * 8; }

  /// Underlying bytes (for decoders that keep a local cursor and sync
  /// back via set_bit_position).
  [[nodiscard]] std::span<const std::byte> data() const noexcept {
    return data_;
  }

  /// Moves the cursor (forward or back); throws past-the-end.
  void set_bit_position(std::size_t pos) {
    if (pos > bit_size()) throw FormatError("bitstream overrun");
    bit_pos_ = pos;
  }

 private:
  /// Zero-padded peek; `bits` must be in (0, kMaxPeekBits].
  [[nodiscard]] std::uint64_t peek_unchecked(unsigned bits) const noexcept {
    const std::size_t byte_index = bit_pos_ / 8;
    const unsigned bit_offset = static_cast<unsigned>(bit_pos_ % 8);
    std::uint64_t word = 0;
    if (byte_index + 8 <= data_.size()) {
      std::memcpy(&word, data_.data() + byte_index, 8);
    } else if (byte_index < data_.size()) {
      std::memcpy(&word, data_.data() + byte_index, data_.size() - byte_index);
    }
    return (word >> bit_offset) & ((std::uint64_t{1} << bits) - 1);
  }

  std::uint64_t read_slow(unsigned bits);

  std::span<const std::byte> data_;
  std::size_t bit_pos_ = 0;
};

/// Zigzag maps signed to unsigned so small magnitudes get small codes.
constexpr std::uint64_t zigzag_encode(std::int64_t v) noexcept {
  return (static_cast<std::uint64_t>(v) << 1) ^
         static_cast<std::uint64_t>(v >> 63);
}

constexpr std::int64_t zigzag_decode(std::uint64_t v) noexcept {
  return static_cast<std::int64_t>(v >> 1) ^
         -static_cast<std::int64_t>(v & 1);
}

/// 32-bit zigzag; bit-identical to the low 32 bits of the 64-bit form
/// applied to a sign-extended int32 (used by the fused kernels).
constexpr std::uint32_t zigzag_encode32(std::int32_t v) noexcept {
  return (static_cast<std::uint32_t>(v) << 1) ^
         static_cast<std::uint32_t>(v >> 31);
}

constexpr std::int32_t zigzag_decode32(std::uint32_t v) noexcept {
  return static_cast<std::int32_t>(v >> 1) ^
         -static_cast<std::int32_t>(v & 1);
}

/// LEB128 variable-length encoding of an unsigned value.
void append_varint(std::vector<std::byte>& out, std::uint64_t value);

/// Reads a LEB128 varint starting at `pos` within `data`; advances `pos`.
std::uint64_t read_varint(std::span<const std::byte> data, std::size_t& pos);

/// Number of bits needed to represent `value` (>=1 even for zero).
constexpr unsigned bit_width_for(std::uint64_t value) noexcept {
  unsigned bits = 1;
  while (bits < 64 && (value >> bits) != 0) ++bits;
  return bits;
}

}  // namespace dlcomp
