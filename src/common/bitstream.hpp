#pragma once

/// \file bitstream.hpp
/// Bit-granular writer/reader plus varint and zigzag codecs. These are the
/// shared primitives underneath the Huffman, vector-LZ and bitshuffle
/// codecs. Bits are packed LSB-first within each 64-bit word, words are
/// emitted little-endian, matching the layout a GPU warp-per-word encoder
/// would produce.

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "common/error.hpp"

namespace dlcomp {

/// Appends bit fields to a growing byte buffer.
class BitWriter {
 public:
  /// Writes the low `bits` bits of `value` (0 <= bits <= 64).
  void write(std::uint64_t value, unsigned bits);

  /// Writes a single bit.
  void write_bit(bool bit) { write(bit ? 1u : 0u, 1); }

  /// Number of bits written so far.
  [[nodiscard]] std::size_t bit_count() const noexcept { return bit_count_; }

  /// Flushes the partial word and returns the byte buffer. The writer is
  /// left empty and reusable.
  [[nodiscard]] std::vector<std::byte> finish();

  /// Flushes into an existing buffer (appended) instead of returning one.
  void finish_into(std::vector<std::byte>& out);

 private:
  void flush_word();

  std::vector<std::byte> bytes_;
  std::uint64_t current_ = 0;
  unsigned used_ = 0;       // bits used in current_
  std::size_t bit_count_ = 0;
};

/// Reads bit fields from a byte span produced by BitWriter.
class BitReader {
 public:
  explicit BitReader(std::span<const std::byte> data) noexcept : data_(data) {}

  /// Reads `bits` bits (0 <= bits <= 64). Throws FormatError on overrun.
  std::uint64_t read(unsigned bits);

  /// Reads one bit.
  bool read_bit() { return read(1) != 0; }

  /// Bits consumed so far.
  [[nodiscard]] std::size_t bit_position() const noexcept { return bit_pos_; }

  /// Total bits available.
  [[nodiscard]] std::size_t bit_size() const noexcept { return data_.size() * 8; }

 private:
  std::span<const std::byte> data_;
  std::size_t bit_pos_ = 0;
};

/// Zigzag maps signed to unsigned so small magnitudes get small codes.
constexpr std::uint64_t zigzag_encode(std::int64_t v) noexcept {
  return (static_cast<std::uint64_t>(v) << 1) ^
         static_cast<std::uint64_t>(v >> 63);
}

constexpr std::int64_t zigzag_decode(std::uint64_t v) noexcept {
  return static_cast<std::int64_t>(v >> 1) ^
         -static_cast<std::int64_t>(v & 1);
}

/// LEB128 variable-length encoding of an unsigned value.
void append_varint(std::vector<std::byte>& out, std::uint64_t value);

/// Reads a LEB128 varint starting at `pos` within `data`; advances `pos`.
std::uint64_t read_varint(std::span<const std::byte> data, std::size_t& pos);

/// Number of bits needed to represent `value` (>=1 even for zero).
constexpr unsigned bit_width_for(std::uint64_t value) noexcept {
  unsigned bits = 1;
  while (bits < 64 && (value >> bits) != 0) ++bits;
  return bits;
}

}  // namespace dlcomp
