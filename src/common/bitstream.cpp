#include "common/bitstream.hpp"

#include <cstring>

namespace dlcomp {

std::vector<std::byte> BitWriter::finish() {
  std::vector<std::byte> out;
  finish_into(out);
  bytes_.clear();
  return out;
}

void BitWriter::finish_into(std::vector<std::byte>& out) {
  if (used_ > 0) {
    // Emit only the bytes that hold live bits.
    const unsigned live_bytes = (used_ + 7) / 8;
    const std::size_t at = bytes_.size();
    bytes_.resize(at + live_bytes);
    std::memcpy(bytes_.data() + at, &current_, live_bytes);
    current_ = 0;
    used_ = 0;
  }
  out.insert(out.end(), bytes_.begin(), bytes_.end());
  bytes_.clear();
  bit_count_ = 0;
}

std::uint64_t BitReader::read_slow(unsigned bits) {
  std::uint64_t result = 0;
  unsigned produced = 0;
  while (produced < bits) {
    const std::size_t byte_index = (bit_pos_ + produced) / 8;
    const unsigned bit_offset = static_cast<unsigned>((bit_pos_ + produced) % 8);
    const unsigned take = std::min<unsigned>(8 - bit_offset, bits - produced);
    const std::uint64_t byte = std::to_integer<std::uint64_t>(data_[byte_index]);
    const std::uint64_t chunk = (byte >> bit_offset) & ((1u << take) - 1u);
    result |= chunk << produced;
    produced += take;
  }
  bit_pos_ += bits;
  return result;
}

void append_varint(std::vector<std::byte>& out, std::uint64_t value) {
  while (value >= 0x80) {
    out.push_back(static_cast<std::byte>((value & 0x7F) | 0x80));
    value >>= 7;
  }
  out.push_back(static_cast<std::byte>(value));
}

std::uint64_t read_varint(std::span<const std::byte> data, std::size_t& pos) {
  std::uint64_t value = 0;
  unsigned shift = 0;
  for (;;) {
    if (pos >= data.size()) throw FormatError("varint truncated");
    const auto byte = std::to_integer<std::uint64_t>(data[pos++]);
    value |= (byte & 0x7F) << shift;
    if ((byte & 0x80) == 0) break;
    shift += 7;
    if (shift >= 64) throw FormatError("varint too long");
  }
  return value;
}

}  // namespace dlcomp
