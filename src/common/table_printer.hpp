#pragma once

/// \file table_printer.hpp
/// Aligned ASCII table rendering for the benchmark harnesses, so every
/// bench prints rows in the same shape the paper's tables/figures use.

#include <cstddef>
#include <iosfwd>
#include <string>
#include <vector>

namespace dlcomp {

/// Collects rows of string cells and prints them with aligned columns.
class TablePrinter {
 public:
  explicit TablePrinter(std::vector<std::string> headers);

  /// Adds a row; must have the same arity as the header.
  void add_row(std::vector<std::string> cells);

  /// Formats a double with fixed precision (helper for cells).
  static std::string num(double value, int precision = 2);

  /// Renders the table with a header separator.
  [[nodiscard]] std::string to_string() const;

  /// Convenience: renders to a stream.
  void print(std::ostream& os) const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace dlcomp
