#pragma once

/// \file timer.hpp
/// Wall-clock timing helpers used by benchmarks and the cost model.

#include <chrono>

namespace dlcomp {

/// Monotonic wall-clock stopwatch.
class WallTimer {
 public:
  WallTimer() noexcept : start_(clock::now()) {}

  /// Restarts the stopwatch.
  void reset() noexcept { start_ = clock::now(); }

  /// Seconds elapsed since construction or the last reset().
  [[nodiscard]] double seconds() const noexcept {
    return std::chrono::duration<double>(clock::now() - start_).count();
  }

 private:
  using clock = std::chrono::steady_clock;
  clock::time_point start_;
};

/// Accumulates time across multiple start/stop intervals; useful for
/// building per-phase breakdowns inside the training loop.
class AccumTimer {
 public:
  void start() noexcept { t_.reset(); running_ = true; }

  void stop() noexcept {
    if (running_) {
      total_ += t_.seconds();
      running_ = false;
    }
  }

  [[nodiscard]] double total_seconds() const noexcept { return total_; }
  void reset() noexcept { total_ = 0.0; running_ = false; }

 private:
  WallTimer t_;
  double total_ = 0.0;
  bool running_ = false;
};

}  // namespace dlcomp
