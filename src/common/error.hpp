#pragma once

/// \file error.hpp
/// Error handling for dlcomp: a project exception type plus lightweight
/// precondition/invariant macros. Checks are active in all build types --
/// the library is a research artifact where silent corruption is far more
/// expensive than a branch.

#include <sstream>
#include <stdexcept>
#include <string>

namespace dlcomp {

/// Exception thrown by all dlcomp precondition and invariant failures.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

/// Thrown when a compressed stream is malformed or corrupt.
class FormatError : public Error {
 public:
  explicit FormatError(const std::string& what) : Error(what) {}
};

namespace detail {

[[noreturn]] inline void throw_check_failure(const char* expr, const char* file,
                                             int line, const std::string& msg) {
  std::ostringstream os;
  os << "dlcomp check failed: (" << expr << ") at " << file << ":" << line;
  if (!msg.empty()) os << " -- " << msg;
  throw Error(os.str());
}

}  // namespace detail
}  // namespace dlcomp

/// Precondition / invariant check. Always enabled.
#define DLCOMP_CHECK(expr)                                                    \
  do {                                                                        \
    if (!(expr)) {                                                            \
      ::dlcomp::detail::throw_check_failure(#expr, __FILE__, __LINE__, "");   \
    }                                                                         \
  } while (false)

/// Check with a formatted message streamed after the condition, e.g.
/// DLCOMP_CHECK_MSG(n > 0, "n=" << n).
#define DLCOMP_CHECK_MSG(expr, stream_expr)                                   \
  do {                                                                        \
    if (!(expr)) {                                                            \
      std::ostringstream os_;                                                 \
      os_ << stream_expr;                                                     \
      ::dlcomp::detail::throw_check_failure(#expr, __FILE__, __LINE__,        \
                                            os_.str());                       \
    }                                                                         \
  } while (false)
