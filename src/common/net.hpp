#pragma once

/// \file net.hpp
/// Shared nonblocking-socket plumbing for everything in the repo that
/// touches a TCP socket: the observability HTTP server and the comm
/// layer's TcpTransport. One audited place owns the listen/bind/connect
/// sequences, the O_NONBLOCK toggling and the monotonic clock used for
/// idle timeouts, instead of each subsystem hand-rolling its own.
///
/// Also home to the length-prefixed message framing the TCP transport
/// speaks. FrameDecoder is an incremental parser in the same spirit as
/// HttpRequestParser: feed bytes as they arrive off a nonblocking
/// socket, pull complete frames out; the edge-case tests (partial
/// reads, bad magic, oversized frames) run against it directly, without
/// sockets.

#include <cstddef>
#include <cstdint>
#include <span>
#include <string>
#include <vector>

namespace dlcomp {
namespace net {

/// Steady-clock seconds (for idle timeouts and wall measurements on the
/// socket paths; unrelated to the simulated clocks).
[[nodiscard]] double monotonic_seconds() noexcept;

/// Puts `fd` into O_NONBLOCK mode (best effort; fcntl failures ignored).
void set_nonblocking(int fd);

/// Creates a TCP listener bound to address:port (port 0 binds an
/// ephemeral port -- read it back with bound_port). The fd is returned
/// in *blocking* mode so rendezvous-style accepts can block; callers
/// that poll() it should set_nonblocking it. Throws dlcomp::Error.
[[nodiscard]] int tcp_listen(const std::string& address, std::uint16_t port,
                             int backlog);

/// Port a bound socket actually listens on (after tcp_listen with
/// port 0). Throws dlcomp::Error when getsockname fails.
[[nodiscard]] std::uint16_t bound_port(int fd);

/// Blocking connect to address:port. Throws dlcomp::Error on failure.
[[nodiscard]] int tcp_connect(const std::string& address, std::uint16_t port);

/// Connect with retry until `timeout_s` elapses -- the peer's listener
/// may not be up yet (multi-process rank start is unordered). Throws
/// dlcomp::Error once the deadline passes.
[[nodiscard]] int tcp_connect_retry(const std::string& address,
                                    std::uint16_t port, double timeout_s);

/// Disables Nagle (TCP_NODELAY) -- collective rendezvous is
/// latency-bound on small control frames.
void set_nodelay(int fd);

/// close(fd) if >= 0, then marks it -1.
void close_fd(int& fd);

/// Blocking exact-size read/write helpers for the rendezvous phase
/// (before the mesh goes nonblocking). Throw dlcomp::Error on EOF or
/// socket errors.
void read_exact(int fd, void* data, std::size_t size);
void write_all(int fd, const void* data, std::size_t size);

// ------------------------------------------------------------- framing

/// Wire format of one framed message:
///   u32 magic 'DLFR' | u32 tag | u64 payload length | payload bytes.
/// All fields little-endian (the transport is localhost-only; the magic
/// still catches desynchronized streams immediately).
inline constexpr std::uint32_t kFrameMagic = 0x52464C44u;  // "DLFR"
inline constexpr std::size_t kFrameHeaderBytes = 16;

/// One decoded frame.
struct Frame {
  std::uint32_t tag = 0;
  std::vector<std::byte> payload;
};

/// Appends a framed message to `out`. The payload is passed as two
/// spans so callers can prepend a control block without concatenating
/// buffers first (either span may be empty).
void frame_append(std::vector<std::byte>& out, std::uint32_t tag,
                  std::span<const std::byte> head,
                  std::span<const std::byte> body);

/// Incremental frame parser. feed() appends raw socket bytes; next()
/// extracts at most one complete frame per call, leaving followers
/// buffered. kBadMagic / kTooLarge are terminal for the stream.
class FrameDecoder {
 public:
  enum class Status {
    kNeedMore,  ///< no complete frame buffered yet
    kFrame,     ///< one frame decoded into the out-parameter
    kBadMagic,  ///< stream desynchronized or corrupt
    kTooLarge,  ///< frame length exceeds the configured limit
  };

  explicit FrameDecoder(std::size_t max_frame_bytes = std::size_t{1} << 30)
      : max_frame_bytes_(max_frame_bytes) {}

  void feed(std::span<const std::byte> bytes);
  [[nodiscard]] Status next(Frame& out);

  [[nodiscard]] std::size_t buffered_bytes() const noexcept {
    return buffer_.size() - consumed_;
  }

 private:
  std::size_t max_frame_bytes_;
  std::vector<std::byte> buffer_;
  std::size_t consumed_ = 0;  ///< bytes of buffer_ already handed out
};

}  // namespace net
}  // namespace dlcomp
