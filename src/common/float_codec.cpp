#include "common/float_codec.hpp"

#include <bit>
#include <cmath>
#include <cstring>

namespace dlcomp {

namespace {

constexpr std::uint32_t f32_bits(float f) noexcept {
  return std::bit_cast<std::uint32_t>(f);
}

constexpr float bits_f32(std::uint32_t b) noexcept {
  return std::bit_cast<float>(b);
}

}  // namespace

std::uint16_t float_to_fp16(float value) noexcept {
  const std::uint32_t bits = f32_bits(value);
  const std::uint32_t sign = (bits >> 16) & 0x8000u;
  const std::uint32_t abs = bits & 0x7FFFFFFFu;

  if (abs >= 0x7F800000u) {
    // Inf / NaN: keep NaN payload bit set so NaN stays NaN.
    const std::uint32_t mantissa = (abs > 0x7F800000u) ? 0x200u : 0u;
    return static_cast<std::uint16_t>(sign | 0x7C00u | mantissa);
  }
  if (abs >= 0x477FF000u) {
    // Overflows binary16 range -> infinity (0x477FF000 ~ 65520 after RNE).
    return static_cast<std::uint16_t>(sign | 0x7C00u);
  }
  if (abs < 0x38800000u) {
    // Subnormal or zero in fp16: the target significand is
    // round(x * 2^24) = mant >> (126 - biased_exp), RNE. biased_exp is in
    // [102, 112] here, so the shift is in [14, 24].
    if (abs < 0x33000000u) return static_cast<std::uint16_t>(sign);  // -> 0
    const unsigned shift = 126u - (abs >> 23);
    const std::uint32_t mant = (abs & 0x7FFFFFu) | 0x800000u;
    const std::uint32_t shifted = mant >> shift;
    const std::uint32_t rem = mant & ((1u << shift) - 1u);
    const std::uint32_t half = 1u << (shift - 1);
    std::uint32_t result = shifted;
    if (rem > half || (rem == half && (shifted & 1u))) ++result;
    return static_cast<std::uint16_t>(sign | result);
  }
  // Normal range: rebias exponent (-112) folded into the bit arithmetic,
  // then round mantissa RNE. 0x38000000 = 112 << 23 has zero low bits, so
  // the subtraction cannot borrow into the mantissa.
  std::uint32_t result = (abs - 0x38000000u) >> 13;
  const std::uint32_t rem = abs & 0x1FFFu;
  if (rem > 0x1000u || (rem == 0x1000u && (result & 1u))) ++result;
  return static_cast<std::uint16_t>(sign | result);
}

float fp16_to_float(std::uint16_t h) noexcept {
  const std::uint32_t sign = (static_cast<std::uint32_t>(h) & 0x8000u) << 16;
  const std::uint32_t exponent = (h >> 10) & 0x1Fu;
  const std::uint32_t mantissa = h & 0x3FFu;

  if (exponent == 0x1Fu) {  // Inf / NaN
    return bits_f32(sign | 0x7F800000u | (mantissa << 13));
  }
  if (exponent == 0) {
    if (mantissa == 0) return bits_f32(sign);  // +-0
    // Subnormal: normalize.
    int e = -1;
    std::uint32_t m = mantissa;
    do {
      ++e;
      m <<= 1;
    } while ((m & 0x400u) == 0);
    const std::uint32_t exp32 = static_cast<std::uint32_t>(127 - 15 - e);
    return bits_f32(sign | (exp32 << 23) | ((m & 0x3FFu) << 13));
  }
  return bits_f32(sign | ((exponent + 112u) << 23) | (mantissa << 13));
}

std::uint8_t float_to_fp8_e4m3(float value) noexcept {
  if (std::isnan(value)) return 0x7F;
  const std::uint32_t bits = f32_bits(value);
  const std::uint8_t sign = static_cast<std::uint8_t>((bits >> 24) & 0x80u);
  float abs = std::fabs(value);

  constexpr float kMax = 448.0f;       // largest finite E4M3
  constexpr float kMinNormal = 0x1.0p-6f;   // 2^-6
  constexpr float kMinSubnormal = 0x1.0p-9f;  // 2^-9 (one mantissa ulp)
  if (abs >= kMax) return static_cast<std::uint8_t>(sign | 0x7E);  // saturate
  if (abs < kMinSubnormal / 2) return sign;                        // -> 0

  int exponent = 0;
  const float mant = std::frexp(abs, &exponent);  // abs = mant * 2^exp, mant in [0.5,1)
  // Convert to 1.m * 2^(exp-1).
  int e = exponent - 1;
  if (abs < kMinNormal) {
    // Subnormal: value = m * 2^-9 with m in [1,7].
    const float scaled = abs * 0x1.0p9f;
    int m = static_cast<int>(std::lrintf(scaled));
    if (m == 0) return sign;
    if (m >= 8) return static_cast<std::uint8_t>(sign | 0x08);  // rounds up to min normal
    return static_cast<std::uint8_t>(sign | m);
  }
  // Normal: mantissa in [1,2), 3 mantissa bits, RNE via lrintf.
  const float frac = mant * 2.0f;  // [1, 2)
  int m = static_cast<int>(std::lrintf((frac - 1.0f) * 8.0f));
  if (m == 8) {  // mantissa rounded up past 2.0
    m = 0;
    ++e;
  }
  int biased = e + 7;
  if (biased >= 16 || (biased == 15 && m == 7)) {
    return static_cast<std::uint8_t>(sign | 0x7E);  // saturate to 448
  }
  if (biased <= 0) return sign;
  return static_cast<std::uint8_t>(sign | (biased << 3) | m);
}

float fp8_e4m3_to_float(std::uint8_t b) noexcept {
  if ((b & 0x7F) == 0x7F) return std::nanf("");
  const float sign = (b & 0x80) ? -1.0f : 1.0f;
  const int exponent = (b >> 3) & 0x0F;
  const int mantissa = b & 0x07;
  if (exponent == 0) {
    return sign * static_cast<float>(mantissa) * 0x1.0p-9f;
  }
  return sign * (1.0f + static_cast<float>(mantissa) / 8.0f) *
         std::ldexp(1.0f, exponent - 7);
}

void encode_fp16(std::span<const float> in, std::span<std::uint16_t> out) noexcept {
  for (std::size_t i = 0; i < in.size(); ++i) out[i] = float_to_fp16(in[i]);
}

void decode_fp16(std::span<const std::uint16_t> in, std::span<float> out) noexcept {
  for (std::size_t i = 0; i < in.size(); ++i) out[i] = fp16_to_float(in[i]);
}

void encode_fp8(std::span<const float> in, std::span<std::uint8_t> out) noexcept {
  for (std::size_t i = 0; i < in.size(); ++i) out[i] = float_to_fp8_e4m3(in[i]);
}

void decode_fp8(std::span<const std::uint8_t> in, std::span<float> out) noexcept {
  for (std::size_t i = 0; i < in.size(); ++i) out[i] = fp8_e4m3_to_float(in[i]);
}

}  // namespace dlcomp
