#pragma once

/// \file byte_io.hpp
/// Little-endian serialization of trivially copyable values into byte
/// vectors, plus a bounds-checked reader. Compressed stream headers and
/// collective metadata use these primitives so that stream layouts are
/// explicit and portable.

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <span>
#include <type_traits>
#include <vector>

#include "common/error.hpp"

namespace dlcomp {

/// Appends the raw little-endian bytes of `value` to `out`.
template <typename T>
  requires std::is_trivially_copyable_v<T>
void append_pod(std::vector<std::byte>& out, const T& value) {
  const auto* p = reinterpret_cast<const std::byte*>(&value);
  out.insert(out.end(), p, p + sizeof(T));
}

/// Appends `count` trivially copyable elements.
template <typename T>
  requires std::is_trivially_copyable_v<T>
void append_pod_span(std::vector<std::byte>& out, std::span<const T> values) {
  const auto* p = reinterpret_cast<const std::byte*>(values.data());
  out.insert(out.end(), p, p + values.size_bytes());
}

/// Bounds-checked sequential reader over a byte span.
class ByteReader {
 public:
  explicit ByteReader(std::span<const std::byte> data) noexcept : data_(data) {}

  /// Bytes not yet consumed.
  [[nodiscard]] std::size_t remaining() const noexcept {
    return data_.size() - pos_;
  }

  [[nodiscard]] std::size_t position() const noexcept { return pos_; }

  /// Reads one trivially copyable value; throws FormatError on underflow.
  template <typename T>
    requires std::is_trivially_copyable_v<T>
  T read() {
    if (remaining() < sizeof(T)) {
      throw FormatError("byte stream truncated: need " +
                        std::to_string(sizeof(T)) + " bytes, have " +
                        std::to_string(remaining()));
    }
    T value;
    std::memcpy(&value, data_.data() + pos_, sizeof(T));
    pos_ += sizeof(T);
    return value;
  }

  /// Reads `count` elements into `out`.
  template <typename T>
    requires std::is_trivially_copyable_v<T>
  void read_span(std::span<T> out) {
    const std::size_t bytes = out.size_bytes();
    if (remaining() < bytes) {
      throw FormatError("byte stream truncated reading array");
    }
    std::memcpy(out.data(), data_.data() + pos_, bytes);
    pos_ += bytes;
  }

  /// Returns a view of the next `count` bytes and advances past them.
  std::span<const std::byte> take(std::size_t count) {
    if (remaining() < count) {
      throw FormatError("byte stream truncated taking slice");
    }
    auto view = data_.subspan(pos_, count);
    pos_ += count;
    return view;
  }

  /// Skips `count` bytes.
  void skip(std::size_t count) { (void)take(count); }

 private:
  std::span<const std::byte> data_;
  std::size_t pos_ = 0;
};

}  // namespace dlcomp
