#pragma once

/// \file rng.hpp
/// Deterministic, splittable random number generation.
///
/// All randomness in dlcomp flows through Rng so that every experiment is
/// bitwise reproducible regardless of thread scheduling: SPMD ranks and
/// per-iteration streams derive independent generators with
/// Rng::fork(tag...), which hashes the tags into a fresh seed instead of
/// sharing mutable state across threads.

#include <array>
#include <cstdint>
#include <span>

namespace dlcomp {

/// splitmix64 step; used for seeding and for hashing fork tags.
constexpr std::uint64_t splitmix64(std::uint64_t& state) noexcept {
  state += 0x9E3779B97F4A7C15ULL;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

/// xoshiro256** engine with convenience distributions. Satisfies
/// UniformRandomBitGenerator so it interoperates with <random> if needed.
class Rng {
 public:
  using result_type = std::uint64_t;

  /// Seeds the four-word state from a single seed via splitmix64.
  explicit Rng(std::uint64_t seed = 0x5EEDDA7A5EEDDA7AULL) noexcept;

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept { return ~result_type{0}; }

  /// Raw 64 random bits.
  std::uint64_t next_u64() noexcept;
  result_type operator()() noexcept { return next_u64(); }

  /// Uniform integer in [0, n). Requires n > 0.
  std::uint64_t next_below(std::uint64_t n) noexcept;

  /// Uniform double in [0, 1).
  double next_double() noexcept;

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) noexcept;

  /// Uniform float in [lo, hi).
  float uniform_float(float lo, float hi) noexcept;

  /// Standard normal via Box-Muller (cached second value).
  double normal() noexcept;

  /// Normal with given mean / stddev.
  double normal(double mean, double stddev) noexcept;

  /// Bernoulli draw.
  bool bernoulli(double p) noexcept;

  /// Derives an independent generator from this one's seed material and a
  /// list of integer tags. Deterministic: the same parent seed and tags
  /// always produce the same child. Does not advance this generator.
  [[nodiscard]] Rng fork(std::initializer_list<std::uint64_t> tags) const noexcept;

  /// Convenience two-tag fork.
  [[nodiscard]] Rng fork(std::uint64_t a, std::uint64_t b = 0x9E3779B9ULL) const noexcept {
    return fork({a, b});
  }

  /// Fisher-Yates shuffle of a span.
  template <typename T>
  void shuffle(std::span<T> items) noexcept {
    for (std::size_t i = items.size(); i > 1; --i) {
      const std::size_t j = static_cast<std::size_t>(next_below(i));
      using std::swap;
      swap(items[i - 1], items[j]);
    }
  }

 private:
  std::array<std::uint64_t, 4> state_{};
  double cached_normal_ = 0.0;
  bool has_cached_normal_ = false;
};

}  // namespace dlcomp
