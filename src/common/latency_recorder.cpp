#include "common/latency_recorder.hpp"

#include <algorithm>
#include <cstdio>

#include "common/stats.hpp"

namespace dlcomp {

void LatencyRecorder::record(double seconds) {
  samples_.push_back(static_cast<float>(seconds));
  sum_ += seconds;
  max_ = std::max(max_, seconds);
}

void LatencyRecorder::merge(const LatencyRecorder& other) {
  samples_.insert(samples_.end(), other.samples_.begin(),
                  other.samples_.end());
  sum_ += other.sum_;
  max_ = std::max(max_, other.max_);
}

LatencySummary LatencyRecorder::summary() const {
  LatencySummary s;
  s.count = samples_.size();
  if (samples_.empty()) return s;

  std::vector<float> sorted(samples_.begin(), samples_.end());
  std::sort(sorted.begin(), sorted.end());
  s.mean_s = sum_ / static_cast<double>(samples_.size());
  s.max_s = max_;
  s.p50_s = percentile_sorted(sorted, 50.0);
  s.p95_s = percentile_sorted(sorted, 95.0);
  s.p99_s = percentile_sorted(sorted, 99.0);
  s.p999_s = percentile_sorted(sorted, 99.9);
  return s;
}

void LatencyRecorder::fill_histogram(HistogramMetric& hist) const {
  for (const float s : samples_) hist.observe(s);
}

void LatencyRecorder::reset() {
  samples_.clear();
  sum_ = 0.0;
  max_ = 0.0;
}

std::string format_latency(const LatencySummary& summary) {
  char buf[160];
  std::snprintf(buf, sizeof buf,
                "p50=%.3fms p95=%.3fms p99=%.3fms p99.9=%.3fms (n=%zu)",
                summary.p50_s * 1e3, summary.p95_s * 1e3, summary.p99_s * 1e3,
                summary.p999_s * 1e3, summary.count);
  return buf;
}

}  // namespace dlcomp
