#pragma once

/// \file float_codec.hpp
/// Software FP16 (IEEE binary16) and FP8 (E4M3) conversion, used by the
/// low-precision baselines (the paper's FP16/FP8 comparison points).
/// Conversions use round-to-nearest-even and saturate to the largest
/// finite value, matching the ML-accelerator convention for E4M3.

#include <cstdint>
#include <span>

namespace dlcomp {

/// Converts a float to IEEE binary16 bits (round-to-nearest-even).
std::uint16_t float_to_fp16(float value) noexcept;

/// Converts IEEE binary16 bits back to float.
float fp16_to_float(std::uint16_t bits) noexcept;

/// Converts a float to FP8 E4M3 bits (1 sign, 4 exponent, 3 mantissa;
/// bias 7; no infinities, NaN = 0x7F; saturates at +-448).
std::uint8_t float_to_fp8_e4m3(float value) noexcept;

/// Converts FP8 E4M3 bits back to float.
float fp8_e4m3_to_float(std::uint8_t bits) noexcept;

/// Bulk conversions.
void encode_fp16(std::span<const float> in, std::span<std::uint16_t> out) noexcept;
void decode_fp16(std::span<const std::uint16_t> in, std::span<float> out) noexcept;
void encode_fp8(std::span<const float> in, std::span<std::uint8_t> out) noexcept;
void decode_fp8(std::span<const std::uint8_t> in, std::span<float> out) noexcept;

}  // namespace dlcomp
