#pragma once

/// \file crc32.hpp
/// CRC-32 (IEEE 802.3, reflected polynomial 0xEDB88320) over byte spans.
/// The checkpoint container stamps every section payload with a CRC so
/// at-rest corruption is caught before any bytes reach a codec or a
/// weight buffer.

#include <array>
#include <cstddef>
#include <cstdint>
#include <span>

namespace dlcomp {

namespace detail {

constexpr std::array<std::uint32_t, 256> make_crc32_table() noexcept {
  std::array<std::uint32_t, 256> table{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t c = i;
    for (int bit = 0; bit < 8; ++bit) {
      c = (c & 1u) ? (0xEDB88320u ^ (c >> 1)) : (c >> 1);
    }
    table[i] = c;
  }
  return table;
}

inline constexpr std::array<std::uint32_t, 256> kCrc32Table = make_crc32_table();

}  // namespace detail

/// Incremental update: feed `state` through successive chunks, starting
/// from crc32_init() and finishing with crc32_final().
[[nodiscard]] constexpr std::uint32_t crc32_init() noexcept { return 0xFFFFFFFFu; }

[[nodiscard]] inline std::uint32_t crc32_update(
    std::uint32_t state, std::span<const std::byte> data) noexcept {
  for (const std::byte b : data) {
    state = detail::kCrc32Table[(state ^ static_cast<std::uint8_t>(b)) & 0xFFu] ^
            (state >> 8);
  }
  return state;
}

[[nodiscard]] constexpr std::uint32_t crc32_final(std::uint32_t state) noexcept {
  return state ^ 0xFFFFFFFFu;
}

/// One-shot CRC of a whole buffer.
[[nodiscard]] inline std::uint32_t crc32(std::span<const std::byte> data) noexcept {
  return crc32_final(crc32_update(crc32_init(), data));
}

}  // namespace dlcomp
