#pragma once

/// \file arg_parser.hpp
/// Minimal command-line parsing shared by the `dlcomp` subcommands, so
/// each new subcommand stops hand-rolling its own flag loop. Grammar:
/// `--flag value` for registered value flags, bare `--flag` for
/// registered switches, anything else positional. Unknown flags and
/// missing values throw Error; subcommands catch that, print their usage
/// string and exit 2.

#include <cstdint>
#include <initializer_list>
#include <map>
#include <string>
#include <string_view>
#include <vector>

namespace dlcomp {

class ArgParser {
 public:
  /// Parses argv[first..argc). `value_flags` take one value each (last
  /// occurrence wins); `switches` take none.
  ArgParser(int argc, char** argv, int first,
            std::initializer_list<std::string_view> value_flags,
            std::initializer_list<std::string_view> switches = {});

  /// True when the flag or switch appeared.
  [[nodiscard]] bool has(std::string_view flag) const;

  /// Value accessors with defaults; number parsing throws Error on
  /// malformed input (naming the flag).
  [[nodiscard]] std::string str(std::string_view flag,
                                std::string fallback = "") const;
  [[nodiscard]] double num(std::string_view flag, double fallback) const;
  [[nodiscard]] std::size_t uint(std::string_view flag,
                                 std::size_t fallback) const;
  [[nodiscard]] std::uint64_t u64(std::string_view flag,
                                  std::uint64_t fallback) const;

  /// Non-flag arguments, in order.
  [[nodiscard]] const std::vector<std::string>& positionals() const noexcept {
    return positionals_;
  }

  /// Positional count convenience with bounds checking baked into at().
  [[nodiscard]] const std::string& positional(std::size_t i) const {
    return positionals_.at(i);
  }

 private:
  std::map<std::string, std::string, std::less<>> values_;
  std::vector<std::string> positionals_;
};

}  // namespace dlcomp
