#include "common/stats.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <string>

#include "common/error.hpp"
#include "obs/metrics.hpp"

namespace dlcomp {

Summary summarize(std::span<const float> values) {
  Summary s;
  s.count = values.size();
  if (values.empty()) return s;

  double sum = 0.0;
  s.min = values.front();
  s.max = values.front();
  for (const float v : values) {
    sum += v;
    s.min = std::min<double>(s.min, v);
    s.max = std::max<double>(s.max, v);
  }
  s.mean = sum / static_cast<double>(s.count);

  double m2 = 0.0;
  double m4 = 0.0;
  for (const float v : values) {
    const double d = v - s.mean;
    const double d2 = d * d;
    m2 += d2;
    m4 += d2 * d2;
  }
  m2 /= static_cast<double>(s.count);
  m4 /= static_cast<double>(s.count);
  s.stddev = std::sqrt(m2);
  s.excess_kurtosis = (m2 > 0.0) ? (m4 / (m2 * m2) - 3.0) : 0.0;
  return s;
}

Histogram::Histogram(double lo, double hi, std::size_t bins)
    : lo_(lo), hi_(hi), counts_(bins, 0) {
  DLCOMP_CHECK(bins > 0);
  DLCOMP_CHECK(hi > lo);
}

void Histogram::add(double value) noexcept {
  const double t = (value - lo_) / (hi_ - lo_);
  auto bin = static_cast<std::ptrdiff_t>(t * static_cast<double>(counts_.size()));
  bin = std::clamp<std::ptrdiff_t>(bin, 0,
                                   static_cast<std::ptrdiff_t>(counts_.size()) - 1);
  ++counts_[static_cast<std::size_t>(bin)];
  ++total_;
}

void Histogram::add_all(std::span<const float> values) noexcept {
  for (const float v : values) add(v);
}

double Histogram::bin_lo(std::size_t bin) const noexcept {
  return lo_ + (hi_ - lo_) * static_cast<double>(bin) /
                   static_cast<double>(counts_.size());
}

double Histogram::bin_hi(std::size_t bin) const noexcept {
  return lo_ + (hi_ - lo_) * static_cast<double>(bin + 1) /
                   static_cast<double>(counts_.size());
}

double Histogram::entropy_bits() const noexcept {
  return ::dlcomp::entropy_bits(counts_);
}

std::string Histogram::render(std::size_t max_width) const {
  std::uint64_t peak = 1;
  for (const auto c : counts_) peak = std::max(peak, c);

  std::string out;
  char label[64];
  for (std::size_t b = 0; b < counts_.size(); ++b) {
    std::snprintf(label, sizeof label, "[%+8.4f, %+8.4f) %8llu |", bin_lo(b),
                  bin_hi(b), static_cast<unsigned long long>(counts_[b]));
    out += label;
    const auto width = static_cast<std::size_t>(
        static_cast<double>(counts_[b]) / static_cast<double>(peak) *
        static_cast<double>(max_width));
    out.append(width, '#');
    out += '\n';
  }
  return out;
}

double percentile(std::span<const float> values, double q) {
  std::vector<float> sorted(values.begin(), values.end());
  std::sort(sorted.begin(), sorted.end());
  return percentile_sorted(sorted, q);
}

double percentile_sorted(std::span<const float> sorted, double q) {
  if (sorted.empty()) return 0.0;
  DLCOMP_CHECK_MSG(q >= 0.0 && q <= 100.0, "q=" << q);
  // The rank rule (nearest rank with the exact-boundary epsilon) is
  // shared with HistogramMetric::quantile — one percentile definition
  // for the whole repo.
  return sorted[nearest_rank(sorted.size(), q) - 1];
}

double entropy_bits(std::span<const std::uint64_t> frequencies) {
  std::uint64_t total = 0;
  for (const auto f : frequencies) total += f;
  if (total == 0) return 0.0;
  double h = 0.0;
  for (const auto f : frequencies) {
    if (f == 0) continue;
    const double p = static_cast<double>(f) / static_cast<double>(total);
    h -= p * std::log2(p);
  }
  return h;
}

}  // namespace dlcomp
