#include "common/net.hpp"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>
#include <thread>

#include "common/error.hpp"

namespace dlcomp {
namespace net {

double monotonic_seconds() noexcept {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

void set_nonblocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags >= 0) ::fcntl(fd, F_SETFL, flags | O_NONBLOCK);
}

namespace {

sockaddr_in make_addr(const std::string& address, std::uint16_t port) {
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, address.c_str(), &addr.sin_addr) != 1) {
    throw Error("net: invalid address '" + address + "'");
  }
  return addr;
}

}  // namespace

int tcp_listen(const std::string& address, std::uint16_t port, int backlog) {
  const sockaddr_in addr = make_addr(address, port);
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) throw Error("net: socket() failed");
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) != 0) {
    const int err = errno;
    ::close(fd);
    throw Error("net: bind " + address + ":" + std::to_string(port) +
                " failed: " + std::strerror(err));
  }
  if (::listen(fd, backlog) != 0) {
    const int err = errno;
    ::close(fd);
    throw Error(std::string("net: listen failed: ") + std::strerror(err));
  }
  return fd;
}

std::uint16_t bound_port(int fd) {
  sockaddr_in bound{};
  socklen_t len = sizeof(bound);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&bound), &len) != 0) {
    throw Error("net: getsockname failed");
  }
  return ntohs(bound.sin_port);
}

int tcp_connect(const std::string& address, std::uint16_t port) {
  const sockaddr_in addr = make_addr(address, port);
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) throw Error("net: socket() failed");
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    const int err = errno;
    ::close(fd);
    throw Error("net: connect " + address + ":" + std::to_string(port) +
                " failed: " + std::strerror(err));
  }
  return fd;
}

int tcp_connect_retry(const std::string& address, std::uint16_t port,
                      double timeout_s) {
  const double deadline = monotonic_seconds() + timeout_s;
  while (true) {
    try {
      return tcp_connect(address, port);
    } catch (const Error&) {
      if (monotonic_seconds() >= deadline) throw;
      std::this_thread::sleep_for(std::chrono::milliseconds(20));
    }
  }
}

void set_nodelay(int fd) {
  const int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
}

void close_fd(int& fd) {
  if (fd >= 0) ::close(fd);
  fd = -1;
}

void read_exact(int fd, void* data, std::size_t size) {
  auto* cursor = static_cast<std::byte*>(data);
  while (size > 0) {
    const ssize_t n = ::read(fd, cursor, size);
    if (n > 0) {
      cursor += n;
      size -= static_cast<std::size_t>(n);
      continue;
    }
    if (n == 0) throw Error("net: peer closed the connection mid-message");
    if (errno == EINTR) continue;
    throw Error(std::string("net: read failed: ") + std::strerror(errno));
  }
}

void write_all(int fd, const void* data, std::size_t size) {
  const auto* cursor = static_cast<const std::byte*>(data);
  while (size > 0) {
    // MSG_NOSIGNAL: a peer that died must surface as the EPIPE Error
    // below, not as a process-killing SIGPIPE.
    const ssize_t n = ::send(fd, cursor, size, MSG_NOSIGNAL);
    if (n > 0) {
      cursor += n;
      size -= static_cast<std::size_t>(n);
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    throw Error(std::string("net: write failed: ") + std::strerror(errno));
  }
}

// ------------------------------------------------------------- framing

void frame_append(std::vector<std::byte>& out, std::uint32_t tag,
                  std::span<const std::byte> head,
                  std::span<const std::byte> body) {
  const std::uint64_t length =
      static_cast<std::uint64_t>(head.size()) + body.size();
  const std::size_t at = out.size();
  out.resize(at + kFrameHeaderBytes + head.size() + body.size());
  std::memcpy(out.data() + at, &kFrameMagic, sizeof(kFrameMagic));
  std::memcpy(out.data() + at + 4, &tag, sizeof(tag));
  std::memcpy(out.data() + at + 8, &length, sizeof(length));
  if (!head.empty()) {
    std::memcpy(out.data() + at + kFrameHeaderBytes, head.data(), head.size());
  }
  if (!body.empty()) {
    std::memcpy(out.data() + at + kFrameHeaderBytes + head.size(), body.data(),
                body.size());
  }
}

void FrameDecoder::feed(std::span<const std::byte> bytes) {
  // Compact lazily: only when consumed bytes dominate the buffer, so a
  // hot exchange loop is not O(n^2) in erase calls.
  if (consumed_ > 0 && consumed_ >= buffer_.size() / 2) {
    buffer_.erase(buffer_.begin(),
                  buffer_.begin() + static_cast<std::ptrdiff_t>(consumed_));
    consumed_ = 0;
  }
  buffer_.insert(buffer_.end(), bytes.begin(), bytes.end());
}

FrameDecoder::Status FrameDecoder::next(Frame& out) {
  const std::size_t avail = buffer_.size() - consumed_;
  if (avail < kFrameHeaderBytes) return Status::kNeedMore;
  const std::byte* head = buffer_.data() + consumed_;

  std::uint32_t magic = 0;
  std::uint32_t tag = 0;
  std::uint64_t length = 0;
  std::memcpy(&magic, head, sizeof(magic));
  std::memcpy(&tag, head + 4, sizeof(tag));
  std::memcpy(&length, head + 8, sizeof(length));

  if (magic != kFrameMagic) return Status::kBadMagic;
  if (length > max_frame_bytes_) return Status::kTooLarge;
  if (avail < kFrameHeaderBytes + length) return Status::kNeedMore;

  out.tag = tag;
  out.payload.assign(head + kFrameHeaderBytes,
                     head + kFrameHeaderBytes + length);
  consumed_ += kFrameHeaderBytes + static_cast<std::size_t>(length);
  return Status::kFrame;
}

}  // namespace net
}  // namespace dlcomp
