#pragma once

/// \file stats.hpp
/// Descriptive statistics, histograms and entropy estimates. Used by the
/// offline analyzer (Gaussian-vs-uniform table characterization, Fig. 13/14)
/// and by benches that report data distributions.

#include <cstddef>
#include <cstdint>
#include <span>
#include <string>
#include <vector>

namespace dlcomp {

/// Summary statistics of a float sample.
struct Summary {
  std::size_t count = 0;
  double mean = 0.0;
  double stddev = 0.0;
  double min = 0.0;
  double max = 0.0;
  /// Excess kurtosis; ~0 for Gaussian, ~-1.2 for uniform. The offline
  /// analyzer uses this to label a table's value distribution.
  double excess_kurtosis = 0.0;
};

/// Computes summary statistics in one pass (two for the moments).
Summary summarize(std::span<const float> values);

/// Fixed-bin histogram over [lo, hi]; values outside are clamped to the
/// edge bins so mass is conserved.
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t bins);

  void add(double value) noexcept;
  void add_all(std::span<const float> values) noexcept;

  [[nodiscard]] std::size_t bins() const noexcept { return counts_.size(); }
  [[nodiscard]] std::uint64_t count(std::size_t bin) const { return counts_.at(bin); }
  [[nodiscard]] std::uint64_t total() const noexcept { return total_; }
  [[nodiscard]] double bin_lo(std::size_t bin) const noexcept;
  [[nodiscard]] double bin_hi(std::size_t bin) const noexcept;

  /// Shannon entropy of the bin distribution, in bits.
  [[nodiscard]] double entropy_bits() const noexcept;

  /// Renders a horizontal ASCII bar chart (one line per bin), used by the
  /// Fig. 13/14 benches.
  [[nodiscard]] std::string render(std::size_t max_width = 50) const;

 private:
  double lo_;
  double hi_;
  std::vector<std::uint64_t> counts_;
  std::uint64_t total_ = 0;
};

/// Shannon entropy (bits/symbol) of an arbitrary symbol frequency list.
double entropy_bits(std::span<const std::uint64_t> frequencies);

/// Nearest-rank percentile of an unsorted sample: the smallest element
/// such that at least q percent of the sample is <= it (q in [0, 100]).
/// Copies and sorts internally; returns 0 for an empty sample. Used by
/// LatencyRecorder (p50/p95/p99/p99.9) and the serving benches.
double percentile(std::span<const float> values, double q);

/// Same nearest-rank rule over an already ascending-sorted sample; no
/// copy, O(1). Precondition (unchecked): `sorted` is sorted.
double percentile_sorted(std::span<const float> sorted, double q);

}  // namespace dlcomp
