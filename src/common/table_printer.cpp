#include "common/table_printer.hpp"

#include <algorithm>
#include <cstdio>
#include <ostream>

#include "common/error.hpp"

namespace dlcomp {

TablePrinter::TablePrinter(std::vector<std::string> headers)
    : headers_(std::move(headers)) {
  DLCOMP_CHECK(!headers_.empty());
}

void TablePrinter::add_row(std::vector<std::string> cells) {
  DLCOMP_CHECK_MSG(cells.size() == headers_.size(),
                   "row arity " << cells.size() << " != header arity "
                                << headers_.size());
  rows_.push_back(std::move(cells));
}

std::string TablePrinter::num(double value, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", precision, value);
  return buf;
}

std::string TablePrinter::to_string() const {
  std::vector<std::size_t> widths(headers_.size(), 0);
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    widths[c] = headers_[c].size();
  }
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }

  auto render_row = [&](const std::vector<std::string>& row) {
    std::string line;
    for (std::size_t c = 0; c < row.size(); ++c) {
      line += (c == 0) ? "| " : " | ";
      line += row[c];
      line.append(widths[c] - row[c].size(), ' ');
    }
    line += " |\n";
    return line;
  };

  std::string out = render_row(headers_);
  std::string sep = "|";
  for (const auto w : widths) {
    sep.append(w + 2, '-');
    sep += '|';
  }
  sep += '\n';
  out += sep;
  for (const auto& row : rows_) out += render_row(row);
  return out;
}

void TablePrinter::print(std::ostream& os) const { os << to_string(); }

}  // namespace dlcomp
