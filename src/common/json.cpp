#include "common/json.hpp"

#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "common/error.hpp"

namespace dlcomp {

bool JsonValue::as_bool() const {
  if (kind_ != Kind::kBool) throw Error("json: value is not a bool");
  return bool_;
}

double JsonValue::as_number() const {
  if (kind_ != Kind::kNumber) throw Error("json: value is not a number");
  return number_;
}

const std::string& JsonValue::as_string() const {
  if (kind_ != Kind::kString) throw Error("json: value is not a string");
  return string_;
}

const std::vector<JsonValue>& JsonValue::items() const {
  if (kind_ != Kind::kArray) throw Error("json: value is not an array");
  return array_;
}

const std::vector<std::pair<std::string, JsonValue>>& JsonValue::members()
    const {
  if (kind_ != Kind::kObject) throw Error("json: value is not an object");
  return object_;
}

const JsonValue* JsonValue::find(std::string_view key) const {
  if (kind_ != Kind::kObject) return nullptr;
  for (const auto& [k, v] : object_) {
    if (k == key) return &v;
  }
  return nullptr;
}

void JsonValue::push_back(JsonValue v) {
  if (kind_ != Kind::kArray) throw Error("json: push_back on non-array");
  array_.push_back(std::move(v));
}

void JsonValue::set(std::string key, JsonValue v) {
  if (kind_ != Kind::kObject) throw Error("json: set on non-object");
  object_.emplace_back(std::move(key), std::move(v));
}

std::string json_quote(std::string_view s) {
  std::string out;
  out.reserve(s.size() + 2);
  out.push_back('"');
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  out.push_back('"');
  return out;
}

namespace {

/// Integral doubles print as integers (CRCs, counters); everything else
/// as %.17g, which round-trips doubles exactly.
void append_number(std::string& out, double v) {
  char buf[32];
  if (std::isfinite(v) && v == std::floor(v) && std::fabs(v) < 1e15) {
    std::snprintf(buf, sizeof(buf), "%.0f", v);
  } else if (std::isfinite(v)) {
    std::snprintf(buf, sizeof(buf), "%.17g", v);
  } else {
    // JSON has no Infinity/NaN; null is the conventional stand-in.
    std::snprintf(buf, sizeof(buf), "null");
  }
  out += buf;
}

void append_newline_indent(std::string& out, int indent, int depth) {
  if (indent <= 0) return;
  out.push_back('\n');
  out.append(static_cast<std::size_t>(indent * depth), ' ');
}

}  // namespace

void JsonValue::dump_to(std::string& out, int indent, int depth) const {
  switch (kind_) {
    case Kind::kNull: out += "null"; break;
    case Kind::kBool: out += bool_ ? "true" : "false"; break;
    case Kind::kNumber: append_number(out, number_); break;
    case Kind::kString: out += json_quote(string_); break;
    case Kind::kArray: {
      out.push_back('[');
      for (std::size_t i = 0; i < array_.size(); ++i) {
        if (i > 0) out.push_back(',');
        append_newline_indent(out, indent, depth + 1);
        array_[i].dump_to(out, indent, depth + 1);
      }
      if (!array_.empty()) append_newline_indent(out, indent, depth);
      out.push_back(']');
      break;
    }
    case Kind::kObject: {
      out.push_back('{');
      for (std::size_t i = 0; i < object_.size(); ++i) {
        if (i > 0) out.push_back(',');
        append_newline_indent(out, indent, depth + 1);
        out += json_quote(object_[i].first);
        out += indent > 0 ? ": " : ":";
        object_[i].second.dump_to(out, indent, depth + 1);
      }
      if (!object_.empty()) append_newline_indent(out, indent, depth);
      out.push_back('}');
      break;
    }
  }
}

std::string JsonValue::dump(int indent) const {
  std::string out;
  dump_to(out, indent, 0);
  return out;
}

// -------------------------------------------------------------- parsing

namespace {

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  JsonValue parse_document() {
    JsonValue v = parse_value();
    skip_ws();
    if (pos_ != text_.size()) fail("trailing characters after document");
    return v;
  }

 private:
  [[noreturn]] void fail(const std::string& what) const {
    throw Error("json parse error at byte " + std::to_string(pos_) + ": " +
                what);
  }

  void skip_ws() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      ++pos_;
    }
  }

  char peek() {
    if (pos_ >= text_.size()) fail("unexpected end of input");
    return text_[pos_];
  }

  void expect(char c) {
    if (peek() != c) fail(std::string("expected '") + c + "'");
    ++pos_;
  }

  bool consume_literal(std::string_view lit) {
    if (text_.substr(pos_, lit.size()) != lit) return false;
    pos_ += lit.size();
    return true;
  }

  JsonValue parse_value() {
    skip_ws();
    const char c = peek();
    switch (c) {
      case '{':
      case '[': {
        // Containers recurse one stack frame per level; cap the depth so
        // hostile input (thousands of '[') fails cleanly instead of
        // overflowing the stack. No parse failure unwinds depth_ -- fail()
        // throws out of the whole parse, so the count dies with it.
        if (depth_ >= kMaxDepth) fail("nesting deeper than 256 levels");
        ++depth_;
        JsonValue v = c == '{' ? parse_object() : parse_array();
        --depth_;
        return v;
      }
      case '"': return JsonValue(parse_string());
      case 't':
        if (!consume_literal("true")) fail("invalid literal");
        return JsonValue(true);
      case 'f':
        if (!consume_literal("false")) fail("invalid literal");
        return JsonValue(false);
      case 'n':
        if (!consume_literal("null")) fail("invalid literal");
        return JsonValue();
      default: return parse_number();
    }
  }

  JsonValue parse_number() {
    const std::size_t start = pos_;
    if (peek() == '-') ++pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) != 0 ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-')) {
      ++pos_;
    }
    if (pos_ == start || (pos_ == start + 1 && text_[start] == '-')) {
      fail("invalid number");
    }
    const std::string token(text_.substr(start, pos_ - start));
    char* end = nullptr;
    const double v = std::strtod(token.c_str(), &end);
    if (end != token.c_str() + token.size()) fail("invalid number");
    return JsonValue(v);
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    while (true) {
      if (pos_ >= text_.size()) fail("unterminated string");
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (c != '\\') {
        out.push_back(c);
        continue;
      }
      if (pos_ >= text_.size()) fail("unterminated escape");
      const char esc = text_[pos_++];
      switch (esc) {
        case '"': out.push_back('"'); break;
        case '\\': out.push_back('\\'); break;
        case '/': out.push_back('/'); break;
        case 'b': out.push_back('\b'); break;
        case 'f': out.push_back('\f'); break;
        case 'n': out.push_back('\n'); break;
        case 'r': out.push_back('\r'); break;
        case 't': out.push_back('\t'); break;
        case 'u': {
          if (pos_ + 4 > text_.size()) fail("truncated \\u escape");
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f') code |= static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F') code |= static_cast<unsigned>(h - 'A' + 10);
            else fail("invalid \\u escape");
          }
          // UTF-8 encode the BMP code point (surrogate pairs are beyond
          // what manifests need; emit the replacement bytes verbatim).
          if (code < 0x80) {
            out.push_back(static_cast<char>(code));
          } else if (code < 0x800) {
            out.push_back(static_cast<char>(0xC0 | (code >> 6)));
            out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
          } else {
            out.push_back(static_cast<char>(0xE0 | (code >> 12)));
            out.push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
            out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
          }
          break;
        }
        default: fail("unknown escape");
      }
    }
  }

  JsonValue parse_array() {
    expect('[');
    JsonValue out = JsonValue::array();
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return out;
    }
    while (true) {
      out.push_back(parse_value());
      skip_ws();
      const char c = peek();
      ++pos_;
      if (c == ']') return out;
      if (c != ',') fail("expected ',' or ']'");
    }
  }

  JsonValue parse_object() {
    expect('{');
    JsonValue out = JsonValue::object();
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return out;
    }
    while (true) {
      skip_ws();
      std::string key = parse_string();
      skip_ws();
      expect(':');
      out.set(std::move(key), parse_value());
      skip_ws();
      const char c = peek();
      ++pos_;
      if (c == '}') return out;
      if (c != ',') fail("expected ',' or '}'");
    }
  }

  static constexpr int kMaxDepth = 256;

  std::string_view text_;
  std::size_t pos_ = 0;
  int depth_ = 0;
};

}  // namespace

JsonValue json_parse(std::string_view text) {
  return Parser(text).parse_document();
}

void json_flatten_numbers(
    const JsonValue& value, const std::string& prefix,
    std::vector<std::pair<std::string, double>>& out) {
  switch (value.kind()) {
    case JsonValue::Kind::kNumber:
      out.emplace_back(prefix, value.as_number());
      break;
    case JsonValue::Kind::kBool:
      out.emplace_back(prefix, value.as_bool() ? 1.0 : 0.0);
      break;
    case JsonValue::Kind::kArray: {
      std::size_t i = 0;
      for (const JsonValue& item : value.items()) {
        json_flatten_numbers(
            item, prefix + (prefix.empty() ? "" : "/") + std::to_string(i),
            out);
        ++i;
      }
      break;
    }
    case JsonValue::Kind::kObject:
      for (const auto& [key, member] : value.members()) {
        json_flatten_numbers(
            member, prefix + (prefix.empty() ? "" : "/") + key, out);
      }
      break;
    case JsonValue::Kind::kNull:
    case JsonValue::Kind::kString: break;
  }
}

}  // namespace dlcomp
