#pragma once

/// \file latency_recorder.hpp
/// Per-sample latency capture with tail-percentile reporting. The serving
/// subsystem records one sample per query (queueing + service time); the
/// training benches can record per-iteration step times the same way.
///
/// A recorder is not thread-safe: writers on a thread pool each keep
/// their own recorder and the coordinator merge()s them afterwards, which
/// keeps the record() hot path allocation- and lock-free (amortized).

#include <cstddef>
#include <span>
#include <string>
#include <vector>

#include "obs/metrics.hpp"

namespace dlcomp {

/// Percentile summary of a latency sample, all in seconds.
struct LatencySummary {
  std::size_t count = 0;
  double mean_s = 0.0;
  double max_s = 0.0;
  double p50_s = 0.0;
  double p95_s = 0.0;
  double p99_s = 0.0;
  double p999_s = 0.0;
};

class LatencyRecorder {
 public:
  /// Records one latency sample in seconds.
  void record(double seconds);

  /// Appends another recorder's samples (merge of worker-local recorders).
  void merge(const LatencyRecorder& other);

  [[nodiscard]] std::size_t count() const noexcept { return samples_.size(); }
  [[nodiscard]] std::span<const float> samples() const noexcept {
    return samples_;
  }

  /// Computes mean/max and nearest-rank p50/p95/p99/p99.9 (sorts a copy).
  /// The rank rule is the shared `nearest_rank()` estimator, so these
  /// agree with HistogramMetric quantiles up to bucket resolution.
  [[nodiscard]] LatencySummary summary() const;

  /// Replays every sample into a histogram metric — how a recorder
  /// enters a MetricsSnapshot (the serving report publishes its merged
  /// recorder this way).
  void fill_histogram(HistogramMetric& hist) const;

  /// Bucket layout used for latency histograms: 1 us .. ~67 s,
  /// x2 exponential.
  [[nodiscard]] static HistogramBuckets default_buckets() {
    return HistogramBuckets::exponential(1e-6, 2.0, 26);
  }

  void reset();

 private:
  std::vector<float> samples_;
  double sum_ = 0.0;
  double max_ = 0.0;
};

/// Formats a LatencySummary as "p50=1.23ms p95=... p99=... p99.9=..." for
/// one-line reporting (CLI and bench output).
std::string format_latency(const LatencySummary& summary);

}  // namespace dlcomp
