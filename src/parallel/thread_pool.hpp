#pragma once

/// \file thread_pool.hpp
/// Fixed-size worker pool with a blocking wait. This is the CPU analogue
/// of a GPU stream: the chunked compressor enqueues per-chunk codec work
/// here ("multi-threading for compression and decompression", Sec. III-E),
/// the benches compare pooled against serial execution, and the serving
/// simulator runs one inference-engine replica per worker on it.

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace dlcomp {

class ThreadPool {
 public:
  /// Spawns `threads` workers; 0 means std::thread::hardware_concurrency().
  explicit ThreadPool(unsigned threads = 0);

  /// Drains outstanding work, then joins the workers.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  [[nodiscard]] unsigned thread_count() const noexcept {
    return static_cast<unsigned>(workers_.size());
  }

  /// Enqueues a task. Tasks must not throw; exceptions terminate.
  void submit(std::function<void()> task);

  /// Blocks until every submitted task has finished.
  void wait_idle();

  /// Runs body(begin, end) over [begin, end) split into roughly
  /// thread_count()*4 blocks (but at least `grain` items each), blocking
  /// until all blocks complete. Safe to call concurrently with submit().
  void parallel_for(std::size_t begin, std::size_t end, std::size_t grain,
                    const std::function<void(std::size_t, std::size_t)>& body);

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::deque<std::function<void()>> queue_;
  std::mutex mutex_;
  std::condition_variable work_available_;
  std::condition_variable idle_;
  std::size_t in_flight_ = 0;
  bool stopping_ = false;
};

}  // namespace dlcomp
