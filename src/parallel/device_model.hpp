#pragma once

/// \file device_model.hpp
/// Models the GPU execution characteristics the CPU substrate cannot
/// measure directly: kernel launch overhead, device-memory copy bandwidth
/// and sustained codec throughput. The paper's Fig. 15 buffer-optimization
/// ablation and the Eq. (2) speedup model are evaluated against this
/// model; see DESIGN.md "Hardware / data substitutions".

#include <cstddef>
#include <string_view>

namespace dlcomp {

struct DeviceModel {
  /// Cost of launching one kernel (driver + dispatch); the buffer
  /// optimization exists precisely to amortize this (Sec. III-E).
  double kernel_launch_seconds = 5e-6;

  /// Device-to-device copy bandwidth, paid by the *non*-optimized path
  /// when compressed chunks are gathered into the send buffer.
  double d2d_copy_bytes_per_second = 600e9;

  /// Time to push `bytes` through a codec sustaining `codec_bps`, spread
  /// over `launches` kernel launches.
  [[nodiscard]] double codec_seconds(std::size_t launches, std::size_t bytes,
                                     double codec_bps) const noexcept {
    return static_cast<double>(launches) * kernel_launch_seconds +
           static_cast<double>(bytes) / codec_bps;
  }

  /// Time for a device-side memcpy of `bytes`.
  [[nodiscard]] double copy_seconds(std::size_t bytes) const noexcept {
    return static_cast<double>(bytes) / d2d_copy_bytes_per_second;
  }
};

/// Paper-calibrated sustained codec throughputs (bytes/second), taken from
/// the Fig. 11 discussion. Used only for *modelled* speedups; measured CPU
/// throughputs are always reported alongside, clearly labelled.
struct CodecThroughput {
  double compress_bps = 0.0;
  double decompress_bps = 0.0;
};

/// Throughputs reported in the paper (GB/s -> bytes/s):
///   vector-LZ 40.5 / 205.4, optimized Huffman 78.4 / 38.9,
///   nvCOMP Deflate 30.1 / 109.7, FZ-GPU 136 / 136.
/// Values for codecs the paper does not quote are taken from the cited
/// tools' own publications (cuSZ, nvCOMP-LZ4) and documented in
/// EXPERIMENTS.md.
CodecThroughput calibrated_throughput(std::string_view codec_name) noexcept;

}  // namespace dlcomp
