#pragma once

/// \file sim_clock.hpp
/// Per-rank simulated clock with named phase accounting. Compute phases
/// advance it by modelled kernel times, collectives advance it by modelled
/// wire times; the per-phase sums feed the Fig. 1 / Fig. 12 breakdown
/// benches.

#include <map>
#include <string>

namespace dlcomp {

class SimClock {
 public:
  /// Advances simulated time, attributing the interval to `phase`.
  void advance(const std::string& phase, double seconds) {
    now_ += seconds;
    phase_seconds_[phase] += seconds;
  }

  /// Current simulated time (seconds since reset).
  [[nodiscard]] double now() const noexcept { return now_; }

  /// Seconds attributed to one phase so far.
  [[nodiscard]] double phase_seconds(const std::string& phase) const {
    const auto it = phase_seconds_.find(phase);
    return it == phase_seconds_.end() ? 0.0 : it->second;
  }

  /// All phases and their accumulated seconds.
  [[nodiscard]] const std::map<std::string, double>& breakdown() const noexcept {
    return phase_seconds_;
  }

  void reset() {
    now_ = 0.0;
    phase_seconds_.clear();
  }

  /// Synchronization helper: jumps this clock forward to `t` if t is later
  /// (used when a collective releases all ranks at the slowest rank's
  /// arrival time). The skipped interval is attributed to `phase` (wait).
  void sync_to(const std::string& phase, double t) {
    if (t > now_) {
      phase_seconds_[phase] += t - now_;
      now_ = t;
    }
  }

 private:
  double now_ = 0.0;
  std::map<std::string, double> phase_seconds_;
};

}  // namespace dlcomp
