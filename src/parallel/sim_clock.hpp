#pragma once

/// \file sim_clock.hpp
/// Per-rank simulated clock with named phase accounting. Compute phases
/// advance it by modelled kernel times, collectives advance it by modelled
/// wire times; the per-phase sums feed the Fig. 1 / Fig. 12 breakdown
/// benches.
///
/// Overlap model (see DESIGN.md "Overlap and the simulated clock"): a
/// nonblocking collective that finishes "under" compute does not stall the
/// rank, so its seconds must not advance now() — they are recorded in a
/// separate *hidden* ledger via record_hidden(). Invariant the tests
/// assert: the exposed breakdown() sums to now() exactly on every rank,
/// with or without overlap; hidden_breakdown() is bookkeeping on the side.
///
/// Phase keys are stored in a transparent-hash map so the hot path
/// (advance/sync_to on every modelled kernel and collective, every
/// iteration) looks names up by string_view without materializing a
/// std::string; a phase allocates its key exactly once, on first use.

#include <functional>
#include <map>
#include <string>
#include <string_view>
#include <unordered_map>

#include "common/string_hash.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace dlcomp {

class SimClock {
 public:
  /// Advances simulated time, attributing the interval to `phase`.
  /// When the tracer is on and this clock is rank-bound, the interval is
  /// also emitted as a sim-timeline slice — the trace is fed by the same
  /// ledger entries breakdown() sums, so the two agree exactly.
  void advance(std::string_view phase, double seconds) {
    if (trace_rank_ >= 0 && trace_enabled()) [[unlikely]] {
      trace_sim_slice(trace_rank_, phase, now_, seconds);
    }
    now_ += seconds;
    accumulate(phase_seconds_, phase, seconds);
  }

  /// Current simulated time (seconds since reset).
  [[nodiscard]] double now() const noexcept { return now_; }

  /// Seconds attributed to one phase so far (exposed time only).
  [[nodiscard]] double phase_seconds(std::string_view phase) const {
    const auto it = phase_seconds_.find(phase);
    return it == phase_seconds_.end() ? 0.0 : it->second;
  }

  /// All phases and their accumulated clock-advancing seconds, sorted by
  /// name. Sums to now() exactly; overlapped communication lives in
  /// hidden_breakdown() instead.
  [[nodiscard]] std::map<std::string, double> breakdown() const {
    return {phase_seconds_.begin(), phase_seconds_.end()};
  }

  /// Records communication seconds that elapsed while this rank was busy
  /// computing: the interval was already paid for by the compute phase,
  /// so it must not advance now() — it is "hidden" in the Fig. 12 sense.
  void record_hidden(std::string_view phase, double seconds) {
    accumulate(hidden_seconds_, phase, seconds);
  }

  /// Hidden (overlapped) seconds recorded against one phase.
  [[nodiscard]] double hidden_seconds(std::string_view phase) const {
    const auto it = hidden_seconds_.find(phase);
    return it == hidden_seconds_.end() ? 0.0 : it->second;
  }

  /// Hidden-ledger counterpart of breakdown(); not part of now().
  [[nodiscard]] std::map<std::string, double> hidden_breakdown() const {
    return {hidden_seconds_.begin(), hidden_seconds_.end()};
  }

  void reset() {
    now_ = 0.0;
    phase_seconds_.clear();
    hidden_seconds_.clear();
  }

  /// Synchronization helper: jumps this clock forward to `t` if t is later
  /// (used when a collective releases all ranks at the slowest rank's
  /// arrival time). The skipped interval is attributed to `phase` (wait).
  void sync_to(std::string_view phase, double t) {
    if (t > now_) {
      if (trace_rank_ >= 0 && trace_enabled()) [[unlikely]] {
        trace_sim_slice(trace_rank_, phase, now_, t - now_);
      }
      accumulate(phase_seconds_, phase, t - now_);
      now_ = t;
    }
  }

  /// Binds this clock to a rank's sim-timeline track; advance/sync_to
  /// then mirror every ledger entry into the tracer. -1 (default) keeps
  /// the clock untraced. Survives reset().
  void set_trace_rank(int rank) noexcept { trace_rank_ = rank; }
  [[nodiscard]] int trace_rank() const noexcept { return trace_rank_; }

  /// Publishes both ledgers into a metrics snapshot as sorted key/value
  /// pairs: "<prefix><phase>" for exposed seconds, "<prefix>hidden/<phase>"
  /// for hidden, plus "<prefix>makespan" = now(). Consumers (bench JSON,
  /// TrainingResult) read phase totals from here instead of re-deriving
  /// them from strings.
  void export_to(MetricsSnapshot& snap, std::string_view prefix) const {
    const std::string pre(prefix);
    for (const auto& [phase, seconds] : phase_seconds_) {
      snap.set(pre + phase, seconds);
    }
    for (const auto& [phase, seconds] : hidden_seconds_) {
      snap.set(pre + "hidden/" + phase, seconds);
    }
    snap.set(pre + "makespan", now_);
  }

 private:
  using PhaseMap = std::unordered_map<std::string, double,
                                      TransparentStringHash, std::equal_to<>>;

  static void accumulate(PhaseMap& map, std::string_view phase, double seconds) {
    const auto it = map.find(phase);
    if (it == map.end()) {
      map.emplace(std::string(phase), seconds);
    } else {
      it->second += seconds;
    }
  }

  double now_ = 0.0;
  int trace_rank_ = -1;
  PhaseMap phase_seconds_;
  PhaseMap hidden_seconds_;
};

}  // namespace dlcomp
