#include "parallel/thread_pool.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace dlcomp {

ThreadPool::ThreadPool(unsigned threads) {
  if (threads == 0) {
    threads = std::max(1u, std::thread::hardware_concurrency());
  }
  workers_.reserve(threads);
  for (unsigned i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard lock(mutex_);
    stopping_ = true;
  }
  work_available_.notify_all();
  for (auto& worker : workers_) worker.join();
}

void ThreadPool::submit(std::function<void()> task) {
  DLCOMP_CHECK(task != nullptr);
  {
    std::lock_guard lock(mutex_);
    DLCOMP_CHECK_MSG(!stopping_, "submit after shutdown");
    queue_.push_back(std::move(task));
    ++in_flight_;
  }
  work_available_.notify_one();
}

void ThreadPool::wait_idle() {
  std::unique_lock lock(mutex_);
  idle_.wait(lock, [this] { return in_flight_ == 0; });
}

void ThreadPool::parallel_for(
    std::size_t begin, std::size_t end, std::size_t grain,
    const std::function<void(std::size_t, std::size_t)>& body) {
  if (begin >= end) return;
  grain = std::max<std::size_t>(grain, 1);
  const std::size_t total = end - begin;
  const std::size_t target_blocks = static_cast<std::size_t>(thread_count()) * 4;
  const std::size_t block =
      std::max(grain, (total + target_blocks - 1) / std::max<std::size_t>(target_blocks, 1));

  std::mutex done_mutex;
  std::condition_variable done_cv;
  std::size_t outstanding = 0;

  for (std::size_t lo = begin; lo < end; lo += block) {
    const std::size_t hi = std::min(end, lo + block);
    {
      std::lock_guard lock(done_mutex);
      ++outstanding;
    }
    submit([&, lo, hi] {
      body(lo, hi);
      std::lock_guard lock(done_mutex);
      if (--outstanding == 0) done_cv.notify_all();
    });
  }

  std::unique_lock lock(done_mutex);
  done_cv.wait(lock, [&] { return outstanding == 0; });
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock lock(mutex_);
      work_available_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) {
        if (stopping_) return;
        continue;
      }
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
    {
      std::lock_guard lock(mutex_);
      if (--in_flight_ == 0) idle_.notify_all();
    }
  }
}

}  // namespace dlcomp
