#include "parallel/device_model.hpp"

namespace dlcomp {

CodecThroughput calibrated_throughput(std::string_view codec_name) noexcept {
  const std::string_view name = codec_name;
  constexpr double GB = 1e9;
  // Paper-quoted numbers (Sec. IV-C).
  if (name == "vector-lz") return {40.5 * GB, 205.4 * GB};
  if (name == "huffman") return {78.4 * GB, 38.9 * GB};
  if (name == "deflate-like") return {30.1 * GB, 109.7 * GB};
  if (name == "fz-gpu-like") return {136.0 * GB, 136.0 * GB};
  // From the cited tools' publications (not quoted in this paper).
  if (name == "generic-lz") return {60.0 * GB, 90.0 * GB};   // nvCOMP-LZ4 class
  if (name == "cusz-like") return {95.0 * GB, 80.0 * GB};    // cuSZ class
  if (name == "zfp-like") return {80.0 * GB, 80.0 * GB};     // cuZFP class
  if (name == "fp16" || name == "fp8") return {900.0 * GB, 900.0 * GB};
  if (name == "hybrid") return {55.0 * GB, 90.0 * GB};  // mix of the two parts
  return {50.0 * GB, 50.0 * GB};
}

}  // namespace dlcomp
