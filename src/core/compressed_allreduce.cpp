#include "core/compressed_allreduce.hpp"

#include <vector>

#include "common/error.hpp"
#include "common/timer.hpp"
#include "obs/trace.hpp"

namespace dlcomp {

CompressedAllReduce::CompressedAllReduce(CompressedAllReduceConfig config)
    : config_(std::move(config)) {
  if (config_.codec != nullptr && !config_.throughput.has_value()) {
    config_.throughput =
        calibrated_throughput(config_.codec->name());
  }
}

AllReduceStats CompressedAllReduce::reduce(Communicator& comm,
                                           std::span<float> data,
                                           const std::string& phase) const {
  DLCOMP_TRACE_SPAN("allreduce");
  AllReduceStats stats;
  stats.raw_bytes = data.size_bytes();

  if (config_.codec == nullptr) {
    comm.all_reduce_sum(data, phase);
    stats.wire_bytes = data.size_bytes();
    return stats;
  }
  const auto world = static_cast<std::size_t>(comm.world());
  const PhaseNames& names = interned_phase(phase);

  // Compress the local contribution once; the same stream goes to every
  // peer (an all-gather expressed over the variable all-to-all).
  DLCOMP_TRACE_INSTANT("allreduce/compress");
  WallTimer compress_timer;
  CompressParams params;
  params.error_bound = config_.relative_eb;
  params.eb_mode = EbMode::kRangeRelative;
  std::vector<std::byte>& stream = scratch_.stream;
  stream.clear();
  config_.codec->compress(data, params, stream, scratch_.workspace);
  stats.compress_wall_seconds = compress_timer.seconds();
  stats.wire_bytes = stream.size() * (world - 1);
  stats.compression_ratio =
      static_cast<double>(stats.raw_bytes) / static_cast<double>(stream.size());

  if (config_.charge_modeled_time) {
    comm.advance_compute(names.compress,
                         config_.device.codec_seconds(
                             1, stats.raw_bytes, config_.throughput->compress_bps));
  }

  std::vector<std::vector<std::byte>> send(world, stream);
  const auto received = comm.all_to_all_v(send, phase);

  // Decompress every contribution (own stream included: all replicas must
  // see identical post-compression values) and reduce in rank order.
  WallTimer decompress_timer;
  scratch_.recon.resize(data.size());
  scratch_.acc.assign(data.size(), 0.0);
  std::vector<float>& recon = scratch_.recon;
  std::vector<double>& acc = scratch_.acc;
  for (std::size_t src = 0; src < world; ++src) {
    config_.codec->decompress(received[src], recon, scratch_.workspace);
    for (std::size_t i = 0; i < data.size(); ++i) {
      acc[i] += static_cast<double>(recon[i]);
    }
  }
  stats.decompress_wall_seconds = decompress_timer.seconds();
  for (std::size_t i = 0; i < data.size(); ++i) {
    data[i] = static_cast<float>(acc[i]);
  }

  if (config_.charge_modeled_time) {
    comm.advance_compute(
        names.decompress,
        config_.device.codec_seconds(1, stats.raw_bytes * world,
                                     config_.throughput->decompress_bps));
  }
  return stats;
}

}  // namespace dlcomp
