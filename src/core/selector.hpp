#pragma once

/// \file selector.hpp
/// Offline compressor selection (paper Sec. III-D, Algorithm 2). For each
/// table, candidate codecs are evaluated on sampled data and ranked by
/// the theoretical end-to-end speedup of Eq. (2):
///
///   speedup = 1 / ( 1/CR + B * (1/Tc + 1/Td) )
///
/// where CR is the measured compression ratio on the sample, B the
/// network bandwidth, and Tc/Td the codec's compression/decompression
/// throughputs. Throughputs can come from the calibrated GPU table
/// (default; see DeviceModel) or from the measured CPU timings.

#include <string>
#include <vector>

#include "comm/network_model.hpp"
#include "compress/compressor.hpp"
#include "parallel/device_model.hpp"

namespace dlcomp {

/// Eq. (2). All rates in bytes/second.
[[nodiscard]] double eq2_speedup(double compression_ratio,
                                 double network_bandwidth_bps,
                                 double compress_bps,
                                 double decompress_bps);

/// One candidate's evaluation on a sample.
struct CandidateScore {
  std::string codec;
  double compression_ratio = 0.0;
  double est_speedup = 0.0;
  double compress_bps = 0.0;    ///< throughput used in Eq. (2)
  double decompress_bps = 0.0;
  double measured_compress_bps = 0.0;   ///< CPU-measured, reported alongside
  double measured_decompress_bps = 0.0;
};

struct SelectionResult {
  std::vector<CandidateScore> candidates;  ///< in input order
  std::size_t best_index = 0;

  [[nodiscard]] const CandidateScore& best() const {
    return candidates.at(best_index);
  }
};

struct SelectorConfig {
  NetworkModel network;
  /// Use the paper-calibrated GPU throughputs in Eq. (2) (default). When
  /// false, the measured CPU throughputs are used instead -- useful for
  /// pure-CPU deployments of this library.
  bool use_calibrated_throughput = true;
};

class CompressorSelector {
 public:
  explicit CompressorSelector(SelectorConfig config) : config_(config) {}

  /// Runs every candidate codec on the sample and scores it with Eq. (2).
  [[nodiscard]] SelectionResult select(
      std::span<const float> sample, const CompressParams& params,
      std::span<const std::string_view> candidate_names) const;

 private:
  SelectorConfig config_;
};

}  // namespace dlcomp
