#include "core/auto_tuner.hpp"

#include <algorithm>

#include "common/error.hpp"
#include "compress/registry.hpp"

namespace dlcomp {

namespace {

/// One probe training run; returns held-out accuracy and the forward CR.
AutoTunerResult::Probe probe_run(const BatchSource& dataset,
                                 const AutoTunerConfig& config,
                                 double error_bound) {
  const DatasetSpec& spec = dataset.spec();
  DlrmModel model(spec, config.model, config.seed);

  const Compressor* codec =
      error_bound > 0.0 ? &get_compressor(config.codec) : nullptr;

  std::uint64_t raw = 0;
  std::uint64_t wire = 0;
  DlrmModel::TableTransform hook;
  if (codec != nullptr) {
    hook = [&](std::size_t, Matrix& lookups) {
      CompressParams params;
      params.error_bound = error_bound;
      params.vector_dim = spec.embedding_dim;
      std::vector<std::byte> stream;
      const auto stats = codec->compress(lookups.flat(), params, stream);
      codec->decompress(stream, lookups.flat());
      raw += stats.input_bytes;
      wire += stats.output_bytes;
    };
  }

  for (std::size_t i = 0; i < config.probe_iterations; ++i) {
    const SampleBatch batch = dataset.make_batch(config.probe_batch, i);
    (void)model.train_step(batch, hook);
  }

  AutoTunerResult::Probe probe;
  probe.error_bound = error_bound;
  probe.accuracy =
      model.evaluate_stream(dataset, config.probe_batch, config.eval_batches)
          .accuracy;
  probe.compression_ratio =
      wire > 0 ? static_cast<double>(raw) / static_cast<double>(wire) : 1.0;
  return probe;
}

}  // namespace

AutoTunerResult auto_select_global_eb(const BatchSource& dataset,
                                      const AutoTunerConfig& config) {
  DLCOMP_CHECK_MSG(!config.candidates.empty(), "no candidate bounds");
  DLCOMP_CHECK_MSG(
      std::is_sorted(config.candidates.begin(), config.candidates.end(),
                     std::greater<double>{}),
      "candidates must be sorted descending (largest bound first)");

  AutoTunerResult result;
  result.baseline_accuracy = probe_run(dataset, config, 0.0).accuracy;

  // Largest-first: the first candidate inside tolerance maximizes the
  // compression ratio among acceptable bounds.
  for (const double eb : config.candidates) {
    AutoTunerResult::Probe probe = probe_run(dataset, config, eb);
    probe.within_tolerance =
        probe.accuracy >= result.baseline_accuracy - config.accuracy_tolerance;
    result.probes.push_back(probe);
    if (probe.within_tolerance && result.selected_eb == 0.0) {
      result.selected_eb = eb;
      break;  // paper semantics: take the most generous acceptable bound
    }
  }
  if (result.selected_eb == 0.0) {
    // Nothing passed: fall back to the tightest candidate.
    result.selected_eb = config.candidates.back();
  }
  return result;
}

double OnlineEbController::observe(double train_loss) {
  ++iter_;
  if (!initialized_) {
    fast_ema_ = train_loss;
    slow_ema_ = train_loss;
    initialized_ = true;
    return scale_;
  }
  fast_ema_ += config_.ema_alpha * (train_loss - fast_ema_);
  slow_ema_ += 0.2 * config_.ema_alpha * (train_loss - slow_ema_);

  if (iter_ > config_.warmup_iters &&
      fast_ema_ > slow_ema_ * config_.trigger_ratio) {
    // Compressed training is drifting above its own trend: halve the
    // bound multiplier and restart the comparison window.
    scale_ = std::max(config_.min_scale, scale_ * 0.5);
    slow_ema_ = fast_ema_;
    ++triggers_;
  } else {
    scale_ = std::min(1.0, scale_ * config_.recovery_per_step);
  }
  return scale_;
}

}  // namespace dlcomp
