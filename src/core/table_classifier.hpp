#pragma once

/// \file table_classifier.hpp
/// Algorithm 1's EMBClassification: maps a table's Homogenization Index
/// to an error-bound class. Tables that homogenize heavily (high Eq.-1
/// index: quantization collapses many distinct vectors) are
/// information-fragile and get SMALL error bounds; tables whose vectors
/// survive quantization distinct get LARGE bounds and donate compression
/// ratio.

#include "core/error_bound.hpp"
#include "core/homo_index.hpp"

namespace dlcomp {

struct ClassifierThresholds {
  /// Above this Eq.-1 homo index the table is fragile -> small EB
  /// (Algorithm 1's S_EMB_hindex).
  double small_threshold = 0.40;
  /// Below this Eq.-1 homo index the table is robust -> large EB
  /// (Algorithm 1's L_EMB_hindex).
  double large_threshold = 0.10;
};

/// Classifies one table from its homo index.
[[nodiscard]] EbClass classify_table(double homo_index,
                                     const ClassifierThresholds& thresholds);

/// Convenience overload.
[[nodiscard]] inline EbClass classify_table(
    const HomoIndexResult& result, const ClassifierThresholds& thresholds) {
  return classify_table(result.homo_index, thresholds);
}

}  // namespace dlcomp
