#pragma once

/// \file compute_model.hpp
/// Calibrated GPU compute-time model for the non-communication phases of
/// a DLRM training iteration. The CPU substrate executes the real math
/// but at CPU speed; the simulated clocks are advanced by these modelled
/// times instead, so the Fig. 1 / Fig. 12 breakdowns reflect an
/// A100-class device against the 4 GB/s fabric the paper evaluates.
/// Constants are effective (not peak) rates for small-batch kernels; see
/// EXPERIMENTS.md for the calibration notes.

#include <cstddef>
#include <span>

namespace dlcomp {

struct ComputeModel {
  /// Effective GEMM throughput for the small, narrow DLRM MLP layers.
  double flops_per_second = 5e12;
  /// Effective HBM bandwidth for gather/scatter-style kernels.
  double hbm_bytes_per_second = 1.0e12;
  /// Fixed per-kernel overhead folded into every phase.
  double kernel_overhead_seconds = 4e-6;

  /// Forward time of an MLP with layer widths `dims` on `batch` rows
  /// (2*flops). Backward is ~2x forward; callers charge it separately.
  [[nodiscard]] double mlp_seconds(std::size_t batch,
                                   std::span<const std::size_t> dims) const noexcept {
    double flops = 0.0;
    for (std::size_t l = 0; l + 1 < dims.size(); ++l) {
      flops += 2.0 * static_cast<double>(batch) *
               static_cast<double>(dims[l]) * static_cast<double>(dims[l + 1]);
    }
    return kernel_overhead_seconds + flops / flops_per_second;
  }

  /// Dot-product interaction among (features+1) vectors of width dim.
  [[nodiscard]] double interaction_seconds(std::size_t batch,
                                           std::size_t features,
                                           std::size_t dim) const noexcept {
    const double n = static_cast<double>(features + 1);
    const double flops =
        static_cast<double>(batch) * n * n * static_cast<double>(dim);
    return kernel_overhead_seconds + flops / flops_per_second;
  }

  /// Bandwidth-bound gather/scatter (embedding lookup or update) moving
  /// `bytes` through HBM (read + write).
  [[nodiscard]] double memory_bound_seconds(std::size_t bytes) const noexcept {
    return kernel_overhead_seconds +
           2.0 * static_cast<double>(bytes) / hbm_bytes_per_second;
  }
};

}  // namespace dlcomp
