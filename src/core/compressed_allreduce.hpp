#pragma once

/// \file compressed_allreduce.hpp
/// Compression-assisted all-reduce for the dense (MLP) gradients -- the
/// direction the paper's related work explores (Zhou et al.: compression
/// assisted allgather/reduce-scatter) and its conclusion motivates: once
/// the embedding all-to-all is compressed, the dense all-reduce becomes
/// the next wire bottleneck.
///
/// Scheme: every rank compresses its local buffer once (range-relative
/// bound), the compressed payloads move via all-gather (realized over the
/// variable all-to-all), and each rank decompresses and reduces locally.
/// Wire volume is (P-1) x compressed versus the ring's ~2 x raw, so the
/// scheme wins when the compression ratio exceeds ~(P-1)/2 -- the bench
/// bench_ablation_compressed_allreduce sweeps the crossover.
///
/// Error: each rank's contribution carries at most `eb` absolute error
/// (resolved range-relative), so the reduced sum deviates by at most
/// P * eb per element. Determinism: every rank decompresses the same P
/// streams and reduces in rank order, so replicas stay bitwise identical.

#include <optional>
#include <string>
#include <vector>

#include "comm/communicator.hpp"
#include "compress/compressor.hpp"
#include "compress/workspace.hpp"
#include "parallel/device_model.hpp"

namespace dlcomp {

struct CompressedAllReduceConfig {
  /// Codec for the gradient payloads; nullptr falls back to the plain
  /// ring all-reduce (useful for A/B runs through one call site).
  const Compressor* codec = nullptr;
  /// Range-relative bound applied to each rank's buffer.
  double relative_eb = 0.01;
  DeviceModel device;
  std::optional<CodecThroughput> throughput;
  bool charge_modeled_time = true;
};

struct AllReduceStats {
  std::size_t raw_bytes = 0;       ///< buffer size
  std::size_t wire_bytes = 0;      ///< compressed bytes this rank sent
  double compression_ratio = 1.0;
  double compress_wall_seconds = 0.0;
  double decompress_wall_seconds = 0.0;
};

class CompressedAllReduce {
 public:
  explicit CompressedAllReduce(CompressedAllReduceConfig config);

  /// In-place sum across ranks (like Communicator::all_reduce_sum but
  /// with lossy-compressed transport). All ranks must pass equal sizes.
  /// Reuses instance-held scratch: one reduce at a time per instance
  /// (the SPMD pattern gives each rank its own).
  AllReduceStats reduce(Communicator& comm, std::span<float> data,
                        const std::string& phase) const;

 private:
  CompressedAllReduceConfig config_;
  /// Reused across reduce() calls (logically const, never observable).
  struct Scratch {
    CompressionWorkspace workspace;
    std::vector<std::byte> stream;
    std::vector<float> recon;
    std::vector<double> acc;
  };
  mutable Scratch scratch_;
};

}  // namespace dlcomp
