#include "core/trainer.hpp"

#include <atomic>
#include <cmath>
#include <cstdio>
#include <filesystem>
#include <memory>
#include <thread>

#include <mutex>

#include "ckpt/checkpoint.hpp"
#include "common/error.hpp"
#include "common/timer.hpp"
#include "compress/registry.hpp"
#include "dlrm/interaction.hpp"
#include "obs/obs_server.hpp"
#include "obs/trace.hpp"

namespace dlcomp {

namespace {

/// Per-rank mutable state living for the whole training run.
struct RankState {
  std::unique_ptr<Mlp> bottom;
  std::unique_ptr<Mlp> top;
  std::vector<std::size_t> owned_tables;
  // Flat gradient buffer reused across iterations for the MLP all-reduce.
  std::vector<float> grad_scratch;
};

std::vector<std::size_t> bottom_dims(const DatasetSpec& spec,
                                     const DlrmConfig& model) {
  std::vector<std::size_t> dims{spec.num_dense};
  dims.insert(dims.end(), model.bottom_hidden.begin(), model.bottom_hidden.end());
  dims.push_back(spec.embedding_dim);
  return dims;
}

std::vector<std::size_t> top_dims(const DatasetSpec& spec,
                                  const DlrmConfig& model) {
  std::vector<std::size_t> dims{
      DotInteraction::output_dim(spec.num_tables(), spec.embedding_dim)};
  dims.insert(dims.end(), model.top_hidden.begin(), model.top_hidden.end());
  dims.push_back(1);
  return dims;
}

/// Flattens MLP gradients into state.grad_scratch (the all-reduce send
/// buffer, reused across iterations).
void pack_mlp_grads(RankState& state) {
  auto views_b = state.bottom->grad_views();
  auto views_t = state.top->grad_views();
  std::size_t total = 0;
  for (const auto& v : views_b) total += v.size();
  for (const auto& v : views_t) total += v.size();
  state.grad_scratch.resize(total);

  std::size_t cursor = 0;
  auto pack = [&](std::span<float> v) {
    std::copy(v.begin(), v.end(), state.grad_scratch.begin() + cursor);
    cursor += v.size();
  };
  for (auto& v : views_b) pack(v);
  for (auto& v : views_t) pack(v);
}

/// Writes the reduced gradients back into the MLPs, averaged by world.
void unpack_mlp_grads(RankState& state, int world) {
  auto views_b = state.bottom->grad_views();
  auto views_t = state.top->grad_views();
  const float inv_world = 1.0f / static_cast<float>(world);
  std::size_t cursor = 0;
  auto unpack = [&](std::span<float> v) {
    for (std::size_t i = 0; i < v.size(); ++i) {
      v[i] = state.grad_scratch[cursor + i] * inv_world;
    }
    cursor += v.size();
  };
  for (auto& v : views_b) unpack(v);
  for (auto& v : views_t) unpack(v);
}

/// Serial pack + all-reduce + unpack (the non-overlapped schedule).
void allreduce_mlp_grads(Communicator& comm, RankState& state) {
  pack_mlp_grads(state);
  comm.all_reduce_sum(state.grad_scratch, phases::kAllReduce);
  unpack_mlp_grads(state, comm.world());
}

/// A phase counts as communication if it belongs to one of the collective
/// families and is not a codec slice (compress/decompress are compute).
bool is_comm_phase(const std::string& phase) {
  const bool comm_family = phase.rfind(phases::kAllToAllFwd, 0) == 0 ||
                           phase.rfind(phases::kAllToAllBwd, 0) == 0 ||
                           phase.rfind(phases::kAllReduce, 0) == 0;
  return comm_family && phase.find("/compress") == std::string::npos &&
         phase.find("/decompress") == std::string::npos;
}

/// Rank-0 held-out evaluation using its MLP replicas and the shared
/// tables (no communication: shared memory makes every table visible).
LossResult evaluate_full(Mlp& bottom, Mlp& top,
                         std::span<EmbeddingTable> tables,
                         const DatasetSpec& spec,
                         const BatchSource& dataset,
                         std::size_t batch_size, std::size_t batches) {
  LossResult total;
  std::vector<Matrix> lookups(tables.size());
  for (std::size_t i = 0; i < batches; ++i) {
    const SampleBatch batch = dataset.make_eval_batch(batch_size, i);
    const Matrix& z0 = bottom.forward(batch.dense);
    for (std::size_t t = 0; t < tables.size(); ++t) {
      lookups[t].resize(batch_size, spec.embedding_dim);
      tables[t].lookup(batch.indices[t], lookups[t]);
    }
    Matrix feat(batch_size,
                DotInteraction::output_dim(tables.size(), spec.embedding_dim));
    DotInteraction::forward(z0, lookups, feat);
    const Matrix& logits = top.forward(feat);
    const LossResult r = bce_with_logits(logits.flat(), batch.labels);
    total.loss += r.loss;
    total.accuracy += r.accuracy;
  }
  total.loss /= static_cast<double>(batches);
  total.accuracy /= static_cast<double>(batches);
  return total;
}

}  // namespace

double TrainingResult::exposed_comm_seconds() const {
  double total = 0.0;
  for (const auto& [phase, seconds] : phase_seconds) {
    if (is_comm_phase(phase)) total += seconds;
  }
  return total;
}

double TrainingResult::hidden_comm_seconds() const {
  double total = 0.0;
  for (const auto& [phase, seconds] : hidden_phase_seconds) {
    if (is_comm_phase(phase)) total += seconds;
  }
  return total;
}

HybridParallelTrainer::HybridParallelTrainer(TrainerConfig config)
    : config_(std::move(config)) {
  DLCOMP_CHECK(config_.world >= 1);
  DLCOMP_CHECK(config_.iterations >= 1);
}

TrainingResult HybridParallelTrainer::train(const BatchSource& dataset) {
  const DatasetSpec& spec = dataset.spec();
  const std::size_t global_batch =
      config_.global_batch > 0 ? config_.global_batch : spec.default_batch;
  const auto world = static_cast<std::size_t>(config_.world);
  DLCOMP_CHECK_MSG(global_batch % world == 0,
                   "global batch " << global_batch
                                   << " must divide by world " << world);
  const std::size_t local_batch = global_batch / world;
  const std::size_t dim = spec.embedding_dim;
  const std::size_t num_tables = spec.num_tables();

  const Compressor* codec = config_.compression.codec.empty()
                                ? nullptr
                                : &get_compressor(config_.compression.codec);
  const ErrorBoundScheduler scheduler(config_.compression.scheduler);

  // Per-table base error bounds.
  std::vector<double> table_eb = config_.compression.table_eb;
  if (table_eb.empty()) {
    table_eb.assign(num_tables, config_.compression.global_eb);
  }
  DLCOMP_CHECK(table_eb.size() == num_tables);
  std::vector<HybridChoice> table_choice = config_.compression.table_choice;
  if (table_choice.empty()) {
    table_choice.assign(num_tables, HybridChoice::kAuto);
  }

  // Shared state: embedding tables (owner-rank writes only), one
  // optimizer per table (touched only by the owning rank, hoisted out of
  // the rank lambda so checkpoints can cover every table's state), and
  // the result aggregation slots.
  std::vector<EmbeddingTable> tables = make_embedding_set(spec, config_.seed);
  std::vector<EmbeddingOptimizer> optimizers;
  optimizers.reserve(num_tables);
  for (std::size_t t = 0; t < num_tables; ++t) {
    optimizers.emplace_back(config_.model.embedding_optimizer,
                            config_.model.learning_rate);
  }
  ThreadPool codec_pool(std::min<unsigned>(4, std::thread::hardware_concurrency()));

  const auto bdims = bottom_dims(spec, config_.model);
  const auto tdims = top_dims(spec, config_.model);

  // Identical initial MLP replicas for every rank (and the restore /
  // snapshot target; ranks copy these).
  Rng mlp_rng(config_.seed);
  auto rng_b = mlp_rng.fork({0xB0});
  auto rng_t = mlp_rng.fork({0x70});
  Mlp init_bottom(bdims, rng_b);
  Mlp init_top(tdims, rng_t);

  // Points a ModelState at the shared training state.
  const auto shared_state = [&](std::uint64_t iteration) {
    ModelState state;
    state.iteration = iteration;
    state.seed = config_.seed;
    state.bottom = &init_bottom;
    state.top = &init_top;
    for (std::size_t t = 0; t < num_tables; ++t) {
      state.tables.push_back(&tables[t].weights());
      state.opt_state.push_back(&optimizers[t].accumulator());
    }
    state.opt_kind = config_.model.embedding_optimizer;
    return state;
  };

  // ---- Resume: restore tables, optimizer state, MLPs and the iteration
  // counter before the cluster starts.
  std::size_t start_iter = 0;
  if (!config_.checkpoint.resume_from.empty()) {
    const LoadedCheckpoint loaded =
        CheckpointReader(&codec_pool).load(config_.checkpoint.resume_from);
    DLCOMP_CHECK_MSG(
        loaded.opt_kind == config_.model.embedding_optimizer,
        "checkpoint optimizer kind does not match the trainer config");
    apply_model_state(loaded, shared_state(0));
    start_iter = static_cast<std::size_t>(loaded.header.iteration);
    DLCOMP_LOG_INFO("train", "resumed from checkpoint",
                    {"path", config_.checkpoint.resume_from},
                    {"iteration", start_iter});
    DLCOMP_CHECK_MSG(start_iter <= config_.iterations,
                     "checkpoint is at iteration "
                         << start_iter << ", config trains only "
                         << config_.iterations);
  }

  // ---- Periodic snapshotting (rank 0, inside a cluster barrier).
  std::unique_ptr<CheckpointWriter> ckpt_writer;
  if (!config_.checkpoint.directory.empty()) {
    std::filesystem::create_directories(config_.checkpoint.directory);
    CheckpointOptions options;
    options.codec = config_.checkpoint.codec;
    options.table_eb = config_.checkpoint.table_eb;
    options.global_eb = config_.checkpoint.global_eb;
    options.pool = &codec_pool;
    ckpt_writer = std::make_unique<CheckpointWriter>(std::move(options));
  }

  TrainingResult result;
  result.start_iteration = start_iter;
  std::atomic<std::uint64_t> fwd_raw{0};
  std::atomic<std::uint64_t> fwd_wire{0};
  std::atomic<std::uint64_t> bwd_raw{0};
  std::atomic<std::uint64_t> bwd_wire{0};
  std::atomic<std::uint64_t> steady_grow{0};

  // Per-table byte totals from the tagged all-to-all chunks, merged
  // across ranks after each rank's loop ends.
  std::mutex tag_mutex;
  std::vector<CompressedAllToAll::TagBytes> fwd_tag_bytes;
  std::vector<CompressedAllToAll::TagBytes> bwd_tag_bytes;
  // `lo` selects the direction's tag range: forward chunks are tagged
  // [0, num_tables), backward ones [num_tables, 2*num_tables).
  const auto merge_tags = [num_tables](
                              std::vector<CompressedAllToAll::TagBytes>& into,
                              std::vector<CompressedAllToAll::TagBytes> from,
                              std::size_t lo) {
    const std::size_t hi = std::min(from.size(), lo + num_tables);
    for (std::size_t t = lo; t < hi; ++t) {
      if (into.size() <= t - lo) into.resize(t - lo + 1);
      into[t - lo].raw += from[t].raw;
      into[t - lo].wire += from[t].wire;
    }
  };

  // Rank 0's per-iteration wall times (1 us .. ~2 s exponential buckets).
  HistogramMetric iter_wall_hist(HistogramBuckets::exponential(1e-6, 2.0, 22));

  if (config_.status != nullptr) {
    config_.status->set_total_iterations(config_.iterations);
    config_.status->set_state("training");
    config_.status->set_ready(true);
  }

  WallTimer wall;
  Cluster cluster(config_.world, config_.network);
  cluster.run([&](Communicator& comm) {
    const auto rank = static_cast<std::size_t>(comm.rank());

    // --- Per-rank setup: identical MLP replicas (copies of the shared
    // initial -- or restored -- state) and the table ownership map; the
    // per-table optimizers live in shared scope, touched only by owners.
    RankState state;
    state.bottom = std::make_unique<Mlp>(init_bottom);
    state.top = std::make_unique<Mlp>(init_top);
    for (std::size_t t = rank; t < num_tables; t += world) {
      state.owned_tables.push_back(t);
    }
    // Ownership map for every rank (to size receives).
    std::vector<std::vector<std::size_t>> owned_by(world);
    for (std::size_t t = 0; t < num_tables; ++t) {
      owned_by[t % world].push_back(t);
    }

    CompressedAllToAllConfig a2a_config;
    a2a_config.codec = codec;
    a2a_config.pool = &codec_pool;
    a2a_config.device = config_.device;
    a2a_config.pipeline_stages =
        std::max<std::size_t>(1, config_.overlap.pipeline_stages);
    const CompressedAllToAll a2a(a2a_config);

    // Raw-gradient exchange for compress_backward=false, hoisted next to
    // the forward instance: constructing it inside the iteration loop
    // reallocated its send buffers and per-peer workspaces every
    // iteration, defeating the zero-allocation steady state.
    std::unique_ptr<const CompressedAllToAll> raw_a2a;
    if (codec != nullptr && !config_.compression.compress_backward) {
      CompressedAllToAllConfig raw_config = a2a_config;
      raw_config.codec = nullptr;
      raw_config.throughput.reset();
      // A raw exchange charges no codec time, so pipelining it has
      // nothing to hide and would only add per-group metadata/alpha cost.
      raw_config.pipeline_stages = 1;
      raw_a2a = std::make_unique<const CompressedAllToAll>(raw_config);
    }
    const CompressedAllToAll& bwd_a2a = raw_a2a ? *raw_a2a : a2a;
    const auto grow_events_total = [&] {
      return a2a.workspace_grow_events() +
             (raw_a2a ? raw_a2a->workspace_grow_events() : 0);
    };
    std::uint64_t grow_baseline = 0;

    // Reused buffers.
    std::vector<Matrix> owned_lookup(num_tables);   // B_glob x dim (owned only)
    std::vector<Matrix> local_lookup(num_tables);   // B_loc x dim (all tables)
    std::vector<Matrix> demb(num_tables);           // B_loc x dim
    std::vector<Matrix> grad_assembled(num_tables); // B_glob x dim (owned only)
    Matrix local_dense(local_batch, spec.num_dense);
    std::vector<float> local_labels(local_batch);

    for (std::size_t iter = start_iter; iter < config_.iterations; ++iter) {
      DLCOMP_TRACE_SPAN("train/iteration");
      WallTimer iter_timer;
      const double eb_scale = scheduler.scale_at(iter);

      // Every rank regenerates the same global batch deterministically.
      const SampleBatch batch = dataset.make_batch(global_batch, iter);
      const std::size_t row0 = rank * local_batch;
      for (std::size_t b = 0; b < local_batch; ++b) {
        for (std::size_t f = 0; f < spec.num_dense; ++f) {
          local_dense(b, f) = batch.dense(row0 + b, f);
        }
        local_labels[b] = batch.labels[row0 + b];
      }

      // ---- Forward: bottom MLP on the local dense slice. With forward
      // overlap it instead runs while the forward all-to-all is in flight
      // (the two are data-independent); the math is identical either way.
      const Matrix* z0 = nullptr;
      if (!config_.overlap.forward) {
        z0 = &state.bottom->forward(local_dense);
        comm.advance_compute(phases::kBottomMlp,
                             config_.compute.mlp_seconds(local_batch, bdims));
      }

      // ---- Forward: owned-table lookups over the *global* batch.
      std::size_t lookup_bytes = 0;
      for (const std::size_t t : state.owned_tables) {
        owned_lookup[t].resize(global_batch, dim);
        tables[t].lookup(batch.indices[t], owned_lookup[t]);
        lookup_bytes += owned_lookup[t].size() * sizeof(float);
      }
      comm.advance_compute(phases::kEmbLookup,
                           config_.compute.memory_bound_seconds(lookup_bytes));

      // ---- Forward all-to-all: owned lookups scatter to every rank.
      std::vector<std::vector<A2AChunkSpec>> send_fwd(world);
      for (std::size_t d = 0; d < world; ++d) {
        for (const std::size_t t : state.owned_tables) {
          A2AChunkSpec chunk;
          chunk.data = std::span<const float>(
              owned_lookup[t].data() + d * local_batch * dim,
              local_batch * dim);
          chunk.params.error_bound = table_eb[t] * eb_scale;
          chunk.params.eb_mode = EbMode::kAbsolute;
          chunk.params.vector_dim = dim;
          chunk.params.hybrid_choice = table_choice[t];
          chunk.tag = static_cast<std::uint32_t>(t);
          send_fwd[d].push_back(chunk);
        }
      }
      std::vector<std::vector<std::span<float>>> recv_fwd(world);
      for (std::size_t s = 0; s < world; ++s) {
        for (const std::size_t t : owned_by[s]) {
          local_lookup[t].resize(local_batch, dim);
          recv_fwd[s].push_back(local_lookup[t].flat());
        }
      }
      A2AStats fwd_stats;
      DLCOMP_TRACE_INSTANT("train/forward_exchange");
      if (config_.overlap.forward) {
        // Issue the exchange, run the bottom MLP "under" the wire, then
        // land the final payload group.
        auto pending_fwd =
            a2a.exchange_begin(comm, send_fwd, recv_fwd, phases::kAllToAllFwd);
        z0 = &state.bottom->forward(local_dense);
        comm.advance_compute(phases::kBottomMlp,
                             config_.compute.mlp_seconds(local_batch, bdims));
        fwd_stats = pending_fwd.finish();
      } else {
        fwd_stats = a2a.exchange(comm, send_fwd, recv_fwd, phases::kAllToAllFwd);
      }
      fwd_raw.fetch_add(fwd_stats.send_raw_bytes, std::memory_order_relaxed);
      fwd_wire.fetch_add(fwd_stats.send_wire_bytes, std::memory_order_relaxed);

      // ---- Forward: interaction + top MLP + loss on the local slice.
      Matrix feat(local_batch, DotInteraction::output_dim(num_tables, dim));
      DotInteraction::forward(*z0, local_lookup, feat);
      comm.advance_compute(
          phases::kInteraction,
          config_.compute.interaction_seconds(local_batch, num_tables, dim));

      const Matrix& logits = state.top->forward(feat);
      comm.advance_compute(phases::kTopMlp,
                           config_.compute.mlp_seconds(local_batch, tdims));

      Matrix dlogits(local_batch, 1);
      const LossResult loss =
          bce_with_logits(logits.flat(), local_labels, dlogits.flat());

      // ---- Backward: top MLP, interaction.
      const Matrix dfeat = state.top->backward(dlogits);
      comm.advance_compute(
          phases::kTopMlp, 2.0 * config_.compute.mlp_seconds(local_batch, tdims));

      Matrix dz0(local_batch, dim);
      for (std::size_t t = 0; t < num_tables; ++t) {
        demb[t].resize(local_batch, dim);
      }
      DotInteraction::backward(*z0, local_lookup, dfeat, dz0,
                               std::span<Matrix>(demb));
      comm.advance_compute(
          phases::kInteraction,
          2.0 * config_.compute.interaction_seconds(local_batch, num_tables, dim));

      // ---- Backward all-to-all: gradients return to table owners.
      std::vector<std::vector<A2AChunkSpec>> send_bwd(world);
      for (std::size_t d = 0; d < world; ++d) {
        for (const std::size_t t : owned_by[d]) {
          A2AChunkSpec chunk;
          chunk.data = demb[t].flat();
          chunk.params.error_bound = config_.compression.backward_relative_eb;
          chunk.params.eb_mode = EbMode::kRangeRelative;
          chunk.params.vector_dim = dim;
          chunk.params.hybrid_choice = table_choice[t];
          // Backward tags live in [num_tables, 2*num_tables): when the
          // backward path is compressed it shares the forward exchange
          // object, so the directions must not share accumulator slots.
          chunk.tag = static_cast<std::uint32_t>(num_tables + t);
          send_bwd[d].push_back(chunk);
        }
      }
      std::vector<std::vector<std::span<float>>> recv_bwd(world);
      for (const std::size_t t : state.owned_tables) {
        grad_assembled[t].resize(global_batch, dim);
      }
      for (std::size_t s = 0; s < world; ++s) {
        for (const std::size_t t : state.owned_tables) {
          recv_bwd[s].push_back(std::span<float>(
              grad_assembled[t].data() + s * local_batch * dim,
              local_batch * dim));
        }
      }
      // ---- Backward all-to-all + bottom MLP + embedding update + MLP
      // gradient all-reduce. The serial schedule runs them in that order;
      // with backward overlap the bottom-MLP backward runs first (so
      // every MLP gradient exists), the all-reduce goes on the wire
      // nonblocking (NVLink-class link in the network model, disjoint
      // from the all-to-all fabric), and the gradient all-to-all plus the
      // embedding update run under it. Identical float operations on
      // identical inputs either way.
      const auto run_bwd_exchange = [&] {
        const A2AStats bwd_stats =
            bwd_a2a.exchange(comm, send_bwd, recv_bwd, phases::kAllToAllBwd);
        bwd_raw.fetch_add(bwd_stats.send_raw_bytes, std::memory_order_relaxed);
        bwd_wire.fetch_add(bwd_stats.send_wire_bytes, std::memory_order_relaxed);
      };
      const auto run_bottom_backward = [&] {
        (void)state.bottom->backward(dz0);
        comm.advance_compute(
            phases::kBottomMlp,
            2.0 * config_.compute.mlp_seconds(local_batch, bdims));
      };
      const auto run_emb_update = [&] {
        // Embedding updates are global-batch means: scale by 1/world,
        // see header.
        std::size_t update_bytes = 0;
        const float lr_scale = 1.0f / static_cast<float>(world);
        for (const std::size_t t : state.owned_tables) {
          optimizers[t].apply(tables[t], batch.indices[t], grad_assembled[t],
                              lr_scale);
          update_bytes += grad_assembled[t].size() * sizeof(float);
        }
        comm.advance_compute(phases::kEmbUpdate,
                             config_.compute.memory_bound_seconds(update_bytes));
      };

      DLCOMP_TRACE_INSTANT("train/backward_exchange");
      if (config_.overlap.backward) {
        run_bottom_backward();
        pack_mlp_grads(state);
        PendingCollective pending_ar =
            comm.all_reduce_sum_async(state.grad_scratch, phases::kAllReduce);
        run_bwd_exchange();
        run_emb_update();
        pending_ar.wait();
        unpack_mlp_grads(state, comm.world());
      } else {
        run_bwd_exchange();
        run_bottom_backward();
        run_emb_update();
        allreduce_mlp_grads(comm, state);
      }
      state.bottom->sgd_step(config_.model.learning_rate);
      state.top->sgd_step(config_.model.learning_rate);

      // Steady-state allocation accounting: the first two iterations are
      // warm-up (buffers and workspaces reach their high-water marks);
      // growth after that is a regression the tests assert against.
      if (iter < start_iter + 2) grow_baseline = grow_events_total();

      if (rank == 0) iter_wall_hist.observe(iter_timer.seconds());

      // ---- Bookkeeping (rank 0 records/saves; all ranks barrier so the
      // snapshot is a consistent cut of tables and optimizer state).
      const bool record =
          config_.record_every == 0 || iter % std::max<std::size_t>(config_.record_every, 1) == 0 ||
          iter + 1 == config_.iterations;
      const bool eval_now =
          config_.eval_every > 0 && (iter + 1) % config_.eval_every == 0;
      const bool save_now =
          ckpt_writer != nullptr &&
          ((config_.checkpoint.every > 0 &&
            (iter + 1) % config_.checkpoint.every == 0) ||
           iter + 1 == config_.iterations);
      if (record || eval_now || save_now) {
        comm.barrier();  // quiesce table writes before rank 0 reads them
        if (rank == 0) {
          if (record || eval_now) {
            IterationRecord rec;
            rec.iter = iter;
            rec.train_loss = loss.loss;
            rec.train_accuracy = loss.accuracy;
            rec.forward_cr = fwd_stats.compression_ratio();
            rec.eb_scale = eb_scale;
            if (eval_now) {
              rec.eval_accuracy =
                  evaluate_full(*state.bottom, *state.top, tables, spec,
                                dataset,
                                std::min<std::size_t>(global_batch, 512),
                                config_.eval_batches)
                      .accuracy;
            }
            result.history.push_back(rec);
          }
          if (config_.status != nullptr) {
            const double elapsed = wall.seconds();
            const double samples_per_s =
                elapsed > 0.0 ? static_cast<double>(
                                    (iter + 1 - start_iter) * global_batch) /
                                    elapsed
                              : 0.0;
            config_.status->heartbeat(iter + 1, samples_per_s);
          }
          if (save_now) {
            char name[32];
            std::snprintf(name, sizeof(name), "ckpt_%06llu.dlck",
                          static_cast<unsigned long long>(iter + 1));
            const std::string path =
                (std::filesystem::path(config_.checkpoint.directory) / name)
                    .string();
            ModelState snap = shared_state(iter + 1);
            snap.bottom = state.bottom.get();  // rank 0's trained replicas
            snap.top = state.top.get();
            result.checkpoints_written.push_back(
                ckpt_writer->save(path, snap, config_.checkpoint.full_every));
            DLCOMP_LOG_INFO("train", "checkpoint saved",
                            {"path", result.checkpoints_written.back()},
                            {"iteration", iter + 1});
          }
        }
        comm.barrier();  // others wait for rank 0's eval/save before mutating
      }
    }

    steady_grow.fetch_add(grow_events_total() - grow_baseline,
                          std::memory_order_relaxed);
    {
      std::lock_guard lock(tag_mutex);
      merge_tags(fwd_tag_bytes, a2a.per_tag_bytes(), 0);
      merge_tags(bwd_tag_bytes, bwd_a2a.per_tag_bytes(), num_tables);
    }

    // Final held-out evaluation.
    comm.barrier();
    if (rank == 0) {
      result.final_eval =
          evaluate_full(*state.bottom, *state.top, tables, spec, dataset,
                        std::min<std::size_t>(global_batch, 512),
                        config_.eval_batches);
    }
    comm.barrier();
  });

  result.wall_seconds = wall.seconds();
  result.makespan_seconds = cluster.makespan_seconds();
  result.forward_raw_bytes = fwd_raw.load();
  result.forward_wire_bytes = fwd_wire.load();
  result.backward_raw_bytes = bwd_raw.load();
  result.backward_wire_bytes = bwd_wire.load();

  result.steady_state_grow_events = steady_grow.load();

  // Slowest rank's per-phase breakdown (exposed + hidden ledgers).
  double latest = -1.0;
  const SimClock* slowest = nullptr;
  for (const auto& clock : cluster.clocks()) {
    if (clock.now() > latest) {
      latest = clock.now();
      slowest = &clock;
      result.phase_seconds = clock.breakdown();
      result.hidden_phase_seconds = clock.hidden_breakdown();
    }
  }

  // ---- Metrics snapshot: the machine-readable face of this result.
  MetricsSnapshot& snap = result.metrics;
  snap.set("train/iterations",
           static_cast<double>(config_.iterations - start_iter));
  snap.set("train/world", static_cast<double>(config_.world));
  snap.set("train/forward_raw_bytes",
           static_cast<double>(result.forward_raw_bytes));
  snap.set("train/forward_wire_bytes",
           static_cast<double>(result.forward_wire_bytes));
  snap.set("train/forward_cr", result.forward_cr());
  snap.set("train/backward_raw_bytes",
           static_cast<double>(result.backward_raw_bytes));
  snap.set("train/backward_wire_bytes",
           static_cast<double>(result.backward_wire_bytes));
  snap.set("train/backward_cr", result.backward_cr());
  snap.set("train/steady_grow_events",
           static_cast<double>(result.steady_state_grow_events));
  snap.set("train/wall_seconds", result.wall_seconds);
  snap.set("train/exposed_comm_seconds", result.exposed_comm_seconds());
  snap.set("train/hidden_comm_seconds", result.hidden_comm_seconds());
  if (!result.history.empty()) {
    snap.set("train/final_loss", result.history.back().train_loss);
    snap.set("train/final_accuracy", result.history.back().train_accuracy);
  }
  snap.set("train/eval_loss", result.final_eval.loss);
  snap.set("train/eval_accuracy", result.final_eval.accuracy);
  snapshot_histogram(snap, "train/iter_wall_s", iter_wall_hist);
  if (slowest != nullptr) slowest->export_to(snap, "sim/");
  const auto table_keys = [&snap](const char* dir,
                                  const std::vector<CompressedAllToAll::TagBytes>&
                                      tags) {
    for (std::size_t t = 0; t < tags.size(); ++t) {
      const std::string base =
          std::string("train/table/") + std::to_string(t) + "/" + dir;
      snap.set(base + "_raw_bytes", static_cast<double>(tags[t].raw));
      snap.set(base + "_wire_bytes", static_cast<double>(tags[t].wire));
      snap.set(base + "_cr",
               tags[t].wire == 0 ? 1.0
                                 : static_cast<double>(tags[t].raw) /
                                       static_cast<double>(tags[t].wire));
    }
  };
  table_keys("fwd", fwd_tag_bytes);
  table_keys("bwd", bwd_tag_bytes);
  return result;
}

}  // namespace dlcomp
