#include "core/trainer.hpp"

#include <cmath>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <memory>
#include <thread>

#include "ckpt/checkpoint.hpp"
#include "comm/tcp_runtime.hpp"
#include "common/byte_io.hpp"
#include "common/crc32.hpp"
#include "common/error.hpp"
#include "common/timer.hpp"
#include "compress/registry.hpp"
#include "dlrm/interaction.hpp"
#include "obs/obs_server.hpp"
#include "obs/trace.hpp"

namespace dlcomp {

namespace {

/// Per-rank mutable state living for the whole training run.
struct RankState {
  std::unique_ptr<Mlp> bottom;
  std::unique_ptr<Mlp> top;
  std::vector<std::size_t> owned_tables;
  // Flat gradient buffer reused across iterations for the MLP all-reduce.
  std::vector<float> grad_scratch;
};

std::vector<std::size_t> bottom_dims(const DatasetSpec& spec,
                                     const DlrmConfig& model) {
  std::vector<std::size_t> dims{spec.num_dense};
  dims.insert(dims.end(), model.bottom_hidden.begin(), model.bottom_hidden.end());
  dims.push_back(spec.embedding_dim);
  return dims;
}

std::vector<std::size_t> top_dims(const DatasetSpec& spec,
                                  const DlrmConfig& model) {
  std::vector<std::size_t> dims{
      DotInteraction::output_dim(spec.num_tables(), spec.embedding_dim)};
  dims.insert(dims.end(), model.top_hidden.begin(), model.top_hidden.end());
  dims.push_back(1);
  return dims;
}

/// Flattens MLP gradients into state.grad_scratch (the all-reduce send
/// buffer, reused across iterations).
void pack_mlp_grads(RankState& state) {
  auto views_b = state.bottom->grad_views();
  auto views_t = state.top->grad_views();
  std::size_t total = 0;
  for (const auto& v : views_b) total += v.size();
  for (const auto& v : views_t) total += v.size();
  state.grad_scratch.resize(total);

  std::size_t cursor = 0;
  auto pack = [&](std::span<float> v) {
    std::copy(v.begin(), v.end(), state.grad_scratch.begin() + cursor);
    cursor += v.size();
  };
  for (auto& v : views_b) pack(v);
  for (auto& v : views_t) pack(v);
}

/// Writes the reduced gradients back into the MLPs, averaged by world.
void unpack_mlp_grads(RankState& state, int world) {
  auto views_b = state.bottom->grad_views();
  auto views_t = state.top->grad_views();
  const float inv_world = 1.0f / static_cast<float>(world);
  std::size_t cursor = 0;
  auto unpack = [&](std::span<float> v) {
    for (std::size_t i = 0; i < v.size(); ++i) {
      v[i] = state.grad_scratch[cursor + i] * inv_world;
    }
    cursor += v.size();
  };
  for (auto& v : views_b) unpack(v);
  for (auto& v : views_t) unpack(v);
}

/// Serial pack + all-reduce + unpack (the non-overlapped schedule).
void allreduce_mlp_grads(Communicator& comm, RankState& state) {
  pack_mlp_grads(state);
  comm.all_reduce_sum(state.grad_scratch, phases::kAllReduce);
  unpack_mlp_grads(state, comm.world());
}

/// A phase counts as communication if it belongs to one of the collective
/// families and is not a codec slice (compress/decompress are compute).
bool is_comm_phase(const std::string& phase) {
  const bool comm_family = phase.rfind(phases::kAllToAllFwd, 0) == 0 ||
                           phase.rfind(phases::kAllToAllBwd, 0) == 0 ||
                           phase.rfind(phases::kAllReduce, 0) == 0;
  return comm_family && phase.find("/compress") == std::string::npos &&
         phase.find("/decompress") == std::string::npos;
}

/// Rank-0 held-out evaluation using its MLP replicas and the tables
/// (owner-current everywhere after sync_tables_for_eval; under the sim
/// backend shared memory makes every table current already).
LossResult evaluate_full(Mlp& bottom, Mlp& top,
                         std::span<EmbeddingTable> tables,
                         const DatasetSpec& spec,
                         const BatchSource& dataset,
                         std::size_t batch_size, std::size_t batches) {
  LossResult total;
  std::vector<Matrix> lookups(tables.size());
  for (std::size_t i = 0; i < batches; ++i) {
    const SampleBatch batch = dataset.make_eval_batch(batch_size, i);
    const Matrix& z0 = bottom.forward(batch.dense);
    for (std::size_t t = 0; t < tables.size(); ++t) {
      lookups[t].resize(batch_size, spec.embedding_dim);
      tables[t].lookup(batch.indices[t], lookups[t]);
    }
    Matrix feat(batch_size,
                DotInteraction::output_dim(tables.size(), spec.embedding_dim));
    DotInteraction::forward(z0, lookups, feat);
    const Matrix& logits = top.forward(feat);
    const LossResult r = bce_with_logits(logits.flat(), batch.labels);
    total.loss += r.loss;
    total.accuracy += r.accuracy;
  }
  total.loss /= static_cast<double>(batches);
  total.accuracy /= static_cast<double>(batches);
  return total;
}

/// Owner-broadcast of every embedding table's weights over the *raw*
/// transport. A no-op on shared-memory backends (rank 0 reads owner
/// copies directly); under TCP each process holds stale replicas of the
/// tables it does not own, so rank 0's held-out eval needs the owners'
/// current rows first. Raw transport exchanges charge no simulated
/// time, so eval cadence does not perturb the simulated numbers.
void sync_tables_for_eval(Communicator& comm,
                          std::span<EmbeddingTable> tables) {
  Transport& transport = comm.transport();
  if (transport.shared_memory()) return;
  const auto world = static_cast<std::size_t>(transport.world());
  const auto me = static_cast<std::size_t>(transport.rank());
  std::vector<std::vector<std::byte>> controls;
  std::vector<std::vector<std::byte>> recv;
  for (std::size_t t = 0; t < tables.size(); ++t) {
    const std::size_t owner = t % world;
    const std::span<float> weights = tables[t].weights().flat();
    std::vector<std::span<const std::byte>> sends(world);
    if (me == owner) {
      const auto payload = std::as_bytes(std::span<const float>(weights));
      std::fill(sends.begin(), sends.end(), payload);
    }
    transport.exchange({}, sends, controls, recv);
    if (me != owner) {
      DLCOMP_CHECK_MSG(recv[owner].size() == weights.size_bytes(),
                       "eval table sync: owner rank "
                           << owner << " sent " << recv[owner].size()
                           << " bytes for table " << t << ", expected "
                           << weights.size_bytes());
      std::memcpy(weights.data(), recv[owner].data(), weights.size_bytes());
    }
  }
}

/// Everything one rank contributes to the run-level result, shipped to
/// rank 0 over one raw transport exchange at the end of the rank body.
/// Raw (clock-free) exchanges keep the aggregation identical across
/// backends: under SimTransport this replaces the former shared-memory
/// atomics; under TcpTransport it is the only way the numbers can reach
/// rank 0 at all.
struct RankTotals {
  std::uint64_t fwd_raw = 0;
  std::uint64_t fwd_wire = 0;
  std::uint64_t bwd_raw = 0;
  std::uint64_t bwd_wire = 0;
  std::uint64_t steady_grow = 0;
  std::uint32_t wire_crc = 0;
  std::uint64_t wire_bytes_sent = 0;
  CommStats comm;
  double clock_now = 0.0;
  std::vector<CompressedAllToAll::TagBytes> fwd_tags;
  std::vector<CompressedAllToAll::TagBytes> bwd_tags;
  std::map<std::string, double> breakdown;
  std::map<std::string, double> hidden;
};

void append_ledger(std::vector<std::byte>& out,
                   const std::map<std::string, double>& ledger) {
  append_pod(out, static_cast<std::uint64_t>(ledger.size()));
  for (const auto& [phase, seconds] : ledger) {
    append_pod(out, static_cast<std::uint64_t>(phase.size()));
    const auto* p = reinterpret_cast<const std::byte*>(phase.data());
    out.insert(out.end(), p, p + phase.size());
    append_pod(out, seconds);
  }
}

std::map<std::string, double> read_ledger(ByteReader& reader) {
  std::map<std::string, double> ledger;
  const auto count = reader.read<std::uint64_t>();
  for (std::uint64_t i = 0; i < count; ++i) {
    const auto len = reader.read<std::uint64_t>();
    const auto view = reader.take(static_cast<std::size_t>(len));
    std::string phase(reinterpret_cast<const char*>(view.data()), view.size());
    const double seconds = reader.read<double>();
    ledger.emplace(std::move(phase), seconds);
  }
  return ledger;
}

void append_tags(std::vector<std::byte>& out,
                 const std::vector<CompressedAllToAll::TagBytes>& tags) {
  append_pod(out, static_cast<std::uint64_t>(tags.size()));
  for (const auto& t : tags) {
    append_pod(out, t.raw);
    append_pod(out, t.wire);
  }
}

std::vector<CompressedAllToAll::TagBytes> read_tags(ByteReader& reader) {
  std::vector<CompressedAllToAll::TagBytes> tags(
      static_cast<std::size_t>(reader.read<std::uint64_t>()));
  for (auto& t : tags) {
    t.raw = reader.read<std::uint64_t>();
    t.wire = reader.read<std::uint64_t>();
  }
  return tags;
}

std::vector<std::byte> serialize_rank_totals(const RankTotals& t) {
  std::vector<std::byte> out;
  append_pod(out, t.fwd_raw);
  append_pod(out, t.fwd_wire);
  append_pod(out, t.bwd_raw);
  append_pod(out, t.bwd_wire);
  append_pod(out, t.steady_grow);
  append_pod(out, t.wire_crc);
  append_pod(out, t.wire_bytes_sent);
  append_pod(out, t.comm);
  append_pod(out, t.clock_now);
  append_tags(out, t.fwd_tags);
  append_tags(out, t.bwd_tags);
  append_ledger(out, t.breakdown);
  append_ledger(out, t.hidden);
  return out;
}

RankTotals parse_rank_totals(std::span<const std::byte> blob) {
  ByteReader reader(blob);
  RankTotals t;
  t.fwd_raw = reader.read<std::uint64_t>();
  t.fwd_wire = reader.read<std::uint64_t>();
  t.bwd_raw = reader.read<std::uint64_t>();
  t.bwd_wire = reader.read<std::uint64_t>();
  t.steady_grow = reader.read<std::uint64_t>();
  t.wire_crc = reader.read<std::uint32_t>();
  t.wire_bytes_sent = reader.read<std::uint64_t>();
  t.comm = reader.read<CommStats>();
  t.clock_now = reader.read<double>();
  t.fwd_tags = read_tags(reader);
  t.bwd_tags = read_tags(reader);
  t.breakdown = read_ledger(reader);
  t.hidden = read_ledger(reader);
  return t;
}

/// Element-wise sum of per-table byte totals (rank 0's fold).
void add_tags(std::vector<CompressedAllToAll::TagBytes>& into,
              const std::vector<CompressedAllToAll::TagBytes>& from) {
  if (into.size() < from.size()) into.resize(from.size());
  for (std::size_t i = 0; i < from.size(); ++i) {
    into[i].raw += from[i].raw;
    into[i].wire += from[i].wire;
  }
}

}  // namespace

double TrainingResult::exposed_comm_seconds() const {
  double total = 0.0;
  for (const auto& [phase, seconds] : phase_seconds) {
    if (is_comm_phase(phase)) total += seconds;
  }
  return total;
}

double TrainingResult::hidden_comm_seconds() const {
  double total = 0.0;
  for (const auto& [phase, seconds] : hidden_phase_seconds) {
    if (is_comm_phase(phase)) total += seconds;
  }
  return total;
}

HybridParallelTrainer::HybridParallelTrainer(TrainerConfig config)
    : config_(std::move(config)) {
  DLCOMP_CHECK(config_.world >= 1);
  DLCOMP_CHECK(config_.iterations >= 1);
  DLCOMP_CHECK_MSG(
      config_.transport.backend == "sim" || config_.transport.backend == "tcp",
      "unknown transport backend '" << config_.transport.backend
                                    << "' (expected \"sim\" or \"tcp\")");
}

TrainingResult HybridParallelTrainer::train(const BatchSource& dataset) {
  const DatasetSpec& spec = dataset.spec();
  const std::size_t global_batch =
      config_.global_batch > 0 ? config_.global_batch : spec.default_batch;
  const auto world = static_cast<std::size_t>(config_.world);
  DLCOMP_CHECK_MSG(global_batch % world == 0,
                   "global batch " << global_batch
                                   << " must divide by world " << world);
  const std::size_t local_batch = global_batch / world;
  const std::size_t dim = spec.embedding_dim;
  const std::size_t num_tables = spec.num_tables();

  const Compressor* codec = config_.compression.codec.empty()
                                ? nullptr
                                : &get_compressor(config_.compression.codec);
  const ErrorBoundScheduler scheduler(config_.compression.scheduler);

  // Per-table base error bounds.
  std::vector<double> table_eb = config_.compression.table_eb;
  if (table_eb.empty()) {
    table_eb.assign(num_tables, config_.compression.global_eb);
  }
  DLCOMP_CHECK(table_eb.size() == num_tables);
  std::vector<HybridChoice> table_choice = config_.compression.table_choice;
  if (table_choice.empty()) {
    table_choice.assign(num_tables, HybridChoice::kAuto);
  }

  // Embedding tables (owner-rank writes only) and one optimizer per table
  // (touched only by the owning rank, hoisted out of the rank body so
  // checkpoints can cover every table's state). Under the sim backend
  // these are shared by all rank threads; under TCP every process builds
  // the same deterministic initial state and its non-owned copies simply
  // go stale between eval syncs.
  std::vector<EmbeddingTable> tables = make_embedding_set(spec, config_.seed);
  std::vector<EmbeddingOptimizer> optimizers;
  optimizers.reserve(num_tables);
  for (std::size_t t = 0; t < num_tables; ++t) {
    optimizers.emplace_back(config_.model.embedding_optimizer,
                            config_.model.learning_rate);
  }
  ThreadPool codec_pool(std::min<unsigned>(4, std::thread::hardware_concurrency()));

  const auto bdims = bottom_dims(spec, config_.model);
  const auto tdims = top_dims(spec, config_.model);

  // Identical initial MLP replicas for every rank (and the restore /
  // snapshot target; ranks copy these).
  Rng mlp_rng(config_.seed);
  auto rng_b = mlp_rng.fork({0xB0});
  auto rng_t = mlp_rng.fork({0x70});
  Mlp init_bottom(bdims, rng_b);
  Mlp init_top(tdims, rng_t);

  // Points a ModelState at the shared training state.
  const auto shared_state = [&](std::uint64_t iteration) {
    ModelState state;
    state.iteration = iteration;
    state.seed = config_.seed;
    state.bottom = &init_bottom;
    state.top = &init_top;
    for (std::size_t t = 0; t < num_tables; ++t) {
      state.tables.push_back(&tables[t].weights());
      state.opt_state.push_back(&optimizers[t].accumulator());
    }
    state.opt_kind = config_.model.embedding_optimizer;
    return state;
  };

  // ---- Resume: restore tables, optimizer state, MLPs and the iteration
  // counter before the cluster starts. Under TCP every process loads the
  // same file, so the restored state is identical everywhere.
  std::size_t start_iter = 0;
  if (!config_.checkpoint.resume_from.empty()) {
    const LoadedCheckpoint loaded =
        CheckpointReader(&codec_pool).load(config_.checkpoint.resume_from);
    DLCOMP_CHECK_MSG(
        loaded.opt_kind == config_.model.embedding_optimizer,
        "checkpoint optimizer kind does not match the trainer config");
    apply_model_state(loaded, shared_state(0));
    start_iter = static_cast<std::size_t>(loaded.header.iteration);
    DLCOMP_LOG_INFO("train", "resumed from checkpoint",
                    {"path", config_.checkpoint.resume_from},
                    {"iteration", start_iter});
    DLCOMP_CHECK_MSG(start_iter <= config_.iterations,
                     "checkpoint is at iteration "
                         << start_iter << ", config trains only "
                         << config_.iterations);
  }

  // ---- Periodic snapshotting (rank 0, inside a cluster barrier).
  std::unique_ptr<CheckpointWriter> ckpt_writer;
  if (!config_.checkpoint.directory.empty()) {
    std::filesystem::create_directories(config_.checkpoint.directory);
    CheckpointOptions options;
    options.codec = config_.checkpoint.codec;
    options.table_eb = config_.checkpoint.table_eb;
    options.global_eb = config_.checkpoint.global_eb;
    options.pool = &codec_pool;
    ckpt_writer = std::make_unique<CheckpointWriter>(std::move(options));
  }

  TrainingResult result;
  result.start_iteration = start_iter;

  // Rank 0's per-table byte totals, folded from every rank's tagged
  // all-to-all accounting at the end of the run.
  std::vector<CompressedAllToAll::TagBytes> fwd_tag_bytes;
  std::vector<CompressedAllToAll::TagBytes> bwd_tag_bytes;
  // `lo` selects the direction's tag range: forward chunks are tagged
  // [0, num_tables), backward ones [num_tables, 2*num_tables).
  const auto merge_tags = [num_tables](
                              std::vector<CompressedAllToAll::TagBytes>& into,
                              std::vector<CompressedAllToAll::TagBytes> from,
                              std::size_t lo) {
    const std::size_t hi = std::min(from.size(), lo + num_tables);
    for (std::size_t t = lo; t < hi; ++t) {
      if (into.size() <= t - lo) into.resize(t - lo + 1);
      into[t - lo].raw += from[t].raw;
      into[t - lo].wire += from[t].wire;
    }
  };

  // Rank 0's per-iteration wall times (1 us .. ~2 s exponential buckets).
  HistogramMetric iter_wall_hist(HistogramBuckets::exponential(1e-6, 2.0, 22));

  if (config_.status != nullptr) {
    config_.status->set_total_iterations(config_.iterations);
    config_.status->set_state("training");
    config_.status->set_ready(true);
  }

  WallTimer wall;
  const auto rank_body = [&](Communicator& comm) {
    const auto rank = static_cast<std::size_t>(comm.rank());

    // --- Per-rank setup: identical MLP replicas (copies of the shared
    // initial -- or restored -- state) and the table ownership map; the
    // per-table optimizers live in shared scope, touched only by owners.
    RankState state;
    state.bottom = std::make_unique<Mlp>(init_bottom);
    state.top = std::make_unique<Mlp>(init_top);
    for (std::size_t t = rank; t < num_tables; t += world) {
      state.owned_tables.push_back(t);
    }
    // Ownership map for every rank (to size receives).
    std::vector<std::vector<std::size_t>> owned_by(world);
    for (std::size_t t = 0; t < num_tables; ++t) {
      owned_by[t % world].push_back(t);
    }

    // Snapshots need rank 0 to read every table and optimizer replica
    // directly; only a shared-memory backend can provide that, so TCP
    // runs skip saving (resume still works -- see above).
    const bool can_save =
        ckpt_writer != nullptr && comm.transport().shared_memory();
    if (rank == 0 && ckpt_writer != nullptr && !can_save) {
      DLCOMP_LOG_INFO("train", "checkpoint saving disabled on this backend",
                      {"directory", config_.checkpoint.directory});
    }

    CompressedAllToAllConfig a2a_config;
    a2a_config.codec = codec;
    a2a_config.pool = &codec_pool;
    a2a_config.device = config_.device;
    a2a_config.pipeline_stages =
        std::max<std::size_t>(1, config_.overlap.pipeline_stages);
    const CompressedAllToAll a2a(a2a_config);

    // Raw-gradient exchange for compress_backward=false, hoisted next to
    // the forward instance: constructing it inside the iteration loop
    // reallocated its send buffers and per-peer workspaces every
    // iteration, defeating the zero-allocation steady state.
    std::unique_ptr<const CompressedAllToAll> raw_a2a;
    if (codec != nullptr && !config_.compression.compress_backward) {
      CompressedAllToAllConfig raw_config = a2a_config;
      raw_config.codec = nullptr;
      raw_config.throughput.reset();
      // A raw exchange charges no codec time, so pipelining it has
      // nothing to hide and would only add per-group metadata/alpha cost.
      raw_config.pipeline_stages = 1;
      raw_a2a = std::make_unique<const CompressedAllToAll>(raw_config);
    }
    const CompressedAllToAll& bwd_a2a = raw_a2a ? *raw_a2a : a2a;
    const auto grow_events_total = [&] {
      return a2a.workspace_grow_events() +
             (raw_a2a ? raw_a2a->workspace_grow_events() : 0);
    };
    std::uint64_t grow_baseline = 0;

    // This rank's contributions to the run-level result (folded on rank 0
    // at the end), including the running CRC over every wire stream this
    // rank produced: per-exchange CRC words in issue order.
    std::uint64_t fwd_raw = 0;
    std::uint64_t fwd_wire = 0;
    std::uint64_t bwd_raw = 0;
    std::uint64_t bwd_wire = 0;
    std::uint32_t rank_crc = crc32_init();
    const auto crc_fold = [&rank_crc](std::uint32_t word) {
      rank_crc = crc32_update(
          rank_crc, std::as_bytes(std::span<const std::uint32_t>(&word, 1)));
    };

    // Reused buffers.
    std::vector<Matrix> owned_lookup(num_tables);   // B_glob x dim (owned only)
    std::vector<Matrix> local_lookup(num_tables);   // B_loc x dim (all tables)
    std::vector<Matrix> demb(num_tables);           // B_loc x dim
    std::vector<Matrix> grad_assembled(num_tables); // B_glob x dim (owned only)
    Matrix local_dense(local_batch, spec.num_dense);
    std::vector<float> local_labels(local_batch);

    for (std::size_t iter = start_iter; iter < config_.iterations; ++iter) {
      DLCOMP_TRACE_SPAN("train/iteration");
      WallTimer iter_timer;
      const double eb_scale = scheduler.scale_at(iter);

      // Every rank regenerates the same global batch deterministically.
      const SampleBatch batch = dataset.make_batch(global_batch, iter);
      const std::size_t row0 = rank * local_batch;
      for (std::size_t b = 0; b < local_batch; ++b) {
        for (std::size_t f = 0; f < spec.num_dense; ++f) {
          local_dense(b, f) = batch.dense(row0 + b, f);
        }
        local_labels[b] = batch.labels[row0 + b];
      }

      // ---- Forward: bottom MLP on the local dense slice. With forward
      // overlap it instead runs while the forward all-to-all is in flight
      // (the two are data-independent); the math is identical either way.
      const Matrix* z0 = nullptr;
      if (!config_.overlap.forward) {
        z0 = &state.bottom->forward(local_dense);
        comm.advance_compute(phases::kBottomMlp,
                             config_.compute.mlp_seconds(local_batch, bdims));
      }

      // ---- Forward: owned-table lookups over the *global* batch.
      std::size_t lookup_bytes = 0;
      for (const std::size_t t : state.owned_tables) {
        owned_lookup[t].resize(global_batch, dim);
        tables[t].lookup(batch.indices[t], owned_lookup[t]);
        lookup_bytes += owned_lookup[t].size() * sizeof(float);
      }
      comm.advance_compute(phases::kEmbLookup,
                           config_.compute.memory_bound_seconds(lookup_bytes));

      // ---- Forward all-to-all: owned lookups scatter to every rank.
      std::vector<std::vector<A2AChunkSpec>> send_fwd(world);
      for (std::size_t d = 0; d < world; ++d) {
        for (const std::size_t t : state.owned_tables) {
          A2AChunkSpec chunk;
          chunk.data = std::span<const float>(
              owned_lookup[t].data() + d * local_batch * dim,
              local_batch * dim);
          chunk.params.error_bound = table_eb[t] * eb_scale;
          chunk.params.eb_mode = EbMode::kAbsolute;
          chunk.params.vector_dim = dim;
          chunk.params.hybrid_choice = table_choice[t];
          chunk.tag = static_cast<std::uint32_t>(t);
          send_fwd[d].push_back(chunk);
        }
      }
      std::vector<std::vector<std::span<float>>> recv_fwd(world);
      for (std::size_t s = 0; s < world; ++s) {
        for (const std::size_t t : owned_by[s]) {
          local_lookup[t].resize(local_batch, dim);
          recv_fwd[s].push_back(local_lookup[t].flat());
        }
      }
      A2AStats fwd_stats;
      DLCOMP_TRACE_INSTANT("train/forward_exchange");
      if (config_.overlap.forward) {
        // Issue the exchange, run the bottom MLP "under" the wire, then
        // land the final payload group.
        auto pending_fwd =
            a2a.exchange_begin(comm, send_fwd, recv_fwd, phases::kAllToAllFwd);
        z0 = &state.bottom->forward(local_dense);
        comm.advance_compute(phases::kBottomMlp,
                             config_.compute.mlp_seconds(local_batch, bdims));
        fwd_stats = pending_fwd.finish();
      } else {
        fwd_stats = a2a.exchange(comm, send_fwd, recv_fwd, phases::kAllToAllFwd);
      }
      fwd_raw += fwd_stats.send_raw_bytes;
      fwd_wire += fwd_stats.send_wire_bytes;
      crc_fold(fwd_stats.wire_crc32);

      // ---- Forward: interaction + top MLP + loss on the local slice.
      Matrix feat(local_batch, DotInteraction::output_dim(num_tables, dim));
      DotInteraction::forward(*z0, local_lookup, feat);
      comm.advance_compute(
          phases::kInteraction,
          config_.compute.interaction_seconds(local_batch, num_tables, dim));

      const Matrix& logits = state.top->forward(feat);
      comm.advance_compute(phases::kTopMlp,
                           config_.compute.mlp_seconds(local_batch, tdims));

      Matrix dlogits(local_batch, 1);
      const LossResult loss =
          bce_with_logits(logits.flat(), local_labels, dlogits.flat());

      // ---- Backward: top MLP, interaction.
      const Matrix dfeat = state.top->backward(dlogits);
      comm.advance_compute(
          phases::kTopMlp, 2.0 * config_.compute.mlp_seconds(local_batch, tdims));

      Matrix dz0(local_batch, dim);
      for (std::size_t t = 0; t < num_tables; ++t) {
        demb[t].resize(local_batch, dim);
      }
      DotInteraction::backward(*z0, local_lookup, dfeat, dz0,
                               std::span<Matrix>(demb));
      comm.advance_compute(
          phases::kInteraction,
          2.0 * config_.compute.interaction_seconds(local_batch, num_tables, dim));

      // ---- Backward all-to-all: gradients return to table owners.
      std::vector<std::vector<A2AChunkSpec>> send_bwd(world);
      for (std::size_t d = 0; d < world; ++d) {
        for (const std::size_t t : owned_by[d]) {
          A2AChunkSpec chunk;
          chunk.data = demb[t].flat();
          chunk.params.error_bound = config_.compression.backward_relative_eb;
          chunk.params.eb_mode = EbMode::kRangeRelative;
          chunk.params.vector_dim = dim;
          chunk.params.hybrid_choice = table_choice[t];
          // Backward tags live in [num_tables, 2*num_tables): when the
          // backward path is compressed it shares the forward exchange
          // object, so the directions must not share accumulator slots.
          chunk.tag = static_cast<std::uint32_t>(num_tables + t);
          send_bwd[d].push_back(chunk);
        }
      }
      std::vector<std::vector<std::span<float>>> recv_bwd(world);
      for (const std::size_t t : state.owned_tables) {
        grad_assembled[t].resize(global_batch, dim);
      }
      for (std::size_t s = 0; s < world; ++s) {
        for (const std::size_t t : state.owned_tables) {
          recv_bwd[s].push_back(std::span<float>(
              grad_assembled[t].data() + s * local_batch * dim,
              local_batch * dim));
        }
      }
      // ---- Backward all-to-all + bottom MLP + embedding update + MLP
      // gradient all-reduce. The serial schedule runs them in that order;
      // with backward overlap the bottom-MLP backward runs first (so
      // every MLP gradient exists), the all-reduce goes on the wire
      // nonblocking (NVLink-class link in the network model, disjoint
      // from the all-to-all fabric), and the gradient all-to-all plus the
      // embedding update run under it. Identical float operations on
      // identical inputs either way.
      const auto run_bwd_exchange = [&] {
        const A2AStats bwd_stats =
            bwd_a2a.exchange(comm, send_bwd, recv_bwd, phases::kAllToAllBwd);
        bwd_raw += bwd_stats.send_raw_bytes;
        bwd_wire += bwd_stats.send_wire_bytes;
        crc_fold(bwd_stats.wire_crc32);
      };
      const auto run_bottom_backward = [&] {
        (void)state.bottom->backward(dz0);
        comm.advance_compute(
            phases::kBottomMlp,
            2.0 * config_.compute.mlp_seconds(local_batch, bdims));
      };
      const auto run_emb_update = [&] {
        // Embedding updates are global-batch means: scale by 1/world,
        // see header.
        std::size_t update_bytes = 0;
        const float lr_scale = 1.0f / static_cast<float>(world);
        for (const std::size_t t : state.owned_tables) {
          optimizers[t].apply(tables[t], batch.indices[t], grad_assembled[t],
                              lr_scale);
          update_bytes += grad_assembled[t].size() * sizeof(float);
        }
        comm.advance_compute(phases::kEmbUpdate,
                             config_.compute.memory_bound_seconds(update_bytes));
      };

      DLCOMP_TRACE_INSTANT("train/backward_exchange");
      if (config_.overlap.backward) {
        run_bottom_backward();
        pack_mlp_grads(state);
        PendingCollective pending_ar =
            comm.all_reduce_sum_async(state.grad_scratch, phases::kAllReduce);
        run_bwd_exchange();
        run_emb_update();
        pending_ar.wait();
        unpack_mlp_grads(state, comm.world());
      } else {
        run_bwd_exchange();
        run_bottom_backward();
        run_emb_update();
        allreduce_mlp_grads(comm, state);
      }
      state.bottom->sgd_step(config_.model.learning_rate);
      state.top->sgd_step(config_.model.learning_rate);

      // Steady-state allocation accounting: the first two iterations are
      // warm-up (buffers and workspaces reach their high-water marks);
      // growth after that is a regression the tests assert against.
      if (iter < start_iter + 2) grow_baseline = grow_events_total();

      if (rank == 0) iter_wall_hist.observe(iter_timer.seconds());

      // ---- Bookkeeping (rank 0 records/saves; all ranks barrier so the
      // snapshot is a consistent cut of tables and optimizer state).
      const bool record =
          config_.record_every == 0 || iter % std::max<std::size_t>(config_.record_every, 1) == 0 ||
          iter + 1 == config_.iterations;
      const bool eval_now =
          config_.eval_every > 0 && (iter + 1) % config_.eval_every == 0;
      const bool save_now =
          can_save &&
          ((config_.checkpoint.every > 0 &&
            (iter + 1) % config_.checkpoint.every == 0) ||
           iter + 1 == config_.iterations);
      if (record || eval_now || save_now) {
        comm.barrier();  // quiesce table writes before rank 0 reads them
        if (eval_now) sync_tables_for_eval(comm, tables);
        if (rank == 0) {
          if (record || eval_now) {
            IterationRecord rec;
            rec.iter = iter;
            rec.train_loss = loss.loss;
            rec.train_accuracy = loss.accuracy;
            rec.forward_cr = fwd_stats.compression_ratio();
            rec.eb_scale = eb_scale;
            if (eval_now) {
              rec.eval_accuracy =
                  evaluate_full(*state.bottom, *state.top, tables, spec,
                                dataset,
                                std::min<std::size_t>(global_batch, 512),
                                config_.eval_batches)
                      .accuracy;
            }
            result.history.push_back(rec);
          }
          if (config_.status != nullptr) {
            const double elapsed = wall.seconds();
            const double samples_per_s =
                elapsed > 0.0 ? static_cast<double>(
                                    (iter + 1 - start_iter) * global_batch) /
                                    elapsed
                              : 0.0;
            config_.status->heartbeat(iter + 1, samples_per_s);
          }
          if (save_now) {
            char name[32];
            std::snprintf(name, sizeof(name), "ckpt_%06llu.dlck",
                          static_cast<unsigned long long>(iter + 1));
            const std::string path =
                (std::filesystem::path(config_.checkpoint.directory) / name)
                    .string();
            ModelState snap = shared_state(iter + 1);
            snap.bottom = state.bottom.get();  // rank 0's trained replicas
            snap.top = state.top.get();
            result.checkpoints_written.push_back(
                ckpt_writer->save(path, snap, config_.checkpoint.full_every));
            DLCOMP_LOG_INFO("train", "checkpoint saved",
                            {"path", result.checkpoints_written.back()},
                            {"iteration", iter + 1});
          }
        }
        comm.barrier();  // others wait for rank 0's eval/save before mutating
      }
    }

    // Final held-out evaluation.
    comm.barrier();
    sync_tables_for_eval(comm, tables);
    if (rank == 0) {
      result.final_eval =
          evaluate_full(*state.bottom, *state.top, tables, spec, dataset,
                        std::min<std::size_t>(global_batch, 512),
                        config_.eval_batches);
    }
    comm.barrier();

    // ---- Cross-rank result aggregation over the raw transport. Raw
    // exchanges charge no simulated time, so shipping the totals leaves
    // every simulated number untouched -- and running the same code under
    // both backends keeps the aggregation path itself backend-identical.
    RankTotals mine;
    mine.fwd_raw = fwd_raw;
    mine.fwd_wire = fwd_wire;
    mine.bwd_raw = bwd_raw;
    mine.bwd_wire = bwd_wire;
    mine.steady_grow = grow_events_total() - grow_baseline;
    mine.wire_crc = crc32_final(rank_crc);
    mine.wire_bytes_sent = comm.wire_bytes_sent();
    mine.comm = comm.comm_stats();
    mine.clock_now = comm.clock().now();
    merge_tags(mine.fwd_tags, a2a.per_tag_bytes(), 0);
    merge_tags(mine.bwd_tags, bwd_a2a.per_tag_bytes(), num_tables);
    mine.breakdown = comm.clock().breakdown();
    mine.hidden = comm.clock().hidden_breakdown();

    const std::vector<std::byte> blob = serialize_rank_totals(mine);
    std::vector<std::span<const std::byte>> to_all(
        world, std::span<const std::byte>(blob));
    std::vector<std::vector<std::byte>> agg_controls;
    std::vector<std::vector<std::byte>> agg_recv;
    comm.transport().exchange({}, to_all, agg_controls, agg_recv);
    if (rank == 0) {
      std::vector<RankTotals> totals;
      totals.reserve(world);
      for (std::size_t r = 0; r < world; ++r) {
        totals.push_back(parse_rank_totals(agg_recv[r]));
      }
      std::uint32_t combined_crc = crc32_init();
      const RankTotals* slowest = nullptr;
      double latest = -1.0;
      for (const RankTotals& t : totals) {
        result.forward_raw_bytes += t.fwd_raw;
        result.forward_wire_bytes += t.fwd_wire;
        result.backward_raw_bytes += t.bwd_raw;
        result.backward_wire_bytes += t.bwd_wire;
        result.steady_state_grow_events += t.steady_grow;
        result.comm_stats += t.comm;
        result.wire_bytes_sent += t.wire_bytes_sent;
        combined_crc = crc32_update(
            combined_crc,
            std::as_bytes(std::span<const std::uint32_t>(&t.wire_crc, 1)));
        add_tags(fwd_tag_bytes, t.fwd_tags);
        add_tags(bwd_tag_bytes, t.bwd_tags);
        if (t.clock_now > latest) {
          latest = t.clock_now;
          slowest = &t;
        }
      }
      result.wire_crc32 = crc32_final(combined_crc);
      result.makespan_seconds = latest;
      if (slowest != nullptr) {
        result.phase_seconds = slowest->breakdown;
        result.hidden_phase_seconds = slowest->hidden;
      }
    }
  };

  if (config_.transport.backend == "tcp") {
    TcpTransportConfig tcfg;
    tcfg.world = config_.world;
    tcfg.rank = config_.transport.rank;
    tcfg.address = config_.transport.address;
    tcfg.port = config_.transport.port;
    tcfg.inherited_listen_fd = config_.transport.inherited_listen_fd;
    tcfg.connect_timeout_s = config_.transport.connect_timeout_s;
    TcpRuntime runtime(tcfg, config_.network);
    trace_bind_thread_rank(runtime.transport().rank());
    rank_body(runtime.comm());
  } else {
    Cluster cluster(config_.world, config_.network);
    cluster.run(rank_body);
  }

  result.wall_seconds = wall.seconds();

  // ---- Metrics snapshot: the machine-readable face of this result.
  MetricsSnapshot& snap = result.metrics;
  snap.set("train/iterations",
           static_cast<double>(config_.iterations - start_iter));
  snap.set("train/world", static_cast<double>(config_.world));
  snap.set("train/forward_raw_bytes",
           static_cast<double>(result.forward_raw_bytes));
  snap.set("train/forward_wire_bytes",
           static_cast<double>(result.forward_wire_bytes));
  snap.set("train/forward_cr", result.forward_cr());
  snap.set("train/backward_raw_bytes",
           static_cast<double>(result.backward_raw_bytes));
  snap.set("train/backward_wire_bytes",
           static_cast<double>(result.backward_wire_bytes));
  snap.set("train/backward_cr", result.backward_cr());
  snap.set("train/steady_grow_events",
           static_cast<double>(result.steady_state_grow_events));
  snap.set("train/wire_crc32", static_cast<double>(result.wire_crc32));
  snap.set("train/wall_seconds", result.wall_seconds);
  snap.set("train/exposed_comm_seconds", result.exposed_comm_seconds());
  snap.set("train/hidden_comm_seconds", result.hidden_comm_seconds());
  if (!result.history.empty()) {
    snap.set("train/final_loss", result.history.back().train_loss);
    snap.set("train/final_accuracy", result.history.back().train_accuracy);
  }
  snap.set("train/eval_loss", result.final_eval.loss);
  snap.set("train/eval_accuracy", result.final_eval.accuracy);
  snapshot_histogram(snap, "train/iter_wall_s", iter_wall_hist);
  // The slowest rank's SimClock ledgers, same keys SimClock::export_to
  // would emit (the maps arrived through the result aggregation).
  for (const auto& [phase, seconds] : result.phase_seconds) {
    snap.set("sim/" + phase, seconds);
  }
  for (const auto& [phase, seconds] : result.hidden_phase_seconds) {
    snap.set("sim/hidden/" + phase, seconds);
  }
  snap.set("sim/makespan", result.makespan_seconds);
  // Per-collective accounting summed over ranks (same numbers
  // publish_comm_metrics exposes as dlcomp_comm_* in a live registry).
  snap.set("comm/alltoall_total",
           static_cast<double>(result.comm_stats.alltoall_count));
  snap.set("comm/alltoall_wire_bytes_total",
           static_cast<double>(result.comm_stats.alltoall_wire_bytes));
  snap.set("comm/allreduce_total",
           static_cast<double>(result.comm_stats.allreduce_count));
  snap.set("comm/allreduce_wire_bytes_total",
           static_cast<double>(result.comm_stats.allreduce_wire_bytes));
  snap.set("comm/allgather_total",
           static_cast<double>(result.comm_stats.allgather_count));
  snap.set("comm/allgather_wire_bytes_total",
           static_cast<double>(result.comm_stats.allgather_wire_bytes));
  snap.set("comm/broadcast_total",
           static_cast<double>(result.comm_stats.broadcast_count));
  snap.set("comm/broadcast_wire_bytes_total",
           static_cast<double>(result.comm_stats.broadcast_wire_bytes));
  snap.set("comm/barrier_total",
           static_cast<double>(result.comm_stats.barrier_count));
  snap.set("comm/wire_bytes_sent_total",
           static_cast<double>(result.wire_bytes_sent));
  const auto table_keys = [&snap](const char* dir,
                                  const std::vector<CompressedAllToAll::TagBytes>&
                                      tags) {
    for (std::size_t t = 0; t < tags.size(); ++t) {
      const std::string base =
          std::string("train/table/") + std::to_string(t) + "/" + dir;
      snap.set(base + "_raw_bytes", static_cast<double>(tags[t].raw));
      snap.set(base + "_wire_bytes", static_cast<double>(tags[t].wire));
      snap.set(base + "_cr",
               tags[t].wire == 0 ? 1.0
                                 : static_cast<double>(tags[t].raw) /
                                       static_cast<double>(tags[t].wire));
    }
  };
  table_keys("fwd", fwd_tag_bytes);
  table_keys("bwd", bwd_tag_bytes);
  return result;
}

}  // namespace dlcomp
