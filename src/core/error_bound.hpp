#pragma once

/// \file error_bound.hpp
/// Error-bound classes and configuration (Algorithm 1's globals). The
/// paper's chosen operating point is LargeEB 0.05, MediumEB 0.03,
/// SmallEB 0.01, i.e. global 0.03 with alpha = 5/3 and beta = 3.

#include <cstdint>

#include "common/error.hpp"

namespace dlcomp {

/// Error-bound magnitude class assigned to an embedding table.
enum class EbClass : std::uint8_t { kLarge, kMedium, kSmall };

[[nodiscard]] constexpr const char* to_string(EbClass c) noexcept {
  switch (c) {
    case EbClass::kLarge: return "L";
    case EbClass::kMedium: return "M";
    case EbClass::kSmall: return "S";
  }
  return "?";
}

/// Algorithm 1 lines 1-4: LargeEB = global * alpha, MediumEB = global,
/// SmallEB = global / beta.
struct ErrorBoundConfig {
  double global_eb = 0.03;
  double alpha = 5.0 / 3.0;
  double beta = 3.0;

  [[nodiscard]] double eb_for(EbClass c) const {
    DLCOMP_CHECK(global_eb > 0.0 && alpha >= 1.0 && beta >= 1.0);
    switch (c) {
      case EbClass::kLarge: return global_eb * alpha;
      case EbClass::kMedium: return global_eb;
      case EbClass::kSmall: return global_eb / beta;
    }
    throw Error("invalid EbClass");
  }

  /// The paper's final configuration (Sec. IV-B): 0.05 / 0.03 / 0.01.
  static ErrorBoundConfig paper_default() {
    return ErrorBoundConfig{0.03, 5.0 / 3.0, 3.0};
  }
};

}  // namespace dlcomp
