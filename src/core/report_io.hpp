#pragma once

/// \file report_io.hpp
/// Persistence for the offline-analysis plan. The paper's workflow runs
/// the offline stage once and feeds its configuration (per-table error
/// bounds + codec choices) into every subsequent training job; these
/// helpers serialize exactly that hand-off as a line-oriented text file:
///
///   dlcomp-plan v1
///   tables <N>
///   table <id> eb <bound> class <L|M|S> codec <vector-lz|huffman|auto> \
///         homo <eta> retention <r>
///
/// The format is deliberately diff- and grep-friendly (it goes into
/// experiment repos next to training configs).

#include <iosfwd>
#include <string>
#include <vector>

#include "compress/compressor.hpp"
#include "core/error_bound.hpp"

namespace dlcomp {

struct AnalysisReport;  // from offline_analyzer.hpp

/// The subset of the analysis that training consumes.
struct CompressionPlan {
  struct Table {
    std::size_t table_id = 0;
    double error_bound = 0.0;
    EbClass eb_class = EbClass::kMedium;
    HybridChoice choice = HybridChoice::kAuto;
    double homo_index = 0.0;
    double pattern_retention = 1.0;
  };
  std::vector<Table> tables;

  [[nodiscard]] std::vector<double> table_error_bounds() const;
  [[nodiscard]] std::vector<HybridChoice> table_choices() const;
};

/// Extracts the plan from a full analysis report.
CompressionPlan make_plan(const AnalysisReport& report);

/// Serializes a plan (see header comment for the format).
void write_plan(std::ostream& os, const CompressionPlan& plan);
std::string plan_to_string(const CompressionPlan& plan);

/// Parses a plan; throws FormatError on malformed input.
CompressionPlan read_plan(std::istream& is);
CompressionPlan plan_from_string(const std::string& text);

/// File conveniences.
void save_plan(const std::string& path, const CompressionPlan& plan);
CompressionPlan load_plan(const std::string& path);

}  // namespace dlcomp
