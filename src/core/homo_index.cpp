#include "core/homo_index.hpp"

#include <vector>

#include "common/error.hpp"
#include "compress/quantizer.hpp"

namespace dlcomp {

HomoIndexResult compute_homo_index(std::span<const float> values,
                                   std::size_t dim, double eb) {
  DLCOMP_CHECK(dim > 0);
  DLCOMP_CHECK_MSG(values.size() >= dim,
                   "need at least one full vector to compute the index");

  HomoIndexResult result;
  result.original_patterns = count_unique_vectors(values, dim);

  std::vector<std::int32_t> codes(values.size());
  quantize(values, eb, codes);
  result.quantized_patterns =
      count_unique_vectors(std::span<const std::int32_t>(codes), dim);

  const auto orig = static_cast<double>(result.original_patterns);
  const auto quant = static_cast<double>(result.quantized_patterns);
  result.homo_index = orig > 0.0 ? (orig - quant) / orig : 0.0;
  result.pattern_retention = orig > 0.0 ? quant / orig : 1.0;
  return result;
}

}  // namespace dlcomp
