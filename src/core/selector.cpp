#include "core/selector.hpp"

#include <string>

#include "common/error.hpp"
#include "compress/registry.hpp"

namespace dlcomp {

double eq2_speedup(double compression_ratio, double network_bandwidth_bps,
                   double compress_bps, double decompress_bps) {
  DLCOMP_CHECK(compression_ratio > 0.0);
  DLCOMP_CHECK(network_bandwidth_bps > 0.0);
  DLCOMP_CHECK(compress_bps > 0.0 && decompress_bps > 0.0);
  const double denom = 1.0 / compression_ratio +
                       network_bandwidth_bps *
                           (1.0 / compress_bps + 1.0 / decompress_bps);
  return 1.0 / denom;
}

SelectionResult CompressorSelector::select(
    std::span<const float> sample, const CompressParams& params,
    std::span<const std::string_view> candidate_names) const {
  DLCOMP_CHECK_MSG(!candidate_names.empty(), "no candidate codecs supplied");
  DLCOMP_CHECK_MSG(!sample.empty(), "empty sample");

  SelectionResult result;
  result.candidates.reserve(candidate_names.size());

  for (const auto name : candidate_names) {
    const Compressor& codec = get_compressor(name);
    const RoundTrip rt = round_trip(codec, sample, params);

    CandidateScore score;
    score.codec = std::string(name);
    score.compression_ratio = rt.compress_stats.ratio();
    score.measured_compress_bps =
        rt.compress_stats.throughput_bytes_per_second();
    score.measured_decompress_bps =
        rt.decompress_seconds > 0.0
            ? static_cast<double>(rt.compress_stats.input_bytes) /
                  rt.decompress_seconds
            : 0.0;

    if (config_.use_calibrated_throughput) {
      const CodecThroughput calibrated =
          calibrated_throughput(name);
      score.compress_bps = calibrated.compress_bps;
      score.decompress_bps = calibrated.decompress_bps;
    } else {
      score.compress_bps = score.measured_compress_bps;
      score.decompress_bps = score.measured_decompress_bps;
    }
    // Degenerate timing measurements (too fast to time) fall back to the
    // calibrated values so Eq. (2) stays well defined.
    if (score.compress_bps <= 0.0 || score.decompress_bps <= 0.0) {
      const CodecThroughput calibrated =
          calibrated_throughput(name);
      score.compress_bps = calibrated.compress_bps;
      score.decompress_bps = calibrated.decompress_bps;
    }

    score.est_speedup =
        eq2_speedup(score.compression_ratio,
                    config_.network.bandwidth_bytes_per_second,
                    score.compress_bps, score.decompress_bps);
    result.candidates.push_back(score);
  }

  for (std::size_t i = 1; i < result.candidates.size(); ++i) {
    if (result.candidates[i].est_speedup >
        result.candidates[result.best_index].est_speedup) {
      result.best_index = i;
    }
  }
  return result;
}

}  // namespace dlcomp
