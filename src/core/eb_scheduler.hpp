#pragma once

/// \file eb_scheduler.hpp
/// Iteration-wise error-bound adjustment (paper Sec. III-C (1)): training
/// is split into an initial phase, during which the error bound decays
/// from initial_scale x base down to 1 x base via a chosen decay
/// function, and a later phase with the bound held constant. The paper
/// finds step-wise (staircase) decay gives the best compression-vs-
/// convergence trade-off and adopts it as the default; the abrupt "Drop"
/// variant is the Fig. 10 strawman.

#include <cstddef>
#include <cstdint>
#include <string_view>

namespace dlcomp {

enum class DecayFunc : std::uint8_t {
  kNone,         ///< constant 1x (fixed global error bound)
  kStepwise,     ///< staircase descent (paper default)
  kLogarithmic,  ///< fast-then-slow continuous descent
  kLinear,       ///< straight-line descent
  kExponential,  ///< slow-then-fast continuous descent
  kDrop,         ///< hold initial_scale, then jump to 1x (aggressive)
};

[[nodiscard]] std::string_view to_string(DecayFunc f) noexcept;

struct SchedulerConfig {
  DecayFunc func = DecayFunc::kStepwise;
  /// Starting multiplier applied to each table's base error bound
  /// (Fig. 10 evaluates 2x and 3x).
  double initial_scale = 2.0;
  /// Iteration at which the initial phase ends and the scale reaches 1.
  std::size_t decay_end_iter = 1000;
  /// Staircase step count for kStepwise.
  std::size_t num_steps = 4;
};

class ErrorBoundScheduler {
 public:
  explicit ErrorBoundScheduler(const SchedulerConfig& config);

  /// Multiplier to apply to base error bounds at iteration `iter`.
  /// Monotonically non-increasing from initial_scale to exactly 1.0 at
  /// decay_end_iter and beyond.
  [[nodiscard]] double scale_at(std::size_t iter) const;

  [[nodiscard]] const SchedulerConfig& config() const noexcept { return config_; }

 private:
  SchedulerConfig config_;
};

}  // namespace dlcomp
