#include "core/report_io.hpp"

#include <fstream>
#include <sstream>

#include "common/error.hpp"
#include "core/offline_analyzer.hpp"

namespace dlcomp {

namespace {

const char* choice_name(HybridChoice c) {
  switch (c) {
    case HybridChoice::kVectorLz: return "vector-lz";
    case HybridChoice::kHuffman: return "huffman";
    case HybridChoice::kAuto: return "auto";
  }
  return "auto";
}

HybridChoice parse_choice(const std::string& name) {
  if (name == "vector-lz") return HybridChoice::kVectorLz;
  if (name == "huffman") return HybridChoice::kHuffman;
  if (name == "auto") return HybridChoice::kAuto;
  throw FormatError("unknown codec choice in plan: " + name);
}

EbClass parse_class(const std::string& name) {
  if (name == "L") return EbClass::kLarge;
  if (name == "M") return EbClass::kMedium;
  if (name == "S") return EbClass::kSmall;
  throw FormatError("unknown EB class in plan: " + name);
}

}  // namespace

std::vector<double> CompressionPlan::table_error_bounds() const {
  std::vector<double> ebs(tables.size(), 0.0);
  for (const auto& t : tables) ebs.at(t.table_id) = t.error_bound;
  return ebs;
}

std::vector<HybridChoice> CompressionPlan::table_choices() const {
  std::vector<HybridChoice> choices(tables.size(), HybridChoice::kAuto);
  for (const auto& t : tables) choices.at(t.table_id) = t.choice;
  return choices;
}

CompressionPlan make_plan(const AnalysisReport& report) {
  CompressionPlan plan;
  plan.tables.reserve(report.tables.size());
  const auto choices = report.table_choices();
  for (const auto& analysis : report.tables) {
    CompressionPlan::Table t;
    t.table_id = analysis.table_id;
    t.error_bound = analysis.assigned_eb;
    t.eb_class = analysis.eb_class;
    t.choice = choices.at(analysis.table_id);
    t.homo_index = analysis.homo.homo_index;
    t.pattern_retention = analysis.homo.pattern_retention;
    plan.tables.push_back(t);
  }
  return plan;
}

void write_plan(std::ostream& os, const CompressionPlan& plan) {
  os << "dlcomp-plan v1\n";
  os << "tables " << plan.tables.size() << "\n";
  os.precision(12);
  for (const auto& t : plan.tables) {
    os << "table " << t.table_id << " eb " << t.error_bound << " class "
       << to_string(t.eb_class) << " codec " << choice_name(t.choice)
       << " homo " << t.homo_index << " retention " << t.pattern_retention
       << "\n";
  }
}

std::string plan_to_string(const CompressionPlan& plan) {
  std::ostringstream os;
  write_plan(os, plan);
  return os.str();
}

CompressionPlan read_plan(std::istream& is) {
  std::string word;
  std::string version;
  is >> word >> version;
  if (word != "dlcomp-plan" || version != "v1") {
    throw FormatError("not a dlcomp-plan v1 file");
  }
  std::size_t count = 0;
  is >> word >> count;
  if (word != "tables") throw FormatError("plan missing table count");

  CompressionPlan plan;
  plan.tables.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    CompressionPlan::Table t;
    std::string key;
    std::string cls;
    std::string codec;
    is >> key >> t.table_id;
    if (key != "table") throw FormatError("plan table row malformed");
    is >> key >> t.error_bound;
    if (key != "eb") throw FormatError("plan missing eb");
    is >> key >> cls;
    if (key != "class") throw FormatError("plan missing class");
    t.eb_class = parse_class(cls);
    is >> key >> codec;
    if (key != "codec") throw FormatError("plan missing codec");
    t.choice = parse_choice(codec);
    is >> key >> t.homo_index;
    if (key != "homo") throw FormatError("plan missing homo");
    is >> key >> t.pattern_retention;
    if (key != "retention") throw FormatError("plan missing retention");
    if (!is) throw FormatError("plan truncated");
    plan.tables.push_back(t);
  }
  return plan;
}

CompressionPlan plan_from_string(const std::string& text) {
  std::istringstream is(text);
  return read_plan(is);
}

void save_plan(const std::string& path, const CompressionPlan& plan) {
  std::ofstream os(path);
  DLCOMP_CHECK_MSG(os.good(), "cannot open plan file for writing: " << path);
  write_plan(os, plan);
  DLCOMP_CHECK_MSG(os.good(), "failed writing plan file: " << path);
}

CompressionPlan load_plan(const std::string& path) {
  std::ifstream is(path);
  if (!is.good()) throw Error("cannot open plan file: " + path);
  return read_plan(is);
}

}  // namespace dlcomp
