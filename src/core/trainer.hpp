#pragma once

/// \file trainer.hpp
/// Hybrid-parallel DLRM trainer with compressed all-to-all -- the paper's
/// full training pipeline on the simulated cluster:
///   - embedding tables are model-parallel (table t lives on rank
///     t % world; ranks without tables still participate, as happens when
///     world > 26),
///   - MLPs are data-parallel (replicated; gradients all-reduced),
///   - forward lookups travel dest-ward through a compressed all-to-all,
///     gradients travel back through a symmetric one,
///   - per-table error bounds come from the offline analysis and decay
///     iteration-wise through the scheduler (the dual-level strategy).
///
/// Math note: with compression disabled the distributed run is equivalent
/// (up to float summation order) to single-process training on the global
/// batch -- gradients are rescaled by 1/world so both MLP and embedding
/// updates are global-batch means. The integration tests verify this.

#include <map>
#include <string>
#include <vector>

#include "comm/network_model.hpp"
#include "core/compressed_alltoall.hpp"
#include "core/compute_model.hpp"
#include "core/eb_scheduler.hpp"
#include "data/batch_source.hpp"
#include "dlrm/loss.hpp"
#include "dlrm/model.hpp"
#include "obs/metrics.hpp"

namespace dlcomp {

class StatusBoard;

/// What to compress and how hard.
struct CompressionPolicy {
  /// Registry codec name; empty string disables compression entirely.
  std::string codec;

  /// Per-table base absolute error bounds (forward lookups). Empty means
  /// every table uses `global_eb`. Typically filled from
  /// AnalysisReport::table_error_bounds().
  std::vector<double> table_eb;
  double global_eb = 0.02;

  /// Per-table hybrid codec choices (only meaningful for codec="hybrid").
  /// Empty means kAuto. Typically AnalysisReport::table_choices().
  std::vector<HybridChoice> table_choice;

  /// Iteration-wise decay of the forward error bounds.
  SchedulerConfig scheduler{.func = DecayFunc::kNone};

  /// Compress the backward (gradient) all-to-all too. Gradient bounds are
  /// range-relative (see DESIGN.md): eb = backward_relative_eb * range.
  bool compress_backward = true;
  double backward_relative_eb = 0.01;
};

/// Overlap/pipelining of communication with compute — the system-side
/// companion to the compression (hidden wire time never reaches the
/// iteration's critical path). All flags preserve the training math
/// bitwise: only the schedule and the simulated-clock attribution change.
/// Defaults are fully serial.
struct OverlapPolicy {
  /// Run the bottom-MLP forward while the forward all-to-all is in
  /// flight (the lookup exchange does not depend on the dense path).
  bool forward = false;
  /// Issue the MLP-gradient all-reduce (NVLink-class link in the network
  /// model) before the backward all-to-all + embedding update, waiting
  /// only after both.
  bool backward = false;
  /// Chunk groups per destination inside each compressed all-to-all:
  /// group k+1 compresses while group k's payload is on the wire
  /// (CompressedAllToAllConfig::pipeline_stages). 1 = monolithic.
  std::size_t pipeline_stages = 1;
};

/// Periodic snapshotting and resume (see src/ckpt/). Saving happens on
/// rank 0 inside a cluster-wide barrier, so the persisted state is a
/// consistent cut of all tables and MLP replicas.
struct CheckpointPolicy {
  /// Directory snapshots go to (created on demand); empty disables saving.
  std::string directory;

  /// Save every N completed iterations (a final save always happens when
  /// saving is enabled); 0 means final-only.
  std::size_t every = 0;

  /// Every k-th save is a full snapshot, the rest are deltas against the
  /// previous save (<= 1 means every save is full).
  std::size_t full_every = 1;

  /// Registry codec for embedding-table payloads; empty stores raw
  /// float32 (bitwise-lossless, required for exact resume equivalence).
  std::string codec;

  /// Per-table absolute error bounds for the codec; empty means
  /// `global_eb` everywhere. Typically AnalysisReport bounds.
  std::vector<double> table_eb;
  double global_eb = 0.01;

  /// Path of a checkpoint (chain tail) to restore before training; empty
  /// starts fresh. Restores tables, MLPs, optimizer state and the
  /// iteration counter, so a lossless resume replays the uninterrupted
  /// run exactly.
  std::string resume_from;
};

/// Which comm backend carries the collectives. "sim" runs every rank as
/// a thread of this process over SimTransport (the default; what every
/// test and bench uses). "tcp" runs *this process* as one rank of a
/// world-sized process group over TcpTransport -- each process calls
/// train() with the same config except `rank`, and only rank 0's result
/// carries history/aggregates. Simulated clocks, loss trajectories and
/// wire CRCs are bitwise identical across backends at the same world.
struct TransportPolicy {
  std::string backend = "sim";  ///< "sim" (threads) | "tcp" (processes)

  /// This process's rank (tcp only; sim spawns all ranks itself).
  int rank = 0;
  /// Rendezvous address/port of rank 0's listener (tcp only). port == 0
  /// requires inherited_listen_fd on rank 0.
  std::string address = "127.0.0.1";
  std::uint16_t port = 0;
  /// Pre-bound listening socket inherited from a launcher (tcp rank 0
  /// only; lets the parent pick an ephemeral port race-free). -1 = none.
  int inherited_listen_fd = -1;
  double connect_timeout_s = 30.0;
};

struct TrainerConfig {
  int world = 4;
  /// Global batch size; 0 uses the dataset default. Must divide by world.
  std::size_t global_batch = 0;
  std::size_t iterations = 200;
  DlrmConfig model;
  CompressionPolicy compression;
  CheckpointPolicy checkpoint;
  OverlapPolicy overlap;

  NetworkModel network;
  ComputeModel compute;
  DeviceModel device;
  TransportPolicy transport;

  std::uint64_t seed = 42;
  /// Record train loss/accuracy every N iterations (0 = every iteration).
  std::size_t record_every = 10;
  /// Evaluate on held-out batches every N iterations (0 = final only).
  std::size_t eval_every = 0;
  std::size_t eval_batches = 8;

  /// Optional live-progress board (may stay null; must outlive train()).
  /// Rank 0 heartbeats iteration and samples/s at every record point, so
  /// a /status scrape of a long run shows progress instead of silence.
  StatusBoard* status = nullptr;
};

struct IterationRecord {
  std::size_t iter = 0;
  double train_loss = 0.0;
  double train_accuracy = 0.0;
  double eval_accuracy = -1.0;  ///< -1 when no eval ran at this point
  double forward_cr = 0.0;      ///< compression ratio this iteration
  double eb_scale = 1.0;        ///< scheduler multiplier this iteration
};

struct TrainingResult {
  std::vector<IterationRecord> history;
  LossResult final_eval;

  /// First iteration this run executed (> 0 after a resume); history
  /// covers [start_iteration, iterations).
  std::size_t start_iteration = 0;

  /// Snapshot files written by this run, in save order.
  std::vector<std::string> checkpoints_written;

  /// Simulated per-phase seconds, summed over iterations, from the
  /// slowest rank's clock. Sums to makespan_seconds (exposed time only).
  std::map<std::string, double> phase_seconds;
  /// Communication seconds the same rank absorbed behind overlapped
  /// compute (the SimClock hidden ledger); empty when overlap is off.
  std::map<std::string, double> hidden_phase_seconds;
  double makespan_seconds = 0.0;  ///< simulated total (slowest rank)
  double wall_seconds = 0.0;      ///< real CPU time of the whole run

  /// Workspace/send-buffer (re)allocations in the all-to-all exchanges
  /// after the warm-up iterations, summed over ranks. Zero when
  /// steady-state exchanges are allocation-free (asserted in tests for
  /// both the compressed and the compress_backward=false paths).
  std::uint64_t steady_state_grow_events = 0;

  std::uint64_t forward_raw_bytes = 0;
  std::uint64_t forward_wire_bytes = 0;
  std::uint64_t backward_raw_bytes = 0;
  std::uint64_t backward_wire_bytes = 0;

  /// CRC-32 over the compressed-exchange wire streams of the whole run:
  /// each rank folds its per-exchange A2AStats::wire_crc32 words in
  /// issue order (forward then backward, per iteration), and rank 0
  /// folds the per-rank words in rank order. Equal values between a sim
  /// and a tcp run of the same config mean the bytes that crossed the
  /// wire were identical, exchange by exchange, on every rank.
  std::uint32_t wire_crc32 = 0;

  /// Per-collective counts and modelled wire bytes, summed over ranks
  /// (see publish_comm_metrics); backend-independent by construction.
  CommStats comm_stats;
  std::uint64_t wire_bytes_sent = 0;  ///< modelled wire total over ranks

  /// Machine-readable run telemetry: byte totals and compression ratios
  /// (overall and per table, via the tagged all-to-all chunks), loss,
  /// iteration wall-time histogram, grow events, and the slowest rank's
  /// SimClock ledgers under "sim/" (SimClock::export_to). Everything the
  /// fields above carry is also here, in one flat sorted namespace.
  MetricsSnapshot metrics;

  [[nodiscard]] double forward_cr() const noexcept {
    return forward_wire_bytes == 0
               ? 1.0
               : static_cast<double>(forward_raw_bytes) /
                     static_cast<double>(forward_wire_bytes);
  }
  [[nodiscard]] double backward_cr() const noexcept {
    return backward_wire_bytes == 0
               ? 1.0
               : static_cast<double>(backward_raw_bytes) /
                     static_cast<double>(backward_wire_bytes);
  }

  /// Communication seconds (all-to-all payload + metadata + wait and the
  /// MLP all-reduce, excluding codec slices) that stalled the slowest
  /// rank, and the counterpart hidden behind overlapped compute.
  [[nodiscard]] double exposed_comm_seconds() const;
  [[nodiscard]] double hidden_comm_seconds() const;
};

class HybridParallelTrainer {
 public:
  explicit HybridParallelTrainer(TrainerConfig config);

  /// Runs the full training loop on a fresh simulated cluster and model
  /// state. Deterministic in (config.seed, data source). `dataset` may be
  /// synthetic or a ShardedDatasetReader over real shards.
  [[nodiscard]] TrainingResult train(const BatchSource& dataset);

 private:
  TrainerConfig config_;
};

/// Phase-name constants shared by the trainer and the breakdown benches.
namespace phases {
inline constexpr const char* kBottomMlp = "bottom_mlp";
inline constexpr const char* kEmbLookup = "emb_lookup";
inline constexpr const char* kAllToAllFwd = "alltoall_fwd";
inline constexpr const char* kInteraction = "interaction";
inline constexpr const char* kTopMlp = "top_mlp";
inline constexpr const char* kAllToAllBwd = "alltoall_bwd";
inline constexpr const char* kAllReduce = "allreduce_mlp";
inline constexpr const char* kEmbUpdate = "emb_update";
}  // namespace phases

}  // namespace dlcomp
