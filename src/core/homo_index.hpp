#pragma once

/// \file homo_index.hpp
/// Homogenization Index (paper Eq. 1): quantifies how many distinct
/// embedding vectors collapse into identical ones under error-bounded
/// quantization. eta = (N_original - N_quantized) / N_original, where the
/// N are unique-vector counts in a sampled batch; 0 means no collapse,
/// 1 means every vector collapsed into one.
///
/// Note on the paper's tables: Tables III/IV list N_quantized/N_original
/// (so "1" there means *no* homogenization). We expose that quantity as
/// `pattern_retention` and keep `homo_index` faithful to Eq. (1); the
/// table-reproduction benches print retention to match the paper's
/// columns. See DESIGN.md.

#include <cstddef>
#include <span>

namespace dlcomp {

struct HomoIndexResult {
  std::size_t original_patterns = 0;   ///< unique vectors before quantization
  std::size_t quantized_patterns = 0;  ///< unique vectors after quantization
  double homo_index = 0.0;             ///< Eq. (1)
  double pattern_retention = 1.0;      ///< N_quant / N_orig (paper's column)
};

/// Computes the index over a batch of embedding vectors (`values` is
/// batch*dim floats) at absolute error bound `eb`.
HomoIndexResult compute_homo_index(std::span<const float> values,
                                   std::size_t dim, double eb);

}  // namespace dlcomp
