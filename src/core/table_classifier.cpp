#include "core/table_classifier.hpp"

namespace dlcomp {

EbClass classify_table(double homo_index,
                       const ClassifierThresholds& thresholds) {
  DLCOMP_CHECK_MSG(thresholds.large_threshold <= thresholds.small_threshold,
                   "classifier thresholds out of order");
  if (homo_index > thresholds.small_threshold) return EbClass::kSmall;
  if (homo_index < thresholds.large_threshold) return EbClass::kLarge;
  return EbClass::kMedium;
}

}  // namespace dlcomp
