#pragma once

/// \file offline_analyzer.hpp
/// The paper's offline analysis stage (Fig. 3, Algorithms 1 & 2): sample
/// a few iterations' worth of lookups per table, compute the
/// Homogenization Index, classify each table into an error-bound class,
/// characterize its data (Gaussian vs uniform values, false-prediction
/// behaviour -- Table I), and select the best codec per table via the
/// Eq. (2) speedup model.

#include <string_view>
#include <vector>

#include "common/stats.hpp"
#include "core/error_bound.hpp"
#include "core/homo_index.hpp"
#include "core/selector.hpp"
#include "core/table_classifier.hpp"
#include "data/batch_source.hpp"
#include "dlrm/embedding_table.hpp"

namespace dlcomp {

struct AnalyzerConfig {
  /// Batches sampled per table (lookups are concatenated).
  std::size_t sample_batches = 4;
  /// Samples per batch; 0 means the dataset spec's default batch size.
  std::size_t batch_size = 0;
  /// Error bound used during sampling (the paper uses 0.01 on Kaggle and
  /// 0.005 on Terabyte for Tables III/IV).
  double sampling_eb = 0.01;

  ClassifierThresholds thresholds;
  ErrorBoundConfig eb_config = ErrorBoundConfig::paper_default();
  SelectorConfig selector;
  /// Candidate codecs for Algorithm 2 (the paper restricts the final pool
  /// to its two encoders).
  std::vector<std::string_view> candidates = {"vector-lz", "huffman"};
};

/// Everything the offline pass learned about one table.
struct TableAnalysis {
  std::size_t table_id = 0;
  HomoIndexResult homo;
  EbClass eb_class = EbClass::kMedium;
  double assigned_eb = 0.0;

  SelectionResult selection;      ///< per-candidate Eq. (2) scores
  std::size_t lz_matches = 0;     ///< vector matches in the sample

  Summary value_summary;          ///< raw lookup value statistics
  bool gaussian_values = false;   ///< Table I "Gaussian Distribution"
  bool false_prediction = false;  ///< Table I "False Prediction"
  double direct_entropy_bits = 0.0;   ///< entropy of direct quant codes
  double lorenzo_entropy_bits = 0.0;  ///< entropy of Lorenzo residual codes
};

struct AnalysisReport {
  AnalyzerConfig config;
  std::vector<TableAnalysis> tables;

  /// Per-table assigned error bounds (index = table id).
  [[nodiscard]] std::vector<double> table_error_bounds() const;

  /// Per-table hybrid codec choices (index = table id).
  [[nodiscard]] std::vector<HybridChoice> table_choices() const;
};

class OfflineAnalyzer {
 public:
  explicit OfflineAnalyzer(AnalyzerConfig config) : config_(std::move(config)) {}

  /// Analyzes every table: samples lookups, computes metrics, classifies
  /// and selects codecs. `tables` must match dataset.spec().
  [[nodiscard]] AnalysisReport analyze(
      const BatchSource& dataset,
      std::span<const EmbeddingTable> tables) const;

 private:
  AnalyzerConfig config_;
};

}  // namespace dlcomp
