#include "core/compressed_alltoall.hpp"

#include <algorithm>
#include <cstring>
#include <utility>

#include "common/byte_io.hpp"
#include "common/crc32.hpp"
#include "common/error.hpp"
#include "common/timer.hpp"
#include "obs/trace.hpp"

namespace dlcomp {

CompressedAllToAll::CompressedAllToAll(CompressedAllToAllConfig config)
    : config_(std::move(config)) {
  if (config_.codec != nullptr && !config_.throughput.has_value()) {
    config_.throughput = calibrated_throughput(config_.codec->name());
  }
  DLCOMP_CHECK_MSG(config_.pipeline_stages >= 1,
                   "pipeline_stages must be at least 1");
  if (config_.codec != nullptr) {
    scratch_.engine =
        std::make_unique<BlockEngine>(*config_.codec, config_.pool);
  }
}

CompressedAllToAll::PendingExchange&
CompressedAllToAll::PendingExchange::operator=(PendingExchange&& other) noexcept {
  if (this != &other) {
    owner_ = other.owner_;
    comm_ = other.comm_;
    recv_ = other.recv_;
    names_ = other.names_;
    groups_ = other.groups_;
    pending_ = std::move(other.pending_);
    stats_ = other.stats_;
    finished_ = other.finished_;
    other.finished_ = true;  // a moved-from exchange must never finish
  }
  return *this;
}

/// Directory layout prepended to each destination buffer:
///   u32 chunk_count (group 0 only; the total across all groups)
///   | u64 sizes[chunks in this group] | payload (streams back-to-back,
///   in chunk order).
/// Offsets are implied by prefix sums of sizes, so the directory stays
/// minimal (this is the per-destination metadata of the paper's stage 2).
/// The sizes are reserved up front and patched after each chunk lands, so
/// streams compress straight into the send buffer. With one group
/// (monolithic) this is the pre-pipelining framing unchanged; with G
/// groups the bytes on the wire are *identical in total* -- the count
/// travels once and every chunk's u64 size travels exactly once.
void CompressedAllToAll::read_group_directory_into(
    Communicator& comm, std::span<const std::byte> buffer, RecvDirectory& dir,
    std::size_t src, std::size_t lo, std::size_t hi,
    std::size_t total_expected, bool first_group) const {
  ByteReader reader(buffer);
  if (first_group) {
    const auto count = reader.read<std::uint32_t>();
    DLCOMP_CHECK_MSG(count == total_expected,
                     "rank " << comm.rank() << " expected " << total_expected
                             << " chunks from " << src << ", got " << count);
  }
  dir.offsets.clear();
  dir.sizes.clear();
  dir.offsets.reserve(hi - lo);
  dir.sizes.reserve(hi - lo);
  std::size_t cursor = 0;
  for (std::size_t i = lo; i < hi; ++i) {
    const auto size = static_cast<std::size_t>(reader.read<std::uint64_t>());
    dir.offsets.push_back(cursor);
    dir.sizes.push_back(size);
    cursor += size;
  }
  dir.payload = buffer.subspan(reader.position());
  if (dir.payload.size() != cursor) {
    throw FormatError("all-to-all chunk directory inconsistent with payload");
  }
}

std::size_t CompressedAllToAll::pack_group(
    Communicator& comm, const std::vector<std::vector<A2AChunkSpec>>& send,
    std::size_t g, std::size_t groups, A2AStats& stats) const {
  const auto world = static_cast<std::size_t>(comm.world());

  DLCOMP_TRACE_SPAN("a2a/pack_group");
  WallTimer compress_timer;
  if (config_.codec != nullptr) {
    // Codec path: three phases. (a) Serial framing — directories written,
    // every chunk registered with the engine (large chunks split into
    // blocks). (b) One flat parallel run over all blocks of all
    // destinations — parallelism scales with total block count, so a
    // group dominated by one huge chunk still uses the whole pool.
    // (c) Serial assembly — deterministic wire bytes, sizes patched.
    BlockEngine& engine = *scratch_.engine;
    engine.compress_begin();
    scratch_.packed_caps.resize(world);
    for (std::size_t d = 0; d < world; ++d) {
      std::vector<std::byte>& buf = scratch_.packed[d];
      scratch_.packed_caps[d] = buf.capacity();
      buf.clear();
      const auto& chunks = send[d];
      const std::size_t lo = group_begin(chunks.size(), groups, g);
      const std::size_t hi = group_begin(chunks.size(), groups, g + 1);
      if (g == 0) {
        append_pod(buf, static_cast<std::uint32_t>(chunks.size()));
      }
      buf.resize(buf.size() + (hi - lo) * sizeof(std::uint64_t));
      for (std::size_t i = lo; i < hi; ++i) {
        (void)engine.add_tensor(chunks[i].data, chunks[i].params);
      }
    }
    {
      DLCOMP_TRACE_SPAN("a2a/compress");
      engine.compress_run();
    }
    std::size_t slot = 0;
    for (std::size_t d = 0; d < world; ++d) {
      std::vector<std::byte>& buf = scratch_.packed[d];
      const auto& chunks = send[d];
      const std::size_t lo = group_begin(chunks.size(), groups, g);
      const std::size_t hi = group_begin(chunks.size(), groups, g + 1);
      const std::size_t sizes_at = g == 0 ? sizeof(std::uint32_t) : 0;
      for (std::size_t i = lo; i < hi; ++i, ++slot) {
        const std::size_t before = buf.size();
        engine.append_stream(slot, buf);
        const auto stream_bytes =
            static_cast<std::uint64_t>(buf.size() - before);
        std::memcpy(buf.data() + sizes_at + (i - lo) * sizeof(std::uint64_t),
                    &stream_bytes, sizeof(stream_bytes));
        if (chunks[i].tag != A2AChunkSpec::kNoTag) {
          scratch_.tag_wire[chunks[i].tag].fetch_add(
              stream_bytes, std::memory_order_relaxed);
        }
      }
      if (buf.capacity() != scratch_.packed_caps[d]) {
        scratch_.grow_events.fetch_add(1, std::memory_order_relaxed);
      }
    }
  } else {
    // Raw exchange: payload is the float bytes themselves; parallel per
    // destination (pure memcpy, no codec scratch involved).
    auto pack_destination = [&](std::size_t d) {
      DLCOMP_TRACE_SPAN("a2a/compress");
      std::vector<std::byte>& buf = scratch_.packed[d];
      const std::size_t cap_before = buf.capacity();
      buf.clear();
      const auto& chunks = send[d];
      const std::size_t lo = group_begin(chunks.size(), groups, g);
      const std::size_t hi = group_begin(chunks.size(), groups, g + 1);
      if (g == 0) {
        append_pod(buf, static_cast<std::uint32_t>(chunks.size()));
      }
      const std::size_t sizes_at = buf.size();
      buf.resize(sizes_at + (hi - lo) * sizeof(std::uint64_t));
      for (std::size_t i = lo; i < hi; ++i) {
        const std::size_t before = buf.size();
        const auto* p =
            reinterpret_cast<const std::byte*>(chunks[i].data.data());
        buf.insert(buf.end(), p, p + chunks[i].data.size_bytes());
        const auto stream_bytes =
            static_cast<std::uint64_t>(buf.size() - before);
        std::memcpy(buf.data() + sizes_at + (i - lo) * sizeof(std::uint64_t),
                    &stream_bytes, sizeof(stream_bytes));
        if (chunks[i].tag != A2AChunkSpec::kNoTag) {
          scratch_.tag_wire[chunks[i].tag].fetch_add(
              stream_bytes, std::memory_order_relaxed);
        }
      }
      if (buf.capacity() != cap_before) {
        scratch_.grow_events.fetch_add(1, std::memory_order_relaxed);
      }
    };
    if (config_.pool != nullptr && world > 1) {
      config_.pool->parallel_for(0, world, 1,
                                 [&](std::size_t lo, std::size_t hi) {
                                   for (std::size_t d = lo; d < hi; ++d) {
                                     pack_destination(d);
                                   }
                                 });
    } else {
      for (std::size_t d = 0; d < world; ++d) pack_destination(d);
    }
  }
  stats.compress_wall_seconds += compress_timer.seconds();

  std::size_t group_raw = 0;
  const auto me = static_cast<std::size_t>(comm.rank());
  for (std::size_t d = 0; d < world; ++d) {
    const auto& chunks = send[d];
    const std::size_t lo = group_begin(chunks.size(), groups, g);
    const std::size_t hi = group_begin(chunks.size(), groups, g + 1);
    for (std::size_t i = lo; i < hi; ++i) {
      group_raw += chunks[i].data.size_bytes();
    }
    stats.send_wire_bytes += scratch_.packed[d].size();
    // Running wire-stream CRC (finalized in finish()): only bytes that
    // actually cross the wire count, so the self chunk is skipped.
    if (d != me) {
      stats.wire_crc32 = crc32_update(stats.wire_crc32, scratch_.packed[d]);
    }
  }
  return group_raw;
}

void CompressedAllToAll::land_group(
    Communicator& comm, PendingCollective& pending, std::size_t g,
    std::size_t groups, const std::vector<std::vector<std::span<float>>>& recv,
    const PhaseNames& names, A2AStats& stats) const {
  const auto world = static_cast<std::size_t>(comm.world());

  DLCOMP_TRACE_SPAN("a2a/land_group");
  const PendingCollective::Charge charge = pending.wait();
  stats.exposed_comm_seconds += charge.exposed_seconds;
  stats.hidden_comm_seconds += charge.hidden_seconds;
  const auto& received = pending.recv();

  // ---- Stage (4): decompress this group (parallel across sources,
  // chunks within a source in order; per-peer workspaces as in stage 1 —
  // the two stages never run concurrently, so sharing is safe).
  WallTimer decompress_timer;
  scratch_.dirs.resize(world);
  std::size_t group_recv_raw = 0;
  for (std::size_t s = 0; s < world; ++s) {
    const std::size_t lo = group_begin(recv[s].size(), groups, g);
    const std::size_t hi = group_begin(recv[s].size(), groups, g + 1);
    read_group_directory_into(comm, received[s], scratch_.dirs[s], s, lo, hi,
                              recv[s].size(), g == 0);
    for (std::size_t i = lo; i < hi; ++i) {
      group_recv_raw += recv[s][i].size() * sizeof(float);
    }
  }

  if (config_.codec != nullptr) {
    // Codec path: register every chunk stream of every source with the
    // engine (blocked streams expand into per-block tasks) and run one
    // flat parallel pass — the multi-stream decompression of the paper,
    // extended below message granularity.
    DLCOMP_TRACE_SPAN("a2a/decompress");
    BlockEngine& engine = *scratch_.engine;
    engine.decompress_begin();
    for (std::size_t s = 0; s < world; ++s) {
      const RecvDirectory& dir = scratch_.dirs[s];
      const std::size_t lo = group_begin(recv[s].size(), groups, g);
      const std::size_t hi = group_begin(recv[s].size(), groups, g + 1);
      for (std::size_t i = lo; i < hi; ++i) {
        engine.add_stream(
            dir.payload.subspan(dir.offsets[i - lo], dir.sizes[i - lo]),
            recv[s][i]);
      }
    }
    engine.decompress_run();
  } else {
    auto unpack_source = [&](std::size_t s) {
      DLCOMP_TRACE_SPAN("a2a/decompress");
      const RecvDirectory& dir = scratch_.dirs[s];
      const std::size_t lo = group_begin(recv[s].size(), groups, g);
      const std::size_t hi = group_begin(recv[s].size(), groups, g + 1);
      for (std::size_t i = lo; i < hi; ++i) {
        const auto stream =
            dir.payload.subspan(dir.offsets[i - lo], dir.sizes[i - lo]);
        auto out = recv[s][i];
        DLCOMP_CHECK_MSG(stream.size() == out.size() * sizeof(float),
                         "raw chunk size mismatch");
        std::memcpy(out.data(), stream.data(), stream.size());
      }
    };
    if (config_.pool != nullptr && world > 1) {
      config_.pool->parallel_for(0, world, 1,
                                 [&](std::size_t lo, std::size_t hi) {
                                   for (std::size_t s = lo; s < hi; ++s) {
                                     unpack_source(s);
                                   }
                                 });
    } else {
      for (std::size_t s = 0; s < world; ++s) unpack_source(s);
    }
  }
  stats.decompress_wall_seconds += decompress_timer.seconds();

  if (config_.charge_modeled_time && config_.codec != nullptr) {
    const double modeled = config_.device.codec_seconds(
        1, group_recv_raw, config_.throughput->decompress_bps);
    stats.modeled_decompress_seconds += modeled;
    comm.advance_compute(names.decompress, modeled);
  }
}

CompressedAllToAll::PendingExchange CompressedAllToAll::exchange_begin(
    Communicator& comm, const std::vector<std::vector<A2AChunkSpec>>& send,
    const std::vector<std::vector<std::span<float>>>& recv,
    std::string_view phase) const {
  const auto world = static_cast<std::size_t>(comm.world());
  DLCOMP_CHECK_MSG(send.size() == world, "need one chunk list per destination");
  DLCOMP_CHECK_MSG(recv.size() == world, "need one output list per source");

  const PhaseNames& names = interned_phase(phase);
  const std::size_t groups = config_.pipeline_stages;

  PendingExchange ex;
  ex.owner_ = this;
  ex.comm_ = &comm;
  ex.recv_ = &recv;
  ex.names_ = &names;
  ex.groups_ = groups;
  ex.finished_ = false;
  ex.stats_.wire_crc32 = crc32_init();

  scratch_.packed.resize(world);

  // Size the per-tag accumulators to the high-water tag id before the
  // packing tasks fan out (they only fetch_add into existing slots).
  std::size_t tags_needed = 0;
  for (std::size_t d = 0; d < world; ++d) {
    for (const auto& chunk : send[d]) {
      ex.stats_.send_raw_bytes += chunk.data.size_bytes();
      if (chunk.tag != A2AChunkSpec::kNoTag) {
        tags_needed = std::max<std::size_t>(tags_needed, chunk.tag + 1);
      }
    }
  }
  if (tags_needed > scratch_.tag_count) {
    auto grown = std::make_unique<std::atomic<std::uint64_t>[]>(tags_needed);
    for (std::size_t t = 0; t < tags_needed; ++t) {
      grown[t].store(t < scratch_.tag_count
                         ? scratch_.tag_wire[t].load(std::memory_order_relaxed)
                         : 0,
                     std::memory_order_relaxed);
    }
    scratch_.tag_wire = std::move(grown);
    scratch_.tag_raw.resize(tags_needed, 0);
    scratch_.tag_count = tags_needed;
    scratch_.grow_events.fetch_add(1, std::memory_order_relaxed);
  }
  for (std::size_t d = 0; d < world; ++d) {
    for (const auto& chunk : send[d]) {
      if (chunk.tag != A2AChunkSpec::kNoTag) {
        scratch_.tag_raw[chunk.tag] += chunk.data.size_bytes();
      }
    }
  }

  // ---- Stages (1)-(3), group by group. Group g+1 compresses while group
  // g's payload is on the simulated wire; group g decompresses while
  // group g+1 is in flight. Groups serialize on the link: stage g may not
  // start before stage g-1's completion (`not_before`), which every rank
  // computes identically.
  PendingCollective in_flight;
  double link_free_at = 0.0;
  for (std::size_t g = 0; g < groups; ++g) {
    const std::size_t group_raw = pack_group(comm, send, g, groups, ex.stats_);

    // Modelled codec time for this group (one fused kernel per group,
    // writing into the send buffer per the buffer optimization). Charged
    // before the group is issued, so it overlaps the previous group's
    // wire time.
    if (config_.charge_modeled_time && config_.codec != nullptr) {
      const double modeled = config_.device.codec_seconds(
          1, group_raw, config_.throughput->compress_bps);
      ex.stats_.modeled_compress_seconds += modeled;
      comm.advance_compute(names.compress, modeled);
    }

    PendingCollective issued =
        comm.all_to_all_v_async(scratch_.packed, phase, link_free_at);
    link_free_at = issued.completion_seconds();
    if (g > 0) {
      land_group(comm, in_flight, g - 1, groups, recv, names, ex.stats_);
    }
    in_flight = std::move(issued);
  }
  ex.pending_ = std::move(in_flight);
  return ex;
}

A2AStats CompressedAllToAll::PendingExchange::finish() {
  DLCOMP_CHECK_MSG(!finished_, "exchange already finished");
  finished_ = true;
  owner_->land_group(*comm_, pending_, groups_ - 1, groups_, *recv_, *names_,
                     stats_);
  stats_.wire_crc32 = crc32_final(stats_.wire_crc32);
  return stats_;
}

A2AStats CompressedAllToAll::exchange(
    Communicator& comm, const std::vector<std::vector<A2AChunkSpec>>& send,
    const std::vector<std::vector<std::span<float>>>& recv,
    std::string_view phase) const {
  PendingExchange ex = exchange_begin(comm, send, recv, phase);
  return ex.finish();
}

std::uint64_t CompressedAllToAll::workspace_grow_events() const {
  std::uint64_t total = scratch_.grow_events.load(std::memory_order_relaxed);
  if (scratch_.engine != nullptr) total += scratch_.engine->grow_events();
  return total;
}

std::vector<CompressedAllToAll::TagBytes> CompressedAllToAll::per_tag_bytes()
    const {
  std::vector<TagBytes> out(scratch_.tag_count);
  for (std::size_t t = 0; t < scratch_.tag_count; ++t) {
    out[t].raw = scratch_.tag_raw[t];
    out[t].wire = scratch_.tag_wire[t].load(std::memory_order_relaxed);
  }
  return out;
}

std::size_t CompressedAllToAll::scratch_capacity_bytes() const {
  std::size_t total = 0;
  if (scratch_.engine != nullptr) total += scratch_.engine->capacity_bytes();
  for (const auto& buf : scratch_.packed) total += buf.capacity();
  for (const auto& dir : scratch_.dirs) {
    total += dir.offsets.capacity() * sizeof(std::size_t) +
             dir.sizes.capacity() * sizeof(std::size_t);
  }
  return total;
}

}  // namespace dlcomp
