#include "core/compressed_alltoall.hpp"

#include <cstring>

#include "common/byte_io.hpp"
#include "common/error.hpp"
#include "common/timer.hpp"

namespace dlcomp {

CompressedAllToAll::CompressedAllToAll(CompressedAllToAllConfig config)
    : config_(std::move(config)) {
  if (config_.codec != nullptr && !config_.throughput.has_value()) {
    config_.throughput = calibrated_throughput(config_.codec->name());
  }
}

/// Directory layout prepended to each destination buffer:
///   u32 chunk_count | u64 sizes[count] | payload (streams back-to-back,
///   in chunk order).
/// Offsets are implied by prefix sums of sizes, so the directory stays
/// minimal (this is the per-destination metadata of the paper's stage 2).
/// The sizes are reserved up front and patched after each chunk lands, so
/// streams compress straight into the send buffer.
void CompressedAllToAll::read_directory_into(std::span<const std::byte> buffer,
                                             RecvDirectory& dir) const {
  ByteReader reader(buffer);
  const auto count = reader.read<std::uint32_t>();
  dir.offsets.clear();
  dir.sizes.clear();
  dir.offsets.reserve(count);
  dir.sizes.reserve(count);
  std::size_t cursor = 0;
  for (std::uint32_t i = 0; i < count; ++i) {
    const auto size = static_cast<std::size_t>(reader.read<std::uint64_t>());
    dir.offsets.push_back(cursor);
    dir.sizes.push_back(size);
    cursor += size;
  }
  dir.payload = buffer.subspan(reader.position());
  if (dir.payload.size() != cursor) {
    throw FormatError("all-to-all chunk directory inconsistent with payload");
  }
}

A2AStats CompressedAllToAll::exchange(
    Communicator& comm, const std::vector<std::vector<A2AChunkSpec>>& send,
    const std::vector<std::vector<std::span<float>>>& recv,
    const std::string& phase) const {
  const auto world = static_cast<std::size_t>(comm.world());
  DLCOMP_CHECK_MSG(send.size() == world, "need one chunk list per destination");
  DLCOMP_CHECK_MSG(recv.size() == world, "need one output list per source");

  A2AStats stats;

  // ---- Stage (1): compress every chunk straight into its destination's
  // packed buffer (directory first, sizes patched in place). One task per
  // destination; each task uses its peer's dedicated workspace.
  WallTimer compress_timer;
  scratch_.packed.resize(world);
  if (scratch_.per_peer.size() < world) {
    scratch_.per_peer.reserve(world);
    while (scratch_.per_peer.size() < world) {
      scratch_.per_peer.push_back(std::make_unique<CompressionWorkspace>());
    }
  }

  auto pack_destination = [&](std::size_t d) {
    std::vector<std::byte>& buf = scratch_.packed[d];
    buf.clear();
    const auto& chunks = send[d];
    append_pod(buf, static_cast<std::uint32_t>(chunks.size()));
    const std::size_t sizes_at = buf.size();
    buf.resize(sizes_at + chunks.size() * sizeof(std::uint64_t));

    CompressionWorkspace& ws = *scratch_.per_peer[d];
    for (std::size_t i = 0; i < chunks.size(); ++i) {
      const std::size_t before = buf.size();
      if (config_.codec != nullptr) {
        config_.codec->compress(chunks[i].data, chunks[i].params, buf, ws);
      } else {
        // Raw exchange: payload is the float bytes themselves.
        const auto* p =
            reinterpret_cast<const std::byte*>(chunks[i].data.data());
        buf.insert(buf.end(), p, p + chunks[i].data.size_bytes());
      }
      const auto stream_bytes =
          static_cast<std::uint64_t>(buf.size() - before);
      std::memcpy(buf.data() + sizes_at + i * sizeof(std::uint64_t),
                  &stream_bytes, sizeof(stream_bytes));
    }
  };
  if (config_.pool != nullptr && world > 1) {
    config_.pool->parallel_for(0, world, 1,
                               [&](std::size_t lo, std::size_t hi) {
                                 for (std::size_t d = lo; d < hi; ++d) {
                                   pack_destination(d);
                                 }
                               });
  } else {
    for (std::size_t d = 0; d < world; ++d) pack_destination(d);
  }
  stats.compress_wall_seconds = compress_timer.seconds();

  for (std::size_t d = 0; d < world; ++d) {
    for (const auto& chunk : send[d]) {
      stats.send_raw_bytes += chunk.data.size_bytes();
    }
    stats.send_wire_bytes += scratch_.packed[d].size();
  }

  // Charge modelled codec time (single fused kernel writing into the
  // send buffer, per the buffer optimization).
  if (config_.charge_modeled_time && config_.codec != nullptr) {
    stats.modeled_compress_seconds = config_.device.codec_seconds(
        1, stats.send_raw_bytes, config_.throughput->compress_bps);
    comm.advance_compute(phase + "/compress", stats.modeled_compress_seconds);
  }

  // ---- Stages (2) + (3): metadata exchange then payload exchange.
  const auto received = comm.all_to_all_v(scratch_.packed, phase);

  // ---- Stage (4): decompress (parallel across sources, chunks within a
  // source in order; workspaces leased per task as above).
  WallTimer decompress_timer;
  scratch_.dirs.resize(world);
  std::size_t recv_raw_bytes = 0;
  for (std::size_t s = 0; s < world; ++s) {
    read_directory_into(received[s], scratch_.dirs[s]);
    DLCOMP_CHECK_MSG(scratch_.dirs[s].sizes.size() == recv[s].size(),
                     "rank " << comm.rank() << " expected " << recv[s].size()
                             << " chunks from " << s << ", got "
                             << scratch_.dirs[s].sizes.size());
    for (const auto& out : recv[s]) recv_raw_bytes += out.size() * sizeof(float);
  }

  auto unpack_source = [&](std::size_t s) {
    const RecvDirectory& dir = scratch_.dirs[s];
    CompressionWorkspace& ws = *scratch_.per_peer[s];
    for (std::size_t i = 0; i < recv[s].size(); ++i) {
      const auto stream = dir.payload.subspan(dir.offsets[i], dir.sizes[i]);
      auto out = recv[s][i];
      if (config_.codec != nullptr) {
        config_.codec->decompress(stream, out, ws);
      } else {
        DLCOMP_CHECK_MSG(stream.size() == out.size() * sizeof(float),
                         "raw chunk size mismatch");
        std::memcpy(out.data(), stream.data(), stream.size());
      }
    }
  };
  if (config_.pool != nullptr && world > 1) {
    config_.pool->parallel_for(0, world, 1,
                               [&](std::size_t lo, std::size_t hi) {
                                 for (std::size_t s = lo; s < hi; ++s) {
                                   unpack_source(s);
                                 }
                               });
  } else {
    for (std::size_t s = 0; s < world; ++s) unpack_source(s);
  }
  stats.decompress_wall_seconds = decompress_timer.seconds();

  if (config_.charge_modeled_time && config_.codec != nullptr) {
    stats.modeled_decompress_seconds = config_.device.codec_seconds(
        1, recv_raw_bytes, config_.throughput->decompress_bps);
    comm.advance_compute(phase + "/decompress",
                         stats.modeled_decompress_seconds);
  }
  return stats;
}

std::uint64_t CompressedAllToAll::workspace_grow_events() const {
  std::uint64_t total = 0;
  for (const auto& ws : scratch_.per_peer) total += ws->grow_events();
  return total;
}

std::size_t CompressedAllToAll::scratch_capacity_bytes() const {
  std::size_t total = 0;
  for (const auto& ws : scratch_.per_peer) total += ws->capacity_bytes();
  for (const auto& buf : scratch_.packed) total += buf.capacity();
  for (const auto& dir : scratch_.dirs) {
    total += dir.offsets.capacity() * sizeof(std::size_t) +
             dir.sizes.capacity() * sizeof(std::size_t);
  }
  return total;
}

}  // namespace dlcomp
