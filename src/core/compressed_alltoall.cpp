#include "core/compressed_alltoall.hpp"

#include <cstring>

#include "common/byte_io.hpp"
#include "common/error.hpp"
#include "common/timer.hpp"

namespace dlcomp {

namespace {

/// Directory layout prepended to each destination buffer:
///   u32 chunk_count | u64 sizes[count] | payload (streams back-to-back,
///   in chunk order).
/// Offsets are implied by prefix sums of sizes, so the directory stays
/// minimal (this is the per-destination metadata of the paper's stage 2).
void write_directory(std::vector<std::byte>& out,
                     std::span<const std::size_t> sizes) {
  append_pod(out, static_cast<std::uint32_t>(sizes.size()));
  for (const auto s : sizes) {
    append_pod(out, static_cast<std::uint64_t>(s));
  }
}

struct Directory {
  std::vector<std::size_t> offsets;  // into payload
  std::vector<std::size_t> sizes;
  std::span<const std::byte> payload;
};

Directory read_directory(std::span<const std::byte> buffer) {
  ByteReader reader(buffer);
  const auto count = reader.read<std::uint32_t>();
  Directory dir;
  dir.offsets.reserve(count);
  dir.sizes.reserve(count);
  std::size_t cursor = 0;
  for (std::uint32_t i = 0; i < count; ++i) {
    const auto size = static_cast<std::size_t>(reader.read<std::uint64_t>());
    dir.offsets.push_back(cursor);
    dir.sizes.push_back(size);
    cursor += size;
  }
  dir.payload = buffer.subspan(reader.position());
  if (dir.payload.size() != cursor) {
    throw FormatError("all-to-all chunk directory inconsistent with payload");
  }
  return dir;
}

}  // namespace

CompressedAllToAll::CompressedAllToAll(CompressedAllToAllConfig config)
    : config_(std::move(config)) {
  if (config_.codec != nullptr && !config_.throughput.has_value()) {
    config_.throughput = calibrated_throughput(
        std::string(config_.codec->name()).c_str());
  }
}

A2AStats CompressedAllToAll::exchange(
    Communicator& comm, const std::vector<std::vector<A2AChunkSpec>>& send,
    const std::vector<std::vector<std::span<float>>>& recv,
    const std::string& phase) const {
  const auto world = static_cast<std::size_t>(comm.world());
  DLCOMP_CHECK_MSG(send.size() == world, "need one chunk list per destination");
  DLCOMP_CHECK_MSG(recv.size() == world, "need one output list per source");

  A2AStats stats;

  // ---- Stage (1): compress every chunk, packing per-destination buffers.
  WallTimer compress_timer;
  std::vector<std::vector<std::byte>> packed(world);

  // Flatten (dest, chunk) pairs for one parallel sweep: the CPU analogue
  // of the single fused compression kernel.
  struct Piece {
    std::size_t dest;
    std::size_t index;
    std::vector<std::byte> bytes;
  };
  std::vector<Piece> pieces;
  for (std::size_t d = 0; d < world; ++d) {
    for (std::size_t i = 0; i < send[d].size(); ++i) {
      pieces.push_back({d, i, {}});
    }
  }

  auto compress_piece = [&](Piece& piece) {
    const A2AChunkSpec& chunk = send[piece.dest][piece.index];
    if (config_.codec != nullptr) {
      config_.codec->compress(chunk.data, chunk.params, piece.bytes);
    } else {
      // Raw exchange: payload is the float bytes themselves.
      const auto* p = reinterpret_cast<const std::byte*>(chunk.data.data());
      piece.bytes.assign(p, p + chunk.data.size_bytes());
    }
  };
  if (config_.pool != nullptr && pieces.size() > 1) {
    config_.pool->parallel_for(0, pieces.size(), 1,
                               [&](std::size_t lo, std::size_t hi) {
                                 for (std::size_t i = lo; i < hi; ++i) {
                                   compress_piece(pieces[i]);
                                 }
                               });
  } else {
    for (auto& piece : pieces) compress_piece(piece);
  }

  // Assemble per-destination buffers: directory + streams in chunk order.
  {
    std::vector<std::vector<std::size_t>> sizes(world);
    for (std::size_t d = 0; d < world; ++d) {
      sizes[d].resize(send[d].size(), 0);
    }
    for (const auto& piece : pieces) {
      sizes[piece.dest][piece.index] = piece.bytes.size();
    }
    for (std::size_t d = 0; d < world; ++d) {
      write_directory(packed[d], sizes[d]);
    }
    // `pieces` was built in (dest, index) order, so appending in sequence
    // lands every stream behind its destination's directory in chunk
    // order.
    for (const auto& piece : pieces) {
      packed[piece.dest].insert(packed[piece.dest].end(), piece.bytes.begin(),
                                piece.bytes.end());
    }
  }
  stats.compress_wall_seconds = compress_timer.seconds();

  for (std::size_t d = 0; d < world; ++d) {
    for (const auto& chunk : send[d]) {
      stats.send_raw_bytes += chunk.data.size_bytes();
    }
    stats.send_wire_bytes += packed[d].size();
  }

  // Charge modelled codec time (single fused kernel writing into the
  // send buffer, per the buffer optimization).
  if (config_.charge_modeled_time && config_.codec != nullptr) {
    stats.modeled_compress_seconds = config_.device.codec_seconds(
        1, stats.send_raw_bytes, config_.throughput->compress_bps);
    comm.advance_compute(phase + "/compress", stats.modeled_compress_seconds);
  }

  // ---- Stages (2) + (3): metadata exchange then payload exchange.
  const auto received = comm.all_to_all_v(packed, phase);

  // ---- Stage (4): decompress (parallel across received chunks).
  WallTimer decompress_timer;
  std::vector<Directory> dirs(world);
  std::size_t recv_raw_bytes = 0;
  for (std::size_t s = 0; s < world; ++s) {
    dirs[s] = read_directory(received[s]);
    DLCOMP_CHECK_MSG(dirs[s].sizes.size() == recv[s].size(),
                     "rank " << comm.rank() << " expected " << recv[s].size()
                             << " chunks from " << s << ", got "
                             << dirs[s].sizes.size());
    for (const auto& out : recv[s]) recv_raw_bytes += out.size() * sizeof(float);
  }

  struct RecvPiece {
    std::size_t src;
    std::size_t index;
  };
  std::vector<RecvPiece> recv_pieces;
  for (std::size_t s = 0; s < world; ++s) {
    for (std::size_t i = 0; i < recv[s].size(); ++i) {
      recv_pieces.push_back({s, i});
    }
  }
  auto decompress_piece = [&](const RecvPiece& piece) {
    const auto& dir = dirs[piece.src];
    const auto stream =
        dir.payload.subspan(dir.offsets[piece.index], dir.sizes[piece.index]);
    auto out = recv[piece.src][piece.index];
    if (config_.codec != nullptr) {
      config_.codec->decompress(stream, out);
    } else {
      DLCOMP_CHECK_MSG(stream.size() == out.size() * sizeof(float),
                       "raw chunk size mismatch");
      std::memcpy(out.data(), stream.data(), stream.size());
    }
  };
  if (config_.pool != nullptr && recv_pieces.size() > 1) {
    config_.pool->parallel_for(0, recv_pieces.size(), 1,
                               [&](std::size_t lo, std::size_t hi) {
                                 for (std::size_t i = lo; i < hi; ++i) {
                                   decompress_piece(recv_pieces[i]);
                                 }
                               });
  } else {
    for (const auto& piece : recv_pieces) decompress_piece(piece);
  }
  stats.decompress_wall_seconds = decompress_timer.seconds();

  if (config_.charge_modeled_time && config_.codec != nullptr) {
    stats.modeled_decompress_seconds = config_.device.codec_seconds(
        1, recv_raw_bytes, config_.throughput->decompress_bps);
    comm.advance_compute(phase + "/decompress",
                         stats.modeled_decompress_seconds);
  }
  return stats;
}

}  // namespace dlcomp
