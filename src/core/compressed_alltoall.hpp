#pragma once

/// \file compressed_alltoall.hpp
/// The paper's four-stage communication pipeline (Sec. III-A):
///   (1) compress every per-destination chunk on the local device,
///   (2) exchange compressed sizes (metadata all-to-all),
///   (3) exchange compressed payloads (variable-size all-to-all),
///   (4) decompress on the receiver.
///
/// Each destination receives one packed buffer holding this rank's chunks
/// for it (e.g. one chunk per owned embedding table) behind a small
/// directory, so multiple tensors travel as a single message -- the wire
/// analogue of the buffer optimization. Stage (2) is realized inside
/// Communicator::all_to_all_v, which charges the metadata exchange
/// separately.
///
/// Buffer optimization, CPU edition: stage (1) sizes each destination's
/// directory up front and compresses every chunk *directly into* that
/// destination's send buffer (directory sizes patched in place), instead
/// of compressing into per-chunk vectors and gathering them afterwards.
/// Together with per-task CompressionWorkspace leases this makes the
/// steady-state codec path allocation-free: all scratch and all send
/// buffers retain their high-water capacity across iterations
/// (workspace_grow_events() exposes the counter tests assert on).
///
/// Wall time of the CPU codecs is measured and reported; simulated clocks
/// are charged with modelled GPU codec time (calibrated throughput +
/// kernel launches) so breakdowns compose consistently with the network
/// model.

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "comm/communicator.hpp"
#include "compress/compressor.hpp"
#include "compress/workspace.hpp"
#include "parallel/device_model.hpp"
#include "parallel/thread_pool.hpp"

namespace dlcomp {

/// One tensor chunk addressed to a destination rank.
struct A2AChunkSpec {
  std::span<const float> data;
  CompressParams params;
};

/// Per-rank statistics for one exchange.
struct A2AStats {
  std::size_t send_raw_bytes = 0;    ///< uncompressed payload this rank sent
  std::size_t send_wire_bytes = 0;   ///< compressed payload this rank sent
  double compress_wall_seconds = 0.0;
  double decompress_wall_seconds = 0.0;
  double modeled_compress_seconds = 0.0;
  double modeled_decompress_seconds = 0.0;

  [[nodiscard]] double compression_ratio() const noexcept {
    return send_wire_bytes == 0
               ? 1.0
               : static_cast<double>(send_raw_bytes) /
                     static_cast<double>(send_wire_bytes);
  }
};

struct CompressedAllToAllConfig {
  /// Codec applied to every chunk; nullptr exchanges raw floats (the
  /// uncompressed baseline).
  const Compressor* codec = nullptr;
  /// Pool for parallel per-destination compression/decompression; may be
  /// null.
  ThreadPool* pool = nullptr;
  DeviceModel device;
  /// Throughputs used for the modelled codec time (ignored when codec is
  /// null). Defaults to the calibrated table entry for the codec.
  std::optional<CodecThroughput> throughput;
  /// Whether to advance the rank's SimClock by modelled codec time.
  bool charge_modeled_time = true;
};

class CompressedAllToAll {
 public:
  explicit CompressedAllToAll(CompressedAllToAllConfig config);

  /// Performs the pipeline. `send[d]` lists chunks for destination d
  /// (d in [0, world)); `recv[s][i]` must be pre-sized to the element
  /// count of chunk i that rank s sends here -- chunk geometry is part of
  /// the application protocol, exactly as in the paper's trainer where
  /// every rank knows each table's slice shape.
  ///
  /// Reuses instance-held send buffers and codec workspaces across calls;
  /// an instance therefore supports one exchange at a time (the SPMD
  /// pattern: one CompressedAllToAll per rank), though its internal codec
  /// work may still fan out across the shared pool.
  ///
  /// Phase attribution on the simulated clock: "<phase>/compress",
  /// "<phase>/metadata", "<phase>" (payload), "<phase>/decompress".
  A2AStats exchange(Communicator& comm,
                    const std::vector<std::vector<A2AChunkSpec>>& send,
                    const std::vector<std::vector<std::span<float>>>& recv,
                    const std::string& phase) const;

  /// Total scratch (re)allocations across this instance's workspaces;
  /// flat after warm-up == zero codec-path heap allocations per exchange.
  [[nodiscard]] std::uint64_t workspace_grow_events() const;

  /// High-water heap capacity of the reused send buffers + workspaces.
  [[nodiscard]] std::size_t scratch_capacity_bytes() const;

 private:
  /// Parsed view of one received packed buffer.
  struct RecvDirectory {
    std::vector<std::size_t> offsets;  // into payload
    std::vector<std::size_t> sizes;
    std::span<const std::byte> payload;
  };

  /// Per-instance reusable state. Mutable because exchange() is logically
  /// const (scratch contents are never observable between calls).
  ///
  /// Workspaces are indexed by peer rank, not pooled: the compress and
  /// decompress stages never overlap within one exchange, so workspace d
  /// always sees destination d's chunks then source d's streams — sizes
  /// are stable across iterations, which is what makes the zero-growth
  /// guarantee deterministic rather than dependent on lease scheduling.
  struct Scratch {
    std::vector<std::unique_ptr<CompressionWorkspace>> per_peer;
    std::vector<std::vector<std::byte>> packed;  // per destination
    std::vector<RecvDirectory> dirs;             // per source
  };

  void read_directory_into(std::span<const std::byte> buffer,
                           RecvDirectory& dir) const;

  CompressedAllToAllConfig config_;
  mutable Scratch scratch_;
};

}  // namespace dlcomp
