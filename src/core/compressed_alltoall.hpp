#pragma once

/// \file compressed_alltoall.hpp
/// The paper's four-stage communication pipeline (Sec. III-A):
///   (1) compress every per-destination chunk on the local device,
///   (2) exchange compressed sizes (metadata all-to-all),
///   (3) exchange compressed payloads (variable-size all-to-all),
///   (4) decompress on the receiver.
///
/// Each destination receives one packed buffer holding this rank's chunks
/// for it (e.g. one chunk per owned embedding table) behind a small
/// directory, so multiple tensors travel as a single message -- the wire
/// analogue of the buffer optimization. Stage (2) is realized inside
/// Communicator::all_to_all_v, which charges the metadata exchange
/// separately.
///
/// Buffer optimization, CPU edition: stage (1) sizes each destination's
/// directory up front, registers every chunk with a BlockEngine (large
/// chunks split into fixed blocks that compress independently — see
/// chunked.hpp), runs all blocks of all destinations as one flat
/// parallel task list, and assembles the streams into the send buffers
/// with the directory sizes patched in place. Stage (4) decompresses
/// through the same engine, so a group with one dominant chunk still
/// fans out across the pool. All scratch and all send buffers retain
/// their high-water capacity across iterations
/// (workspace_grow_events() exposes the counter tests assert on), and
/// the wire bytes are independent of pool width.
///
/// Stage pipelining (`pipeline_stages > 1`): each destination's chunk
/// list is split into contiguous groups; group k+1 compresses while group
/// k's payload is in flight on the simulated wire and groups decompress
/// as they land, so codec time hides wire time (and vice versa). Groups
/// serialize on the link (`not_before` floors each stage's start), the
/// framing carries exactly the monolithic path's bytes (the u32 chunk
/// count travels once, with group 0), and the received floats are
/// byte-identical to the monolithic path -- both asserted in tests.
///
/// Wall time of the CPU codecs is measured and reported; simulated clocks
/// are charged with modelled GPU codec time (calibrated throughput +
/// kernel launches) so breakdowns compose consistently with the network
/// model. A2AStats splits the modelled wire time into exposed (stalled
/// the rank) and hidden (overlapped by codec/compute) seconds.

#include <atomic>
#include <cstdint>
#include <memory>
#include <optional>
#include <string_view>
#include <vector>

#include "comm/communicator.hpp"
#include "comm/phase_names.hpp"
#include "compress/chunked.hpp"
#include "compress/compressor.hpp"
#include "compress/workspace.hpp"
#include "parallel/device_model.hpp"
#include "parallel/thread_pool.hpp"

namespace dlcomp {

/// One tensor chunk addressed to a destination rank.
struct A2AChunkSpec {
  /// Chunks carrying the same tag are accumulated together in the
  /// per-tag byte accounting (the trainer tags chunks with the owning
  /// embedding table id, giving per-table compression ratios in the
  /// metrics snapshot). kNoTag opts out at zero cost.
  static constexpr std::uint32_t kNoTag = UINT32_MAX;

  std::span<const float> data;
  CompressParams params;
  std::uint32_t tag = kNoTag;
};

/// Per-rank statistics for one exchange.
struct A2AStats {
  std::size_t send_raw_bytes = 0;    ///< uncompressed payload this rank sent
  std::size_t send_wire_bytes = 0;   ///< compressed payload this rank sent
  double compress_wall_seconds = 0.0;
  double decompress_wall_seconds = 0.0;
  double modeled_compress_seconds = 0.0;
  double modeled_decompress_seconds = 0.0;
  /// Modelled wire seconds (metadata + payload + wait) that stalled this
  /// rank's clock vs. the part absorbed by overlapped codec/compute work.
  /// Serial (monolithic, no exchange_begin overlap) exchanges expose
  /// everything.
  double exposed_comm_seconds = 0.0;
  double hidden_comm_seconds = 0.0;
  /// CRC-32 of every byte this rank put on the wire: the packed buffers
  /// for destinations != rank, in destination order, group by group. A
  /// transport moves exactly these bytes, so equal CRCs across backends
  /// mean the wire streams were byte-identical (the cross-backend
  /// identity check in tests and the TCP smoke job).
  std::uint32_t wire_crc32 = 0;

  [[nodiscard]] double compression_ratio() const noexcept {
    return send_wire_bytes == 0
               ? 1.0
               : static_cast<double>(send_raw_bytes) /
                     static_cast<double>(send_wire_bytes);
  }
};

struct CompressedAllToAllConfig {
  /// Codec applied to every chunk; nullptr exchanges raw floats (the
  /// uncompressed baseline).
  const Compressor* codec = nullptr;
  /// Pool for parallel per-destination compression/decompression; may be
  /// null.
  ThreadPool* pool = nullptr;
  DeviceModel device;
  /// Throughputs used for the modelled codec time (ignored when codec is
  /// null). Defaults to the calibrated table entry for the codec.
  std::optional<CodecThroughput> throughput;
  /// Whether to advance the rank's SimClock by modelled codec time.
  bool charge_modeled_time = true;
  /// Chunk groups per destination for the stage-pipelined exchange; 1 =
  /// monolithic (compress everything, then one collective). Every rank
  /// must configure the same value.
  std::size_t pipeline_stages = 1;
};

class CompressedAllToAll {
 public:
  explicit CompressedAllToAll(CompressedAllToAllConfig config);

  /// An exchange whose final payload group is still on the simulated
  /// wire. Between exchange_begin() and finish(), compute charged on the
  /// rank's clock hides that wire time (trainer-level overlap). The
  /// `send`/`recv` structures passed to exchange_begin() must stay alive
  /// until finish() returns. Move-only; finish() must be called exactly
  /// once.
  class PendingExchange {
   public:
    PendingExchange(PendingExchange&& other) noexcept { *this = std::move(other); }
    PendingExchange& operator=(PendingExchange&& other) noexcept;
    PendingExchange(const PendingExchange&) = delete;
    PendingExchange& operator=(const PendingExchange&) = delete;

    /// Lands the final group (overlap-charged wait), decompresses it into
    /// the receive spans, and returns the completed stats.
    A2AStats finish();

   private:
    friend class CompressedAllToAll;
    PendingExchange() = default;

    const CompressedAllToAll* owner_ = nullptr;
    Communicator* comm_ = nullptr;
    const std::vector<std::vector<std::span<float>>>* recv_ = nullptr;
    const PhaseNames* names_ = nullptr;
    std::size_t groups_ = 1;
    PendingCollective pending_;  ///< last issued group's collective
    A2AStats stats_;
    bool finished_ = true;
  };

  /// Performs the pipeline. `send[d]` lists chunks for destination d
  /// (d in [0, world)); `recv[s][i]` must be pre-sized to the element
  /// count of chunk i that rank s sends here -- chunk geometry is part of
  /// the application protocol, exactly as in the paper's trainer where
  /// every rank knows each table's slice shape.
  ///
  /// Reuses instance-held send buffers and codec workspaces across calls;
  /// an instance therefore supports one exchange at a time (the SPMD
  /// pattern: one CompressedAllToAll per rank), though its internal codec
  /// work may still fan out across the shared pool.
  ///
  /// Phase attribution on the simulated clock: "<phase>/compress",
  /// "<phase>/metadata", "<phase>" (payload), "<phase>/decompress",
  /// "<phase>/wait" (slowest-rank sync). Equivalent to exchange_begin()
  /// immediately finish()ed.
  A2AStats exchange(Communicator& comm,
                    const std::vector<std::vector<A2AChunkSpec>>& send,
                    const std::vector<std::vector<std::span<float>>>& recv,
                    std::string_view phase) const;

  /// Starts an exchange and returns with the last chunk group still in
  /// flight on the simulated wire (earlier groups, if pipelining, have
  /// already landed and decompressed). The caller may charge overlapped
  /// compute before finish().
  [[nodiscard]] PendingExchange exchange_begin(
      Communicator& comm, const std::vector<std::vector<A2AChunkSpec>>& send,
      const std::vector<std::vector<std::span<float>>>& recv,
      std::string_view phase) const;

  /// Total scratch (re)allocations across this instance's workspaces and
  /// packed send buffers (buffer growth and workspace creation both
  /// count); flat after warm-up == zero codec-path heap allocations per
  /// exchange.
  [[nodiscard]] std::uint64_t workspace_grow_events() const;

  /// Cumulative bytes sent per chunk tag (indexed by tag; raw = payload
  /// floats, wire = compressed stream). Empty when no chunk was tagged.
  struct TagBytes {
    std::uint64_t raw = 0;
    std::uint64_t wire = 0;
  };
  [[nodiscard]] std::vector<TagBytes> per_tag_bytes() const;

  /// High-water heap capacity of the reused send buffers + workspaces.
  [[nodiscard]] std::size_t scratch_capacity_bytes() const;

 private:
  /// Parsed view of one received packed buffer (one chunk group).
  struct RecvDirectory {
    std::vector<std::size_t> offsets;  // into payload
    std::vector<std::size_t> sizes;
    std::span<const std::byte> payload;
  };

  /// Per-instance reusable state. Mutable because exchange() is logically
  /// const (scratch contents are never observable between calls).
  ///
  /// Codec work (both directions) runs through one BlockEngine: every
  /// chunk of every destination — split into blocks when large — forms a
  /// single flat task list per group, partitioned across fixed
  /// lane-indexed workspaces. Within one exchange the compress and
  /// decompress stages of a group never run concurrently, and lane l
  /// always sees the same tasks regardless of scheduling, so scratch
  /// sizes are stable across iterations — the zero-growth guarantee is
  /// deterministic rather than dependent on lease scheduling.
  struct Scratch {
    Scratch() = default;
    // The atomic member deletes the implicit moves vectors need; moving
    // an instance is only ever done while no exchange is running.
    Scratch(Scratch&& other) noexcept
        : engine(std::move(other.engine)),
          packed(std::move(other.packed)),
          packed_caps(std::move(other.packed_caps)),
          dirs(std::move(other.dirs)),
          tag_raw(std::move(other.tag_raw)),
          tag_wire(std::move(other.tag_wire)),
          tag_count(other.tag_count),
          grow_events(other.grow_events.load(std::memory_order_relaxed)) {}
    Scratch& operator=(Scratch&& other) noexcept {
      engine = std::move(other.engine);
      packed = std::move(other.packed);
      packed_caps = std::move(other.packed_caps);
      dirs = std::move(other.dirs);
      tag_raw = std::move(other.tag_raw);
      tag_wire = std::move(other.tag_wire);
      tag_count = other.tag_count;
      grow_events.store(other.grow_events.load(std::memory_order_relaxed),
                        std::memory_order_relaxed);
      return *this;
    }

    std::unique_ptr<BlockEngine> engine;         // null for raw exchanges
    std::vector<std::vector<std::byte>> packed;  // per destination
    std::vector<std::size_t> packed_caps;        // pre-group capacities
    std::vector<RecvDirectory> dirs;             // per source
    /// Per-tag cumulative totals. Raw bytes accumulate serially in
    /// exchange_begin; wire bytes accumulate from the packing tasks, so
    /// they are atomic (many destinations carry the same tag). Sized to
    /// the high-water tag count (growth counted like any other scratch).
    std::vector<std::uint64_t> tag_raw;
    std::unique_ptr<std::atomic<std::uint64_t>[]> tag_wire;
    std::size_t tag_count = 0;
    /// Packed-buffer capacity growth + workspace creation, counted so a
    /// freshly constructed (or wrongly re-constructed-per-iteration)
    /// instance is visible to the steady-state grow-event tests. Atomic:
    /// packing fans out across the pool.
    std::atomic<std::uint64_t> grow_events{0};
  };

  /// First chunk index of group g when `count` chunks split into `groups`
  /// contiguous groups (deterministic on both sender and receiver).
  static std::size_t group_begin(std::size_t count, std::size_t groups,
                                 std::size_t g) noexcept {
    return count * g / groups;
  }

  /// Compresses group g of every destination into scratch_.packed.
  /// Returns the group's raw payload bytes; adds its wire bytes and wall
  /// seconds to `stats`.
  std::size_t pack_group(Communicator& comm,
                         const std::vector<std::vector<A2AChunkSpec>>& send,
                         std::size_t g, std::size_t groups,
                         A2AStats& stats) const;

  /// Waits for group g's collective (overlap-charged), decompresses its
  /// chunks into the receive spans and charges modelled decompress time.
  void land_group(Communicator& comm, PendingCollective& pending,
                  std::size_t g, std::size_t groups,
                  const std::vector<std::vector<std::span<float>>>& recv,
                  const PhaseNames& names, A2AStats& stats) const;

  void read_group_directory_into(Communicator& comm,
                                 std::span<const std::byte> buffer,
                                 RecvDirectory& dir, std::size_t src,
                                 std::size_t lo, std::size_t hi,
                                 std::size_t total_expected,
                                 bool first_group) const;

  CompressedAllToAllConfig config_;
  mutable Scratch scratch_;
};

}  // namespace dlcomp
