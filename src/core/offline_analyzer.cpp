#include "core/offline_analyzer.hpp"

#include <unordered_map>

#include "common/error.hpp"
#include "compress/cusz_like.hpp"
#include "compress/quantizer.hpp"
#include "compress/vector_lz.hpp"

namespace dlcomp {

namespace {

/// Shannon entropy (bits/symbol) of an int32 code sequence.
double code_entropy_bits(std::span<const std::int32_t> codes) {
  std::unordered_map<std::int32_t, std::uint64_t> histogram;
  histogram.reserve(1024);
  for (const auto c : codes) ++histogram[c];
  std::vector<std::uint64_t> freqs;
  freqs.reserve(histogram.size());
  for (const auto& [sym, f] : histogram) freqs.push_back(f);
  return entropy_bits(freqs);
}

}  // namespace

std::vector<double> AnalysisReport::table_error_bounds() const {
  std::vector<double> ebs(tables.size(), config.eb_config.global_eb);
  for (const auto& t : tables) ebs.at(t.table_id) = t.assigned_eb;
  return ebs;
}

std::vector<HybridChoice> AnalysisReport::table_choices() const {
  std::vector<HybridChoice> choices(tables.size(), HybridChoice::kAuto);
  for (const auto& t : tables) {
    const auto& name = t.selection.best().codec;
    if (name == "vector-lz") {
      choices.at(t.table_id) = HybridChoice::kVectorLz;
    } else if (name == "huffman") {
      choices.at(t.table_id) = HybridChoice::kHuffman;
    }
  }
  return choices;
}

AnalysisReport OfflineAnalyzer::analyze(
    const BatchSource& dataset,
    std::span<const EmbeddingTable> tables) const {
  const DatasetSpec& spec = dataset.spec();
  DLCOMP_CHECK_MSG(tables.size() == spec.num_tables(),
                   "embedding set does not match dataset spec");
  DLCOMP_CHECK(config_.sample_batches > 0);

  const std::size_t batch_size =
      config_.batch_size > 0 ? config_.batch_size : spec.default_batch;
  const std::size_t dim = spec.embedding_dim;

  AnalysisReport report;
  report.config = config_;
  report.tables.reserve(spec.num_tables());

  const CompressorSelector selector(config_.selector);

  for (std::size_t t = 0; t < spec.num_tables(); ++t) {
    TableAnalysis analysis;
    analysis.table_id = t;

    // Gather the sampled lookups for this table across sample batches.
    std::vector<float> sample;
    sample.reserve(config_.sample_batches * batch_size * dim);
    Matrix lookup(batch_size, dim);
    for (std::size_t s = 0; s < config_.sample_batches; ++s) {
      const SampleBatch batch = dataset.make_batch(batch_size, s);
      tables[t].lookup(batch.indices[t], lookup);
      sample.insert(sample.end(), lookup.flat().begin(), lookup.flat().end());
    }

    // Homogenization Index at the sampling error bound, over one batch
    // (the paper's Tables III/IV report per-batch pattern counts).
    analysis.homo = compute_homo_index(
        std::span<const float>(sample.data(), batch_size * dim), dim,
        config_.sampling_eb);
    analysis.eb_class = classify_table(analysis.homo, config_.thresholds);
    analysis.assigned_eb = config_.eb_config.eb_for(analysis.eb_class);

    // Value distribution characterization (Table I / Fig. 13): uniform
    // distributions have excess kurtosis ~= -1.2, Gaussian ~= 0.
    analysis.value_summary = summarize(sample);
    analysis.gaussian_values = analysis.value_summary.excess_kurtosis > -0.6;

    // False-prediction characterization: Lorenzo residual codes carrying
    // more entropy than direct quantization codes means prediction hurts.
    CompressParams probe;
    probe.error_bound = config_.sampling_eb;
    probe.vector_dim = dim;
    {
      std::vector<std::int32_t> direct(sample.size());
      quantize(sample, config_.sampling_eb, direct);
      analysis.direct_entropy_bits = code_entropy_bits(direct);
      const auto lorenzo = CuszLikeCompressor::prediction_codes(sample, probe);
      analysis.lorenzo_entropy_bits = code_entropy_bits(lorenzo);
      analysis.false_prediction =
          analysis.lorenzo_entropy_bits > analysis.direct_entropy_bits;
    }

    // Algorithm 2: evaluate candidates at the *assigned* error bound.
    CompressParams select_params = probe;
    select_params.error_bound = analysis.assigned_eb;
    analysis.selection =
        selector.select(sample, select_params, config_.candidates);
    analysis.lz_matches = VectorLzCompressor::count_matches(sample, select_params);

    report.tables.push_back(std::move(analysis));
  }
  return report;
}

}  // namespace dlcomp
