#pragma once

/// \file auto_tuner.hpp
/// Automated global error-bound selection -- the paper's stated future
/// work ("a more advanced and automated approach for offline selection of
/// a fixed global error-bound", Sec. VI), implemented here as a
/// probe-training search: candidate bounds are evaluated by short
/// training runs with the compression hooks active, and the largest bound
/// whose held-out accuracy stays within tolerance of the uncompressed
/// probe is selected.
///
/// Also provides the online companion: a feedback controller that watches
/// the training-loss trend and tightens the bound multiplier when
/// compressed training diverges from its own recent trend, recovering
/// gradually afterwards.

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "data/batch_source.hpp"
#include "dlrm/model.hpp"

namespace dlcomp {

struct AutoTunerConfig {
  /// Candidate bounds, evaluated from largest to smallest; the first one
  /// within tolerance wins. Must be sorted descending.
  std::vector<double> candidates = {0.08, 0.05, 0.03, 0.02, 0.01, 0.005};
  /// Acceptable held-out accuracy drop versus the uncompressed probe
  /// (absolute, e.g. 0.01 = one percentage point).
  double accuracy_tolerance = 0.01;
  /// Probe run length and batch size.
  std::size_t probe_iterations = 150;
  std::size_t probe_batch = 128;
  std::size_t eval_batches = 4;
  /// Codec used during probing.
  std::string codec = "hybrid";
  DlrmConfig model;
  std::uint64_t seed = 1234;
};

struct AutoTunerResult {
  double selected_eb = 0.0;
  double baseline_accuracy = 0.0;
  /// Per-candidate probe outcomes, in evaluation order.
  struct Probe {
    double error_bound = 0.0;
    double accuracy = 0.0;
    double compression_ratio = 0.0;
    bool within_tolerance = false;
  };
  std::vector<Probe> probes;
};

/// Runs the search. Deterministic in (config.seed, dataset seed).
AutoTunerResult auto_select_global_eb(const BatchSource& dataset,
                                      const AutoTunerConfig& config);

/// Online error-bound controller (future-work companion): multiply the
/// scheduler's scale by `scale()`; feed the training loss every
/// iteration. When the smoothed loss rises above its recent trend by more
/// than `trigger_ratio`, the controller halves its scale (bounded below
/// by `min_scale`) and then relaxes back toward 1 at `recovery_per_step`.
class OnlineEbController {
 public:
  struct Config {
    double ema_alpha = 0.05;        ///< smoothing for the loss signal
    double trigger_ratio = 1.05;    ///< smoothed/trend ratio that trips it
    double min_scale = 0.25;
    double recovery_per_step = 1.01;
    std::size_t warmup_iters = 20;  ///< no triggering while the EMA settles
  };

  explicit OnlineEbController(const Config& config) : config_(config) {}

  /// Feeds one iteration's training loss; returns the updated scale.
  double observe(double train_loss);

  [[nodiscard]] double scale() const noexcept { return scale_; }
  [[nodiscard]] std::size_t trigger_count() const noexcept { return triggers_; }

 private:
  Config config_;
  double fast_ema_ = 0.0;
  double slow_ema_ = 0.0;
  bool initialized_ = false;
  std::size_t iter_ = 0;
  double scale_ = 1.0;
  std::size_t triggers_ = 0;
};

}  // namespace dlcomp
