#include "core/eb_scheduler.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"

namespace dlcomp {

std::string_view to_string(DecayFunc f) noexcept {
  switch (f) {
    case DecayFunc::kNone: return "none";
    case DecayFunc::kStepwise: return "stepwise";
    case DecayFunc::kLogarithmic: return "logarithmic";
    case DecayFunc::kLinear: return "linear";
    case DecayFunc::kExponential: return "exponential";
    case DecayFunc::kDrop: return "drop";
  }
  return "?";
}

ErrorBoundScheduler::ErrorBoundScheduler(const SchedulerConfig& config)
    : config_(config) {
  DLCOMP_CHECK_MSG(config_.initial_scale >= 1.0,
                   "initial_scale must be >= 1 (it multiplies the base EB)");
  DLCOMP_CHECK(config_.num_steps >= 1);
}

double ErrorBoundScheduler::scale_at(std::size_t iter) const {
  if (config_.func == DecayFunc::kNone) return 1.0;
  if (iter >= config_.decay_end_iter || config_.decay_end_iter == 0) return 1.0;

  // Progress through the initial phase, in [0, 1).
  const double t = static_cast<double>(iter) /
                   static_cast<double>(config_.decay_end_iter);
  const double span = config_.initial_scale - 1.0;

  switch (config_.func) {
    case DecayFunc::kStepwise: {
      // Staircase: hold initial_scale, then step down num_steps times,
      // landing on 1.0 at the end of the phase.
      const auto step = static_cast<std::size_t>(
          t * static_cast<double>(config_.num_steps));
      const double fraction = static_cast<double>(step) /
                              static_cast<double>(config_.num_steps);
      return config_.initial_scale - span * fraction;
    }
    case DecayFunc::kLogarithmic: {
      // Fast early descent, flattening out: f(t) = log(1+9t)/log(10).
      const double f = std::log1p(9.0 * t) / std::log(10.0);
      return config_.initial_scale - span * f;
    }
    case DecayFunc::kLinear:
      return config_.initial_scale - span * t;
    case DecayFunc::kExponential: {
      // Slow early descent, steep at the end: f(t) = (e^(2t)-1)/(e^2-1).
      const double f = std::expm1(2.0 * t) / std::expm1(2.0);
      return config_.initial_scale - span * f;
    }
    case DecayFunc::kDrop:
      return config_.initial_scale;  // falls to 1.0 only after the phase
    case DecayFunc::kNone:
      break;
  }
  return 1.0;
}

}  // namespace dlcomp
