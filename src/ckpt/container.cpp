#include "ckpt/container.hpp"

#include <cstring>
#include <fstream>

#include "common/crc32.hpp"
#include "common/error.hpp"

namespace dlcomp {

std::size_t append_ckpt_header(std::vector<std::byte>& out,
                               const CkptHeader& header) {
  append_pod(out, kCkptMagic);
  append_pod(out, kCkptVersion);
  append_pod(out, static_cast<std::uint16_t>(header.kind));
  append_pod(out, header.checkpoint_id);
  append_pod(out, header.parent_id);
  append_pod(out, header.iteration);
  append_pod(out, header.seed);
  const std::size_t field_offset = out.size();
  append_pod(out, header.section_count);
  return field_offset;
}

void patch_section_count(std::vector<std::byte>& out, std::size_t field_offset,
                         std::uint32_t section_count) {
  DLCOMP_CHECK(field_offset + sizeof(section_count) <= out.size());
  std::memcpy(out.data() + field_offset, &section_count, sizeof(section_count));
}

CkptHeader parse_ckpt_header(ByteReader& reader) {
  const auto magic = reader.read<std::uint32_t>();
  if (magic != kCkptMagic) {
    throw FormatError("bad checkpoint magic (not a .dlck container)");
  }
  const auto version = reader.read<std::uint16_t>();
  if (version != kCkptVersion) {
    throw FormatError("unsupported checkpoint version " +
                      std::to_string(version) + " (expected " +
                      std::to_string(kCkptVersion) + ")");
  }
  CkptHeader h;
  const auto kind = reader.read<std::uint16_t>();
  if (kind > static_cast<std::uint16_t>(CkptKind::kDelta)) {
    throw FormatError("unknown checkpoint kind " + std::to_string(kind));
  }
  h.kind = static_cast<CkptKind>(kind);
  h.checkpoint_id = reader.read<std::uint64_t>();
  h.parent_id = reader.read<std::uint64_t>();
  h.iteration = reader.read<std::uint64_t>();
  h.seed = reader.read<std::uint64_t>();
  h.section_count = reader.read<std::uint32_t>();
  return h;
}

void append_section(std::vector<std::byte>& out, CkptSection type,
                    std::uint32_t id, std::span<const std::byte> payload) {
  append_pod(out, static_cast<std::uint8_t>(type));
  append_pod(out, id);
  append_pod(out, static_cast<std::uint64_t>(payload.size()));
  append_pod(out, crc32(payload));
  out.insert(out.end(), payload.begin(), payload.end());
}

SectionView read_section(ByteReader& reader) {
  SectionView section;
  const auto type = reader.read<std::uint8_t>();
  if (type < static_cast<std::uint8_t>(CkptSection::kMeta) ||
      type > static_cast<std::uint8_t>(CkptSection::kOptDelta)) {
    throw FormatError("unknown checkpoint section type " + std::to_string(type));
  }
  section.type = static_cast<CkptSection>(type);
  section.id = reader.read<std::uint32_t>();
  const auto payload_bytes = reader.read<std::uint64_t>();
  const auto stored_crc = reader.read<std::uint32_t>();
  section.payload = reader.take(payload_bytes);
  if (crc32(section.payload) != stored_crc) {
    throw FormatError("checkpoint section CRC mismatch (type " +
                      std::to_string(type) + ", id " +
                      std::to_string(section.id) + ")");
  }
  return section;
}

void append_string(std::vector<std::byte>& out, std::string_view text) {
  DLCOMP_CHECK_MSG(text.size() <= 0xFFFF,
                   "string too long for checkpoint: " << text.size());
  append_pod(out, static_cast<std::uint16_t>(text.size()));
  const auto* p = reinterpret_cast<const std::byte*>(text.data());
  out.insert(out.end(), p, p + text.size());
}

std::string read_string(ByteReader& reader) {
  const auto length = reader.read<std::uint16_t>();
  const auto bytes = reader.take(length);
  return std::string(reinterpret_cast<const char*>(bytes.data()), bytes.size());
}

void write_container(const std::string& path, std::span<const std::byte> data) {
  std::ofstream os(path, std::ios::binary);
  if (!os.good()) throw Error("cannot open checkpoint for writing: " + path);
  os.write(reinterpret_cast<const char*>(data.data()),
           static_cast<std::streamsize>(data.size()));
  if (!os.good()) throw Error("checkpoint write failed: " + path);
}

std::vector<std::byte> read_container(const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  if (!is.good()) throw Error("cannot open checkpoint: " + path);
  is.seekg(0, std::ios::end);
  const auto size = static_cast<std::size_t>(is.tellg());
  is.seekg(0);
  std::vector<std::byte> data(size);
  is.read(reinterpret_cast<char*>(data.data()),
          static_cast<std::streamsize>(size));
  if (!is.good()) throw Error("checkpoint read failed: " + path);
  return data;
}

}  // namespace dlcomp
