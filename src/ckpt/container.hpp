#pragma once

/// \file container.hpp
/// The `.dlck` checkpoint container: a versioned, CRC-checked binary
/// envelope for model snapshots. Layout (little endian):
///
///   file header (fixed):
///     u32 magic 'DLCK' | u16 version | u16 kind (full=0, delta=1) |
///     u64 checkpoint_id | u64 parent_id | u64 iteration | u64 seed |
///     u32 section_count
///   then `section_count` sections back-to-back:
///     u8 type | u32 id | u64 payload_bytes | u32 crc32(payload) | payload
///
/// `id` carries the table index for per-table sections and 0 otherwise.
/// Every payload is CRC-checked on read before any byte reaches a codec
/// or a weight buffer; a mismatch throws FormatError. Delta containers
/// name their parent (by checkpoint_id and by filename inside the meta
/// section) so readers can replay full -> delta -> delta chains.
///
/// See DESIGN.md "Checkpoint container" for the rationale and the
/// section payload layouts.

#include <cstddef>
#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "common/byte_io.hpp"

namespace dlcomp {

inline constexpr std::uint32_t kCkptMagic = 0x4B434C44u;  // "DLCK"
inline constexpr std::uint16_t kCkptVersion = 1;

/// Snapshot kind: full state, or sparse rows changed since the parent.
enum class CkptKind : std::uint16_t { kFull = 0, kDelta = 1 };

/// Section types inside a container.
enum class CkptSection : std::uint8_t {
  kMeta = 1,        ///< codec name, per-table bounds, parent filename
  kMlpBottom = 2,   ///< bottom MLP parameters, raw float32
  kMlpTop = 3,      ///< top MLP parameters, raw float32
  kTableFull = 4,   ///< one embedding table, raw or codec stream
  kTableDelta = 5,  ///< touched-row bitmap + changed rows for one table
  kOptState = 6,    ///< full optimizer state (Adagrad accumulator) rows
  kOptDelta = 7,    ///< sparse optimizer-state rows changed since parent
};

struct CkptHeader {
  CkptKind kind = CkptKind::kFull;
  std::uint64_t checkpoint_id = 0;
  std::uint64_t parent_id = 0;  ///< 0 for full snapshots
  std::uint64_t iteration = 0;  ///< completed training iterations
  std::uint64_t seed = 0;       ///< trainer seed the state was grown from
  std::uint32_t section_count = 0;
};

/// Appends the fixed file header; returns the offset of section_count so
/// the writer can patch it once all sections are appended.
std::size_t append_ckpt_header(std::vector<std::byte>& out,
                               const CkptHeader& header);

/// Patches section_count in a previously appended header.
void patch_section_count(std::vector<std::byte>& out, std::size_t field_offset,
                         std::uint32_t section_count);

/// Parses and validates the file header (magic + version); throws
/// FormatError on mismatch or truncation.
CkptHeader parse_ckpt_header(ByteReader& reader);

/// Appends one CRC-stamped section.
void append_section(std::vector<std::byte>& out, CkptSection type,
                    std::uint32_t id, std::span<const std::byte> payload);

/// One parsed section; `payload` views into the container buffer.
struct SectionView {
  CkptSection type{};
  std::uint32_t id = 0;
  std::span<const std::byte> payload;
};

/// Reads the next section and verifies its CRC; throws FormatError on
/// truncation or checksum mismatch.
SectionView read_section(ByteReader& reader);

/// Serialized-string helpers shared by section payloads (u16 length +
/// bytes; throws FormatError if the stored length overruns the buffer).
void append_string(std::vector<std::byte>& out, std::string_view text);
std::string read_string(ByteReader& reader);

/// Whole-file IO. read_container throws Error when the file is missing
/// and FormatError when it is shorter than a header.
void write_container(const std::string& path, std::span<const std::byte> data);
std::vector<std::byte> read_container(const std::string& path);

}  // namespace dlcomp
