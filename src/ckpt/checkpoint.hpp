#pragma once

/// \file checkpoint.hpp
/// Compressed model checkpointing: the paper's per-table error bounds
/// applied to *at-rest* state. A snapshot stores MLP parameters and
/// optimizer state losslessly (they are small and resume must be exact)
/// while embedding tables -- the bulk of DLRM state -- go through any
/// registered error-bounded codec with per-table bounds taken from a
/// CompressionPolicy or an offline-analysis CompressionPlan.
///
/// Two snapshot kinds (see container.hpp for the envelope):
///   - full: complete state; establishes the delta baseline,
///   - delta: only rows whose values moved more than the table's error
///     bound since the previous save (touched-row bitmap + compressed
///     payload), with full MLP/optimizer-row deltas so a chain replay
///     reconstructs resume-grade state.
///
/// The writer tracks the reader-visible reconstruction of every table
/// ("shadow" state), so lossy reconstruction error never accumulates
/// across a chain: after replaying full + any number of deltas, every
/// embedding element is within its table's bound of the live weights at
/// the last save.

#include <cstdint>
#include <string>
#include <vector>

#include "ckpt/container.hpp"
#include "compress/chunked.hpp"
#include "compress/compressor.hpp"
#include "compress/workspace.hpp"
#include "core/report_io.hpp"
#include "core/trainer.hpp"
#include "dlrm/model.hpp"
#include "parallel/thread_pool.hpp"
#include "tensor/matrix.hpp"

namespace dlcomp {

/// How embedding tables are encoded at rest.
struct CheckpointOptions {
  /// Registry codec name for table payloads; empty stores raw float32
  /// (bitwise-lossless snapshots).
  std::string codec;

  /// Per-table absolute error bounds; empty means `global_eb` everywhere.
  std::vector<double> table_eb;
  double global_eb = 0.01;

  /// Per-table hybrid codec choices (meaningful for codec="hybrid").
  std::vector<HybridChoice> table_choice;

  /// Vector-LZ window, forwarded to CompressParams.
  std::size_t lz_window_vectors = 128;

  /// Worker pool for parallel per-table (de)compression; null = serial.
  ThreadPool* pool = nullptr;
};

/// Builds options from the trainer's wire-compression policy (same codec
/// and per-table bounds at rest as on the all-to-all).
CheckpointOptions checkpoint_options_from(const CompressionPolicy& policy);

/// Builds options from an offline-analysis plan (hybrid codec with the
/// analyzer's per-table bounds and codec choices).
CheckpointOptions checkpoint_options_from(const CompressionPlan& plan);

/// Non-owning view of the state a checkpoint covers. The trainer points
/// this at its shared tables/optimizers; make_model_state() builds one
/// from a DlrmModel.
struct ModelState {
  std::uint64_t iteration = 0;  ///< completed training iterations
  std::uint64_t seed = 0;       ///< trainer seed (for provenance)
  Mlp* bottom = nullptr;
  Mlp* top = nullptr;
  std::vector<Matrix*> tables;     ///< per-table weights (rows x dim)
  std::vector<Matrix*> opt_state;  ///< per-table Adagrad accumulator; null
                                   ///< or empty entries mean no state yet
  EmbeddingOptimizerKind opt_kind = EmbeddingOptimizerKind::kSgd;
};

/// Views a DlrmModel's weights + optimizer state as a ModelState.
ModelState make_model_state(DlrmModel& model, std::uint64_t iteration = 0,
                            std::uint64_t seed = 0);

/// One fully materialized table after load/replay.
struct LoadedTable {
  std::uint64_t rows = 0;
  std::uint32_t dim = 0;
  double error_bound = 0.0;  ///< 0 when stored losslessly
  bool lossy = false;
  std::vector<float> values;     ///< rows * dim
  std::vector<float> opt_state;  ///< rows * dim, or empty
};

/// A checkpoint after reading (and, for deltas, chain replay).
struct LoadedCheckpoint {
  CkptHeader header;
  std::string codec;  ///< codec of the newest container in the chain
  EmbeddingOptimizerKind opt_kind = EmbeddingOptimizerKind::kSgd;
  std::string parent_file;        ///< empty for full snapshots
  std::size_t chain_length = 1;   ///< containers replayed to build this
  std::vector<std::vector<float>> bottom_params;  ///< per Mlp param view
  std::vector<std::vector<float>> top_params;
  std::vector<LoadedTable> tables;
};

/// Serializes snapshots. Keeps shadow (reader-visible) state between
/// saves so delta encoding and error-accumulation control work; one
/// writer instance therefore serves one model lifecycle.
class CheckpointWriter {
 public:
  explicit CheckpointWriter(CheckpointOptions options);

  /// Writes a complete snapshot and resets the delta baseline.
  void save_full(const std::string& path, const ModelState& state);

  /// Writes rows that moved more than each table's bound since the last
  /// save. Throws Error when no snapshot has been written yet.
  void save_delta(const std::string& path, const ModelState& state);

  /// Convenience policy: full on the first call and every `full_every`-th
  /// save (full_every <= 1 means always full), delta otherwise. Returns
  /// the path written.
  std::string save(const std::string& path, const ModelState& state,
                   std::size_t full_every);

  [[nodiscard]] const CheckpointOptions& options() const noexcept {
    return options_;
  }

 private:
  [[nodiscard]] double table_eb(std::size_t t) const noexcept;
  [[nodiscard]] CompressParams table_params(std::size_t t,
                                            std::size_t dim) const noexcept;
  void check_shapes(const ModelState& state) const;

  CheckpointOptions options_;
  const Compressor* codec_ = nullptr;  ///< registry singleton or null

  /// Decodes deferred full-snapshot streams into shadow_ (see below).
  void materialize_shadow();

  std::size_t saves_ = 0;
  std::uint64_t last_id_ = 0;
  std::string last_file_;           ///< basename of the last container
  std::vector<Matrix> shadow_;      ///< reader-visible table values
  std::vector<Matrix> shadow_opt_;  ///< reader-visible optimizer state

  /// save_full defers shadow materialization: it keeps the encoded table
  /// streams here and only decodes them if a save_delta follows, so
  /// one-shot full snapshots pay no decompress round-trip and hold no
  /// second copy of the embedding state.
  struct PendingShadow {
    std::vector<std::byte> bytes;
    std::uint8_t storage = 0;
    std::size_t rows = 0;
    std::size_t dim = 0;
  };
  std::vector<PendingShadow> pending_shadow_;

  /// One codec workspace per concurrent per-table task (leased inside
  /// for_each_table bodies; capacity retained across saves).
  WorkspacePool workspaces_;

  /// Blocked parallel codec batches (see chunked.hpp): every table's
  /// encode — split into blocks when large — runs as one flat task list,
  /// so a snapshot dominated by a single huge table still scales with
  /// the pool instead of serializing on that table. Null for raw
  /// (codec-less) checkpoints.
  std::unique_ptr<BlockEngine> engine_;
};

/// Deserializes containers, verifying magic/version/CRCs.
class CheckpointReader {
 public:
  explicit CheckpointReader(ThreadPool* pool = nullptr) : pool_(pool) {}

  /// Loads `path`, recursively replaying the parent chain when it is a
  /// delta (parent filenames resolve relative to `path`'s directory).
  [[nodiscard]] LoadedCheckpoint load(const std::string& path) const;

 private:
  [[nodiscard]] LoadedCheckpoint load_one(const std::string& path,
                                          std::size_t depth) const;
  ThreadPool* pool_;
  /// Per-table decode workspaces (mutable: load() is logically const).
  mutable WorkspacePool workspaces_;
};

/// Copies loaded state into live model objects; throws Error on any
/// shape mismatch (table count/rows/dim, MLP view sizes).
void apply_model_state(const LoadedCheckpoint& ckpt, const ModelState& state);

/// Convenience: load `path` (chain replay included) into a DlrmModel.
void load_checkpoint_into(DlrmModel& model, const std::string& path,
                          ThreadPool* pool = nullptr);

/// Section inventory of a single container (no chain resolution); the
/// CLI's inspect/verify subcommands print this.
struct ContainerInfo {
  CkptHeader header;
  std::string codec;
  std::string parent_file;
  std::size_t file_bytes = 0;
  /// Uncompressed float32 bytes the table sections represent.
  std::size_t table_raw_bytes = 0;
  /// On-disk bytes of the table sections (compressed payloads).
  std::size_t table_stored_bytes = 0;
  std::size_t delta_touched_rows = 0;  ///< summed over tables (deltas only)
  struct Section {
    CkptSection type{};
    std::uint32_t id = 0;
    std::size_t bytes = 0;
  };
  std::vector<Section> sections;
};

/// Parses one container, CRC-checking every section.
ContainerInfo inspect_checkpoint(const std::string& path);

}  // namespace dlcomp
