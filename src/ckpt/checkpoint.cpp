#include "ckpt/checkpoint.hpp"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <exception>
#include <filesystem>
#include <limits>
#include <utility>

#include "common/error.hpp"
#include "compress/registry.hpp"

namespace dlcomp {

namespace {

constexpr std::size_t kMaxChainDepth = 1024;

/// "No engine slot" marker for tables whose payload is empty (nothing to
/// compress; stored as storage 0 with zero bytes).
constexpr std::size_t kNoSlot = static_cast<std::size_t>(-1);

std::uint64_t make_checkpoint_id(std::uint64_t seed, std::uint64_t iteration,
                                 std::uint64_t save_index) {
  std::uint64_t state = seed ^ (iteration * 0x9E3779B97F4A7C15ULL);
  const std::uint64_t a = splitmix64(state);
  state ^= save_index + 0xD1B54A32D192ED03ULL;
  return splitmix64(state) ^ a;
}

std::size_t bitmap_bytes(std::size_t rows) { return (rows + 7) / 8; }

bool bitmap_get(std::span<const std::byte> bitmap, std::size_t row) {
  return (static_cast<std::uint8_t>(bitmap[row / 8]) >> (row % 8)) & 1u;
}

void bitmap_set(std::span<std::byte> bitmap, std::size_t row) {
  bitmap[row / 8] = static_cast<std::byte>(
      static_cast<std::uint8_t>(bitmap[row / 8]) | (1u << (row % 8)));
}

/// A value buffer encoded for storage, plus (when requested) the
/// reconstruction a reader will see -- identical to the input for raw
/// storage. Skipping the reconstruction avoids a decompress round-trip
/// when no shadow state is needed.
struct EncodedValues {
  std::vector<std::byte> bytes;
  std::vector<float> recon;
  std::uint8_t storage = 0;  ///< 0 raw float32, 1 codec stream
};

EncodedValues encode_values(const Compressor* codec,
                            std::span<const float> values,
                            const CompressParams& params, bool want_recon,
                            CompressionWorkspace& ws) {
  EncodedValues encoded;
  if (codec == nullptr || values.empty()) {
    encoded.storage = 0;
    if (!values.empty()) {
      encoded.bytes.resize(values.size_bytes());
      std::memcpy(encoded.bytes.data(), values.data(), values.size_bytes());
      if (want_recon) encoded.recon.assign(values.begin(), values.end());
    }
    return encoded;
  }
  encoded.storage = 1;
  codec->compress(values, params, encoded.bytes, ws);
  if (want_recon) {
    encoded.recon.resize(values.size());
    codec->decompress(encoded.bytes, encoded.recon, ws);
  }
  return encoded;
}

std::vector<float> decode_values(const std::string& codec_name,
                                 std::uint8_t storage,
                                 std::span<const std::byte> bytes,
                                 std::size_t expected_count,
                                 CompressionWorkspace& ws) {
  // Validate sizes before allocating so a crafted count fails cleanly
  // instead of attempting a huge allocation.
  if (expected_count > std::numeric_limits<std::size_t>::max() / sizeof(float)) {
    throw FormatError("checkpoint element count overflows byte size");
  }
  if (storage == 0) {
    if (bytes.size() != expected_count * sizeof(float)) {
      throw FormatError("checkpoint raw table payload has wrong size");
    }
  } else {
    if (codec_name.empty()) {
      throw FormatError("checkpoint stream payload without a codec name");
    }
    if (decompressed_count(bytes) != expected_count) {
      throw FormatError("checkpoint stream element count mismatch");
    }
  }
  std::vector<float> values(expected_count);
  if (storage == 0) {
    if (!bytes.empty()) {
      std::memcpy(values.data(), bytes.data(), bytes.size());
    }
    return values;
  }
  // The payload may be a blocked ("DLBK") container when the writer split
  // a large table across its pool; blocked_decompress handles both forms.
  blocked_decompress(get_compressor(codec_name), bytes, values, ws);
  return values;
}

/// rows * dim as size_t, rejecting products that would wrap (crafted
/// headers could otherwise defeat every downstream size check).
std::size_t checked_element_count(std::uint64_t rows, std::uint32_t dim) {
  if (rows != 0 && dim != 0 &&
      rows > std::numeric_limits<std::size_t>::max() / dim) {
    throw FormatError("checkpoint table dimensions overflow");
  }
  return static_cast<std::size_t>(rows) * dim;
}

std::vector<std::byte> serialize_mlp(Mlp& mlp) {
  std::vector<std::byte> payload;
  const auto views = mlp.param_views();
  append_pod(payload, static_cast<std::uint32_t>(views.size()));
  for (const auto view : views) {
    append_pod(payload, static_cast<std::uint64_t>(view.size()));
    append_pod_span(payload, std::span<const float>(view));
  }
  return payload;
}

std::vector<std::vector<float>> parse_mlp(std::span<const std::byte> payload) {
  ByteReader reader(payload);
  const auto view_count = reader.read<std::uint32_t>();
  std::vector<std::vector<float>> views(view_count);
  for (auto& view : views) {
    const auto count = reader.read<std::uint64_t>();
    view.resize(count);
    reader.read_span(std::span<float>(view));
  }
  if (reader.remaining() != 0) {
    throw FormatError("trailing bytes in checkpoint MLP section");
  }
  return views;
}

void apply_mlp(const std::vector<std::vector<float>>& stored, Mlp& mlp,
               const char* which) {
  const auto views = mlp.param_views();
  DLCOMP_CHECK_MSG(stored.size() == views.size(),
                   which << " MLP has " << views.size()
                         << " parameter views, checkpoint has "
                         << stored.size());
  for (std::size_t i = 0; i < views.size(); ++i) {
    DLCOMP_CHECK_MSG(stored[i].size() == views[i].size(),
                     which << " MLP view " << i << " size mismatch");
    std::copy(stored[i].begin(), stored[i].end(), views[i].begin());
  }
}

/// Runs `body(t)` for every table, on the pool when one is available.
/// Exceptions from the body are captured and rethrown on the caller
/// thread (pool tasks themselves must not throw).
void for_each_table(ThreadPool* pool, std::size_t count,
                    const std::function<void(std::size_t)>& body) {
  if (pool == nullptr || count <= 1) {
    for (std::size_t t = 0; t < count; ++t) body(t);
    return;
  }
  std::vector<std::exception_ptr> errors(count);
  pool->parallel_for(0, count, 1, [&](std::size_t begin, std::size_t end) {
    for (std::size_t t = begin; t < end; ++t) {
      try {
        body(t);
      } catch (...) {
        errors[t] = std::current_exception();
      }
    }
  });
  for (const auto& error : errors) {
    if (error) std::rethrow_exception(error);
  }
}

/// Emits the file header plus the meta and MLP sections shared by full
/// and delta containers (3 sections); returns the section_count patch
/// offset. Keeping one emission path means format changes cannot apply
/// to one container kind and miss the other.
std::size_t begin_container(std::vector<std::byte>& out,
                            const CkptHeader& header,
                            const std::string& codec,
                            const std::string& parent_file,
                            const ModelState& state) {
  const std::size_t count_at = append_ckpt_header(out, header);
  std::vector<std::byte> meta;
  append_string(meta, codec);
  append_pod(meta, static_cast<std::uint8_t>(state.opt_kind));
  append_string(meta, parent_file);
  append_pod(meta, static_cast<std::uint32_t>(state.tables.size()));
  append_section(out, CkptSection::kMeta, 0, meta);
  append_section(out, CkptSection::kMlpBottom, 0, serialize_mlp(*state.bottom));
  append_section(out, CkptSection::kMlpTop, 0, serialize_mlp(*state.top));
  return count_at;
}

/// Sections of one container, parsed but not yet decoded.
struct RawContainer {
  CkptHeader header;
  std::string codec;
  EmbeddingOptimizerKind opt_kind = EmbeddingOptimizerKind::kSgd;
  std::string parent_file;
  std::size_t num_tables = 0;
  std::vector<std::vector<float>> bottom_params;
  std::vector<std::vector<float>> top_params;
  std::vector<SectionView> table_sections;  ///< per table id
  std::vector<SectionView> opt_sections;    ///< per table id (may be empty)
};

RawContainer parse_container(std::span<const std::byte> file) {
  ByteReader reader(file);
  RawContainer raw;
  raw.header = parse_ckpt_header(reader);

  bool meta_seen = false;
  bool bottom_seen = false;
  bool top_seen = false;
  std::vector<SectionView> tables;
  std::vector<SectionView> opts;
  for (std::uint32_t s = 0; s < raw.header.section_count; ++s) {
    const SectionView section = read_section(reader);
    switch (section.type) {
      case CkptSection::kMeta: {
        if (meta_seen) throw FormatError("duplicate checkpoint meta section");
        ByteReader meta(section.payload);
        raw.codec = read_string(meta);
        raw.opt_kind = static_cast<EmbeddingOptimizerKind>(
            meta.read<std::uint8_t>());
        raw.parent_file = read_string(meta);
        raw.num_tables = meta.read<std::uint32_t>();
        meta_seen = true;
        break;
      }
      case CkptSection::kMlpBottom:
        if (bottom_seen) throw FormatError("duplicate bottom MLP section");
        raw.bottom_params = parse_mlp(section.payload);
        bottom_seen = true;
        break;
      case CkptSection::kMlpTop:
        if (top_seen) throw FormatError("duplicate top MLP section");
        raw.top_params = parse_mlp(section.payload);
        top_seen = true;
        break;
      case CkptSection::kTableFull:
      case CkptSection::kTableDelta:
        tables.push_back(section);
        break;
      case CkptSection::kOptState:
      case CkptSection::kOptDelta:
        opts.push_back(section);
        break;
    }
  }
  if (!meta_seen) throw FormatError("checkpoint has no meta section");
  // The header's section_count is not CRC-protected; reject trailing
  // bytes so a tampered count cannot silently drop sections.
  if (reader.remaining() != 0) {
    throw FormatError("trailing bytes after last checkpoint section");
  }
  if (tables.size() != raw.num_tables) {
    throw FormatError("checkpoint table section count mismatch");
  }
  raw.table_sections.resize(raw.num_tables);
  std::vector<bool> seen(raw.num_tables, false);
  for (const auto& section : tables) {
    if (section.id >= raw.num_tables || seen[section.id]) {
      throw FormatError("bad table id in checkpoint section");
    }
    seen[section.id] = true;
    raw.table_sections[section.id] = section;
  }
  raw.opt_sections.resize(raw.num_tables);
  std::fill(seen.begin(), seen.end(), false);
  for (const auto& section : opts) {
    if (section.id >= raw.num_tables || seen[section.id]) {
      throw FormatError("bad optimizer table id in checkpoint section");
    }
    seen[section.id] = true;
    raw.opt_sections[section.id] = section;
  }
  const bool is_delta = raw.header.kind == CkptKind::kDelta;
  for (std::size_t t = 0; t < raw.num_tables; ++t) {
    const CkptSection expect =
        is_delta ? CkptSection::kTableDelta : CkptSection::kTableFull;
    if (raw.table_sections[t].type != expect) {
      throw FormatError("checkpoint table section kind does not match header");
    }
  }
  return raw;
}

}  // namespace

CheckpointOptions checkpoint_options_from(const CompressionPolicy& policy) {
  CheckpointOptions options;
  options.codec = policy.codec;
  options.table_eb = policy.table_eb;
  options.global_eb = policy.global_eb;
  options.table_choice = policy.table_choice;
  return options;
}

CheckpointOptions checkpoint_options_from(const CompressionPlan& plan) {
  CheckpointOptions options;
  options.codec = "hybrid";
  options.table_eb = plan.table_error_bounds();
  options.table_choice = plan.table_choices();
  return options;
}

ModelState make_model_state(DlrmModel& model, std::uint64_t iteration,
                            std::uint64_t seed) {
  ModelState state;
  state.iteration = iteration;
  state.seed = seed;
  state.bottom = &model.bottom_mlp();
  state.top = &model.top_mlp();
  for (std::size_t t = 0; t < model.num_tables(); ++t) {
    state.tables.push_back(&model.table(t).weights());
    state.opt_state.push_back(&model.optimizer(t).accumulator());
  }
  if (model.num_tables() > 0) state.opt_kind = model.optimizer(0).kind();
  return state;
}

CheckpointWriter::CheckpointWriter(CheckpointOptions options)
    : options_(std::move(options)),
      codec_(options_.codec.empty() ? nullptr
                                    : &get_compressor(options_.codec)) {
  if (codec_ != nullptr) {
    engine_ = std::make_unique<BlockEngine>(*codec_, options_.pool);
  }
}

double CheckpointWriter::table_eb(std::size_t t) const noexcept {
  if (codec_ == nullptr) return 0.0;  // raw storage is exact
  return t < options_.table_eb.size() ? options_.table_eb[t]
                                      : options_.global_eb;
}

CompressParams CheckpointWriter::table_params(std::size_t t,
                                              std::size_t dim) const noexcept {
  CompressParams params;
  params.error_bound = table_eb(t);
  params.eb_mode = EbMode::kAbsolute;
  params.vector_dim = dim;
  params.lz_window_vectors = options_.lz_window_vectors;
  params.hybrid_choice = t < options_.table_choice.size()
                             ? options_.table_choice[t]
                             : HybridChoice::kAuto;
  return params;
}

void CheckpointWriter::check_shapes(const ModelState& state) const {
  DLCOMP_CHECK(state.bottom != nullptr && state.top != nullptr);
  DLCOMP_CHECK(state.opt_state.empty() ||
               state.opt_state.size() == state.tables.size());
  for (const Matrix* table : state.tables) DLCOMP_CHECK(table != nullptr);
  DLCOMP_CHECK_MSG(
      options_.table_eb.empty() ||
          options_.table_eb.size() == state.tables.size(),
      "per-table error bounds cover " << options_.table_eb.size()
                                      << " tables, model has "
                                      << state.tables.size());
}

void CheckpointWriter::save_full(const std::string& path,
                                 const ModelState& state) {
  check_shapes(state);
  const std::size_t num_tables = state.tables.size();
  shadow_.assign(num_tables, Matrix());
  shadow_opt_.assign(num_tables, Matrix());

  // Encode every table in parallel. The shadow reconstruction is
  // deferred (see pending_shadow_): only a later save_delta needs it.
  std::vector<EncodedValues> encoded(num_tables);
  if (codec_ != nullptr) {
    // One flat blocked batch over every table: large tables split into
    // independent blocks (see chunked.hpp), so a snapshot dominated by a
    // single huge table still spreads across the pool instead of
    // serializing on that table.
    engine_->compress_begin();
    std::vector<std::size_t> slots(num_tables, kNoSlot);
    for (std::size_t t = 0; t < num_tables; ++t) {
      const Matrix& weights = *state.tables[t];
      if (weights.flat().empty()) continue;
      encoded[t].storage = 1;
      slots[t] = engine_->add_tensor(weights.flat(),
                                     table_params(t, weights.cols()));
    }
    engine_->compress_run();
    for (std::size_t t = 0; t < num_tables; ++t) {
      if (slots[t] == kNoSlot) continue;
      encoded[t].bytes.reserve(engine_->stream_bytes(slots[t]));
      engine_->append_stream(slots[t], encoded[t].bytes);
    }
  } else {
    for_each_table(options_.pool, num_tables, [&](std::size_t t) {
      WorkspacePool::Lease ws(workspaces_);
      const Matrix& weights = *state.tables[t];
      encoded[t] = encode_values(codec_, weights.flat(),
                                 table_params(t, weights.cols()),
                                 /*want_recon=*/false, *ws);
    });
  }
  for_each_table(options_.pool, num_tables, [&](std::size_t t) {
    const Matrix* opt = t < state.opt_state.size() ? state.opt_state[t]
                                                   : nullptr;
    if (opt != nullptr && !opt->empty()) {
      shadow_opt_[t] = *opt;  // optimizer state is always stored exactly
    }
  });

  std::vector<std::byte> out;
  CkptHeader header;
  header.kind = CkptKind::kFull;
  header.checkpoint_id = make_checkpoint_id(state.seed, state.iteration, saves_);
  header.parent_id = 0;
  header.iteration = state.iteration;
  header.seed = state.seed;
  const std::size_t count_at =
      begin_container(out, header, options_.codec, /*parent_file=*/"", state);
  std::uint32_t sections = 3;

  for (std::size_t t = 0; t < num_tables; ++t) {
    const Matrix& weights = *state.tables[t];
    std::vector<std::byte> payload;
    append_pod(payload, static_cast<std::uint64_t>(weights.rows()));
    append_pod(payload, static_cast<std::uint32_t>(weights.cols()));
    append_pod(payload, encoded[t].storage);
    append_pod(payload, table_eb(t));
    append_pod(payload, static_cast<std::uint64_t>(encoded[t].bytes.size()));
    payload.insert(payload.end(), encoded[t].bytes.begin(),
                   encoded[t].bytes.end());
    append_section(out, CkptSection::kTableFull,
                   static_cast<std::uint32_t>(t), payload);
    ++sections;

    std::vector<std::byte> opt_payload;
    const Matrix& opt = shadow_opt_[t];
    append_pod(opt_payload, static_cast<std::uint64_t>(weights.rows()));
    append_pod(opt_payload, static_cast<std::uint32_t>(weights.cols()));
    append_pod(opt_payload, static_cast<std::uint8_t>(opt.empty() ? 0 : 1));
    if (!opt.empty()) {
      append_pod_span(opt_payload, std::span<const float>(opt.flat()));
    }
    append_section(out, CkptSection::kOptState, static_cast<std::uint32_t>(t),
                   opt_payload);
    ++sections;
  }

  patch_section_count(out, count_at, sections);
  write_container(path, out);

  pending_shadow_.clear();
  pending_shadow_.resize(num_tables);
  for (std::size_t t = 0; t < num_tables; ++t) {
    pending_shadow_[t] = {std::move(encoded[t].bytes), encoded[t].storage,
                          state.tables[t]->rows(), state.tables[t]->cols()};
  }
  last_id_ = header.checkpoint_id;
  last_file_ = std::filesystem::path(path).filename().string();
  ++saves_;
}

void CheckpointWriter::materialize_shadow() {
  if (pending_shadow_.empty()) return;
  if (codec_ != nullptr) {
    // Blocked batch: large tables decode block-parallel, so the first
    // save_delta after a full snapshot does not serialize on one table.
    engine_->decompress_begin();
    bool any = false;
    for (std::size_t t = 0; t < pending_shadow_.size(); ++t) {
      const PendingShadow& pending = pending_shadow_[t];
      Matrix& shadow = shadow_[t];
      shadow.resize(pending.rows, pending.dim);
      if (pending.storage == 0) {
        if (!pending.bytes.empty()) {
          std::memcpy(shadow.data(), pending.bytes.data(),
                      pending.bytes.size());
        }
      } else {
        engine_->add_stream(pending.bytes, shadow.flat());
        any = true;
      }
    }
    if (any) engine_->decompress_run();
  } else {
    for_each_table(options_.pool, pending_shadow_.size(), [&](std::size_t t) {
      const PendingShadow& pending = pending_shadow_[t];
      Matrix& shadow = shadow_[t];
      shadow.resize(pending.rows, pending.dim);
      if (!pending.bytes.empty()) {
        std::memcpy(shadow.data(), pending.bytes.data(), pending.bytes.size());
      }
    });
  }
  pending_shadow_.clear();
}

void CheckpointWriter::save_delta(const std::string& path,
                                  const ModelState& state) {
  DLCOMP_CHECK_MSG(saves_ > 0,
                   "delta checkpoint requires a prior full snapshot");
  check_shapes(state);
  const std::size_t num_tables = state.tables.size();
  DLCOMP_CHECK_MSG(shadow_.size() == num_tables,
                   "model table count changed between saves");
  materialize_shadow();

  struct TableDelta {
    std::vector<std::byte> bitmap;
    std::uint64_t touched = 0;
    std::vector<float> touched_values;
    EncodedValues encoded;
    std::vector<std::byte> opt_bitmap;
    std::uint64_t opt_touched = 0;
    std::vector<float> opt_rows;
    bool opt_present = false;
  };
  std::vector<TableDelta> deltas(num_tables);

  // Phase 1 (parallel per table): diff live weights against the shadow to
  // collect touched rows, and fold optimizer rows (always exact, raw).
  for_each_table(options_.pool, num_tables, [&](std::size_t t) {
    const Matrix& weights = *state.tables[t];
    Matrix& shadow = shadow_[t];
    DLCOMP_CHECK_MSG(
        shadow.rows() == weights.rows() && shadow.cols() == weights.cols(),
        "table " << t << " shape changed between saves");
    const std::size_t rows = weights.rows();
    const std::size_t dim = weights.cols();
    const double bound = table_eb(t);
    TableDelta& delta = deltas[t];
    delta.bitmap.assign(bitmap_bytes(rows), std::byte{0});

    for (std::size_t r = 0; r < rows; ++r) {
      const float* live = weights.data() + r * dim;
      const float* seen = shadow.data() + r * dim;
      double max_diff = 0.0;
      for (std::size_t i = 0; i < dim; ++i) {
        max_diff = std::max(
            max_diff, static_cast<double>(std::abs(live[i] - seen[i])));
      }
      if (max_diff > bound) {
        bitmap_set(delta.bitmap, r);
        ++delta.touched;
        delta.touched_values.insert(delta.touched_values.end(), live,
                                    live + dim);
      }
    }

    // Optimizer rows: exact diff, raw storage.
    const Matrix* opt = t < state.opt_state.size() ? state.opt_state[t]
                                                   : nullptr;
    delta.opt_present = opt != nullptr && !opt->empty();
    delta.opt_bitmap.assign(bitmap_bytes(rows), std::byte{0});
    if (delta.opt_present) {
      Matrix& opt_shadow = shadow_opt_[t];
      const bool had_shadow = !opt_shadow.empty();
      for (std::size_t r = 0; r < rows; ++r) {
        const float* live = opt->data() + r * dim;
        const float* seen = had_shadow ? opt_shadow.data() + r * dim : nullptr;
        bool changed = false;
        for (std::size_t i = 0; i < dim; ++i) {
          const float base = seen != nullptr ? seen[i] : 0.0f;
          if (live[i] != base) {
            changed = true;
            break;
          }
        }
        if (changed) {
          bitmap_set(delta.opt_bitmap, r);
          ++delta.opt_touched;
          delta.opt_rows.insert(delta.opt_rows.end(), live, live + dim);
        }
      }
      if (!had_shadow) opt_shadow.resize(rows, dim);
      std::size_t j = 0;
      for (std::size_t r = 0; r < rows; ++r) {
        if (!bitmap_get(delta.opt_bitmap, r)) continue;
        std::copy_n(delta.opt_rows.begin() + j * dim, dim,
                    opt_shadow.data() + r * dim);
        ++j;
      }
    }
  });

  // Phase 2: encode every table's touched rows. With a codec this is one
  // flat blocked batch with per-block reconstruction, so a delta
  // dominated by a single hot table still scales with the pool.
  if (codec_ != nullptr) {
    engine_->compress_begin();
    std::vector<std::size_t> slots(num_tables, kNoSlot);
    for (std::size_t t = 0; t < num_tables; ++t) {
      TableDelta& delta = deltas[t];
      if (delta.touched_values.empty()) continue;
      delta.encoded.storage = 1;
      delta.encoded.recon.resize(delta.touched_values.size());
      slots[t] = engine_->add_tensor(
          delta.touched_values, table_params(t, state.tables[t]->cols()),
          std::span<float>(delta.encoded.recon));
    }
    engine_->compress_run();
    for (std::size_t t = 0; t < num_tables; ++t) {
      if (slots[t] == kNoSlot) continue;
      deltas[t].encoded.bytes.reserve(engine_->stream_bytes(slots[t]));
      engine_->append_stream(slots[t], deltas[t].encoded.bytes);
    }
  } else {
    for_each_table(options_.pool, num_tables, [&](std::size_t t) {
      WorkspacePool::Lease ws(workspaces_);
      TableDelta& delta = deltas[t];
      delta.encoded = encode_values(codec_, delta.touched_values,
                                    table_params(t, state.tables[t]->cols()),
                                    /*want_recon=*/true, *ws);
    });
  }

  // Phase 3 (parallel): fold the reconstruction back into the shadow so
  // the next delta diffs against exactly what a reader will have.
  for_each_table(options_.pool, num_tables, [&](std::size_t t) {
    const Matrix& weights = *state.tables[t];
    const std::size_t dim = weights.cols();
    Matrix& shadow = shadow_[t];
    const TableDelta& delta = deltas[t];
    std::size_t k = 0;
    for (std::size_t r = 0; r < weights.rows(); ++r) {
      if (!bitmap_get(delta.bitmap, r)) continue;
      std::copy_n(delta.encoded.recon.begin() + k * dim, dim,
                  shadow.data() + r * dim);
      ++k;
    }
  });

  std::vector<std::byte> out;
  CkptHeader header;
  header.kind = CkptKind::kDelta;
  header.checkpoint_id = make_checkpoint_id(state.seed, state.iteration, saves_);
  header.parent_id = last_id_;
  header.iteration = state.iteration;
  header.seed = state.seed;
  const std::size_t count_at =
      begin_container(out, header, options_.codec, last_file_, state);
  std::uint32_t sections = 3;

  for (std::size_t t = 0; t < num_tables; ++t) {
    const Matrix& weights = *state.tables[t];
    const TableDelta& delta = deltas[t];
    std::vector<std::byte> payload;
    append_pod(payload, static_cast<std::uint64_t>(weights.rows()));
    append_pod(payload, static_cast<std::uint32_t>(weights.cols()));
    append_pod(payload, delta.encoded.storage);
    append_pod(payload, table_eb(t));
    append_pod(payload, delta.touched);
    payload.insert(payload.end(), delta.bitmap.begin(), delta.bitmap.end());
    append_pod(payload,
               static_cast<std::uint64_t>(delta.encoded.bytes.size()));
    payload.insert(payload.end(), delta.encoded.bytes.begin(),
                   delta.encoded.bytes.end());
    append_section(out, CkptSection::kTableDelta,
                   static_cast<std::uint32_t>(t), payload);
    ++sections;

    std::vector<std::byte> opt_payload;
    append_pod(opt_payload, static_cast<std::uint64_t>(weights.rows()));
    append_pod(opt_payload, static_cast<std::uint32_t>(weights.cols()));
    append_pod(opt_payload,
               static_cast<std::uint8_t>(delta.opt_present ? 1 : 0));
    if (delta.opt_present) {
      append_pod(opt_payload, delta.opt_touched);
      opt_payload.insert(opt_payload.end(), delta.opt_bitmap.begin(),
                         delta.opt_bitmap.end());
      append_pod_span(opt_payload, std::span<const float>(delta.opt_rows));
    }
    append_section(out, CkptSection::kOptDelta, static_cast<std::uint32_t>(t),
                   opt_payload);
    ++sections;
  }

  patch_section_count(out, count_at, sections);
  write_container(path, out);
  last_id_ = header.checkpoint_id;
  last_file_ = std::filesystem::path(path).filename().string();
  ++saves_;
}

std::string CheckpointWriter::save(const std::string& path,
                                   const ModelState& state,
                                   std::size_t full_every) {
  const bool full =
      saves_ == 0 || full_every <= 1 || saves_ % full_every == 0;
  if (full) {
    save_full(path, state);
  } else {
    save_delta(path, state);
  }
  return path;
}

LoadedCheckpoint CheckpointReader::load(const std::string& path) const {
  return load_one(path, 0);
}

LoadedCheckpoint CheckpointReader::load_one(const std::string& path,
                                            std::size_t depth) const {
  if (depth >= kMaxChainDepth) {
    throw FormatError("checkpoint delta chain too deep (cycle?)");
  }
  const std::vector<std::byte> file = read_container(path);
  RawContainer raw = parse_container(file);

  LoadedCheckpoint loaded;
  if (raw.header.kind == CkptKind::kDelta) {
    if (raw.parent_file.empty()) {
      throw FormatError("delta checkpoint names no parent");
    }
    const std::filesystem::path parent_path =
        std::filesystem::path(path).parent_path() / raw.parent_file;
    loaded = load_one(parent_path.string(), depth + 1);
    if (loaded.header.checkpoint_id != raw.header.parent_id) {
      throw FormatError("delta parent id mismatch: chain is broken");
    }
    if (loaded.tables.size() != raw.num_tables) {
      throw FormatError("delta table count differs from parent");
    }
    ++loaded.chain_length;
  } else {
    loaded.chain_length = 1;
    loaded.tables.resize(raw.num_tables);
  }
  loaded.header = raw.header;
  loaded.codec = raw.codec;
  loaded.opt_kind = raw.opt_kind;
  loaded.parent_file = raw.parent_file;
  // The newest container's MLP state wins over any ancestor's.
  loaded.bottom_params = std::move(raw.bottom_params);
  loaded.top_params = std::move(raw.top_params);

  const bool is_delta = raw.header.kind == CkptKind::kDelta;
  for_each_table(pool_, raw.num_tables, [&](std::size_t t) {
    WorkspacePool::Lease ws(workspaces_);
    LoadedTable& table = loaded.tables[t];
    ByteReader reader(raw.table_sections[t].payload);
    const auto rows = reader.read<std::uint64_t>();
    const auto dim = reader.read<std::uint32_t>();
    const auto storage = reader.read<std::uint8_t>();
    const auto eb = reader.read<double>();
    if (!is_delta) {
      table.rows = rows;
      table.dim = dim;
      table.error_bound = eb;
      table.lossy = storage == 1 && get_compressor(raw.codec).lossy();
      const auto byte_count = reader.read<std::uint64_t>();
      table.values = decode_values(raw.codec, storage,
                                   reader.take(byte_count),
                                   checked_element_count(rows, dim), *ws);
    } else {
      if (table.rows != rows || table.dim != dim) {
        throw FormatError("delta table shape differs from parent");
      }
      const auto touched = reader.read<std::uint64_t>();
      if (touched > rows) {
        throw FormatError("delta touched count exceeds table rows");
      }
      const auto bitmap = reader.take(bitmap_bytes(rows));
      const auto byte_count = reader.read<std::uint64_t>();
      const std::vector<float> rows_data =
          decode_values(raw.codec, storage, reader.take(byte_count),
                        static_cast<std::size_t>(touched) * dim, *ws);
      std::size_t k = 0;
      for (std::size_t r = 0; r < rows; ++r) {
        if (!bitmap_get(bitmap, r)) continue;
        if (k >= touched) {
          throw FormatError("delta bitmap popcount exceeds touched count");
        }
        std::copy_n(rows_data.begin() + k * dim, dim,
                    table.values.begin() + r * dim);
        ++k;
      }
      if (k != touched) {
        throw FormatError("delta bitmap popcount below touched count");
      }
      table.error_bound = std::max(table.error_bound, eb);
      table.lossy = table.lossy || (storage == 1 && get_compressor(raw.codec).lossy());
    }
    if (reader.remaining() != 0) {
      throw FormatError("trailing bytes in checkpoint table section");
    }

    const SectionView& opt_section = raw.opt_sections[t];
    if (opt_section.payload.data() == nullptr) return;  // no optimizer state
    ByteReader opt(opt_section.payload);
    const auto opt_rows = opt.read<std::uint64_t>();
    const auto opt_dim = opt.read<std::uint32_t>();
    if (opt_rows != table.rows || opt_dim != table.dim) {
      throw FormatError("optimizer section shape differs from table");
    }
    const auto present = opt.read<std::uint8_t>();
    if (opt_section.type == CkptSection::kOptState) {
      if (present != 0) {
        table.opt_state.resize(static_cast<std::size_t>(opt_rows) * opt_dim);
        opt.read_span(std::span<float>(table.opt_state));
      } else {
        table.opt_state.clear();
      }
    } else if (present != 0) {  // kOptDelta overlays the parent's state
      const auto touched = opt.read<std::uint64_t>();
      if (touched > opt_rows) {
        throw FormatError("optimizer delta touched count exceeds table rows");
      }
      const auto bitmap = opt.take(bitmap_bytes(opt_rows));
      std::vector<float> rows_data(static_cast<std::size_t>(touched) *
                                   opt_dim);
      opt.read_span(std::span<float>(rows_data));
      if (table.opt_state.empty()) {
        table.opt_state.assign(static_cast<std::size_t>(opt_rows) * opt_dim,
                               0.0f);
      }
      std::size_t k = 0;
      for (std::size_t r = 0; r < opt_rows; ++r) {
        if (!bitmap_get(bitmap, r)) continue;
        if (k >= touched) {
          throw FormatError("optimizer delta bitmap exceeds touched count");
        }
        std::copy_n(rows_data.begin() + k * opt_dim, opt_dim,
                    table.opt_state.begin() + r * opt_dim);
        ++k;
      }
      if (k != touched) {
        throw FormatError("optimizer delta bitmap below touched count");
      }
    }
    if (opt.remaining() != 0) {
      throw FormatError("trailing bytes in checkpoint optimizer section");
    }
  });

  // Full snapshots must materialize every value exactly once.
  if (!is_delta) {
    for (const LoadedTable& table : loaded.tables) {
      if (table.values.size() !=
          static_cast<std::size_t>(table.rows) * table.dim) {
        throw FormatError("checkpoint table not fully materialized");
      }
    }
  }
  return loaded;
}

void apply_model_state(const LoadedCheckpoint& ckpt, const ModelState& state) {
  DLCOMP_CHECK(state.bottom != nullptr && state.top != nullptr);
  DLCOMP_CHECK_MSG(ckpt.tables.size() == state.tables.size(),
                   "checkpoint has " << ckpt.tables.size()
                                     << " tables, model has "
                                     << state.tables.size());
  apply_mlp(ckpt.bottom_params, *state.bottom, "bottom");
  apply_mlp(ckpt.top_params, *state.top, "top");
  for (std::size_t t = 0; t < ckpt.tables.size(); ++t) {
    const LoadedTable& loaded = ckpt.tables[t];
    Matrix& weights = *state.tables[t];
    DLCOMP_CHECK_MSG(
        loaded.rows == weights.rows() && loaded.dim == weights.cols(),
        "table " << t << " shape mismatch: checkpoint " << loaded.rows << "x"
                 << loaded.dim << ", model " << weights.rows() << "x"
                 << weights.cols());
    std::copy(loaded.values.begin(), loaded.values.end(),
              weights.flat().begin());
    Matrix* opt = t < state.opt_state.size() ? state.opt_state[t] : nullptr;
    if (opt == nullptr) continue;
    if (loaded.opt_state.empty()) {
      *opt = Matrix();
    } else {
      opt->resize(loaded.rows, loaded.dim);
      std::copy(loaded.opt_state.begin(), loaded.opt_state.end(),
                opt->flat().begin());
    }
  }
}

void load_checkpoint_into(DlrmModel& model, const std::string& path,
                          ThreadPool* pool) {
  const LoadedCheckpoint loaded = CheckpointReader(pool).load(path);
  apply_model_state(loaded, make_model_state(model));
}

ContainerInfo inspect_checkpoint(const std::string& path) {
  const std::vector<std::byte> file = read_container(path);
  ContainerInfo info;
  info.file_bytes = file.size();

  ByteReader reader(file);
  info.header = parse_ckpt_header(reader);
  for (std::uint32_t s = 0; s < info.header.section_count; ++s) {
    const SectionView section = read_section(reader);
    info.sections.push_back(
        {section.type, section.id, section.payload.size()});
    switch (section.type) {
      case CkptSection::kMeta: {
        ByteReader meta(section.payload);
        info.codec = read_string(meta);
        (void)meta.read<std::uint8_t>();
        info.parent_file = read_string(meta);
        break;
      }
      case CkptSection::kTableFull: {
        ByteReader table(section.payload);
        const auto rows = table.read<std::uint64_t>();
        const auto dim = table.read<std::uint32_t>();
        (void)table.read<std::uint8_t>();
        (void)table.read<double>();
        const auto bytes = table.read<std::uint64_t>();
        info.table_raw_bytes +=
            static_cast<std::size_t>(rows) * dim * sizeof(float);
        info.table_stored_bytes += bytes;
        break;
      }
      case CkptSection::kTableDelta: {
        ByteReader table(section.payload);
        const auto rows = table.read<std::uint64_t>();
        const auto dim = table.read<std::uint32_t>();
        (void)table.read<std::uint8_t>();
        (void)table.read<double>();
        const auto touched = table.read<std::uint64_t>();
        table.skip(bitmap_bytes(rows));
        const auto bytes = table.read<std::uint64_t>();
        info.table_raw_bytes +=
            static_cast<std::size_t>(touched) * dim * sizeof(float);
        info.table_stored_bytes += bytes;
        info.delta_touched_rows += touched;
        break;
      }
      default:
        break;
    }
  }
  if (reader.remaining() != 0) {
    throw FormatError("trailing bytes after last checkpoint section");
  }
  return info;
}

}  // namespace dlcomp
