#include "data/zipf.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "common/error.hpp"

namespace dlcomp {

ZipfSampler::ZipfSampler(std::size_t n, double exponent,
                         std::uint64_t permute_seed)
    : exponent_(exponent) {
  DLCOMP_CHECK_MSG(n > 0, "ZipfSampler needs a non-empty domain");
  DLCOMP_CHECK_MSG(exponent >= 0.0, "Zipf exponent must be non-negative");

  cdf_.resize(n);
  double total = 0.0;
  for (std::size_t k = 0; k < n; ++k) {
    total += 1.0 / std::pow(static_cast<double>(k + 1), exponent);
    cdf_[k] = total;
  }
  for (auto& c : cdf_) c /= total;
  cdf_.back() = 1.0;  // guard against accumulated rounding

  permute_.resize(n);
  std::iota(permute_.begin(), permute_.end(), 0u);
  Rng perm_rng(permute_seed);
  perm_rng.shuffle(std::span<std::uint32_t>(permute_));
}

std::uint32_t ZipfSampler::sample(Rng& rng) const {
  const double u = rng.next_double();
  const auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
  const auto rank = static_cast<std::size_t>(std::distance(cdf_.begin(), it));
  return permute_[std::min(rank, permute_.size() - 1)];
}

double ZipfSampler::top_probability() const noexcept {
  return cdf_.empty() ? 0.0 : cdf_.front();
}

}  // namespace dlcomp
