#pragma once

/// \file batch_source.hpp
/// The mini-batch contract between data sources and the training /
/// analysis / serving stack. Everything that consumes batches (the
/// single-process DlrmModel, the hybrid-parallel trainer, the offline
/// analyzer, the auto-tuner) takes a `BatchSource`, so synthetic
/// generation and real-dataset shard reading are interchangeable behind
/// one flag.
///
/// Contract: `make_batch` / `make_eval_batch` are const and must be safe
/// to call concurrently from many threads -- the trainer's ranks are
/// threads, and every rank regenerates the same global batch
/// deterministically. Batch `i` must be identical across runs, ranks and
/// call orders for a fixed source.

#include <cstddef>
#include <cstdint>
#include <vector>

#include "data/dataset_spec.hpp"
#include "tensor/matrix.hpp"

namespace dlcomp {

/// One mini-batch of samples.
struct SampleBatch {
  Matrix dense;                                      ///< B x num_dense
  std::vector<std::vector<std::uint32_t>> indices;   ///< [table][B]
  std::vector<float> labels;                         ///< B, in {0, 1}

  [[nodiscard]] std::size_t batch_size() const noexcept { return labels.size(); }
};

/// Deterministic, thread-safe random-access batch provider.
class BatchSource {
 public:
  virtual ~BatchSource() = default;

  [[nodiscard]] virtual const DatasetSpec& spec() const noexcept = 0;

  /// Generates batch number `batch_index` with `batch_size` samples.
  /// Deterministic in (source, batch_index, batch_size); thread-safe.
  [[nodiscard]] virtual SampleBatch make_batch(std::size_t batch_size,
                                               std::uint64_t batch_index) const = 0;

  /// Held-out evaluation batch stream (separate stream from training).
  [[nodiscard]] virtual SampleBatch make_eval_batch(
      std::size_t batch_size, std::uint64_t batch_index) const = 0;
};

}  // namespace dlcomp
