#include "data/shard_reader.hpp"

#include <algorithm>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <utility>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "obs/log.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

#if defined(__unix__) || defined(__APPLE__)
#define DLCOMP_HAS_MMAP 1
#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>
#endif

namespace dlcomp {

namespace {

constexpr std::uint64_t kEpochShuffleTag = 0xE70C5;
/// Epoch orders cached per reader; batches touch at most two epochs, and
/// concurrent rank threads share the same few epochs.
constexpr std::size_t kEpochCacheSize = 4;

/// Reads `count` bytes from the head of `path` (the header scan).
std::vector<std::byte> read_file_head(const std::string& path,
                                      std::size_t count) {
  std::ifstream is(path, std::ios::binary);
  if (!is.good()) throw Error("cannot open shard: " + path);
  std::vector<std::byte> data(count);
  is.read(reinterpret_cast<char*>(data.data()),
          static_cast<std::streamsize>(count));
  data.resize(static_cast<std::size_t>(is.gcount()));
  return data;
}

/// Copies `run` consecutive samples starting at `local` of `view` into
/// `out` rows [row, row+run), folding categorical ids into the tables'
/// index spaces. The shared inner loop of both the random-access reader
/// and the sequential stream.
void copy_shard_rows(const ShardView& view, std::size_t local,
                     std::size_t run, std::size_t row, SampleBatch& out,
                     std::span<const std::uint32_t> cardinality) {
  std::memcpy(out.labels.data() + row, view.labels.data() + local,
              run * sizeof(float));
  const std::size_t num_dense = view.header.num_dense;
  std::memcpy(out.dense.data() + row * num_dense,
              view.dense.data() + local * num_dense,
              run * num_dense * sizeof(float));
  const std::size_t n = view.header.sample_count;
  for (std::size_t t = 0; t < cardinality.size(); ++t) {
    const std::uint32_t* src = view.categorical.data() + t * n + local;
    std::uint32_t* dst = out.indices[t].data() + row;
    const std::uint32_t card = cardinality[t];
    for (std::size_t k = 0; k < run; ++k) dst[k] = src[k] % card;
  }
}

/// Shapes `out` for (batch_size x spec), reusing capacity, and returns
/// the number of buffers whose capacity had to grow.
std::uint64_t shape_batch(SampleBatch& out, std::size_t batch_size,
                          const DatasetSpec& spec) {
  std::uint64_t grew = 0;
  const std::size_t tables = spec.num_tables();

  if (out.labels.capacity() < batch_size) ++grew;
  out.labels.resize(batch_size);
  // Matrix::resize zero-fills; skip it when the shape already matches --
  // the copy loop overwrites every element, and the memset would roughly
  // double the dense-write cost of the steady-state path.
  if (out.dense.rows() != batch_size || out.dense.cols() != spec.num_dense) {
    if (out.dense.capacity() < batch_size * spec.num_dense) ++grew;
    out.dense.resize(batch_size, spec.num_dense);
  }
  if (out.indices.capacity() < tables) ++grew;
  out.indices.resize(tables);
  for (auto& column : out.indices) {
    if (column.capacity() < batch_size) ++grew;
    column.resize(batch_size);
  }
  return grew;
}

}  // namespace

// ---------------------------------------------------------------- loading

/// A decoded shard pinned in memory: either an mmap'ed file or a heap
/// buffer, plus CRC-verified views into it.
struct ShardedDatasetReader::LoadedShard {
  std::vector<std::byte> buffer;       ///< kBuffered storage
  const std::byte* map_base = nullptr; ///< kMmap storage
  std::size_t map_bytes = 0;
  ShardView view;

  LoadedShard() = default;
  LoadedShard(const LoadedShard&) = delete;
  LoadedShard& operator=(const LoadedShard&) = delete;
  ~LoadedShard() {
#if defined(DLCOMP_HAS_MMAP)
    if (map_base != nullptr) {
      ::munmap(const_cast<std::byte*>(map_base), map_bytes);
    }
#endif
  }
};

struct ShardedDatasetReader::Slot {
  std::mutex mutex;
  std::atomic<const LoadedShard*> loaded{nullptr};
  std::unique_ptr<LoadedShard> storage;
};

ShardedDatasetReader::ShardedDatasetReader(DatasetSpec spec,
                                           const std::string& directory,
                                           ShardReaderConfig config)
    : spec_(std::move(spec)), config_(config) {
  namespace fs = std::filesystem;
  if (!fs::is_directory(directory)) {
    throw Error("shard directory does not exist: " + directory);
  }
  std::vector<std::string> paths;
  for (const auto& entry : fs::directory_iterator(directory)) {
    if (entry.is_regular_file() && entry.path().extension() == ".dlshard") {
      paths.push_back(entry.path().string());
    }
  }
  std::sort(paths.begin(), paths.end());
  if (paths.empty()) {
    throw Error("no .dlshard files in: " + directory);
  }

  cardinality_.reserve(spec_.num_tables());
  for (const auto& table : spec_.tables) {
    DLCOMP_CHECK_MSG(table.cardinality > 0, "table cardinality must be > 0");
    cardinality_.push_back(static_cast<std::uint32_t>(
        std::min<std::size_t>(table.cardinality, UINT32_MAX)));
  }

  // Header scan: shape validation + the file-order prefix sums.
  for (const auto& path : paths) {
    const auto head = read_file_head(path, 24);
    ByteReader reader(head);
    const ShardHeader header = parse_shard_header(reader);
    if (header.num_dense != spec_.num_dense ||
        header.num_cat != spec_.num_tables()) {
      throw FormatError(
          path + ": shard shape (" + std::to_string(header.num_dense) + " dense, " +
          std::to_string(header.num_cat) + " tables) does not match spec (" +
          std::to_string(spec_.num_dense) + ", " +
          std::to_string(spec_.num_tables()) + ")");
    }
    if (header.sample_count == 0) {
      ++empty_shards_;
      continue;
    }
    ShardInfo info;
    info.path = path;
    info.samples = header.sample_count;
    info.file_bytes = std::filesystem::file_size(path);
    info.first_sample = 0;  // patched below once all shards are known
    shards_.push_back(std::move(info));
  }
  if (shards_.empty()) {
    throw Error("all shards in " + directory + " are empty");
  }
  for (std::size_t s = 1; s < shards_.size(); ++s) {
    shards_[s].first_sample =
        shards_[s - 1].first_sample + shards_[s - 1].samples;
  }

  slots_ = std::vector<Slot>(shards_.size());

  // Eval holdout: the file-order tail of shards, so held-out metrics
  // (auto-tuner, trainer eval) never see training samples. Impossible
  // with a single shard -- then eval falls back to the training set.
  std::size_t eval_shards = 0;
  if (config_.eval_holdout_fraction > 0.0 && shards_.size() > 1) {
    eval_shards = std::max<std::size_t>(
        1, static_cast<std::size_t>(static_cast<double>(shards_.size()) *
                                    config_.eval_holdout_fraction));
    eval_shards = std::min(eval_shards, shards_.size() - 1);
  }
  const std::size_t train_shards = shards_.size() - eval_shards;

  const auto make_order = [&](std::size_t first, std::size_t count) {
    auto order = std::make_shared<EpochOrder>();
    order->shard_order.resize(count);
    order->prefix.resize(count + 1, 0);
    for (std::size_t s = 0; s < count; ++s) {
      order->shard_order[s] = static_cast<std::uint32_t>(first + s);
      order->prefix[s + 1] = order->prefix[s] + shards_[first + s].samples;
    }
    return order;
  };
  file_order_ = make_order(0, train_shards);
  train_samples_ = file_order_->prefix.back();
  eval_order_ = eval_shards > 0 ? make_order(train_shards, eval_shards)
                                : file_order_;
}

ShardedDatasetReader::~ShardedDatasetReader() = default;

const ShardedDatasetReader::LoadedShard& ShardedDatasetReader::shard(
    std::size_t index) const {
  Slot& slot = slots_[index];
  const LoadedShard* loaded = slot.loaded.load(std::memory_order_acquire);
  if (loaded != nullptr) return *loaded;

  const std::lock_guard<std::mutex> lock(slot.mutex);
  loaded = slot.loaded.load(std::memory_order_relaxed);
  if (loaded != nullptr) return *loaded;

  auto shard = std::make_unique<LoadedShard>();
  const ShardInfo& info = shards_[index];
  std::span<const std::byte> bytes;
#if defined(DLCOMP_HAS_MMAP)
  if (config_.mode == ShardIoMode::kMmap) {
    const int fd = ::open(info.path.c_str(), O_RDONLY);
    if (fd < 0) throw Error("cannot open shard: " + info.path);
    struct stat st{};
    if (::fstat(fd, &st) != 0 || st.st_size <= 0) {
      ::close(fd);
      throw Error("cannot stat shard: " + info.path);
    }
    void* base = ::mmap(nullptr, static_cast<std::size_t>(st.st_size),
                        PROT_READ, MAP_PRIVATE, fd, 0);
    ::close(fd);
    if (base == MAP_FAILED) throw Error("mmap failed: " + info.path);
    shard->map_base = static_cast<const std::byte*>(base);
    shard->map_bytes = static_cast<std::size_t>(st.st_size);
    bytes = {shard->map_base, shard->map_bytes};
  }
#endif
  if (bytes.empty()) {  // kBuffered, or no mmap on this platform
    shard->buffer = read_file_head(info.path, info.file_bytes);
    bytes = shard->buffer;
  }
  shard->view = decode_shard(bytes, config_.verify_crc);
  if (config_.verify_crc) {
    static Counter& crc_verifies =
        MetricsRegistry::global().counter("data/shard_crc_verifies");
    crc_verifies.add();
  }
  if (shard->view.header.sample_count != info.samples) {
    throw FormatError(info.path + ": sample count changed since open");
  }

  slot.storage = std::move(shard);
  slot.loaded.store(slot.storage.get(), std::memory_order_release);
  return *slot.storage;
}

// ------------------------------------------------------------- epoch order

std::shared_ptr<const ShardedDatasetReader::EpochOrder>
ShardedDatasetReader::epoch_order(std::uint64_t epoch) const {
  if (!config_.shuffle_shards) return file_order_;

  const std::lock_guard<std::mutex> lock(epoch_mutex_);
  for (const auto& [cached_epoch, order] : epoch_cache_) {
    if (cached_epoch == epoch) return order;
  }
  auto order = std::make_shared<EpochOrder>(*file_order_);
  Rng rng = Rng(config_.shuffle_seed).fork({kEpochShuffleTag, epoch});
  rng.shuffle(std::span<std::uint32_t>(order->shard_order));
  for (std::size_t s = 0; s < order->shard_order.size(); ++s) {
    order->prefix[s + 1] =
        order->prefix[s] + shards_[order->shard_order[s]].samples;
  }
  if (epoch_cache_.size() >= kEpochCacheSize) {
    epoch_cache_.erase(epoch_cache_.begin());
  }
  epoch_cache_.emplace_back(epoch, order);
  return order;
}

// ------------------------------------------------------------ batch filling

void ShardedDatasetReader::fill_impl(std::size_t batch_size,
                                     std::uint64_t batch_index,
                                     SampleBatch& out, bool training) const {
  DLCOMP_CHECK(batch_size > 0);
  const std::uint64_t grew = shape_batch(out, batch_size, spec_);
  if (grew > 0) grow_events_.fetch_add(grew, std::memory_order_relaxed);

  const std::shared_ptr<const EpochOrder>& base =
      training ? file_order_ : eval_order_;
  const std::uint64_t total = base->prefix.back();
  std::shared_ptr<const EpochOrder> order;
  std::uint64_t order_epoch = 0;
  std::uint64_t global = batch_index * batch_size;
  std::size_t row = 0;
  while (row < batch_size) {
    const std::uint64_t epoch = global / total;
    const std::uint64_t offset = global % total;
    if (order == nullptr || epoch != order_epoch) {
      order = (training && config_.shuffle_shards) ? epoch_order(epoch) : base;
      order_epoch = epoch;
    }
    // Largest p with prefix[p] <= offset.
    const auto it = std::upper_bound(order->prefix.begin(),
                                     order->prefix.end(), offset);
    const auto pos = static_cast<std::size_t>(it - order->prefix.begin()) - 1;
    const std::uint32_t shard_id = order->shard_order[pos];
    const std::size_t local = static_cast<std::size_t>(offset - order->prefix[pos]);
    const LoadedShard& loaded = shard(shard_id);

    const std::size_t run = std::min(batch_size - row,
                                     static_cast<std::size_t>(
                                         loaded.view.sample_count() - local));
    copy_shard_rows(loaded.view, local, run, row, out, cardinality_);
    row += run;
    global += run;
  }
}

void ShardedDatasetReader::fill_batch(std::size_t batch_size,
                                      std::uint64_t batch_index,
                                      SampleBatch& out) const {
  fill_impl(batch_size, batch_index, out, /*training=*/true);
}

void ShardedDatasetReader::fill_eval_batch(std::size_t batch_size,
                                           std::uint64_t batch_index,
                                           SampleBatch& out) const {
  fill_impl(batch_size, batch_index, out, /*training=*/false);
}

SampleBatch ShardedDatasetReader::make_batch(std::size_t batch_size,
                                             std::uint64_t batch_index) const {
  SampleBatch batch;
  fill_impl(batch_size, batch_index, batch, /*training=*/true);
  return batch;
}

SampleBatch ShardedDatasetReader::make_eval_batch(
    std::size_t batch_size, std::uint64_t batch_index) const {
  SampleBatch batch;
  fill_impl(batch_size, batch_index, batch, /*training=*/false);
  return batch;
}

// ---------------------------------------------------------------- streaming

ShardBatchStream::ShardBatchStream(const ShardedDatasetReader& reader,
                                   std::size_t batch_size, Options options)
    : reader_(reader), batch_size_(batch_size), options_(options),
      cardinality_(reader.cardinalities()) {
  DLCOMP_CHECK(batch_size_ > 0);

  epoch_ = options_.start_epoch;
  request_epoch_ = options_.start_epoch;
  request_order_ = options_.shuffle ? reader_.epoch_order(request_epoch_)
                                    : reader_.file_order();

  // Load the first shard synchronously into the front buffer and put the
  // second one's request on the books *before* starting the worker: if
  // anything here throws, no joinable thread exists yet, and the worker
  // picks the pending request up at its first wait.
  load_into(generate_next_shard_id(), front_bytes_);
  front_view_ = decode_shard(front_bytes_);
  front_local_ = 0;
  request_load(generate_next_shard_id());

  if (options_.prefetch) {
    worker_ = std::thread([this] { worker_loop(); });
  }
}

ShardBatchStream::~ShardBatchStream() {
  if (worker_.joinable()) {
    {
      const std::lock_guard<std::mutex> lock(mutex_);
      stopping_ = true;
    }
    cv_.notify_all();
    worker_.join();
  }
}

std::uint32_t ShardBatchStream::generate_next_shard_id() {
  if (request_pos_ == request_order_->shard_order.size()) {
    ++request_epoch_;
    request_pos_ = 0;
    if (options_.shuffle) request_order_ = reader_.epoch_order(request_epoch_);
  }
  return request_order_->shard_order[request_pos_++];
}

void ShardBatchStream::load_into(std::uint32_t shard_id,
                                 std::vector<std::byte>& buffer) {
  const ShardInfo& info = reader_.shards()[shard_id];
  std::ifstream is(info.path, std::ios::binary);
  if (!is.good()) throw Error("cannot open shard: " + info.path);
  const auto size = static_cast<std::size_t>(info.file_bytes);
  if (buffer.capacity() < size) {
    grow_events_.fetch_add(1, std::memory_order_relaxed);
  }
  buffer.resize(size);
  is.read(reinterpret_cast<char*>(buffer.data()),
          static_cast<std::streamsize>(size));
  if (static_cast<std::size_t>(is.gcount()) != size) {
    throw Error("short read: " + info.path);
  }
}

void ShardBatchStream::request_load(std::uint32_t shard_id) {
  inflight_shard_ = shard_id;
  if (!options_.prefetch) {
    requested_shard_ = shard_id;
    return;
  }
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    requested_shard_ = shard_id;
    request_pending_ = true;
  }
  cv_.notify_all();
}

void ShardBatchStream::worker_loop() {
  for (;;) {
    std::uint32_t shard_id = 0;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      cv_.wait(lock, [this] { return request_pending_ || stopping_; });
      if (stopping_) return;
      shard_id = requested_shard_;
      request_pending_ = false;
    }
    // IO outside the lock; the consumer does not touch back_bytes_ until
    // back_ready_ goes up (mutex-ordered), so this is race-free.
    std::string error;
    try {
      load_into(shard_id, back_bytes_);
    } catch (const std::exception& e) {
      error = e.what();
    }
    {
      const std::lock_guard<std::mutex> lock(mutex_);
      load_error_ = error;
      back_ready_ = true;
    }
    cv_.notify_all();
  }
}

void ShardBatchStream::wait_and_swap() {
  if (!options_.prefetch) {
    load_into(requested_shard_, back_bytes_);
    std::swap(front_bytes_, back_bytes_);
    return;
  }
  std::unique_lock<std::mutex> lock(mutex_);
  if (!back_ready_) {
    // The consumer got here before the prefetch worker finished: the
    // pipeline failed to hide the shard IO and the trainer stalls.
    static Counter& stalls =
        MetricsRegistry::global().counter("data/prefetch_stalls");
    stalls.add();
    DLCOMP_TRACE_SPAN("data/prefetch_stall");
    cv_.wait(lock, [this] { return back_ready_; });
  }
  back_ready_ = false;
  if (!load_error_.empty()) {
    const std::string error = load_error_;
    load_error_.clear();
    lock.unlock();
    // Keep the pipeline primed: re-request the failed shard so a caller
    // that catches and retries next() waits on a fresh attempt instead
    // of deadlocking on a consumed back_ready_.
    request_load(inflight_shard_);
    DLCOMP_LOG_ERROR("data", "shard prefetch failed, re-requested",
                     {"error", error});
    throw Error("shard prefetch failed: " + error);
  }
  std::swap(front_bytes_, back_bytes_);
}

void ShardBatchStream::next(SampleBatch& out) {
  const std::uint64_t grew = shape_batch(out, batch_size_, reader_.spec());
  if (grew > 0) grow_events_.fetch_add(grew, std::memory_order_relaxed);

  std::size_t row = 0;
  while (row < batch_size_) {
    if (front_local_ == front_view_.sample_count()) {
      wait_and_swap();
      try {
        // First touch of freshly read bytes: always verify CRCs.
        front_view_ = decode_shard(front_bytes_);
        static Counter& crc_verifies =
            MetricsRegistry::global().counter("data/shard_crc_verifies");
        crc_verifies.add();
      } catch (...) {
        // Same retry contract as a failed load: re-request the shard so
        // a caught-and-retried next() waits on a fresh attempt instead
        // of deadlocking on the consumed back buffer.
        request_load(inflight_shard_);
        throw;
      }
      front_local_ = 0;
      request_load(generate_next_shard_id());
    }
    const std::size_t run = std::min(batch_size_ - row,
                                     front_view_.sample_count() - front_local_);
    copy_shard_rows(front_view_, front_local_, run, row, out, cardinality_);
    front_local_ += run;
    row += run;
  }
  // Counted only on success: if a shard load throws above, the staged
  // batch is discarded (see the header contract) and the counters keep
  // reflecting delivered samples only.
  samples_delivered_ += batch_size_;
  epoch_ = options_.start_epoch +
           samples_delivered_ / reader_.num_samples();
}

}  // namespace dlcomp
