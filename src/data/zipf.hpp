#pragma once

/// \file zipf.hpp
/// Zipf-distributed index sampling: the synthetic stand-in for the
/// "unbalanced queries" phenomenon the paper's vector-LZ encoder exploits
/// (hot embedding rows recur within a batch). Exponent 0 degenerates to
/// uniform sampling.

#include <cstdint>
#include <vector>

#include "common/rng.hpp"

namespace dlcomp {

/// Samples ranks in [0, n) with P(rank k) proportional to 1/(k+1)^s, then
/// maps ranks through a fixed permutation so popularity is not correlated
/// with index order (as in real hash-bucketed categorical features).
class ZipfSampler {
 public:
  /// `permute_seed` fixes the rank->index mapping; the same seed always
  /// yields the same popularity assignment.
  ZipfSampler(std::size_t n, double exponent, std::uint64_t permute_seed);

  [[nodiscard]] std::size_t size() const noexcept { return cdf_.size(); }
  [[nodiscard]] double exponent() const noexcept { return exponent_; }

  /// Draws one index using the caller's generator.
  [[nodiscard]] std::uint32_t sample(Rng& rng) const;

  /// Probability mass of the most popular item (diagnostic).
  [[nodiscard]] double top_probability() const noexcept;

 private:
  double exponent_;
  std::vector<double> cdf_;            // cumulative over ranks
  std::vector<std::uint32_t> permute_;  // rank -> index
};

}  // namespace dlcomp
