#pragma once

/// \file dataset_spec.hpp
/// Shapes of the synthetic Criteo-like workloads. Both real datasets have
/// 13 continuous and 26 categorical features; the per-table cardinalities
/// below follow the published datasets (capped for memory, as DLRM's own
/// max-ind-range flag does), and each table carries a query-skew exponent
/// and an embedding value distribution so the generator reproduces the
/// data characteristics the paper's compressor exploits:
///   - high query skew  -> repeated vectors in a batch (homogenization,
///     vector-LZ matches; paper Sec. III-B (2)),
///   - Gaussian vs uniform value spread -> entropy differences that favor
///     the Huffman side (paper Sec. III-B (3), Fig. 13).

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace dlcomp {

/// Embedding value distribution of a table.
enum class ValueDist : std::uint8_t { kGaussian, kUniform };

struct TableSpec {
  std::size_t cardinality = 0;   ///< number of embedding rows
  double zipf_exponent = 0.0;    ///< query skew; 0 = uniform queries
  ValueDist value_dist = ValueDist::kGaussian;
  float value_scale = 0.1f;      ///< stddev (Gaussian) or half-range (uniform)

  /// Cluster structure of the embedding values. Trained tables contain
  /// groups of semantically near-duplicate rows; quantization collapses
  /// such groups into identical vectors -- the paper's Vector
  /// Homogenization. 0 disables clustering (fully i.i.d. rows, no
  /// collapse possible, Homo Index ~ 0).
  std::size_t value_clusters = 0;
  /// Jitter stddev of a row around its cluster centroid; far below the
  /// quantization bin so cluster members collapse under sampling bounds.
  float cluster_jitter = 3e-4f;
};

struct DatasetSpec {
  std::string name;
  std::size_t num_dense = 13;
  std::size_t embedding_dim = 32;
  std::size_t default_batch = 128;
  std::vector<TableSpec> tables;

  [[nodiscard]] std::size_t num_tables() const noexcept { return tables.size(); }

  /// Total embedding parameter count across tables.
  [[nodiscard]] std::size_t total_rows() const noexcept;

  /// Criteo-Kaggle-shaped workload: 26 tables, dim 32, batch 128
  /// (the paper's Kaggle settings). `cardinality_cap` bounds table rows
  /// (the three >1M tables are capped, like DLRM's --max-ind-range).
  static DatasetSpec criteo_kaggle_like(std::size_t cardinality_cap = 100000);

  /// Criteo-Terabyte-shaped workload: 26 tables, dim 64, batch 2048.
  static DatasetSpec criteo_terabyte_like(std::size_t cardinality_cap = 100000);

  /// Down-scaled variant for fast training experiments: same table count
  /// and relative shapes, smaller dims/cardinalities. Used by the
  /// accuracy benches so they finish in seconds.
  static DatasetSpec small_training_proxy(std::size_t num_tables = 26,
                                          std::size_t embedding_dim = 16);
};

}  // namespace dlcomp
