#pragma once

/// \file criteo_tsv.hpp
/// Parser for the Criteo click-log TSV format (Kaggle display-advertising
/// and Terabyte datasets): one sample per line,
///
///   label \t I1..I13 \t C1..C26
///
/// where the 13 integer features and 26 hex-string categorical features
/// may be empty (missing). Parsing applies the standard DLRM
/// preprocessing inline:
///   - dense:  x -> log(1 + max(x, 0)), missing -> 0,
///   - categorical: the hashing trick. Tokens are hashed to a full 32-bit
///     id (FNV-1a); the *reader* folds ids into each table's index space
///     (`hash % cardinality`) so shard files stay valid for any
///     cardinality cap (see shard_reader.hpp).
/// Missing categorical tokens map to id 0, a reserved "null" id.

#include <cstddef>
#include <cstdint>
#include <span>
#include <string_view>

namespace dlcomp {

class CriteoTsvParser {
 public:
  /// Field counts; the real datasets are (13, 26) but the parser is
  /// shape-generic so tests and other logs can use smaller layouts.
  CriteoTsvParser(std::size_t num_dense = 13, std::size_t num_cat = 26)
      : num_dense_(num_dense), num_cat_(num_cat) {}

  [[nodiscard]] std::size_t num_dense() const noexcept { return num_dense_; }
  [[nodiscard]] std::size_t num_cat() const noexcept { return num_cat_; }

  /// Parses one line (no trailing newline; a trailing '\r' is tolerated)
  /// into the caller's storage. `dense` must have size num_dense(),
  /// `cats` size num_cat(). Returns false -- leaving outputs unspecified
  /// -- when the line is malformed: wrong field count, or a label/dense
  /// field that is neither empty nor an integer.
  bool parse_line(std::string_view line, float& label, std::span<float> dense,
                  std::span<std::uint32_t> cats) const noexcept;

  /// The hashing trick's full-width hash: FNV-1a over the token bytes.
  /// Empty tokens (missing values) map to the reserved id 0.
  [[nodiscard]] static std::uint32_t hash_token(std::string_view token) noexcept {
    if (token.empty()) return 0;
    std::uint32_t h = 0x811C9DC5u;
    for (const char c : token) {
      h ^= static_cast<std::uint8_t>(c);
      h *= 0x01000193u;
    }
    return h;
  }

  /// Standard DLRM dense transform: log(1 + max(x, 0)).
  [[nodiscard]] static float transform_dense(long long raw) noexcept;

 private:
  std::size_t num_dense_;
  std::size_t num_cat_;
};

}  // namespace dlcomp
