#include "data/shard_converter.hpp"

#include <atomic>
#include <condition_variable>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <mutex>
#include <utility>
#include <vector>

#include "common/error.hpp"
#include "obs/log.hpp"
#include "obs/metrics.hpp"
#include "common/timer.hpp"
#include "data/shard_format.hpp"

namespace dlcomp {

std::string shard_filename(std::size_t index) {
  char name[32];
  std::snprintf(name, sizeof(name), "shard_%06zu.dlshard", index);
  return name;
}

namespace {

/// Shared result accumulators; workers must not throw (ThreadPool
/// contract), so the first IO failure is captured and rethrown by the
/// driver after wait_idle().
struct ConvertSink {
  std::atomic<std::size_t> samples{0};
  std::atomic<std::size_t> malformed{0};
  std::atomic<std::size_t> shards{0};
  std::atomic<std::uint64_t> shard_bytes{0};
  std::mutex error_mutex;
  std::string first_error;

  void record_error(const std::string& message) {
    const std::lock_guard<std::mutex> lock(error_mutex);
    if (first_error.empty()) first_error = message;
  }
};

/// Parses one group of raw lines into a shard and writes it. Runs on the
/// pool; deterministic per (group content, group index).
void convert_group(const CriteoTsvParser& parser,
                   const std::filesystem::path& out_dir, std::size_t index,
                   const std::vector<std::string>& lines, ConvertSink& sink) {
  ShardContent content;
  content.num_dense = static_cast<std::uint16_t>(parser.num_dense());
  content.num_cat = static_cast<std::uint16_t>(parser.num_cat());
  content.labels.reserve(lines.size());
  content.dense.reserve(lines.size() * parser.num_dense());
  content.categorical.reserve(lines.size() * parser.num_cat());

  // Parse sample-major into a scratch row, then scatter the categorical
  // ids table-major once the group's sample count is known.
  std::vector<float> dense_row(parser.num_dense());
  std::vector<std::uint32_t> cat_row(parser.num_cat());
  std::vector<std::uint32_t> cats_sample_major;
  cats_sample_major.reserve(lines.size() * parser.num_cat());
  std::size_t malformed = 0;
  for (const std::string& line : lines) {
    float label = 0.0f;
    if (!parser.parse_line(line, label, dense_row, cat_row)) {
      ++malformed;
      continue;
    }
    content.labels.push_back(label);
    content.dense.insert(content.dense.end(), dense_row.begin(),
                         dense_row.end());
    cats_sample_major.insert(cats_sample_major.end(), cat_row.begin(),
                             cat_row.end());
  }
  sink.malformed.fetch_add(malformed, std::memory_order_relaxed);
  if (malformed > 0) {
    DLCOMP_LOG_WARN("data", "malformed input lines skipped",
                    {"count", malformed});
  }
  const std::size_t n = content.labels.size();
  if (n == 0) return;  // group was all malformed: no shard written

  content.categorical.resize(n * parser.num_cat());
  for (std::size_t s = 0; s < n; ++s) {
    for (std::size_t t = 0; t < parser.num_cat(); ++t) {
      content.categorical[t * n + s] = cats_sample_major[s * parser.num_cat() + t];
    }
  }

  std::vector<std::byte> bytes;
  encode_shard(content, bytes);

  const std::filesystem::path path = out_dir / shard_filename(index);
  std::ofstream os(path, std::ios::binary | std::ios::trunc);
  os.write(reinterpret_cast<const char*>(bytes.data()),
           static_cast<std::streamsize>(bytes.size()));
  os.close();  // flush before checking: write errors can surface here
  if (!os.good()) {
    sink.record_error("cannot write shard: " + path.string());
    return;
  }
  sink.samples.fetch_add(n, std::memory_order_relaxed);
  sink.shards.fetch_add(1, std::memory_order_relaxed);
  sink.shard_bytes.fetch_add(bytes.size(), std::memory_order_relaxed);
}

}  // namespace

ConvertReport convert_criteo_tsv(const ConvertOptions& options) {
  DLCOMP_CHECK(options.samples_per_shard > 0);
  std::ifstream is(options.input_tsv);
  if (!is.good()) throw Error("cannot open TSV input: " + options.input_tsv);
  std::filesystem::create_directories(options.output_dir);
  const std::filesystem::path out_dir(options.output_dir);

  const CriteoTsvParser parser(options.num_dense, options.num_cat);
  ConvertSink sink;
  WallTimer timer;

  // Backpressure: the reader outruns the parse/encode/write workers, so
  // without a bound the pool queue would accumulate line groups toward
  // the input file size (a Terabyte day file is ~45 GB). Cap in-flight
  // groups at a small multiple of the worker count.
  const std::size_t max_in_flight =
      options.pool != nullptr ? 2 * options.pool->thread_count() + 2 : 1;
  std::mutex flight_mutex;
  std::condition_variable flight_cv;
  std::size_t in_flight = 0;

  std::uint64_t input_bytes = 0;
  std::size_t lines_read = 0;
  std::size_t group_index = 0;
  std::vector<std::string> group;
  group.reserve(options.samples_per_shard);

  const auto dispatch = [&](std::vector<std::string>&& lines) {
    const std::size_t index = group_index++;
    if (options.pool != nullptr) {
      {
        std::unique_lock<std::mutex> lock(flight_mutex);
        flight_cv.wait(lock, [&] { return in_flight < max_in_flight; });
        ++in_flight;
      }
      options.pool->submit([&parser, &out_dir, index,
                            lines = std::move(lines), &sink, &flight_mutex,
                            &flight_cv, &in_flight] {
        convert_group(parser, out_dir, index, lines, sink);
        {
          const std::lock_guard<std::mutex> lock(flight_mutex);
          --in_flight;
        }
        flight_cv.notify_one();
      });
    } else {
      convert_group(parser, out_dir, index, lines, sink);
    }
  };

  std::string line;
  while (std::getline(is, line)) {
    input_bytes += line.size() + 1;
    group.push_back(std::move(line));
    ++lines_read;
    if (group.size() == options.samples_per_shard) {
      dispatch(std::move(group));
      group.clear();
      group.reserve(options.samples_per_shard);
    }
    if (options.max_samples > 0 && lines_read >= options.max_samples) break;
  }
  if (!group.empty()) dispatch(std::move(group));
  if (options.pool != nullptr) options.pool->wait_idle();

  if (!sink.first_error.empty()) throw Error(sink.first_error);

  ConvertReport report;
  report.samples = sink.samples.load();
  report.malformed_lines = sink.malformed.load();
  MetricsRegistry::global()
      .counter("data/malformed_lines_skipped")
      .add(report.malformed_lines);
  report.shards = sink.shards.load();
  report.input_bytes = input_bytes;
  report.shard_bytes = sink.shard_bytes.load();
  report.seconds = timer.seconds();
  return report;
}

}  // namespace dlcomp
