#include "data/synthetic.hpp"

#include <cmath>

#include "common/error.hpp"

namespace dlcomp {

namespace {

constexpr std::uint64_t kDenseTag = 0x11;
constexpr std::uint64_t kIndexTag = 0x22;
constexpr std::uint64_t kLabelTag = 0x33;
constexpr std::uint64_t kTeacherTag = 0x44;
constexpr std::uint64_t kTrainStream = 0x1000;
constexpr std::uint64_t kEvalStream = 0x2000;

}  // namespace

SyntheticClickDataset::SyntheticClickDataset(DatasetSpec spec,
                                             std::uint64_t seed)
    : spec_(std::move(spec)), seed_(seed), base_rng_(seed) {
  DLCOMP_CHECK(!spec_.tables.empty());
  samplers_.reserve(spec_.tables.size());
  for (std::size_t t = 0; t < spec_.tables.size(); ++t) {
    const auto& table = spec_.tables[t];
    samplers_.emplace_back(table.cardinality, table.zipf_exponent,
                           base_rng_.fork({0x51, t}).next_u64());
  }
  Rng dense_rng = base_rng_.fork({kTeacherTag, 0xDE});
  dense_teacher_.resize(spec_.num_dense);
  for (auto& w : dense_teacher_) {
    w = static_cast<float>(dense_rng.normal(0.0, 0.5));
  }
}

float SyntheticClickDataset::teacher_weight(std::size_t table,
                                            std::uint32_t row) const {
  Rng rng = base_rng_.fork({kTeacherTag, table, row});
  return static_cast<float>(rng.normal(0.0, 0.6));
}

SampleBatch SyntheticClickDataset::make_batch(std::size_t batch_size,
                                              std::uint64_t batch_index) const {
  return generate(batch_size, base_rng_.fork({kTrainStream, batch_index}));
}

SampleBatch SyntheticClickDataset::make_eval_batch(
    std::size_t batch_size, std::uint64_t batch_index) const {
  return generate(batch_size, base_rng_.fork({kEvalStream, batch_index}));
}

SampleBatch SyntheticClickDataset::generate(std::size_t batch_size,
                                            Rng rng) const {
  DLCOMP_CHECK(batch_size > 0);
  SampleBatch batch;
  batch.dense.resize(batch_size, spec_.num_dense);
  batch.indices.assign(spec_.tables.size(), {});
  batch.labels.resize(batch_size);

  Rng dense_rng = rng.fork({kDenseTag});
  Rng index_rng = rng.fork({kIndexTag});
  Rng label_rng = rng.fork({kLabelTag});

  // Dense features: log-normal-ish positives, like Criteo's count fields
  // after the standard log(1+x) transform.
  for (std::size_t b = 0; b < batch_size; ++b) {
    for (std::size_t f = 0; f < spec_.num_dense; ++f) {
      batch.dense(b, f) = static_cast<float>(
          std::log1p(std::abs(dense_rng.normal(0.0, 1.0))));
    }
  }

  for (std::size_t t = 0; t < spec_.tables.size(); ++t) {
    auto& column = batch.indices[t];
    column.resize(batch_size);
    for (std::size_t b = 0; b < batch_size; ++b) {
      column[b] = samplers_[t].sample(index_rng);
    }
  }

  // Teacher model: logistic regression over dense features plus one
  // latent weight per looked-up row. Noise keeps Bayes accuracy < 1.
  for (std::size_t b = 0; b < batch_size; ++b) {
    double logit = -0.3;  // mild negative bias: clicks are the rare class
    for (std::size_t f = 0; f < spec_.num_dense; ++f) {
      logit += dense_teacher_[f] * batch.dense(b, f);
    }
    double sparse_term = 0.0;
    for (std::size_t t = 0; t < spec_.tables.size(); ++t) {
      sparse_term += teacher_weight(t, batch.indices[t][b]);
    }
    logit += sparse_term / std::sqrt(static_cast<double>(spec_.tables.size()));
    logit += label_rng.normal(0.0, 0.35);
    const double p = 1.0 / (1.0 + std::exp(-logit));
    batch.labels[b] = label_rng.bernoulli(p) ? 1.0f : 0.0f;
  }
  return batch;
}

}  // namespace dlcomp
