#pragma once

/// \file shard_converter.hpp
/// Criteo TSV -> `.dlshard` conversion. The driver reads the log
/// sequentially, groups lines into shard-sized batches, and converts the
/// groups in parallel on the ThreadPool (parse + transform + encode +
/// write per shard is embarrassingly parallel once the lines are
/// grouped). Output is deterministic in the input bytes and
/// samples_per_shard, independent of thread count: shard k always holds
/// the k-th group of well-formed lines, in input order.

#include <cstddef>
#include <cstdint>
#include <string>

#include "data/criteo_tsv.hpp"
#include "parallel/thread_pool.hpp"

namespace dlcomp {

struct ConvertOptions {
  std::string input_tsv;    ///< path of the raw click log
  std::string output_dir;   ///< created on demand; shards land here
  std::size_t num_dense = 13;
  std::size_t num_cat = 26;
  std::size_t samples_per_shard = 65536;
  std::size_t max_samples = 0;  ///< stop after this many lines; 0 = all
  ThreadPool* pool = nullptr;   ///< null converts serially
};

struct ConvertReport {
  std::size_t samples = 0;          ///< well-formed lines converted
  std::size_t malformed_lines = 0;  ///< skipped (wrong shape / bad fields)
  std::size_t shards = 0;
  std::uint64_t input_bytes = 0;
  std::uint64_t shard_bytes = 0;
  double seconds = 0.0;

  [[nodiscard]] double convert_mb_per_s() const noexcept {
    return seconds > 0.0
               ? static_cast<double>(input_bytes) / seconds / 1e6
               : 0.0;
  }
};

/// Runs the conversion; throws Error when the input cannot be read or a
/// shard cannot be written. Shards are named `shard_NNNNNN.dlshard`
/// (zero-padded, so lexical order is input order).
ConvertReport convert_criteo_tsv(const ConvertOptions& options);

/// Formats the canonical shard filename for index `i`.
std::string shard_filename(std::size_t index);

}  // namespace dlcomp
