#pragma once

/// \file shard_format.hpp
/// The `.dlshard` dataset shard: a versioned, CRC-checked binary
/// container for preprocessed click-log samples, built on the same
/// byte_io/crc32 primitives as the `.dlck` checkpoint container. Layout
/// (little endian):
///
///   file header (24 bytes):
///     u32 magic 'DLSH' | u8 flags (version in the low nibble) |
///     u8 reserved | u16 num_dense | u16 num_cat | u16 reserved |
///     u32 sample_count | u32 section_count | u32 reserved
///   then `section_count` sections back-to-back, each with a 16-byte
///   header:
///     u8 type | u8 pad[3] | u32 crc32(payload) | u64 payload_bytes |
///     payload
///
///   section payloads (N = sample_count):
///     labels: N f32 in {0, 1}
///     dense:  N * num_dense f32, sample-major (one batch slice is one
///             contiguous block)
///     cats:   num_cat * N u32 full-width hashed ids, *table-major* (one
///             table's batch slice is one contiguous block; the reader
///             folds ids into the table's index space)
///
/// Every offset in the file is 4-byte aligned (header 24, section header
/// 16, payloads multiples of 4), so a mapped shard can be viewed as
/// float/u32 spans without copying. `decode_shard` CRC-checks every
/// payload before returning views; a mismatch throws FormatError, exactly
/// like the checkpoint reader.
///
/// See DESIGN.md "Dataset shards" for the rationale.

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "common/byte_io.hpp"

namespace dlcomp {

inline constexpr std::uint32_t kShardMagic = 0x48534C44u;  // "DLSH"
inline constexpr std::uint8_t kShardVersion = 1;

/// Section types inside a shard.
enum class ShardSection : std::uint8_t {
  kLabels = 1,
  kDense = 2,
  kCategorical = 3,
};

struct ShardHeader {
  std::uint16_t num_dense = 0;
  std::uint16_t num_cat = 0;
  std::uint32_t sample_count = 0;
  std::uint32_t section_count = 0;
};

/// In-memory shard contents, the unit the converter builds and encodes.
struct ShardContent {
  std::uint16_t num_dense = 0;
  std::uint16_t num_cat = 0;
  std::vector<float> labels;                ///< N
  std::vector<float> dense;                 ///< N * num_dense, sample-major
  std::vector<std::uint32_t> categorical;   ///< num_cat * N, table-major

  [[nodiscard]] std::size_t sample_count() const noexcept {
    return labels.size();
  }
};

/// Zero-copy view of a decoded shard; spans point into the caller's
/// buffer (heap or mmap), which must outlive the view.
struct ShardView {
  ShardHeader header;
  std::span<const float> labels;
  std::span<const float> dense;
  std::span<const std::uint32_t> categorical;

  [[nodiscard]] std::size_t sample_count() const noexcept {
    return header.sample_count;
  }
  /// One table's ids for samples [first, first+count).
  [[nodiscard]] std::span<const std::uint32_t> table_ids(
      std::size_t table, std::size_t first, std::size_t count) const noexcept {
    return categorical.subspan(table * header.sample_count + first, count);
  }
  /// The dense block for samples [first, first+count), sample-major.
  [[nodiscard]] std::span<const float> dense_rows(
      std::size_t first, std::size_t count) const noexcept {
    return dense.subspan(first * header.num_dense, count * header.num_dense);
  }
};

/// Serializes `content` as a complete `.dlshard` byte image, appended to
/// `out`. The converter calls this once per shard; tests use it to craft
/// corrupt shards.
void encode_shard(const ShardContent& content, std::vector<std::byte>& out);

/// Parses and validates a complete shard image: magic, version, section
/// inventory, per-section CRC (skipped when verify_crc is false, for
/// re-reads of already-verified mapped shards). Throws FormatError on any
/// malformation. Returned spans view into `data`.
ShardView decode_shard(std::span<const std::byte> data, bool verify_crc = true);

/// Parses only the fixed file header (magic + version checked). Used by
/// the reader's cheap open-time scan.
ShardHeader parse_shard_header(ByteReader& reader);

}  // namespace dlcomp
