#pragma once

/// \file shard_reader.hpp
/// Reading `.dlshard` datasets back into training batches.
///
/// `ShardedDatasetReader` opens a directory of shards, scans the headers
/// (cheap: 24 bytes each), and serves deterministic random-access batches
/// as a `BatchSource` -- so the hybrid-parallel trainer, the offline
/// analyzer and the serving stack all accept real data behind the same
/// interface as the synthetic generator. Shard payloads load lazily, via
/// mmap (default: the OS pages data in and shares it across rank
/// threads) or a buffered whole-file read; each shard's CRCs are
/// verified once, on first touch.
///
/// Ordering: the *training* stream shuffles at shard granularity -- epoch
/// e visits shards in a permutation seeded by (shuffle_seed, e), the
/// standard trade-off that preserves sequential IO while decorrelating
/// epochs. The *eval* stream reads a held-out tail of shards in file
/// order (ShardReaderConfig::eval_holdout_fraction), so held-out
/// metrics never see training samples. Batches address
/// samples by a global ordinal (batch_index * batch_size + j), so batch i
/// is identical across runs, ranks and call orders.
///
/// Index mapping: shards store full-width 32-bit hashed categorical ids;
/// the reader folds them into each table's index space with the hashing
/// trick (`id % cardinality` from the DatasetSpec), so one converted
/// dataset serves any cardinality cap.
///
/// `ShardBatchStream` is the sequential high-throughput path: it streams
/// shards through two reused buffers with async prefetch (the next shard
/// loads on a background thread while the current one is consumed), and
/// its steady state is zero-allocation -- `grow_events()` counts reused
/// buffer growth, and stays flat after warm-up (tested).

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <thread>
#include <vector>

#include "data/batch_source.hpp"
#include "data/shard_format.hpp"

namespace dlcomp {

/// How shard payloads are brought into memory.
enum class ShardIoMode : std::uint8_t {
  kMmap,      ///< map the file; the OS pages it in on demand
  kBuffered,  ///< read the whole file into a heap buffer
};

struct ShardReaderConfig {
  ShardIoMode mode = ShardIoMode::kMmap;
  /// Shuffle shard order per epoch for the training stream (eval always
  /// reads in file order).
  bool shuffle_shards = true;
  std::uint64_t shuffle_seed = 0x5EED;
  /// Verify section CRCs when a shard is first loaded.
  bool verify_crc = true;
  /// Fraction of shards (file-order tail, at least one) held out as the
  /// evaluation set, so `make_eval_batch` really is held-out data --
  /// the auto-tuner and the trainer's eval metrics depend on that. 0
  /// disables the split (eval reads the training set in file order; the
  /// single-shard fallback does the same, with no way to hold data out).
  double eval_holdout_fraction = 0.1;
};

/// Open-time per-shard inventory (header scan only).
struct ShardInfo {
  std::string path;
  std::uint32_t samples = 0;
  std::uint64_t file_bytes = 0;
  /// Prefix sum of samples in file order.
  std::uint64_t first_sample = 0;
};

class ShardedDatasetReader : public BatchSource {
 public:
  /// Opens `directory`, scanning every `*.dlshard` header. Throws Error
  /// when the directory holds no usable shards and FormatError when a
  /// header is malformed or does not match `spec` (num_dense and table
  /// count must agree; cardinalities come from the spec).
  ShardedDatasetReader(DatasetSpec spec, const std::string& directory,
                       ShardReaderConfig config = {});
  ~ShardedDatasetReader() override;

  ShardedDatasetReader(const ShardedDatasetReader&) = delete;
  ShardedDatasetReader& operator=(const ShardedDatasetReader&) = delete;

  [[nodiscard]] const DatasetSpec& spec() const noexcept override {
    return spec_;
  }
  /// Training-stream samples per epoch (excludes the eval holdout).
  [[nodiscard]] std::uint64_t num_samples() const noexcept { return train_samples_; }
  /// Held-out evaluation samples (equals num_samples() when the holdout
  /// is disabled or impossible -- see ShardReaderConfig).
  [[nodiscard]] std::uint64_t num_eval_samples() const noexcept {
    return eval_order_->prefix.back();
  }
  [[nodiscard]] const std::vector<ShardInfo>& shards() const noexcept {
    return shards_;
  }
  /// Shards in the eval holdout (the file-order tail of shards()).
  [[nodiscard]] std::size_t num_eval_shards() const noexcept {
    return eval_order_ == file_order_ ? 0 : eval_order_->shard_order.size();
  }
  /// Shards skipped at open because they hold zero samples.
  [[nodiscard]] std::size_t empty_shards_skipped() const noexcept {
    return empty_shards_;
  }
  [[nodiscard]] ShardIoMode mode() const noexcept { return config_.mode; }

  /// Fills `out` with batch `batch_index` of the (shuffled) training
  /// stream, reusing its capacity. Thread-safe; zero-allocation once
  /// capacities have grown to the batch shape (epoch-order construction
  /// is amortized once per epoch). Wraps around epochs indefinitely.
  void fill_batch(std::size_t batch_size, std::uint64_t batch_index,
                  SampleBatch& out) const;
  /// Same over the held-out shard tail, in file order (the evaluation
  /// stream; see ShardReaderConfig::eval_holdout_fraction).
  void fill_eval_batch(std::size_t batch_size, std::uint64_t batch_index,
                       SampleBatch& out) const;

  [[nodiscard]] SampleBatch make_batch(std::size_t batch_size,
                                       std::uint64_t batch_index) const override;
  [[nodiscard]] SampleBatch make_eval_batch(
      std::size_t batch_size, std::uint64_t batch_index) const override;

  /// Capacity-growth events observed while filling caller batches (both
  /// fill paths). Flat in steady state.
  [[nodiscard]] std::uint64_t grow_events() const noexcept {
    return grow_events_.load(std::memory_order_relaxed);
  }

  /// Shard visit order of one epoch: a permutation of shard indices when
  /// shuffling is on (seeded by (shuffle_seed, epoch)), file order
  /// otherwise. Shared with ShardBatchStream.
  struct EpochOrder {
    std::vector<std::uint32_t> shard_order;
    /// prefix[p] = samples in shard_order[0..p); prefix.back() = total.
    std::vector<std::uint64_t> prefix;
  };
  [[nodiscard]] std::shared_ptr<const EpochOrder> epoch_order(
      std::uint64_t epoch) const;
  /// The unshuffled (file) order over the *training* shards.
  [[nodiscard]] std::shared_ptr<const EpochOrder> file_order() const noexcept {
    return file_order_;
  }
  /// Per-table folded index spaces (min(cardinality, u32 max) from the
  /// spec); shared with ShardBatchStream so the fold lives in one place.
  [[nodiscard]] std::span<const std::uint32_t> cardinalities() const noexcept {
    return cardinality_;
  }

 private:
  struct LoadedShard;

  [[nodiscard]] const LoadedShard& shard(std::size_t index) const;
  void fill_impl(std::size_t batch_size, std::uint64_t batch_index,
                 SampleBatch& out, bool training) const;

  DatasetSpec spec_;
  ShardReaderConfig config_;
  std::vector<ShardInfo> shards_;
  std::vector<std::uint32_t> cardinality_;  ///< per table, from the spec
  std::uint64_t train_samples_ = 0;
  std::size_t empty_shards_ = 0;

  struct Slot;
  mutable std::vector<Slot> slots_;  ///< lazy-loaded shard payloads

  std::shared_ptr<const EpochOrder> file_order_;  ///< train shards, file order
  std::shared_ptr<const EpochOrder> eval_order_;  ///< holdout shards, file order
  mutable std::mutex epoch_mutex_;
  mutable std::vector<std::pair<std::uint64_t, std::shared_ptr<const EpochOrder>>>
      epoch_cache_;

  mutable std::atomic<std::uint64_t> grow_events_{0};
};

/// Sequential reading with double-buffered async prefetch: while batches
/// drain the front buffer's shard, a background thread loads the next
/// shard (in epoch order) into the back buffer. Batches wrap epochs
/// indefinitely; `epoch()` reports the epoch of the *next* sample.
class ShardBatchStream {
 public:
  struct Options {
    bool shuffle = true;       ///< epoch-wise shard shuffling
    bool prefetch = true;      ///< async double-buffering (off = load inline)
    std::uint64_t start_epoch = 0;
  };

  ShardBatchStream(const ShardedDatasetReader& reader, std::size_t batch_size,
                   Options options);
  /// Default options (shuffled, prefetching). A delegating overload
  /// because gcc rejects an `= Options()` default argument whose NSDMIs
  /// live in a nested class of the one being defined.
  ShardBatchStream(const ShardedDatasetReader& reader, std::size_t batch_size)
      : ShardBatchStream(reader, batch_size, Options()) {}
  ~ShardBatchStream();

  ShardBatchStream(const ShardBatchStream&) = delete;
  ShardBatchStream& operator=(const ShardBatchStream&) = delete;

  /// Fills `out` with the next `batch_size` samples, reusing capacity;
  /// the stream wraps epochs indefinitely. On a shard load / format
  /// error it throws, the partially staged batch is discarded (its rows
  /// are skipped -- at most batch_size-1 samples), and a retried call
  /// resumes with a fresh attempt at the failed shard;
  /// `samples_delivered()` counts completed batches only.
  void next(SampleBatch& out);

  [[nodiscard]] std::uint64_t epoch() const noexcept { return epoch_; }
  [[nodiscard]] std::uint64_t samples_delivered() const noexcept {
    return samples_delivered_;
  }
  /// Buffer capacity growth (front/back shard buffers + caller batches).
  /// Flat in steady state once buffers reach the largest shard's size.
  /// Atomic: the prefetch worker counts back-buffer growth concurrently
  /// with the consumer's batch-shape accounting (TSan-verified).
  [[nodiscard]] std::uint64_t grow_events() const noexcept {
    return grow_events_.load(std::memory_order_relaxed);
  }

 private:
  std::uint32_t generate_next_shard_id();
  void request_load(std::uint32_t shard_id);
  void wait_and_swap();  ///< blocks until the back buffer is ready
  void load_into(std::uint32_t shard_id, std::vector<std::byte>& buffer);
  void worker_loop();

  const ShardedDatasetReader& reader_;
  std::size_t batch_size_;
  Options options_;
  std::span<const std::uint32_t> cardinality_;  ///< reader's fold table

  // Consume-side cursor.
  ShardView front_view_{};
  std::size_t front_local_ = 0;  ///< next sample within the front shard
  std::uint64_t epoch_ = 0;
  std::uint64_t samples_delivered_ = 0;
  std::atomic<std::uint64_t> grow_events_{0};

  // Request-side cursor (runs ahead of the consumer by one shard).
  std::shared_ptr<const ShardedDatasetReader::EpochOrder> request_order_;
  std::uint64_t request_epoch_ = 0;
  std::size_t request_pos_ = 0;

  std::vector<std::byte> front_bytes_;

  // Prefetch protocol: consumer requests a shard id, the worker fills
  // back_bytes_ and raises back_ready_. All shared state below is
  // mutex-guarded; the consumer only touches back_bytes_ while
  // back_ready_ is up, the worker only while a request is pending.
  std::thread worker_;
  std::mutex mutex_;
  std::condition_variable cv_;
  std::vector<std::byte> back_bytes_;
  std::uint32_t requested_shard_ = 0;
  std::uint32_t inflight_shard_ = 0;  ///< consumer-side copy for retries
  bool request_pending_ = false;
  bool back_ready_ = false;
  bool stopping_ = false;
  std::string load_error_;
};

}  // namespace dlcomp
