#include "data/criteo_tsv.hpp"

#include <charconv>
#include <cmath>

namespace dlcomp {

namespace {

/// Parses a (possibly empty) integer field. Empty means missing -> 0.
bool parse_int_field(std::string_view token, long long& out) noexcept {
  if (token.empty()) {
    out = 0;
    return true;
  }
  const auto [ptr, ec] =
      std::from_chars(token.data(), token.data() + token.size(), out);
  return ec == std::errc() && ptr == token.data() + token.size();
}

}  // namespace

float CriteoTsvParser::transform_dense(long long raw) noexcept {
  return raw <= 0 ? 0.0f
                  : static_cast<float>(std::log1p(static_cast<double>(raw)));
}

bool CriteoTsvParser::parse_line(std::string_view line, float& label,
                                 std::span<float> dense,
                                 std::span<std::uint32_t> cats) const noexcept {
  if (!line.empty() && line.back() == '\r') line.remove_suffix(1);

  const std::size_t expected = 1 + num_dense_ + num_cat_;
  std::size_t field = 0;
  std::size_t start = 0;
  bool consumed_line = false;
  // One pass over the line; `field` indexes the current token.
  while (field < expected) {
    const std::size_t tab = line.find('\t', start);
    const bool last = tab == std::string_view::npos;
    const std::string_view token =
        line.substr(start, last ? std::string_view::npos : tab - start);

    if (field == 0) {
      long long v = 0;
      if (!parse_int_field(token, v) || (v != 0 && v != 1)) return false;
      label = static_cast<float>(v);
    } else if (field <= num_dense_) {
      long long v = 0;
      if (!parse_int_field(token, v)) return false;
      dense[field - 1] = transform_dense(v);
    } else {
      cats[field - 1 - num_dense_] = hash_token(token);
    }

    ++field;
    if (last) {
      consumed_line = true;
      break;
    }
    start = tab + 1;
  }
  // Malformed when short (fewer fields than expected) or long (the last
  // expected field was followed by more bytes).
  return field == expected && consumed_line;
}

}  // namespace dlcomp
