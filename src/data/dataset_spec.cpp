#include "data/dataset_spec.hpp"

#include <algorithm>
#include <array>
#include <span>

#include "common/error.hpp"

namespace dlcomp {

namespace {

/// Published Criteo Kaggle categorical cardinalities (26 features).
constexpr std::array<std::size_t, 26> kKaggleCardinalities = {
    1460,    583,     10131227, 2202608, 305,    24,     12517, 633,
    3,       93145,   5683,     8351593, 3194,   27,     14992, 5461306,
    10,      5652,    2173,     4,       7046547, 18,    15,    286181,
    105,     142572};

/// Published Criteo Terabyte categorical cardinalities (26 features).
constexpr std::array<std::size_t, 26> kTerabyteCardinalities = {
    227605432, 39060,   17295,     7424,     20265,  3,      7122,  1543,
    63,        130229467, 3067956, 405282,   10,     2209,   11938, 155,
    4,         976,     14,        292775614, 40790948, 187188510, 590152,
    12973,     108,     36};

/// Query-skew assignment. Small-cardinality tables and a hand-picked set
/// of hot tables are strongly Zipfian (the paper's "unbalanced queries");
/// the rest are mildly skewed. The assignment yields the paper's spread
/// of Homogenization Index values across tables (Tables III/IV).
double zipf_for(std::size_t table_id, std::size_t cardinality) {
  // Tiny tables are effectively always-hot.
  if (cardinality <= 32) return 1.2;
  // Deterministic per-table variety spanning [0.55, 1.55].
  static constexpr std::array<double, 13> kPattern = {
      1.50, 1.30, 0.60, 0.85, 1.15, 0.95, 0.70, 1.40, 1.05, 0.55, 0.75, 0.65,
      1.25};
  return kPattern[table_id % kPattern.size()];
}

/// Value-distribution assignment: heavily skewed tables train into
/// concentrated (Gaussian-looking) value sets; weakly skewed ones stay
/// close to their uniform initialization (paper Sec. III-B (3)).
ValueDist dist_for(double zipf_exponent) {
  return zipf_exponent >= 1.0 ? ValueDist::kGaussian : ValueDist::kUniform;
}

/// Homogenization level per table: 0 = none (i.i.d. rows, Homo Index ~0),
/// 1 = moderate clustering, 2 = violent clustering. The mix mirrors the
/// paper's Table II spread of L/M/S classes across the 26 tables, and is
/// aligned with the skew assignment: the big low-skew tables stay
/// unclustered (no repeats, no collapse -> the entropy coder's domain),
/// hot tables either repeat via queries (LZ's domain, retention ~1 like
/// the paper's Kaggle tables 0/1) or collapse via clustering.
int homo_level_for(std::size_t table_id, std::size_t cardinality) {
  // Tiny tables cannot homogenize meaningfully (too few distinct rows);
  // leave them unclustered.
  if (cardinality <= 64) return 0;
  static constexpr std::array<int, 26> kPattern = {
      0, 0, 0, 1, 2, 0, 1, 2, 0, 0, 1, 0, 2, 0, 1, 0, 0,
      2, 1, 0, 2, 0, 0, 0, 2, 2};
  return kPattern[table_id % kPattern.size()];
}

std::size_t clamp_clusters(std::size_t value, std::size_t lo, std::size_t hi) {
  return std::min(hi, std::max(lo, value));
}

DatasetSpec build(std::string name, std::span<const std::size_t> cards,
                  std::size_t cap, std::size_t dim, std::size_t batch) {
  DLCOMP_CHECK(cap >= 2);
  DatasetSpec spec;
  spec.name = std::move(name);
  spec.embedding_dim = dim;
  spec.default_batch = batch;
  spec.tables.reserve(cards.size());
  for (std::size_t t = 0; t < cards.size(); ++t) {
    TableSpec table;
    table.cardinality = std::min(cards[t], cap);
    table.zipf_exponent = zipf_for(t, table.cardinality);
    table.value_dist = dist_for(table.zipf_exponent);
    table.value_scale = table.value_dist == ValueDist::kGaussian ? 0.10f : 0.25f;
    // A couple of large low-skew tables carry concentrated Gaussian
    // values: the paper's Fig. 13 "EMB Table 1" archetype, where lookups
    // rarely repeat but the tight value distribution makes the entropy
    // coder shine.
    if (t == 9 || t == 23) {
      table.value_dist = ValueDist::kGaussian;
      table.value_scale = 0.05f;
    }
    switch (homo_level_for(t, table.cardinality)) {
      case 1:
        table.value_clusters = clamp_clusters(table.cardinality / 8, 8, 192);
        break;
      case 2:
        table.value_clusters = clamp_clusters(table.cardinality / 32, 4, 48);
        break;
      default:
        table.value_clusters = 0;
        break;
    }
    spec.tables.push_back(table);
  }
  return spec;
}

}  // namespace

std::size_t DatasetSpec::total_rows() const noexcept {
  std::size_t total = 0;
  for (const auto& t : tables) total += t.cardinality;
  return total;
}

DatasetSpec DatasetSpec::criteo_kaggle_like(std::size_t cardinality_cap) {
  return build("criteo-kaggle-like", kKaggleCardinalities, cardinality_cap,
               /*dim=*/32, /*batch=*/128);
}

DatasetSpec DatasetSpec::criteo_terabyte_like(std::size_t cardinality_cap) {
  return build("criteo-terabyte-like", kTerabyteCardinalities, cardinality_cap,
               /*dim=*/64, /*batch=*/2048);
}

DatasetSpec DatasetSpec::small_training_proxy(std::size_t num_tables,
                                              std::size_t embedding_dim) {
  DLCOMP_CHECK(num_tables > 0 && num_tables <= 26);
  DatasetSpec spec = criteo_kaggle_like(/*cardinality_cap=*/5000);
  spec.name = "small-training-proxy";
  spec.embedding_dim = embedding_dim;
  spec.default_batch = 128;
  spec.tables.resize(num_tables);
  return spec;
}

}  // namespace dlcomp
