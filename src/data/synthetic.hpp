#pragma once

/// \file synthetic.hpp
/// Synthetic click-log generator. Produces mini-batches shaped like the
/// Criteo datasets -- dense features, per-table Zipf-skewed categorical
/// indices, and click labels drawn from a hidden "teacher" model so the
/// DLRM substrate has real signal to learn (training loss decreases and
/// accuracy climbs, which the paper's accuracy-delta experiments need).
///
/// Generation is stateless/deterministic: batch `i` of a dataset with
/// seed `s` is identical across runs, ranks and call orders.

#include <cstdint>
#include <vector>

#include "common/rng.hpp"
#include "data/batch_source.hpp"
#include "data/dataset_spec.hpp"
#include "data/zipf.hpp"
#include "tensor/matrix.hpp"

namespace dlcomp {

class SyntheticClickDataset : public BatchSource {
 public:
  SyntheticClickDataset(DatasetSpec spec, std::uint64_t seed);

  [[nodiscard]] const DatasetSpec& spec() const noexcept override {
    return spec_;
  }

  /// Generates batch number `batch_index` with `batch_size` samples.
  /// Deterministic in (seed, batch_index, batch_size).
  [[nodiscard]] SampleBatch make_batch(std::size_t batch_size,
                                       std::uint64_t batch_index) const override;

  /// Held-out evaluation batch stream (separate seed space from training).
  [[nodiscard]] SampleBatch make_eval_batch(
      std::size_t batch_size, std::uint64_t batch_index) const override;

  /// The teacher's per-row latent weight for (table, row); exposed so
  /// tests can verify labels are actually learnable.
  [[nodiscard]] float teacher_weight(std::size_t table,
                                     std::uint32_t row) const;

 private:
  [[nodiscard]] SampleBatch generate(std::size_t batch_size, Rng rng) const;

  DatasetSpec spec_;
  std::uint64_t seed_;
  Rng base_rng_;
  std::vector<ZipfSampler> samplers_;
  std::vector<float> dense_teacher_;  ///< teacher weights for dense features
};

}  // namespace dlcomp
