#include "data/shard_format.hpp"

#include <cstring>
#include <string>

#include "common/crc32.hpp"
#include "common/error.hpp"

namespace dlcomp {

namespace {

void append_shard_section(std::vector<std::byte>& out, ShardSection type,
                          std::span<const std::byte> payload) {
  append_pod(out, static_cast<std::uint8_t>(type));
  for (int i = 0; i < 3; ++i) append_pod(out, std::uint8_t{0});
  append_pod(out, crc32(payload));
  append_pod(out, static_cast<std::uint64_t>(payload.size()));
  out.insert(out.end(), payload.begin(), payload.end());
}

/// Reinterprets a CRC-verified payload as an element span, checking
/// alignment and size (both hold by construction; corrupt streams that
/// survive the CRC gauntlet still cannot cause unaligned loads).
template <typename T>
std::span<const T> payload_span(std::span<const std::byte> payload,
                                std::size_t expected_elems) {
  if (payload.size() != expected_elems * sizeof(T)) {
    throw FormatError("shard section payload is " +
                      std::to_string(payload.size()) + " bytes, expected " +
                      std::to_string(expected_elems * sizeof(T)));
  }
  if (reinterpret_cast<std::uintptr_t>(payload.data()) % alignof(T) != 0) {
    throw FormatError("shard section payload is misaligned");
  }
  return {reinterpret_cast<const T*>(payload.data()), expected_elems};
}

}  // namespace

ShardHeader parse_shard_header(ByteReader& reader) {
  const auto magic = reader.read<std::uint32_t>();
  if (magic != kShardMagic) {
    throw FormatError("not a .dlshard file (bad magic)");
  }
  const auto flags = reader.read<std::uint8_t>();
  const std::uint8_t version = flags & 0x0Fu;
  if (version != kShardVersion) {
    throw FormatError("unsupported shard version " + std::to_string(version) +
                      " (expected " + std::to_string(kShardVersion) + ")");
  }
  (void)reader.read<std::uint8_t>();  // reserved
  ShardHeader header;
  header.num_dense = reader.read<std::uint16_t>();
  header.num_cat = reader.read<std::uint16_t>();
  (void)reader.read<std::uint16_t>();  // reserved
  header.sample_count = reader.read<std::uint32_t>();
  header.section_count = reader.read<std::uint32_t>();
  (void)reader.read<std::uint32_t>();  // reserved
  return header;
}

void encode_shard(const ShardContent& content, std::vector<std::byte>& out) {
  const std::size_t n = content.sample_count();
  DLCOMP_CHECK(content.dense.size() == n * content.num_dense);
  DLCOMP_CHECK(content.categorical.size() == n * content.num_cat);

  append_pod(out, kShardMagic);
  append_pod(out, std::uint8_t{kShardVersion});  // flags: version nibble
  append_pod(out, std::uint8_t{0});
  append_pod(out, content.num_dense);
  append_pod(out, content.num_cat);
  append_pod(out, std::uint16_t{0});
  append_pod(out, static_cast<std::uint32_t>(n));
  append_pod(out, std::uint32_t{3});  // section count
  append_pod(out, std::uint32_t{0});

  const auto bytes_of = [](const auto& v) {
    return std::span<const std::byte>(
        reinterpret_cast<const std::byte*>(v.data()),
        v.size() * sizeof(v[0]));
  };
  append_shard_section(out, ShardSection::kLabels, bytes_of(content.labels));
  append_shard_section(out, ShardSection::kDense, bytes_of(content.dense));
  append_shard_section(out, ShardSection::kCategorical,
                       bytes_of(content.categorical));
}

ShardView decode_shard(std::span<const std::byte> data, bool verify_crc) {
  ByteReader reader(data);
  ShardView view;
  view.header = parse_shard_header(reader);

  bool seen[4] = {false, false, false, false};
  for (std::uint32_t s = 0; s < view.header.section_count; ++s) {
    const auto type = reader.read<std::uint8_t>();
    reader.skip(3);
    const auto stored_crc = reader.read<std::uint32_t>();
    const auto payload_bytes = reader.read<std::uint64_t>();
    if (payload_bytes > reader.remaining()) {
      throw FormatError("shard truncated: section claims " +
                        std::to_string(payload_bytes) + " bytes, " +
                        std::to_string(reader.remaining()) + " remain");
    }
    const std::span<const std::byte> payload = reader.take(payload_bytes);
    if (verify_crc && crc32(payload) != stored_crc) {
      throw FormatError("shard section " + std::to_string(type) +
                        " CRC mismatch");
    }
    const std::size_t n = view.header.sample_count;
    switch (static_cast<ShardSection>(type)) {
      case ShardSection::kLabels:
        view.labels = payload_span<float>(payload, n);
        break;
      case ShardSection::kDense:
        view.dense = payload_span<float>(payload, n * view.header.num_dense);
        break;
      case ShardSection::kCategorical:
        view.categorical =
            payload_span<std::uint32_t>(payload, n * view.header.num_cat);
        break;
      default:
        // Unknown sections are skippable (forward compatibility): the
        // payload span was already consumed above.
        continue;
    }
    if (seen[type & 3]) {
      throw FormatError("shard has duplicate section " + std::to_string(type));
    }
    seen[type & 3] = true;
  }
  if (!seen[static_cast<int>(ShardSection::kLabels)] ||
      !seen[static_cast<int>(ShardSection::kDense)] ||
      !seen[static_cast<int>(ShardSection::kCategorical)]) {
    throw FormatError("shard is missing a required section");
  }
  return view;
}

}  // namespace dlcomp
