#pragma once

/// \file kernels.hpp
/// Fused single-precision hot-path kernels for the quantization / Lorenzo
/// stage of every error-bounded codec. Each kernel replaces a chain of
/// per-element passes from the original implementation:
///
///   quantize_to_symbols   = quantize + zigzag + histogram (one sweep)
///   quantize_to_codes     = quantize + running max-symbol (vector-LZ)
///   lorenzo_encode_fused  = Lorenzo predict + quantize + zigzag + histogram
///   lorenzo_decode_fused  = un-zigzag + inverse Lorenzo (no codes buffer)
///   dequantize_*          = straight-line reconstruction loops
///
/// Design rules (see DESIGN.md "Codec hot path"):
///  - the int32-range check is hoisted to one up-front min/max sweep, so
///    the per-element loops are branch-free and auto-vectorizable at -O3
///    (build with -DDLCOMP_VEC_REPORT=ON to get the compiler's
///    vectorization report for these files);
///  - boundary handling (first row / first column / short tail row) is
///    hoisted out of the inner loops instead of being re-tested per
///    element;
///  - per-element arithmetic stays bit-identical to reference_kernels.hpp
///    (double products, round-half-away-from-zero), so streams are
///    byte-identical with the pre-overhaul codecs; the differential tests
///    in test_codec_hotpath.cpp enforce this.
///
/// Rounding note: round-half-away is implemented branch-predication-free
/// as trunc(x + copysign(0.5, x)), which agrees with std::llround for
/// every value except a double lying within half an ulp *below* a
/// half-integer whose sum rounds across it — unreachable for products of
/// real data, and the differential tests run millions of random elements
/// to back that up.

#include <cstdint>
#include <span>

#include "compress/histogram.hpp"
#include "compress/simd.hpp"

namespace dlcomp::kernels {

/// ISA tier of the kernels actually dispatched: simd::requested()
/// stepped down past variants missing from this binary. Resolved on
/// first kernel call (or first query) and stable afterwards unless a
/// test forces it.
[[nodiscard]] simd::Isa dispatched_isa() noexcept;

/// Test hook: forces dispatch to `isa` for the whole process. Returns
/// false (and changes nothing) when `isa` has no compiled-in kernels or
/// exceeds what the CPU supports. Not thread-safe against in-flight
/// kernel calls; differential tests only.
bool force_isa_for_testing(simd::Isa isa) noexcept;

/// Quantizes to zigzag symbols; optionally accumulates `hist` (reset by
/// the callee) for the entropy stage. Throws on code overflow (checked
/// once up front) and on eb <= 0.
void quantize_to_symbols(std::span<const float> input, double eb,
                         std::span<std::uint32_t> symbols,
                         SymbolHistogram* hist);

/// Quantizes to signed codes; returns the largest zigzag symbol value
/// (the vector-LZ literal-width input). Same checks as above.
std::uint64_t quantize_to_codes(std::span<const float> input, double eb,
                                std::span<std::int32_t> codes);

/// Zigzag already-quantized codes into symbols (and optionally the
/// histogram): the shared-quantization path of the hybrid compressor,
/// which quantizes once and feeds both inner encoders.
void codes_to_symbols(std::span<const std::int32_t> codes,
                      std::span<std::uint32_t> symbols, SymbolHistogram* hist);

/// x' = code * 2 * eb.
void dequantize_codes(std::span<const std::int32_t> codes, double eb,
                      std::span<float> output);

/// x' = zigzag_decode(symbol) * 2 * eb.
void dequantize_symbols(std::span<const std::uint32_t> symbols, double eb,
                        std::span<float> output);

/// 2-D Lorenzo predictor over the (rows x dim) grid fused with residual
/// quantization and zigzag; emits symbols plus the running reconstruction
/// (which compression must predict from, mirroring the decoder), and
/// optionally the symbol histogram. No range check: residuals against the
/// running reconstruction are self-limiting, matching the reference.
void lorenzo_encode_fused(std::span<const float> input, std::size_t dim,
                          double eb, std::span<float> reconstructed,
                          std::span<std::uint32_t> symbols,
                          SymbolHistogram* hist);

/// Inverse: rebuilds values straight from zigzag symbols.
void lorenzo_decode_fused(std::span<const std::uint32_t> symbols,
                          std::size_t dim, double eb,
                          std::span<float> output);

}  // namespace dlcomp::kernels
