#include "compress/lzss.hpp"

#include <algorithm>
#include <cstring>

#include "common/bitstream.hpp"
#include "common/error.hpp"

namespace dlcomp::lzss {

namespace {

constexpr std::size_t kHashBits = 16;
constexpr std::size_t kHashSize = std::size_t{1} << kHashBits;

std::uint32_t hash4(const std::byte* p) noexcept {
  std::uint32_t v;
  std::memcpy(&v, p, 4);
  return (v * 2654435761u) >> (32 - kHashBits);
}

std::size_t match_length(const std::byte* a, const std::byte* b,
                         std::size_t limit) noexcept {
  std::size_t n = 0;
  while (n < limit && a[n] == b[n]) ++n;
  return n;
}

}  // namespace

void compress_bytes(std::span<const std::byte> input, const Config& config,
                    std::vector<std::byte>& out) {
  DLCOMP_CHECK(config.window_bytes <= 65535);
  // decompress_bytes assumes the project-wide fixed minimum match of 4.
  DLCOMP_CHECK(config.min_match == 4);
  DLCOMP_CHECK(config.max_match >= config.min_match);
  DLCOMP_CHECK(config.max_match - config.min_match <= 255);

  BitWriter writer;
  const std::size_t n = input.size();

  // head[h] = most recent position with hash h; prev[i % window] = chain.
  std::vector<std::int64_t> head(kHashSize, -1);
  std::vector<std::int64_t> prev(config.window_bytes, -1);

  std::size_t pos = 0;
  while (pos < n) {
    std::size_t best_len = 0;
    std::size_t best_dist = 0;

    if (pos + 4 <= n) {
      const std::uint32_t h = hash4(input.data() + pos);
      std::int64_t candidate = head[h];
      std::size_t probes = 0;
      const std::size_t limit = std::min(config.max_match, n - pos);
      while (candidate >= 0 && probes < config.chain_depth) {
        const std::size_t dist = pos - static_cast<std::size_t>(candidate);
        if (dist > config.window_bytes) break;
        const std::size_t len = match_length(
            input.data() + pos, input.data() + candidate, limit);
        if (len > best_len) {
          best_len = len;
          best_dist = dist;
          if (len == limit) break;
        }
        candidate = prev[static_cast<std::size_t>(candidate) % config.window_bytes];
        ++probes;
      }
    }

    if (best_len >= config.min_match) {
      writer.write_bit(true);
      writer.write(best_dist, 16);
      writer.write(best_len - config.min_match, 8);
      // Insert every covered position into the chains so later matches
      // can reference inside this run.
      const std::size_t end = std::min(pos + best_len, n >= 4 ? n - 3 : 0);
      for (std::size_t i = pos; i < end; ++i) {
        const std::uint32_t h = hash4(input.data() + i);
        prev[i % config.window_bytes] = head[h];
        head[h] = static_cast<std::int64_t>(i);
      }
      pos += best_len;
    } else {
      writer.write_bit(false);
      writer.write(std::to_integer<std::uint64_t>(input[pos]), 8);
      if (pos + 4 <= n) {
        const std::uint32_t h = hash4(input.data() + pos);
        prev[pos % config.window_bytes] = head[h];
        head[h] = static_cast<std::int64_t>(pos);
      }
      ++pos;
    }
  }
  writer.finish_into(out);
}

void decompress_bytes(std::span<const std::byte> stream,
                      std::span<std::byte> out) {
  BitReader reader(stream);
  std::size_t pos = 0;
  const std::size_t n = out.size();
  // min_match must mirror the compressor; it is fixed at 4 project-wide.
  constexpr std::size_t kMinMatch = 4;

  while (pos < n) {
    if (reader.read_bit()) {
      const std::size_t dist = static_cast<std::size_t>(reader.read(16));
      const std::size_t len = static_cast<std::size_t>(reader.read(8)) + kMinMatch;
      if (dist == 0 || dist > pos || pos + len > n) {
        throw FormatError("LZSS backref out of range");
      }
      // Byte-by-byte copy: overlapping self-references are legal.
      for (std::size_t i = 0; i < len; ++i) {
        out[pos + i] = out[pos + i - dist];
      }
      pos += len;
    } else {
      out[pos++] = static_cast<std::byte>(reader.read(8));
    }
  }
}

}  // namespace dlcomp::lzss
