#include "compress/huffman_compressor.hpp"

#include <vector>

#include "common/timer.hpp"
#include "compress/format.hpp"
#include "compress/huffman_coding.hpp"
#include "compress/quantizer.hpp"

namespace dlcomp {

CompressionStats HuffmanCompressor::compress(std::span<const float> input,
                                             const CompressParams& params,
                                             std::vector<std::byte>& out) const {
  WallTimer timer;
  const std::size_t start = out.size();
  const double eb = resolve_error_bound(input, params);

  StreamHeader header;
  header.codec = CodecId::kHuffman;
  header.vector_dim = static_cast<std::uint16_t>(params.vector_dim);
  header.element_count = input.size();
  header.effective_error_bound = eb;
  const std::size_t patch_at = append_header(out, header);
  const std::size_t payload_start = out.size();

  if (!input.empty()) {
    std::vector<std::int32_t> codes(input.size());
    quantize(input, eb, codes);

    std::vector<std::uint32_t> symbols(codes.size());
    for (std::size_t i = 0; i < codes.size(); ++i) {
      symbols[i] = static_cast<std::uint32_t>(zigzag_encode(codes[i]));
    }

    const HuffmanCodec codec = HuffmanCodec::build(symbols);
    codec.serialize_table(out);
    BitWriter writer;
    codec.encode(symbols, writer);
    writer.finish_into(out);
  }

  patch_payload_bytes(out, patch_at, out.size() - payload_start);
  CompressionStats stats;
  stats.input_bytes = input.size_bytes();
  stats.output_bytes = out.size() - start;
  stats.seconds = timer.seconds();
  return stats;
}

double HuffmanCompressor::decompress(std::span<const std::byte> stream,
                                     std::span<float> out) const {
  WallTimer timer;
  std::span<const std::byte> payload;
  const StreamHeader header = parse_header(stream, payload);
  DLCOMP_CHECK(header.codec == CodecId::kHuffman);
  DLCOMP_CHECK_MSG(out.size() == header.element_count,
                   "output span size " << out.size() << " != stream count "
                                       << header.element_count);
  if (out.empty()) return timer.seconds();

  ByteReader reader(payload);
  const HuffmanCodec codec = HuffmanCodec::deserialize_table(reader);

  std::vector<std::uint32_t> symbols(out.size());
  BitReader bits(payload.subspan(reader.position()));
  codec.decode(bits, symbols);

  std::vector<std::int32_t> codes(out.size());
  for (std::size_t i = 0; i < symbols.size(); ++i) {
    codes[i] = static_cast<std::int32_t>(zigzag_decode(symbols[i]));
  }
  dequantize(codes, header.effective_error_bound, out);
  return timer.seconds();
}

}  // namespace dlcomp
