#include "compress/huffman_compressor.hpp"

#include "common/timer.hpp"
#include "compress/format.hpp"
#include "compress/huffman_coding.hpp"
#include "compress/kernels.hpp"
#include "compress/workspace.hpp"

namespace dlcomp {

CompressionStats HuffmanCompressor::compress(std::span<const float> input,
                                             const CompressParams& params,
                                             std::vector<std::byte>& out) const {
  return compress(input, params, out, thread_local_workspace());
}

CompressionStats HuffmanCompressor::compress(std::span<const float> input,
                                             const CompressParams& params,
                                             std::vector<std::byte>& out,
                                             CompressionWorkspace& ws) const {
  WallTimer timer;
  const std::size_t start = out.size();
  const double eb = resolve_error_bound(input, params);

  std::span<const std::uint32_t> symbols;
  if (!input.empty()) {
    const auto scratch = ws.symbols(input.size());
    kernels::quantize_to_symbols(input, eb, scratch, &ws.histogram());
    symbols = scratch;
  }
  compress_with_symbols(input.size(), eb, params, symbols, ws.histogram(),
                        out, ws);

  CompressionStats stats;
  stats.input_bytes = input.size_bytes();
  stats.output_bytes = out.size() - start;
  stats.seconds = timer.seconds();
  return stats;
}

void HuffmanCompressor::compress_with_symbols(
    std::size_t element_count, double eb, const CompressParams& params,
    std::span<const std::uint32_t> symbols, const SymbolHistogram& histogram,
    std::vector<std::byte>& out, CompressionWorkspace& ws,
    bool rebuild_codec) const {
  DLCOMP_CHECK(symbols.size() == element_count);

  StreamHeader header;
  header.codec = CodecId::kHuffman;
  header.vector_dim = static_cast<std::uint16_t>(params.vector_dim);
  header.element_count = element_count;
  header.effective_error_bound = eb;
  const std::size_t patch_at = append_header(out, header);
  const std::size_t payload_start = out.size();

  if (element_count > 0) {
    HuffmanCodec& codec = ws.huffman();
    if (rebuild_codec) codec.build_from_histogram_in_place(histogram);
    codec.serialize_table(out);
    BitWriter& writer = ws.writer();
    writer.reset();
    codec.encode(symbols, writer);
    writer.finish_into(out);
  }

  patch_payload_bytes(out, patch_at, out.size() - payload_start);
}

double HuffmanCompressor::decompress(std::span<const std::byte> stream,
                                     std::span<float> out) const {
  return decompress(stream, out, thread_local_workspace());
}

double HuffmanCompressor::decompress(std::span<const std::byte> stream,
                                     std::span<float> out,
                                     CompressionWorkspace& ws) const {
  WallTimer timer;
  std::span<const std::byte> payload;
  const StreamHeader header = parse_header(stream, payload);
  DLCOMP_CHECK(header.codec == CodecId::kHuffman);
  DLCOMP_CHECK_MSG(out.size() == header.element_count,
                   "output span size " << out.size() << " != stream count "
                                       << header.element_count);
  if (out.empty()) return timer.seconds();

  ByteReader reader(payload);
  HuffmanCodec& codec = ws.huffman();
  codec.deserialize_table_in_place(reader);

  const auto symbols = ws.symbols(out.size());
  BitReader bits(payload.subspan(reader.position()));
  codec.decode(bits, symbols);

  kernels::dequantize_symbols(symbols, header.effective_error_bound, out);
  return timer.seconds();
}

}  // namespace dlcomp
