#pragma once

/// \file vector_lz.hpp
/// The paper's vector-based LZ encoder (Sec. III-D/III-E). Differences
/// from byte-granular LZ, exactly as the paper prescribes:
///
///  1. Fixed pattern length: matches are whole embedding vectors
///     (params.vector_dim quantization codes), never partial runs -- if
///     two vectors differ, the encoder leaps to the next vector instead
///     of sliding byte-by-byte.
///  2. Extended window: the window is measured in vectors
///     (params.lz_window_vectors, default 128; Table VI sweeps 32..255),
///     i.e. kilobytes of history for 32/64-element fp32 vectors.
///
/// Stage order: error-bounded quantization -> vector-granular matching ->
/// fixed-width literal packing. Repeated lookups within a batch (the
/// "unbalanced queries" phenomenon) become 1 + log2(window) bit matches.

#include "compress/compressor.hpp"

namespace dlcomp {

class VectorLzCompressor final : public Compressor {
 public:
  [[nodiscard]] std::string_view name() const noexcept override {
    return "vector-lz";
  }
  [[nodiscard]] bool lossy() const noexcept override { return true; }

  CompressionStats compress(std::span<const float> input,
                            const CompressParams& params,
                            std::vector<std::byte>& out) const override;

  double decompress(std::span<const std::byte> stream,
                    std::span<float> out) const override;

  CompressionStats compress(std::span<const float> input,
                            const CompressParams& params,
                            std::vector<std::byte>& out,
                            CompressionWorkspace& ws) const override;

  double decompress(std::span<const std::byte> stream, std::span<float> out,
                    CompressionWorkspace& ws) const override;

  /// Hybrid fast path: writes the complete vector-LZ stream for an input
  /// whose quantization codes (under `eb`) and largest zigzag symbol are
  /// already known, skipping the redundant quantization pass. Produces
  /// byte-identical streams to compress().
  void compress_with_codes(std::size_t element_count, double eb,
                           const CompressParams& params,
                           std::span<const std::int32_t> codes,
                           std::uint64_t max_symbol,
                           std::vector<std::byte>& out,
                           CompressionWorkspace& ws) const;

  /// Number of vector matches found in the last-compressed layout for a
  /// given buffer (re-derived; helper for the Fig. 13 pattern analysis).
  static std::size_t count_matches(std::span<const float> input,
                                   const CompressParams& params);
};

}  // namespace dlcomp
