#pragma once

/// \file lzss.hpp
/// Byte-granular LZSS with hash-chain matching: the core of the
/// generic-LZ (nvCOMP-LZ4-class) and Deflate-like baselines. Kept
/// internal to the compress module; the public entry points are the
/// Compressor implementations.

#include <cstddef>
#include <span>
#include <vector>

namespace dlcomp::lzss {

struct Config {
  std::size_t window_bytes = 65535;  ///< backref reach (16-bit distances)
  std::size_t min_match = 4;             ///< shortest emitted match
  std::size_t max_match = 259;           ///< longest emitted match
  std::size_t chain_depth = 16;          ///< hash chain probes per position
};

/// Compresses raw bytes into an LZSS token bitstream (flag bit, literal
/// byte, or 16-bit distance + 8-bit length). Appends to `out`.
void compress_bytes(std::span<const std::byte> input, const Config& config,
                    std::vector<std::byte>& out);

/// Decompresses exactly out.size() bytes from a stream produced by
/// compress_bytes with the same Config limits.
void decompress_bytes(std::span<const std::byte> stream,
                      std::span<std::byte> out);

}  // namespace dlcomp::lzss
