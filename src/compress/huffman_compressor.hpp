#pragma once

/// \file huffman_compressor.hpp
/// The paper's "optimized entropy encoder": error-bounded quantization
/// followed by canonical Huffman coding of the (zigzagged) quantization
/// codes. No prediction stage -- the paper's observation (1) shows Lorenzo
/// prediction is counterproductive on embedding batches (false
/// prediction), so codes are entropy-coded directly.
///
/// Hot path: the fused quantize->zigzag->histogram kernel feeds an
/// in-place table-driven Huffman build; all scratch comes from the
/// workspace (the plain overloads borrow the calling thread's).

#include "compress/compressor.hpp"
#include "compress/histogram.hpp"

namespace dlcomp {

class HuffmanCompressor final : public Compressor {
 public:
  [[nodiscard]] std::string_view name() const noexcept override {
    return "huffman";
  }
  [[nodiscard]] bool lossy() const noexcept override { return true; }

  CompressionStats compress(std::span<const float> input,
                            const CompressParams& params,
                            std::vector<std::byte>& out) const override;

  double decompress(std::span<const std::byte> stream,
                    std::span<float> out) const override;

  CompressionStats compress(std::span<const float> input,
                            const CompressParams& params,
                            std::vector<std::byte>& out,
                            CompressionWorkspace& ws) const override;

  double decompress(std::span<const std::byte> stream, std::span<float> out,
                    CompressionWorkspace& ws) const override;

  /// Hybrid fast path: writes the complete Huffman stream for an input
  /// whose zigzag symbols and histogram (under `eb`) are already known,
  /// skipping the redundant quantization pass. Byte-identical to
  /// compress(). Pass rebuild_codec=false when ws.huffman() was already
  /// built from exactly this histogram (the hybrid sizing path), saving
  /// a redundant table construction.
  void compress_with_symbols(std::size_t element_count, double eb,
                             const CompressParams& params,
                             std::span<const std::uint32_t> symbols,
                             const SymbolHistogram& histogram,
                             std::vector<std::byte>& out,
                             CompressionWorkspace& ws,
                             bool rebuild_codec = true) const;
};

}  // namespace dlcomp
