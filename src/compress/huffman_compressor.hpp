#pragma once

/// \file huffman_compressor.hpp
/// The paper's "optimized entropy encoder": error-bounded quantization
/// followed by canonical Huffman coding of the (zigzagged) quantization
/// codes. No prediction stage -- the paper's observation (1) shows Lorenzo
/// prediction is counterproductive on embedding batches (false
/// prediction), so codes are entropy-coded directly.

#include "compress/compressor.hpp"

namespace dlcomp {

class HuffmanCompressor final : public Compressor {
 public:
  [[nodiscard]] std::string_view name() const noexcept override {
    return "huffman";
  }
  [[nodiscard]] bool lossy() const noexcept override { return true; }

  CompressionStats compress(std::span<const float> input,
                            const CompressParams& params,
                            std::vector<std::byte>& out) const override;

  double decompress(std::span<const std::byte> stream,
                    std::span<float> out) const override;
};

}  // namespace dlcomp
