#pragma once

/// \file fz_gpu_like.hpp
/// Throughput-oriented lossy baseline in the FZ-GPU family: error-bounded
/// quantization, bitshuffle (bit-plane transpose) within fixed blocks,
/// and zero-plane suppression. No entropy stage -- which is exactly why
/// the paper reports it as the fastest codec with a clearly lower ratio
/// than the hybrid compressor (Fig. 11).

#include "compress/compressor.hpp"

namespace dlcomp {

class FzGpuLikeCompressor final : public Compressor {
 public:
  /// Values per bitshuffle block; a block transposes into 32 bit planes
  /// of kBlockValues/8 bytes each.
  static constexpr std::size_t kBlockValues = 256;

  [[nodiscard]] std::string_view name() const noexcept override {
    return "fz-gpu-like";
  }
  [[nodiscard]] bool lossy() const noexcept override { return true; }

  CompressionStats compress(std::span<const float> input,
                            const CompressParams& params,
                            std::vector<std::byte>& out) const override;

  double decompress(std::span<const std::byte> stream,
                    std::span<float> out) const override;

  CompressionStats compress(std::span<const float> input,
                            const CompressParams& params,
                            std::vector<std::byte>& out,
                            CompressionWorkspace& ws) const override;

  double decompress(std::span<const std::byte> stream, std::span<float> out,
                    CompressionWorkspace& ws) const override;
};

}  // namespace dlcomp
