#pragma once

/// \file quantizer.hpp
/// Error-bounded linear quantization: the first stage of the paper's
/// hybrid compressor ("the quantization encoder converts floating-point
/// numbers into discrete bins"). With absolute bound eb, bins are 2*eb
/// wide, so |x - dequantize(quantize(x))| <= eb for all finite x within
/// the representable code range. The implementations live in the fused
/// kernels (kernels.hpp); this header keeps the stable public surface.

#include <cstdint>
#include <span>
#include <vector>

namespace dlcomp {

/// Quantizes each value to round(x / (2*eb)). Throws if any code exceeds
/// the int32 range (cannot happen for embedding-scale data with sane
/// bounds; the check guards against eb underflow). The range check is
/// performed once up front over the input extrema.
void quantize(std::span<const float> input, double eb,
              std::span<std::int32_t> codes);

/// Reconstructs x' = code * 2 * eb.
void dequantize(std::span<const std::int32_t> codes, double eb,
                std::span<float> output);

/// Convenience allocation form.
std::vector<std::int32_t> quantize(std::span<const float> input, double eb);

/// Counts distinct vectors of length `dim` in `codes` (row-granular).
/// Used by the Homogenization Index: quantized pattern counting.
std::size_t count_unique_vectors(std::span<const std::int32_t> codes,
                                 std::size_t dim);

/// Counts distinct float vectors (original pattern counting).
std::size_t count_unique_vectors(std::span<const float> values,
                                 std::size_t dim);

namespace detail {

/// Row hash signature for count_unique_rows_bytes.
using RowHashFn = std::uint64_t (*)(const void* data, std::size_t bytes);

/// Collision-safe distinct-row count over a packed row-major buffer:
/// rows whose hashes collide are compared byte-for-byte instead of being
/// assumed equal. The hash is injectable so tests can force collisions
/// (a constant hash must still produce exact counts).
std::size_t count_unique_rows_bytes(const void* data, std::size_t row_bytes,
                                    std::size_t rows, RowHashFn hash);

}  // namespace detail

}  // namespace dlcomp
