#pragma once

/// \file quantizer.hpp
/// Error-bounded linear quantization: the first stage of the paper's
/// hybrid compressor ("the quantization encoder converts floating-point
/// numbers into discrete bins"). With absolute bound eb, bins are 2*eb
/// wide, so |x - dequantize(quantize(x))| <= eb for all finite x within
/// the representable code range.

#include <cstdint>
#include <span>
#include <vector>

namespace dlcomp {

/// Quantizes each value to round(x / (2*eb)). Throws if any code exceeds
/// the int32 range (cannot happen for embedding-scale data with sane
/// bounds; the check guards against eb underflow).
void quantize(std::span<const float> input, double eb,
              std::span<std::int32_t> codes);

/// Reconstructs x' = code * 2 * eb.
void dequantize(std::span<const std::int32_t> codes, double eb,
                std::span<float> output);

/// Convenience allocation form.
std::vector<std::int32_t> quantize(std::span<const float> input, double eb);

/// Counts distinct vectors of length `dim` in `codes` (row-granular).
/// Used by the Homogenization Index: quantized pattern counting.
std::size_t count_unique_vectors(std::span<const std::int32_t> codes,
                                 std::size_t dim);

/// Counts distinct float vectors (original pattern counting).
std::size_t count_unique_vectors(std::span<const float> values,
                                 std::size_t dim);

}  // namespace dlcomp
