#pragma once

/// \file cusz_like.hpp
/// Prediction-based error-bounded baseline in the cuSZ/SZ family: a 2-D
/// Lorenzo predictor over the (batch x dim) embedding grid, error-bounded
/// quantization of the residuals, and Huffman coding of the codes.
///
/// This baseline deliberately reproduces the paper's "false prediction"
/// observation (Sec. III-B (1), Fig. 4): embedding vectors have no spatial
/// correlation across dimensions or neighbors, so Lorenzo residuals carry
/// *more* entropy than the raw values and identical vectors become
/// distinct residual rows -- which is why its ratio trails the
/// DLRM-specific codecs in Table V.
///
/// Hot path: fused Lorenzo+quantize+zigzag+histogram kernel, in-place
/// Huffman build/decode, workspace scratch throughout.

#include "compress/compressor.hpp"

namespace dlcomp {

class CuszLikeCompressor final : public Compressor {
 public:
  [[nodiscard]] std::string_view name() const noexcept override {
    return "cusz-like";
  }
  [[nodiscard]] bool lossy() const noexcept override { return true; }

  CompressionStats compress(std::span<const float> input,
                            const CompressParams& params,
                            std::vector<std::byte>& out) const override;

  double decompress(std::span<const std::byte> stream,
                    std::span<float> out) const override;

  CompressionStats compress(std::span<const float> input,
                            const CompressParams& params,
                            std::vector<std::byte>& out,
                            CompressionWorkspace& ws) const override;

  double decompress(std::span<const std::byte> stream, std::span<float> out,
                    CompressionWorkspace& ws) const override;

  /// Residual quantization codes for a buffer (diagnostic used by tests
  /// and the Table I "false prediction" characterization).
  static std::vector<std::int32_t> prediction_codes(
      std::span<const float> input, const CompressParams& params);
};

}  // namespace dlcomp
