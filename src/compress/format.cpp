#include "compress/format.hpp"

#include <cstring>

#include "common/error.hpp"

namespace dlcomp {

namespace {

/// Packs flag bits and the current format version into the wire byte.
std::uint8_t versioned_flags(std::uint8_t flags) noexcept {
  return static_cast<std::uint8_t>((flags & kFlagBitsMask) |
                                   (kStreamVersion << 4));
}

}  // namespace

std::size_t append_header(std::vector<std::byte>& out, const StreamHeader& h) {
  append_pod(out, StreamHeader::kMagic);
  append_pod(out, static_cast<std::uint8_t>(h.codec));
  append_pod(out, versioned_flags(h.flags));
  append_pod(out, h.vector_dim);
  append_pod(out, h.element_count);
  append_pod(out, h.effective_error_bound);
  const std::size_t field_offset = out.size();
  append_pod(out, h.payload_bytes);
  return field_offset;
}

void patch_payload_bytes(std::vector<std::byte>& out, std::size_t field_offset,
                         std::uint64_t payload_bytes) {
  DLCOMP_CHECK(field_offset + sizeof(payload_bytes) <= out.size());
  std::memcpy(out.data() + field_offset, &payload_bytes, sizeof(payload_bytes));
}

void patch_flags(std::vector<std::byte>& out, std::size_t field_offset,
                 std::uint8_t flags) {
  // Header layout: magic(4) codec(1) flags(1) dim(2) count(8) eb(8)
  // payload_bytes(8); the flags byte sits 19 bytes before payload_bytes.
  constexpr std::size_t kFlagsBack = 2 + 8 + 8 + 1;
  DLCOMP_CHECK(field_offset >= kFlagsBack);
  out[field_offset - kFlagsBack] = static_cast<std::byte>(versioned_flags(flags));
}

StreamHeader parse_header(std::span<const std::byte> stream,
                          std::span<const std::byte>& payload) {
  ByteReader reader(stream);
  const auto magic = reader.read<std::uint32_t>();
  if (magic != StreamHeader::kMagic) {
    throw FormatError("bad stream magic");
  }
  StreamHeader h;
  h.codec = static_cast<CodecId>(reader.read<std::uint8_t>());
  const std::uint8_t wire_flags = reader.read<std::uint8_t>();
  const std::uint8_t version = wire_flags >> 4;
  if (version != kStreamVersion) {
    throw FormatError("unsupported stream format version " +
                      std::to_string(version) + " (expected " +
                      std::to_string(kStreamVersion) + ")");
  }
  h.flags = wire_flags & kFlagBitsMask;
  h.vector_dim = reader.read<std::uint16_t>();
  h.element_count = reader.read<std::uint64_t>();
  h.effective_error_bound = reader.read<double>();
  h.payload_bytes = reader.read<std::uint64_t>();
  if (reader.remaining() < h.payload_bytes) {
    throw FormatError("stream payload truncated");
  }
  payload = stream.subspan(reader.position(), h.payload_bytes);
  return h;
}

}  // namespace dlcomp
