#pragma once

/// \file deflate_like.hpp
/// Lossless LZ + entropy baseline, standing in for nvCOMP Deflate: the
/// LZSS token stream is further Huffman-coded byte-wise. The paper finds
/// it compresses marginally better than LZ4 at lower throughput; the same
/// relation emerges here.

#include "compress/compressor.hpp"

namespace dlcomp {

class DeflateLikeCompressor final : public Compressor {
 public:
  [[nodiscard]] std::string_view name() const noexcept override {
    return "deflate-like";
  }
  [[nodiscard]] bool lossy() const noexcept override { return false; }

  CompressionStats compress(std::span<const float> input,
                            const CompressParams& params,
                            std::vector<std::byte>& out) const override;

  double decompress(std::span<const std::byte> stream,
                    std::span<float> out) const override;
};

}  // namespace dlcomp
