#pragma once

/// \file simd.hpp
/// Runtime ISA selection for the codec hot-path kernels. The library
/// ships scalar, AVX2 and AVX-512 builds of the fused quantize / Lorenzo
/// loops in separate translation units (each compiled with exactly the
/// target flags it needs); one cpuid probe at first use picks the widest
/// variant the host supports, and the `DLCOMP_SIMD` environment variable
/// (`scalar` | `avx2` | `avx512`) clamps the choice downward for A/B
/// testing and the CI byte-identity matrix. Requests above what the CPU
/// supports are clamped to the best available level, never trusted.
///
/// Every variant produces byte-identical streams (see kernels.hpp and
/// DESIGN.md "Parallel framing and SIMD dispatch"); selection is a pure
/// performance decision, which is why clamping silently is safe.

#include <string_view>

namespace dlcomp::simd {

/// Kernel instruction-set tiers, ordered: higher value = wider vectors.
enum class Isa : int {
  kScalar = 0,
  kAvx2 = 1,
  kAvx512 = 2,  ///< requires F+BW+DQ+VL (the skylake-server baseline)
};

/// Widest tier the running CPU supports (cpuid; cached after first call).
[[nodiscard]] Isa cpu_best() noexcept;

/// cpu_best() clamped by the `DLCOMP_SIMD` override, resolved once per
/// process. This is the *request*; the kernels may still step down a tier
/// when a variant was not compiled in (kernels::dispatched_isa() reports
/// the tier actually running).
[[nodiscard]] Isa requested() noexcept;

/// "scalar" | "avx2" | "avx512".
[[nodiscard]] std::string_view isa_name(Isa isa) noexcept;

}  // namespace dlcomp::simd
