#include "compress/reference_kernels.hpp"

#include <cmath>
#include <limits>

#include "common/error.hpp"

namespace dlcomp::reference {

void quantize(std::span<const float> input, double eb,
              std::span<std::int32_t> codes) {
  DLCOMP_CHECK(codes.size() == input.size());
  DLCOMP_CHECK_MSG(eb > 0.0, "quantizer error bound must be positive");
  const double inv = 1.0 / (2.0 * eb);
  for (std::size_t i = 0; i < input.size(); ++i) {
    const double scaled = static_cast<double>(input[i]) * inv;
    DLCOMP_CHECK_MSG(
        scaled >= static_cast<double>(std::numeric_limits<std::int32_t>::min()) &&
            scaled <= static_cast<double>(std::numeric_limits<std::int32_t>::max()),
        "quantization code overflow: value " << input[i] << " eb " << eb);
    codes[i] = static_cast<std::int32_t>(std::llround(scaled));
  }
}

void dequantize(std::span<const std::int32_t> codes, double eb,
                std::span<float> output) {
  DLCOMP_CHECK(output.size() == codes.size());
  const double step = 2.0 * eb;
  for (std::size_t i = 0; i < codes.size(); ++i) {
    output[i] = static_cast<float>(static_cast<double>(codes[i]) * step);
  }
}

void lorenzo_encode(std::span<const float> input, std::size_t dim, double eb,
                    std::span<std::int32_t> codes,
                    std::span<float> reconstructed) {
  const double step = 2.0 * eb;
  const std::size_t n = input.size();
  auto recon_at = [&](std::size_t r, std::size_t c) -> double {
    const std::size_t idx = r * dim + c;
    return idx < n ? static_cast<double>(reconstructed[idx]) : 0.0;
  };

  const std::size_t rows = (n + dim - 1) / dim;
  for (std::size_t r = 0; r < rows; ++r) {
    for (std::size_t c = 0; c < dim; ++c) {
      const std::size_t idx = r * dim + c;
      if (idx >= n) break;
      const double west = c > 0 ? recon_at(r, c - 1) : 0.0;
      const double north = r > 0 ? recon_at(r - 1, c) : 0.0;
      const double northwest = (r > 0 && c > 0) ? recon_at(r - 1, c - 1) : 0.0;
      const double pred = west + north - northwest;
      const double residual = static_cast<double>(input[idx]) - pred;
      const auto code = static_cast<std::int32_t>(std::llround(residual / step));
      codes[idx] = code;
      reconstructed[idx] =
          static_cast<float>(pred + static_cast<double>(code) * step);
    }
  }
}

void lorenzo_decode(std::span<const std::int32_t> codes, std::size_t dim,
                    double eb, std::span<float> output) {
  const double step = 2.0 * eb;
  const std::size_t n = output.size();
  auto out_at = [&](std::size_t r, std::size_t c) -> double {
    const std::size_t idx = r * dim + c;
    return idx < n ? static_cast<double>(output[idx]) : 0.0;
  };

  const std::size_t rows = (n + dim - 1) / dim;
  for (std::size_t r = 0; r < rows; ++r) {
    for (std::size_t c = 0; c < dim; ++c) {
      const std::size_t idx = r * dim + c;
      if (idx >= n) break;
      const double west = c > 0 ? out_at(r, c - 1) : 0.0;
      const double north = r > 0 ? out_at(r - 1, c) : 0.0;
      const double northwest = (r > 0 && c > 0) ? out_at(r - 1, c - 1) : 0.0;
      const double pred = west + north - northwest;
      output[idx] =
          static_cast<float>(pred + static_cast<double>(codes[idx]) * step);
    }
  }
}

}  // namespace dlcomp::reference
