#include "compress/generic_lz.hpp"

#include <cstring>

#include "common/timer.hpp"
#include "compress/format.hpp"
#include "compress/lzss.hpp"

namespace dlcomp {

CompressionStats GenericLzCompressor::compress(std::span<const float> input,
                                               const CompressParams& params,
                                               std::vector<std::byte>& out) const {
  (void)params;  // lossless: error bound and vector shape are irrelevant
  WallTimer timer;
  const std::size_t start = out.size();

  StreamHeader header;
  header.codec = CodecId::kGenericLz;
  header.element_count = input.size();
  const std::size_t patch_at = append_header(out, header);
  const std::size_t payload_start = out.size();

  const std::span<const std::byte> raw{
      reinterpret_cast<const std::byte*>(input.data()), input.size_bytes()};
  lzss::compress_bytes(raw, lzss::Config{}, out);

  // Stored-block fallback (as LZ4/Deflate do): never expand past the raw
  // bytes; the header flag marks a stored payload.
  if (out.size() - payload_start >= raw.size() && !raw.empty()) {
    out.resize(payload_start);
    out.insert(out.end(), raw.begin(), raw.end());
    patch_flags(out, patch_at, kFlagStoredRaw);
  }

  patch_payload_bytes(out, patch_at, out.size() - payload_start);
  CompressionStats stats;
  stats.input_bytes = input.size_bytes();
  stats.output_bytes = out.size() - start;
  stats.seconds = timer.seconds();
  return stats;
}

double GenericLzCompressor::decompress(std::span<const std::byte> stream,
                                       std::span<float> out) const {
  WallTimer timer;
  std::span<const std::byte> payload;
  const StreamHeader header = parse_header(stream, payload);
  DLCOMP_CHECK(header.codec == CodecId::kGenericLz);
  DLCOMP_CHECK(out.size() == header.element_count);

  const std::span<std::byte> raw{reinterpret_cast<std::byte*>(out.data()),
                                 out.size_bytes()};
  if (header.flags & kFlagStoredRaw) {
    DLCOMP_CHECK(payload.size() == raw.size());
    std::memcpy(raw.data(), payload.data(), payload.size());
  } else {
    lzss::decompress_bytes(payload, raw);
  }
  return timer.seconds();
}

}  // namespace dlcomp
