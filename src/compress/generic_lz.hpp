#pragma once

/// \file generic_lz.hpp
/// Lossless byte-granular LZ baseline, standing in for nvCOMP-LZ4 in the
/// paper's comparisons (Table V, Fig. 11). It compresses the raw IEEE-754
/// bytes of the lookup batch; as the paper observes, the random mantissa
/// bits cap its ratio far below the DLRM-specific codecs.

#include "compress/compressor.hpp"

namespace dlcomp {

class GenericLzCompressor final : public Compressor {
 public:
  [[nodiscard]] std::string_view name() const noexcept override {
    return "generic-lz";
  }
  [[nodiscard]] bool lossy() const noexcept override { return false; }

  CompressionStats compress(std::span<const float> input,
                            const CompressParams& params,
                            std::vector<std::byte>& out) const override;

  double decompress(std::span<const std::byte> stream,
                    std::span<float> out) const override;
};

}  // namespace dlcomp
