#include "compress/hybrid.hpp"

#include <vector>

#include "common/timer.hpp"
#include "compress/format.hpp"
#include "compress/huffman_compressor.hpp"
#include "compress/kernels.hpp"
#include "compress/vector_lz.hpp"
#include "compress/workspace.hpp"

namespace dlcomp {

namespace {

const VectorLzCompressor& vector_lz_codec() {
  static const VectorLzCompressor codec;
  return codec;
}

const HuffmanCompressor& huffman_codec() {
  static const HuffmanCompressor codec;
  return codec;
}

}  // namespace

CompressionStats HybridCompressor::compress(std::span<const float> input,
                                            const CompressParams& params,
                                            std::vector<std::byte>& out) const {
  return compress(input, params, out, thread_local_workspace());
}

CompressionStats HybridCompressor::compress(std::span<const float> input,
                                            const CompressParams& params,
                                            std::vector<std::byte>& out,
                                            CompressionWorkspace& ws) const {
  WallTimer timer;
  const std::size_t start = out.size();

  StreamHeader header;
  header.codec = CodecId::kHybrid;
  header.vector_dim = static_cast<std::uint16_t>(params.vector_dim);
  header.element_count = input.size();
  // Mirror the effective bound in the outer header so stream inspection
  // does not need to descend into the inner stream.
  header.effective_error_bound =
      input.empty() ? 0.0 : resolve_error_bound(input, params);
  const std::size_t patch_at = append_header(out, header);
  const std::size_t payload_start = out.size();

  HybridChoice choice = params.hybrid_choice;
  if (choice == HybridChoice::kAuto && !input.empty()) {
    // No offline decision available: pick the smaller stream (the online
    // fallback), sharing one quantization pass between both candidates.
    // The vector-LZ candidate is emitted for real (into the workspace's
    // stream scratch -- the inner codecs only use its code/symbol/writer
    // members, so handing them the same workspace is safe); the Huffman
    // candidate's size is computed exactly from the histogram (payload
    // bits = sum length x frequency, plus the canonical table), so it is
    // only encoded when it actually wins. Stream bytes are identical to
    // encoding both and comparing.
    const double eb = header.effective_error_bound;
    const auto codes = ws.codes(input.size());
    const std::uint64_t max_symbol =
        kernels::quantize_to_codes(input, eb, codes);
    const auto symbols = ws.symbols(input.size());
    kernels::codes_to_symbols(codes, symbols, &ws.histogram());

    std::vector<std::byte>& lz_stream = ws.stream_a();
    lz_stream.clear();
    vector_lz_codec().compress_with_codes(input.size(), eb, params, codes,
                                          max_symbol, lz_stream, ws);

    HuffmanCodec& codec = ws.huffman();
    codec.build_from_histogram_in_place(ws.histogram());
    const std::size_t huff_size =
        StreamHeader::kBytes + codec.serialized_table_bytes() +
        (codec.build_payload_bits() + 7) / 8;

    choice = lz_stream.size() <= huff_size ? HybridChoice::kVectorLz
                                           : HybridChoice::kHuffman;
    out.push_back(static_cast<std::byte>(choice));
    if (choice == HybridChoice::kVectorLz) {
      out.insert(out.end(), lz_stream.begin(), lz_stream.end());
    } else {
      huffman_codec().compress_with_symbols(input.size(), eb, params,
                                            symbols, ws.histogram(), out, ws,
                                            /*rebuild_codec=*/false);
    }
  } else if (choice == HybridChoice::kAuto) {
    // Empty input: both candidates are bare headers of equal size, so the
    // tie-break picks vector-LZ, matching the encode-both reference.
    choice = HybridChoice::kVectorLz;
    out.push_back(static_cast<std::byte>(choice));
    vector_lz_codec().compress(input, params, out, ws);
  } else {
    out.push_back(static_cast<std::byte>(choice));
    if (choice == HybridChoice::kVectorLz) {
      vector_lz_codec().compress(input, params, out, ws);
    } else {
      huffman_codec().compress(input, params, out, ws);
    }
  }

  patch_payload_bytes(out, patch_at, out.size() - payload_start);
  CompressionStats stats;
  stats.input_bytes = input.size_bytes();
  stats.output_bytes = out.size() - start;
  stats.seconds = timer.seconds();
  return stats;
}

double HybridCompressor::decompress(std::span<const std::byte> stream,
                                    std::span<float> out) const {
  return decompress(stream, out, thread_local_workspace());
}

double HybridCompressor::decompress(std::span<const std::byte> stream,
                                    std::span<float> out,
                                    CompressionWorkspace& ws) const {
  WallTimer timer;
  std::span<const std::byte> payload;
  const StreamHeader header = parse_header(stream, payload);
  DLCOMP_CHECK(header.codec == CodecId::kHybrid);
  DLCOMP_CHECK(out.size() == header.element_count);
  if (payload.empty()) throw FormatError("hybrid stream missing selector");

  const auto choice = static_cast<HybridChoice>(payload[0]);
  const auto inner = payload.subspan(1);
  switch (choice) {
    case HybridChoice::kVectorLz:
      vector_lz_codec().decompress(inner, out, ws);
      break;
    case HybridChoice::kHuffman:
      huffman_codec().decompress(inner, out, ws);
      break;
    default:
      throw FormatError("unknown hybrid selector");
  }
  return timer.seconds();
}

HybridChoice HybridCompressor::stream_choice(std::span<const std::byte> stream) {
  std::span<const std::byte> payload;
  const StreamHeader header = parse_header(stream, payload);
  DLCOMP_CHECK(header.codec == CodecId::kHybrid);
  if (payload.empty()) throw FormatError("hybrid stream missing selector");
  return static_cast<HybridChoice>(payload[0]);
}

}  // namespace dlcomp
