#include "compress/hybrid.hpp"

#include <vector>

#include "common/timer.hpp"
#include "compress/format.hpp"
#include "compress/huffman_compressor.hpp"
#include "compress/vector_lz.hpp"

namespace dlcomp {

namespace {

const VectorLzCompressor& vector_lz_codec() {
  static const VectorLzCompressor codec;
  return codec;
}

const HuffmanCompressor& huffman_codec() {
  static const HuffmanCompressor codec;
  return codec;
}

}  // namespace

CompressionStats HybridCompressor::compress(std::span<const float> input,
                                            const CompressParams& params,
                                            std::vector<std::byte>& out) const {
  WallTimer timer;
  const std::size_t start = out.size();

  StreamHeader header;
  header.codec = CodecId::kHybrid;
  header.vector_dim = static_cast<std::uint16_t>(params.vector_dim);
  header.element_count = input.size();
  // Mirror the effective bound in the outer header so stream inspection
  // does not need to descend into the inner stream.
  header.effective_error_bound =
      input.empty() ? 0.0 : resolve_error_bound(input, params);
  const std::size_t patch_at = append_header(out, header);
  const std::size_t payload_start = out.size();

  HybridChoice choice = params.hybrid_choice;
  if (choice == HybridChoice::kAuto) {
    // No offline decision available: encode with both and keep the
    // smaller stream (the online fallback).
    std::vector<std::byte> lz_stream;
    std::vector<std::byte> huff_stream;
    vector_lz_codec().compress(input, params, lz_stream);
    huffman_codec().compress(input, params, huff_stream);
    choice = lz_stream.size() <= huff_stream.size() ? HybridChoice::kVectorLz
                                                    : HybridChoice::kHuffman;
    out.push_back(static_cast<std::byte>(choice));
    const auto& inner =
        choice == HybridChoice::kVectorLz ? lz_stream : huff_stream;
    out.insert(out.end(), inner.begin(), inner.end());
  } else {
    out.push_back(static_cast<std::byte>(choice));
    if (choice == HybridChoice::kVectorLz) {
      vector_lz_codec().compress(input, params, out);
    } else {
      huffman_codec().compress(input, params, out);
    }
  }

  patch_payload_bytes(out, patch_at, out.size() - payload_start);
  CompressionStats stats;
  stats.input_bytes = input.size_bytes();
  stats.output_bytes = out.size() - start;
  stats.seconds = timer.seconds();
  return stats;
}

double HybridCompressor::decompress(std::span<const std::byte> stream,
                                    std::span<float> out) const {
  WallTimer timer;
  std::span<const std::byte> payload;
  const StreamHeader header = parse_header(stream, payload);
  DLCOMP_CHECK(header.codec == CodecId::kHybrid);
  DLCOMP_CHECK(out.size() == header.element_count);
  if (payload.empty()) throw FormatError("hybrid stream missing selector");

  const auto choice = static_cast<HybridChoice>(payload[0]);
  const auto inner = payload.subspan(1);
  switch (choice) {
    case HybridChoice::kVectorLz:
      vector_lz_codec().decompress(inner, out);
      break;
    case HybridChoice::kHuffman:
      huffman_codec().decompress(inner, out);
      break;
    default:
      throw FormatError("unknown hybrid selector");
  }
  return timer.seconds();
}

HybridChoice HybridCompressor::stream_choice(std::span<const std::byte> stream) {
  std::span<const std::byte> payload;
  const StreamHeader header = parse_header(stream, payload);
  DLCOMP_CHECK(header.codec == CodecId::kHybrid);
  if (payload.empty()) throw FormatError("hybrid stream missing selector");
  return static_cast<HybridChoice>(payload[0]);
}

}  // namespace dlcomp
