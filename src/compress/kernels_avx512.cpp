/// \file kernels_avx512.cpp
/// AVX-512 builds of the element-wise codec loops (16 floats per
/// iteration; requires F+BW+DQ+VL, which cpu_best() checks as a unit).
/// Compiled with the -mavx512* flags and -ffp-contract=off so no
/// mul/add pair can fuse into an FMA — see kernels_avx2.cpp for the
/// full byte-identity argument; the same reasoning applies lane-wise
/// here since every conversion and arithmetic op is IEEE-exact.
///
/// The Lorenzo passes are gather/scatter-bound, not lane-bound: four
/// staggered rows already hide the dependent-chain latency and wider
/// registers would only add ramp overhead, so this table forwards them
/// to the AVX2 implementations.

#include "compress/kernels_dispatch.hpp"

#if defined(__AVX512F__) && defined(__AVX512BW__) && defined(__AVX512DQ__) && \
    defined(__AVX512VL__)

#include <immintrin.h>

#include <algorithm>
#include <cstdint>

#include "common/bitstream.hpp"

namespace dlcomp::kernels::detail {

namespace {

inline __m512i zigzag16(__m512i c) noexcept {
  return _mm512_xor_si512(_mm512_slli_epi32(c, 1), _mm512_srai_epi32(c, 31));
}

/// t + copysign(0.5, t) on 8 lanes.
inline __m512d bias_half_away(__m512d t) noexcept {
  const __m512d sign = _mm512_set1_pd(-0.0);
  const __m512d half = _mm512_set1_pd(0.5);
  return _mm512_add_pd(t, _mm512_or_pd(_mm512_and_pd(t, sign), half));
}

/// round(in[i] * inv) for 16 range-checked floats.
inline __m512i quantize16(__m512 vf, __m512d vinv) noexcept {
  const __m512d lo = bias_half_away(_mm512_mul_pd(
      _mm512_cvtps_pd(_mm512_castps512_ps256(vf)), vinv));
  const __m512d hi = bias_half_away(_mm512_mul_pd(
      _mm512_cvtps_pd(_mm512_extractf32x8_ps(vf, 1)), vinv));
  return _mm512_inserti32x8(
      _mm512_castsi256_si512(_mm512_cvttpd_epi32(lo)),
      _mm512_cvttpd_epi32(hi), 1);
}

/// float(c[i] * step) for 16 int32 codes.
inline __m512 dequantize16(__m512i c, __m512d vstep) noexcept {
  const __m256 lo = _mm512_cvtpd_ps(_mm512_mul_pd(
      _mm512_cvtepi32_pd(_mm512_castsi512_si256(c)), vstep));
  const __m256 hi = _mm512_cvtpd_ps(_mm512_mul_pd(
      _mm512_cvtepi32_pd(_mm512_extracti32x8_epi32(c, 1)), vstep));
  return _mm512_insertf32x8(_mm512_castps256_ps512(lo), hi, 1);
}

void avx512_quantize_symbols(const float* in, std::size_t n, double inv,
                             std::uint32_t* sym) {
  const __m512d vinv = _mm512_set1_pd(inv);
  std::size_t i = 0;
  for (; i + 16 <= n; i += 16) {
    const __m512i codes = quantize16(_mm512_loadu_ps(in + i), vinv);
    _mm512_storeu_si512(sym + i, zigzag16(codes));
  }
  for (; i < n; ++i) {
    sym[i] = zigzag_encode32(
        round_code_checked(static_cast<double>(in[i]) * inv));
  }
}

void avx512_quantize_codes(const float* in, std::size_t n, double inv,
                           std::int32_t* out) {
  const __m512d vinv = _mm512_set1_pd(inv);
  std::size_t i = 0;
  for (; i + 16 <= n; i += 16) {
    _mm512_storeu_si512(out + i, quantize16(_mm512_loadu_ps(in + i), vinv));
  }
  for (; i < n; ++i) {
    out[i] = round_code_checked(static_cast<double>(in[i]) * inv);
  }
}

std::uint32_t avx512_max_zigzag(const std::int32_t* codes, std::size_t n) {
  __m512i vmax = _mm512_setzero_si512();
  std::size_t i = 0;
  for (; i + 16 <= n; i += 16) {
    const __m512i c = _mm512_loadu_si512(codes + i);
    vmax = _mm512_max_epu32(vmax, zigzag16(c));
  }
  std::uint32_t max_symbol = _mm512_reduce_max_epu32(vmax);
  for (; i < n; ++i) {
    max_symbol = std::max(max_symbol, zigzag_encode32(codes[i]));
  }
  return max_symbol;
}

void avx512_zigzag(const std::int32_t* codes, std::size_t n,
                   std::uint32_t* sym) {
  std::size_t i = 0;
  for (; i + 16 <= n; i += 16) {
    _mm512_storeu_si512(sym + i, zigzag16(_mm512_loadu_si512(codes + i)));
  }
  for (; i < n; ++i) sym[i] = zigzag_encode32(codes[i]);
}

void avx512_dequantize_codes(const std::int32_t* in, std::size_t n,
                             double step, float* out) {
  const __m512d vstep = _mm512_set1_pd(step);
  std::size_t i = 0;
  for (; i + 16 <= n; i += 16) {
    _mm512_storeu_ps(out + i,
                     dequantize16(_mm512_loadu_si512(in + i), vstep));
  }
  for (; i < n; ++i) {
    out[i] = static_cast<float>(static_cast<double>(in[i]) * step);
  }
}

void avx512_dequantize_symbols(const std::uint32_t* in, std::size_t n,
                               double step, float* out) {
  const __m512d vstep = _mm512_set1_pd(step);
  const __m512i vone = _mm512_set1_epi32(1);
  std::size_t i = 0;
  for (; i + 16 <= n; i += 16) {
    const __m512i s = _mm512_loadu_si512(in + i);
    // un-zigzag: (s >> 1) ^ -(s & 1)
    const __m512i c = _mm512_xor_si512(
        _mm512_srli_epi32(s, 1),
        _mm512_sub_epi32(_mm512_setzero_si512(), _mm512_and_si512(s, vone)));
    _mm512_storeu_ps(out + i, dequantize16(c, vstep));
  }
  for (; i < n; ++i) {
    out[i] = static_cast<float>(
        static_cast<double>(zigzag_decode32(in[i])) * step);
  }
}

void avx512_lorenzo_encode(const float* in, std::size_t n, std::size_t dim,
                           double step, float* rc, std::uint32_t* sym) {
  const KernelOps* o = avx2_ops();
  (o != nullptr ? o->lorenzo_encode
                : scalar_ops().lorenzo_encode)(in, n, dim, step, rc, sym);
}

void avx512_lorenzo_decode(const std::uint32_t* sym, std::size_t n,
                           std::size_t dim, double step, float* out) {
  const KernelOps* o = avx2_ops();
  (o != nullptr ? o->lorenzo_decode
                : scalar_ops().lorenzo_decode)(sym, n, dim, step, out);
}

}  // namespace

const KernelOps* avx512_ops() noexcept {
  static constexpr KernelOps table = {
      &avx512_quantize_symbols, &avx512_quantize_codes,
      &avx512_max_zigzag,       &avx512_zigzag,
      &avx512_dequantize_codes, &avx512_dequantize_symbols,
      &avx512_lorenzo_encode,   &avx512_lorenzo_decode,
  };
  return &table;
}

}  // namespace dlcomp::kernels::detail

#else  // missing one of F/BW/DQ/VL

namespace dlcomp::kernels::detail {
const KernelOps* avx512_ops() noexcept { return nullptr; }
}  // namespace dlcomp::kernels::detail

#endif
