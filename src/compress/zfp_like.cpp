#include "compress/zfp_like.hpp"

#include <array>
#include <cmath>
#include <vector>

#include "common/bitstream.hpp"
#include "common/timer.hpp"
#include "compress/format.hpp"

namespace dlcomp {

namespace {

constexpr std::size_t kBlock = ZfpLikeCompressor::kBlockValues;

/// Reversible integer Haar-style lifting over 4 coefficients. Sum/diff
/// pairs grow the magnitude by at most 2 bits across both levels; the
/// inverse is exact because s+d = 2a and s-d = 2b are always even.
/// Sums and differences go through uint64 so corrupted streams carrying
/// extreme coefficients wrap (two's complement) instead of hitting
/// signed-overflow UB; valid streams never overflow, so results there
/// are unchanged.
std::int64_t wrap_add(std::int64_t a, std::int64_t b) noexcept {
  return static_cast<std::int64_t>(static_cast<std::uint64_t>(a) +
                                   static_cast<std::uint64_t>(b));
}

std::int64_t wrap_sub(std::int64_t a, std::int64_t b) noexcept {
  return static_cast<std::int64_t>(static_cast<std::uint64_t>(a) -
                                   static_cast<std::uint64_t>(b));
}

void forward_lift(std::array<std::int64_t, kBlock>& v) noexcept {
  const std::int64_t s0 = wrap_add(v[0], v[1]);
  const std::int64_t d0 = wrap_sub(v[0], v[1]);
  const std::int64_t s1 = wrap_add(v[2], v[3]);
  const std::int64_t d1 = wrap_sub(v[2], v[3]);
  v[0] = wrap_add(s0, s1);  // low-pass
  v[1] = wrap_sub(s0, s1);
  v[2] = d0;
  v[3] = d1;
}

void inverse_lift(std::array<std::int64_t, kBlock>& v) noexcept {
  const std::int64_t s0 = wrap_add(v[0], v[1]) / 2;
  const std::int64_t s1 = wrap_sub(v[0], v[1]) / 2;
  const std::int64_t d0 = v[2];
  const std::int64_t d1 = v[3];
  v[0] = wrap_add(s0, d0) / 2;
  v[1] = wrap_sub(s0, d0) / 2;
  v[2] = wrap_add(s1, d1) / 2;
  v[3] = wrap_sub(s1, d1) / 2;
}

/// Width (bits) of the zigzag form of the widest value in a group.
unsigned group_width(std::span<const std::int64_t> values) noexcept {
  std::uint64_t max_symbol = 0;
  for (const auto v : values) {
    max_symbol = std::max(max_symbol, zigzag_encode(v));
  }
  return bit_width_for(max_symbol);
}

}  // namespace

CompressionStats ZfpLikeCompressor::compress(std::span<const float> input,
                                             const CompressParams& params,
                                             std::vector<std::byte>& out) const {
  WallTimer timer;
  const std::size_t start = out.size();
  const double eb = resolve_error_bound(input, params);

  StreamHeader header;
  header.codec = CodecId::kZfpLike;
  header.vector_dim = static_cast<std::uint16_t>(params.vector_dim);
  header.element_count = input.size();
  header.effective_error_bound = eb;
  const std::size_t patch_at = append_header(out, header);
  const std::size_t payload_start = out.size();

  if (!input.empty()) {
    BitWriter writer;
    // Quantization step: 2*eb total bin width keeps |x - x'| <= eb; the
    // lifting transform is exact on integers so no further error enters.
    const double inv_step = 1.0 / (2.0 * eb);

    for (std::size_t base = 0; base < input.size(); base += kBlock) {
      std::array<std::int64_t, kBlock> q{};
      const std::size_t count = std::min(kBlock, input.size() - base);
      bool all_zero = true;
      for (std::size_t i = 0; i < count; ++i) {
        q[i] = std::llround(static_cast<double>(input[base + i]) * inv_step);
        all_zero = all_zero && q[i] == 0;
      }
      if (all_zero) {
        // Empty-block shortcut (ZFP's all-zero group test).
        writer.write_bit(false);
        continue;
      }
      writer.write_bit(true);
      forward_lift(q);

      // Two width groups: the low-pass coefficient and the details.
      const unsigned low_bits = group_width({q.data(), 1});
      const unsigned detail_bits = group_width({q.data() + 1, kBlock - 1});
      writer.write(low_bits - 1, 6);    // widths in [1, 64]
      writer.write(detail_bits - 1, 6);
      writer.write(zigzag_encode(q[0]), low_bits);
      for (std::size_t i = 1; i < kBlock; ++i) {
        writer.write(zigzag_encode(q[i]), detail_bits);
      }
    }
    writer.finish_into(out);
  }

  patch_payload_bytes(out, patch_at, out.size() - payload_start);
  CompressionStats stats;
  stats.input_bytes = input.size_bytes();
  stats.output_bytes = out.size() - start;
  stats.seconds = timer.seconds();
  return stats;
}

double ZfpLikeCompressor::decompress(std::span<const std::byte> stream,
                                     std::span<float> out) const {
  WallTimer timer;
  std::span<const std::byte> payload;
  const StreamHeader header = parse_header(stream, payload);
  DLCOMP_CHECK(header.codec == CodecId::kZfpLike);
  DLCOMP_CHECK(out.size() == header.element_count);
  if (out.empty()) return timer.seconds();

  BitReader reader(payload);
  const double step = 2.0 * header.effective_error_bound;

  for (std::size_t base = 0; base < out.size(); base += kBlock) {
    const std::size_t count = std::min(kBlock, out.size() - base);
    if (!reader.read_bit()) {
      for (std::size_t i = 0; i < count; ++i) out[base + i] = 0.0f;
      continue;
    }
    const unsigned low_bits = static_cast<unsigned>(reader.read(6)) + 1;
    const unsigned detail_bits = static_cast<unsigned>(reader.read(6)) + 1;
    std::array<std::int64_t, kBlock> q{};
    q[0] = zigzag_decode(reader.read(low_bits));
    for (std::size_t i = 1; i < kBlock; ++i) {
      q[i] = zigzag_decode(reader.read(detail_bits));
    }
    inverse_lift(q);
    for (std::size_t i = 0; i < count; ++i) {
      out[base + i] = static_cast<float>(static_cast<double>(q[i]) * step);
    }
  }
  return timer.seconds();
}

}  // namespace dlcomp
