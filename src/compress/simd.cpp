#include "compress/simd.hpp"

#include <algorithm>
#include <cctype>
#include <cstdlib>
#include <string>

namespace dlcomp::simd {

Isa cpu_best() noexcept {
#if (defined(__x86_64__) || defined(_M_X64)) && \
    (defined(__GNUC__) || defined(__clang__))
  static const Isa best = [] {
    __builtin_cpu_init();
    if (__builtin_cpu_supports("avx512f") &&
        __builtin_cpu_supports("avx512bw") &&
        __builtin_cpu_supports("avx512dq") &&
        __builtin_cpu_supports("avx512vl")) {
      return Isa::kAvx512;
    }
    if (__builtin_cpu_supports("avx2")) return Isa::kAvx2;
    return Isa::kScalar;
  }();
  return best;
#else
  return Isa::kScalar;
#endif
}

Isa requested() noexcept {
  static const Isa resolved = [] {
    const Isa best = cpu_best();
    const char* env = std::getenv("DLCOMP_SIMD");
    if (env == nullptr || *env == '\0') return best;
    std::string v(env);
    std::transform(v.begin(), v.end(), v.begin(),
                   [](unsigned char c) { return std::tolower(c); });
    Isa want = best;  // unknown values keep the detected tier
    if (v == "scalar") want = Isa::kScalar;
    if (v == "avx2") want = Isa::kAvx2;
    if (v == "avx512") want = Isa::kAvx512;
    return std::min(want, best);
  }();
  return resolved;
}

std::string_view isa_name(Isa isa) noexcept {
  switch (isa) {
    case Isa::kAvx512:
      return "avx512";
    case Isa::kAvx2:
      return "avx2";
    case Isa::kScalar:
      break;
  }
  return "scalar";
}

}  // namespace dlcomp::simd
