#pragma once

/// \file workspace.hpp
/// Reusable scratch arena for the codec hot path. One `compress()` /
/// `decompress()` call needs code/symbol/reconstruction buffers, a symbol
/// histogram, a bit writer, a Huffman codec (tables included) and — for
/// the vector-LZ scan — a match-position hash table. Allocating those per
/// call dominated small-chunk codec time; a CompressionWorkspace owns all
/// of them and retains capacity across calls, so steady-state training /
/// serving iterations perform zero codec-path heap allocations.
///
/// Threading rules (see DESIGN.md "Codec hot path"):
///  - a workspace is single-owner: exactly one codec call uses it at a
///    time (calls may nest deliberately, e.g. hybrid hands its workspace
///    to its inner codecs — disjoint scratch members are documented
///    per accessor);
///  - subsystems that fan codec work across a ThreadPool hold a
///    WorkspacePool and take one lease per task: leases hand out distinct
///    workspaces, so pool threads never share scratch;
///  - the no-workspace Compressor entry points fall back to a per-thread
///    workspace (thread_local_workspace()), so legacy callers get the
///    allocation-free path automatically.
///
/// Accounting: grow_events() counts scratch (re)allocations and
/// capacity_bytes() reports the arena high-water mark, so tests and the
/// bench report can assert "no growth after warm-up".

#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <span>
#include <vector>

#include "common/bitstream.hpp"
#include "compress/histogram.hpp"
#include "compress/huffman_coding.hpp"

namespace dlcomp {

/// Open-addressed hash -> last-position table for the vector-LZ match
/// scan. Same observable semantics as an unordered_map keyed by the full
/// 64-bit hash (so streams stay byte-identical), but flat storage with
/// generation-stamped slots: reuse costs O(1), probing allocates nothing.
class MatchPositionTable {
 public:
  /// Readies the table for ~expected_keys inserts (load factor <= 0.5).
  /// Invalidates previous contents. Returns true if storage grew.
  bool prepare(std::size_t expected_keys);

  /// Returns the stored position for `key`, or nullptr.
  [[nodiscard]] const std::size_t* find(std::uint64_t key) const noexcept;

  /// Inserts or overwrites `key`'s position.
  void put(std::uint64_t key, std::size_t position) noexcept;

  [[nodiscard]] std::size_t capacity_bytes() const noexcept {
    return slots_.capacity() * sizeof(Slot);
  }

 private:
  struct Slot {
    std::uint64_t key = 0;
    std::size_t value = 0;
    std::uint32_t generation = 0;
  };
  [[nodiscard]] std::size_t probe(std::uint64_t key) const noexcept;

  std::vector<Slot> slots_;
  std::size_t mask_ = 0;
  std::uint32_t generation_ = 0;
};

/// The per-call scratch arena. Single-owner; see file comment.
class CompressionWorkspace {
 public:
  CompressionWorkspace() = default;
  CompressionWorkspace(const CompressionWorkspace&) = delete;
  CompressionWorkspace& operator=(const CompressionWorkspace&) = delete;
  CompressionWorkspace(CompressionWorkspace&&) = default;
  CompressionWorkspace& operator=(CompressionWorkspace&&) = default;

  /// Quantization-code scratch (vector-LZ literals, code-space decoders).
  std::span<std::int32_t> codes(std::size_t n) { return ensure(codes_, n); }

  /// Zigzag-symbol scratch (entropy-coder alphabet space).
  std::span<std::uint32_t> symbols(std::size_t n) { return ensure(symbols_, n); }

  /// Running-reconstruction scratch (Lorenzo prediction feedback).
  std::span<float> recon(std::size_t n) { return ensure(recon_, n); }

  /// Histogram for the entropy stage; kernels reset it before use.
  SymbolHistogram& histogram() noexcept { return histogram_; }

  /// Reusable Huffman codec (encode-side build or decode-side tables).
  HuffmanCodec& huffman() noexcept { return huffman_; }

  /// Bit writer for payload emission; callers reset() it before use.
  BitWriter& writer() noexcept { return writer_; }

  /// Vector-LZ match table.
  MatchPositionTable& match_table() noexcept { return match_table_; }

  /// Byte scratch streams for codecs that compare candidate encodings
  /// (hybrid holds its two candidates here while its inner codecs use the
  /// buffers above — the members are disjoint by construction).
  std::vector<std::byte>& stream_a() noexcept { return stream_a_; }
  std::vector<std::byte>& stream_b() noexcept { return stream_b_; }

  /// Byte scratch for *callers* of compress() that need a reusable output
  /// stream (e.g. the chunked compressor's per-task staging buffer) —
  /// never touched by the codecs themselves, so it cannot alias the
  /// candidate streams above.
  std::vector<std::byte>& caller_stream() noexcept { return caller_stream_; }

  /// Number of times any tracked scratch buffer had to (re)allocate.
  /// Flat after warm-up == the codec path stopped touching the heap.
  [[nodiscard]] std::uint64_t grow_events() const noexcept;

  /// Records a growth of a member the templates cannot observe (e.g. the
  /// match table's storage); called by the codecs that manage it.
  void note_grow_event() noexcept { ++grow_events_; }

  /// Current high-water heap capacity held by the arena (including the
  /// members grow_events() cannot observe directly, e.g. the writer).
  [[nodiscard]] std::size_t capacity_bytes() const noexcept;

 private:
  template <typename T>
  std::span<T> ensure(std::vector<T>& v, std::size_t n) {
    if (n > v.capacity()) ++grow_events_;
    v.resize(n);
    return {v.data(), n};
  }

  std::vector<std::int32_t> codes_;
  std::vector<std::uint32_t> symbols_;
  std::vector<float> recon_;
  SymbolHistogram histogram_;
  HuffmanCodec huffman_;
  BitWriter writer_;
  MatchPositionTable match_table_;
  std::vector<std::byte> stream_a_;
  std::vector<std::byte> stream_b_;
  std::vector<std::byte> caller_stream_;
  std::uint64_t grow_events_ = 0;

  friend class WorkspacePool;  // for grow-event attribution of match_table
};

/// Hands out one workspace per concurrent task. Pool-owned workspaces are
/// recycled through a free list, so after warm-up acquire/release is a
/// mutex hop plus pointer swap — no allocation, no sharing across pool
/// threads.
class WorkspacePool {
 public:
  WorkspacePool() = default;
  WorkspacePool(const WorkspacePool&) = delete;
  WorkspacePool& operator=(const WorkspacePool&) = delete;

  class Lease {
   public:
    explicit Lease(WorkspacePool& pool) : pool_(pool), ws_(pool.acquire()) {}
    ~Lease() { pool_.release(ws_); }
    Lease(const Lease&) = delete;
    Lease& operator=(const Lease&) = delete;

    CompressionWorkspace& operator*() const noexcept { return *ws_; }
    CompressionWorkspace* operator->() const noexcept { return ws_; }

   private:
    WorkspacePool& pool_;
    CompressionWorkspace* ws_;
  };

  /// Total grow events across every workspace ever handed out.
  [[nodiscard]] std::uint64_t grow_events() const;

  /// Total arena capacity across every workspace.
  [[nodiscard]] std::size_t capacity_bytes() const;

  /// Number of workspaces created so far (== peak concurrency seen).
  [[nodiscard]] std::size_t size() const;

 private:
  CompressionWorkspace* acquire();
  void release(CompressionWorkspace* ws);

  mutable std::mutex mutex_;
  std::vector<std::unique_ptr<CompressionWorkspace>> all_;
  std::vector<CompressionWorkspace*> free_;
};

/// Per-thread fallback workspace behind the no-workspace Compressor entry
/// points. Never shared across threads; do not hold a reference across a
/// call that might also use it (codecs only pass workspaces downward).
CompressionWorkspace& thread_local_workspace();

}  // namespace dlcomp
