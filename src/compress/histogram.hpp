#pragma once

/// \file histogram.hpp
/// Two-level symbol histogram used by the fused quantization kernels and
/// the table-driven Huffman builder. Quantization/Lorenzo codes cluster
/// tightly around zero after zigzag, so a small dense count array covers
/// essentially every symbol; an overflow map catches the rare outliers
/// (and the arbitrary-u32 alphabets of the byte-oriented codecs).
///
/// The dense array is reset by clearing only the prefix that was touched,
/// so a workspace-resident histogram costs O(distinct symbols) per chunk,
/// not O(table size).

#include <algorithm>
#include <cstdint>
#include <unordered_map>
#include <vector>

namespace dlcomp {

struct SymbolHistogram {
  /// Symbols below this count into `dense`; the rest go to `overflow`.
  static constexpr std::uint32_t kDenseLimit = 1u << 13;

  std::vector<std::uint64_t> dense;
  std::unordered_map<std::uint32_t, std::uint64_t> overflow;
  /// Exclusive upper bound of the dense slots touched since reset().
  std::uint32_t dense_used = 0;

  /// Clears counts, retaining capacity.
  void reset() {
    if (dense.size() != kDenseLimit) {
      dense.assign(kDenseLimit, 0);
    } else {
      std::fill(dense.begin(), dense.begin() + dense_used, 0);
    }
    dense_used = 0;
    overflow.clear();
  }

  void add(std::uint32_t symbol) {
    if (symbol < kDenseLimit) {
      ++dense[symbol];
      dense_used = std::max(dense_used, symbol + 1);
    } else {
      ++overflow[symbol];
    }
  }

  [[nodiscard]] bool empty() const noexcept {
    return dense_used == 0 && overflow.empty();
  }
};

}  // namespace dlcomp
