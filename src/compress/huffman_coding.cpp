#include "compress/huffman_coding.hpp"

#include <algorithm>
#include <cstring>

#include "common/error.hpp"

namespace dlcomp {

namespace {

constexpr std::uint8_t kMaxCodeLength = 32;

std::uint32_t bit_reverse(std::uint32_t value, unsigned bits) noexcept {
  std::uint32_t out = 0;
  for (unsigned i = 0; i < bits; ++i) {
    out = (out << 1) | (value & 1);
    value >>= 1;
  }
  return out;
}

}  // namespace

HuffmanCodec HuffmanCodec::build(std::span<const std::uint32_t> symbols) {
  DLCOMP_CHECK_MSG(!symbols.empty(), "cannot build Huffman codec from nothing");
  SymbolHistogram histogram;
  histogram.reset();
  for (const auto s : symbols) histogram.add(s);
  HuffmanCodec codec;
  codec.build_from_histogram_in_place(histogram);
  return codec;
}

HuffmanCodec HuffmanCodec::build_from_histogram(
    const std::unordered_map<std::uint32_t, std::uint64_t>& histogram) {
  DLCOMP_CHECK(!histogram.empty());
  HuffmanCodec codec;
  codec.pairs_.assign(histogram.begin(), histogram.end());
  // Deterministic build order regardless of hash-map iteration.
  std::sort(codec.pairs_.begin(), codec.pairs_.end());
  codec.build_from_pairs_in_place();
  return codec;
}

void HuffmanCodec::build_from_histogram_in_place(
    const SymbolHistogram& histogram) {
  DLCOMP_CHECK(!histogram.empty());
  pairs_.clear();
  for (std::uint32_t s = 0; s < histogram.dense_used; ++s) {
    if (histogram.dense[s] != 0) pairs_.emplace_back(s, histogram.dense[s]);
  }
  // Overflow symbols are all >= kDenseLimit, so appending them sorted
  // keeps the whole pair list sorted by symbol.
  const std::size_t overflow_at = pairs_.size();
  for (const auto& [sym, freq] : histogram.overflow) {
    pairs_.emplace_back(sym, freq);
  }
  std::sort(pairs_.begin() + static_cast<std::ptrdiff_t>(overflow_at),
            pairs_.end());
  build_from_pairs_in_place();
}

void HuffmanCodec::compute_lengths() {
  const std::size_t n = pairs_.size();
  lengths_.assign(n, 0);
  if (n == 1) {
    lengths_[0] = 1;
    return;
  }

  // Classic heap construction; push/pop sequences mirror the
  // priority_queue-based reference so tie-breaks (and therefore code
  // length assignments) are bit-identical to the original builder.
  auto cmp = [](const HeapNode& a, const HeapNode& b) {
    return a.freq > b.freq || (a.freq == b.freq && a.index > b.index);
  };
  heap_.clear();
  parent_.assign(2 * n - 1, -1);
  for (std::uint32_t i = 0; i < n; ++i) {
    heap_.push_back({pairs_[i].second, i});
    std::push_heap(heap_.begin(), heap_.end(), cmp);
  }
  std::uint32_t next_id = static_cast<std::uint32_t>(n);
  while (heap_.size() > 1) {
    std::pop_heap(heap_.begin(), heap_.end(), cmp);
    const HeapNode a = heap_.back();
    heap_.pop_back();
    std::pop_heap(heap_.begin(), heap_.end(), cmp);
    const HeapNode b = heap_.back();
    heap_.pop_back();
    parent_[a.index] = static_cast<std::int32_t>(next_id);
    parent_[b.index] = static_cast<std::int32_t>(next_id);
    heap_.push_back({a.freq + b.freq, next_id});
    std::push_heap(heap_.begin(), heap_.end(), cmp);
    ++next_id;
  }

  for (std::size_t i = 0; i < n; ++i) {
    std::uint32_t depth = 0;
    for (std::int32_t p = parent_[i]; p != -1;
         p = parent_[static_cast<std::size_t>(p)]) {
      ++depth;
    }
    lengths_[i] = static_cast<std::uint8_t>(depth);
  }
}

void HuffmanCodec::build_from_pairs_in_place() {
  DLCOMP_CHECK(!pairs_.empty());
  compute_lengths();
  // Length-limit by flattening the histogram until the tree fits. With
  // 32-level budget this triggers only on adversarial distributions.
  // The original frequencies are stashed first: encode() pays
  // length x *original* count, so the exact-size accounting below must
  // not see the flattened values.
  original_freqs_.clear();
  while (*std::max_element(lengths_.begin(), lengths_.end()) > kMaxCodeLength) {
    if (original_freqs_.empty()) {
      original_freqs_.reserve(pairs_.size());
      for (const auto& [sym, freq] : pairs_) original_freqs_.push_back(freq);
    }
    for (auto& [sym, freq] : pairs_) freq = freq / 2 + 1;
    compute_lengths();
  }

  // Canonical order: (length, symbol).
  order_.resize(pairs_.size());
  for (std::uint32_t i = 0; i < order_.size(); ++i) order_[i] = i;
  std::sort(order_.begin(), order_.end(), [&](std::uint32_t a, std::uint32_t b) {
    if (lengths_[a] != lengths_[b]) return lengths_[a] < lengths_[b];
    return pairs_[a].first < pairs_[b].first;
  });

  canonical_symbols_.clear();
  canonical_symbols_.reserve(pairs_.size());
  canonical_lengths_.clear();
  canonical_lengths_.reserve(pairs_.size());
  double weighted_bits = 0.0;
  double total_freq = 0.0;
  std::uint64_t payload_bits = 0;
  for (const std::uint32_t i : order_) {
    canonical_symbols_.push_back(pairs_[i].first);
    canonical_lengths_.push_back(lengths_[i]);
    // mean_bits_ keeps the flattened-frequency weighting (pre-overhaul
    // behavior); the exact payload count uses the original frequencies,
    // which is what encode() will actually emit.
    weighted_bits += static_cast<double>(lengths_[i]) *
                     static_cast<double>(pairs_[i].second);
    total_freq += static_cast<double>(pairs_[i].second);
    const std::uint64_t true_freq =
        original_freqs_.empty() ? pairs_[i].second : original_freqs_[i];
    payload_bits += static_cast<std::uint64_t>(lengths_[i]) * true_freq;
  }
  mean_bits_ = total_freq > 0.0 ? weighted_bits / total_freq : 0.0;
  build_payload_bits_ = payload_bits;
  finalize_canonical(/*build_encoder=*/true);
}

void HuffmanCodec::finalize_canonical(bool build_encoder) {
  max_length_ = canonical_lengths_.empty() ? 0 : canonical_lengths_.back();
  DLCOMP_CHECK(max_length_ <= kMaxCodeLength);

  count_.assign(max_length_ + 1u, 0);
  for (const auto len : canonical_lengths_) ++count_[len];
  DLCOMP_CHECK_MSG(count_.size() < 2 || count_[0] == 0,
                   "zero-length Huffman code in non-trivial alphabet");

  first_code_.assign(max_length_ + 1u, 0);
  first_index_.assign(max_length_ + 1u, 0);
  std::uint32_t code = 0;
  std::uint32_t index = 0;
  for (std::uint32_t len = 1; len <= max_length_; ++len) {
    code <<= 1;
    first_code_[len] = code;
    first_index_[len] = index;
    code += count_[len];
    index += count_[len];
  }

  // ---- First-level decode LUT: index = next lut_bits_ input bits
  // (LSB-first, i.e. the bit-reversed canonical prefix); entries cover
  // every code no longer than the LUT, replicated across the free high
  // bits. Longer codes leave length 0 and take the canonical slow path.
  lut_bits_ = std::min<unsigned>(kMaxLutBits, max_length_);
  lut_.assign(std::size_t{1} << lut_bits_, LutEntry{});
  for (std::size_t i = 0; i < canonical_symbols_.size(); ++i) {
    const std::uint8_t len = canonical_lengths_[i];
    if (len > lut_bits_) break;  // canonical order: lengths non-decreasing
    const std::uint32_t canonical_code =
        first_code_[len] +
        (static_cast<std::uint32_t>(i) - first_index_[len]);
    const std::uint32_t reversed = bit_reverse(canonical_code, len);
    const std::size_t stride = std::size_t{1} << len;
    for (std::size_t fill = reversed; fill < lut_.size(); fill += stride) {
      lut_[fill] = {canonical_symbols_[i], len};
    }
  }

  // ---- Encode table: dense array for compact alphabets (the quantizer
  // regime), hash map for sparse ones. Decode-only codecs skip both.
  encoder_ready_ = build_encoder;
  encode_is_dense_ = false;
  if (!build_encoder) {
    encode_dense_.clear();
    encode_map_.clear();
    return;
  }
  std::uint32_t max_symbol = 0;
  for (const auto sym : canonical_symbols_) {
    max_symbol = std::max(max_symbol, sym);
  }
  encode_is_dense_ = max_symbol < kDenseEncodeLimit;
  if (encode_is_dense_) {
    encode_map_.clear();
    encode_dense_.assign(max_symbol + 1u, CodeEntry{});
  } else {
    encode_dense_.clear();
    encode_map_.clear();
    encode_map_.reserve(canonical_symbols_.size() * 2);
  }
  std::vector<std::uint32_t>& next_code = order_;  // reuse scratch
  next_code.assign(first_code_.begin(), first_code_.end());
  for (std::size_t i = 0; i < canonical_symbols_.size(); ++i) {
    const std::uint8_t len = canonical_lengths_[i];
    const std::uint32_t assigned = next_code[len]++;
    const CodeEntry entry{bit_reverse(assigned, len), len};
    if (encode_is_dense_) {
      encode_dense_[canonical_symbols_[i]] = entry;
    } else {
      encode_map_[canonical_symbols_[i]] = entry;
    }
  }
}

std::size_t HuffmanCodec::serialized_table_bytes() const noexcept {
  auto varint_bytes = [](std::uint64_t value) {
    std::size_t bytes = 1;
    while (value >= 0x80) {
      value >>= 7;
      ++bytes;
    }
    return bytes;
  };
  std::size_t total = varint_bytes(canonical_symbols_.size());
  for (const auto sym : canonical_symbols_) total += varint_bytes(sym);
  return total + canonical_lengths_.size();
}

void HuffmanCodec::serialize_table(std::vector<std::byte>& out) const {
  append_varint(out, canonical_symbols_.size());
  for (const auto sym : canonical_symbols_) append_varint(out, sym);
  for (const auto len : canonical_lengths_) {
    out.push_back(static_cast<std::byte>(len));
  }
}

HuffmanCodec HuffmanCodec::deserialize_table(ByteReader& reader) {
  HuffmanCodec codec;
  codec.deserialize_table_in_place(reader);
  return codec;
}

void HuffmanCodec::deserialize_table_in_place(ByteReader& reader) {
  auto read_var = [&reader]() {
    std::uint64_t value = 0;
    unsigned shift = 0;
    for (;;) {
      const auto byte = std::to_integer<std::uint64_t>(reader.read<std::byte>());
      value |= (byte & 0x7F) << shift;
      if ((byte & 0x80) == 0) break;
      shift += 7;
      if (shift >= 64) throw FormatError("varint too long in Huffman table");
    }
    return value;
  };

  const std::uint64_t n = read_var();
  if (n == 0) throw FormatError("empty Huffman table");
  canonical_symbols_.resize(n);
  for (auto& sym : canonical_symbols_) {
    sym = static_cast<std::uint32_t>(read_var());
  }
  canonical_lengths_.resize(n);
  for (auto& len : canonical_lengths_) {
    len = std::to_integer<std::uint8_t>(reader.read<std::byte>());
    if (len == 0 || len > kMaxCodeLength) {
      throw FormatError("invalid Huffman code length");
    }
  }
  // Canonical tables must be non-decreasing in length.
  for (std::size_t i = 1; i < canonical_lengths_.size(); ++i) {
    if (canonical_lengths_[i] < canonical_lengths_[i - 1]) {
      throw FormatError("non-canonical Huffman table");
    }
  }
  mean_bits_ = 0.0;
  build_payload_bits_ = 0;
  finalize_canonical(/*build_encoder=*/false);
}

const HuffmanCodec::CodeEntry& HuffmanCodec::lookup(
    std::uint32_t symbol) const {
  if (encode_is_dense_) {
    if (symbol < encode_dense_.size() && encode_dense_[symbol].length != 0) {
      return encode_dense_[symbol];
    }
  } else {
    const auto it = encode_map_.find(symbol);
    if (it != encode_map_.end()) return it->second;
  }
  std::ostringstream os;
  os << "symbol " << symbol << " not in Huffman alphabet";
  throw Error(os.str());
}

void HuffmanCodec::encode(std::span<const std::uint32_t> symbols,
                          BitWriter& writer) const {
  DLCOMP_CHECK_MSG(encoder_ready_,
                   "encode() on a decode-only (deserialized) Huffman codec");
  // Budget from the build histogram's mean rate, padded; if the estimate
  // is short the vector growth path still handles it.
  writer.reserve_bits(static_cast<std::size_t>(
      static_cast<double>(symbols.size()) * (mean_bits_ + 1.0) + 64.0));

  // Accumulate codes in a register and hand the BitWriter whole 64-bit
  // words; `used` stays < 64 between symbols.
  std::uint64_t acc = 0;
  unsigned used = 0;
  if (encode_is_dense_) {
    const CodeEntry* table = encode_dense_.data();
    const std::uint32_t limit = static_cast<std::uint32_t>(encode_dense_.size());
    for (const auto sym : symbols) {
      CodeEntry e{};
      if (sym < limit) e = table[sym];
      if (e.length == 0) (void)lookup(sym);  // throws with the old message
      acc |= static_cast<std::uint64_t>(e.write_form) << used;
      if (used + e.length >= 64) {
        writer.write(acc, 64);
        const unsigned consumed = 64 - used;
        acc = e.length > consumed
                  ? static_cast<std::uint64_t>(e.write_form) >> consumed
                  : 0;
        used = used + e.length - 64;
      } else {
        used += e.length;
      }
    }
  } else {
    for (const auto sym : symbols) {
      const CodeEntry& e = lookup(sym);
      acc |= static_cast<std::uint64_t>(e.write_form) << used;
      if (used + e.length >= 64) {
        writer.write(acc, 64);
        const unsigned consumed = 64 - used;
        acc = e.length > consumed
                  ? static_cast<std::uint64_t>(e.write_form) >> consumed
                  : 0;
        used = used + e.length - 64;
      } else {
        used += e.length;
      }
    }
  }
  if (used > 0) writer.write(acc, used);
}

void HuffmanCodec::encode_reference(std::span<const std::uint32_t> symbols,
                                    BitWriter& writer) const {
  DLCOMP_CHECK_MSG(encoder_ready_,
                   "encode() on a decode-only (deserialized) Huffman codec");
  for (const auto sym : symbols) {
    const CodeEntry& e = lookup(sym);
    writer.write(e.write_form, e.length);
  }
}

void HuffmanCodec::decode_one_slow(BitReader& reader,
                                   std::uint32_t& dst) const {
  std::uint32_t code = 0;
  std::uint32_t len = 0;
  for (;;) {
    code = (code << 1) | static_cast<std::uint32_t>(reader.read(1));
    ++len;
    if (len > max_length_) throw FormatError("corrupt Huffman stream");
    if (count_[len] != 0 && code < first_code_[len] + count_[len] &&
        code >= first_code_[len]) {
      dst = canonical_symbols_[first_index_[len] + (code - first_code_[len])];
      return;
    }
  }
}

void HuffmanCodec::decode(BitReader& reader,
                          std::span<std::uint32_t> out) const {
  // A default-constructed (workspace-resident, never built) codec has no
  // LUT; fail like a corrupt stream instead of indexing an empty table.
  if (max_length_ == 0 && !out.empty()) {
    throw FormatError("decode on an empty Huffman codec");
  }
  const unsigned lut_bits = lut_bits_;
  const std::uint64_t lut_mask = (std::uint64_t{1} << lut_bits) - 1;
  const LutEntry* lut = lut_.data();

  // Fast path: a local bit cursor over the raw bytes, one unaligned
  // 64-bit load per symbol, no per-symbol reader bookkeeping. Runs while
  // a full 8-byte load at the cursor stays in bounds; the stream tail
  // (and the rare codes longer than the LUT) drop to the checked path.
  // Every loaded word is fully in-bounds, so pos can never pass the end
  // inside the drain loop; the reader re-checks at the final sync.
  const std::byte* data = reader.data().data();
  const std::size_t data_bytes = reader.data().size();
  std::size_t pos = reader.bit_position();

  std::size_t i = 0;
  const std::size_t n = out.size();
  while (i < n) {
    const std::size_t byte_index = pos >> 3;
    if (byte_index + 8 > data_bytes) break;  // tail: checked path below
    // One unaligned load, then drain the register: with ~3-bit mean codes
    // a single word feeds 15+ symbols before a refill.
    std::uint64_t word;
    std::memcpy(&word, data + byte_index, 8);
    const unsigned skip = static_cast<unsigned>(pos & 7);
    word >>= skip;
    unsigned usable = 64 - skip;  // all real stream bits: load was in-bounds
    bool need_slow = false;
    while (i < n && usable >= lut_bits) {
      const LutEntry e = lut[word & lut_mask];
      if (e.length == 0) {
        need_slow = true;
        break;
      }
      word >>= e.length;
      usable -= e.length;
      pos += e.length;
      out[i] = e.symbol;
      ++i;
    }
    if (need_slow) {
      // Code longer than the LUT (or corrupt prefix): canonical walk via
      // the reader, then resume the local cursor.
      reader.set_bit_position(pos);
      decode_one_slow(reader, out[i]);
      pos = reader.bit_position();
      ++i;
    }
  }
  reader.set_bit_position(pos);

  for (; i < n; ++i) {
    // Zero-padded peek: near the stream end the index's dead high bits
    // read as zero, which can only select an entry whose real bits are
    // all present (advance() still bounds-checks the consume).
    const std::size_t idx = static_cast<std::size_t>(reader.peek(lut_bits));
    const LutEntry e = lut[idx];
    if (e.length != 0) {
      reader.advance(e.length);
      out[i] = e.symbol;
    } else {
      decode_one_slow(reader, out[i]);
    }
  }
}

void HuffmanCodec::decode_reference(BitReader& reader,
                                    std::span<std::uint32_t> out) const {
  for (auto& dst : out) decode_one_slow(reader, dst);
}

std::size_t HuffmanCodec::capacity_bytes() const noexcept {
  return canonical_symbols_.capacity() * sizeof(std::uint32_t) +
         canonical_lengths_.capacity() +
         encode_dense_.capacity() * sizeof(CodeEntry) +
         first_code_.capacity() * sizeof(std::uint32_t) +
         first_index_.capacity() * sizeof(std::uint32_t) +
         count_.capacity() * sizeof(std::uint32_t) +
         lut_.capacity() * sizeof(LutEntry) +
         pairs_.capacity() * sizeof(pairs_[0]) +
         original_freqs_.capacity() * sizeof(std::uint64_t) +
         heap_.capacity() * sizeof(HeapNode) +
         parent_.capacity() * sizeof(std::int32_t) +
         lengths_.capacity() + order_.capacity() * sizeof(std::uint32_t);
}

}  // namespace dlcomp
