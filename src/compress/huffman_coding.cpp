#include "compress/huffman_coding.hpp"

#include <algorithm>
#include <queue>

#include "common/error.hpp"

namespace dlcomp {

namespace {

constexpr std::uint8_t kMaxCodeLength = 32;

std::uint64_t bit_reverse(std::uint64_t value, unsigned bits) noexcept {
  std::uint64_t out = 0;
  for (unsigned i = 0; i < bits; ++i) {
    out = (out << 1) | (value & 1);
    value >>= 1;
  }
  return out;
}

/// Computes Huffman code lengths for (symbol, freq) pairs via the classic
/// heap construction. Returns lengths parallel to `pairs`.
std::vector<std::uint8_t> huffman_lengths(
    const std::vector<std::pair<std::uint32_t, std::uint64_t>>& pairs) {
  const std::size_t n = pairs.size();
  if (n == 1) return {1};

  // Internal tree nodes; leaves are [0, n).
  struct Node {
    std::uint64_t freq;
    std::uint32_t index;  // node id
  };
  auto cmp = [](const Node& a, const Node& b) {
    // Tie-break on index for full determinism.
    return a.freq > b.freq || (a.freq == b.freq && a.index > b.index);
  };
  std::priority_queue<Node, std::vector<Node>, decltype(cmp)> heap(cmp);

  std::vector<std::int32_t> parent(2 * n - 1, -1);
  for (std::uint32_t i = 0; i < n; ++i) {
    heap.push({pairs[i].second, i});
  }
  std::uint32_t next_id = static_cast<std::uint32_t>(n);
  while (heap.size() > 1) {
    const Node a = heap.top();
    heap.pop();
    const Node b = heap.top();
    heap.pop();
    parent[a.index] = static_cast<std::int32_t>(next_id);
    parent[b.index] = static_cast<std::int32_t>(next_id);
    heap.push({a.freq + b.freq, next_id});
    ++next_id;
  }

  std::vector<std::uint8_t> lengths(n, 0);
  for (std::size_t i = 0; i < n; ++i) {
    std::uint32_t depth = 0;
    for (std::int32_t p = parent[i]; p != -1; p = parent[static_cast<std::size_t>(p)]) {
      ++depth;
    }
    lengths[i] = static_cast<std::uint8_t>(depth);
  }
  return lengths;
}

}  // namespace

HuffmanCodec HuffmanCodec::build(std::span<const std::uint32_t> symbols) {
  DLCOMP_CHECK_MSG(!symbols.empty(), "cannot build Huffman codec from nothing");
  std::unordered_map<std::uint32_t, std::uint64_t> histogram;
  histogram.reserve(1024);
  for (const auto s : symbols) ++histogram[s];
  return build_from_histogram(histogram);
}

HuffmanCodec HuffmanCodec::build_from_histogram(
    const std::unordered_map<std::uint32_t, std::uint64_t>& histogram) {
  DLCOMP_CHECK(!histogram.empty());

  std::vector<std::pair<std::uint32_t, std::uint64_t>> pairs(histogram.begin(),
                                                             histogram.end());
  // Deterministic build order regardless of hash-map iteration.
  std::sort(pairs.begin(), pairs.end());

  std::vector<std::uint8_t> lengths = huffman_lengths(pairs);
  // Length-limit by flattening the histogram until the tree fits. With
  // 32-level budget this triggers only on adversarial distributions.
  while (*std::max_element(lengths.begin(), lengths.end()) > kMaxCodeLength) {
    for (auto& [sym, freq] : pairs) freq = freq / 2 + 1;
    lengths = huffman_lengths(pairs);
  }

  HuffmanCodec codec;
  // Canonical order: (length, symbol).
  std::vector<std::size_t> order(pairs.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    if (lengths[a] != lengths[b]) return lengths[a] < lengths[b];
    return pairs[a].first < pairs[b].first;
  });

  codec.canonical_symbols_.reserve(pairs.size());
  std::vector<std::uint8_t> canonical_lengths;
  canonical_lengths.reserve(pairs.size());
  double weighted_bits = 0.0;
  double total_freq = 0.0;
  for (const std::size_t i : order) {
    codec.canonical_symbols_.push_back(pairs[i].first);
    canonical_lengths.push_back(lengths[i]);
    weighted_bits += static_cast<double>(lengths[i]) *
                     static_cast<double>(pairs[i].second);
    total_freq += static_cast<double>(pairs[i].second);
  }
  codec.mean_bits_ = total_freq > 0.0 ? weighted_bits / total_freq : 0.0;
  codec.finalize_canonical(std::move(canonical_lengths));
  return codec;
}

void HuffmanCodec::finalize_canonical(
    std::vector<std::uint8_t> lengths_by_canonical_index) {
  canonical_lengths_ = std::move(lengths_by_canonical_index);
  max_length_ = canonical_lengths_.empty() ? 0 : canonical_lengths_.back();
  DLCOMP_CHECK(max_length_ <= kMaxCodeLength);

  count_.assign(max_length_ + 1u, 0);
  for (const auto len : canonical_lengths_) ++count_[len];
  DLCOMP_CHECK_MSG(count_.size() < 2 || count_[0] == 0,
                   "zero-length Huffman code in non-trivial alphabet");

  first_code_.assign(max_length_ + 1u, 0);
  first_index_.assign(max_length_ + 1u, 0);
  std::uint32_t code = 0;
  std::uint32_t index = 0;
  for (std::uint32_t len = 1; len <= max_length_; ++len) {
    code <<= 1;
    first_code_[len] = code;
    first_index_[len] = index;
    code += count_[len];
    index += count_[len];
  }

  encode_table_.clear();
  encode_table_.reserve(canonical_symbols_.size() * 2);
  std::vector<std::uint32_t> next_code(first_code_);
  for (std::size_t i = 0; i < canonical_symbols_.size(); ++i) {
    const std::uint8_t len = canonical_lengths_[i];
    const std::uint32_t assigned = next_code[len]++;
    encode_table_[canonical_symbols_[i]] = {bit_reverse(assigned, len), len};
  }
}

void HuffmanCodec::serialize_table(std::vector<std::byte>& out) const {
  append_varint(out, canonical_symbols_.size());
  for (const auto sym : canonical_symbols_) append_varint(out, sym);
  for (const auto len : canonical_lengths_) {
    out.push_back(static_cast<std::byte>(len));
  }
}

HuffmanCodec HuffmanCodec::deserialize_table(ByteReader& reader) {
  auto read_var = [&reader]() {
    std::uint64_t value = 0;
    unsigned shift = 0;
    for (;;) {
      const auto byte = std::to_integer<std::uint64_t>(reader.read<std::byte>());
      value |= (byte & 0x7F) << shift;
      if ((byte & 0x80) == 0) break;
      shift += 7;
      if (shift >= 64) throw FormatError("varint too long in Huffman table");
    }
    return value;
  };

  const std::uint64_t n = read_var();
  if (n == 0) throw FormatError("empty Huffman table");
  HuffmanCodec codec;
  codec.canonical_symbols_.resize(n);
  for (auto& sym : codec.canonical_symbols_) {
    sym = static_cast<std::uint32_t>(read_var());
  }
  std::vector<std::uint8_t> lengths(n);
  for (auto& len : lengths) {
    len = std::to_integer<std::uint8_t>(reader.read<std::byte>());
    if (len == 0 || len > kMaxCodeLength) {
      throw FormatError("invalid Huffman code length");
    }
  }
  // Canonical tables must be non-decreasing in length.
  for (std::size_t i = 1; i < lengths.size(); ++i) {
    if (lengths[i] < lengths[i - 1]) {
      throw FormatError("non-canonical Huffman table");
    }
  }
  codec.finalize_canonical(std::move(lengths));
  return codec;
}

void HuffmanCodec::encode(std::span<const std::uint32_t> symbols,
                          BitWriter& writer) const {
  for (const auto sym : symbols) {
    const auto it = encode_table_.find(sym);
    DLCOMP_CHECK_MSG(it != encode_table_.end(),
                     "symbol " << sym << " not in Huffman alphabet");
    writer.write(it->second.write_form, it->second.length);
  }
}

void HuffmanCodec::decode(BitReader& reader, std::span<std::uint32_t> out) const {
  for (auto& dst : out) {
    std::uint32_t code = 0;
    std::uint32_t len = 0;
    for (;;) {
      code = (code << 1) | static_cast<std::uint32_t>(reader.read(1));
      ++len;
      if (len > max_length_) throw FormatError("corrupt Huffman stream");
      if (count_[len] != 0 && code < first_code_[len] + count_[len] &&
          code >= first_code_[len]) {
        dst = canonical_symbols_[first_index_[len] + (code - first_code_[len])];
        break;
      }
    }
  }
}

}  // namespace dlcomp
