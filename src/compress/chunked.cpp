#include "compress/chunked.hpp"

#include <algorithm>
#include <atomic>
#include <cstring>

#include "common/byte_io.hpp"
#include "common/error.hpp"
#include "common/timer.hpp"
#include "obs/metrics.hpp"

namespace dlcomp {

namespace {

/// "DLBK" little-endian; distinct from StreamHeader::kMagic ("DLCP") so
/// a container can never parse as a codec stream or vice versa.
constexpr std::uint32_t kBlockMagic = 0x4B424C44u;
constexpr std::uint8_t kBlockVersion = 1;
/// u32 magic | u8 version | u8 + u16 reserved | u64 element_count |
/// u64 block_elems | u32 block_count | u32 reserved.
constexpr std::size_t kBlockHeaderBytes = 32;

struct BlockHeader {
  std::uint64_t element_count = 0;
  std::uint64_t block_elems = 0;
  std::uint32_t block_count = 0;
};

BlockHeader parse_block_header(ByteReader& reader) {
  BlockHeader h;
  if (reader.read<std::uint32_t>() != kBlockMagic) {
    throw FormatError("bad block-container magic");
  }
  if (reader.read<std::uint8_t>() != kBlockVersion) {
    throw FormatError("unsupported block-container version");
  }
  (void)reader.read<std::uint8_t>();
  (void)reader.read<std::uint16_t>();
  h.element_count = reader.read<std::uint64_t>();
  h.block_elems = reader.read<std::uint64_t>();
  h.block_count = reader.read<std::uint32_t>();
  (void)reader.read<std::uint32_t>();
  if (h.block_elems == 0 || h.block_count < 2 ||
      h.element_count <= h.block_elems) {
    throw FormatError("block-container geometry invalid");
  }
  const std::uint64_t expected_blocks =
      (h.element_count + h.block_elems - 1) / h.block_elems;
  if (expected_blocks != h.block_count) {
    throw FormatError("block-container block count inconsistent");
  }
  return h;
}

}  // namespace

std::size_t worst_case_stream_bytes(std::size_t element_count) {
  // Headers are 32 bytes plus small codec-specific prefixes; payloads are
  // bounded by ~33/32 of raw size for the bit-packed codecs, by 9/8 for
  // LZSS, and by raw size + table for Huffman with a degenerate alphabet
  // (every symbol unique: <= 6 bytes of table per element plus 33-bit
  // codes). 4x raw + 1 KiB dominates every case.
  return 4 * element_count * sizeof(float) + 1024;
}

ChunkedBuffer ChunkedCompressor::compress_optimized(
    std::span<const ChunkSpec> chunks) const {
  WallTimer timer;
  ChunkedBuffer result;
  const std::size_t n = chunks.size();
  result.offsets.assign(n, 0);
  result.sizes.assign(n, 0);

  std::size_t capacity = 0;
  for (const auto& chunk : chunks) {
    capacity += worst_case_stream_bytes(chunk.data.size());
    result.total_input_bytes += chunk.data.size_bytes();
  }
  result.buffer.resize(capacity);

  // The GPU scheme: one kernel, each block claims its output range with
  // an atomic add once its compressed size is known. Stream scratch and
  // codec workspace come from the leased arena, so repeated calls stop
  // allocating once warm.
  std::atomic<std::size_t> cursor{0};
  auto compress_one = [&](std::size_t i) {
    WorkspacePool::Lease ws(workspaces_);
    std::vector<std::byte>& scratch = ws->caller_stream();
    scratch.clear();
    scratch.reserve(worst_case_stream_bytes(chunks[i].data.size()));
    codec_.compress(chunks[i].data, chunks[i].params, scratch, *ws);
    const std::size_t offset =
        cursor.fetch_add(scratch.size(), std::memory_order_relaxed);
    DLCOMP_CHECK(offset + scratch.size() <= result.buffer.size());
    std::memcpy(result.buffer.data() + offset, scratch.data(), scratch.size());
    result.offsets[i] = offset;
    result.sizes[i] = scratch.size();
  };

  if (pool_ != nullptr && n > 1) {
    pool_->parallel_for(0, n, 1,
                        [&](std::size_t lo, std::size_t hi) {
                          for (std::size_t i = lo; i < hi; ++i) compress_one(i);
                        });
  } else {
    for (std::size_t i = 0; i < n; ++i) compress_one(i);
  }

  result.buffer.resize(cursor.load());
  result.total_output_bytes = result.buffer.size();
  result.kernel_launches = 1;   // single fused kernel
  result.gathered_bytes = 0;    // wrote straight into the send buffer
  result.wall_seconds = timer.seconds();
  return result;
}

ChunkedBuffer ChunkedCompressor::compress_naive(
    std::span<const ChunkSpec> chunks) const {
  WallTimer timer;
  ChunkedBuffer result;
  const std::size_t n = chunks.size();
  result.offsets.reserve(n);
  result.sizes.reserve(n);

  // One kernel per chunk, each into its own allocation...
  std::vector<std::vector<std::byte>> pieces(n);
  for (std::size_t i = 0; i < n; ++i) {
    codec_.compress(chunks[i].data, chunks[i].params, pieces[i]);
    result.total_input_bytes += chunks[i].data.size_bytes();
  }

  // ...then a gather pass copies them into the contiguous send buffer.
  std::size_t total = 0;
  for (const auto& piece : pieces) total += piece.size();
  result.buffer.resize(total);
  std::size_t offset = 0;
  for (std::size_t i = 0; i < n; ++i) {
    std::memcpy(result.buffer.data() + offset, pieces[i].data(),
                pieces[i].size());
    result.offsets.push_back(offset);
    result.sizes.push_back(pieces[i].size());
    offset += pieces[i].size();
  }

  result.total_output_bytes = total;
  result.kernel_launches = n;       // one launch per chunk
  result.gathered_bytes = total;    // every compressed byte copied once
  result.wall_seconds = timer.seconds();
  return result;
}

double ChunkedCompressor::decompress(
    const ChunkedBuffer& packed,
    std::span<const std::span<float>> outputs) const {
  return decompress(packed.buffer, packed.offsets, packed.sizes, outputs);
}

double ChunkedCompressor::decompress(
    std::span<const std::byte> buffer, std::span<const std::size_t> offsets,
    std::span<const std::size_t> sizes,
    std::span<const std::span<float>> outputs) const {
  DLCOMP_CHECK(offsets.size() == sizes.size());
  DLCOMP_CHECK(outputs.size() == offsets.size());
  WallTimer timer;
  const std::size_t n = offsets.size();

  auto decompress_one = [&](std::size_t i) {
    WorkspacePool::Lease ws(workspaces_);
    codec_.decompress(buffer.subspan(offsets[i], sizes[i]), outputs[i], *ws);
  };

  if (pool_ != nullptr && n > 1) {
    pool_->parallel_for(0, n, 1,
                        [&](std::size_t lo, std::size_t hi) {
                          for (std::size_t i = lo; i < hi; ++i) decompress_one(i);
                        });
  } else {
    for (std::size_t i = 0; i < n; ++i) decompress_one(i);
  }
  return timer.seconds();
}

// ------------------------------------------------------------ BlockEngine

BlockEngine::BlockEngine(const Compressor& codec, ThreadPool* pool,
                         std::size_t block_elems)
    : codec_(codec), pool_(pool), block_elems_(block_elems) {
  DLCOMP_CHECK_MSG(block_elems_ > 0, "block size must be positive");
  // Fixed lane count: 4x the pool width matches parallel_for's split, so
  // every lane's contiguous task share lands on one pool block. Lane l
  // always processes the same tasks with the same workspace, which is
  // what makes grow events (not just output bytes) deterministic.
  const std::size_t lane_count =
      pool_ != nullptr ? std::max<std::size_t>(1, 4 * pool_->thread_count())
                       : 1;
  lanes_.reserve(lane_count);
  for (std::size_t l = 0; l < lane_count; ++l) {
    lanes_.push_back(std::make_unique<CompressionWorkspace>());
    ++grow_events_;
  }
  lane_errors_.resize(lane_count);
}

template <typename Body>
void BlockEngine::run_lanes(std::size_t count, const Body& body) {
  const std::size_t lane_count = lanes_.size();
  std::fill(lane_errors_.begin(), lane_errors_.end(), std::exception_ptr());
  auto run_lane = [&](std::size_t l) {
    const std::size_t begin = count * l / lane_count;
    const std::size_t end = count * (l + 1) / lane_count;
    try {
      for (std::size_t i = begin; i < end; ++i) body(i, *lanes_[l]);
    } catch (...) {
      lane_errors_[l] = std::current_exception();
    }
  };
  if (pool_ != nullptr && count > 1 && lane_count > 1) {
    pool_->parallel_for(0, lane_count, 1,
                        [&](std::size_t lo, std::size_t hi) {
                          for (std::size_t l = lo; l < hi; ++l) run_lane(l);
                        });
  } else {
    for (std::size_t l = 0; l < lane_count; ++l) run_lane(l);
  }
  for (const auto& error : lane_errors_) {
    if (error) std::rethrow_exception(error);
  }
}

void BlockEngine::compress_begin() {
  slots_.clear();
  tasks_.clear();
  pending_data_.clear();
  pending_params_.clear();
  pending_recon_.clear();
  staging_cursor_ = 0;
}

std::size_t BlockEngine::add_tensor(std::span<const float> data,
                                    const CompressParams& params,
                                    std::span<float> recon) {
  DLCOMP_CHECK_MSG(recon.empty() || recon.size() == data.size(),
                   "reconstruction span must match the input length");
  Slot slot;
  slot.first_task = tasks_.size();
  slot.element_count = data.size();

  // Range-relative bounds resolve over the whole tensor before the
  // split, so every block quantizes with the same step as a monolithic
  // encode would.
  CompressParams block_params = params;
  if (params.eb_mode == EbMode::kRangeRelative) {
    block_params.error_bound = resolve_error_bound(data, params);
    block_params.eb_mode = EbMode::kAbsolute;
  }

  // Blocks align to vector_dim so Lorenzo rows / vector-LZ patterns
  // never straddle a boundary.
  const std::size_t dim = std::max<std::size_t>(1, params.vector_dim);
  std::size_t block_elems = std::max(block_elems_ / dim * dim, dim);
  slot.blocked = data.size() > block_elems;
  slot.block_elems = block_elems;
  slot.task_count =
      slot.blocked ? (data.size() + block_elems - 1) / block_elems : 1;

  const std::size_t slots_cap = slots_.capacity();
  const std::size_t tasks_cap = tasks_.capacity();
  for (std::size_t b = 0; b < slot.task_count; ++b) {
    CompressTask task;
    task.slot = slots_.size();
    task.elem_begin = slot.blocked ? b * block_elems : 0;
    task.elem_count = slot.blocked ? std::min(block_elems,
                                              data.size() - task.elem_begin)
                                   : data.size();
    task.staging_offset = staging_cursor_;
    staging_cursor_ += worst_case_stream_bytes(task.elem_count);
    tasks_.push_back(task);
  }
  slots_.push_back(slot);
  pending_data_.push_back(data);
  pending_params_.push_back(block_params);
  pending_recon_.push_back(recon);
  note_grow(slots_cap, slots_.capacity());
  note_grow(tasks_cap, tasks_.capacity());
  return slots_.size() - 1;
}

void BlockEngine::compress_run() {
  const std::size_t staging_cap = staging_.capacity();
  staging_.resize(staging_cursor_);
  note_grow(staging_cap, staging_.capacity());

  run_lanes(tasks_.size(), [&](std::size_t i, CompressionWorkspace& ws) {
    CompressTask& task = tasks_[i];
    const std::span<const float> data =
        pending_data_[task.slot].subspan(task.elem_begin, task.elem_count);
    std::vector<std::byte>& scratch = ws.caller_stream();
    scratch.clear();
    codec_.compress(data, pending_params_[task.slot], scratch, ws);
    DLCOMP_CHECK(scratch.size() <= worst_case_stream_bytes(task.elem_count));
    std::memcpy(staging_.data() + task.staging_offset, scratch.data(),
                scratch.size());
    task.bytes = scratch.size();
    const std::span<float> recon = pending_recon_[task.slot];
    if (!recon.empty()) {
      codec_.decompress(scratch, recon.subspan(task.elem_begin,
                                               task.elem_count),
                        ws);
    }
  });
  blocks_compressed_ += tasks_.size();
  MetricsRegistry::global()
      .counter("dlcomp_codec_blocks_compressed_total")
      .add(tasks_.size());
  pending_data_.clear();
  pending_params_.clear();
  pending_recon_.clear();
}

std::size_t BlockEngine::stream_bytes(std::size_t slot_index) const {
  const Slot& slot = slots_.at(slot_index);
  std::size_t payload = 0;
  for (std::size_t b = 0; b < slot.task_count; ++b) {
    payload += tasks_[slot.first_task + b].bytes;
  }
  if (!slot.blocked) return payload;
  return kBlockHeaderBytes + slot.task_count * sizeof(std::uint64_t) + payload;
}

void BlockEngine::append_stream(std::size_t slot_index,
                                std::vector<std::byte>& out) const {
  const Slot& slot = slots_.at(slot_index);
  if (slot.blocked) {
    append_pod(out, kBlockMagic);
    append_pod(out, kBlockVersion);
    append_pod(out, std::uint8_t{0});
    append_pod(out, std::uint16_t{0});
    append_pod(out, static_cast<std::uint64_t>(slot.element_count));
    append_pod(out, static_cast<std::uint64_t>(slot.block_elems));
    append_pod(out, static_cast<std::uint32_t>(slot.task_count));
    append_pod(out, std::uint32_t{0});
    for (std::size_t b = 0; b < slot.task_count; ++b) {
      append_pod(out,
                 static_cast<std::uint64_t>(tasks_[slot.first_task + b].bytes));
    }
  }
  for (std::size_t b = 0; b < slot.task_count; ++b) {
    const CompressTask& task = tasks_[slot.first_task + b];
    const auto* p = staging_.data() + task.staging_offset;
    out.insert(out.end(), p, p + task.bytes);
  }
}

void BlockEngine::decompress_begin() { decode_tasks_.clear(); }

void BlockEngine::add_stream(std::span<const std::byte> stream,
                             std::span<float> out) {
  const std::size_t cap = decode_tasks_.capacity();
  if (!is_blocked(stream)) {
    decode_tasks_.push_back({stream, out});
    note_grow(cap, decode_tasks_.capacity());
    return;
  }
  ByteReader reader(stream);
  const BlockHeader h = parse_block_header(reader);
  if (h.element_count != out.size()) {
    throw FormatError("block-container element count mismatch");
  }
  std::size_t payload_bytes = 0;
  const std::size_t dir_at = reader.position();
  for (std::uint32_t b = 0; b < h.block_count; ++b) {
    payload_bytes += static_cast<std::size_t>(reader.read<std::uint64_t>());
  }
  if (reader.remaining() != payload_bytes) {
    throw FormatError("block-container directory inconsistent with payload");
  }
  ByteReader dir(stream.subspan(dir_at));
  std::size_t cursor = reader.position();
  std::size_t elem = 0;
  for (std::uint32_t b = 0; b < h.block_count; ++b) {
    const auto bytes = static_cast<std::size_t>(dir.read<std::uint64_t>());
    const std::size_t count = std::min<std::size_t>(
        h.block_elems, static_cast<std::size_t>(h.element_count) - elem);
    decode_tasks_.push_back(
        {stream.subspan(cursor, bytes), out.subspan(elem, count)});
    cursor += bytes;
    elem += count;
  }
  note_grow(cap, decode_tasks_.capacity());
}

void BlockEngine::decompress_run() {
  run_lanes(decode_tasks_.size(),
            [&](std::size_t i, CompressionWorkspace& ws) {
              const DecompressTask& task = decode_tasks_[i];
              codec_.decompress(task.stream, task.out, ws);
            });
  blocks_decompressed_ += decode_tasks_.size();
  MetricsRegistry::global()
      .counter("dlcomp_codec_blocks_decompressed_total")
      .add(decode_tasks_.size());
}

bool BlockEngine::is_blocked(std::span<const std::byte> stream) noexcept {
  if (stream.size() < sizeof(std::uint32_t)) return false;
  std::uint32_t magic = 0;
  std::memcpy(&magic, stream.data(), sizeof(magic));
  return magic == kBlockMagic;
}

std::size_t BlockEngine::blocked_element_count(
    std::span<const std::byte> stream) {
  ByteReader reader(stream);
  return static_cast<std::size_t>(parse_block_header(reader).element_count);
}

std::uint64_t BlockEngine::grow_events() const {
  std::uint64_t total = grow_events_;
  for (const auto& ws : lanes_) total += ws->grow_events();
  return total;
}

std::size_t BlockEngine::capacity_bytes() const {
  std::size_t total = staging_.capacity() +
                      slots_.capacity() * sizeof(Slot) +
                      tasks_.capacity() * sizeof(CompressTask) +
                      decode_tasks_.capacity() * sizeof(DecompressTask);
  for (const auto& ws : lanes_) total += ws->capacity_bytes();
  return total;
}

double blocked_decompress(const Compressor& codec,
                          std::span<const std::byte> stream,
                          std::span<float> out, CompressionWorkspace& ws) {
  if (!BlockEngine::is_blocked(stream)) {
    return codec.decompress(stream, out, ws);
  }
  WallTimer timer;
  ByteReader reader(stream);
  const BlockHeader h = parse_block_header(reader);
  if (h.element_count != out.size()) {
    throw FormatError("block-container element count mismatch");
  }
  std::size_t payload_bytes = 0;
  const std::size_t dir_at = reader.position();
  for (std::uint32_t b = 0; b < h.block_count; ++b) {
    payload_bytes += static_cast<std::size_t>(reader.read<std::uint64_t>());
  }
  if (reader.remaining() != payload_bytes) {
    throw FormatError("block-container directory inconsistent with payload");
  }
  ByteReader dir(stream.subspan(dir_at));
  std::size_t cursor = reader.position();
  std::size_t elem = 0;
  for (std::uint32_t b = 0; b < h.block_count; ++b) {
    const auto bytes = static_cast<std::size_t>(dir.read<std::uint64_t>());
    const std::size_t count = std::min<std::size_t>(
        h.block_elems, static_cast<std::size_t>(h.element_count) - elem);
    codec.decompress(stream.subspan(cursor, bytes), out.subspan(elem, count),
                     ws);
    cursor += bytes;
    elem += count;
  }
  return timer.seconds();
}

}  // namespace dlcomp
