#include "compress/chunked.hpp"

#include <atomic>
#include <cstring>

#include "common/error.hpp"
#include "common/timer.hpp"

namespace dlcomp {

std::size_t worst_case_stream_bytes(std::size_t element_count) {
  // Headers are 32 bytes plus small codec-specific prefixes; payloads are
  // bounded by ~33/32 of raw size for the bit-packed codecs, by 9/8 for
  // LZSS, and by raw size + table for Huffman with a degenerate alphabet
  // (every symbol unique: <= 6 bytes of table per element plus 33-bit
  // codes). 4x raw + 1 KiB dominates every case.
  return 4 * element_count * sizeof(float) + 1024;
}

ChunkedBuffer ChunkedCompressor::compress_optimized(
    std::span<const ChunkSpec> chunks) const {
  WallTimer timer;
  ChunkedBuffer result;
  const std::size_t n = chunks.size();
  result.offsets.assign(n, 0);
  result.sizes.assign(n, 0);

  std::size_t capacity = 0;
  for (const auto& chunk : chunks) {
    capacity += worst_case_stream_bytes(chunk.data.size());
    result.total_input_bytes += chunk.data.size_bytes();
  }
  result.buffer.resize(capacity);

  // The GPU scheme: one kernel, each block claims its output range with
  // an atomic add once its compressed size is known. Stream scratch and
  // codec workspace come from the leased arena, so repeated calls stop
  // allocating once warm.
  std::atomic<std::size_t> cursor{0};
  auto compress_one = [&](std::size_t i) {
    WorkspacePool::Lease ws(workspaces_);
    std::vector<std::byte>& scratch = ws->caller_stream();
    scratch.clear();
    scratch.reserve(worst_case_stream_bytes(chunks[i].data.size()));
    codec_.compress(chunks[i].data, chunks[i].params, scratch, *ws);
    const std::size_t offset =
        cursor.fetch_add(scratch.size(), std::memory_order_relaxed);
    DLCOMP_CHECK(offset + scratch.size() <= result.buffer.size());
    std::memcpy(result.buffer.data() + offset, scratch.data(), scratch.size());
    result.offsets[i] = offset;
    result.sizes[i] = scratch.size();
  };

  if (pool_ != nullptr && n > 1) {
    pool_->parallel_for(0, n, 1,
                        [&](std::size_t lo, std::size_t hi) {
                          for (std::size_t i = lo; i < hi; ++i) compress_one(i);
                        });
  } else {
    for (std::size_t i = 0; i < n; ++i) compress_one(i);
  }

  result.buffer.resize(cursor.load());
  result.total_output_bytes = result.buffer.size();
  result.kernel_launches = 1;   // single fused kernel
  result.gathered_bytes = 0;    // wrote straight into the send buffer
  result.wall_seconds = timer.seconds();
  return result;
}

ChunkedBuffer ChunkedCompressor::compress_naive(
    std::span<const ChunkSpec> chunks) const {
  WallTimer timer;
  ChunkedBuffer result;
  const std::size_t n = chunks.size();
  result.offsets.reserve(n);
  result.sizes.reserve(n);

  // One kernel per chunk, each into its own allocation...
  std::vector<std::vector<std::byte>> pieces(n);
  for (std::size_t i = 0; i < n; ++i) {
    codec_.compress(chunks[i].data, chunks[i].params, pieces[i]);
    result.total_input_bytes += chunks[i].data.size_bytes();
  }

  // ...then a gather pass copies them into the contiguous send buffer.
  std::size_t total = 0;
  for (const auto& piece : pieces) total += piece.size();
  result.buffer.resize(total);
  std::size_t offset = 0;
  for (std::size_t i = 0; i < n; ++i) {
    std::memcpy(result.buffer.data() + offset, pieces[i].data(),
                pieces[i].size());
    result.offsets.push_back(offset);
    result.sizes.push_back(pieces[i].size());
    offset += pieces[i].size();
  }

  result.total_output_bytes = total;
  result.kernel_launches = n;       // one launch per chunk
  result.gathered_bytes = total;    // every compressed byte copied once
  result.wall_seconds = timer.seconds();
  return result;
}

double ChunkedCompressor::decompress(
    const ChunkedBuffer& packed,
    std::span<const std::span<float>> outputs) const {
  return decompress(packed.buffer, packed.offsets, packed.sizes, outputs);
}

double ChunkedCompressor::decompress(
    std::span<const std::byte> buffer, std::span<const std::size_t> offsets,
    std::span<const std::size_t> sizes,
    std::span<const std::span<float>> outputs) const {
  DLCOMP_CHECK(offsets.size() == sizes.size());
  DLCOMP_CHECK(outputs.size() == offsets.size());
  WallTimer timer;
  const std::size_t n = offsets.size();

  auto decompress_one = [&](std::size_t i) {
    WorkspacePool::Lease ws(workspaces_);
    codec_.decompress(buffer.subspan(offsets[i], sizes[i]), outputs[i], *ws);
  };

  if (pool_ != nullptr && n > 1) {
    pool_->parallel_for(0, n, 1,
                        [&](std::size_t lo, std::size_t hi) {
                          for (std::size_t i = lo; i < hi; ++i) decompress_one(i);
                        });
  } else {
    for (std::size_t i = 0; i < n; ++i) decompress_one(i);
  }
  return timer.seconds();
}

}  // namespace dlcomp
