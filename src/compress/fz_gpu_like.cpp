#include "compress/fz_gpu_like.hpp"

#include <array>
#include <cstring>
#include <vector>

#include "common/bitstream.hpp"
#include "common/timer.hpp"
#include "compress/format.hpp"
#include "compress/kernels.hpp"
#include "compress/workspace.hpp"

namespace dlcomp {

namespace {

constexpr std::size_t kPlaneBytes = FzGpuLikeCompressor::kBlockValues / 8;
constexpr std::size_t kPlanes = 32;

/// Transposes one block of values into bit planes: plane[b] byte j bit i
/// = bit b of value (j*8 + i).
void bitshuffle_block(const std::uint32_t* values, std::size_t count,
                      std::array<std::array<std::uint8_t, kPlaneBytes>, kPlanes>& planes) {
  for (auto& plane : planes) plane.fill(0);
  for (std::size_t v = 0; v < count; ++v) {
    const std::uint32_t value = values[v];
    if (value == 0) continue;
    const std::size_t byte = v / 8;
    const std::uint8_t bit = static_cast<std::uint8_t>(1u << (v % 8));
    for (std::size_t b = 0; b < kPlanes; ++b) {
      if (value & (1u << b)) planes[b][byte] |= bit;
    }
  }
}

void unshuffle_block(
    const std::array<std::array<std::uint8_t, kPlaneBytes>, kPlanes>& planes,
    std::size_t count, std::uint32_t* values) {
  for (std::size_t v = 0; v < count; ++v) values[v] = 0;
  for (std::size_t b = 0; b < kPlanes; ++b) {
    const auto& plane = planes[b];
    for (std::size_t v = 0; v < count; ++v) {
      if (plane[v / 8] & (1u << (v % 8))) values[v] |= (1u << b);
    }
  }
}

}  // namespace

CompressionStats FzGpuLikeCompressor::compress(std::span<const float> input,
                                               const CompressParams& params,
                                               std::vector<std::byte>& out) const {
  return compress(input, params, out, thread_local_workspace());
}

CompressionStats FzGpuLikeCompressor::compress(std::span<const float> input,
                                               const CompressParams& params,
                                               std::vector<std::byte>& out,
                                               CompressionWorkspace& ws) const {
  WallTimer timer;
  const std::size_t start = out.size();
  const double eb = resolve_error_bound(input, params);

  StreamHeader header;
  header.codec = CodecId::kFzGpuLike;
  header.vector_dim = static_cast<std::uint16_t>(params.vector_dim);
  header.element_count = input.size();
  header.effective_error_bound = eb;
  const std::size_t patch_at = append_header(out, header);
  const std::size_t payload_start = out.size();

  if (!input.empty()) {
    const auto symbols = ws.symbols(input.size());
    kernels::quantize_to_symbols(input, eb, symbols, nullptr);

    std::array<std::array<std::uint8_t, kPlaneBytes>, kPlanes> planes;
    for (std::size_t base = 0; base < symbols.size(); base += kBlockValues) {
      const std::size_t count = std::min(kBlockValues, symbols.size() - base);
      bitshuffle_block(symbols.data() + base, count, planes);

      // Zero-plane suppression: 32-bit presence bitmap, then the raw
      // bytes of every non-zero plane.
      std::uint32_t bitmap = 0;
      for (std::size_t b = 0; b < kPlanes; ++b) {
        bool any = false;
        for (const auto byte : planes[b]) any = any || (byte != 0);
        if (any) bitmap |= (1u << b);
      }
      append_pod(out, bitmap);
      for (std::size_t b = 0; b < kPlanes; ++b) {
        if (bitmap & (1u << b)) {
          const auto* p = reinterpret_cast<const std::byte*>(planes[b].data());
          out.insert(out.end(), p, p + kPlaneBytes);
        }
      }
    }
  }

  patch_payload_bytes(out, patch_at, out.size() - payload_start);
  CompressionStats stats;
  stats.input_bytes = input.size_bytes();
  stats.output_bytes = out.size() - start;
  stats.seconds = timer.seconds();
  return stats;
}

double FzGpuLikeCompressor::decompress(std::span<const std::byte> stream,
                                       std::span<float> out) const {
  return decompress(stream, out, thread_local_workspace());
}

double FzGpuLikeCompressor::decompress(std::span<const std::byte> stream,
                                       std::span<float> out,
                                       CompressionWorkspace& ws) const {
  WallTimer timer;
  std::span<const std::byte> payload;
  const StreamHeader header = parse_header(stream, payload);
  DLCOMP_CHECK(header.codec == CodecId::kFzGpuLike);
  DLCOMP_CHECK(out.size() == header.element_count);
  if (out.empty()) return timer.seconds();

  ByteReader reader(payload);
  const auto symbols = ws.symbols(out.size());
  std::array<std::array<std::uint8_t, kPlaneBytes>, kPlanes> planes;
  for (std::size_t base = 0; base < symbols.size(); base += kBlockValues) {
    const std::size_t count = std::min(kBlockValues, symbols.size() - base);
    const auto bitmap = reader.read<std::uint32_t>();
    for (std::size_t b = 0; b < kPlanes; ++b) {
      if (bitmap & (1u << b)) {
        reader.read_span(std::span<std::uint8_t>(planes[b]));
      } else {
        planes[b].fill(0);
      }
    }
    unshuffle_block(planes, count, symbols.data() + base);
  }

  kernels::dequantize_symbols(symbols, header.effective_error_bound, out);
  return timer.seconds();
}

}  // namespace dlcomp
