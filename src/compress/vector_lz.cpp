#include "compress/vector_lz.hpp"

#include <cstring>
#include <vector>

#include "common/bitstream.hpp"
#include "common/timer.hpp"
#include "compress/format.hpp"
#include "compress/kernels.hpp"
#include "compress/workspace.hpp"

namespace dlcomp {

namespace {

std::uint64_t hash_codes(const std::int32_t* codes, std::size_t dim) noexcept {
  std::uint64_t h = 0xCBF29CE484222325ULL;
  for (std::size_t i = 0; i < dim; ++i) {
    h ^= static_cast<std::uint32_t>(codes[i]);
    h *= 0x100000001B3ULL;
  }
  return h;
}

bool codes_equal(const std::int32_t* a, const std::int32_t* b,
                 std::size_t dim) noexcept {
  return std::memcmp(a, b, dim * sizeof(std::int32_t)) == 0;
}

/// Walks the vector sequence finding matches; calls on_match(distance) or
/// on_literal(vector_index) per vector. Shared by the encoder and the
/// match-statistics helper. The match table replaces the old per-call
/// unordered_map (hash -> most recent position) with identical lookup
/// semantics, so emitted token sequences are unchanged.
template <typename OnMatch, typename OnLiteral>
void scan_vectors(std::span<const std::int32_t> codes, std::size_t dim,
                  std::size_t window_vectors, CompressionWorkspace& ws,
                  OnMatch&& on_match, OnLiteral&& on_literal) {
  const std::size_t vectors = codes.size() / dim;
  MatchPositionTable& last_pos = ws.match_table();
  if (last_pos.prepare(vectors)) ws.note_grow_event();

  for (std::size_t v = 0; v < vectors; ++v) {
    const std::int32_t* cur = codes.data() + v * dim;
    const std::uint64_t h = hash_codes(cur, dim);
    const std::size_t* candidate = last_pos.find(h);
    bool matched = false;
    if (candidate != nullptr) {
      const std::size_t distance = v - *candidate;
      if (distance <= window_vectors &&
          codes_equal(cur, codes.data() + *candidate * dim, dim)) {
        on_match(distance);
        matched = true;
      }
    }
    if (!matched) on_literal(v);
    last_pos.put(h, v);  // most recent occurrence wins (shortest distances)
  }
}

}  // namespace

CompressionStats VectorLzCompressor::compress(std::span<const float> input,
                                              const CompressParams& params,
                                              std::vector<std::byte>& out) const {
  return compress(input, params, out, thread_local_workspace());
}

CompressionStats VectorLzCompressor::compress(std::span<const float> input,
                                              const CompressParams& params,
                                              std::vector<std::byte>& out,
                                              CompressionWorkspace& ws) const {
  WallTimer timer;
  const std::size_t start = out.size();
  const double eb = resolve_error_bound(input, params);

  std::uint64_t max_symbol = 0;
  std::span<const std::int32_t> codes;
  if (!input.empty()) {
    const auto scratch = ws.codes(input.size());
    max_symbol = kernels::quantize_to_codes(input, eb, scratch);
    codes = scratch;
  }
  compress_with_codes(input.size(), eb, params, codes, max_symbol, out, ws);

  CompressionStats stats;
  stats.input_bytes = input.size_bytes();
  stats.output_bytes = out.size() - start;
  stats.seconds = timer.seconds();
  return stats;
}

void VectorLzCompressor::compress_with_codes(
    std::size_t element_count, double eb, const CompressParams& params,
    std::span<const std::int32_t> codes, std::uint64_t max_symbol,
    std::vector<std::byte>& out, CompressionWorkspace& ws) const {
  DLCOMP_CHECK_MSG(params.vector_dim > 0, "vector_dim must be positive");
  DLCOMP_CHECK_MSG(params.lz_window_vectors > 0, "window must be positive");
  DLCOMP_CHECK(codes.size() == element_count);

  StreamHeader header;
  header.codec = CodecId::kVectorLz;
  header.vector_dim = static_cast<std::uint16_t>(params.vector_dim);
  header.element_count = element_count;
  header.effective_error_bound = eb;
  const std::size_t patch_at = append_header(out, header);
  const std::size_t payload_start = out.size();

  if (element_count > 0) {
    // Fixed-width literal packing: width covers the largest zigzag code,
    // rounded up to whole bytes. Byte alignment mirrors GPULZ's
    // multi-byte token format (the paper's substrate): unmatched vectors
    // cost ~1 byte per element, so the ratio on match-free tables lands
    // near 4x -- the entropy coder's territory, exactly the per-table
    // contrast Table V reports.
    const unsigned literal_bits = ((bit_width_for(max_symbol) + 7) / 8) * 8;
    const unsigned distance_bits = bit_width_for(params.lz_window_vectors - 1);

    out.push_back(static_cast<std::byte>(literal_bits));
    append_varint(out, params.lz_window_vectors);

    const std::size_t dim = params.vector_dim;
    BitWriter& writer = ws.writer();
    writer.reset();
    writer.reserve_bits(element_count * (literal_bits + 1) / 2);
    scan_vectors(
        codes, dim, params.lz_window_vectors, ws,
        [&](std::size_t distance) {
          writer.write_bit(true);
          writer.write(distance - 1, distance_bits);
        },
        [&](std::size_t v) {
          writer.write_bit(false);
          const std::int32_t* vec = codes.data() + v * dim;
          for (std::size_t i = 0; i < dim; ++i) {
            writer.write(zigzag_encode32(vec[i]), literal_bits);
          }
        });

    // Tail elements that do not fill a whole vector are raw literals.
    const std::size_t tail_start = (codes.size() / dim) * dim;
    for (std::size_t i = tail_start; i < codes.size(); ++i) {
      writer.write(zigzag_encode32(codes[i]), literal_bits);
    }
    writer.finish_into(out);
  }

  patch_payload_bytes(out, patch_at, out.size() - payload_start);
}

double VectorLzCompressor::decompress(std::span<const std::byte> stream,
                                      std::span<float> out) const {
  return decompress(stream, out, thread_local_workspace());
}

double VectorLzCompressor::decompress(std::span<const std::byte> stream,
                                      std::span<float> out,
                                      CompressionWorkspace& ws) const {
  WallTimer timer;
  std::span<const std::byte> payload;
  const StreamHeader header = parse_header(stream, payload);
  DLCOMP_CHECK(header.codec == CodecId::kVectorLz);
  DLCOMP_CHECK(out.size() == header.element_count);
  if (out.empty()) return timer.seconds();

  std::size_t pos = 0;
  DLCOMP_CHECK(!payload.empty());
  const unsigned literal_bits = std::to_integer<unsigned>(payload[pos++]);
  const std::uint64_t window_vectors = read_varint(payload, pos);
  const unsigned distance_bits =
      bit_width_for(window_vectors > 0 ? window_vectors - 1 : 0);

  const std::size_t dim = header.vector_dim;
  DLCOMP_CHECK(dim > 0);
  const std::size_t vectors = out.size() / dim;

  const auto codes = ws.codes(out.size());
  BitReader reader(payload.subspan(pos));
  for (std::size_t v = 0; v < vectors; ++v) {
    std::int32_t* dst = codes.data() + v * dim;
    if (reader.read_bit()) {
      const std::size_t distance = static_cast<std::size_t>(reader.read(distance_bits)) + 1;
      if (distance > v) throw FormatError("vector-lz backref out of range");
      std::memcpy(dst, codes.data() + (v - distance) * dim,
                  dim * sizeof(std::int32_t));
    } else {
      for (std::size_t i = 0; i < dim; ++i) {
        dst[i] = static_cast<std::int32_t>(
            zigzag_decode(reader.read(literal_bits)));
      }
    }
  }
  for (std::size_t i = vectors * dim; i < codes.size(); ++i) {
    codes[i] = static_cast<std::int32_t>(zigzag_decode(reader.read(literal_bits)));
  }

  kernels::dequantize_codes(codes, header.effective_error_bound, out);
  return timer.seconds();
}

std::size_t VectorLzCompressor::count_matches(std::span<const float> input,
                                              const CompressParams& params) {
  if (input.empty()) return 0;
  const double eb = resolve_error_bound(input, params);
  CompressionWorkspace& ws = thread_local_workspace();
  const auto codes = ws.codes(input.size());
  kernels::quantize_to_codes(input, eb, codes);
  std::size_t matches = 0;
  scan_vectors(
      codes, params.vector_dim, params.lz_window_vectors, ws,
      [&](std::size_t) { ++matches; }, [](std::size_t) {});
  return matches;
}

}  // namespace dlcomp
