#pragma once

/// \file low_precision.hpp
/// Fixed-ratio low-precision baselines (the paper's FP16 and FP8
/// comparison points, Sec. IV-B). These are "compressors" with a constant
/// 2x / 4x payload ratio; their error is relative to magnitude, not
/// absolutely bounded, which is exactly the coarse-granularity limitation
/// the paper contrasts against.

#include "compress/compressor.hpp"

namespace dlcomp {

class Fp16Compressor final : public Compressor {
 public:
  [[nodiscard]] std::string_view name() const noexcept override { return "fp16"; }
  [[nodiscard]] bool lossy() const noexcept override { return true; }

  CompressionStats compress(std::span<const float> input,
                            const CompressParams& params,
                            std::vector<std::byte>& out) const override;

  double decompress(std::span<const std::byte> stream,
                    std::span<float> out) const override;
};

class Fp8Compressor final : public Compressor {
 public:
  [[nodiscard]] std::string_view name() const noexcept override { return "fp8"; }
  [[nodiscard]] bool lossy() const noexcept override { return true; }

  CompressionStats compress(std::span<const float> input,
                            const CompressParams& params,
                            std::vector<std::byte>& out) const override;

  double decompress(std::span<const std::byte> stream,
                    std::span<float> out) const override;
};

}  // namespace dlcomp
