#include "compress/kernels.hpp"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <limits>

#include "common/bitstream.hpp"
#include "common/error.hpp"
#include "compress/kernels_dispatch.hpp"
#include "obs/metrics.hpp"

namespace dlcomp::kernels {

namespace {

using detail::round_code;
using detail::round_code_checked;

/// One up-front range check replacing the reference's per-element branch:
/// scaled values are monotone in the input, so checking the input extrema
/// covers every element (the exact products the loop will compute). NaNs
/// hide from min/max, so a summing probe flags them separately (finite
/// floats cannot overflow the double accumulator into inf/NaN; inputs
/// containing inf fail the extrema check regardless) — the reference
/// rejected NaN per element, and the checked cast in the main loop
/// depends on that rejection.
void check_code_range(std::span<const float> input, double inv, double eb) {
  float lo = input[0];
  float hi = input[0];
  double nan_probe = 0.0;
  for (const float v : input) {
    lo = std::min(lo, v);
    hi = std::max(hi, v);
    nan_probe += static_cast<double>(v);
  }
  constexpr double kMin =
      static_cast<double>(std::numeric_limits<std::int32_t>::min());
  constexpr double kMax =
      static_cast<double>(std::numeric_limits<std::int32_t>::max());
  DLCOMP_CHECK_MSG(!std::isnan(nan_probe) &&
                       static_cast<double>(lo) * inv >= kMin &&
                       static_cast<double>(hi) * inv <= kMax,
                   "quantization code overflow: range [" << lo << ", " << hi
                                                         << "] eb " << eb);
}

void accumulate(std::span<const std::uint32_t> symbols,
                SymbolHistogram& hist) {
  hist.reset();
  for (const auto s : symbols) hist.add(s);
}

// ---------------------------------------------------------------------
// Scalar inner loops (the dispatch baseline). These are the loops the CI
// vectorization report check compiles standalone: keep them branch-free
// so gcc's "loop vectorized" remark stays greppable.

void scalar_quantize_symbols(const float* in, std::size_t n, double inv,
                             std::uint32_t* sym) {
  for (std::size_t i = 0; i < n; ++i) {
    const std::int32_t code =
        round_code_checked(static_cast<double>(in[i]) * inv);
    sym[i] = zigzag_encode32(code);
  }
}

void scalar_quantize_codes(const float* in, std::size_t n, double inv,
                           std::int32_t* out) {
  for (std::size_t i = 0; i < n; ++i) {
    out[i] = round_code_checked(static_cast<double>(in[i]) * inv);
  }
}

std::uint32_t scalar_max_zigzag(const std::int32_t* codes, std::size_t n) {
  std::uint32_t max_symbol = 0;
  for (std::size_t i = 0; i < n; ++i) {
    max_symbol = std::max(max_symbol, zigzag_encode32(codes[i]));
  }
  return max_symbol;
}

void scalar_zigzag(const std::int32_t* codes, std::size_t n,
                   std::uint32_t* sym) {
  for (std::size_t i = 0; i < n; ++i) sym[i] = zigzag_encode32(codes[i]);
}

void scalar_dequantize_codes(const std::int32_t* in, std::size_t n,
                             double step, float* out) {
  for (std::size_t i = 0; i < n; ++i) {
    out[i] = static_cast<float>(static_cast<double>(in[i]) * step);
  }
}

void scalar_dequantize_symbols(const std::uint32_t* in, std::size_t n,
                               double step, float* out) {
  for (std::size_t i = 0; i < n; ++i) {
    out[i] = static_cast<float>(
        static_cast<double>(zigzag_decode32(in[i])) * step);
  }
}

void scalar_lorenzo_encode(const float* in, std::size_t n, std::size_t dim,
                           double step, float* rc, std::uint32_t* sym) {
  // The explicit `+ 0.0 - 0.0` on the boundary predictors reproduces the
  // reference's west+north-northwest sum with absent neighbors as literal
  // zeros (an IEEE-visible difference for signed zeros), keeping recon
  // streams bit-identical.
  auto emit = [&](std::size_t idx, double pred) {
    const double residual = static_cast<double>(in[idx]) - pred;
    const std::int32_t code = round_code(residual / step);
    sym[idx] = zigzag_encode32(code);
    rc[idx] =
        static_cast<float>(pred + static_cast<double>(code) * step);
  };

  // ---- First row: west-only prediction.
  const std::size_t first_len = std::min(dim, n);
  emit(0, 0.0);
  for (std::size_t c = 1; c < first_len; ++c) {
    emit(c, (static_cast<double>(rc[c - 1]) + 0.0) - 0.0);
  }

  // ---- Remaining rows: full three-neighbor prediction, boundary cases
  // hoisted; the last row may be short, which the row length covers.
  auto emit_mid = [&](std::size_t base, std::size_t c) {
    const double pred = static_cast<double>(rc[base + c - 1]) +
                        static_cast<double>(rc[base + c - dim]) -
                        static_cast<double>(rc[base + c - dim - 1]);
    emit(base + c, pred);
  };
  auto emit_row_start = [&](std::size_t base) {
    emit(base, (0.0 + static_cast<double>(rc[base - dim])) - 0.0);
  };

  const std::size_t rows = (n + dim - 1) / dim;
  const std::size_t full_rows = n / dim;  // rows of exactly dim elements
  std::size_t r = 1;

  // Row pairs, second row lagging kLag columns behind the first: each
  // element still reads only finalized neighbors (so results stay
  // bit-identical to the reference order), but the two rows' serial
  // west-dependency chains become independent, which roughly doubles the
  // ILP through the divide on the critical path.
  constexpr std::size_t kLag = 4;
  if (dim > 2 * kLag) {
    for (; r + 1 < full_rows; r += 2) {
      const std::size_t a = r * dim;        // leading row
      const std::size_t b = (r + 1) * dim;  // lagging row
      emit_row_start(a);
      for (std::size_t c = 1; c < kLag; ++c) emit_mid(a, c);
      emit_mid(a, kLag);
      emit_row_start(b);
      for (std::size_t c = kLag + 1; c < dim; ++c) {
        emit_mid(a, c);
        emit_mid(b, c - kLag);
      }
      for (std::size_t c = dim - kLag; c < dim; ++c) emit_mid(b, c);
    }
  }

  // Leftover rows (odd count, short tail, or tiny dim): one at a time.
  for (; r < rows; ++r) {
    const std::size_t base = r * dim;
    const std::size_t len = std::min(dim, n - base);
    emit_row_start(base);
    for (std::size_t c = 1; c < len; ++c) emit_mid(base, c);
  }
}

void scalar_lorenzo_decode(const std::uint32_t* sym, std::size_t n,
                           std::size_t dim, double step, float* out) {
  auto value = [&](std::size_t idx, double pred) {
    out[idx] = static_cast<float>(
        pred +
        static_cast<double>(zigzag_decode32(sym[idx])) * step);
  };

  const std::size_t first_len = std::min(dim, n);
  value(0, 0.0);
  for (std::size_t c = 1; c < first_len; ++c) {
    value(c, (static_cast<double>(out[c - 1]) + 0.0) - 0.0);
  }

  const std::size_t rows = (n + dim - 1) / dim;
  for (std::size_t r = 1; r < rows; ++r) {
    const std::size_t base = r * dim;
    const std::size_t len = std::min(dim, n - base);
    const float* up = out + base - dim;
    value(base, (0.0 + static_cast<double>(up[0])) - 0.0);
    for (std::size_t c = 1; c < len; ++c) {
      const double pred = static_cast<double>(out[base + c - 1]) +
                          static_cast<double>(up[c]) -
                          static_cast<double>(up[c - 1]);
      value(base + c, pred);
    }
  }
}

// ---------------------------------------------------------------------
// Dispatch: one atomic table pointer, resolved from simd::requested()
// stepped down past variants this binary does not carry. Relaxed loads
// are fine — the table contents are immutable statics and the pointer is
// published before any kernel result escapes a thread.

std::atomic<const detail::KernelOps*> g_active_ops{nullptr};
std::atomic<int> g_active_isa{-1};

/// Publishes the dispatched tier (0 scalar, 1 AVX2, 2 AVX-512) to the
/// metrics plane so /metrics and run manifests record which code path a
/// run actually exercised.
void publish_isa_gauge(simd::Isa isa) {
  MetricsRegistry::global()
      .gauge("dlcomp_simd_isa_level")
      .set(static_cast<double>(static_cast<int>(isa)));
}

const detail::KernelOps& resolve_ops() noexcept {
  simd::Isa isa = simd::requested();
  const detail::KernelOps* ops = detail::ops_for(isa);
  while (ops == nullptr && isa != simd::Isa::kScalar) {
    isa = static_cast<simd::Isa>(static_cast<int>(isa) - 1);
    ops = detail::ops_for(isa);
  }
  g_active_isa.store(static_cast<int>(isa), std::memory_order_relaxed);
  g_active_ops.store(ops, std::memory_order_relaxed);
  publish_isa_gauge(isa);
  return *ops;
}

inline const detail::KernelOps& active_ops() noexcept {
  const detail::KernelOps* ops = g_active_ops.load(std::memory_order_relaxed);
  if (ops != nullptr) [[likely]] {
    return *ops;
  }
  return resolve_ops();
}

}  // namespace

namespace detail {

const KernelOps& scalar_ops() noexcept {
  static constexpr KernelOps table = {
      &scalar_quantize_symbols, &scalar_quantize_codes,
      &scalar_max_zigzag,       &scalar_zigzag,
      &scalar_dequantize_codes, &scalar_dequantize_symbols,
      &scalar_lorenzo_encode,   &scalar_lorenzo_decode,
  };
  return table;
}

const KernelOps* ops_for(simd::Isa isa) noexcept {
  switch (isa) {
    case simd::Isa::kAvx512:
      return avx512_ops();
    case simd::Isa::kAvx2:
      return avx2_ops();
    case simd::Isa::kScalar:
      break;
  }
  return &scalar_ops();
}

}  // namespace detail

simd::Isa dispatched_isa() noexcept {
  active_ops();  // force resolution
  return static_cast<simd::Isa>(g_active_isa.load(std::memory_order_relaxed));
}

bool force_isa_for_testing(simd::Isa isa) noexcept {
  if (isa > simd::cpu_best()) return false;
  const detail::KernelOps* ops = detail::ops_for(isa);
  if (ops == nullptr) return false;
  g_active_isa.store(static_cast<int>(isa), std::memory_order_relaxed);
  g_active_ops.store(ops, std::memory_order_relaxed);
  publish_isa_gauge(isa);
  return true;
}

void quantize_to_symbols(std::span<const float> input, double eb,
                         std::span<std::uint32_t> symbols,
                         SymbolHistogram* hist) {
  DLCOMP_CHECK(symbols.size() == input.size());
  DLCOMP_CHECK_MSG(eb > 0.0, "quantizer error bound must be positive");
  if (input.empty()) {
    if (hist != nullptr) hist->reset();
    return;
  }
  const double inv = 1.0 / (2.0 * eb);
  check_code_range(input, inv, eb);
  active_ops().quantize_symbols(input.data(), input.size(), inv,
                                symbols.data());
  if (hist != nullptr) accumulate(symbols, *hist);
}

std::uint64_t quantize_to_codes(std::span<const float> input, double eb,
                                std::span<std::int32_t> codes) {
  DLCOMP_CHECK(codes.size() == input.size());
  DLCOMP_CHECK_MSG(eb > 0.0, "quantizer error bound must be positive");
  if (input.empty()) return 0;
  const double inv = 1.0 / (2.0 * eb);
  check_code_range(input, inv, eb);
  const detail::KernelOps& ops = active_ops();
  ops.quantize_codes(input.data(), input.size(), inv, codes.data());
  return ops.max_zigzag(codes.data(), codes.size());
}

void codes_to_symbols(std::span<const std::int32_t> codes,
                      std::span<std::uint32_t> symbols, SymbolHistogram* hist) {
  DLCOMP_CHECK(symbols.size() == codes.size());
  if (!codes.empty()) {
    active_ops().zigzag(codes.data(), codes.size(), symbols.data());
  }
  if (hist != nullptr) accumulate(symbols, *hist);
}

void dequantize_codes(std::span<const std::int32_t> codes, double eb,
                      std::span<float> output) {
  DLCOMP_CHECK(output.size() == codes.size());
  if (codes.empty()) return;
  active_ops().dequantize_codes(codes.data(), codes.size(), 2.0 * eb,
                                output.data());
}

void dequantize_symbols(std::span<const std::uint32_t> symbols, double eb,
                        std::span<float> output) {
  DLCOMP_CHECK(output.size() == symbols.size());
  if (symbols.empty()) return;
  active_ops().dequantize_symbols(symbols.data(), symbols.size(), 2.0 * eb,
                                  output.data());
}

void lorenzo_encode_fused(std::span<const float> input, std::size_t dim,
                          double eb, std::span<float> reconstructed,
                          std::span<std::uint32_t> symbols,
                          SymbolHistogram* hist) {
  DLCOMP_CHECK(dim > 0);
  DLCOMP_CHECK(reconstructed.size() == input.size());
  DLCOMP_CHECK(symbols.size() == input.size());
  if (input.empty()) {
    if (hist != nullptr) hist->reset();
    return;
  }
  active_ops().lorenzo_encode(input.data(), input.size(), dim, 2.0 * eb,
                              reconstructed.data(), symbols.data());
  if (hist != nullptr) accumulate(symbols, *hist);
}

void lorenzo_decode_fused(std::span<const std::uint32_t> symbols,
                          std::size_t dim, double eb,
                          std::span<float> output) {
  DLCOMP_CHECK(dim > 0);
  DLCOMP_CHECK(symbols.size() == output.size());
  if (output.empty()) return;
  active_ops().lorenzo_decode(symbols.data(), output.size(), dim, 2.0 * eb,
                              output.data());
}

}  // namespace dlcomp::kernels
