#include "compress/kernels.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/bitstream.hpp"
#include "common/error.hpp"

namespace dlcomp::kernels {

namespace {

/// Round-half-away-from-zero without a libm call, clamped into int64 so
/// the cast is never UB even on garbage residuals (where the reference's
/// llround result was unspecified anyway). Bit-identical to llround for
/// in-range values; see the header's rounding note.
inline std::int32_t round_code(double t) noexcept {
  double biased = t + (t >= 0.0 ? 0.5 : -0.5);
  // The cold branch keeps the int64 cast defined on garbage residuals
  // (inf/NaN included) without putting clamp latencies on the Lorenzo
  // dependency chain; it never fires on data the range check or the
  // running reconstruction bounds.
  if (!(biased > -9.2e18 && biased < 9.2e18)) [[unlikely]] {
    biased = std::isnan(biased)
                 ? 0.0
                 : std::min(std::max(biased, -9.2e18), 9.2e18);
  }
  return static_cast<std::int32_t>(static_cast<std::int64_t>(biased));
}

/// Same rounding for values already guaranteed inside the int32 code
/// range (check_code_range ran): the narrow cast lets the compiler use a
/// packed double->int32 conversion, so the quantize loops vectorize.
inline std::int32_t round_code_checked(double t) noexcept {
  return static_cast<std::int32_t>(t + (t >= 0.0 ? 0.5 : -0.5));
}

/// One up-front range check replacing the reference's per-element branch:
/// scaled values are monotone in the input, so checking the input extrema
/// covers every element (the exact products the loop will compute). NaNs
/// hide from min/max, so a summing probe flags them separately (finite
/// floats cannot overflow the double accumulator into inf/NaN; inputs
/// containing inf fail the extrema check regardless) — the reference
/// rejected NaN per element, and the checked cast in the main loop
/// depends on that rejection.
void check_code_range(std::span<const float> input, double inv, double eb) {
  float lo = input[0];
  float hi = input[0];
  double nan_probe = 0.0;
  for (const float v : input) {
    lo = std::min(lo, v);
    hi = std::max(hi, v);
    nan_probe += static_cast<double>(v);
  }
  constexpr double kMin =
      static_cast<double>(std::numeric_limits<std::int32_t>::min());
  constexpr double kMax =
      static_cast<double>(std::numeric_limits<std::int32_t>::max());
  DLCOMP_CHECK_MSG(!std::isnan(nan_probe) &&
                       static_cast<double>(lo) * inv >= kMin &&
                       static_cast<double>(hi) * inv <= kMax,
                   "quantization code overflow: range [" << lo << ", " << hi
                                                         << "] eb " << eb);
}

void accumulate(std::span<const std::uint32_t> symbols,
                SymbolHistogram& hist) {
  hist.reset();
  for (const auto s : symbols) hist.add(s);
}

}  // namespace

void quantize_to_symbols(std::span<const float> input, double eb,
                         std::span<std::uint32_t> symbols,
                         SymbolHistogram* hist) {
  DLCOMP_CHECK(symbols.size() == input.size());
  DLCOMP_CHECK_MSG(eb > 0.0, "quantizer error bound must be positive");
  if (input.empty()) {
    if (hist != nullptr) hist->reset();
    return;
  }
  const double inv = 1.0 / (2.0 * eb);
  check_code_range(input, inv, eb);

  const float* in = input.data();
  std::uint32_t* sym = symbols.data();
  const std::size_t n = input.size();
  for (std::size_t i = 0; i < n; ++i) {
    const std::int32_t code =
        round_code_checked(static_cast<double>(in[i]) * inv);
    sym[i] = zigzag_encode32(code);
  }
  if (hist != nullptr) accumulate(symbols, *hist);
}

std::uint64_t quantize_to_codes(std::span<const float> input, double eb,
                                std::span<std::int32_t> codes) {
  DLCOMP_CHECK(codes.size() == input.size());
  DLCOMP_CHECK_MSG(eb > 0.0, "quantizer error bound must be positive");
  if (input.empty()) return 0;
  const double inv = 1.0 / (2.0 * eb);
  check_code_range(input, inv, eb);

  const float* in = input.data();
  std::int32_t* out = codes.data();
  const std::size_t n = input.size();
  for (std::size_t i = 0; i < n; ++i) {
    out[i] = round_code_checked(static_cast<double>(in[i]) * inv);
  }
  std::uint32_t max_symbol = 0;
  for (std::size_t i = 0; i < n; ++i) {
    max_symbol = std::max(max_symbol, zigzag_encode32(out[i]));
  }
  return max_symbol;
}

void codes_to_symbols(std::span<const std::int32_t> codes,
                      std::span<std::uint32_t> symbols, SymbolHistogram* hist) {
  DLCOMP_CHECK(symbols.size() == codes.size());
  const std::int32_t* in = codes.data();
  std::uint32_t* sym = symbols.data();
  const std::size_t n = codes.size();
  for (std::size_t i = 0; i < n; ++i) sym[i] = zigzag_encode32(in[i]);
  if (hist != nullptr) accumulate(symbols, *hist);
}

void dequantize_codes(std::span<const std::int32_t> codes, double eb,
                      std::span<float> output) {
  DLCOMP_CHECK(output.size() == codes.size());
  const double step = 2.0 * eb;
  const std::int32_t* in = codes.data();
  float* out = output.data();
  const std::size_t n = codes.size();
  for (std::size_t i = 0; i < n; ++i) {
    out[i] = static_cast<float>(static_cast<double>(in[i]) * step);
  }
}

void dequantize_symbols(std::span<const std::uint32_t> symbols, double eb,
                        std::span<float> output) {
  DLCOMP_CHECK(output.size() == symbols.size());
  const double step = 2.0 * eb;
  const std::uint32_t* in = symbols.data();
  float* out = output.data();
  const std::size_t n = symbols.size();
  for (std::size_t i = 0; i < n; ++i) {
    out[i] = static_cast<float>(
        static_cast<double>(zigzag_decode32(in[i])) * step);
  }
}

void lorenzo_encode_fused(std::span<const float> input, std::size_t dim,
                          double eb, std::span<float> reconstructed,
                          std::span<std::uint32_t> symbols,
                          SymbolHistogram* hist) {
  DLCOMP_CHECK(dim > 0);
  DLCOMP_CHECK(reconstructed.size() == input.size());
  DLCOMP_CHECK(symbols.size() == input.size());
  const double step = 2.0 * eb;
  const std::size_t n = input.size();
  if (n == 0) {
    if (hist != nullptr) hist->reset();
    return;
  }

  const float* in = input.data();
  float* rc = reconstructed.data();
  std::uint32_t* sym = symbols.data();

  // The explicit `+ 0.0 - 0.0` on the boundary predictors reproduces the
  // reference's west+north-northwest sum with absent neighbors as literal
  // zeros (an IEEE-visible difference for signed zeros), keeping recon
  // streams bit-identical.
  auto emit = [&](std::size_t idx, double pred) {
    const double residual = static_cast<double>(in[idx]) - pred;
    const std::int32_t code = round_code(residual / step);
    sym[idx] = zigzag_encode32(code);
    rc[idx] =
        static_cast<float>(pred + static_cast<double>(code) * step);
  };

  // ---- First row: west-only prediction.
  const std::size_t first_len = std::min(dim, n);
  emit(0, 0.0);
  for (std::size_t c = 1; c < first_len; ++c) {
    emit(c, (static_cast<double>(rc[c - 1]) + 0.0) - 0.0);
  }

  // ---- Remaining rows: full three-neighbor prediction, boundary cases
  // hoisted; the last row may be short, which the row length covers.
  auto emit_mid = [&](std::size_t base, std::size_t c) {
    const double pred = static_cast<double>(rc[base + c - 1]) +
                        static_cast<double>(rc[base + c - dim]) -
                        static_cast<double>(rc[base + c - dim - 1]);
    emit(base + c, pred);
  };
  auto emit_row_start = [&](std::size_t base) {
    emit(base, (0.0 + static_cast<double>(rc[base - dim])) - 0.0);
  };

  const std::size_t rows = (n + dim - 1) / dim;
  const std::size_t full_rows = n / dim;  // rows of exactly dim elements
  std::size_t r = 1;

  // Row pairs, second row lagging kLag columns behind the first: each
  // element still reads only finalized neighbors (so results stay
  // bit-identical to the reference order), but the two rows' serial
  // west-dependency chains become independent, which roughly doubles the
  // ILP through the divide on the critical path.
  constexpr std::size_t kLag = 4;
  if (dim > 2 * kLag) {
    for (; r + 1 < full_rows; r += 2) {
      const std::size_t a = r * dim;        // leading row
      const std::size_t b = (r + 1) * dim;  // lagging row
      emit_row_start(a);
      for (std::size_t c = 1; c < kLag; ++c) emit_mid(a, c);
      emit_mid(a, kLag);
      emit_row_start(b);
      for (std::size_t c = kLag + 1; c < dim; ++c) {
        emit_mid(a, c);
        emit_mid(b, c - kLag);
      }
      for (std::size_t c = dim - kLag; c < dim; ++c) emit_mid(b, c);
    }
  }

  // Leftover rows (odd count, short tail, or tiny dim): one at a time.
  for (; r < rows; ++r) {
    const std::size_t base = r * dim;
    const std::size_t len = std::min(dim, n - base);
    emit_row_start(base);
    for (std::size_t c = 1; c < len; ++c) emit_mid(base, c);
  }

  if (hist != nullptr) accumulate(symbols, *hist);
}

void lorenzo_decode_fused(std::span<const std::uint32_t> symbols,
                          std::size_t dim, double eb,
                          std::span<float> output) {
  DLCOMP_CHECK(dim > 0);
  DLCOMP_CHECK(symbols.size() == output.size());
  const double step = 2.0 * eb;
  const std::size_t n = output.size();
  if (n == 0) return;

  const std::uint32_t* sym = symbols.data();
  float* out = output.data();

  auto value = [&](std::size_t idx, double pred) {
    out[idx] = static_cast<float>(
        pred +
        static_cast<double>(zigzag_decode32(sym[idx])) * step);
  };

  const std::size_t first_len = std::min(dim, n);
  value(0, 0.0);
  for (std::size_t c = 1; c < first_len; ++c) {
    value(c, (static_cast<double>(out[c - 1]) + 0.0) - 0.0);
  }

  const std::size_t rows = (n + dim - 1) / dim;
  for (std::size_t r = 1; r < rows; ++r) {
    const std::size_t base = r * dim;
    const std::size_t len = std::min(dim, n - base);
    const float* up = out + base - dim;
    value(base, (0.0 + static_cast<double>(up[0])) - 0.0);
    for (std::size_t c = 1; c < len; ++c) {
      const double pred = static_cast<double>(out[base + c - 1]) +
                          static_cast<double>(up[c]) -
                          static_cast<double>(up[c - 1]);
      value(base + c, pred);
    }
  }
}

}  // namespace dlcomp::kernels
