#include "compress/paged.hpp"

#include <algorithm>
#include <cmath>
#include <cstring>

#include "common/error.hpp"
#include "compress/chunked.hpp"

namespace dlcomp {

PagedRowStore::PagedRowStore(const Matrix& rows, const PagedStoreConfig& config)
    : codec_(config.codec),
      params_(config.params),
      rows_(rows.rows()),
      dim_(rows.cols()),
      rows_per_page_(config.rows_per_page) {
  DLCOMP_CHECK(rows_ > 0 && dim_ > 0);
  DLCOMP_CHECK(rows_per_page_ > 0);
  params_.vector_dim = dim_;

  const std::size_t pages = (rows_ + rows_per_page_ - 1) / rows_per_page_;
  offsets_.reserve(pages);
  sizes_.reserve(pages);
  input_bytes_ = rows_ * dim_ * sizeof(float);

  if (codec_ == nullptr) {
    // Raw paging: page streams are the float bytes themselves.
    buffer_.resize(input_bytes_);
    std::memcpy(buffer_.data(), rows.data(), input_bytes_);
    for (std::size_t p = 0; p < pages; ++p) {
      offsets_.push_back(p * rows_per_page_ * dim_ * sizeof(float));
      sizes_.push_back(page_rows(p) * dim_ * sizeof(float));
    }
    return;
  }

  // Compressed paging: one BlockEngine batch over all pages (each page is
  // below the engine's block size, so streams are plain codec streams,
  // byte-identical to a serial Compressor::compress per page). The recon
  // span makes the engine hand back the reader-visible reconstruction of
  // each page during the same parallel pass, which is how the store knows
  // the at-rest error it will serve.
  BlockEngine engine(*codec_, config.pool);
  std::vector<float> recon(rows_ * dim_);
  engine.compress_begin();
  for (std::size_t p = 0; p < pages; ++p) {
    const std::size_t first = page_first_row(p) * dim_;
    const std::size_t count = page_rows(p) * dim_;
    engine.add_tensor(rows.flat().subspan(first, count), params_,
                      std::span<float>(recon).subspan(first, count));
  }
  engine.compress_run();

  std::size_t total = 0;
  for (std::size_t p = 0; p < pages; ++p) total += engine.stream_bytes(p);
  buffer_.reserve(total);
  for (std::size_t p = 0; p < pages; ++p) {
    offsets_.push_back(buffer_.size());
    engine.append_stream(p, buffer_);
    sizes_.push_back(buffer_.size() - offsets_.back());
  }

  const std::span<const float> flat = rows.flat();
  double max_err = 0.0;
  for (std::size_t i = 0; i < flat.size(); ++i) {
    max_err = std::max(
        max_err, static_cast<double>(std::fabs(flat[i] - recon[i])));
  }
  max_abs_error_ = max_err;
}

std::size_t PagedRowStore::page_rows(std::size_t p) const noexcept {
  const std::size_t first = p * rows_per_page_;
  return std::min(rows_per_page_, rows_ - first);
}

void PagedRowStore::load_page(std::size_t p, std::span<float> out,
                              CompressionWorkspace& ws) const {
  DLCOMP_CHECK(p < num_pages());
  DLCOMP_CHECK(out.size() == page_rows(p) * dim_);
  const std::span<const std::byte> stream{buffer_.data() + offsets_[p],
                                          sizes_[p]};
  if (codec_ == nullptr) {
    std::memcpy(out.data(), stream.data(), stream.size());
    return;
  }
  (void)blocked_decompress(*codec_, stream, out, ws);
}

}  // namespace dlcomp
