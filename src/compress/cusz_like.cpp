#include "compress/cusz_like.hpp"

#include <vector>

#include "common/timer.hpp"
#include "compress/format.hpp"
#include "compress/huffman_coding.hpp"
#include "compress/kernels.hpp"
#include "compress/reference_kernels.hpp"
#include "compress/workspace.hpp"

namespace dlcomp {

CompressionStats CuszLikeCompressor::compress(std::span<const float> input,
                                              const CompressParams& params,
                                              std::vector<std::byte>& out) const {
  return compress(input, params, out, thread_local_workspace());
}

CompressionStats CuszLikeCompressor::compress(std::span<const float> input,
                                              const CompressParams& params,
                                              std::vector<std::byte>& out,
                                              CompressionWorkspace& ws) const {
  DLCOMP_CHECK(params.vector_dim > 0);
  WallTimer timer;
  const std::size_t start = out.size();
  const double eb = resolve_error_bound(input, params);

  StreamHeader header;
  header.codec = CodecId::kCuszLike;
  header.vector_dim = static_cast<std::uint16_t>(params.vector_dim);
  header.element_count = input.size();
  header.effective_error_bound = eb;
  const std::size_t patch_at = append_header(out, header);
  const std::size_t payload_start = out.size();

  if (!input.empty()) {
    const auto symbols = ws.symbols(input.size());
    const auto recon = ws.recon(input.size());
    kernels::lorenzo_encode_fused(input, params.vector_dim, eb, recon,
                                  symbols, &ws.histogram());

    HuffmanCodec& codec = ws.huffman();
    codec.build_from_histogram_in_place(ws.histogram());
    codec.serialize_table(out);
    BitWriter& writer = ws.writer();
    writer.reset();
    codec.encode(symbols, writer);
    writer.finish_into(out);
  }

  patch_payload_bytes(out, patch_at, out.size() - payload_start);
  CompressionStats stats;
  stats.input_bytes = input.size_bytes();
  stats.output_bytes = out.size() - start;
  stats.seconds = timer.seconds();
  return stats;
}

double CuszLikeCompressor::decompress(std::span<const std::byte> stream,
                                      std::span<float> out) const {
  return decompress(stream, out, thread_local_workspace());
}

double CuszLikeCompressor::decompress(std::span<const std::byte> stream,
                                      std::span<float> out,
                                      CompressionWorkspace& ws) const {
  WallTimer timer;
  std::span<const std::byte> payload;
  const StreamHeader header = parse_header(stream, payload);
  DLCOMP_CHECK(header.codec == CodecId::kCuszLike);
  DLCOMP_CHECK(out.size() == header.element_count);
  if (out.empty()) return timer.seconds();

  ByteReader reader(payload);
  HuffmanCodec& codec = ws.huffman();
  codec.deserialize_table_in_place(reader);
  const auto symbols = ws.symbols(out.size());
  BitReader bits(payload.subspan(reader.position()));
  codec.decode(bits, symbols);

  kernels::lorenzo_decode_fused(symbols, header.vector_dim,
                                header.effective_error_bound, out);
  return timer.seconds();
}

std::vector<std::int32_t> CuszLikeCompressor::prediction_codes(
    std::span<const float> input, const CompressParams& params) {
  const double eb = resolve_error_bound(input, params);
  std::vector<std::int32_t> codes(input.size());
  std::vector<float> recon(input.size());
  reference::lorenzo_encode(input, params.vector_dim, eb, codes, recon);
  return codes;
}

}  // namespace dlcomp
