#include "compress/cusz_like.hpp"

#include <cmath>
#include <vector>

#include "common/timer.hpp"
#include "compress/format.hpp"
#include "compress/huffman_coding.hpp"
#include "compress/quantizer.hpp"

namespace dlcomp {

namespace {

/// Runs the 2-D Lorenzo predictor over a (rows x dim) grid, quantizing
/// residuals against the running reconstruction (compression must predict
/// from values the decompressor will actually have).
void lorenzo_encode(std::span<const float> input, std::size_t dim, double eb,
                    std::span<std::int32_t> codes,
                    std::span<float> reconstructed) {
  const double step = 2.0 * eb;
  const std::size_t n = input.size();
  auto recon_at = [&](std::size_t r, std::size_t c) -> double {
    const std::size_t idx = r * dim + c;
    return idx < n ? static_cast<double>(reconstructed[idx]) : 0.0;
  };

  const std::size_t rows = (n + dim - 1) / dim;
  for (std::size_t r = 0; r < rows; ++r) {
    for (std::size_t c = 0; c < dim; ++c) {
      const std::size_t idx = r * dim + c;
      if (idx >= n) break;
      const double west = c > 0 ? recon_at(r, c - 1) : 0.0;
      const double north = r > 0 ? recon_at(r - 1, c) : 0.0;
      const double northwest = (r > 0 && c > 0) ? recon_at(r - 1, c - 1) : 0.0;
      const double pred = west + north - northwest;
      const double residual = static_cast<double>(input[idx]) - pred;
      const auto code = static_cast<std::int32_t>(std::llround(residual / step));
      codes[idx] = code;
      reconstructed[idx] =
          static_cast<float>(pred + static_cast<double>(code) * step);
    }
  }
}

/// Inverse transform: rebuilds values from codes.
void lorenzo_decode(std::span<const std::int32_t> codes, std::size_t dim,
                    double eb, std::span<float> output) {
  const double step = 2.0 * eb;
  const std::size_t n = output.size();
  auto out_at = [&](std::size_t r, std::size_t c) -> double {
    const std::size_t idx = r * dim + c;
    return idx < n ? static_cast<double>(output[idx]) : 0.0;
  };

  const std::size_t rows = (n + dim - 1) / dim;
  for (std::size_t r = 0; r < rows; ++r) {
    for (std::size_t c = 0; c < dim; ++c) {
      const std::size_t idx = r * dim + c;
      if (idx >= n) break;
      const double west = c > 0 ? out_at(r, c - 1) : 0.0;
      const double north = r > 0 ? out_at(r - 1, c) : 0.0;
      const double northwest = (r > 0 && c > 0) ? out_at(r - 1, c - 1) : 0.0;
      const double pred = west + north - northwest;
      output[idx] =
          static_cast<float>(pred + static_cast<double>(codes[idx]) * step);
    }
  }
}

}  // namespace

CompressionStats CuszLikeCompressor::compress(std::span<const float> input,
                                              const CompressParams& params,
                                              std::vector<std::byte>& out) const {
  DLCOMP_CHECK(params.vector_dim > 0);
  WallTimer timer;
  const std::size_t start = out.size();
  const double eb = resolve_error_bound(input, params);

  StreamHeader header;
  header.codec = CodecId::kCuszLike;
  header.vector_dim = static_cast<std::uint16_t>(params.vector_dim);
  header.element_count = input.size();
  header.effective_error_bound = eb;
  const std::size_t patch_at = append_header(out, header);
  const std::size_t payload_start = out.size();

  if (!input.empty()) {
    std::vector<std::int32_t> codes(input.size());
    std::vector<float> recon(input.size());
    lorenzo_encode(input, params.vector_dim, eb, codes, recon);

    std::vector<std::uint32_t> symbols(codes.size());
    for (std::size_t i = 0; i < codes.size(); ++i) {
      symbols[i] = static_cast<std::uint32_t>(zigzag_encode(codes[i]));
    }
    const HuffmanCodec codec = HuffmanCodec::build(symbols);
    codec.serialize_table(out);
    BitWriter writer;
    codec.encode(symbols, writer);
    writer.finish_into(out);
  }

  patch_payload_bytes(out, patch_at, out.size() - payload_start);
  CompressionStats stats;
  stats.input_bytes = input.size_bytes();
  stats.output_bytes = out.size() - start;
  stats.seconds = timer.seconds();
  return stats;
}

double CuszLikeCompressor::decompress(std::span<const std::byte> stream,
                                      std::span<float> out) const {
  WallTimer timer;
  std::span<const std::byte> payload;
  const StreamHeader header = parse_header(stream, payload);
  DLCOMP_CHECK(header.codec == CodecId::kCuszLike);
  DLCOMP_CHECK(out.size() == header.element_count);
  if (out.empty()) return timer.seconds();

  ByteReader reader(payload);
  const HuffmanCodec codec = HuffmanCodec::deserialize_table(reader);
  std::vector<std::uint32_t> symbols(out.size());
  BitReader bits(payload.subspan(reader.position()));
  codec.decode(bits, symbols);

  std::vector<std::int32_t> codes(out.size());
  for (std::size_t i = 0; i < symbols.size(); ++i) {
    codes[i] = static_cast<std::int32_t>(zigzag_decode(symbols[i]));
  }
  lorenzo_decode(codes, header.vector_dim, header.effective_error_bound, out);
  return timer.seconds();
}

std::vector<std::int32_t> CuszLikeCompressor::prediction_codes(
    std::span<const float> input, const CompressParams& params) {
  const double eb = resolve_error_bound(input, params);
  std::vector<std::int32_t> codes(input.size());
  std::vector<float> recon(input.size());
  lorenzo_encode(input, params.vector_dim, eb, codes, recon);
  return codes;
}

}  // namespace dlcomp
