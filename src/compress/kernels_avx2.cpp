/// \file kernels_avx2.cpp
/// AVX2 builds of the codec inner loops. Compiled with -mavx2 and
/// -ffp-contract=off (see CMakeLists.txt): contraction must stay off so
/// the explicit mul/add sequences below can never fuse into FMAs, which
/// would change double rounding and break stream byte-identity with the
/// scalar kernels. Dispatch happens at runtime (kernels.cpp); this TU is
/// always compiled where the toolchain supports the flags, and the code
/// only executes after cpuid confirms AVX2.
///
/// Identity notes (each loop must match kernels.cpp bit for bit):
///  - round-half-away-from-zero is `trunc(t + copysign(0.5, t))`; the
///    sign-bit OR differs from the scalar `t >= 0 ? 0.5 : -0.5` only at
///    t == -0.0, where both sides still produce code 0;
///  - `_mm256_cvttpd_epi32` truncates toward zero exactly like the
///    scalar double→int32 cast, valid because the quantize loops run
///    after check_code_range and the Lorenzo path falls back to the
///    shared clamped round_code whenever any lane leaves |t| < 2^31;
///  - float stores go through `_mm256_cvtpd_ps`, the same correctly-
///    rounded double→float narrowing as the scalar casts.

#include "compress/kernels_dispatch.hpp"

#if defined(__AVX2__)

#include <immintrin.h>

#include <algorithm>
#include <cstdint>
#include <limits>

#include "common/bitstream.hpp"

namespace dlcomp::kernels::detail {

namespace {

/// zigzag on 4 lanes: (c << 1) ^ (c >> 31).
inline __m128i zigzag4(__m128i c) noexcept {
  return _mm_xor_si128(_mm_slli_epi32(c, 1), _mm_srai_epi32(c, 31));
}

inline __m256i zigzag8(__m256i c) noexcept {
  return _mm256_xor_si256(_mm256_slli_epi32(c, 1), _mm256_srai_epi32(c, 31));
}

/// t + copysign(0.5, t) on 4 lanes.
inline __m256d bias_half_away(__m256d t) noexcept {
  const __m256d sign = _mm256_set1_pd(-0.0);
  const __m256d half = _mm256_set1_pd(0.5);
  return _mm256_add_pd(t, _mm256_or_pd(_mm256_and_pd(t, sign), half));
}

void avx2_quantize_symbols(const float* in, std::size_t n, double inv,
                           std::uint32_t* sym) {
  const __m256d vinv = _mm256_set1_pd(inv);
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m256 vf = _mm256_loadu_ps(in + i);
    const __m256d lo = bias_half_away(_mm256_mul_pd(
        _mm256_cvtps_pd(_mm256_castps256_ps128(vf)), vinv));
    const __m256d hi = bias_half_away(_mm256_mul_pd(
        _mm256_cvtps_pd(_mm256_extractf128_ps(vf, 1)), vinv));
    const __m256i codes = _mm256_set_m128i(_mm256_cvttpd_epi32(hi),
                                           _mm256_cvttpd_epi32(lo));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(sym + i), zigzag8(codes));
  }
  for (; i < n; ++i) {
    sym[i] = zigzag_encode32(
        round_code_checked(static_cast<double>(in[i]) * inv));
  }
}

void avx2_quantize_codes(const float* in, std::size_t n, double inv,
                         std::int32_t* out) {
  const __m256d vinv = _mm256_set1_pd(inv);
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m256 vf = _mm256_loadu_ps(in + i);
    const __m256d lo = bias_half_away(_mm256_mul_pd(
        _mm256_cvtps_pd(_mm256_castps256_ps128(vf)), vinv));
    const __m256d hi = bias_half_away(_mm256_mul_pd(
        _mm256_cvtps_pd(_mm256_extractf128_ps(vf, 1)), vinv));
    const __m256i codes = _mm256_set_m128i(_mm256_cvttpd_epi32(hi),
                                           _mm256_cvttpd_epi32(lo));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(out + i), codes);
  }
  for (; i < n; ++i) {
    out[i] = round_code_checked(static_cast<double>(in[i]) * inv);
  }
}

std::uint32_t avx2_max_zigzag(const std::int32_t* codes, std::size_t n) {
  __m256i vmax = _mm256_setzero_si256();
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m256i c =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(codes + i));
    vmax = _mm256_max_epu32(vmax, zigzag8(c));
  }
  alignas(32) std::uint32_t lanes[8];
  _mm256_store_si256(reinterpret_cast<__m256i*>(lanes), vmax);
  std::uint32_t max_symbol = 0;
  for (const std::uint32_t v : lanes) max_symbol = std::max(max_symbol, v);
  for (; i < n; ++i) {
    max_symbol = std::max(max_symbol, zigzag_encode32(codes[i]));
  }
  return max_symbol;
}

void avx2_zigzag(const std::int32_t* codes, std::size_t n,
                 std::uint32_t* sym) {
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m256i c =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(codes + i));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(sym + i), zigzag8(c));
  }
  for (; i < n; ++i) sym[i] = zigzag_encode32(codes[i]);
}

void avx2_dequantize_codes(const std::int32_t* in, std::size_t n, double step,
                           float* out) {
  const __m256d vstep = _mm256_set1_pd(step);
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m256i c =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(in + i));
    const __m128 lo = _mm256_cvtpd_ps(_mm256_mul_pd(
        _mm256_cvtepi32_pd(_mm256_castsi256_si128(c)), vstep));
    const __m128 hi = _mm256_cvtpd_ps(_mm256_mul_pd(
        _mm256_cvtepi32_pd(_mm256_extracti128_si256(c, 1)), vstep));
    _mm256_storeu_ps(out + i, _mm256_set_m128(hi, lo));
  }
  for (; i < n; ++i) {
    out[i] = static_cast<float>(static_cast<double>(in[i]) * step);
  }
}

void avx2_dequantize_symbols(const std::uint32_t* in, std::size_t n,
                             double step, float* out) {
  const __m256d vstep = _mm256_set1_pd(step);
  const __m256i vone = _mm256_set1_epi32(1);
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m256i s =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(in + i));
    // un-zigzag: (s >> 1) ^ -(s & 1)
    const __m256i c = _mm256_xor_si256(
        _mm256_srli_epi32(s, 1),
        _mm256_sub_epi32(_mm256_setzero_si256(), _mm256_and_si256(s, vone)));
    const __m128 lo = _mm256_cvtpd_ps(_mm256_mul_pd(
        _mm256_cvtepi32_pd(_mm256_castsi256_si128(c)), vstep));
    const __m128 hi = _mm256_cvtpd_ps(_mm256_mul_pd(
        _mm256_cvtepi32_pd(_mm256_extracti128_si256(c, 1)), vstep));
    _mm256_storeu_ps(out + i, _mm256_set_m128(hi, lo));
  }
  for (; i < n; ++i) {
    out[i] = static_cast<float>(
        static_cast<double>(zigzag_decode32(in[i])) * step);
  }
}

// ---------------------------------------------------------------------
// Staggered Lorenzo: four consecutive rows advance together, row r+k one
// column behind row r+k-1, so every element still reads only finalized
// west/north/northwest neighbors (byte-identity is by construction: the
// per-element arithmetic is untouched, only the evaluation order across
// independent elements changes). Lane k's flat index at master column m
// is r*dim + m + k*(dim-1); the scalar ramp-in/ramp-out triangles cover
// the columns the stagger cannot.

/// Scalar per-element emitters, shared by ramps and leftover rows —
/// textually identical arithmetic to the kernels.cpp loops.
struct EncodeCtx {
  const float* in;
  float* rc;
  std::uint32_t* sym;
  std::size_t dim;
  double step;

  inline void emit(std::size_t idx, double pred) const {
    const double residual = static_cast<double>(in[idx]) - pred;
    const std::int32_t code = round_code(residual / step);
    sym[idx] = zigzag_encode32(code);
    rc[idx] = static_cast<float>(pred + static_cast<double>(code) * step);
  }
  inline void emit_mid(std::size_t base, std::size_t c) const {
    const double pred = static_cast<double>(rc[base + c - 1]) +
                        static_cast<double>(rc[base + c - dim]) -
                        static_cast<double>(rc[base + c - dim - 1]);
    emit(base + c, pred);
  }
  inline void emit_row_start(std::size_t base) const {
    emit(base, (0.0 + static_cast<double>(rc[base - dim])) - 0.0);
  }
};

void avx2_lorenzo_encode(const float* in, std::size_t n, std::size_t dim,
                         double step, float* rc, std::uint32_t* sym) {
  // Gathers index with int32; tiny rows have no steady-state region.
  if (dim < 8 || n <= 4 * dim ||
      n > static_cast<std::size_t>(std::numeric_limits<std::int32_t>::max())) {
    scalar_ops().lorenzo_encode(in, n, dim, step, rc, sym);
    return;
  }
  const EncodeCtx ctx{in, rc, sym, dim, step};

  // ---- First row: west-only prediction (serial chain; scalar).
  ctx.emit(0, 0.0);
  for (std::size_t c = 1; c < dim; ++c) {
    ctx.emit(c, (static_cast<double>(rc[c - 1]) + 0.0) - 0.0);
  }

  const std::size_t rows = (n + dim - 1) / dim;
  const std::size_t full_rows = n / dim;
  const __m256d vstep = _mm256_set1_pd(step);
  const __m256d vsign = _mm256_set1_pd(-0.0);
  const __m256d v2p31 = _mm256_set1_pd(2147483648.0);
  const __m128i vone = _mm_set1_epi32(1);
  const __m128i vdim = _mm_set1_epi32(static_cast<std::int32_t>(dim));

  std::size_t r = 1;
  for (; r + 3 < full_rows; r += 4) {
    // Ramp-in: lane k needs columns 0..3-k before the stagger aligns.
    for (std::size_t k = 0; k < 4; ++k) {
      const std::size_t base = (r + k) * dim;
      ctx.emit_row_start(base);
      for (std::size_t c = 1; c + k <= 3; ++c) ctx.emit_mid(base, c);
    }

    // Steady state: master column m in [4, dim), lane k at column m - k.
    __m128i idx = _mm_add_epi32(
        _mm_set1_epi32(static_cast<std::int32_t>(r * dim + 4)),
        _mm_mullo_epi32(_mm_set_epi32(3, 2, 1, 0),
                        _mm_set1_epi32(static_cast<std::int32_t>(dim) - 1)));
    __m256d west =
        _mm256_cvtps_pd(_mm_i32gather_ps(rc, _mm_sub_epi32(idx, vone), 4));
    __m256d northwest = _mm256_cvtps_pd(_mm_i32gather_ps(
        rc, _mm_sub_epi32(idx, _mm_add_epi32(vdim, vone)), 4));
    for (std::size_t m = 4; m < dim; ++m) {
      const __m256d din = _mm256_cvtps_pd(_mm_i32gather_ps(in, idx, 4));
      const __m256d north = _mm256_cvtps_pd(
          _mm_i32gather_ps(rc, _mm_sub_epi32(idx, vdim), 4));
      const __m256d pred =
          _mm256_sub_pd(_mm256_add_pd(west, north), northwest);
      const __m256d t = _mm256_div_pd(_mm256_sub_pd(din, pred), vstep);
      const __m256d biased = bias_half_away(t);
      __m128i code;
      if (_mm256_movemask_pd(_mm256_cmp_pd(_mm256_andnot_pd(vsign, biased),
                                           v2p31, _CMP_LT_OQ)) == 0xF)
          [[likely]] {
        code = _mm256_cvttpd_epi32(biased);
      } else {
        // Garbage residual (NaN/huge): the shared clamped rounding, per
        // lane, keeps results identical to the scalar path.
        alignas(32) double tt[4];
        _mm256_store_pd(tt, t);
        alignas(16) std::int32_t cc[4];
        for (int k = 0; k < 4; ++k) cc[k] = round_code(tt[k]);
        code = _mm_load_si128(reinterpret_cast<const __m128i*>(cc));
      }
      const __m256d res = _mm256_add_pd(
          pred, _mm256_mul_pd(_mm256_cvtepi32_pd(code), vstep));
      const __m128 resf = _mm256_cvtpd_ps(res);

      alignas(16) std::int32_t at[4];
      alignas(16) float rv[4];
      alignas(16) std::uint32_t zv[4];
      _mm_store_si128(reinterpret_cast<__m128i*>(at), idx);
      _mm_store_ps(rv, resf);
      _mm_store_si128(reinterpret_cast<__m128i*>(zv), zigzag4(code));
      for (int k = 0; k < 4; ++k) {
        rc[at[k]] = rv[k];
        sym[at[k]] = zv[k];
      }

      west = _mm256_cvtps_pd(resf);
      northwest = north;
      idx = _mm_add_epi32(idx, vone);
    }

    // Ramp-out: lane k still owes its last k columns.
    for (std::size_t k = 1; k < 4; ++k) {
      const std::size_t base = (r + k) * dim;
      for (std::size_t c = dim - k; c < dim; ++c) ctx.emit_mid(base, c);
    }
  }

  // Leftover rows (quad remainder, short tail): one at a time.
  for (; r < rows; ++r) {
    const std::size_t base = r * dim;
    const std::size_t len = std::min(dim, n - base);
    ctx.emit_row_start(base);
    for (std::size_t c = 1; c < len; ++c) ctx.emit_mid(base, c);
  }
}

struct DecodeCtx {
  const std::uint32_t* sym;
  float* out;
  std::size_t dim;
  double step;

  inline void value(std::size_t idx, double pred) const {
    out[idx] = static_cast<float>(
        pred + static_cast<double>(zigzag_decode32(sym[idx])) * step);
  }
  inline void value_mid(std::size_t base, std::size_t c) const {
    const double pred = static_cast<double>(out[base + c - 1]) +
                        static_cast<double>(out[base + c - dim]) -
                        static_cast<double>(out[base + c - dim - 1]);
    value(base + c, pred);
  }
  inline void value_row_start(std::size_t base) const {
    value(base, (0.0 + static_cast<double>(out[base - dim])) - 0.0);
  }
};

void avx2_lorenzo_decode(const std::uint32_t* sym, std::size_t n,
                         std::size_t dim, double step, float* out) {
  if (dim < 8 || n <= 4 * dim ||
      n > static_cast<std::size_t>(std::numeric_limits<std::int32_t>::max())) {
    scalar_ops().lorenzo_decode(sym, n, dim, step, out);
    return;
  }
  const DecodeCtx ctx{sym, out, dim, step};

  ctx.value(0, 0.0);
  for (std::size_t c = 1; c < dim; ++c) {
    ctx.value(c, (static_cast<double>(out[c - 1]) + 0.0) - 0.0);
  }

  const std::size_t rows = (n + dim - 1) / dim;
  const std::size_t full_rows = n / dim;
  const __m256d vstep = _mm256_set1_pd(step);
  const __m128i vone = _mm_set1_epi32(1);
  const __m128i vdim = _mm_set1_epi32(static_cast<std::int32_t>(dim));

  std::size_t r = 1;
  for (; r + 3 < full_rows; r += 4) {
    for (std::size_t k = 0; k < 4; ++k) {
      const std::size_t base = (r + k) * dim;
      ctx.value_row_start(base);
      for (std::size_t c = 1; c + k <= 3; ++c) ctx.value_mid(base, c);
    }

    __m128i idx = _mm_add_epi32(
        _mm_set1_epi32(static_cast<std::int32_t>(r * dim + 4)),
        _mm_mullo_epi32(_mm_set_epi32(3, 2, 1, 0),
                        _mm_set1_epi32(static_cast<std::int32_t>(dim) - 1)));
    __m256d west =
        _mm256_cvtps_pd(_mm_i32gather_ps(out, _mm_sub_epi32(idx, vone), 4));
    __m256d northwest = _mm256_cvtps_pd(_mm_i32gather_ps(
        out, _mm_sub_epi32(idx, _mm_add_epi32(vdim, vone)), 4));
    for (std::size_t m = 4; m < dim; ++m) {
      const __m128i s = _mm_i32gather_epi32(
          reinterpret_cast<const int*>(sym), idx, 4);
      const __m128i code = _mm_xor_si128(
          _mm_srli_epi32(s, 1),
          _mm_sub_epi32(_mm_setzero_si128(),
                        _mm_and_si128(s, _mm_set1_epi32(1))));
      const __m256d north = _mm256_cvtps_pd(
          _mm_i32gather_ps(out, _mm_sub_epi32(idx, vdim), 4));
      const __m256d pred =
          _mm256_sub_pd(_mm256_add_pd(west, north), northwest);
      const __m256d res = _mm256_add_pd(
          pred, _mm256_mul_pd(_mm256_cvtepi32_pd(code), vstep));
      const __m128 resf = _mm256_cvtpd_ps(res);

      alignas(16) std::int32_t at[4];
      alignas(16) float rv[4];
      _mm_store_si128(reinterpret_cast<__m128i*>(at), idx);
      _mm_store_ps(rv, resf);
      for (int k = 0; k < 4; ++k) out[at[k]] = rv[k];

      west = _mm256_cvtps_pd(resf);
      northwest = north;
      idx = _mm_add_epi32(idx, vone);
    }

    for (std::size_t k = 1; k < 4; ++k) {
      const std::size_t base = (r + k) * dim;
      for (std::size_t c = dim - k; c < dim; ++c) ctx.value_mid(base, c);
    }
  }

  for (; r < rows; ++r) {
    const std::size_t base = r * dim;
    const std::size_t len = std::min(dim, n - base);
    ctx.value_row_start(base);
    for (std::size_t c = 1; c < len; ++c) ctx.value_mid(base, c);
  }
}

}  // namespace

const KernelOps* avx2_ops() noexcept {
  static constexpr KernelOps table = {
      &avx2_quantize_symbols, &avx2_quantize_codes,
      &avx2_max_zigzag,       &avx2_zigzag,
      &avx2_dequantize_codes, &avx2_dequantize_symbols,
      &avx2_lorenzo_encode,   &avx2_lorenzo_decode,
  };
  return &table;
}

}  // namespace dlcomp::kernels::detail

#else  // !__AVX2__

namespace dlcomp::kernels::detail {
const KernelOps* avx2_ops() noexcept { return nullptr; }
}  // namespace dlcomp::kernels::detail

#endif
