#pragma once

/// \file compressor.hpp
/// Common interface for every codec in the stack: the paper's hybrid
/// compressor (vector-LZ / optimized Huffman over an error-bounded
/// quantizer) and all evaluation baselines (generic LZ ~ nvCOMP-LZ4,
/// Deflate-like, cuSZ-like, FZ-GPU-like, FP16/FP8).
///
/// Streams are self-describing (see format.hpp): compress() appends a
/// header + payload to `out`, decompress() recovers the element count and
/// effective error bound from the stream. Compressors are stateless and
/// const-thread-safe so the chunked compressor can fan work across a
/// thread pool.

#include <cstddef>
#include <cstdint>
#include <memory>
#include <span>
#include <string_view>
#include <vector>

namespace dlcomp {

class CompressionWorkspace;

/// How the error bound parameter is interpreted.
enum class EbMode : std::uint8_t {
  /// `error_bound` is an absolute bound on |x - x'| (the paper's mode for
  /// forward embedding lookups; e.g. 0.01 / 0.03 / 0.05).
  kAbsolute = 0,
  /// `error_bound` is multiplied by the value range of the buffer. Used
  /// for backward gradient compression where magnitudes vary wildly.
  kRangeRelative = 1,
};

/// Which inner codec the hybrid compressor uses.
enum class HybridChoice : std::uint8_t {
  kAuto = 0,      ///< try both, keep the smaller stream
  kVectorLz = 1,  ///< force the vector-based LZ encoder
  kHuffman = 2,   ///< force the optimized entropy encoder
};

/// Per-call compression parameters.
struct CompressParams {
  /// Error bound (see eb_mode). Ignored by lossless codecs and by the
  /// fixed-ratio FP16/FP8 baselines.
  double error_bound = 0.01;
  EbMode eb_mode = EbMode::kAbsolute;

  /// Embedding vector length in elements; the vector-LZ pattern length.
  std::size_t vector_dim = 32;

  /// Vector-LZ sliding-window size in *vectors* (the paper's extended
  /// window, Table VI sweeps {32, 64, 128, 255}).
  std::size_t lz_window_vectors = 128;

  /// Hybrid codec selection (per-table, decided by the offline analyzer).
  HybridChoice hybrid_choice = HybridChoice::kAuto;
};

/// Outcome of one compress call.
struct CompressionStats {
  std::size_t input_bytes = 0;
  std::size_t output_bytes = 0;
  double seconds = 0.0;

  [[nodiscard]] double ratio() const noexcept {
    return output_bytes == 0
               ? 0.0
               : static_cast<double>(input_bytes) /
                     static_cast<double>(output_bytes);
  }

  [[nodiscard]] double throughput_bytes_per_second() const noexcept {
    return seconds > 0.0 ? static_cast<double>(input_bytes) / seconds : 0.0;
  }
};

/// Abstract codec. Implementations must be stateless w.r.t. compress /
/// decompress calls (const and thread-safe).
class Compressor {
 public:
  virtual ~Compressor() = default;

  /// Stable identifier, e.g. "vector-lz"; used by the registry, the
  /// offline analyzer's reports, and the calibrated throughput table.
  [[nodiscard]] virtual std::string_view name() const noexcept = 0;

  /// True if reconstruction may differ from the input.
  [[nodiscard]] virtual bool lossy() const noexcept = 0;

  /// Compresses `input`, appending a self-describing stream to `out`.
  /// Returns stats for this call (timing measured internally).
  virtual CompressionStats compress(std::span<const float> input,
                                    const CompressParams& params,
                                    std::vector<std::byte>& out) const = 0;

  /// Decompresses one stream produced by compress(). `out.size()` must
  /// equal the stream's element count (query via decompressed_count()).
  /// Returns wall seconds spent.
  virtual double decompress(std::span<const std::byte> stream,
                            std::span<float> out) const = 0;

  /// Workspace variants: identical streams/results, but all scratch comes
  /// from `ws` so steady-state callers allocate nothing (see
  /// workspace.hpp for ownership and threading rules). Codecs that have
  /// no scratch to reuse fall back to the plain overloads.
  virtual CompressionStats compress(std::span<const float> input,
                                    const CompressParams& params,
                                    std::vector<std::byte>& out,
                                    CompressionWorkspace& ws) const;

  virtual double decompress(std::span<const std::byte> stream,
                            std::span<float> out,
                            CompressionWorkspace& ws) const;
};

/// Reads the element count from a stream header without decompressing.
std::size_t decompressed_count(std::span<const std::byte> stream);

/// Convenience round-trip: compress + decompress, returning recon data and
/// filled stats (used heavily by tests and benches).
struct RoundTrip {
  std::vector<float> reconstructed;
  CompressionStats compress_stats;
  double decompress_seconds = 0.0;
};
RoundTrip round_trip(const Compressor& codec, std::span<const float> input,
                     const CompressParams& params);

/// Resolves the effective absolute error bound for a buffer under the
/// given params (range-relative bounds scale by max|x| range).
double resolve_error_bound(std::span<const float> input,
                           const CompressParams& params);

}  // namespace dlcomp
