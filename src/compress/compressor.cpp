#include "compress/compressor.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"
#include "common/timer.hpp"
#include "compress/chunked.hpp"
#include "compress/format.hpp"

namespace dlcomp {

CompressionStats Compressor::compress(std::span<const float> input,
                                      const CompressParams& params,
                                      std::vector<std::byte>& out,
                                      CompressionWorkspace& /*ws*/) const {
  return compress(input, params, out);
}

double Compressor::decompress(std::span<const std::byte> stream,
                              std::span<float> out,
                              CompressionWorkspace& /*ws*/) const {
  return decompress(stream, out);
}

std::size_t decompressed_count(std::span<const std::byte> stream) {
  // Blocked ("DLBK") containers carry their total element count in the
  // container header; plain streams carry it in the codec header.
  if (BlockEngine::is_blocked(stream)) {
    return BlockEngine::blocked_element_count(stream);
  }
  std::span<const std::byte> payload;
  const StreamHeader h = parse_header(stream, payload);
  return static_cast<std::size_t>(h.element_count);
}

RoundTrip round_trip(const Compressor& codec, std::span<const float> input,
                     const CompressParams& params) {
  RoundTrip rt;
  std::vector<std::byte> stream;
  rt.compress_stats = codec.compress(input, params, stream);
  rt.reconstructed.resize(input.size());
  rt.decompress_seconds = codec.decompress(stream, rt.reconstructed);
  return rt;
}

double resolve_error_bound(std::span<const float> input,
                           const CompressParams& params) {
  DLCOMP_CHECK_MSG(params.error_bound > 0.0,
                   "error bound must be positive, got " << params.error_bound);
  if (params.eb_mode == EbMode::kAbsolute) return params.error_bound;

  // Range-relative: scale by the buffer's value range. An all-constant
  // buffer has zero range; fall back to a magnitude-scaled bound so
  // quantization codes stay representable (an absolute 1e-12 bound on a
  // large constant would overflow int32 codes).
  float lo = 0.0f;
  float hi = 0.0f;
  double max_abs = 0.0;
  if (!input.empty()) {
    lo = hi = input[0];
    for (const float v : input) {
      lo = std::min(lo, v);
      hi = std::max(hi, v);
      max_abs = std::max(max_abs, std::fabs(static_cast<double>(v)));
    }
  }
  const double range = static_cast<double>(hi) - static_cast<double>(lo);
  const double eb = params.error_bound * range;
  if (eb > 0.0) return eb;
  return std::max(max_abs * 0x1.0p-20, 1e-12);
}

}  // namespace dlcomp
