#pragma once

/// \file chunked.hpp
/// Multi-tensor ("chunked") compression with the paper's buffer
/// optimization (Sec. III-E, Fig. 7): all chunks are compressed by one
/// logical kernel that writes directly into a single send buffer, with
/// per-chunk offsets claimed by an atomic cursor -- versus the naive path
/// that launches one kernel per chunk into separate allocations and then
/// gathers them with extra copies.
///
/// On this CPU substrate the "kernel" is a thread-pool task; the real
/// wall time is measured, and the GPU-side cost difference (kernel
/// launches, gather copies) is additionally *modelled* through
/// DeviceModel so the Fig. 15 bench can reproduce the paper's ablation.
///
/// This file also hosts the BlockEngine: intra-message parallel framing
/// (see DESIGN.md "Parallel framing and SIMD dispatch"). Where the
/// ChunkedCompressor parallelizes *across* tensors, the BlockEngine
/// splits each large tensor into fixed-size blocks that compress and
/// decompress independently, so a single dominant message still fans out
/// across the pool. Blocked streams travel in a "DLBK" container whose
/// bytes are a pure function of (input, params, block size) — never of
/// thread count or scheduling.

#include <cstddef>
#include <cstdint>
#include <exception>
#include <memory>
#include <span>
#include <vector>

#include "compress/compressor.hpp"
#include "compress/workspace.hpp"
#include "parallel/device_model.hpp"
#include "parallel/thread_pool.hpp"

namespace dlcomp {

/// One tensor to compress (e.g. the per-destination slice of one
/// embedding table's lookup batch).
struct ChunkSpec {
  std::span<const float> data;
  CompressParams params;
};

/// A packed buffer of back-to-back compressed streams.
struct ChunkedBuffer {
  std::vector<std::byte> buffer;
  std::vector<std::size_t> offsets;  ///< per input chunk, into buffer
  std::vector<std::size_t> sizes;    ///< per input chunk stream size

  double wall_seconds = 0.0;            ///< measured CPU time
  std::size_t kernel_launches = 0;      ///< modelled GPU launches
  std::size_t gathered_bytes = 0;       ///< modelled extra D2D copy volume
  std::size_t total_input_bytes = 0;
  std::size_t total_output_bytes = 0;

  /// GPU-time estimate for this operation under a device model and codec
  /// throughput (compression side).
  [[nodiscard]] double modeled_seconds(const DeviceModel& device,
                                       double codec_bps) const noexcept {
    return device.codec_seconds(kernel_launches, total_input_bytes, codec_bps) +
           device.copy_seconds(gathered_bytes);
  }

  /// View of one chunk's stream.
  [[nodiscard]] std::span<const std::byte> chunk(std::size_t i) const {
    return {buffer.data() + offsets.at(i), sizes.at(i)};
  }
};

/// Upper bound on a single stream's size for scratch pre-allocation
/// (header + incompressible-worst-case payload across all codecs).
std::size_t worst_case_stream_bytes(std::size_t element_count);

class ChunkedCompressor {
 public:
  /// `pool` may be null for strictly serial execution (the naive path is
  /// always serial per chunk regardless, matching one-kernel-at-a-time
  /// dispatch).
  explicit ChunkedCompressor(const Compressor& codec, ThreadPool* pool = nullptr)
      : codec_(codec), pool_(pool) {}

  /// Buffer-optimized single-kernel path: chunks compress in parallel and
  /// write directly into the shared send buffer at atomically claimed
  /// offsets.
  [[nodiscard]] ChunkedBuffer compress_optimized(
      std::span<const ChunkSpec> chunks) const;

  /// Naive path: serial per-chunk compression into separate buffers
  /// followed by a gather copy into the send buffer.
  [[nodiscard]] ChunkedBuffer compress_naive(
      std::span<const ChunkSpec> chunks) const;

  /// Decompresses every chunk of a packed buffer into the matching output
  /// spans (outputs[i].size() must equal chunk i's element count).
  /// Parallel across chunks when a pool is available -- the paper's
  /// multi-stream decompression. Returns measured wall seconds.
  double decompress(const ChunkedBuffer& packed,
                    std::span<const std::span<float>> outputs) const;

  /// Decompression over raw (buffer, offsets, sizes) triples, for buffers
  /// received from the wire rather than produced locally.
  double decompress(std::span<const std::byte> buffer,
                    std::span<const std::size_t> offsets,
                    std::span<const std::size_t> sizes,
                    std::span<const std::span<float>> outputs) const;

 private:
  const Compressor& codec_;
  ThreadPool* pool_;
  /// One workspace per concurrent chunk task (capacity retained across
  /// calls; mutable because the compress/decompress entry points are
  /// logically const).
  mutable WorkspacePool workspaces_;
};

/// Intra-message parallel compression with deterministic framing.
///
/// Usage is batched: register every tensor (or received stream) of one
/// logical operation, run the batch, then read the assembled streams
/// back in order. Registration and assembly are serial and cheap
/// (bookkeeping + memcpy); the run step executes every *block* of every
/// registered tensor as one flat task list on the pool, so parallelism
/// is limited by total block count, not tensor count.
///
/// Wire format: tensors no larger than the block size produce a plain
/// codec stream, byte-identical to a direct Compressor::compress call.
/// Larger tensors produce a DLBK container:
///
///   u32 magic 'DLBK' | u8 version | u8 + u16 reserved |
///   u64 element_count | u64 block_elems | u32 block_count | u32 reserved
///   | u64 block_bytes[block_count] | block streams back-to-back
///
/// where block i covers elements [i*block_elems, min(n, (i+1)*
/// block_elems)) and each block is a self-describing codec stream.
/// `block_elems` is the configured size rounded down to a multiple of
/// the tensor's vector_dim, so Lorenzo rows and vector-LZ patterns never
/// straddle blocks. The split — and therefore every output byte —
/// depends only on the input, the params, and the configured block size.
///
/// Determinism and allocation discipline: the engine owns one workspace
/// per lane (4x the pool width) and partitions the task list
/// contiguously across lanes, so lane l always runs the same tasks with
/// the same workspace regardless of scheduling; scratch reaches its
/// high-water mark during warm-up and grow_events() stays flat after.
/// Range-relative error bounds are resolved over the whole tensor before
/// splitting, so blocked and monolithic encodes quantize identically.
///
/// Thread-safety: one batch at a time per engine; the codec must be
/// const-thread-safe (all registry codecs are).
class BlockEngine {
 public:
  /// 256 Ki elements = 1 MiB of float32 per block: large enough that
  /// per-block headers and Huffman tables are noise (< 1% of a typical
  /// compressed block), small enough that an 8 MiB message fans out 8
  /// ways.
  static constexpr std::size_t kDefaultBlockElems = 256 * 1024;

  BlockEngine(const Compressor& codec, ThreadPool* pool,
              std::size_t block_elems = kDefaultBlockElems);

  // ---- compression batch ------------------------------------------
  /// Drops all registered tensors/streams and starts a new batch.
  void compress_begin();

  /// Registers one tensor; returns its slot for append_stream(). When
  /// `recon` is non-empty (same length as `data`) each block is
  /// decompressed right after compressing, yielding the reader-visible
  /// reconstruction without a second serial pass.
  std::size_t add_tensor(std::span<const float> data,
                         const CompressParams& params,
                         std::span<float> recon = {});

  /// Compresses every registered block across the pool. Exceptions from
  /// codec calls (e.g. non-finite input) are captured per lane and the
  /// lowest lane's is rethrown here.
  void compress_run();

  /// Appends slot's assembled wire bytes (plain stream or DLBK
  /// container) to `out`. Valid until the next compress_begin().
  void append_stream(std::size_t slot, std::vector<std::byte>& out) const;

  /// Assembled size of slot's stream, directory included.
  [[nodiscard]] std::size_t stream_bytes(std::size_t slot) const;

  // ---- decompression batch ----------------------------------------
  void decompress_begin();

  /// Registers one received stream (plain or DLBK) with its pre-sized
  /// output. Validates DLBK framing eagerly; throws FormatError on a
  /// malformed container or element-count mismatch.
  void add_stream(std::span<const std::byte> stream, std::span<float> out);

  /// Decompresses every registered block across the pool.
  void decompress_run();

  // ---- framing helpers --------------------------------------------
  /// True when `stream` starts with the DLBK container magic.
  [[nodiscard]] static bool is_blocked(
      std::span<const std::byte> stream) noexcept;

  /// Element count of a DLBK container (throws FormatError when the
  /// fixed header is malformed). Use decompressed_count() for streams
  /// that may be either framing.
  [[nodiscard]] static std::size_t blocked_element_count(
      std::span<const std::byte> stream);

  // ---- accounting -------------------------------------------------
  /// Scratch (re)allocations: lane workspace creation + growth, staging
  /// and task-list growth. Flat after warm-up.
  [[nodiscard]] std::uint64_t grow_events() const;
  [[nodiscard]] std::size_t capacity_bytes() const;
  /// Block tasks executed (single-block tensors count as one block).
  [[nodiscard]] std::uint64_t blocks_compressed() const noexcept {
    return blocks_compressed_;
  }
  [[nodiscard]] std::uint64_t blocks_decompressed() const noexcept {
    return blocks_decompressed_;
  }

 private:
  struct Slot {
    std::size_t first_task = 0;
    std::size_t task_count = 1;
    std::size_t element_count = 0;
    std::size_t block_elems = 0;  ///< dim-aligned; meaningful iff blocked
    bool blocked = false;
  };
  struct CompressTask {
    std::size_t slot = 0;
    std::size_t staging_offset = 0;  ///< worst-case-spaced, deterministic
    std::size_t elem_begin = 0;
    std::size_t elem_count = 0;
    std::size_t bytes = 0;  ///< actual stream size, filled by the lane
  };
  struct DecompressTask {
    std::span<const std::byte> stream;
    std::span<float> out;
  };

  /// Runs body(task_index) for every index in [0, count) partitioned
  /// contiguously across the fixed lanes; body receives the lane's
  /// workspace. Captures exceptions per lane, rethrows the lowest.
  template <typename Body>
  void run_lanes(std::size_t count, const Body& body);

  void note_grow(std::size_t cap_before, std::size_t cap_after) {
    if (cap_after != cap_before) ++grow_events_;
  }

  const Compressor& codec_;
  ThreadPool* pool_;
  std::size_t block_elems_;
  std::vector<std::unique_ptr<CompressionWorkspace>> lanes_;

  std::vector<Slot> slots_;
  std::vector<CompressTask> tasks_;
  std::vector<DecompressTask> decode_tasks_;
  /// Per-slot views registered by add_tensor; valid only until
  /// compress_run() returns (the caller owns the data).
  std::vector<std::span<const float>> pending_data_;
  std::vector<CompressParams> pending_params_;
  std::vector<std::span<float>> pending_recon_;
  std::vector<std::byte> staging_;
  std::size_t staging_cursor_ = 0;
  std::vector<std::exception_ptr> lane_errors_;

  std::uint64_t grow_events_ = 0;
  std::uint64_t blocks_compressed_ = 0;
  std::uint64_t blocks_decompressed_ = 0;
};

/// Serially decompresses a stream that may be either a plain codec
/// stream or a DLBK container (the reader-side counterpart for callers
/// without a pool or engine, e.g. per-table checkpoint decode). Returns
/// wall seconds.
double blocked_decompress(const Compressor& codec,
                          std::span<const std::byte> stream,
                          std::span<float> out, CompressionWorkspace& ws);

}  // namespace dlcomp
