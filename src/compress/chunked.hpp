#pragma once

/// \file chunked.hpp
/// Multi-tensor ("chunked") compression with the paper's buffer
/// optimization (Sec. III-E, Fig. 7): all chunks are compressed by one
/// logical kernel that writes directly into a single send buffer, with
/// per-chunk offsets claimed by an atomic cursor -- versus the naive path
/// that launches one kernel per chunk into separate allocations and then
/// gathers them with extra copies.
///
/// On this CPU substrate the "kernel" is a thread-pool task; the real
/// wall time is measured, and the GPU-side cost difference (kernel
/// launches, gather copies) is additionally *modelled* through
/// DeviceModel so the Fig. 15 bench can reproduce the paper's ablation.

#include <cstddef>
#include <span>
#include <vector>

#include "compress/compressor.hpp"
#include "compress/workspace.hpp"
#include "parallel/device_model.hpp"
#include "parallel/thread_pool.hpp"

namespace dlcomp {

/// One tensor to compress (e.g. the per-destination slice of one
/// embedding table's lookup batch).
struct ChunkSpec {
  std::span<const float> data;
  CompressParams params;
};

/// A packed buffer of back-to-back compressed streams.
struct ChunkedBuffer {
  std::vector<std::byte> buffer;
  std::vector<std::size_t> offsets;  ///< per input chunk, into buffer
  std::vector<std::size_t> sizes;    ///< per input chunk stream size

  double wall_seconds = 0.0;            ///< measured CPU time
  std::size_t kernel_launches = 0;      ///< modelled GPU launches
  std::size_t gathered_bytes = 0;       ///< modelled extra D2D copy volume
  std::size_t total_input_bytes = 0;
  std::size_t total_output_bytes = 0;

  /// GPU-time estimate for this operation under a device model and codec
  /// throughput (compression side).
  [[nodiscard]] double modeled_seconds(const DeviceModel& device,
                                       double codec_bps) const noexcept {
    return device.codec_seconds(kernel_launches, total_input_bytes, codec_bps) +
           device.copy_seconds(gathered_bytes);
  }

  /// View of one chunk's stream.
  [[nodiscard]] std::span<const std::byte> chunk(std::size_t i) const {
    return {buffer.data() + offsets.at(i), sizes.at(i)};
  }
};

/// Upper bound on a single stream's size for scratch pre-allocation
/// (header + incompressible-worst-case payload across all codecs).
std::size_t worst_case_stream_bytes(std::size_t element_count);

class ChunkedCompressor {
 public:
  /// `pool` may be null for strictly serial execution (the naive path is
  /// always serial per chunk regardless, matching one-kernel-at-a-time
  /// dispatch).
  explicit ChunkedCompressor(const Compressor& codec, ThreadPool* pool = nullptr)
      : codec_(codec), pool_(pool) {}

  /// Buffer-optimized single-kernel path: chunks compress in parallel and
  /// write directly into the shared send buffer at atomically claimed
  /// offsets.
  [[nodiscard]] ChunkedBuffer compress_optimized(
      std::span<const ChunkSpec> chunks) const;

  /// Naive path: serial per-chunk compression into separate buffers
  /// followed by a gather copy into the send buffer.
  [[nodiscard]] ChunkedBuffer compress_naive(
      std::span<const ChunkSpec> chunks) const;

  /// Decompresses every chunk of a packed buffer into the matching output
  /// spans (outputs[i].size() must equal chunk i's element count).
  /// Parallel across chunks when a pool is available -- the paper's
  /// multi-stream decompression. Returns measured wall seconds.
  double decompress(const ChunkedBuffer& packed,
                    std::span<const std::span<float>> outputs) const;

  /// Decompression over raw (buffer, offsets, sizes) triples, for buffers
  /// received from the wire rather than produced locally.
  double decompress(std::span<const std::byte> buffer,
                    std::span<const std::size_t> offsets,
                    std::span<const std::size_t> sizes,
                    std::span<const std::span<float>> outputs) const;

 private:
  const Compressor& codec_;
  ThreadPool* pool_;
  /// One workspace per concurrent chunk task (capacity retained across
  /// calls; mutable because the compress/decompress entry points are
  /// logically const).
  mutable WorkspacePool workspaces_;
};

}  // namespace dlcomp
