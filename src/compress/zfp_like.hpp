#pragma once

/// \file zfp_like.hpp
/// Transform-based error-bounded baseline in the ZFP family (the paper's
/// background discusses ZFP/cuZFP as the transform-coding alternative to
/// prediction-based SZ). Fixed-accuracy mode:
///
///   1. partition values into blocks of 4,
///   2. block-normalize against the largest exponent (common-exponent
///      fixed point, precision chosen so the quantization error stays
///      within the bound),
///   3. apply a reversible integer Haar-style lifting transform,
///   4. pack the decorrelated coefficients with per-group bit widths.
///
/// On smooth scientific fields the transform concentrates energy into
/// the low-pass coefficient and the detail widths collapse; on embedding
/// batches the dimensions are independent, so detail coefficients stay
/// wide -- reproducing the paper's observation that scientific
/// compressors underperform on DLRM data.

#include "compress/compressor.hpp"

namespace dlcomp {

class ZfpLikeCompressor final : public Compressor {
 public:
  static constexpr std::size_t kBlockValues = 4;

  [[nodiscard]] std::string_view name() const noexcept override {
    return "zfp-like";
  }
  [[nodiscard]] bool lossy() const noexcept override { return true; }

  CompressionStats compress(std::span<const float> input,
                            const CompressParams& params,
                            std::vector<std::byte>& out) const override;

  double decompress(std::span<const std::byte> stream,
                    std::span<float> out) const override;
};

}  // namespace dlcomp
