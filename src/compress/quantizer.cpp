#include "compress/quantizer.hpp"

#include <cstring>
#include <unordered_map>

#include "common/error.hpp"
#include "compress/kernels.hpp"

namespace dlcomp {

namespace {

/// FNV-1a over a run of bytes; good spread for vector dedup sets, but
/// collisions must still be resolved by comparison (see
/// count_unique_rows_bytes).
std::uint64_t fnv1a_bytes(const void* data, std::size_t bytes) noexcept {
  const auto* p = static_cast<const unsigned char*>(data);
  std::uint64_t h = 0xCBF29CE484222325ULL;
  for (std::size_t i = 0; i < bytes; ++i) {
    h ^= p[i];
    h *= 0x100000001B3ULL;
  }
  return h;
}

template <typename T>
std::size_t count_unique_rows(std::span<const T> values, std::size_t dim) {
  DLCOMP_CHECK(dim > 0);
  const std::size_t rows = values.size() / dim;
  return detail::count_unique_rows_bytes(values.data(), dim * sizeof(T), rows,
                                         &fnv1a_bytes);
}

}  // namespace

namespace detail {

std::size_t count_unique_rows_bytes(const void* data, std::size_t row_bytes,
                                    std::size_t rows, RowHashFn hash) {
  const auto* base = static_cast<const unsigned char*>(data);
  // Hash -> indices of distinct rows that hashed there. A hash hit alone
  // is not equality: verify bytes, otherwise colliding uniques would be
  // silently undercounted and skew the homogeneity analysis.
  std::unordered_map<std::uint64_t, std::vector<std::size_t>> buckets;
  buckets.reserve(rows * 2);
  std::size_t unique = 0;
  for (std::size_t r = 0; r < rows; ++r) {
    const unsigned char* row = base + r * row_bytes;
    auto& bucket = buckets[hash(row, row_bytes)];
    bool duplicate = false;
    for (const std::size_t prior : bucket) {
      if (std::memcmp(row, base + prior * row_bytes, row_bytes) == 0) {
        duplicate = true;
        break;
      }
    }
    if (!duplicate) {
      bucket.push_back(r);
      ++unique;
    }
  }
  return unique;
}

}  // namespace detail

void quantize(std::span<const float> input, double eb,
              std::span<std::int32_t> codes) {
  kernels::quantize_to_codes(input, eb, codes);
}

void dequantize(std::span<const std::int32_t> codes, double eb,
                std::span<float> output) {
  kernels::dequantize_codes(codes, eb, output);
}

std::vector<std::int32_t> quantize(std::span<const float> input, double eb) {
  std::vector<std::int32_t> codes(input.size());
  quantize(input, eb, codes);
  return codes;
}

std::size_t count_unique_vectors(std::span<const std::int32_t> codes,
                                 std::size_t dim) {
  return count_unique_rows(codes, dim);
}

std::size_t count_unique_vectors(std::span<const float> values,
                                 std::size_t dim) {
  return count_unique_rows(values, dim);
}

}  // namespace dlcomp
