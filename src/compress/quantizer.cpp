#include "compress/quantizer.hpp"

#include <cmath>
#include <cstring>
#include <limits>
#include <unordered_set>

#include "common/error.hpp"

namespace dlcomp {

namespace {

/// FNV-1a over a run of bytes; good enough for vector dedup sets.
std::uint64_t hash_bytes(const void* data, std::size_t bytes) noexcept {
  const auto* p = static_cast<const unsigned char*>(data);
  std::uint64_t h = 0xCBF29CE484222325ULL;
  for (std::size_t i = 0; i < bytes; ++i) {
    h ^= p[i];
    h *= 0x100000001B3ULL;
  }
  return h;
}

template <typename T>
std::size_t count_unique_rows(std::span<const T> values, std::size_t dim) {
  DLCOMP_CHECK(dim > 0);
  const std::size_t rows = values.size() / dim;
  std::unordered_set<std::uint64_t> seen;
  seen.reserve(rows * 2);
  std::size_t unique = 0;
  for (std::size_t r = 0; r < rows; ++r) {
    const std::uint64_t h = hash_bytes(values.data() + r * dim, dim * sizeof(T));
    if (seen.insert(h).second) ++unique;
  }
  return unique;
}

}  // namespace

void quantize(std::span<const float> input, double eb,
              std::span<std::int32_t> codes) {
  DLCOMP_CHECK(codes.size() == input.size());
  DLCOMP_CHECK_MSG(eb > 0.0, "quantizer error bound must be positive");
  const double inv = 1.0 / (2.0 * eb);
  for (std::size_t i = 0; i < input.size(); ++i) {
    const double scaled = static_cast<double>(input[i]) * inv;
    DLCOMP_CHECK_MSG(
        scaled >= static_cast<double>(std::numeric_limits<std::int32_t>::min()) &&
            scaled <= static_cast<double>(std::numeric_limits<std::int32_t>::max()),
        "quantization code overflow: value " << input[i] << " eb " << eb);
    codes[i] = static_cast<std::int32_t>(std::llround(scaled));
  }
}

void dequantize(std::span<const std::int32_t> codes, double eb,
                std::span<float> output) {
  DLCOMP_CHECK(output.size() == codes.size());
  const double step = 2.0 * eb;
  for (std::size_t i = 0; i < codes.size(); ++i) {
    output[i] = static_cast<float>(static_cast<double>(codes[i]) * step);
  }
}

std::vector<std::int32_t> quantize(std::span<const float> input, double eb) {
  std::vector<std::int32_t> codes(input.size());
  quantize(input, eb, codes);
  return codes;
}

std::size_t count_unique_vectors(std::span<const std::int32_t> codes,
                                 std::size_t dim) {
  return count_unique_rows(codes, dim);
}

std::size_t count_unique_vectors(std::span<const float> values,
                                 std::size_t dim) {
  return count_unique_rows(values, dim);
}

}  // namespace dlcomp
