#include "compress/workspace.hpp"

namespace dlcomp {

// ---------------------------------------------------- MatchPositionTable

bool MatchPositionTable::prepare(std::size_t expected_keys) {
  std::size_t want = 16;
  while (want < expected_keys * 2) want <<= 1;
  bool grew = false;
  if (slots_.size() < want) {
    slots_.assign(want, Slot{});
    generation_ = 0;
    grew = true;
  }
  mask_ = slots_.size() - 1;
  if (++generation_ == 0) {
    // Generation counter wrapped: hard-clear so stale stamps cannot alias.
    std::fill(slots_.begin(), slots_.end(), Slot{});
    generation_ = 1;
  }
  return grew;
}

std::size_t MatchPositionTable::probe(std::uint64_t key) const noexcept {
  // Fibonacci scatter then linear probing; the full key is stored, so
  // lookups resolve exactly like a map keyed on the 64-bit hash.
  std::size_t i = static_cast<std::size_t>(key * 0x9E3779B97F4A7C15ULL) & mask_;
  for (;;) {
    const Slot& slot = slots_[i];
    if (slot.generation != generation_ || slot.key == key) return i;
    i = (i + 1) & mask_;
  }
}

const std::size_t* MatchPositionTable::find(std::uint64_t key) const noexcept {
  const Slot& slot = slots_[probe(key)];
  return slot.generation == generation_ ? &slot.value : nullptr;
}

void MatchPositionTable::put(std::uint64_t key, std::size_t position) noexcept {
  Slot& slot = slots_[probe(key)];
  slot.key = key;
  slot.value = position;
  slot.generation = generation_;
}

// -------------------------------------------------- CompressionWorkspace

std::uint64_t CompressionWorkspace::grow_events() const noexcept {
  return grow_events_;
}

std::size_t CompressionWorkspace::capacity_bytes() const noexcept {
  return codes_.capacity() * sizeof(std::int32_t) +
         symbols_.capacity() * sizeof(std::uint32_t) +
         recon_.capacity() * sizeof(float) +
         histogram_.dense.capacity() * sizeof(std::uint64_t) +
         huffman_.capacity_bytes() + writer_.capacity_bytes() +
         match_table_.capacity_bytes() + stream_a_.capacity() +
         stream_b_.capacity() + caller_stream_.capacity();
}

// --------------------------------------------------------- WorkspacePool

CompressionWorkspace* WorkspacePool::acquire() {
  std::lock_guard lock(mutex_);
  if (!free_.empty()) {
    CompressionWorkspace* ws = free_.back();
    free_.pop_back();
    return ws;
  }
  all_.push_back(std::make_unique<CompressionWorkspace>());
  free_.reserve(all_.capacity());
  return all_.back().get();
}

void WorkspacePool::release(CompressionWorkspace* ws) {
  std::lock_guard lock(mutex_);
  free_.push_back(ws);
}

std::uint64_t WorkspacePool::grow_events() const {
  std::lock_guard lock(mutex_);
  std::uint64_t total = 0;
  for (const auto& ws : all_) total += ws->grow_events();
  return total;
}

std::size_t WorkspacePool::capacity_bytes() const {
  std::lock_guard lock(mutex_);
  std::size_t total = 0;
  for (const auto& ws : all_) total += ws->capacity_bytes();
  return total;
}

std::size_t WorkspacePool::size() const {
  std::lock_guard lock(mutex_);
  return all_.size();
}

CompressionWorkspace& thread_local_workspace() {
  static thread_local CompressionWorkspace workspace;
  return workspace;
}

}  // namespace dlcomp
