#include "compress/low_precision.hpp"

#include <vector>

#include "common/float_codec.hpp"
#include "common/timer.hpp"
#include "compress/format.hpp"

namespace dlcomp {

CompressionStats Fp16Compressor::compress(std::span<const float> input,
                                          const CompressParams& params,
                                          std::vector<std::byte>& out) const {
  (void)params;  // fixed-ratio: no error bound to honor
  WallTimer timer;
  const std::size_t start = out.size();

  StreamHeader header;
  header.codec = CodecId::kFp16;
  header.element_count = input.size();
  const std::size_t patch_at = append_header(out, header);
  const std::size_t payload_start = out.size();

  std::vector<std::uint16_t> half(input.size());
  encode_fp16(input, half);
  append_pod_span<std::uint16_t>(out, half);

  patch_payload_bytes(out, patch_at, out.size() - payload_start);
  CompressionStats stats;
  stats.input_bytes = input.size_bytes();
  stats.output_bytes = out.size() - start;
  stats.seconds = timer.seconds();
  return stats;
}

double Fp16Compressor::decompress(std::span<const std::byte> stream,
                                  std::span<float> out) const {
  WallTimer timer;
  std::span<const std::byte> payload;
  const StreamHeader header = parse_header(stream, payload);
  DLCOMP_CHECK(header.codec == CodecId::kFp16);
  DLCOMP_CHECK(out.size() == header.element_count);

  std::vector<std::uint16_t> half(out.size());
  ByteReader reader(payload);
  reader.read_span(std::span<std::uint16_t>(half));
  decode_fp16(half, out);
  return timer.seconds();
}

CompressionStats Fp8Compressor::compress(std::span<const float> input,
                                         const CompressParams& params,
                                         std::vector<std::byte>& out) const {
  (void)params;
  WallTimer timer;
  const std::size_t start = out.size();

  StreamHeader header;
  header.codec = CodecId::kFp8;
  header.element_count = input.size();
  const std::size_t patch_at = append_header(out, header);
  const std::size_t payload_start = out.size();

  std::vector<std::uint8_t> bytes(input.size());
  encode_fp8(input, bytes);
  append_pod_span<std::uint8_t>(out, bytes);

  patch_payload_bytes(out, patch_at, out.size() - payload_start);
  CompressionStats stats;
  stats.input_bytes = input.size_bytes();
  stats.output_bytes = out.size() - start;
  stats.seconds = timer.seconds();
  return stats;
}

double Fp8Compressor::decompress(std::span<const std::byte> stream,
                                 std::span<float> out) const {
  WallTimer timer;
  std::span<const std::byte> payload;
  const StreamHeader header = parse_header(stream, payload);
  DLCOMP_CHECK(header.codec == CodecId::kFp8);
  DLCOMP_CHECK(out.size() == header.element_count);

  std::vector<std::uint8_t> bytes(out.size());
  ByteReader reader(payload);
  reader.read_span(std::span<std::uint8_t>(bytes));
  decode_fp8(bytes, out);
  return timer.seconds();
}

}  // namespace dlcomp
