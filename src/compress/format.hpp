#pragma once

/// \file format.hpp
/// Self-describing stream header shared by every codec. Layout (little
/// endian, 32 bytes):
///   u32 magic 'DLCP' | u8 codec | u8 flags | u16 vector_dim |
///   u64 element_count | f64 effective_error_bound | u64 payload_bytes
/// The payload follows immediately. `payload_bytes` lets chunked buffers
/// carry several streams back-to-back.
///
/// The flags byte is split: the low nibble holds per-stream flag bits
/// (kFlagStoredRaw, ...), the high nibble holds the format version.
/// append_header stamps kStreamVersion automatically; parse_header
/// rejects any other version, so layout changes can never be misread as
/// garbage data.

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "common/byte_io.hpp"

namespace dlcomp {

/// Codec identifiers baked into streams.
enum class CodecId : std::uint8_t {
  kGenericLz = 1,
  kDeflateLike = 2,
  kCuszLike = 3,
  kFzGpuLike = 4,
  kFp16 = 5,
  kFp8 = 6,
  kHuffman = 7,
  kVectorLz = 8,
  kHybrid = 9,
  kZfpLike = 10,
};

struct StreamHeader {
  static constexpr std::uint32_t kMagic = 0x50434C44u;  // "DLCP"
  static constexpr std::size_t kBytes = 32;

  CodecId codec{};
  std::uint8_t flags = 0;
  std::uint16_t vector_dim = 0;
  std::uint64_t element_count = 0;
  double effective_error_bound = 0.0;
  std::uint64_t payload_bytes = 0;
};

/// Appends a header to `out`; returns the offset of the payload_bytes
/// field so it can be patched after the payload is written.
std::size_t append_header(std::vector<std::byte>& out, const StreamHeader& h);

/// Patches payload_bytes in a previously appended header.
void patch_payload_bytes(std::vector<std::byte>& out, std::size_t field_offset,
                         std::uint64_t payload_bytes);

/// Patches the flags byte of a previously appended header, addressed by
/// the same payload_bytes field offset append_header returned.
void patch_flags(std::vector<std::byte>& out, std::size_t field_offset,
                 std::uint8_t flags);

/// Flag bit: payload is stored raw (no compression); used by the lossless
/// baselines' stored-block fallback.
inline constexpr std::uint8_t kFlagStoredRaw = 0x01;

/// Low-nibble mask for flag bits; the high nibble is the format version.
inline constexpr std::uint8_t kFlagBitsMask = 0x0F;

/// Current stream format version, stored in the flags high nibble.
inline constexpr std::uint8_t kStreamVersion = 1;

/// Parses and validates a header at the start of `stream`; on return
/// `payload` views exactly payload_bytes bytes after the header.
StreamHeader parse_header(std::span<const std::byte> stream,
                          std::span<const std::byte>& payload);

}  // namespace dlcomp
