#pragma once

/// \file kernels_dispatch.hpp
/// Internal contract between kernels.cpp (argument validation, range
/// checks, histogram accumulation, dispatch) and the per-ISA loop
/// implementations (kernels.cpp scalar, kernels_avx2.cpp,
/// kernels_avx512.cpp). Each entry is a branch-free inner loop over
/// pre-validated data: the public wrappers have already rejected empty /
/// mismatched spans, checked eb > 0, and (for the quantize loops) proven
/// every scaled value fits an int32 code, so implementations may use
/// packed truncating conversions without per-element guards.
///
/// Byte-identity contract: every implementation must reproduce the
/// scalar loops' per-element arithmetic exactly — double products and
/// divides (IEEE-correctly rounded in any width), round-half-away-from-
/// zero via the shared helpers below, float stores as correctly-rounded
/// double→float narrowing. The differential suite in
/// test_codec_hotpath.cpp compares every compiled-in variant against
/// reference_kernels.hpp on edge shapes and random sweeps.

#include <cstddef>
#include <cstdint>

#include "compress/simd.hpp"

namespace dlcomp::kernels::detail {

/// Round-half-away-from-zero, clamped into int64 so the cast stays
/// defined on garbage residuals (inf/NaN → deterministic values). Used
/// by the Lorenzo loops, whose residuals carry no up-front range check.
inline std::int32_t round_code(double t) noexcept {
  double biased = t + (t >= 0.0 ? 0.5 : -0.5);
  if (!(biased > -9.2e18 && biased < 9.2e18)) [[unlikely]] {
    biased = biased != biased  // NaN has no ordering with itself
                 ? 0.0
                 : (biased < 0.0 ? -9.2e18 : 9.2e18);
  }
  return static_cast<std::int32_t>(static_cast<std::int64_t>(biased));
}

/// Same rounding for values already proven inside the int32 code range:
/// the narrow cast maps to a packed double→int32 conversion.
inline std::int32_t round_code_checked(double t) noexcept {
  return static_cast<std::int32_t>(t + (t >= 0.0 ? 0.5 : -0.5));
}

/// One ISA tier's inner loops. All pointers are non-null and n > 0
/// unless stated; `inv` is 1/(2*eb), `step` is 2*eb.
struct KernelOps {
  /// sym[i] = zigzag(round(in[i] * inv)); range pre-checked.
  void (*quantize_symbols)(const float* in, std::size_t n, double inv,
                           std::uint32_t* sym);
  /// codes[i] = round(in[i] * inv); range pre-checked.
  void (*quantize_codes)(const float* in, std::size_t n, double inv,
                         std::int32_t* codes);
  /// max over zigzag(codes[i]).
  std::uint32_t (*max_zigzag)(const std::int32_t* codes, std::size_t n);
  /// sym[i] = zigzag(codes[i]).
  void (*zigzag)(const std::int32_t* codes, std::size_t n,
                 std::uint32_t* sym);
  /// out[i] = float(codes[i] * step).
  void (*dequantize_codes)(const std::int32_t* codes, std::size_t n,
                           double step, float* out);
  /// out[i] = float(unzigzag(sym[i]) * step).
  void (*dequantize_symbols)(const std::uint32_t* sym, std::size_t n,
                             double step, float* out);
  /// Full fused Lorenzo passes, boundary handling included (n > 0,
  /// dim > 0; the tail row may be short).
  void (*lorenzo_encode)(const float* in, std::size_t n, std::size_t dim,
                         double step, float* rc, std::uint32_t* sym);
  void (*lorenzo_decode)(const std::uint32_t* sym, std::size_t n,
                         std::size_t dim, double step, float* out);
};

/// Always available; lives in kernels.cpp (the auto-vectorized loops CI's
/// gcc report check pins).
[[nodiscard]] const KernelOps& scalar_ops() noexcept;

/// Per-ISA tables; nullptr when the variant was not compiled in (non-x86
/// targets, or a toolchain without the -m flags).
[[nodiscard]] const KernelOps* avx2_ops() noexcept;
[[nodiscard]] const KernelOps* avx512_ops() noexcept;

/// Table for `isa`, or nullptr when unavailable in this binary.
[[nodiscard]] const KernelOps* ops_for(simd::Isa isa) noexcept;

}  // namespace dlcomp::kernels::detail
