#pragma once

/// \file paged.hpp
/// Paged at-rest storage for embedding-shaped row matrices: the cold tier
/// of the serving stack. Rows are grouped into fixed-size pages (each page
/// covers a contiguous, dim-aligned row range that depends only on the
/// table shape and the configured page size, never on sharding or thread
/// count) and each page is compressed independently through a registry
/// codec, so a single row fault decompresses one page — the serving
/// analogue of the checkpoint subsystem's per-table streams, sized for
/// decompress-on-miss latency instead of whole-snapshot throughput.
///
/// Determinism contract: page boundaries and page stream bytes are a pure
/// function of (rows, params, rows_per_page). A store built over the same
/// matrix yields bitwise-identical reconstructed rows no matter how pages
/// are later distributed across shards, which is what makes the sharded
/// scatter/gather path bitwise comparable to a single whole-table store.

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "compress/compressor.hpp"
#include "compress/workspace.hpp"
#include "tensor/matrix.hpp"

namespace dlcomp {

class ThreadPool;

struct PagedStoreConfig {
  /// Registry codec for the page payloads; null stores raw float pages
  /// (paging and accounting still apply, load_page is a memcpy).
  const Compressor* codec = nullptr;
  CompressParams params;
  /// Rows per page. Smaller pages fault faster but compress worse (the
  /// codec sees fewer vectors per stream); 256 rows x dim 32 = 32 KiB of
  /// float input per page.
  std::size_t rows_per_page = 256;
  /// Optional pool: pages compress in parallel through a BlockEngine at
  /// build time. Null builds serially. Either way the stored bytes are
  /// identical (BlockEngine framing is deterministic and pages are below
  /// its block size, so every page is a plain codec stream).
  ThreadPool* pool = nullptr;
};

/// One row matrix stored as independently compressed pages.
class PagedRowStore {
 public:
  /// Compresses `rows` page by page. When a codec is configured every
  /// page is also decompressed once here to record the reconstruction
  /// error actually served (`max_abs_error()`), so callers can assert the
  /// at-rest bound without re-reading the whole store.
  PagedRowStore(const Matrix& rows, const PagedStoreConfig& config);

  [[nodiscard]] std::size_t rows() const noexcept { return rows_; }
  [[nodiscard]] std::size_t dim() const noexcept { return dim_; }
  [[nodiscard]] std::size_t rows_per_page() const noexcept {
    return rows_per_page_;
  }
  [[nodiscard]] std::size_t num_pages() const noexcept {
    return offsets_.size();
  }

  [[nodiscard]] std::size_t page_of(std::size_t row) const noexcept {
    return row / rows_per_page_;
  }
  /// Rows covered by page `p` (the last page may be partial).
  [[nodiscard]] std::size_t page_rows(std::size_t p) const noexcept;
  [[nodiscard]] std::size_t page_first_row(std::size_t p) const noexcept {
    return p * rows_per_page_;
  }

  /// Decompresses page `p` into `out` (exactly page_rows(p) * dim()
  /// floats, row-major). Deterministic: every load of the same page
  /// reconstructs identical bytes.
  void load_page(std::size_t p, std::span<float> out,
                 CompressionWorkspace& ws) const;

  // ---- accounting ---------------------------------------------------
  [[nodiscard]] std::size_t input_bytes() const noexcept {
    return input_bytes_;
  }
  /// Bytes held at rest (compressed streams, or raw copies when no codec).
  [[nodiscard]] std::size_t stored_bytes() const noexcept {
    return buffer_.size();
  }
  [[nodiscard]] double ratio() const noexcept {
    return buffer_.empty() ? 0.0
                           : static_cast<double>(input_bytes_) /
                                 static_cast<double>(buffer_.size());
  }
  /// Largest |original - reconstructed| across every stored element
  /// (0 for raw stores).
  [[nodiscard]] double max_abs_error() const noexcept {
    return max_abs_error_;
  }

 private:
  const Compressor* codec_ = nullptr;
  CompressParams params_;
  std::size_t rows_ = 0;
  std::size_t dim_ = 0;
  std::size_t rows_per_page_ = 0;

  std::vector<std::byte> buffer_;      ///< packed page streams
  std::vector<std::size_t> offsets_;   ///< per page, into buffer_
  std::vector<std::size_t> sizes_;     ///< per page stream size
  std::size_t input_bytes_ = 0;
  double max_abs_error_ = 0.0;
};

}  // namespace dlcomp
