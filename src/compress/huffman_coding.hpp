#pragma once

/// \file huffman_coding.hpp
/// Canonical Huffman codec over arbitrary 32-bit symbols. This is the
/// entropy core of the paper's "optimized entropy encoder" and is reused
/// by the Deflate-like and cuSZ-like baselines (byte / quantization-code
/// alphabets respectively).
///
/// Codes are canonical (assigned by (length, symbol) order), so the table
/// serializes as just the symbol list plus code lengths. Code length is
/// limited to 32 bits by iterative frequency flattening.
///
/// Hot-path layout (see DESIGN.md "Codec hot path"):
///  - encode: dense array `symbol -> (reversed code, length)` when the
///    alphabet's largest symbol value is small (the quantizer regime),
///    hash-map fallback otherwise; codes accumulate in a 64-bit register
///    and are flushed to the BitWriter a whole word at a time.
///  - decode: zlib-style first-level LUT indexed by the next
///    min(12, max code length) bits; codes longer than the LUT width fall
///    back to the canonical per-bit walk (kept as decode_reference, which
///    differential tests also pit against the LUT path).
///  - all tables live in reusable member vectors, so a workspace-resident
///    codec rebuilds per chunk without heap traffic once warm.
/// The serialized stream format is byte-identical to the pre-LUT codec.

#include <cstdint>
#include <span>
#include <unordered_map>
#include <vector>

#include "common/bitstream.hpp"
#include "common/byte_io.hpp"
#include "compress/histogram.hpp"

namespace dlcomp {

class HuffmanCodec {
 public:
  /// Largest symbol value the dense encode table covers; sparser
  /// alphabets (arbitrary u32 symbols) use the map fallback.
  static constexpr std::uint32_t kDenseEncodeLimit = 1u << 16;

  /// First-level decode LUT width cap (actual width is
  /// min(kMaxLutBits, max code length)).
  static constexpr unsigned kMaxLutBits = 12;

  /// A reusable codec starts empty; build_* or deserialize_* fill it.
  HuffmanCodec() = default;

  /// Builds a codec from the symbols that will be encoded. Requires a
  /// non-empty span.
  static HuffmanCodec build(std::span<const std::uint32_t> symbols);

  /// Builds directly from a (symbol, frequency) histogram.
  static HuffmanCodec build_from_histogram(
      const std::unordered_map<std::uint32_t, std::uint64_t>& histogram);

  /// In-place rebuild from a two-level histogram, reusing this codec's
  /// internal buffers (the workspace fast path).
  void build_from_histogram_in_place(const SymbolHistogram& histogram);

  /// Serializes the canonical table (symbol list + lengths).
  void serialize_table(std::vector<std::byte>& out) const;

  /// Reconstructs a codec from a serialized table.
  static HuffmanCodec deserialize_table(ByteReader& reader);

  /// In-place variant of deserialize_table (decode-side structures only;
  /// encode() on such a codec throws).
  void deserialize_table_in_place(ByteReader& reader);

  /// Encodes symbols; every symbol must have appeared in the build set.
  void encode(std::span<const std::uint32_t> symbols, BitWriter& writer) const;

  /// Decodes exactly out.size() symbols (first-level LUT fast path).
  void decode(BitReader& reader, std::span<std::uint32_t> out) const;

  /// Pre-LUT per-bit canonical decode, kept as the differential-test
  /// reference and as the slow path for codes longer than the LUT width.
  void decode_reference(BitReader& reader, std::span<std::uint32_t> out) const;

  /// Pre-table per-symbol encode (no word batching), kept as the
  /// differential-test reference.
  void encode_reference(std::span<const std::uint32_t> symbols,
                        BitWriter& writer) const;

  /// Number of distinct symbols in the alphabet.
  [[nodiscard]] std::size_t alphabet_size() const noexcept {
    return canonical_symbols_.size();
  }

  /// Mean code length weighted by the build histogram (bits/symbol); an
  /// entropy-rate estimate used by compressor-selection heuristics.
  [[nodiscard]] double mean_code_bits() const noexcept { return mean_bits_; }

  /// Longest code in the table (bits).
  [[nodiscard]] unsigned max_code_length() const noexcept { return max_length_; }

  /// Exact payload bits encode() will emit for the build multiset
  /// (sum of length x frequency); 0 on a deserialized codec. Lets the
  /// hybrid compressor size the Huffman candidate without encoding it.
  [[nodiscard]] std::uint64_t build_payload_bits() const noexcept {
    return build_payload_bits_;
  }

  /// Exact byte size serialize_table() will emit.
  [[nodiscard]] std::size_t serialized_table_bytes() const noexcept;

  /// Bytes of heap capacity held by the internal tables (workspace
  /// high-water-mark accounting; map buckets are not counted).
  [[nodiscard]] std::size_t capacity_bytes() const noexcept;

 private:
  struct CodeEntry {
    std::uint32_t write_form = 0;  // msb-first code reversed for LSB-first IO
    std::uint8_t length = 0;       // 0 = symbol absent
  };
  struct LutEntry {
    std::uint32_t symbol = 0;
    std::uint8_t length = 0;  // 0 = longer than the LUT or invalid prefix
  };

  /// Builds from `pairs_` (sorted ascending by symbol, all freqs > 0).
  void build_from_pairs_in_place();

  /// Computes code lengths for pairs_ into lengths_ using the classic
  /// heap construction (reusable scratch, deterministic tie-breaks).
  void compute_lengths();

  void finalize_canonical(bool build_encoder);

  [[nodiscard]] const CodeEntry& lookup(std::uint32_t symbol) const;

  void decode_one_slow(BitReader& reader, std::uint32_t& dst) const;

  // Canonical order: symbols sorted by (code length, symbol value).
  std::vector<std::uint32_t> canonical_symbols_;
  std::vector<std::uint8_t> canonical_lengths_;

  // Encoder side.
  std::vector<CodeEntry> encode_dense_;  // indexed by symbol value
  std::unordered_map<std::uint32_t, CodeEntry> encode_map_;
  bool encoder_ready_ = false;
  bool encode_is_dense_ = false;

  // Decoder side: canonical decode arrays indexed by code length, plus
  // the first-level LUT indexed by the next lut_bits_ input bits.
  std::vector<std::uint32_t> first_code_;   // first canonical code per length
  std::vector<std::uint32_t> first_index_;  // symbol array offset per length
  std::vector<std::uint32_t> count_;        // codes per length
  std::vector<LutEntry> lut_;
  unsigned lut_bits_ = 0;
  std::uint8_t max_length_ = 0;

  double mean_bits_ = 0.0;
  std::uint64_t build_payload_bits_ = 0;

  // Build scratch (reused across in-place rebuilds).
  struct HeapNode {
    std::uint64_t freq;
    std::uint32_t index;
  };
  std::vector<std::pair<std::uint32_t, std::uint64_t>> pairs_;
  std::vector<std::uint64_t> original_freqs_;  // non-empty iff flattened
  std::vector<HeapNode> heap_;
  std::vector<std::int32_t> parent_;
  std::vector<std::uint8_t> lengths_;
  std::vector<std::uint32_t> order_;
};

}  // namespace dlcomp
