#pragma once

/// \file huffman_coding.hpp
/// Canonical Huffman codec over arbitrary 32-bit symbols. This is the
/// entropy core of the paper's "optimized entropy encoder" and is reused
/// by the Deflate-like and cuSZ-like baselines (byte / quantization-code
/// alphabets respectively).
///
/// Codes are canonical (assigned by (length, symbol) order), so the table
/// serializes as just the symbol list plus code lengths. Code length is
/// limited to 32 bits by iterative frequency flattening.

#include <cstdint>
#include <span>
#include <unordered_map>
#include <vector>

#include "common/bitstream.hpp"
#include "common/byte_io.hpp"

namespace dlcomp {

class HuffmanCodec {
 public:
  /// Builds a codec from the symbols that will be encoded. Requires a
  /// non-empty span.
  static HuffmanCodec build(std::span<const std::uint32_t> symbols);

  /// Builds directly from a (symbol, frequency) histogram.
  static HuffmanCodec build_from_histogram(
      const std::unordered_map<std::uint32_t, std::uint64_t>& histogram);

  /// Serializes the canonical table (symbol list + lengths).
  void serialize_table(std::vector<std::byte>& out) const;

  /// Reconstructs a codec from a serialized table.
  static HuffmanCodec deserialize_table(ByteReader& reader);

  /// Encodes symbols; every symbol must have appeared in the build set.
  void encode(std::span<const std::uint32_t> symbols, BitWriter& writer) const;

  /// Decodes exactly out.size() symbols.
  void decode(BitReader& reader, std::span<std::uint32_t> out) const;

  /// Number of distinct symbols in the alphabet.
  [[nodiscard]] std::size_t alphabet_size() const noexcept {
    return canonical_symbols_.size();
  }

  /// Mean code length weighted by the build histogram (bits/symbol); an
  /// entropy-rate estimate used by compressor-selection heuristics.
  [[nodiscard]] double mean_code_bits() const noexcept { return mean_bits_; }

 private:
  HuffmanCodec() = default;

  void finalize_canonical(std::vector<std::uint8_t> lengths_by_canonical_index);

  // Canonical order: symbols sorted by (code length, symbol value).
  std::vector<std::uint32_t> canonical_symbols_;
  std::vector<std::uint8_t> canonical_lengths_;

  // Encoder side: symbol -> (msb-first code reversed for LSB-first write,
  // length).
  struct CodeEntry {
    std::uint64_t write_form = 0;
    std::uint8_t length = 0;
  };
  std::unordered_map<std::uint32_t, CodeEntry> encode_table_;

  // Decoder side: canonical decode arrays indexed by code length.
  std::vector<std::uint32_t> first_code_;   // first canonical code per length
  std::vector<std::uint32_t> first_index_;  // symbol array offset per length
  std::vector<std::uint32_t> count_;        // codes per length
  std::uint8_t max_length_ = 0;

  double mean_bits_ = 0.0;
};

}  // namespace dlcomp
