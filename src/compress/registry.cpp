#include "compress/registry.hpp"

#include <array>

#include "common/error.hpp"
#include "compress/cusz_like.hpp"
#include "compress/deflate_like.hpp"
#include "compress/fz_gpu_like.hpp"
#include "compress/generic_lz.hpp"
#include "compress/huffman_compressor.hpp"
#include "compress/hybrid.hpp"
#include "compress/low_precision.hpp"
#include "compress/vector_lz.hpp"
#include "compress/zfp_like.hpp"

namespace dlcomp {

namespace {

const CuszLikeCompressor kCusz;
const FzGpuLikeCompressor kFzGpu;
const VectorLzCompressor kVectorLz;
const HuffmanCompressor kHuffman;
const GenericLzCompressor kGenericLz;
const DeflateLikeCompressor kDeflate;
const Fp16Compressor kFp16;
const Fp8Compressor kFp8;
const HybridCompressor kHybrid;
const ZfpLikeCompressor kZfp;

constexpr std::array<std::string_view, 10> kAllNames = {
    "cusz-like", "zfp-like", "fz-gpu-like", "vector-lz",  "huffman",
    "generic-lz", "deflate-like", "fp16",   "fp8",        "hybrid",
};

constexpr std::array<std::string_view, 8> kPipelineNames = {
    "cusz-like", "zfp-like", "fz-gpu-like", "vector-lz",
    "huffman",   "generic-lz", "deflate-like", "hybrid",
};

}  // namespace

const Compressor& get_compressor(std::string_view name) {
  if (name == "zfp-like") return kZfp;
  if (name == "cusz-like") return kCusz;
  if (name == "fz-gpu-like") return kFzGpu;
  if (name == "vector-lz") return kVectorLz;
  if (name == "huffman") return kHuffman;
  if (name == "generic-lz") return kGenericLz;
  if (name == "deflate-like") return kDeflate;
  if (name == "fp16") return kFp16;
  if (name == "fp8") return kFp8;
  if (name == "hybrid") return kHybrid;
  throw Error("unknown compressor: " + std::string(name));
}

std::span<const std::string_view> all_compressor_names() noexcept {
  return kAllNames;
}

std::span<const std::string_view> pipeline_compressor_names() noexcept {
  return kPipelineNames;
}

}  // namespace dlcomp
