#include "compress/deflate_like.hpp"

#include <cstring>
#include <vector>

#include "common/timer.hpp"
#include "compress/format.hpp"
#include "compress/huffman_coding.hpp"
#include "compress/lzss.hpp"

namespace dlcomp {

CompressionStats DeflateLikeCompressor::compress(std::span<const float> input,
                                                 const CompressParams& params,
                                                 std::vector<std::byte>& out) const {
  (void)params;
  WallTimer timer;
  const std::size_t start = out.size();

  StreamHeader header;
  header.codec = CodecId::kDeflateLike;
  header.element_count = input.size();
  const std::size_t patch_at = append_header(out, header);
  const std::size_t payload_start = out.size();

  if (!input.empty()) {
    // Stage 1: byte LZSS.
    std::vector<std::byte> lz_bytes;
    const std::span<const std::byte> raw{
        reinterpret_cast<const std::byte*>(input.data()), input.size_bytes()};
    lzss::compress_bytes(raw, lzss::Config{}, lz_bytes);

    // Stage 2: byte-wise Huffman over the token stream.
    std::vector<std::uint32_t> symbols(lz_bytes.size());
    for (std::size_t i = 0; i < lz_bytes.size(); ++i) {
      symbols[i] = std::to_integer<std::uint32_t>(lz_bytes[i]);
    }
    const HuffmanCodec codec = HuffmanCodec::build(symbols);

    append_varint(out, lz_bytes.size());
    codec.serialize_table(out);
    BitWriter writer;
    codec.encode(symbols, writer);
    writer.finish_into(out);

    // Stored-block fallback: never expand past the raw bytes.
    if (out.size() - payload_start >= raw.size()) {
      out.resize(payload_start);
      out.insert(out.end(), raw.begin(), raw.end());
      patch_flags(out, patch_at, kFlagStoredRaw);
    }
  }

  patch_payload_bytes(out, patch_at, out.size() - payload_start);
  CompressionStats stats;
  stats.input_bytes = input.size_bytes();
  stats.output_bytes = out.size() - start;
  stats.seconds = timer.seconds();
  return stats;
}

double DeflateLikeCompressor::decompress(std::span<const std::byte> stream,
                                         std::span<float> out) const {
  WallTimer timer;
  std::span<const std::byte> payload;
  const StreamHeader header = parse_header(stream, payload);
  DLCOMP_CHECK(header.codec == CodecId::kDeflateLike);
  DLCOMP_CHECK(out.size() == header.element_count);
  if (out.empty()) return timer.seconds();

  if (header.flags & kFlagStoredRaw) {
    DLCOMP_CHECK(payload.size() == out.size_bytes());
    std::memcpy(out.data(), payload.data(), payload.size());
    return timer.seconds();
  }

  std::size_t pos = 0;
  const std::uint64_t lz_size = read_varint(payload, pos);
  ByteReader reader(payload.subspan(pos));
  const HuffmanCodec codec = HuffmanCodec::deserialize_table(reader);

  std::vector<std::uint32_t> symbols(lz_size);
  BitReader bits(payload.subspan(pos + reader.position()));
  codec.decode(bits, symbols);

  std::vector<std::byte> lz_bytes(lz_size);
  for (std::size_t i = 0; i < lz_size; ++i) {
    lz_bytes[i] = static_cast<std::byte>(symbols[i]);
  }

  const std::span<std::byte> raw{reinterpret_cast<std::byte*>(out.data()),
                                 out.size_bytes()};
  lzss::decompress_bytes(lz_bytes, raw);
  return timer.seconds();
}

}  // namespace dlcomp
