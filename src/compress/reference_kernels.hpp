#pragma once

/// \file reference_kernels.hpp
/// The pre-overhaul scalar quantization and Lorenzo kernels, preserved
/// verbatim as the ground truth the fused hot-path kernels (kernels.hpp)
/// are differentially tested against: on any input, the fused kernels
/// must produce byte-identical codes, symbols and reconstructions.
///
/// These are reference implementations, not production paths — per-call
/// allocation and per-element branching are intentional (that is exactly
/// what the fused kernels removed).

#include <cstdint>
#include <span>
#include <vector>

namespace dlcomp::reference {

/// Per-element double-precision quantization with an in-loop range check
/// (the original `quantize`).
void quantize(std::span<const float> input, double eb,
              std::span<std::int32_t> codes);

/// Original dequantization: x' = code * 2 * eb in double, narrowed.
void dequantize(std::span<const std::int32_t> codes, double eb,
                std::span<float> output);

/// Original 2-D Lorenzo predictor with per-element boundary lambdas.
/// Quantizes residuals against the running reconstruction.
void lorenzo_encode(std::span<const float> input, std::size_t dim, double eb,
                    std::span<std::int32_t> codes,
                    std::span<float> reconstructed);

/// Original inverse Lorenzo transform.
void lorenzo_decode(std::span<const std::int32_t> codes, std::size_t dim,
                    double eb, std::span<float> output);

}  // namespace dlcomp::reference
