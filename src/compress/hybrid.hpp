#pragma once

/// \file hybrid.hpp
/// The paper's hybrid compressor: per-table selection between the
/// vector-based LZ encoder and the optimized entropy (Huffman) encoder,
/// both over the shared error-bounded quantizer. The selection is made
/// offline by the CompressorSelector (Eq. 2); at compress time the choice
/// arrives via CompressParams::hybrid_choice, with kAuto falling back to
/// "try both, keep the smaller stream" (used when no offline config
/// exists, e.g. in the quickstart example).

#include "compress/compressor.hpp"

namespace dlcomp {

class HybridCompressor final : public Compressor {
 public:
  [[nodiscard]] std::string_view name() const noexcept override {
    return "hybrid";
  }
  [[nodiscard]] bool lossy() const noexcept override { return true; }

  CompressionStats compress(std::span<const float> input,
                            const CompressParams& params,
                            std::vector<std::byte>& out) const override;

  double decompress(std::span<const std::byte> stream,
                    std::span<float> out) const override;

  CompressionStats compress(std::span<const float> input,
                            const CompressParams& params,
                            std::vector<std::byte>& out,
                            CompressionWorkspace& ws) const override;

  double decompress(std::span<const std::byte> stream, std::span<float> out,
                    CompressionWorkspace& ws) const override;

  /// Which inner codec a compressed stream used (diagnostic).
  static HybridChoice stream_choice(std::span<const std::byte> stream);
};

}  // namespace dlcomp
