#pragma once

/// \file registry.hpp
/// Name-indexed access to the codec set: the paper's hybrid compressor,
/// its two components, and every baseline. The offline analyzer and the
/// benches enumerate codecs through this registry.

#include <span>
#include <string_view>
#include <vector>

#include "compress/compressor.hpp"

namespace dlcomp {

/// Looks up a codec by stable name ("hybrid", "vector-lz", "huffman",
/// "generic-lz", "deflate-like", "cusz-like", "fz-gpu-like", "fp16",
/// "fp8"). Throws Error for unknown names. Returned references are
/// static singletons, thread-safe and valid for the program lifetime.
const Compressor& get_compressor(std::string_view name);

/// All registered codec names, in the comparison order the paper's
/// Table V / Fig. 11 use.
std::span<const std::string_view> all_compressor_names() noexcept;

/// Names of the codecs usable inside the training pipeline (anything
/// that honors an error bound or is lossless).
std::span<const std::string_view> pipeline_compressor_names() noexcept;

}  // namespace dlcomp
