// Tests for the thread pool substrate.

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <vector>

#include "parallel/thread_pool.hpp"

namespace dlcomp {
namespace {

TEST(ThreadPool, RunsSubmittedTasks) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  for (int i = 0; i < 100; ++i) {
    pool.submit([&] { counter.fetch_add(1); });
  }
  pool.wait_idle();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPool, WaitIdleOnEmptyPoolReturns) {
  ThreadPool pool(2);
  pool.wait_idle();  // must not hang
  SUCCEED();
}

TEST(ThreadPool, ParallelForCoversRangeExactlyOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(10000);
  pool.parallel_for(0, hits.size(), 1, [&](std::size_t lo, std::size_t hi) {
    for (std::size_t i = lo; i < hi; ++i) hits[i].fetch_add(1);
  });
  for (const auto& h : hits) {
    ASSERT_EQ(h.load(), 1);
  }
}

TEST(ThreadPool, ParallelForEmptyRange) {
  ThreadPool pool(2);
  bool called = false;
  pool.parallel_for(5, 5, 1, [&](std::size_t, std::size_t) { called = true; });
  EXPECT_FALSE(called);
}

TEST(ThreadPool, ParallelForRespectsGrain) {
  ThreadPool pool(8);
  std::atomic<std::size_t> blocks{0};
  pool.parallel_for(0, 100, 100, [&](std::size_t lo, std::size_t hi) {
    EXPECT_EQ(lo, 0u);
    EXPECT_EQ(hi, 100u);
    blocks.fetch_add(1);
  });
  EXPECT_EQ(blocks.load(), 1u);
}

TEST(ThreadPool, ParallelSumMatchesSerial) {
  ThreadPool pool(4);
  std::vector<double> values(200000);
  std::iota(values.begin(), values.end(), 0.0);
  std::atomic<long long> parallel_sum{0};
  pool.parallel_for(0, values.size(), 1024,
                    [&](std::size_t lo, std::size_t hi) {
                      long long local = 0;
                      for (std::size_t i = lo; i < hi; ++i) {
                        local += static_cast<long long>(values[i]);
                      }
                      parallel_sum.fetch_add(local);
                    });
  const long long expect =
      static_cast<long long>(values.size()) *
      static_cast<long long>(values.size() - 1) / 2;
  EXPECT_EQ(parallel_sum.load(), expect);
}

TEST(ThreadPool, DefaultThreadCountPositive) {
  ThreadPool pool;
  EXPECT_GE(pool.thread_count(), 1u);
}

TEST(ThreadPool, NestedSubmitFromParallelFor) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  pool.parallel_for(0, 8, 1, [&](std::size_t lo, std::size_t hi) {
    for (std::size_t i = lo; i < hi; ++i) {
      counter.fetch_add(1);
    }
  });
  pool.wait_idle();
  EXPECT_EQ(counter.load(), 8);
}

}  // namespace
}  // namespace dlcomp
