// Tests for the compression-assisted all-reduce extension.

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "common/rng.hpp"
#include "compress/registry.hpp"
#include "core/compressed_allreduce.hpp"

namespace dlcomp {
namespace {

TEST(CompressedAllReduce, NullCodecFallsBackToExactRing) {
  Cluster cluster(4);
  cluster.run([&](Communicator& comm) {
    std::vector<float> data(64, static_cast<float>(comm.rank() + 1));
    const CompressedAllReduce ar({});
    const AllReduceStats stats = ar.reduce(comm, data, "test");
    for (const float v : data) {
      ASSERT_FLOAT_EQ(v, 10.0f);  // 1+2+3+4
    }
    EXPECT_EQ(stats.compression_ratio, 1.0);
  });
}

TEST(CompressedAllReduce, SumWithinAccumulatedBound) {
  const int world = 4;
  const std::size_t n = 2048;
  Cluster cluster(world);
  cluster.run([&](Communicator& comm) {
    Rng rng(50 + comm.rank());
    std::vector<float> data(n);
    for (auto& v : data) v = static_cast<float>(rng.normal(0.0, 1e-3));

    // Reference exact sum across ranks.
    std::vector<float> exact = data;
    comm.all_reduce_sum(exact, "exact");

    CompressedAllReduceConfig config;
    config.codec = &get_compressor("huffman");
    config.relative_eb = 0.01;
    const CompressedAllReduce ar(config);
    const AllReduceStats stats = ar.reduce(comm, data, "lossy");

    // Per-rank range ~ 8e-3 -> eb ~ 8e-5; accumulated over world ranks.
    const double bound = world * 0.01 * 0.01;  // generous envelope
    for (std::size_t i = 0; i < n; ++i) {
      ASSERT_NEAR(data[i], exact[i], bound) << i;
    }
    EXPECT_GT(stats.compression_ratio, 1.0);
  });
}

TEST(CompressedAllReduce, ReplicasStayIdentical) {
  const int world = 3;
  Cluster cluster(world);
  std::vector<std::vector<float>> results(world);
  cluster.run([&](Communicator& comm) {
    Rng rng(60 + comm.rank());
    std::vector<float> data(512);
    for (auto& v : data) v = static_cast<float>(rng.normal(0.0, 0.1));

    CompressedAllReduceConfig config;
    config.codec = &get_compressor("fz-gpu-like");
    const CompressedAllReduce ar(config);
    (void)ar.reduce(comm, data, "sync");
    results[static_cast<std::size_t>(comm.rank())] = data;
  });
  for (int r = 1; r < world; ++r) {
    ASSERT_EQ(results[0], results[static_cast<std::size_t>(r)]) << r;
  }
}

TEST(CompressedAllReduce, ChargesCodecPhases) {
  Cluster cluster(2);
  cluster.run([&](Communicator& comm) {
    std::vector<float> data(4096, 0.25f);
    CompressedAllReduceConfig config;
    config.codec = &get_compressor("huffman");
    const CompressedAllReduce ar(config);
    (void)ar.reduce(comm, data, "grads");
    EXPECT_GT(comm.clock().phase_seconds("grads/compress"), 0.0);
    EXPECT_GT(comm.clock().phase_seconds("grads/decompress"), 0.0);
    EXPECT_GT(comm.clock().phase_seconds("grads"), 0.0);
  });
}

TEST(CompressedAllReduce, WireBytesReflectCompression) {
  Cluster cluster(4);
  cluster.run([&](Communicator& comm) {
    // Highly compressible: constant gradients.
    std::vector<float> data(8192, 0.001f);
    CompressedAllReduceConfig config;
    config.codec = &get_compressor("huffman");
    const CompressedAllReduce ar(config);
    const AllReduceStats stats = ar.reduce(comm, data, "grads");
    EXPECT_GT(stats.compression_ratio, 20.0);
    EXPECT_LT(stats.wire_bytes, stats.raw_bytes);
  });
}

}  // namespace
}  // namespace dlcomp
