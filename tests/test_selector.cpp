// Tests for Eq. (2) and the offline compressor selector (Algorithm 2).

#include <gtest/gtest.h>

#include "common/error.hpp"
#include <vector>

#include "common/rng.hpp"
#include "core/selector.hpp"

namespace dlcomp {
namespace {

TEST(Eq2, HandComputedValue) {
  // CR=10, B=4 GB/s, Tc=40 GB/s, Td=200 GB/s:
  // denom = 0.1 + 4*(1/40 + 1/200) = 0.1 + 4*0.03 = 0.22 -> 4.5454...
  const double s = eq2_speedup(10.0, 4e9, 40e9, 200e9);
  EXPECT_NEAR(s, 1.0 / 0.22, 1e-9);
}

TEST(Eq2, InfinitelyFastCodecApproachesCr) {
  const double s = eq2_speedup(8.0, 4e9, 1e18, 1e18);
  EXPECT_NEAR(s, 8.0, 1e-6);
}

TEST(Eq2, SlowCodecCanLoseToNoCompression) {
  // Codec slower than the network: speedup < 1 despite CR > 1.
  const double s = eq2_speedup(2.0, 4e9, 2e9, 2e9);
  EXPECT_LT(s, 1.0);
}

TEST(Eq2, MonotoneInCompressionRatio) {
  const double lo = eq2_speedup(2.0, 4e9, 50e9, 50e9);
  const double hi = eq2_speedup(20.0, 4e9, 50e9, 50e9);
  EXPECT_GT(hi, lo);
}

TEST(Eq2, InvalidArgsThrow) {
  EXPECT_THROW(eq2_speedup(0.0, 4e9, 1e9, 1e9), Error);
  EXPECT_THROW(eq2_speedup(2.0, 0.0, 1e9, 1e9), Error);
  EXPECT_THROW(eq2_speedup(2.0, 4e9, 0.0, 1e9), Error);
}

class SelectorFixture : public ::testing::Test {
 protected:
  static std::vector<float> repeated_batch() {
    Rng rng(1);
    std::vector<float> base(32);
    for (auto& v : base) v = static_cast<float>(rng.normal(0.0, 0.3));
    std::vector<float> out;
    for (int i = 0; i < 128; ++i) {
      out.insert(out.end(), base.begin(), base.end());
    }
    return out;
  }

  static std::vector<float> concentrated_batch() {
    Rng rng(2);
    std::vector<float> out(128 * 32);
    for (auto& v : out) v = static_cast<float>(rng.normal(0.0, 0.01));
    return out;
  }
};

TEST_F(SelectorFixture, ScoresEveryCandidate) {
  const CompressorSelector selector({});
  CompressParams params;
  params.error_bound = 0.01;
  params.vector_dim = 32;
  const std::vector<std::string_view> candidates = {"vector-lz", "huffman"};
  const SelectionResult result =
      selector.select(repeated_batch(), params, candidates);
  ASSERT_EQ(result.candidates.size(), 2u);
  for (const auto& c : result.candidates) {
    EXPECT_GT(c.compression_ratio, 1.0) << c.codec;
    EXPECT_GT(c.est_speedup, 0.0) << c.codec;
    EXPECT_GT(c.compress_bps, 0.0) << c.codec;
  }
}

TEST_F(SelectorFixture, RepeatedVectorsFavorVectorLz) {
  const CompressorSelector selector({});
  CompressParams params;
  params.error_bound = 0.01;
  params.vector_dim = 32;
  const std::vector<std::string_view> candidates = {"vector-lz", "huffman"};
  const SelectionResult result =
      selector.select(repeated_batch(), params, candidates);
  EXPECT_EQ(result.best().codec, "vector-lz");
}

TEST_F(SelectorFixture, ConcentratedValuesFavorHuffman) {
  // Near-constant values, all vectors distinct: entropy coding wins.
  const CompressorSelector selector({});
  CompressParams params;
  params.error_bound = 0.01;
  params.vector_dim = 32;
  const std::vector<std::string_view> candidates = {"vector-lz", "huffman"};
  const SelectionResult result =
      selector.select(concentrated_batch(), params, candidates);
  EXPECT_EQ(result.best().codec, "huffman");
}

TEST_F(SelectorFixture, MeasuredThroughputModeWorks) {
  SelectorConfig config;
  config.use_calibrated_throughput = false;
  const CompressorSelector selector(config);
  CompressParams params;
  params.error_bound = 0.01;
  params.vector_dim = 32;
  const std::vector<std::string_view> candidates = {"vector-lz", "huffman"};
  const SelectionResult result =
      selector.select(repeated_batch(), params, candidates);
  for (const auto& c : result.candidates) {
    EXPECT_GT(c.est_speedup, 0.0);
  }
}

TEST_F(SelectorFixture, EmptyCandidatesThrow) {
  const CompressorSelector selector({});
  EXPECT_THROW(
      selector.select(repeated_batch(), CompressParams{}, {}), Error);
}

}  // namespace
}  // namespace dlcomp
