// Tests for the matrix substrate and dense kernels.

#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "tensor/matrix.hpp"
#include "tensor/ops.hpp"

namespace dlcomp {
namespace {

Matrix make_random(Rng& rng, std::size_t r, std::size_t c) {
  return Matrix::rand_uniform(rng, r, c, -1.0f, 1.0f);
}

TEST(Matrix, ShapeAndAccess) {
  Matrix m(3, 4, 1.5f);
  EXPECT_EQ(m.rows(), 3u);
  EXPECT_EQ(m.cols(), 4u);
  EXPECT_EQ(m.size(), 12u);
  EXPECT_EQ(m(2, 3), 1.5f);
  m(1, 2) = 7.0f;
  EXPECT_EQ(m.row(1)[2], 7.0f);
}

TEST(Matrix, RowViewWritesThrough) {
  Matrix m(2, 3);
  auto row = m.row(1);
  row[0] = 5.0f;
  EXPECT_EQ(m(1, 0), 5.0f);
}

TEST(Matrix, RandnMoments) {
  Rng rng(1);
  const Matrix m = Matrix::randn(rng, 200, 200, 1.0, 2.0);
  double sum = 0.0;
  for (const float v : m.flat()) sum += v;
  EXPECT_NEAR(sum / static_cast<double>(m.size()), 1.0, 0.05);
}

TEST(MatmulNT, MatchesManual) {
  // Y = X * W^T with X 2x3, W 4x3 -> Y 2x4.
  Matrix x(2, 3);
  Matrix w(4, 3);
  float k = 1.0f;
  for (auto& v : x.flat()) v = k++;
  for (auto& v : w.flat()) v = 0.1f * k++;
  Matrix y(2, 4);
  matmul_nt(x, w, y);
  for (std::size_t b = 0; b < 2; ++b) {
    for (std::size_t o = 0; o < 4; ++o) {
      float expect = 0.0f;
      for (std::size_t i = 0; i < 3; ++i) expect += x(b, i) * w(o, i);
      ASSERT_FLOAT_EQ(y(b, o), expect);
    }
  }
}

TEST(MatmulNN, IsAdjointOfNT) {
  // For random X, W, G: <G, X W^T> == <G W, X>.
  Rng rng(2);
  const Matrix x = make_random(rng, 5, 7);
  const Matrix w = make_random(rng, 4, 7);
  const Matrix g = make_random(rng, 5, 4);

  Matrix y(5, 4);
  matmul_nt(x, w, y);
  double lhs = 0.0;
  for (std::size_t i = 0; i < y.size(); ++i) lhs += g.flat()[i] * y.flat()[i];

  Matrix gw(5, 7);
  matmul_nn(g, w, gw);
  double rhs = 0.0;
  for (std::size_t i = 0; i < gw.size(); ++i) rhs += gw.flat()[i] * x.flat()[i];

  EXPECT_NEAR(lhs, rhs, 1e-4);
}

TEST(MatmulTNAccum, AccumulatesWeightGradient) {
  Rng rng(3);
  const Matrix x = make_random(rng, 6, 3);
  const Matrix dy = make_random(rng, 6, 2);
  Matrix dw(2, 3);
  matmul_tn_accum(dy, x, dw);
  // Manual check of one entry.
  float expect = 0.0f;
  for (std::size_t b = 0; b < 6; ++b) expect += dy(b, 1) * x(b, 2);
  EXPECT_NEAR(dw(1, 2), expect, 1e-5);

  // Accumulation: calling again doubles.
  matmul_tn_accum(dy, x, dw);
  EXPECT_NEAR(dw(1, 2), 2.0f * expect, 1e-5);
}

TEST(Bias, AddAndGradient) {
  Matrix y(3, 2, 1.0f);
  const std::vector<float> b = {0.5f, -0.5f};
  add_bias(y, b);
  EXPECT_FLOAT_EQ(y(0, 0), 1.5f);
  EXPECT_FLOAT_EQ(y(2, 1), 0.5f);

  std::vector<float> db(2, 0.0f);
  bias_grad_accum(y, db);
  EXPECT_FLOAT_EQ(db[0], 4.5f);
  EXPECT_FLOAT_EQ(db[1], 1.5f);
}

TEST(Relu, ForwardAndBackward) {
  Matrix x(1, 4);
  x(0, 0) = -1.0f;
  x(0, 1) = 2.0f;
  x(0, 2) = 0.0f;
  x(0, 3) = -0.5f;
  relu_inplace(x);
  EXPECT_FLOAT_EQ(x(0, 0), 0.0f);
  EXPECT_FLOAT_EQ(x(0, 1), 2.0f);

  Matrix dy(1, 4, 1.0f);
  relu_bwd(x, dy);
  EXPECT_FLOAT_EQ(dy(0, 0), 0.0f);  // was negative
  EXPECT_FLOAT_EQ(dy(0, 1), 1.0f);  // was positive
  EXPECT_FLOAT_EQ(dy(0, 2), 0.0f);  // zero blocks gradient
}

TEST(Axpy, Accumulates) {
  std::vector<float> x = {1.0f, 2.0f};
  std::vector<float> y = {10.0f, 20.0f};
  axpy(0.5f, x, y);
  EXPECT_FLOAT_EQ(y[0], 10.5f);
  EXPECT_FLOAT_EQ(y[1], 21.0f);
}

TEST(ErrorMetrics, MseAndMaxAbs) {
  const std::vector<float> a = {1.0f, 2.0f, 3.0f};
  const std::vector<float> b = {1.0f, 2.5f, 2.0f};
  EXPECT_NEAR(mean_squared_error(a, b), (0.25 + 1.0) / 3.0, 1e-9);
  EXPECT_NEAR(max_abs_error(a, b), 1.0, 1e-9);
}

TEST(OpsShapeChecks, MismatchesThrow) {
  Matrix x(2, 3);
  Matrix w(4, 5);  // wrong inner dim
  Matrix y(2, 4);
  EXPECT_THROW(matmul_nt(x, w, y), Error);
  EXPECT_THROW(mean_squared_error(std::vector<float>{1.0f},
                                  std::vector<float>{1.0f, 2.0f}),
               Error);
}

}  // namespace
}  // namespace dlcomp
